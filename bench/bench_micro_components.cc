// Micro-benchmarks of the performance-critical components (google-benchmark):
// shortest-path engines (plain vs A* vs partition-filtered vs oracle-cached),
// request insertion (exhaustive vs DP), k-means, mobility clustering, and
// the candidate indexes. These quantify the design choices DESIGN.md calls
// out: filtered search settles fewer vertices; the oracle makes leg costs
// O(1); the DP insertion removes an O(m) factor.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "clustering/kmeans.h"
#include "common/random.h"
#include "demand/request.h"
#include "common/thread_pool.h"
#include "graph/graph_generators.h"
#include "matching/no_sharing.h"
#include "matching/taxi_index.h"
#include "mobility/mobility_clustering.h"
#include "partition/bipartite_partitioner.h"
#include "routing/astar.h"
#include "routing/one_to_many.h"
#include "sched/route_planner.h"
#include "sim/engine.h"
#include "spatial/grid_index.h"

namespace mtshare {
namespace {

const RoadNetwork& Net() {
  static const RoadNetwork* net = [] {
    GridCityOptions opt;
    opt.rows = 40;
    opt.cols = 40;
    opt.seed = 3;
    return new RoadNetwork(MakeGridCity(opt));
  }();
  return *net;
}

std::pair<VertexId, VertexId> RandomPair(Rng& rng) {
  VertexId a = VertexId(rng.NextInt(0, Net().num_vertices() - 1));
  VertexId b = VertexId(rng.NextInt(0, Net().num_vertices() - 1));
  return {a, b};
}

void BM_Dijkstra(benchmark::State& state) {
  DijkstraSearch search(Net());
  Rng rng(1);
  for (auto _ : state) {
    auto [a, b] = RandomPair(rng);
    benchmark::DoNotOptimize(search.Cost(a, b));
  }
}
BENCHMARK(BM_Dijkstra);

void BM_AStar(benchmark::State& state) {
  AStarSearch search(Net());
  Rng rng(1);
  for (auto _ : state) {
    auto [a, b] = RandomPair(rng);
    benchmark::DoNotOptimize(search.Cost(a, b));
  }
}
BENCHMARK(BM_AStar);

void BM_OracleCost(benchmark::State& state) {
  DistanceOracle oracle(Net());
  Rng rng(1);
  // A working set of sources (taxi locations repeat heavily in practice);
  // warming them makes the loop measure the O(1) steady state the paper
  // assumes for shortest-path queries.
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (int i = 0; i < 64; ++i) pairs.push_back(RandomPair(rng));
  for (auto& [a, b] : pairs) oracle.Cost(a, b);
  size_t i = 0;
  for (auto _ : state) {
    auto [a, b] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(oracle.Cost(a, b));
  }
}
BENCHMARK(BM_OracleCost);

// Head-to-head of the three oracle backends on the dispatch-batch shape:
// one cold-ish point query plus an 8x16 many-to-many block per iteration.
// Exact amortizes to table lookups, LRU pays row passes on eviction, CH
// pays two upward sweeps per point query and |S|+|T| sweeps per block.
void BM_OracleBackends(benchmark::State& state) {
  OracleOptions oopt;
  oopt.backend = static_cast<OracleBackend>(state.range(0));
  static std::map<int64_t, std::unique_ptr<DistanceOracle>> oracles;
  std::unique_ptr<DistanceOracle>& oracle = oracles[state.range(0)];
  if (!oracle) oracle = std::make_unique<DistanceOracle>(Net(), oopt);
  Rng rng(23);
  std::vector<VertexId> sources, targets;
  std::vector<Seconds> out;
  for (auto _ : state) {
    auto [a, b] = RandomPair(rng);
    benchmark::DoNotOptimize(oracle->Cost(a, b));
    sources.clear();
    targets.clear();
    for (int i = 0; i < 8; ++i) sources.push_back(RandomPair(rng).first);
    for (int i = 0; i < 16; ++i) targets.push_back(RandomPair(rng).second);
    oracle->CostManyToMany(sources, targets, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(OracleBackendName(oracle->backend()));
}
BENCHMARK(BM_OracleBackends)
    ->Arg(int(OracleBackend::kExact))
    ->Arg(int(OracleBackend::kLru))
    ->Arg(int(OracleBackend::kCh));

void BM_FilteredBasicLeg(benchmark::State& state) {
  static MapPartitioning partitioning = GridPartition(Net(), 64);
  static LandmarkGraph landmarks(Net(), partitioning);
  static DistanceOracle oracle(Net());
  RoutePlanner planner(Net(), partitioning, landmarks, nullptr, &oracle,
                       RoutePlannerOptions{});
  Rng rng(1);
  for (auto _ : state) {
    auto [a, b] = RandomPair(rng);
    benchmark::DoNotOptimize(planner.PlanBasicLeg(a, b));
  }
}
BENCHMARK(BM_FilteredBasicLeg);

InsertionResult RunInsertion(bool dp, const Schedule& base,
                             const RideRequest& r, DistanceOracle& oracle) {
  LegCostFn cost = [&](VertexId x, VertexId y) { return oracle.Cost(x, y); };
  return dp ? FindBestInsertionDp(base, r, 0, 0.0, 0, 4, cost)
            : FindBestInsertion(base, r, 0, 0.0, 0, 4, cost);
}

void InsertionBench(benchmark::State& state, bool dp) {
  static DistanceOracle oracle(Net());
  Rng rng(7);
  // Base schedule with three riders.
  Schedule base;
  LegCostFn cost = [&](VertexId x, VertexId y) { return oracle.Cost(x, y); };
  for (int i = 0; i < 3; ++i) {
    auto [o, d] = RandomPair(rng);
    if (o == d) continue;
    RideRequest r;
    r.id = i;
    r.origin = o;
    r.destination = d;
    r.direct_cost = oracle.Cost(o, d);
    r.deadline = 3.0 * r.direct_cost;
    InsertionResult ins = FindBestInsertion(base, r, 0, 0.0, 0, 4, cost);
    if (ins.found) base = ins.schedule;
  }
  RideRequest probe;
  probe.id = 99;
  std::tie(probe.origin, probe.destination) = RandomPair(rng);
  probe.direct_cost = oracle.Cost(probe.origin, probe.destination);
  probe.deadline = 3.0 * probe.direct_cost;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunInsertion(dp, base, probe, oracle));
  }
}

void BM_InsertionExhaustive(benchmark::State& state) {
  InsertionBench(state, false);
}
BENCHMARK(BM_InsertionExhaustive);

void BM_InsertionDp(benchmark::State& state) { InsertionBench(state, true); }
BENCHMARK(BM_InsertionDp);

// The parallel dispatcher's inner loop: evaluate a probe request's best
// insertion against every candidate schedule, slot-per-candidate, then an
// ordered arg-min scan. threads:1 is the sequential baseline; higher
// counts show the ParallelFor speedup (needs a multi-core machine to show
// a win — on one core the pool only adds handoff overhead).
void BM_CandidateEval(benchmark::State& state) {
  static DistanceOracle oracle(Net());
  const int32_t threads = int32_t(state.range(0));
  const int kCandidates = 48;
  Rng rng(23);
  LegCostFn cost = [&](VertexId x, VertexId y) { return oracle.Cost(x, y); };

  // Candidate schedules with 2-3 riders each, like a busy fleet mid-run.
  std::vector<Schedule> schedules(kCandidates);
  for (int c = 0; c < kCandidates; ++c) {
    for (int i = 0; i < 2 + (c % 2); ++i) {
      auto [o, d] = RandomPair(rng);
      if (o == d) continue;
      RideRequest r;
      r.id = c * 8 + i;
      r.origin = o;
      r.destination = d;
      r.direct_cost = oracle.Cost(o, d);
      r.deadline = 3.0 * r.direct_cost;
      InsertionResult ins =
          FindBestInsertion(schedules[c], r, 0, 0.0, 0, 4, cost);
      if (ins.found) schedules[c] = ins.schedule;
    }
  }
  RideRequest probe;
  probe.id = 999;
  std::tie(probe.origin, probe.destination) = RandomPair(rng);
  probe.direct_cost = oracle.Cost(probe.origin, probe.destination);
  probe.deadline = 3.0 * probe.direct_cost;

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  std::vector<InsertionResult> results(kCandidates);
  for (auto _ : state) {
    auto evaluate = [&](size_t i) {
      results[i] =
          FindBestInsertionDp(schedules[i], probe, 0, 0.0, 0, 4, cost);
    };
    if (pool) {
      pool->ParallelFor(kCandidates, evaluate);
    } else {
      for (size_t i = 0; i < kCandidates; ++i) evaluate(i);
    }
    // Ordered reduction (ties -> earliest), same as the dispatcher.
    int best = -1;
    for (int i = 0; i < kCandidates; ++i) {
      if (!results[i].found) continue;
      if (best < 0 || results[i].detour < results[best].detour) best = i;
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_CandidateEval)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Per-pair vs batched leg-cost routing under the same candidate-evaluation
// loop, in the LRU-oracle regime the batch layer targets: every dispatch
// brings a FRESH request whose origin/destination rows are not cached, so
// per-pair evaluation pays two full one-to-all Dijkstra rows per dispatch
// while the batch primes those endpoint fans with truncated sweeps that
// stop at the last candidate stop. batched:0 answers every DP leg with a
// separate oracle query; batched:1 primes one InsertionCostBatch and the
// DP reads a hash table. `oracle_q` counts oracle passes per dispatch and
// `settled` the Dijkstra vertices settled per dispatch — those carry the
// signal (batching collapses ~920 queries to ~73). Wall-clock on this
// 1600-vertex micro grid runs ~20% BEHIND per-pair: a sweep's ball must
// still reach the city-wide trip destination, which here is most of the
// graph, and table priming adds fixed cost. The sign flips as |V| grows —
// a row miss always settles |V| vertices while the sweep's ball tracks
// the trip extent; at dispatcher level (fig06 workload, exact-mode
// oracle) batched already edges out per-pair.
void BM_InsertionEvalRouting(benchmark::State& state) {
  const bool batched = state.range(0) == 1;
  const int kCandidates = 48;
  OracleOptions lru;
  lru.max_exact_vertices = 0;  // force the LRU row cache, as on big maps
  DistanceOracle oracle(Net(), lru);
  Rng rng(23);
  LegCostFn oracle_cost = [&](VertexId x, VertexId y) {
    return oracle.Cost(x, y);
  };
  // Candidate schedules cluster in one district (candidates come from the
  // searching range around a hot spot, paper's gamma), so their ~100 stop
  // rows fit the row cache and stay hot across dispatches. Requests churn
  // over the WHOLE city. A per-pair endpoint miss settles the whole graph
  // (a row is one-to-all); the truncated sweep's ball stops once it has
  // covered the district. That asymmetry grows with map size.
  auto local_pair = [&] {
    auto pick = [&] {
      int32_t r = int32_t(rng.NextInt(0, 9));
      int32_t c = int32_t(rng.NextInt(0, 9));
      return VertexId(r * 40 + c);
    };
    return std::pair<VertexId, VertexId>{pick(), pick()};
  };

  std::vector<Schedule> schedules(kCandidates);
  for (int c = 0; c < kCandidates; ++c) {
    for (int i = 0; i < 2 + (c % 2); ++i) {
      auto [o, d] = local_pair();
      if (o == d) continue;
      RideRequest r;
      r.id = c * 8 + i;
      r.origin = o;
      r.destination = d;
      r.direct_cost = oracle.Cost(o, d);
      r.deadline = 3.0 * r.direct_cost;
      InsertionResult ins =
          FindBestInsertion(schedules[c], r, 0, 0.0, 0, 4, oracle_cost);
      if (ins.found) schedules[c] = ins.schedule;
    }
  }
  // A pool of probe requests, cycled so each iteration sees a cold-endpoint
  // request like a live dispatch would. The row cache below fits the
  // recurring district stop rows (hot every dispatch) but not the churning
  // city-wide request endpoints — the steady state on city-scale networks:
  // per-pair mode computes one-shot endpoint rows every dispatch, while
  // batched mode serves endpoints with truncated sweeps that never touch
  // the cache.
  OracleOptions small = lru;
  small.lru_rows = 128;
  small.lru_shards = 1;  // per-shard capacity must fit the hot stop rows
  DistanceOracle cold_oracle(Net(), small);
  std::vector<RideRequest> probes(4096);
  for (size_t i = 0; i < probes.size(); ++i) {
    auto [o, d] = RandomPair(rng);
    probes[i].id = RequestId(1000 + i);
    probes[i].origin = o;
    probes[i].destination = d;
    probes[i].direct_cost = oracle.Cost(o, d);
    probes[i].deadline = 3.0 * probes[i].direct_cost;
  }
  LegCostFn cold_cost = [&](VertexId x, VertexId y) {
    return cold_oracle.Cost(x, y);
  };

  InsertionCostBatch batch(Net(), &cold_oracle);
  std::vector<VertexId> walk;
  const int64_t queries_before = cold_oracle.queries();
  const int64_t misses_before = cold_oracle.row_misses();
  size_t pi = 0;
  for (auto _ : state) {
    const RideRequest& probe = probes[pi++ % probes.size()];
    LegCostFn cost = cold_cost;
    if (batched) {
      batch.Begin(probe.origin, probe.destination);
      for (const Schedule& s : schedules) {
        walk.clear();
        walk.push_back(0);  // evaluation starts the walk at the taxi vertex
        for (const ScheduleEvent& e : s.events()) walk.push_back(e.vertex);
        batch.AddCandidate(walk);
      }
      batch.Prime();
      cost = [&](VertexId x, VertexId y) { return batch.Cost(x, y); };
    }
    for (int i = 0; i < kCandidates; ++i) {
      benchmark::DoNotOptimize(
          FindBestInsertionDp(schedules[i], probe, 0, 0.0, 0, 4, cost));
    }
  }
  state.counters["oracle_q"] =
      benchmark::Counter(double(cold_oracle.queries() - queries_before),
                         benchmark::Counter::kAvgIterations);
  // Every row miss settles the whole graph; truncated sweeps report their
  // own (smaller) settle counts.
  double settled =
      double(cold_oracle.row_misses() - misses_before) * Net().num_vertices() +
      double(batch.stats().settled_vertices);
  state.counters["settled"] =
      benchmark::Counter(settled, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_InsertionEvalRouting)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("batched");

// S3: ReindexTaxi first removes the taxi's old entries from every
// arrival-sorted partition list. Removal binary-searches each list by the
// membership's remembered arrival time; the previous linear scan-and-erase
// made every reindex O(taxis-per-partition). Larger fleets concentrate
// more taxis per partition, so the gap grows with the fleet argument.
void BM_TaxiIndexReindex(benchmark::State& state) {
  static MapPartitioning partitioning = GridPartition(Net(), 64);
  const int32_t fleet = int32_t(state.range(0));
  MtShareTaxiIndex index(Net(), partitioning, 0.707, 3600.0);
  Rng rng(29);
  std::vector<TaxiState> taxis(fleet);
  for (int32_t i = 0; i < fleet; ++i) {
    taxis[i].id = i;
    taxis[i].capacity = 3;
    taxis[i].location = VertexId(rng.NextInt(0, Net().num_vertices() - 1));
    index.ReindexTaxi(taxis[i], rng.NextUniform(0.0, 3600.0));
  }
  size_t next = 0;
  for (auto _ : state) {
    TaxiState& t = taxis[next++ % taxis.size()];
    t.location = VertexId(rng.NextInt(0, Net().num_vertices() - 1));
    index.ReindexTaxi(t, rng.NextUniform(0.0, 3600.0));
  }
}
BENCHMARK(BM_TaxiIndexReindex)->Arg(256)->Arg(1024)->Arg(4096);

// Advancement-core head-to-head on a fixed request stream while the fleet
// grows 100 -> 10k. Demand is constant, so larger fleets are mostly idle —
// the regime where the sweep core's per-boundary full-fleet walk wastes
// the most work and the event core's heap pops only the taxis with
// movement due. engine:0 is the legacy sweep, engine:1 the event core;
// both make bit-identical decisions (see EngineEquivalenceTest).
void BM_EngineAdvance(benchmark::State& state) {
  const int32_t fleet_size = int32_t(state.range(0));
  const bool event_driven = state.range(1) == 1;
  static DistanceOracle oracle(Net());
  Rng rng(31);
  // One simulated hour of evenly released city-wide trips, ids dense from
  // zero and sorted by release as the engine requires.
  std::vector<RideRequest> requests;
  while (requests.size() < 256) {
    auto [o, d] = RandomPair(rng);
    if (o == d) continue;
    RideRequest r;
    r.id = RequestId(requests.size());
    r.release_time = double(requests.size()) * (3600.0 / 256.0);
    r.origin = o;
    r.destination = d;
    r.direct_cost = oracle.Cost(o, d);
    r.deadline = r.release_time + 1.5 * r.direct_cost;
    requests.push_back(r);
  }
  for (auto _ : state) {
    state.PauseTiming();  // fleet + dispatcher construction is not the story
    std::vector<TaxiState> fleet = MakeFleet(Net(), fleet_size, 3, 7);
    MatchingConfig mconfig;
    // A tight searching range keeps candidate evaluation flat across fleet
    // sizes so the measurement tracks fleet advancement, not dispatch.
    mconfig.gamma_max_m = 600.0;
    NoSharingDispatcher dispatcher(Net(), &oracle, &fleet, mconfig);
    EngineOptions opts;
    opts.serve_offline = false;
    opts.event_driven = event_driven;
    SimulationEngine engine(Net(), &dispatcher, &fleet, opts);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.Run(requests));
  }
  state.SetLabel(event_driven ? "event" : "sweep");
}
BENCHMARK(BM_EngineAdvance)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->ArgNames({"fleet", "engine"})
    ->Unit(benchmark::kMillisecond);

void BM_KMeansGeo(benchmark::State& state) {
  std::vector<double> coords;
  coords.reserve(size_t(Net().num_vertices()) * 2);
  for (VertexId v = 0; v < Net().num_vertices(); ++v) {
    coords.push_back(Net().coord(v).x);
    coords.push_back(Net().coord(v).y);
  }
  KMeansOptions opt;
  opt.k = int32_t(state.range(0));
  for (auto _ : state) {
    Rng rng(11);
    benchmark::DoNotOptimize(KMeans(coords, 2, opt, rng));
  }
}
BENCHMARK(BM_KMeansGeo)->Arg(20)->Arg(60);

void BM_BipartitePartition(benchmark::State& state) {
  Rng rng(13);
  std::vector<OdPair> trips;
  for (int i = 0; i < 5000; ++i) {
    VertexId a = VertexId(rng.NextInt(0, Net().num_vertices() - 1));
    VertexId b = VertexId(rng.NextInt(0, Net().num_vertices() - 1));
    if (a != b) trips.emplace_back(a, b);
  }
  BipartiteOptions opt;
  opt.kappa = 48;
  opt.kt = 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BipartitePartition(Net(), trips, opt));
  }
}
BENCHMARK(BM_BipartitePartition)->Unit(benchmark::kMillisecond);

void BM_MobilityClusterAssign(benchmark::State& state) {
  Rng rng(17);
  MobilityClustering clustering(0.707);
  int64_t member = 0;
  for (auto _ : state) {
    MobilityVector mv{Point{rng.NextUniform(0, 5000), rng.NextUniform(0, 5000)},
                      Point{rng.NextUniform(0, 5000), rng.NextUniform(0, 5000)}};
    clustering.Assign(member++, mv);
    if (member > 400) {
      clustering.Remove(member - 400);  // bound the live population
    }
  }
}
BENCHMARK(BM_MobilityClusterAssign);

void BM_GridIndexRadiusQuery(benchmark::State& state) {
  GridIndex index(Net(), 200.0);
  Rng rng(19);
  for (auto _ : state) {
    Point q{rng.NextUniform(0, 5000), rng.NextUniform(0, 5000)};
    benchmark::DoNotOptimize(index.VerticesInRadius(q, 800.0));
  }
}
BENCHMARK(BM_GridIndexRadiusQuery);

}  // namespace
}  // namespace mtshare

BENCHMARK_MAIN();
