#ifndef MTSHARE_BENCH_BENCH_COMMON_H_
#define MTSHARE_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"
#include "sim/run_report.h"

namespace mtshare::bench {

/// Evaluation window (paper Sec. V-A1): peak = 8:00-9:00 of a workday with
/// the most hourly requests, nonpeak = 10:00-11:00 of a weekend with ~1/3
/// of the requests hidden as offline street hails.
enum class Window { kPeak, kNonPeak };

/// Workload scale relative to the paper. The paper runs 214k vertices /
/// 29.5k peak requests / 500-3000 taxis; the benches default to a ~2.3k
/// vertex city, ~2.4k peak requests and 60-300 taxis (every ratio
/// request:taxi preserved at ~1/10 scale; see EXPERIMENTS.md). Set the
/// environment variable MTSHARE_BENCH_FAST=1 to halve request counts and
/// fleet sizes for smoke runs.
struct BenchScale {
  int32_t peak_requests = 2400;
  int32_t nonpeak_requests = 1300;
  double nonpeak_offline_fraction = 5000.0 / 15480.0;
  std::vector<int32_t> fleet_sizes = {60, 120, 180, 240, 300};
  int32_t default_fleet = 300;
  int32_t historical_trips = 30000;
};

/// Scale adjusted for MTSHARE_BENCH_FAST.
///
/// Two more environment knobs apply to every bench: MTSHARE_BENCH_THREADS
/// caps the RunAll fan-out, and MTSHARE_BENCH_ENGINE=sweep|event picks the
/// engine's advancement core for A/B wall-clock runs (default event;
/// decision metrics are identical either way).
BenchScale GetScale();

/// The bench city: a 48x48 perturbed grid, 150 m blocks (~7 km on a side,
/// matching the paper's 2nd-Ring-Road extent), largest SCC.
RoadNetwork MakeBenchCity();

/// A fully constructed evaluation environment: city, demand model for the
/// window's day type, a scenario, and an MTShareSystem with the paper's
/// default parameters (overridable).
class BenchEnv {
 public:
  BenchEnv(Window window, const SystemConfig& config = SystemConfig{},
           int32_t num_requests = -1, double offline_fraction = -1.0,
           uint64_t seed = 77, int32_t window_hours = 1);

  MTShareSystem& system() { return *system_; }
  const Scenario& scenario() const { return scenario_; }
  const RoadNetwork& network() const { return network_; }
  const SystemConfig& config() const { return config_; }
  Window window() const { return window_; }

  /// Runs one scheme with the given fleet size on this scenario.
  Metrics Run(SchemeKind scheme, int32_t num_taxis);

  /// Appends this run to the current bench trajectory file (one JSON line
  /// per run in BENCH_<experiment>.json; see PrintBanner). Run/RunAll call
  /// it automatically; custom loops that build their own specs can call it
  /// for extra runs. No-op when reporting is disabled.
  void RecordRun(const ScenarioSpec& spec, const Metrics& metrics);

  /// Runs every job on this scenario, fanning the runs out across
  /// MTSHARE_BENCH_THREADS worker threads (default: hardware concurrency).
  /// Results come back in job order, and each run is bit-identical to a
  /// serial Run() — the shared system state (distance oracle) is
  /// thread-safe and fleet/engine state is per-run. Use for count-style
  /// sweeps (served requests, candidates); wall-clock metrics
  /// (response_ms, execution_seconds) get noisy when runs overlap, so
  /// timing figures should keep their serial loops or export
  /// MTSHARE_BENCH_THREADS=1.
  std::vector<Metrics> RunAll(const std::vector<ScenarioSpec>& jobs);

  /// Convenience: the cross product of schemes x fleet sizes as specs for
  /// RunAll, in scheme-major order.
  std::vector<ScenarioSpec> SweepJobs(const std::vector<SchemeKind>& schemes,
                                      const std::vector<int32_t>& fleets);

 private:
  Window window_;
  SystemConfig config_;
  RoadNetwork network_;
  std::unique_ptr<DemandModel> demand_;
  std::unique_ptr<DistanceOracle> scenario_oracle_;
  Scenario scenario_;
  std::unique_ptr<MTShareSystem> system_;
};

/// Printing helpers for paper-style tables. PrintBanner additionally arms
/// run-report trajectory logging: every subsequent BenchEnv::Run/RunAll
/// appends one JSON line per run to BENCH_<experiment-slug>.json (in
/// MTSHARE_BENCH_REPORT_DIR, default the working directory; set
/// MTSHARE_BENCH_REPORT=0 to disable). The line format is the run-report
/// schema documented in EXPERIMENTS.md.
void PrintBanner(const std::string& experiment, const std::string& paper_ref);

/// Appends one run to the armed trajectory file with a caller-built context
/// — for benches that construct their own network/system instead of a
/// BenchEnv (bench_scale streams requests through a RequestSource, so no
/// scenario request vector exists). ctx.experiment defaults to the banner
/// slug when left empty. No-op until PrintBanner armed reporting.
void RecordTrajectoryRun(const RunReportContext& ctx, const Metrics& metrics);
void PrintHeader(const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string Fmt(double value, int precision = 2);

}  // namespace mtshare::bench

#endif  // MTSHARE_BENCH_BENCH_COMMON_H_
