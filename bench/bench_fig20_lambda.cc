// Reproduces paper Fig. 20: impact of the direction threshold theta
// (lambda = cos theta) on mT-Share, peak scenario. Paper shape: increasing
// theta (loosening lambda) slightly raises served requests but inflates
// response time sharply (more candidates to examine); theta = 45 deg
// (lambda = 0.707) balances the two.
#include <cmath>

#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kPeak);
  PrintBanner("Fig. 20 — impact of direction threshold theta (peak, "
              "mT-Share)",
              "paper: served grows slightly with theta, response time grows "
              "sharply; theta=45deg is the balance point");
  PrintHeader({"theta deg", "lambda", "served", "candidates", "resp ms"});
  for (double theta : {30.0, 45.0, 60.0, 75.0}) {
    double lambda = std::cos(theta * M_PI / 180.0);
    MatchingConfig mc = env.config().matching;
    mc.lambda = lambda;
    env.system().set_matching(mc);
    Metrics m = env.Run(SchemeKind::kMtShare, scale.default_fleet);
    PrintRow({Fmt(theta, 0), Fmt(lambda, 3),
              std::to_string(m.ServedRequests()), Fmt(m.MeanCandidates(), 1),
              Fmt(m.MeanResponseMs(), 3)});
  }
  return 0;
}
