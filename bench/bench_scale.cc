// City-scale streamed sweep (extends Fig. 21 to the metropolitan regime).
// The paper's scalability claim — execution time linear in the replayed
// data, response time flat — is only meaningful at the scale the claim is
// about: 10^5+ vertices, 10^4 vehicles, 10^6 requests (the regime KaRRi
// and the Luo et al. peak-period study evaluate on). This bench builds a
// 100k+ vertex city, streams requests lazily through a
// GeneratorRequestSource (release times are the only pre-materialized
// state, 8 bytes/request), and sweeps fleet x request-count rows.
//
// Output: the usual paper-style table on stdout plus one trajectory line
// per row in BENCH_scale.json (schema-validated by report_smoke.cmake).
//
// Environment knobs (on top of the bench_common MTSHARE_BENCH_* set):
//   MTSHARE_SCALE_CI=1        reduced sizes for CI smoke legs (~4k-vertex
//                             city, small fleets/request counts)
//   MTSHARE_SCALE_ONLY=T:R    run the single row fleet=T, requests=R
//                             (e.g. 10000:1000000 for the acceptance row;
//                             also the A/B hook for before/after timing)
//   MTSHARE_SCALE_NETWORK=f   load an edge-list CSV instead of generating
//                             the grid city (largest SCC is extracted)
//   MTSHARE_SCALE_CANDIDATES=index | ch_buckets | both
//                             candidate-search path(s) per row (DESIGN.md
//                             §14; default index). `both` runs every row
//                             twice, index first — the committed A/B pair.
//                             Decision metrics must match between paths;
//                             the routing counters in the trajectory lines
//                             (settled_vertices, batch_queries,
//                             ellipse_pruned) carry the comparison.
#include <chrono>
#include <cstdlib>

#include "bench_common.h"
#include "common/string_util.h"
#include "graph/graph_io.h"
#include "sim/request_source.h"

using namespace mtshare;
using namespace mtshare::bench;

namespace {

struct ScaleRow {
  int32_t taxis = 0;
  int32_t requests = 0;
};

bool ScaleCi() {
  const char* env = std::getenv("MTSHARE_SCALE_CI");
  return env != nullptr && env[0] == '1';
}

/// MTSHARE_SCALE_ONLY="taxis:requests", strictly parsed.
bool ScaleOnlyRow(ScaleRow* out) {
  const char* env = std::getenv("MTSHARE_SCALE_ONLY");
  if (env == nullptr || env[0] == '\0') return false;
  const std::string spec{Trim(env)};
  const size_t colon = spec.find(':');
  int64_t taxis = 0;
  int64_t requests = 0;
  if (colon == std::string::npos ||
      !ParseInt64(spec.substr(0, colon), &taxis) ||
      !ParseInt64(spec.substr(colon + 1), &requests) || taxis <= 0 ||
      requests <= 0 || taxis > 1000000 || requests > 100000000) {
    std::fprintf(stderr,
                 "invalid MTSHARE_SCALE_ONLY='%s' (want taxis:requests, "
                 "both positive)\n",
                 env);
    std::exit(2);
  }
  out->taxis = static_cast<int32_t>(taxis);
  out->requests = static_cast<int32_t>(requests);
  return true;
}

/// MTSHARE_SCALE_CANDIDATES, strictly parsed ("both" = index then
/// ch_buckets per row).
std::vector<CandidateSearch> ScaleCandidatePaths() {
  const char* env = std::getenv("MTSHARE_SCALE_CANDIDATES");
  if (env == nullptr || env[0] == '\0') return {CandidateSearch::kIndex};
  const std::string spec{Trim(env)};
  if (spec == "both") {
    return {CandidateSearch::kIndex, CandidateSearch::kChBuckets};
  }
  CandidateSearch mode;
  if (!ParseCandidateSearch(spec, &mode)) {
    std::fprintf(stderr,
                 "invalid MTSHARE_SCALE_CANDIDATES='%s' (want "
                 "index|ch_buckets|both)\n",
                 env);
    std::exit(2);
  }
  return {mode};
}

RoadNetwork MakeScaleCity() {
  const char* file = std::getenv("MTSHARE_SCALE_NETWORK");
  if (file != nullptr && file[0] != '\0') {
    Result<RoadNetwork> loaded = LoadEdgeList(file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load MTSHARE_SCALE_NETWORK=%s: %s\n",
                   file, loaded.status().ToString().c_str());
      std::exit(1);
    }
    return ExtractLargestScc(loaded.value());
  }
  // 324x324 blocks ~= 105k vertices before the SCC trim — the same order
  // as the paper's Chengdu extract (214k) and KaRRi's metropolitan
  // instances. CI mode drops to ~4k vertices so the smoke leg stays in
  // exact-oracle territory and finishes in seconds.
  GridCityOptions opt;
  opt.rows = ScaleCi() ? 64 : 324;
  opt.cols = ScaleCi() ? 64 : 324;
  opt.spacing_m = 120.0;
  opt.seed = 20200961;
  return MakeGridCity(opt);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  PrintBanner("scale",
              "extends Fig. 21 to the metropolitan regime (10^5 vertices, "
              "10^4 taxis, 10^6 streamed requests): execution time linear "
              "in replayed data, flat response times");

  const uint64_t seed = 4242;
  const double t0 = NowSeconds();
  RoadNetwork network = MakeScaleCity();
  std::printf("city: %lld vertices, %lld arcs (%.1f s)\n",
              static_cast<long long>(network.num_vertices()),
              static_cast<long long>(network.num_edges()),
              NowSeconds() - t0);

  // Paper-faithful system parameters (Table II). kAuto picks the dense
  // exact table at CI scale and the contraction hierarchy on the 100k+
  // city — the backend the candidate search and insertion DP query.
  SystemConfig config;
  config.seed = seed;

  // Historical trips only; the evaluation stream is produced lazily below.
  // MakeScenario with num_requests=0 never touches its oracle (historical
  // trips come straight from the demand model), so a scratch LRU oracle —
  // capped by lru_max_bytes on the big city — avoids paying for a second
  // CH build.
  DemandModelOptions dopt;
  dopt.day = DayType::kWorkday;
  dopt.seed = seed + 1;
  DemandModel demand(network, dopt);
  OracleOptions scratch;
  if (network.num_vertices() > scratch.max_exact_vertices) {
    scratch.backend = OracleBackend::kLru;
  }
  DistanceOracle scratch_oracle(network, scratch);
  ScenarioOptions hist;
  hist.num_requests = 0;
  hist.num_historical_trips = ScaleCi() ? 10000 : 40000;
  hist.seed = seed + 2;
  Scenario scenario = MakeScenario(network, demand, scratch_oracle, hist);

  const double t1 = NowSeconds();
  auto system =
      MTShareSystem::Create(network, scenario.HistoricalOdPairs(), config);
  if (!system.ok()) {
    std::fprintf(stderr, "system: %s\n", system.status().ToString().c_str());
    return 1;
  }
  std::printf("system: %s oracle, %.1f s build\n",
              OracleBackendName(system.value()->oracle().backend()),
              NowSeconds() - t1);

  std::vector<ScaleRow> rows;
  ScaleRow only;
  if (ScaleOnlyRow(&only)) {
    rows = {only};
  } else if (ScaleCi()) {
    rows = {{150, 2000}, {1000, 4000}};
  } else {
    // Fleet sweep at fixed demand, then demand sweep at the 10k fleet up
    // to the 1M-request acceptance row.
    rows = {{1000, 250000},
            {10000, 250000},
            {50000, 250000},
            {10000, 1000000}};
  }

  const std::vector<CandidateSearch> paths = ScaleCandidatePaths();
  PrintHeader({"taxis", "requests", "cand", "served", "exec s", "resp ms",
               "req/s"});
  for (const ScaleRow& row : rows) {
    for (CandidateSearch path : paths) {
      MatchingConfig mc = system.value()->config().matching;
      mc.candidate_search = path;
      system.value()->set_matching(mc);
      // Replays 7:00-20:00 of a workday (the paper's Fig. 21 window). The
      // stream is deterministic per (demand, seed): the same row re-run
      // before and after a layout change — or on the other candidate path
      // — sees the identical request sequence, which is what makes the
      // A/B exec-time delta meaningful and lets the equivalence harness
      // pin decision metrics bit-wise.
      ScenarioOptions sopt;
      sopt.t_begin = 7 * 3600.0;
      sopt.t_end = 20 * 3600.0;
      sopt.num_requests = row.requests;
      sopt.rho = config.rho;
      sopt.seed = seed + 3;
      GeneratorRequestSource source(demand, system.value()->oracle(), sopt);

      ScenarioSpec spec;
      spec.scheme = SchemeKind::kMtShare;
      spec.source = &source;
      spec.num_taxis = row.taxis;
      spec.fleet_seed = seed + 4;
      Result<Metrics> result = system.value()->RunScenario(spec);
      if (!result.ok()) {
        std::fprintf(stderr, "row %d:%d failed: %s\n", row.taxis,
                     row.requests, result.status().ToString().c_str());
        return 1;
      }
      Metrics m = std::move(result).value();
      PrintRow({std::to_string(row.taxis), std::to_string(row.requests),
                CandidateSearchName(path), std::to_string(m.ServedRequests()),
                Fmt(m.execution_seconds, 2), Fmt(m.MeanResponseMs(), 3),
                Fmt(m.execution_seconds > 0 ? row.requests / m.execution_seconds
                                            : 0.0,
                    0)});

      RunReportContext ctx;
      ctx.scheme = SchemeName(spec.scheme);
      ctx.window = "peak";
      ctx.num_taxis = row.taxis;
      ctx.num_requests = row.requests;
      ctx.seed = seed;
      RecordTrajectoryRun(ctx, m);
    }
  }
  return 0;
}
