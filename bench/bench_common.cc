#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace mtshare::bench {

BenchScale GetScale() {
  BenchScale scale;
  const char* fast = std::getenv("MTSHARE_BENCH_FAST");
  if (fast != nullptr && fast[0] == '1') {
    scale.peak_requests /= 2;
    scale.nonpeak_requests /= 2;
    scale.fleet_sizes = {40, 80, 120, 160};
    scale.default_fleet = 160;
    scale.historical_trips /= 2;
  }
  return scale;
}

RoadNetwork MakeBenchCity() {
  GridCityOptions opt;
  opt.rows = 48;
  opt.cols = 48;
  opt.spacing_m = 150.0;
  opt.jitter_m = 25.0;
  opt.seed = 20200961;  // ICDE'20 paper id
  return MakeGridCity(opt);
}

BenchEnv::BenchEnv(Window window, const SystemConfig& config,
                   int32_t num_requests, double offline_fraction,
                   uint64_t seed, int32_t window_hours)
    : window_(window), config_(config), network_(MakeBenchCity()) {
  BenchScale scale = GetScale();
  DemandModelOptions dopt;
  dopt.day = window == Window::kPeak ? DayType::kWorkday : DayType::kWeekend;
  dopt.seed = seed;
  demand_ = std::make_unique<DemandModel>(network_, dopt);
  scenario_oracle_ = std::make_unique<DistanceOracle>(network_);

  ScenarioOptions sopt;
  if (window == Window::kPeak) {
    sopt.t_begin = 8 * 3600.0;
    sopt.t_end = sopt.t_begin + window_hours * 3600.0;
    sopt.num_requests =
        num_requests > 0 ? num_requests : scale.peak_requests;
    sopt.offline_fraction = offline_fraction >= 0 ? offline_fraction : 0.0;
  } else {
    sopt.t_begin = 10 * 3600.0;
    sopt.t_end = sopt.t_begin + window_hours * 3600.0;
    sopt.num_requests =
        num_requests > 0 ? num_requests : scale.nonpeak_requests;
    sopt.offline_fraction = offline_fraction >= 0
                                ? offline_fraction
                                : scale.nonpeak_offline_fraction;
  }
  sopt.rho = config_.rho;
  sopt.num_historical_trips = scale.historical_trips;
  sopt.seed = seed + 1;
  scenario_ = MakeScenario(network_, *demand_, *scenario_oracle_, sopt);

  system_ = std::make_unique<MTShareSystem>(
      network_, scenario_.HistoricalOdPairs(), config_);
}

Metrics BenchEnv::Run(SchemeKind scheme, int32_t num_taxis) {
  ScenarioSpec spec;
  spec.scheme = scheme;
  spec.requests = &scenario_.requests;
  spec.num_taxis = num_taxis;
  Result<Metrics> result = system_->RunScenario(spec);
  MTSHARE_CHECK(result.ok());
  return std::move(result).value();
}

std::vector<Metrics> BenchEnv::RunAll(const std::vector<ScenarioSpec>& jobs) {
  const char* env = std::getenv("MTSHARE_BENCH_THREADS");
  const int32_t threads =
      ThreadPool::DefaultThreads(env != nullptr ? std::atoi(env) : 0);
  std::vector<Metrics> results(jobs.size());
  ThreadPool pool(threads);
  pool.ParallelFor(jobs.size(), [&](size_t i) {
    ScenarioSpec spec = jobs[i];
    if (spec.requests == nullptr) spec.requests = &scenario_.requests;
    Result<Metrics> r = system_->RunScenario(spec);
    MTSHARE_CHECK(r.ok());
    results[i] = std::move(r).value();
  });
  return results;
}

std::vector<ScenarioSpec> BenchEnv::SweepJobs(
    const std::vector<SchemeKind>& schemes,
    const std::vector<int32_t>& fleets) {
  std::vector<ScenarioSpec> jobs;
  jobs.reserve(schemes.size() * fleets.size());
  for (SchemeKind scheme : schemes) {
    for (int32_t taxis : fleets) {
      ScenarioSpec spec;
      spec.scheme = scheme;
      spec.requests = &scenario_.requests;
      spec.num_taxis = taxis;
      jobs.push_back(spec);
    }
  }
  return jobs;
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

void PrintHeader(const std::vector<std::string>& columns) {
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("  ------------");
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%14s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double value, int precision) {
  return FormatDouble(value, precision);
}

}  // namespace mtshare::bench
