#include "bench_common.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "sim/run_report.h"

namespace mtshare::bench {

namespace {

// Trajectory state armed by PrintBanner (benches are single-experiment
// processes; the mutex covers RecordRun calls from parallel sweeps).
std::string g_report_path;  // empty = reporting disabled / not armed
std::string g_report_experiment;
std::mutex g_report_mutex;

std::string SlugFromBanner(const std::string& experiment) {
  std::string slug;
  for (char c : experiment) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
    if (slug.size() >= 48) break;
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug.empty() ? "run" : slug;
}

/// MTSHARE_BENCH_ENGINE=sweep|event selects the advancement core for every
/// bench run (default event, like the CLI). Decision metrics are identical
/// either way, so this only matters for wall-clock A/B runs (fig21).
bool BenchEventDriven() {
  const char* env = std::getenv("MTSHARE_BENCH_ENGINE");
  if (env == nullptr || env[0] == '\0') return true;
  const std::string mode{Trim(env)};
  if (mode == "event") return true;
  if (mode == "sweep") return false;
  std::fprintf(stderr,
               "invalid MTSHARE_BENCH_ENGINE='%s' (want sweep|event)\n", env);
  std::exit(2);
}

/// MTSHARE_BENCH_THREADS, strictly parsed: garbage ("abc", "-3") is a
/// hard error instead of atoi's silent 0 ("all cores").
int32_t BenchThreads() {
  const char* env = std::getenv("MTSHARE_BENCH_THREADS");
  if (env == nullptr) return ThreadPool::DefaultThreads(0);
  int64_t value = 0;
  if (!ParseInt64(Trim(env), &value) || value < 0 || value > 1024) {
    std::fprintf(stderr,
                 "invalid MTSHARE_BENCH_THREADS='%s' (want an integer in "
                 "[0, 1024]; 0 = all cores)\n",
                 env);
    std::exit(2);
  }
  return ThreadPool::DefaultThreads(static_cast<int32_t>(value));
}

}  // namespace

BenchScale GetScale() {
  BenchScale scale;
  const char* fast = std::getenv("MTSHARE_BENCH_FAST");
  if (fast != nullptr && fast[0] == '1') {
    scale.peak_requests /= 2;
    scale.nonpeak_requests /= 2;
    scale.fleet_sizes = {40, 80, 120, 160};
    scale.default_fleet = 160;
    scale.historical_trips /= 2;
  }
  return scale;
}

RoadNetwork MakeBenchCity() {
  GridCityOptions opt;
  opt.rows = 48;
  opt.cols = 48;
  opt.spacing_m = 150.0;
  opt.jitter_m = 25.0;
  opt.seed = 20200961;  // ICDE'20 paper id
  return MakeGridCity(opt);
}

BenchEnv::BenchEnv(Window window, const SystemConfig& config,
                   int32_t num_requests, double offline_fraction,
                   uint64_t seed, int32_t window_hours)
    : window_(window), config_(config), network_(MakeBenchCity()) {
  BenchScale scale = GetScale();
  DemandModelOptions dopt;
  dopt.day = window == Window::kPeak ? DayType::kWorkday : DayType::kWeekend;
  dopt.seed = seed;
  demand_ = std::make_unique<DemandModel>(network_, dopt);
  scenario_oracle_ = std::make_unique<DistanceOracle>(network_);

  ScenarioOptions sopt;
  if (window == Window::kPeak) {
    sopt.t_begin = 8 * 3600.0;
    sopt.t_end = sopt.t_begin + window_hours * 3600.0;
    sopt.num_requests =
        num_requests > 0 ? num_requests : scale.peak_requests;
    sopt.offline_fraction = offline_fraction >= 0 ? offline_fraction : 0.0;
  } else {
    sopt.t_begin = 10 * 3600.0;
    sopt.t_end = sopt.t_begin + window_hours * 3600.0;
    sopt.num_requests =
        num_requests > 0 ? num_requests : scale.nonpeak_requests;
    sopt.offline_fraction = offline_fraction >= 0
                                ? offline_fraction
                                : scale.nonpeak_offline_fraction;
  }
  sopt.rho = config_.rho;
  sopt.num_historical_trips = scale.historical_trips;
  sopt.seed = seed + 1;
  scenario_ = MakeScenario(network_, *demand_, *scenario_oracle_, sopt);

  system_ = std::make_unique<MTShareSystem>(
      network_, scenario_.HistoricalOdPairs(), config_);
}

Metrics BenchEnv::Run(SchemeKind scheme, int32_t num_taxis) {
  ScenarioSpec spec;
  spec.scheme = scheme;
  spec.requests = &scenario_.requests;
  spec.num_taxis = num_taxis;
  spec.event_driven = BenchEventDriven();
  Result<Metrics> result = system_->RunScenario(spec);
  MTSHARE_CHECK(result.ok());
  Metrics metrics = std::move(result).value();
  RecordRun(spec, metrics);
  return metrics;
}

void BenchEnv::RecordRun(const ScenarioSpec& spec, const Metrics& metrics) {
  std::lock_guard<std::mutex> lock(g_report_mutex);
  if (g_report_path.empty()) return;
  RunReportContext ctx;
  ctx.experiment = g_report_experiment;
  ctx.scheme = SchemeName(spec.scheme);
  ctx.window = window_ == Window::kPeak ? "peak" : "nonpeak";
  ctx.num_taxis = spec.num_taxis;
  ctx.num_requests = static_cast<int32_t>(scenario_.requests.size());
  ctx.seed = spec.fleet_seed;
  Status appended = AppendRunReportLine(g_report_path, ctx, metrics);
  if (!appended.ok()) {
    // A broken trajectory file must not kill a multi-minute bench run;
    // warn once and disarm.
    std::fprintf(stderr, "bench report disabled: %s\n",
                 appended.ToString().c_str());
    g_report_path.clear();
  }
}

void RecordTrajectoryRun(const RunReportContext& ctx, const Metrics& metrics) {
  std::lock_guard<std::mutex> lock(g_report_mutex);
  if (g_report_path.empty()) return;
  RunReportContext line = ctx;
  if (line.experiment.empty()) line.experiment = g_report_experiment;
  Status appended = AppendRunReportLine(g_report_path, line, metrics);
  if (!appended.ok()) {
    std::fprintf(stderr, "bench report disabled: %s\n",
                 appended.ToString().c_str());
    g_report_path.clear();
  }
}

std::vector<Metrics> BenchEnv::RunAll(const std::vector<ScenarioSpec>& jobs) {
  const int32_t threads = BenchThreads();
  std::vector<Metrics> results(jobs.size());
  std::vector<ScenarioSpec> resolved(jobs);
  for (ScenarioSpec& spec : resolved) {
    if (spec.requests == nullptr) spec.requests = &scenario_.requests;
    spec.event_driven = BenchEventDriven();
  }
  ThreadPool pool(threads);
  pool.ParallelFor(jobs.size(), [&](size_t i) {
    Result<Metrics> r = system_->RunScenario(resolved[i]);
    MTSHARE_CHECK(r.ok());
    results[i] = std::move(r).value();
  });
  // Trajectory entries go out in job order once the sweep settles, so the
  // file order is deterministic no matter how the pool scheduled the runs.
  for (size_t i = 0; i < resolved.size(); ++i) {
    RecordRun(resolved[i], results[i]);
  }
  return results;
}

std::vector<ScenarioSpec> BenchEnv::SweepJobs(
    const std::vector<SchemeKind>& schemes,
    const std::vector<int32_t>& fleets) {
  std::vector<ScenarioSpec> jobs;
  jobs.reserve(schemes.size() * fleets.size());
  for (SchemeKind scheme : schemes) {
    for (int32_t taxis : fleets) {
      ScenarioSpec spec;
      spec.scheme = scheme;
      spec.requests = &scenario_.requests;
      spec.num_taxis = taxis;
      jobs.push_back(spec);
    }
  }
  return jobs;
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");

  // Arm trajectory logging: one BENCH_<slug>.json per experiment, one JSON
  // line per subsequent run.
  std::lock_guard<std::mutex> lock(g_report_mutex);
  const char* enabled = std::getenv("MTSHARE_BENCH_REPORT");
  if (enabled != nullptr && enabled[0] == '0') {
    g_report_path.clear();
    return;
  }
  const char* dir = std::getenv("MTSHARE_BENCH_REPORT_DIR");
  std::string prefix = dir != nullptr && dir[0] != '\0'
                           ? std::string(dir) + "/"
                           : std::string();
  g_report_experiment = SlugFromBanner(experiment);
  g_report_path = prefix + "BENCH_" + g_report_experiment + ".json";
}

void PrintHeader(const std::vector<std::string>& columns) {
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("  ------------");
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%14s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double value, int precision) {
  return FormatDouble(value, precision);
}

}  // namespace mtshare::bench
