// Reproduces paper Table V: bipartite (mobility-aware) map partitioning vs.
// the traditional grid partitioning, in both scenarios. Paper shape:
// bipartite improves served requests by >= 6% and cuts detour by 3-7%.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

namespace {

void RunWindow(Window window, const char* label, SchemeKind scheme) {
  BenchScale scale = mtshare::bench::GetScale();
  std::printf("\n--- %s (%s) ---\n", label, SchemeName(scheme));
  PrintHeader({"strategy", "served", "offline", "detour min", "wait min"});
  for (bool bipartite : {false, true}) {
    SystemConfig cfg;
    cfg.bipartite_partitioning = bipartite;
    BenchEnv env(window, cfg);
    Metrics m = env.Run(scheme, scale.default_fleet);
    PrintRow({bipartite ? "bipartite" : "grid",
              std::to_string(m.ServedRequests()),
              std::to_string(m.ServedOffline()), Fmt(m.MeanDetourMinutes(), 2),
              Fmt(m.MeanWaitingMinutes(), 2)});
  }
}

}  // namespace

int main() {
  PrintBanner("Table V — map partitioning strategies",
              "paper: bipartite serves >=6% more and cuts detour 3-7% vs "
              "grid, in both scenarios");
  RunWindow(Window::kPeak, "peak scenario", SchemeKind::kMtShare);
  RunWindow(Window::kNonPeak, "nonpeak scenario", SchemeKind::kMtSharePro);
  return 0;
}
