// Reproduces paper Fig. 10: served requests vs. fleet size in the nonpeak
// scenario (10:00-11:00 weekend, ~1/3 of requests offline). Paper shape:
// ridesharing's edge over No-Sharing shrinks (T-Share ~ No-Sharing in some
// settings); mT-Share-pro serves the most (probabilistic routing adds
// 13-24% over mT-Share; +62% over T-Share, +58% over pGreedyDP).
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kNonPeak);
  PrintBanner(
      "Fig. 10 — served requests in nonpeak scenario",
      "paper: mT-Share-pro serves 13-24% more than mT-Share, 62%/58% more "
      "than T-Share/pGreedyDP");
  std::printf("requests: %d (%d offline)\n",
              static_cast<int>(env.scenario().requests.size()),
              env.scenario().CountOffline());
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share",
               "mT-Share-pro"});
  // Served counts are thread-schedule independent, so the whole
  // scheme x fleet grid fans out across MTSHARE_BENCH_THREADS workers.
  const std::vector<SchemeKind> schemes = {
      SchemeKind::kNoSharing, SchemeKind::kTShare, SchemeKind::kPGreedyDp,
      SchemeKind::kMtShare, SchemeKind::kMtSharePro};
  std::vector<Metrics> results =
      env.RunAll(env.SweepJobs(schemes, scale.fleet_sizes));
  const size_t num_fleets = scale.fleet_sizes.size();
  for (size_t f = 0; f < num_fleets; ++f) {
    std::vector<std::string> row = {std::to_string(scale.fleet_sizes[f])};
    for (size_t s = 0; s < schemes.size(); ++s) {
      row.push_back(
          std::to_string(results[s * num_fleets + f].ServedRequests()));
    }
    PrintRow(row);
  }
  return 0;
}
