// Reproduces paper Fig. 10: served requests vs. fleet size in the nonpeak
// scenario (10:00-11:00 weekend, ~1/3 of requests offline). Paper shape:
// ridesharing's edge over No-Sharing shrinks (T-Share ~ No-Sharing in some
// settings); mT-Share-pro serves the most (probabilistic routing adds
// 13-24% over mT-Share; +62% over T-Share, +58% over pGreedyDP).
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kNonPeak);
  PrintBanner(
      "Fig. 10 — served requests in nonpeak scenario",
      "paper: mT-Share-pro serves 13-24% more than mT-Share, 62%/58% more "
      "than T-Share/pGreedyDP");
  std::printf("requests: %d (%d offline)\n",
              static_cast<int>(env.scenario().requests.size()),
              env.scenario().CountOffline());
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share",
               "mT-Share-pro"});
  for (int32_t taxis : scale.fleet_sizes) {
    Metrics none = env.Run(SchemeKind::kNoSharing, taxis);
    Metrics tshare = env.Run(SchemeKind::kTShare, taxis);
    Metrics pgreedy = env.Run(SchemeKind::kPGreedyDp, taxis);
    Metrics mt = env.Run(SchemeKind::kMtShare, taxis);
    Metrics pro = env.Run(SchemeKind::kMtSharePro, taxis);
    PrintRow({std::to_string(taxis), std::to_string(none.ServedRequests()),
              std::to_string(tshare.ServedRequests()),
              std::to_string(pgreedy.ServedRequests()),
              std::to_string(mt.ServedRequests()),
              std::to_string(pro.ServedRequests())});
  }
  return 0;
}
