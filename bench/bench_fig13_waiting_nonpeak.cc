// Reproduces paper Fig. 13: waiting time vs. fleet size, nonpeak scenario.
// Paper shape: waiting larger than in the peak (fewer requests, longer
// approaches), falls with fleet size; mT-Share-pro the largest (~2 min over
// pGreedyDP) because probabilistic routes lengthen approaches.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kNonPeak);
  PrintBanner("Fig. 13 — waiting time in nonpeak scenario (minutes)",
              "paper: decreasing in fleet size; mT-Share-pro largest");
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share",
               "mT-Share-pro"});
  for (int32_t taxis : scale.fleet_sizes) {
    Metrics none = env.Run(SchemeKind::kNoSharing, taxis);
    Metrics tshare = env.Run(SchemeKind::kTShare, taxis);
    Metrics pgreedy = env.Run(SchemeKind::kPGreedyDp, taxis);
    Metrics mt = env.Run(SchemeKind::kMtShare, taxis);
    Metrics pro = env.Run(SchemeKind::kMtSharePro, taxis);
    PrintRow({std::to_string(taxis), Fmt(none.MeanWaitingMinutes(), 2),
              Fmt(tshare.MeanWaitingMinutes(), 2),
              Fmt(pgreedy.MeanWaitingMinutes(), 2),
              Fmt(mt.MeanWaitingMinutes(), 2),
              Fmt(pro.MeanWaitingMinutes(), 2)});
  }
  return 0;
}
