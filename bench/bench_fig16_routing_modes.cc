// Reproduces paper Fig. 16: composition of served requests (online vs
// offline) when T-Share, pGreedyDP, and mT-Share are combined with (a)
// basic routing or (b) probabilistic routing, nonpeak scenario. Paper
// shape: basic-routing schemes meet a few offline passengers by chance;
// probabilistic routing raises offline serves substantially (+89%/+46%/+34%
// for T-Share/pGreedyDP/mT-Share) and total serves by +26%/+17%/+14%.
#include "bench_common.h"
#include "sim/engine.h"

using namespace mtshare;
using namespace mtshare::bench;

namespace {

struct ModeResult {
  int32_t online = 0;
  int32_t offline = 0;
};

ModeResult RunMode(BenchEnv& env, SchemeKind scheme, bool probabilistic,
                   int32_t taxis) {
  MTShareSystem& sys = env.system();
  auto fleet = MakeFleet(env.network(), taxis, sys.config().taxi_capacity, 1,
                         env.scenario().requests.front().release_time);
  SchemeKind effective = scheme;
  if (scheme == SchemeKind::kMtShare && probabilistic) {
    effective = SchemeKind::kMtSharePro;
  }
  auto dispatcher = sys.MakeDispatcher(effective, &fleet);
  if (probabilistic && scheme != SchemeKind::kMtShare) {
    // Baseline "+ probabilistic routing": arm the offline-seeking idle
    // cruiser on top of the unchanged matching logic (Sec. V-C5 combines
    // each scheme with each routing mode).
    auto planner = std::make_unique<RoutePlanner>(
        env.network(), sys.partitioning(), sys.landmarks(),
        &sys.transitions(), &sys.oracle(), RoutePlannerOptions{});
    dispatcher->EnableIdleCruising(&sys.partitioning(), std::move(planner));
  }
  EngineOptions eopts;
  eopts.payment = sys.config().payment;
  SimulationEngine engine(env.network(), dispatcher.get(), &fleet, eopts);
  Metrics m = engine.Run(env.scenario().requests);
  return ModeResult{m.ServedOnline(), m.ServedOffline()};
}

}  // namespace

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kNonPeak);
  PrintBanner("Fig. 16 — routing modes and served-request composition "
              "(nonpeak)",
              "paper: probabilistic routing brings +89%/+46%/+34% offline "
              "serves for T-Share/pGreedyDP/mT-Share (+26%/+17%/+14% total)");
  PrintHeader({"scheme", "mode", "online", "offline", "total"});
  for (SchemeKind scheme : {SchemeKind::kTShare, SchemeKind::kPGreedyDp,
                            SchemeKind::kMtShare}) {
    ModeResult basic = RunMode(env, scheme, false, scale.default_fleet);
    ModeResult prob = RunMode(env, scheme, true, scale.default_fleet);
    PrintRow({std::string(SchemeName(scheme)), "basic",
              std::to_string(basic.online), std::to_string(basic.offline),
              std::to_string(basic.online + basic.offline)});
    PrintRow({std::string(SchemeName(scheme)), "probabilistic",
              std::to_string(prob.online), std::to_string(prob.offline),
              std::to_string(prob.online + prob.offline)});
  }
  return 0;
}
