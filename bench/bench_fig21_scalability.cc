// Reproduces paper Fig. 21: scalability in the amount of processed data.
// The paper replays 7:00-20:00 of a workday with mT-Share and of a weekend
// with mT-Share-pro (1/3 offline), growing the number of replayed hours:
// (a) total execution time rises linearly with the data amount;
// (b) mean response time stays flat (the system does not degrade).
// We replay 1..5 hours at the bench request rate (scaled from the paper's
// 13 hours; same linearity/flatness checks).
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

namespace {

void RunSeries(Window window, SchemeKind scheme, int32_t per_hour,
               double offline_fraction, int32_t taxis) {
  std::printf("\n--- %s, %s ---\n",
              window == Window::kPeak ? "workday" : "weekend",
              SchemeName(scheme));
  PrintHeader({"hours", "requests", "exec s", "resp ms"});
  for (int32_t hours = 1; hours <= 5; ++hours) {
    SystemConfig cfg;
    BenchEnv env(window, cfg, per_hour * hours, offline_fraction,
                 /*seed=*/900 + hours, /*window_hours=*/hours);
    Metrics m = env.Run(scheme, taxis);
    PrintRow({std::to_string(hours),
              std::to_string(static_cast<int>(env.scenario().requests.size())),
              Fmt(m.execution_seconds, 2), Fmt(m.MeanResponseMs(), 3)});
  }
}

}  // namespace

int main() {
  BenchScale scale = GetScale();
  PrintBanner("Fig. 21 — scalability with the amount of replayed data",
              "paper: execution time linear in hours of data; response time "
              "flat (110 ms workday / 420 ms weekend)");
  // Multi-hour windows reuse the scenario generator with wider [t0, t1):
  // BenchEnv interprets num_requests over its window; here we stretch the
  // window by asking for hours * rate requests across [window start,
  // window start + hours).
  RunSeries(Window::kPeak, SchemeKind::kMtShare, scale.peak_requests / 2,
            0.0, scale.default_fleet);
  RunSeries(Window::kNonPeak, SchemeKind::kMtSharePro,
            scale.nonpeak_requests / 2, 1.0 / 3.0, scale.default_fleet);
  return 0;
}
