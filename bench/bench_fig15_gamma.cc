// Reproduces paper Fig. 15: impact of the searching range gamma on detour
// and waiting time, peak scenario. Paper shape: both grow with gamma (a
// larger range admits farther taxis with larger detours); No-Sharing has
// no detour; T-Share keeps the best detour+wait sum, mT-Share better than
// pGreedyDP.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kPeak);
  PrintBanner("Fig. 15 — impact of searching range gamma (peak)",
              "paper: detour+waiting grow with gamma; T-Share best service "
              "quality, mT-Share better than pGreedyDP");
  PrintHeader({"gamma m", "scheme", "served", "detour min", "wait min",
               "sum min"});
  for (double gamma : {500.0, 1000.0, 1500.0, 2000.0, 2500.0}) {
    MatchingConfig mc = env.config().matching;
    mc.gamma_max_m = gamma;
    env.system().set_matching(mc);
    for (SchemeKind scheme :
         {SchemeKind::kNoSharing, SchemeKind::kTShare, SchemeKind::kPGreedyDp,
          SchemeKind::kMtShare}) {
      Metrics m = env.Run(scheme, scale.default_fleet);
      double detour = m.MeanDetourMinutes();
      double wait = m.MeanWaitingMinutes();
      PrintRow({Fmt(gamma, 0), std::string(SchemeName(scheme)),
                std::to_string(m.ServedRequests()), Fmt(detour, 2),
                Fmt(wait, 2), Fmt(detour + wait, 2)});
    }
  }
  return 0;
}
