// Reproduces paper Fig. 6: number of served requests vs. fleet size in the
// peak scenario (8:00-9:00 workday). Paper shape: ridesharing >> No-Sharing;
// mT-Share serves the most (42% over T-Share, 36% over pGreedyDP at 3000
// taxis); all schemes grow with fleet size.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kPeak);
  PrintBanner(
      "Fig. 6 — served requests in peak scenario",
      "paper @3000 taxis: No-Sharing 6534, T-Share 8441, pGreedyDP 8868, "
      "mT-Share 11906 (of 29534)");
  std::printf("requests: %d (scaled from 29534)\n",
              env.scenario().requests.size() > 0
                  ? static_cast<int>(env.scenario().requests.size())
                  : 0);
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share"});
  for (int32_t taxis : scale.fleet_sizes) {
    Metrics none = env.Run(SchemeKind::kNoSharing, taxis);
    Metrics tshare = env.Run(SchemeKind::kTShare, taxis);
    Metrics pgreedy = env.Run(SchemeKind::kPGreedyDp, taxis);
    Metrics mt = env.Run(SchemeKind::kMtShare, taxis);
    PrintRow({std::to_string(taxis), std::to_string(none.ServedRequests()),
              std::to_string(tshare.ServedRequests()),
              std::to_string(pgreedy.ServedRequests()),
              std::to_string(mt.ServedRequests())});
  }
  return 0;
}
