// Reproduces paper Fig. 6: number of served requests vs. fleet size in the
// peak scenario (8:00-9:00 workday). Paper shape: ridesharing >> No-Sharing;
// mT-Share serves the most (42% over T-Share, 36% over pGreedyDP at 3000
// taxis); all schemes grow with fleet size.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kPeak);
  PrintBanner(
      "Fig. 6 — served requests in peak scenario",
      "paper @3000 taxis: No-Sharing 6534, T-Share 8441, pGreedyDP 8868, "
      "mT-Share 11906 (of 29534)");
  std::printf("requests: %d (scaled from 29534)\n",
              env.scenario().requests.size() > 0
                  ? static_cast<int>(env.scenario().requests.size())
                  : 0);
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share"});
  // Served counts are thread-schedule independent, so the whole
  // scheme x fleet grid fans out across MTSHARE_BENCH_THREADS workers.
  const std::vector<SchemeKind> schemes = {
      SchemeKind::kNoSharing, SchemeKind::kTShare, SchemeKind::kPGreedyDp,
      SchemeKind::kMtShare};
  std::vector<Metrics> results =
      env.RunAll(env.SweepJobs(schemes, scale.fleet_sizes));
  const size_t num_fleets = scale.fleet_sizes.size();
  for (size_t f = 0; f < num_fleets; ++f) {
    std::vector<std::string> row = {std::to_string(scale.fleet_sizes[f])};
    for (size_t s = 0; s < schemes.size(); ++s) {
      row.push_back(
          std::to_string(results[s * num_fleets + f].ServedRequests()));
    }
    PrintRow(row);
  }
  return 0;
}
