// Service-mode throughput: dispatch rate (req/s of engine wall-clock) and
// p99 dispatch latency for every scheme across the batch-window settings
// of the streaming ingest path (DESIGN.md §12). Batch windows are
// simulated time: at the bench arrival rate a 50-200 ms window coalesces
// only co-released requests, so the sweep primarily measures the overhead
// of the batch machinery against the Δt=0 per-request baseline, plus the
// latency effect where bursts do line up.
#include "bench_common.h"
#include "common/logging.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kPeak);
  PrintBanner("Serve",
              "service mode (no paper figure): req/s and p99 dispatch "
              "latency vs batch window, peak workload");
  std::printf("requests: %d, taxis: %d, windows: 0/50/200 ms\n",
              static_cast<int>(env.scenario().requests.size()),
              scale.default_fleet);
  PrintHeader({"window_ms", "scheme", "req/s", "p99_ms", "batches",
               "queue_depth"});

  const std::vector<SchemeKind> schemes = {
      SchemeKind::kNoSharing, SchemeKind::kTShare, SchemeKind::kPGreedyDp,
      SchemeKind::kMtShare, SchemeKind::kMtSharePro};
  // Serial loop: this bench reports wall-clock numbers, which get noisy
  // when runs overlap (see BenchEnv::RunAll).
  for (double window_ms : {0.0, 50.0, 200.0}) {
    for (SchemeKind scheme : schemes) {
      ScenarioSpec spec;
      spec.scheme = scheme;
      spec.requests = &env.scenario().requests;
      spec.num_taxis = scale.default_fleet;
      spec.batch_window_ms = window_ms;
      Result<Metrics> run = env.system().RunScenario(spec);
      MTSHARE_CHECK(run.ok());
      Metrics m = std::move(run).value();
      env.RecordRun(spec, m);
      const double reqs_per_s =
          m.execution_seconds > 0
              ? m.serve.admitted / m.execution_seconds
              : 0.0;
      PrintRow({Fmt(window_ms, 0), SchemeName(scheme), Fmt(reqs_per_s, 0),
                Fmt(m.response_hist().Percentile(0.99), 3),
                std::to_string(m.serve.batches),
                std::to_string(m.serve.queue_depth)});
    }
  }
  return 0;
}
