// Ablations of the design choices DESIGN.md calls out (not a paper figure;
// complements Figs. 14/16/20 with the knobs this implementation adds):
//   (a) cluster matching: single best cluster C_a (the literal eq. (3)) vs
//       the union of all direction-compatible clusters;
//   (b) probabilistic-leg stretch budget: how far offline-seeking detours
//       may exceed the shortest leg;
//   (c) offline-encounter radius: how far a driver can spot a hailer;
//   (d) static plans under congestion: how many statically planned direct
//       routes would miss their rho-deadline when re-timed under rush-hour
//       traffic (the paper's "extend to real-time traffic" remark, audited).
#include "bench_common.h"
#include "sim/engine.h"
#include "traffic/congestion.h"

using namespace mtshare;
using namespace mtshare::bench;

namespace {

Metrics RunWithEngine(BenchEnv& env, SchemeKind scheme, int32_t taxis,
                      double encounter_radius) {
  MTShareSystem& sys = env.system();
  auto fleet = MakeFleet(env.network(), taxis, sys.config().taxi_capacity, 1,
                         env.scenario().requests.front().release_time);
  auto dispatcher = sys.MakeDispatcher(scheme, &fleet);
  EngineOptions eopts;
  eopts.payment = sys.config().payment;
  eopts.encounter_radius_m = encounter_radius;
  SimulationEngine engine(env.network(), dispatcher.get(), &fleet, eopts);
  return engine.Run(env.scenario().requests);
}

}  // namespace

int main() {
  BenchScale scale = GetScale();

  PrintBanner("Ablation (a) — mobility-cluster matching rule (peak)",
              "single best cluster C_a (literal eq. 3) vs all compatible "
              "clusters");
  {
    PrintHeader({"rule", "served", "candidates", "resp ms"});
    for (bool match_all : {false, true}) {
      BenchEnv env(Window::kPeak);
      MatchingConfig mc = env.config().matching;
      mc.match_all_compatible_clusters = match_all;
      env.system().set_matching(mc);
      Metrics m = env.Run(SchemeKind::kMtShare, scale.default_fleet);
      PrintRow({match_all ? "all-compatible" : "single-best",
                std::to_string(m.ServedRequests()),
                Fmt(m.MeanCandidates(), 1), Fmt(m.MeanResponseMs(), 3)});
    }
  }

  PrintBanner("Ablation (b) — probabilistic leg stretch budget (nonpeak)",
              "larger budgets chase more encounter mass but eat deadline "
              "slack");
  {
    BenchEnv env(Window::kNonPeak);
    PrintHeader({"stretch", "served", "online", "offline", "detour min"});
    for (double stretch : {1.0, 1.25, 1.5, 2.0, 3.0}) {
      MatchingConfig mc = env.config().matching;
      mc.prob_max_stretch = stretch;
      env.system().set_matching(mc);
      Metrics m = env.Run(SchemeKind::kMtSharePro, scale.default_fleet);
      PrintRow({Fmt(stretch, 2), std::to_string(m.ServedRequests()),
                std::to_string(m.ServedOnline()),
                std::to_string(m.ServedOffline()),
                Fmt(m.MeanDetourMinutes(), 2)});
    }
  }

  PrintBanner("Ablation (c) — offline-encounter radius (nonpeak, pro)",
              "0 m = must drive over the exact corner the hailer stands on");
  {
    BenchEnv env(Window::kNonPeak);
    PrintHeader({"radius m", "served", "offline"});
    for (double radius : {1.0, 100.0, 200.0, 400.0}) {
      Metrics m = RunWithEngine(env, SchemeKind::kMtSharePro,
                                scale.default_fleet, radius);
      PrintRow({Fmt(radius, 0), std::to_string(m.ServedRequests()),
                std::to_string(m.ServedOffline())});
    }
  }

  PrintBanner("Ablation (d) — static plans under rush-hour congestion",
              "fraction of direct trips whose free-flow route, re-timed "
              "under congestion, would miss the rho=1.3 deadline");
  {
    RoadNetwork net = MakeBenchCity();
    DistanceOracle oracle(net);
    DemandModelOptions dopt;
    DemandModel demand(net, dopt);
    Rng rng(99);
    auto trips = demand.GenerateTrips(8 * 3600.0, 9 * 3600.0, 500, rng);
    DijkstraSearch static_search(net);
    PrintHeader({"amplitude", "missed %", "aware missed %",
                 "mean slowdown %"});
    for (double amplitude : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      CongestionProfile profile = CongestionProfile::Workday(amplitude);
      TimeDependentDijkstra td(net, profile);
      int missed_static = 0;
      int missed_aware = 0;
      double slowdown = 0.0;
      int n = 0;
      for (const Trip& t : trips) {
        Path p = static_search.FindPath(t.origin, t.destination);
        if (!p.valid || p.cost <= 0) continue;
        Seconds deadline = t.release_time + 1.3 * p.cost;
        Seconds retimed = td.RetimePath(p.vertices, t.release_time);
        Seconds aware = td.EarliestArrival(t.origin, t.destination,
                                           t.release_time);
        missed_static += retimed > deadline ? 1 : 0;
        missed_aware += aware > deadline ? 1 : 0;
        slowdown += (retimed - t.release_time) / p.cost - 1.0;
        ++n;
      }
      PrintRow({Fmt(amplitude, 2), Fmt(100.0 * missed_static / n, 1),
                Fmt(100.0 * missed_aware / n, 1),
                Fmt(100.0 * slowdown / n, 1)});
    }
    std::printf("\n(congestion-aware routing cannot beat physics: when the "
                "whole\n city slows beyond the rho slack, deadlines need "
                "renegotiation —\n the integration point for the paper's "
                "real-time traffic extension)\n");
  }
  return 0;
}
