// Reproduces paper Table III: average number of candidate taxis per request
// in the peak scenario. Paper shape: No-Sharing smallest (vacant only);
// T-Share's dual-side search keeps far fewer than pGreedyDP (which has the
// most); mT-Share in between — enough to find the best match, pruned enough
// to respond fast.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kPeak);
  PrintBanner("Table III — average candidate taxis per request (peak)",
              "paper @3000 taxis: No-Sharing 4.4, T-Share 20.8, pGreedyDP "
              "28.2, mT-Share 25.6 (values approximate)");
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share"});
  for (int32_t taxis : scale.fleet_sizes) {
    Metrics none = env.Run(SchemeKind::kNoSharing, taxis);
    Metrics tshare = env.Run(SchemeKind::kTShare, taxis);
    Metrics pgreedy = env.Run(SchemeKind::kPGreedyDp, taxis);
    Metrics mt = env.Run(SchemeKind::kMtShare, taxis);
    PrintRow({std::to_string(taxis), Fmt(none.MeanCandidates(), 1),
              Fmt(tshare.MeanCandidates(), 1),
              Fmt(pgreedy.MeanCandidates(), 1),
              Fmt(mt.MeanCandidates(), 1)});
  }
  return 0;
}
