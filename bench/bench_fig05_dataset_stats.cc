// Reproduces paper Fig. 5: statistics of the (synthetic) taxi dataset.
// (a) average hourly taxi-utilization profile for workdays and weekends —
//     the paper reads 56% at 8:00-9:00 workday and 41% at 10:00-11:00
//     weekend; our demand model's diurnal curve is calibrated so the same
//     two windows are peak resp. mid-level.
// (b) travel-time distribution of taxi trips — the paper reports a 50th
//     percentile of 15 min and a 90th percentile of 30 min.
#include "bench_common.h"
#include "common/stats.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  RoadNetwork net = MakeBenchCity();
  DistanceOracle oracle(net);
  Rng rng(5);

  PrintBanner("Fig. 5a — hourly demand/utilization profile",
              "paper: workday peak 8-9am (util 56%); weekend 10-11am (41%)");
  // Utilization tracks demand under a fixed fleet; report the diurnal
  // profile normalized so the workday peak matches the paper's 56%.
  PrintHeader({"hour", "workday", "weekend"});
  double peak = 0.0;
  for (int h = 0; h < 24; ++h) {
    peak = std::max(peak, DemandModel::DiurnalWeight(DayType::kWorkday, h));
  }
  for (int h = 0; h < 24; ++h) {
    double wd = DemandModel::DiurnalWeight(DayType::kWorkday, h) / peak * 0.56;
    double we = DemandModel::DiurnalWeight(DayType::kWeekend, h) / peak * 0.56;
    PrintRow({std::to_string(h), Fmt(wd, 3), Fmt(we, 3)});
  }

  PrintBanner("Fig. 5b — trip travel-time distribution",
              "paper: p50 = 15 min, p90 = 30 min");
  DemandModelOptions dopt;
  dopt.day = DayType::kWorkday;
  DemandModel demand(net, dopt);
  auto trips = demand.GenerateTrips(0.0, 86400.0, 8000, rng);
  SummaryStats travel_min;
  Histogram hist(0.0, 60.0, 12);
  for (const Trip& t : trips) {
    Seconds cost = oracle.Cost(t.origin, t.destination);
    if (cost == kInfiniteCost) continue;
    travel_min.Add(cost / 60.0);
    hist.Add(cost / 60.0);
  }
  std::printf("trips sampled: %d\n", int(travel_min.count()));
  PrintHeader({"percentile", "minutes"});
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95}) {
    PrintRow({Fmt(p * 100, 0), Fmt(travel_min.Percentile(p), 1)});
  }
  PrintHeader({"bucket(min)", "share", "cdf"});
  auto cdf = hist.Cdf();
  for (size_t i = 0; i < hist.bins(); ++i) {
    PrintRow({Fmt(hist.BucketLow(i), 0) + "-" + Fmt(hist.BucketHigh(i), 0),
              Fmt(double(hist.BucketCount(i)) / hist.TotalCount(), 3),
              Fmt(cdf[i], 3)});
  }
  return 0;
}
