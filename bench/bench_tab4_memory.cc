// Reproduces paper Table IV: memory overhead of the ridesharing schemes'
// indexes at the largest fleet in the peak scenario. Paper shape: mT-Share
// carries ~39% larger indexes than T-Share/pGreedyDP (map partitions +
// mobility clusters on top of the spatial index) — a negligible absolute
// overhead on modern servers.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kPeak);
  PrintBanner("Table IV — index memory overhead (peak, max fleet)",
              "paper @3000 taxis: mT-Share indexes ~39% larger than "
              "T-Share/pGreedyDP; total memory +16%/+41%");
  const int32_t taxis = scale.default_fleet;
  PrintHeader({"scheme", "index KiB", "shared KiB", "total KiB"});
  double shared_kib = env.system().SharedIndexMemoryBytes() / 1024.0;
  for (SchemeKind scheme : {SchemeKind::kTShare, SchemeKind::kPGreedyDp,
                            SchemeKind::kMtShare}) {
    Metrics m = env.Run(scheme, taxis);
    double index_kib = m.index_memory_bytes / 1024.0;
    // The grid baselines do not use the mobility structures; only mT-Share
    // pays for partitions + landmark graph + transition statistics.
    bool uses_shared = scheme == SchemeKind::kMtShare;
    double total = index_kib + (uses_shared ? shared_kib : 0.0);
    PrintRow({std::string(SchemeName(scheme)), Fmt(index_kib, 1),
              Fmt(uses_shared ? shared_kib : 0.0, 1), Fmt(total, 1)});
  }
  std::printf("\n(shared = map partitioning + landmark graph + transition "
              "statistics;\n the all-pairs travel-cost cache is common to "
              "every scheme, as in the paper)\n");
  DistanceOracle& oracle = env.system().oracle();
  std::printf("\nrouting backend: %s — oracle memory %.1f KiB",
              OracleBackendName(oracle.backend()),
              oracle.MemoryBytes() / 1024.0);
  if (oracle.backend() == OracleBackend::kCh) {
    std::printf(" (CH index: %lld shortcuts, built in %.0f ms)",
                static_cast<long long>(oracle.ch_build_stats().shortcuts_added),
                oracle.ch_build_stats().preprocessing_ms);
  }
  std::printf("\n");
  return 0;
}
