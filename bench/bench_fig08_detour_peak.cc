// Reproduces paper Fig. 8: average detour time vs. fleet size, peak
// scenario. Paper shape: No-Sharing has zero detour; ridesharing schemes
// sit at 1-4 minutes and fall as fleets grow; T-Share smallest, mT-Share a
// close second, pGreedyDP roughly doubles T-Share.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kPeak);
  PrintBanner("Fig. 8 — detour time in peak scenario (minutes)",
              "paper: T-Share least; mT-Share close (within 31-40% of "
              "pGreedyDP's, which ~doubles T-Share)");
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share"});
  for (int32_t taxis : scale.fleet_sizes) {
    Metrics none = env.Run(SchemeKind::kNoSharing, taxis);
    Metrics tshare = env.Run(SchemeKind::kTShare, taxis);
    Metrics pgreedy = env.Run(SchemeKind::kPGreedyDp, taxis);
    Metrics mt = env.Run(SchemeKind::kMtShare, taxis);
    PrintRow({std::to_string(taxis), Fmt(none.MeanDetourMinutes(), 2),
              Fmt(tshare.MeanDetourMinutes(), 2),
              Fmt(pgreedy.MeanDetourMinutes(), 2),
              Fmt(mt.MeanDetourMinutes(), 2)});
  }
  return 0;
}
