// Reproduces paper Figs. 17-19: impact of the flexible factor rho (deadline
// = t + rho * direct cost), peak scenario, and the payment-model outcomes.
//  Fig. 17: waiting time grows with rho (farther taxis become admissible);
//           T-Share shortest, mT-Share within ~1.2 min of pGreedyDP.
//  Fig. 18: detour grows with rho; served requests grow but saturate
//           beyond rho ~ 1.3 (paper: +4% served costs +48% detour at 1.4).
//  Fig. 19: larger rho saves passengers more fare but erodes driver profit;
//           at rho = 1.3 passengers save 8.6% and drivers earn +7.8% vs the
//           regular (No-Sharing) service.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  PrintBanner("Figs. 17/18/19 — impact of flexible factor rho (peak)",
              "paper: served saturates past rho=1.3; fare saving 8.6% and "
              "driver profit +7.8% at rho=1.3");
  PrintHeader({"rho", "scheme", "served", "wait min", "detour min",
               "fare save%", "income d%"});
  for (double rho : {1.1, 1.2, 1.3, 1.4, 1.5, 1.6}) {
    SystemConfig cfg;
    cfg.rho = rho;
    BenchEnv env(Window::kPeak, cfg);
    // Driver-income baseline: the regular taxi service on the same
    // scenario and fleet.
    Metrics none = env.Run(SchemeKind::kNoSharing, scale.default_fleet);
    for (SchemeKind scheme :
         {SchemeKind::kTShare, SchemeKind::kPGreedyDp, SchemeKind::kMtShare}) {
      Metrics m = env.Run(scheme, scale.default_fleet);
      double income_delta =
          none.total_driver_income > 0
              ? (m.total_driver_income - none.total_driver_income) /
                    none.total_driver_income * 100.0
              : 0.0;
      PrintRow({Fmt(rho, 1), std::string(SchemeName(scheme)),
                std::to_string(m.ServedRequests()),
                Fmt(m.MeanWaitingMinutes(), 2), Fmt(m.MeanDetourMinutes(), 2),
                Fmt(m.MeanFareSaving() * 100.0, 1), Fmt(income_delta, 1)});
    }
  }
  std::printf("\n(income d%% compares total driver income against the "
              "No-Sharing run on the same scenario/fleet)\n");
  return 0;
}
