// Reproduces paper Fig. 14: (a) impact of the partition count kappa and
// (b) impact of taxi capacity, peak scenario. Paper shape: served requests
// rise with kappa up to an optimum then fall (too many partitions shrink
// the candidate sets); larger capacity serves more (~12% from capacity 2
// to 6 for mT-Share).
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();

  PrintBanner("Fig. 14a — impact of partition count kappa (peak, mT-Share)",
              "paper: served requests peak at kappa=150 (range 50-250), "
              "+6% from kappa=50 to the optimum");
  PrintHeader({"kappa", "partitions", "served", "resp ms"});
  for (int32_t kappa : {40, 80, 120, 160, 200}) {
    SystemConfig cfg;
    cfg.kappa = kappa;
    BenchEnv env(Window::kPeak, cfg);
    Metrics m = env.Run(SchemeKind::kMtShare, scale.default_fleet);
    PrintRow({std::to_string(kappa),
              std::to_string(env.system().partitioning().num_partitions()),
              std::to_string(m.ServedRequests()), Fmt(m.MeanResponseMs(), 3)});
  }

  PrintBanner("Fig. 14b — impact of taxi capacity (peak, mT-Share)",
              "paper: capacity 6 serves ~12% more than capacity 2");
  BenchEnv env(Window::kPeak);
  PrintHeader({"capacity", "served", "detour min"});
  for (int32_t capacity : {2, 3, 4, 5, 6}) {
    env.system().set_taxi_capacity(capacity);
    Metrics m = env.Run(SchemeKind::kMtShare, scale.default_fleet);
    PrintRow({std::to_string(capacity), std::to_string(m.ServedRequests()),
              Fmt(m.MeanDetourMinutes(), 2)});
  }
  return 0;
}
