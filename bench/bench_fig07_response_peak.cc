// Reproduces paper Fig. 7: mean per-request response time vs. fleet size in
// the peak scenario. Paper shape: No-Sharing < 1 ms; T-Share fast; mT-Share
// slightly above T-Share; pGreedyDP slowest (4-10x over mT-Share); all grow
// with fleet size. Absolute values differ (paper: Python on i7-6700; ours:
// C++), ratios are the reproduction target.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kPeak);
  PrintBanner(
      "Fig. 7 — response time in peak scenario (ms/request)",
      "paper: No-Sharing <1ms; mT-Share 35-140ms; pGreedyDP 4-10x mT-Share");
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share"});
  for (int32_t taxis : scale.fleet_sizes) {
    Metrics none = env.Run(SchemeKind::kNoSharing, taxis);
    Metrics tshare = env.Run(SchemeKind::kTShare, taxis);
    Metrics pgreedy = env.Run(SchemeKind::kPGreedyDp, taxis);
    Metrics mt = env.Run(SchemeKind::kMtShare, taxis);
    PrintRow({std::to_string(taxis), Fmt(none.MeanResponseMs(), 4),
              Fmt(tshare.MeanResponseMs(), 4),
              Fmt(pgreedy.MeanResponseMs(), 4),
              Fmt(mt.MeanResponseMs(), 4)});
  }
  return 0;
}
