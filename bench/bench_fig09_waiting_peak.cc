// Reproduces paper Fig. 9: average passenger waiting time vs. fleet size,
// peak scenario. Paper shape: waiting falls as fleets grow; T-Share
// shortest (nearest-first), No-Sharing ~1 min (fewest effective supplies);
// mT-Share slightly above pGreedyDP but within 0.5 min.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kPeak);
  PrintBanner("Fig. 9 — waiting time in peak scenario (minutes)",
              "paper: T-Share smallest; mT-Share within 0.5 min of "
              "pGreedyDP; all fall with more taxis");
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share"});
  for (int32_t taxis : scale.fleet_sizes) {
    Metrics none = env.Run(SchemeKind::kNoSharing, taxis);
    Metrics tshare = env.Run(SchemeKind::kTShare, taxis);
    Metrics pgreedy = env.Run(SchemeKind::kPGreedyDp, taxis);
    Metrics mt = env.Run(SchemeKind::kMtShare, taxis);
    PrintRow({std::to_string(taxis), Fmt(none.MeanWaitingMinutes(), 2),
              Fmt(tshare.MeanWaitingMinutes(), 2),
              Fmt(pgreedy.MeanWaitingMinutes(), 2),
              Fmt(mt.MeanWaitingMinutes(), 2)});
  }
  return 0;
}
