// Reproduces paper Fig. 12: detour time vs. fleet size, nonpeak scenario.
// Paper shape: same ordering as the peak for the basic schemes;
// mT-Share-pro has the largest detour (probabilistic routes chase offline
// hailers) but stays within ~0.5 min of pGreedyDP.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kNonPeak);
  PrintBanner("Fig. 12 — detour time in nonpeak scenario (minutes)",
              "paper: mT-Share-pro largest, within ~0.5 min of pGreedyDP");
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share",
               "mT-Share-pro"});
  for (int32_t taxis : scale.fleet_sizes) {
    Metrics none = env.Run(SchemeKind::kNoSharing, taxis);
    Metrics tshare = env.Run(SchemeKind::kTShare, taxis);
    Metrics pgreedy = env.Run(SchemeKind::kPGreedyDp, taxis);
    Metrics mt = env.Run(SchemeKind::kMtShare, taxis);
    Metrics pro = env.Run(SchemeKind::kMtSharePro, taxis);
    PrintRow({std::to_string(taxis), Fmt(none.MeanDetourMinutes(), 2),
              Fmt(tshare.MeanDetourMinutes(), 2),
              Fmt(pgreedy.MeanDetourMinutes(), 2),
              Fmt(mt.MeanDetourMinutes(), 2),
              Fmt(pro.MeanDetourMinutes(), 2)});
  }
  return 0;
}
