// Reproduces paper Fig. 11: response time vs. fleet size, nonpeak scenario.
// Paper shape: No-Sharing/T-Share/pGreedyDP/mT-Share behave as in the peak;
// mT-Share-pro is 2.5-4.5x slower than mT-Share (probabilistic routing is
// expensive) yet still answers each request far faster than pGreedyDP in
// the paper's absolute terms.
#include "bench_common.h"

using namespace mtshare;
using namespace mtshare::bench;

int main() {
  BenchScale scale = GetScale();
  BenchEnv env(Window::kNonPeak);
  PrintBanner("Fig. 11 — response time in nonpeak scenario (ms/request)",
              "paper: mT-Share-pro 2.5-4.5x slower than mT-Share");
  PrintHeader({"taxis", "No-Sharing", "T-Share", "pGreedyDP", "mT-Share",
               "mT-Share-pro"});
  for (int32_t taxis : scale.fleet_sizes) {
    Metrics none = env.Run(SchemeKind::kNoSharing, taxis);
    Metrics tshare = env.Run(SchemeKind::kTShare, taxis);
    Metrics pgreedy = env.Run(SchemeKind::kPGreedyDp, taxis);
    Metrics mt = env.Run(SchemeKind::kMtShare, taxis);
    Metrics pro = env.Run(SchemeKind::kMtSharePro, taxis);
    PrintRow({std::to_string(taxis), Fmt(none.MeanResponseMs(), 4),
              Fmt(tshare.MeanResponseMs(), 4),
              Fmt(pgreedy.MeanResponseMs(), 4), Fmt(mt.MeanResponseMs(), 4),
              Fmt(pro.MeanResponseMs(), 4)});
  }
  return 0;
}
