// Tier-1 coverage for the ScenarioSpec API and the parallel matching
// engine's determinism guarantee: RunScenario must produce identical
// simulation outcomes for num_threads in {1, 2, 8} (the reduction over
// candidate evaluations is ordered, so thread schedule cannot leak into
// results). Wall-clock fields (response_ms, execution_seconds) are the
// only Metrics allowed to differ.
#include "core/mtshare_system.h"

#include <gtest/gtest.h>

#include "graph/graph_generators.h"
#include "sim/request_source.h"

namespace mtshare {
namespace {

class ScenarioSpecTest : public ::testing::Test {
 protected:
  ScenarioSpecTest() {
    GridCityOptions gopt;
    gopt.rows = 16;
    gopt.cols = 16;
    gopt.seed = 33;
    net_ = MakeGridCity(gopt);
    demand_ = std::make_unique<DemandModel>(net_, DemandModelOptions{});
    oracle_ = std::make_unique<DistanceOracle>(net_);

    ScenarioOptions sopt;
    sopt.num_requests = 180;
    sopt.num_historical_trips = 3000;
    sopt.offline_fraction = 0.15;
    scenario_ = MakeScenario(net_, *demand_, *oracle_, sopt);

    config_.kappa = 20;
    config_.kt = 5;
  }

  /// Fresh system per run so oracle warm-up (row misses) is comparable.
  std::unique_ptr<MTShareSystem> FreshSystem() {
    auto result =
        MTShareSystem::Create(net_, scenario_.HistoricalOdPairs(), config_);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  Metrics RunWithThreads(SchemeKind scheme, int32_t num_threads) {
    return RunConfigured(scheme, num_threads, /*batched_routing=*/true);
  }

  Metrics RunConfigured(SchemeKind scheme, int32_t num_threads,
                        bool batched_routing) {
    SystemConfig cfg = config_;
    cfg.matching.batched_routing = batched_routing;
    auto created =
        MTShareSystem::Create(net_, scenario_.HistoricalOdPairs(), cfg);
    EXPECT_TRUE(created.ok()) << created.status();
    std::unique_ptr<MTShareSystem> system = std::move(created).value();
    ScenarioSpec spec;
    spec.scheme = scheme;
    spec.requests = &scenario_.requests;
    spec.num_taxis = 24;
    spec.fleet_seed = 7;
    spec.num_threads = num_threads;
    Result<Metrics> run = system->RunScenario(spec);
    EXPECT_TRUE(run.ok()) << run.status();
    return std::move(run).value();
  }

  RoadNetwork net_;
  std::unique_ptr<DemandModel> demand_;
  std::unique_ptr<DistanceOracle> oracle_;
  Scenario scenario_;
  SystemConfig config_;
};

/// Everything the simulation decides (as opposed to measures on the wall
/// clock) must match bit for bit.
void ExpectIdenticalOutcomes(const Metrics& a, const Metrics& b,
                             const std::string& label) {
  ASSERT_EQ(a.TotalRequests(), b.TotalRequests()) << label;
  EXPECT_EQ(a.ServedRequests(), b.ServedRequests()) << label;
  EXPECT_EQ(a.ServedOnline(), b.ServedOnline()) << label;
  EXPECT_EQ(a.ServedOffline(), b.ServedOffline()) << label;
  EXPECT_DOUBLE_EQ(a.total_driver_income, b.total_driver_income) << label;
  EXPECT_EQ(a.index_memory_bytes, b.index_memory_bytes) << label;
  EXPECT_EQ(a.oracle_queries, b.oracle_queries) << label;
  EXPECT_EQ(a.oracle_row_misses, b.oracle_row_misses) << label;
  EXPECT_EQ(a.oracle_row_hits, b.oracle_row_hits) << label;
  for (int32_t i = 0; i < a.TotalRequests(); ++i) {
    const RequestRecord& ra = a.records()[i];
    const RequestRecord& rb = b.records()[i];
    EXPECT_EQ(ra.assigned, rb.assigned) << label << " req " << i;
    EXPECT_EQ(ra.completed, rb.completed) << label << " req " << i;
    EXPECT_EQ(ra.taxi, rb.taxi) << label << " req " << i;
    EXPECT_EQ(ra.candidates, rb.candidates) << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.pickup_time, rb.pickup_time) << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.dropoff_time, rb.dropoff_time)
        << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.regular_fare, rb.regular_fare) << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.shared_fare, rb.shared_fare) << label << " req " << i;
  }
}

TEST_F(ScenarioSpecTest, ParallelMatchingIsDeterministicAcrossThreadCounts) {
  for (SchemeKind scheme : {SchemeKind::kMtShare, SchemeKind::kPGreedyDp,
                            SchemeKind::kMtSharePro}) {
    Metrics one = RunWithThreads(scheme, 1);
    Metrics two = RunWithThreads(scheme, 2);
    Metrics eight = RunWithThreads(scheme, 8);
    EXPECT_GT(one.ServedRequests(), 0) << SchemeName(scheme);
    ExpectIdenticalOutcomes(one, two,
                            std::string(SchemeName(scheme)) + " 1v2");
    ExpectIdenticalOutcomes(one, eight,
                            std::string(SchemeName(scheme)) + " 1v8");
  }
}

/// Simulation outcomes only — unlike ExpectIdenticalOutcomes this skips the
/// oracle counters, which legitimately differ between batched and per-pair
/// routing (batching's whole point is issuing fewer oracle queries).
void ExpectIdenticalDecisions(const Metrics& a, const Metrics& b,
                              const std::string& label) {
  ASSERT_EQ(a.TotalRequests(), b.TotalRequests()) << label;
  EXPECT_EQ(a.ServedRequests(), b.ServedRequests()) << label;
  EXPECT_EQ(a.ServedOnline(), b.ServedOnline()) << label;
  EXPECT_EQ(a.ServedOffline(), b.ServedOffline()) << label;
  EXPECT_DOUBLE_EQ(a.total_driver_income, b.total_driver_income) << label;
  EXPECT_EQ(a.index_memory_bytes, b.index_memory_bytes) << label;
  for (int32_t i = 0; i < a.TotalRequests(); ++i) {
    const RequestRecord& ra = a.records()[i];
    const RequestRecord& rb = b.records()[i];
    EXPECT_EQ(ra.assigned, rb.assigned) << label << " req " << i;
    EXPECT_EQ(ra.completed, rb.completed) << label << " req " << i;
    EXPECT_EQ(ra.taxi, rb.taxi) << label << " req " << i;
    EXPECT_EQ(ra.candidates, rb.candidates) << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.pickup_time, rb.pickup_time) << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.dropoff_time, rb.dropoff_time)
        << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.regular_fare, rb.regular_fare)
        << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.shared_fare, rb.shared_fare) << label << " req " << i;
  }
}

/// The tentpole guarantee: batched one-to-many routing must be a pure
/// mechanical substitution — every dispatch decision, fare, and timestamp
/// bit-identical to the per-pair oracle path, at any thread count.
TEST_F(ScenarioSpecTest, BatchedRoutingMatchesPerPairBitwise) {
  for (SchemeKind scheme : {SchemeKind::kTShare, SchemeKind::kPGreedyDp,
                            SchemeKind::kMtShare, SchemeKind::kMtSharePro}) {
    Metrics per_pair = RunConfigured(scheme, 1, /*batched_routing=*/false);
    Metrics batched = RunConfigured(scheme, 1, /*batched_routing=*/true);
    Metrics batched_mt = RunConfigured(scheme, 4, /*batched_routing=*/true);
    EXPECT_GT(per_pair.ServedRequests(), 0) << SchemeName(scheme);
    ExpectIdenticalDecisions(per_pair, batched,
                             std::string(SchemeName(scheme)) + " batched");
    ExpectIdenticalDecisions(per_pair, batched_mt,
                             std::string(SchemeName(scheme)) + " batched-mt");
    // The batched runs actually exercised the batch, with full coverage
    // (a fallback means the priming fan missed a leg shape).
    EXPECT_FALSE(per_pair.routing.batched) << SchemeName(scheme);
    EXPECT_TRUE(batched.routing.batched) << SchemeName(scheme);
    EXPECT_EQ(per_pair.routing.batch_queries, 0) << SchemeName(scheme);
    EXPECT_GT(batched.routing.batch_queries, 0) << SchemeName(scheme);
    EXPECT_EQ(batched.routing.fallback_queries, 0) << SchemeName(scheme);
    EXPECT_EQ(batched_mt.routing.fallback_queries, 0) << SchemeName(scheme);
    // Fewer per-pair oracle queries is the point of the exercise.
    EXPECT_LT(batched.oracle_queries, per_pair.oracle_queries)
        << SchemeName(scheme);
    // Lower-bound pruning fired and is thread-count invariant.
    EXPECT_GT(batched.routing.lb_pruned, 0) << SchemeName(scheme);
    EXPECT_EQ(batched.routing.lb_pruned, batched_mt.routing.lb_pruned)
        << SchemeName(scheme);
  }
}

/// ScenarioSpec.requests is sugar for a VectorRequestSource over the same
/// vector — the two spellings must be indistinguishable down to oracle
/// counters (the engine runs one ingest path for both).
TEST_F(ScenarioSpecTest, ExplicitVectorSourceMatchesRequestsPointer) {
  VectorRequestSource source(&scenario_.requests);
  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.source = &source;
  spec.num_taxis = 24;
  spec.fleet_seed = 7;
  Result<Metrics> streamed = FreshSystem()->RunScenario(spec);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  Metrics spec_run = RunWithThreads(SchemeKind::kMtShare, 1);
  ExpectIdenticalOutcomes(streamed.value(), spec_run, "source-vs-requests");
}

TEST_F(ScenarioSpecTest, OracleCountersSurfaceThroughMetrics) {
  Metrics m = RunWithThreads(SchemeKind::kMtShare, 2);
  EXPECT_GT(m.oracle_queries, 0);
  EXPECT_GT(m.oracle_row_hits, 0);
  EXPECT_GT(m.oracle_row_misses, 0);
  // Row traffic never exceeds queries (same-vertex queries short-circuit).
  EXPECT_LE(m.oracle_row_hits + m.oracle_row_misses, m.oracle_queries);
}

TEST_F(ScenarioSpecTest, ValidateRejectsBadSpecs) {
  std::unique_ptr<MTShareSystem> system = FreshSystem();
  ScenarioSpec spec;  // no requests
  spec.num_taxis = 10;
  EXPECT_EQ(system->RunScenario(spec).status().code(),
            StatusCode::kInvalidArgument);

  spec.requests = &scenario_.requests;
  spec.num_taxis = 0;
  EXPECT_EQ(system->RunScenario(spec).status().code(),
            StatusCode::kInvalidArgument);

  spec.num_taxis = 10;
  spec.num_threads = -1;
  EXPECT_EQ(system->RunScenario(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.num_threads = 4096;
  EXPECT_EQ(system->RunScenario(spec).status().code(),
            StatusCode::kInvalidArgument);

  // requests and source are exclusive; the serve knobs must be sane.
  spec.num_threads = 1;
  VectorRequestSource source(&scenario_.requests);
  spec.source = &source;
  EXPECT_EQ(system->RunScenario(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.source = nullptr;
  spec.batch_window_ms = -1.0;
  EXPECT_EQ(system->RunScenario(spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.batch_window_ms = 0.0;
  spec.max_queue = -5;
  EXPECT_EQ(system->RunScenario(spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ScenarioSpecTest, ValidateRejectsMalformedRequestStreams) {
  std::unique_ptr<MTShareSystem> system = FreshSystem();
  ScenarioSpec spec;
  spec.num_taxis = 10;

  std::vector<RideRequest> sparse_ids = scenario_.requests;
  sparse_ids[3].id = 9999;
  spec.requests = &sparse_ids;
  EXPECT_EQ(system->RunScenario(spec).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<RideRequest> unsorted = scenario_.requests;
  std::swap(unsorted[0].release_time, unsorted.back().release_time);
  spec.requests = &unsorted;
  EXPECT_EQ(system->RunScenario(spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ScenarioSpecTest, CreateRejectsInvalidConfig) {
  SystemConfig bad = config_;
  bad.kappa = 0;
  auto result = MTShareSystem::Create(net_, scenario_.HistoricalOdPairs(), bad);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ScenarioSpecTest, CreateRejectsBipartiteWithoutHistory) {
  auto result = MTShareSystem::Create(net_, /*historical_trips=*/{}, config_);
  EXPECT_FALSE(result.ok());

  SystemConfig grid = config_;
  grid.bipartite_partitioning = false;
  auto ok = MTShareSystem::Create(net_, /*historical_trips=*/{}, grid);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(ParseSchemeTest, InvertsSchemeName) {
  for (SchemeKind kind : {SchemeKind::kNoSharing, SchemeKind::kTShare,
                          SchemeKind::kPGreedyDp, SchemeKind::kMtShare,
                          SchemeKind::kMtSharePro}) {
    std::optional<SchemeKind> parsed = ParseScheme(SchemeName(kind));
    ASSERT_TRUE(parsed.has_value()) << SchemeName(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(ParseSchemeTest, AcceptsCliSpellingsCaseInsensitively) {
  EXPECT_EQ(ParseScheme("mt-share"), SchemeKind::kMtShare);
  EXPECT_EQ(ParseScheme("MT-SHARE-PRO"), SchemeKind::kMtSharePro);
  EXPECT_EQ(ParseScheme("pgreedy-dp"), SchemeKind::kPGreedyDp);
  EXPECT_EQ(ParseScheme("PGreedyDP"), SchemeKind::kPGreedyDp);
  EXPECT_EQ(ParseScheme("no-sharing"), SchemeKind::kNoSharing);
  EXPECT_EQ(ParseScheme("t-share"), SchemeKind::kTShare);
}

TEST(ParseSchemeTest, RejectsUnknownNames) {
  EXPECT_FALSE(ParseScheme("").has_value());
  EXPECT_FALSE(ParseScheme("mtshare").has_value());
  EXPECT_FALSE(ParseScheme("uber-pool").has_value());
}

}  // namespace
}  // namespace mtshare
