#include "core/mtshare_system.h"

#include <gtest/gtest.h>

#include "graph/graph_generators.h"

namespace mtshare {
namespace {

TEST(SystemConfigTest, DefaultsValidate) {
  EXPECT_TRUE(SystemConfig{}.Validate().ok());
}

TEST(SystemConfigTest, RejectsBadValues) {
  SystemConfig c;
  c.kappa = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SystemConfig{};
  c.kt = c.kappa + 1;
  EXPECT_FALSE(c.Validate().ok());
  c = SystemConfig{};
  c.rho = 1.0;
  EXPECT_FALSE(c.Validate().ok());
  c = SystemConfig{};
  c.matching.lambda = 1.5;
  EXPECT_FALSE(c.Validate().ok());
  c = SystemConfig{};
  c.payment.beta = -0.1;
  EXPECT_FALSE(c.Validate().ok());
  c = SystemConfig{};
  c.taxi_capacity = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SystemConfig{};
  c.matching.gamma_max_m = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(SystemConfigTest, RejectsBadOracleOptions) {
  // These previously reached the oracle unchecked (a non-positive shard
  // count was UB in ShardedLruCache); Create must report them instead.
  SystemConfig c;
  c.oracle.lru_rows = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SystemConfig{};
  c.oracle.lru_shards = -1;
  EXPECT_FALSE(c.Validate().ok());
  c = SystemConfig{};
  c.oracle.max_exact_vertices = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SystemConfig{};
  c.oracle.ch.witness_settle_limit = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = SystemConfig{};
  c.oracle.ch.threads = -2;
  EXPECT_FALSE(c.Validate().ok());

  GridCityOptions gopt;
  gopt.rows = 6;
  gopt.cols = 6;
  RoadNetwork net = MakeGridCity(gopt);
  SystemConfig bad;
  bad.bipartite_partitioning = false;  // isolate the oracle failure
  bad.oracle.lru_shards = 0;
  auto result = MTShareSystem::Create(net, {}, bad);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemeNameTest, AllNamed) {
  EXPECT_STREQ(SchemeName(SchemeKind::kNoSharing), "No-Sharing");
  EXPECT_STREQ(SchemeName(SchemeKind::kTShare), "T-Share");
  EXPECT_STREQ(SchemeName(SchemeKind::kPGreedyDp), "pGreedyDP");
  EXPECT_STREQ(SchemeName(SchemeKind::kMtShare), "mT-Share");
  EXPECT_STREQ(SchemeName(SchemeKind::kMtSharePro), "mT-Share-pro");
}

class MTShareSystemTest : public ::testing::Test {
 protected:
  MTShareSystemTest() {
    GridCityOptions gopt;
    gopt.rows = 18;
    gopt.cols = 18;
    gopt.seed = 21;
    net_ = MakeGridCity(gopt);
    demand_ = std::make_unique<DemandModel>(net_, DemandModelOptions{});
    oracle_ = std::make_unique<DistanceOracle>(net_);

    ScenarioOptions sopt;
    sopt.num_requests = 250;
    sopt.num_historical_trips = 4000;
    sopt.offline_fraction = 0.2;
    scenario_ = MakeScenario(net_, *demand_, *oracle_, sopt);

    config_.kappa = 24;
    config_.kt = 6;
    system_ = std::make_unique<MTShareSystem>(
        net_, scenario_.HistoricalOdPairs(), config_);
  }

  // Runs the fixture scenario through the spec API (the old positional
  // overload is gone).
  Metrics Run(SchemeKind scheme, int32_t taxis, uint64_t fleet_seed = 1) {
    ScenarioSpec spec;
    spec.scheme = scheme;
    spec.requests = &scenario_.requests;
    spec.num_taxis = taxis;
    spec.fleet_seed = fleet_seed;
    Result<Metrics> m = system_->RunScenario(spec);
    EXPECT_TRUE(m.ok()) << m.status();
    return m.value();
  }

  RoadNetwork net_;
  std::unique_ptr<DemandModel> demand_;
  std::unique_ptr<DistanceOracle> oracle_;
  Scenario scenario_;
  SystemConfig config_;
  std::unique_ptr<MTShareSystem> system_;
};

TEST_F(MTShareSystemTest, BuildsMobilityStructures) {
  EXPECT_GT(system_->partitioning().num_partitions(), 4);
  EXPECT_EQ(system_->transitions().num_groups(),
            system_->partitioning().num_partitions());
  EXPECT_GT(system_->SharedIndexMemoryBytes(), 0u);
}

TEST_F(MTShareSystemTest, AllSchemesRunAndRespectInvariants) {
  for (SchemeKind scheme :
       {SchemeKind::kNoSharing, SchemeKind::kTShare, SchemeKind::kPGreedyDp,
        SchemeKind::kMtShare, SchemeKind::kMtSharePro}) {
    Metrics m = Run(scheme, 30);
    EXPECT_LE(m.ServedRequests(), m.TotalRequests()) << SchemeName(scheme);
    EXPECT_GE(m.ServedRequests(), 0) << SchemeName(scheme);
    EXPECT_GE(m.MeanWaitingMinutes(), 0.0) << SchemeName(scheme);
    EXPECT_GE(m.MeanDetourMinutes(), 0.0) << SchemeName(scheme);
    EXPECT_GE(m.total_driver_income, 0.0) << SchemeName(scheme);
    // Every completed request met its deadline and kept causal order.
    for (const RequestRecord& rec : m.records()) {
      if (!rec.completed) continue;
      EXPECT_GE(rec.pickup_time, rec.release_time - 1e-6)
          << SchemeName(scheme) << " req " << rec.id;
      EXPECT_GE(rec.dropoff_time, rec.pickup_time) << SchemeName(scheme);
      EXPECT_GE(rec.shared_fare, 0.0);
      EXPECT_LE(rec.shared_fare, rec.regular_fare + 1e-9)
          << SchemeName(scheme) << " req " << rec.id;
    }
  }
}

TEST_F(MTShareSystemTest, SharingBeatsNoSharing) {
  Metrics none = Run(SchemeKind::kNoSharing, 25);
  Metrics mt = Run(SchemeKind::kMtShare, 25);
  EXPECT_GT(mt.ServedRequests(), none.ServedRequests());
}

TEST_F(MTShareSystemTest, NoSharingHasZeroDetour) {
  Metrics m = Run(SchemeKind::kNoSharing, 30);
  EXPECT_NEAR(m.MeanDetourMinutes(), 0.0, 1e-9);
}

TEST_F(MTShareSystemTest, NoSharingServesNoOffline) {
  Metrics m = Run(SchemeKind::kNoSharing, 30);
  EXPECT_EQ(m.ServedOffline(), 0);
}

TEST_F(MTShareSystemTest, SharingSchemesCanServeOffline) {
  Metrics m = Run(SchemeKind::kMtSharePro, 30);
  EXPECT_GE(m.ServedOffline(), 0);  // encounter-driven, workload-dependent
  EXPECT_GT(m.ServedRequests(), 0);
}

TEST_F(MTShareSystemTest, DeterministicRuns) {
  Metrics a = Run(SchemeKind::kTShare, 20, /*fleet_seed=*/9);
  Metrics b = Run(SchemeKind::kTShare, 20, /*fleet_seed=*/9);
  EXPECT_EQ(a.ServedRequests(), b.ServedRequests());
  EXPECT_DOUBLE_EQ(a.MeanWaitingMinutes(), b.MeanWaitingMinutes());
}

TEST_F(MTShareSystemTest, MoreTaxisServeMore) {
  Metrics small = Run(SchemeKind::kMtShare, 10);
  Metrics large = Run(SchemeKind::kMtShare, 50);
  EXPECT_GE(large.ServedRequests(), small.ServedRequests());
}

TEST_F(MTShareSystemTest, ChBackendRunsBitIdenticalToExact) {
  // The whole-system check of the CH contract: running the same scenario
  // on the exact table and on the contraction hierarchy must produce the
  // same simulation down to the last served request and fare (all leg
  // costs are bit-identical, so every dispatch decision is too).
  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.requests = &scenario_.requests;
  spec.num_taxis = 25;
  spec.oracle_backend = OracleBackend::kExact;
  Result<Metrics> exact = system_->RunScenario(spec);
  ASSERT_TRUE(exact.ok());
  spec.oracle_backend = OracleBackend::kCh;
  Result<Metrics> ch = system_->RunScenario(spec);
  ASSERT_TRUE(ch.ok());

  EXPECT_EQ(exact.value().oracle_backend, "exact");
  EXPECT_EQ(ch.value().oracle_backend, "ch");
  EXPECT_EQ(exact.value().ServedRequests(), ch.value().ServedRequests());
  EXPECT_EQ(exact.value().ServedOffline(), ch.value().ServedOffline());
  EXPECT_DOUBLE_EQ(exact.value().MeanWaitingMinutes(),
                   ch.value().MeanWaitingMinutes());
  EXPECT_DOUBLE_EQ(exact.value().MeanDetourMinutes(),
                   ch.value().MeanDetourMinutes());
  EXPECT_DOUBLE_EQ(exact.value().total_driver_income,
                   ch.value().total_driver_income);
  const auto& er = exact.value().records();
  const auto& cr = ch.value().records();
  ASSERT_EQ(er.size(), cr.size());
  for (size_t i = 0; i < er.size(); ++i) {
    EXPECT_EQ(er[i].taxi, cr[i].taxi) << "req " << i;
    EXPECT_EQ(er[i].pickup_time, cr[i].pickup_time) << "req " << i;
    EXPECT_EQ(er[i].dropoff_time, cr[i].dropoff_time) << "req " << i;
  }

  // The CH run carries its counters; the exact run reports none.
  EXPECT_TRUE(ch.value().routing.ch_active);
  EXPECT_GT(ch.value().routing.ch_bucket_queries, 0);
  EXPECT_GT(ch.value().routing.ch_upward_settled, 0);
  EXPECT_FALSE(exact.value().routing.ch_active);
  EXPECT_EQ(exact.value().routing.ch_upward_settled, 0);
}

TEST_F(MTShareSystemTest, GridPartitioningVariantRuns) {
  SystemConfig cfg = config_;
  cfg.bipartite_partitioning = false;
  MTShareSystem grid_system(net_, scenario_.HistoricalOdPairs(), cfg);
  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.requests = &scenario_.requests;
  spec.num_taxis = 25;
  Result<Metrics> m = grid_system.RunScenario(spec);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_GT(m.value().ServedRequests(), 0);
}

}  // namespace
}  // namespace mtshare
