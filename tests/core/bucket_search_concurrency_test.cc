#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "common/thread_pool.h"
#include "core/mtshare_system.h"
#include "graph/graph_generators.h"

namespace mtshare {
namespace {

// Runs in mtshare_thread_tests so the tsan preset checks it: 8 threads
// call RunScenario on ONE system with the ch_buckets candidate path. The
// first runs race to lazily build the shared bucket-search hierarchy
// (MTShareSystem::BucketSearchCh serializes construction behind a mutex),
// then every dispatcher reads the same ContractionHierarchy concurrently
// while owning its private LastStopBuckets store. Every run must land on
// the same decisions as a reference run computed before the threads start.
TEST(BucketSearchConcurrencyTest, ConcurrentChBucketRunsStayIdentical) {
  GridCityOptions gopt;
  gopt.rows = 12;
  gopt.cols = 12;
  gopt.seed = 71;
  RoadNetwork net = MakeGridCity(gopt);
  DemandModelOptions dopt;
  dopt.seed = 72;
  DemandModel demand(net, dopt);
  DistanceOracle scratch(net);
  ScenarioOptions sopt;
  sopt.num_requests = 60;
  sopt.num_historical_trips = 1500;
  sopt.offline_fraction = 0.2;
  sopt.seed = 73;
  Scenario scenario = MakeScenario(net, demand, scratch, sopt);

  SystemConfig config;
  config.kappa = 12;
  config.kt = 5;
  config.matching.candidate_search = CandidateSearch::kChBuckets;
  MTShareSystem system(net, scenario.HistoricalOdPairs(), config);

  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.requests = &scenario.requests;
  spec.num_taxis = 12;
  Result<Metrics> reference = system.RunScenario(spec);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(reference.value().routing.bucket_search);

  constexpr int kThreads = 8;
  ThreadPool pool(kThreads);
  std::vector<Metrics> results(kThreads);
  std::vector<std::future<void>> futures;
  for (int w = 0; w < kThreads; ++w) {
    futures.push_back(pool.Submit([&system, &spec, &results, w] {
      Result<Metrics> run = system.RunScenario(spec);
      EXPECT_TRUE(run.ok()) << run.status();
      if (run.ok()) results[static_cast<size_t>(w)] = std::move(run).value();
    }));
  }
  for (std::future<void>& f : futures) f.get();
  for (int w = 0; w < kThreads; ++w) {
    const Metrics& m = results[static_cast<size_t>(w)];
    SCOPED_TRACE("worker " + std::to_string(w));
    EXPECT_EQ(m.ServedRequests(), reference.value().ServedRequests());
    EXPECT_DOUBLE_EQ(m.total_driver_income,
                     reference.value().total_driver_income);
    ASSERT_EQ(m.records().size(), reference.value().records().size());
    for (size_t i = 0; i < m.records().size(); ++i) {
      const RequestRecord& got = m.records()[i];
      const RequestRecord& want = reference.value().records()[i];
      EXPECT_EQ(got.assigned, want.assigned) << "request " << i;
      EXPECT_EQ(got.taxi, want.taxi) << "request " << i;
      EXPECT_DOUBLE_EQ(got.dropoff_time, want.dropoff_time)
          << "request " << i;
    }
  }
}

}  // namespace
}  // namespace mtshare
