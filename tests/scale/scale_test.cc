// Scale-tier tests (ctest label `scale`, excluded from the default
// preset): the properties bench_scale leans on, exercised at sizes the
// tier-1 suite cannot afford. Run them with `ctest --preset scale` or the
// MTSHARE_RUN_SCALE=1 leg of run_checks.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/mtshare_system.h"
#include "demand/demand_model.h"
#include "demand/request_generator.h"
#include "graph/graph_generators.h"
#include "routing/distance_oracle.h"
#include "sim/request_source.h"

namespace mtshare {
namespace {

RoadNetwork SmallCity(uint64_t seed) {
  GridCityOptions opt;
  opt.rows = 24;
  opt.cols = 24;
  opt.seed = seed;
  return MakeGridCity(opt);
}

// MTSHARE_SCALE_CI=1 (the run_checks.sh [6/6] smoke and the bench_scale
// CI rows) shrinks the workloads ~10x so the leg finishes in CI time; the
// nightly `ctest --preset scale` runs the full sizes.
bool ScaleCi() {
  const char* env = std::getenv("MTSHARE_SCALE_CI");
  return env != nullptr && env[0] == '1';
}

// bench_scale replays the same GeneratorRequestSource stream before and
// after a layout change and compares wall clocks; that A/B is only valid
// if two sources built from identical inputs emit bit-identical requests.
// Pull 1M requests from two independently constructed sources in lockstep
// (nothing is stored — the point of the source is that the stream never
// exists in memory) and hold the source contract: release times sorted,
// ids dense from 0, every request self-consistent.
TEST(GeneratorRequestSourceScaleTest, DeterministicAndMonotoneAtOneMillion) {
  const int32_t kRequests = ScaleCi() ? 100000 : 1000000;
  RoadNetwork net = SmallCity(101);
  DemandModelOptions dopt;
  dopt.seed = 102;
  DemandModel demand(net, dopt);
  DistanceOracle oracle(net);

  ScenarioOptions sopt;
  sopt.t_begin = 7 * 3600.0;
  sopt.t_end = 20 * 3600.0;
  sopt.num_requests = kRequests;
  sopt.seed = 103;
  GeneratorRequestSource a(demand, oracle, sopt);
  GeneratorRequestSource b(demand, oracle, sopt);

  RideRequest ra;
  RideRequest rb;
  Seconds last_release = sopt.t_begin;
  RequestId next_id = 0;
  while (a.Next(&ra)) {
    ASSERT_TRUE(b.Next(&rb)) << "stream b exhausted at id " << ra.id;
    // Bit-identical twin streams, field by field (EQ, not NEAR: the A/B
    // harness depends on exact replay).
    ASSERT_EQ(ra.id, rb.id);
    ASSERT_EQ(ra.origin, rb.origin);
    ASSERT_EQ(ra.destination, rb.destination);
    ASSERT_EQ(ra.release_time, rb.release_time);
    ASSERT_EQ(ra.direct_cost, rb.direct_cost);
    ASSERT_EQ(ra.deadline, rb.deadline);
    ASSERT_EQ(ra.passengers, rb.passengers);
    ASSERT_EQ(ra.offline, rb.offline);
    // Source contract.
    ASSERT_EQ(ra.id, next_id);
    ASSERT_GE(ra.release_time, last_release);
    ASSERT_LT(ra.release_time, sopt.t_end);
    ASSERT_GE(ra.origin, 0);
    ASSERT_LT(ra.origin, net.num_vertices());
    ASSERT_GE(ra.destination, 0);
    ASSERT_LT(ra.destination, net.num_vertices());
    ASSERT_NE(ra.origin, ra.destination);
    ASSERT_GT(ra.direct_cost, 0.0);
    ASSERT_GT(ra.deadline, ra.release_time);
    last_release = ra.release_time;
    ++next_id;
  }
  EXPECT_TRUE(a.status().ok()) << a.status();
  EXPECT_FALSE(b.Next(&rb)) << "stream b longer than stream a";
  EXPECT_TRUE(b.status().ok()) << b.status();
  EXPECT_EQ(next_id, kRequests);
}

Metrics RunLargeFleet(bool event_driven) {
  RoadNetwork net = SmallCity(211);
  DemandModelOptions dopt;
  dopt.seed = 212;
  DemandModel demand(net, dopt);
  DistanceOracle oracle(net);
  ScenarioOptions sopt;
  sopt.num_requests = ScaleCi() ? 1000 : 4000;
  sopt.num_historical_trips = 8000;
  sopt.offline_fraction = 0.1;
  sopt.seed = 213;
  Scenario scenario = MakeScenario(net, demand, oracle, sopt);

  SystemConfig config;
  config.seed = 214;
  // Fresh system per run so dispatcher, indexes, and oracle caches start
  // cold and the counter comparison sees identical initial state.
  MTShareSystem system(net, scenario.HistoricalOdPairs(), config);

  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.requests = &scenario.requests;
  spec.num_taxis = 10000;
  spec.fleet_seed = 215;
  spec.event_driven = event_driven;
  Result<Metrics> run = system.RunScenario(spec);
  EXPECT_TRUE(run.ok()) << run.status();
  return std::move(run).value();
}

// The tier-1 equivalence suite pins sweep == event at fleet=24; bench_scale
// runs fleets of 10^4, where the event core's lazy materialization skips
// the overwhelming majority of taxis at every boundary. Exercise that
// regime once: a 10k-taxi fleet (mostly idle — that is the point) must
// still make bit-identical decisions under both advancement cores.
TEST(ScaleEngineEquivalenceTest, TenThousandTaxiFleetMatchesSweep) {
  Metrics sweep = RunLargeFleet(/*event_driven=*/false);
  Metrics event = RunLargeFleet(/*event_driven=*/true);
  EXPECT_FALSE(sweep.engine.event_driven);
  EXPECT_TRUE(event.engine.event_driven);

  EXPECT_EQ(sweep.TotalRequests(), event.TotalRequests());
  EXPECT_EQ(sweep.ServedRequests(), event.ServedRequests());
  EXPECT_EQ(sweep.ServedOnline(), event.ServedOnline());
  EXPECT_EQ(sweep.ServedOffline(), event.ServedOffline());
  EXPECT_DOUBLE_EQ(sweep.total_driver_income, event.total_driver_income);
  EXPECT_EQ(sweep.index_memory_bytes, event.index_memory_bytes);
  EXPECT_EQ(sweep.oracle_queries, event.oracle_queries);
  EXPECT_EQ(sweep.oracle_row_hits, event.oracle_row_hits);
  EXPECT_EQ(sweep.oracle_row_misses, event.oracle_row_misses);
  EXPECT_EQ(sweep.engine.arcs_stepped, event.engine.arcs_stepped);
  ASSERT_EQ(sweep.records().size(), event.records().size());
  for (size_t i = 0; i < sweep.records().size(); ++i) {
    const RequestRecord& rs = sweep.records()[i];
    const RequestRecord& re = event.records()[i];
    SCOPED_TRACE("request " + std::to_string(i));
    ASSERT_EQ(rs.assigned, re.assigned);
    ASSERT_EQ(rs.completed, re.completed);
    ASSERT_EQ(rs.taxi, re.taxi);
    ASSERT_EQ(rs.candidates, re.candidates);
    ASSERT_DOUBLE_EQ(rs.pickup_time, re.pickup_time);
    ASSERT_DOUBLE_EQ(rs.dropoff_time, re.dropoff_time);
    ASSERT_DOUBLE_EQ(rs.regular_fare, re.regular_fare);
    ASSERT_DOUBLE_EQ(rs.shared_fare, re.shared_fare);
  }
  // At a 10k fleet with 4k requests, almost every taxi is idle at every
  // boundary; the event core must be doing strictly heap-driven work.
  if (event.engine.arcs_stepped > 0) {
    EXPECT_GT(event.engine.heap_pops, 0);
  }
  EXPECT_EQ(sweep.engine.heap_pops, 0);
}

}  // namespace
}  // namespace mtshare
