#include "clustering/kmeans.h"

#include <gtest/gtest.h>

#include <set>

namespace mtshare {
namespace {

// Three tight 2-d blobs far apart.
std::vector<double> ThreeBlobs(int per_blob, Rng& rng) {
  std::vector<double> data;
  const double centers[3][2] = {{0, 0}, {100, 0}, {0, 100}};
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      data.push_back(centers[b][0] + rng.NextGaussian());
      data.push_back(centers[b][1] + rng.NextGaussian());
    }
  }
  return data;
}

TEST(KMeansTest, SeparatesObviousBlobs) {
  Rng rng(41);
  auto data = ThreeBlobs(40, rng);
  KMeansOptions opt;
  opt.k = 3;
  KMeansResult r = KMeans(data, 2, opt, rng);
  EXPECT_EQ(r.k_effective, 3);
  // All rows of one blob share a label, and the three labels differ.
  std::set<int32_t> labels;
  for (int b = 0; b < 3; ++b) {
    int32_t label = r.assignment[b * 40];
    labels.insert(label);
    for (int i = 0; i < 40; ++i) EXPECT_EQ(r.assignment[b * 40 + i], label);
  }
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeansTest, InertiaSmallForTightBlobs) {
  Rng rng(43);
  auto data = ThreeBlobs(30, rng);
  KMeansOptions opt;
  opt.k = 3;
  KMeansResult r = KMeans(data, 2, opt, rng);
  // Each point ~N(0,1) around its centroid: expected inertia ~= 2 * n.
  EXPECT_LT(r.inertia, 4.0 * 90.0);
}

TEST(KMeansTest, KLargerThanRowsClampsToRows) {
  Rng rng(47);
  std::vector<double> data = {0, 0, 10, 10};
  KMeansOptions opt;
  opt.k = 8;
  KMeansResult r = KMeans(data, 2, opt, rng);
  EXPECT_EQ(r.k_effective, 2);
  EXPECT_NE(r.assignment[0], r.assignment[1]);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, EmptyInput) {
  Rng rng(53);
  KMeansResult r = KMeans({}, 3, KMeansOptions{}, rng);
  EXPECT_EQ(r.k_effective, 0);
  EXPECT_TRUE(r.assignment.empty());
}

TEST(KMeansTest, SingleCluster) {
  Rng rng(59);
  std::vector<double> data = {1, 1, 2, 2, 3, 3};
  KMeansOptions opt;
  opt.k = 1;
  KMeansResult r = KMeans(data, 2, opt, rng);
  EXPECT_EQ(r.k_effective, 1);
  EXPECT_NEAR(r.centroids[0], 2.0, 1e-9);
  EXPECT_NEAR(r.centroids[1], 2.0, 1e-9);
}

TEST(KMeansTest, IdenticalPointsDoNotCrash) {
  Rng rng(61);
  std::vector<double> data(40, 5.0);  // 20 identical 2-d points
  KMeansOptions opt;
  opt.k = 4;
  KMeansResult r = KMeans(data, 2, opt, rng);
  EXPECT_EQ(r.k_effective, 4);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, HighDimensionalRows) {
  // Transition-probability vectors are high-dimensional; exercise dim=16.
  Rng rng(67);
  std::vector<double> data;
  for (int row = 0; row < 30; ++row) {
    for (int j = 0; j < 16; ++j) {
      // Two groups: mass on dim 0..7 vs dims 8..15.
      bool first_half = row < 15;
      data.push_back((first_half == (j < 8)) ? 1.0 + 0.01 * rng.NextGaussian()
                                             : 0.0);
    }
  }
  KMeansOptions opt;
  opt.k = 2;
  KMeansResult r = KMeans(data, 16, opt, rng);
  for (int row = 0; row < 15; ++row) {
    EXPECT_EQ(r.assignment[row], r.assignment[0]);
  }
  for (int row = 15; row < 30; ++row) {
    EXPECT_EQ(r.assignment[row], r.assignment[15]);
  }
  EXPECT_NE(r.assignment[0], r.assignment[15]);
}

TEST(KMeansTest, RandomSeedingAlsoWorks) {
  Rng rng(71);
  auto data = ThreeBlobs(30, rng);
  KMeansOptions opt;
  opt.k = 3;
  opt.kmeanspp_seeding = false;
  KMeansResult r = KMeans(data, 2, opt, rng);
  EXPECT_EQ(r.k_effective, 3);
  EXPECT_LT(r.inertia, 10.0 * 90.0);
}

TEST(KMeansTest, AssignmentConsistentWithCentroids) {
  Rng rng(73);
  auto data = ThreeBlobs(20, rng);
  KMeansOptions opt;
  opt.k = 3;
  KMeansResult r = KMeans(data, 2, opt, rng);
  // Every row is assigned to its nearest centroid.
  for (size_t row = 0; row < r.assignment.size(); ++row) {
    double own = RowCentroidDistanceSquared(data, 2, row, r.centroids,
                                            r.assignment[row]);
    for (int32_t c = 0; c < r.k_effective; ++c) {
      EXPECT_LE(own,
                RowCentroidDistanceSquared(data, 2, row, r.centroids, c) +
                    1e-9);
    }
  }
}

}  // namespace
}  // namespace mtshare
