#include "graph/graph_generators.h"

#include <gtest/gtest.h>

namespace mtshare {
namespace {

TEST(GridCityTest, ProducesStronglyConnectedNetwork) {
  GridCityOptions opt;
  opt.rows = 12;
  opt.cols = 12;
  RoadNetwork net = MakeGridCity(opt);
  EXPECT_GT(net.num_vertices(), 100);  // most of 144 kept after SCC cut
  std::vector<int32_t> comp;
  EXPECT_EQ(StronglyConnectedComponents(net, &comp), 1);
}

TEST(GridCityTest, DeterministicForSeed) {
  GridCityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = 99;
  RoadNetwork a = MakeGridCity(opt);
  RoadNetwork b = MakeGridCity(opt);
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_TRUE(a.coord(v) == b.coord(v));
  }
}

TEST(GridCityTest, DifferentSeedsDiffer) {
  GridCityOptions a_opt;
  a_opt.seed = 1;
  GridCityOptions b_opt;
  b_opt.seed = 2;
  RoadNetwork a = MakeGridCity(a_opt);
  RoadNetwork b = MakeGridCity(b_opt);
  bool any_diff = a.num_vertices() != b.num_vertices() ||
                  a.num_edges() != b.num_edges();
  if (!any_diff) {
    for (VertexId v = 0; v < a.num_vertices() && !any_diff; ++v) {
      any_diff = !(a.coord(v) == b.coord(v));
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(GridCityTest, RealisticDegreeRange) {
  GridCityOptions opt;
  opt.rows = 20;
  opt.cols = 20;
  RoadNetwork net = MakeGridCity(opt);
  double avg_out = double(net.num_edges()) / net.num_vertices();
  EXPECT_GT(avg_out, 1.5);
  EXPECT_LT(avg_out, 4.5);
}

TEST(GridCityTest, NoOneWayNoDropsKeepsFullGrid) {
  GridCityOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.one_way_fraction = 0.0;
  opt.drop_edge_fraction = 0.0;
  RoadNetwork net = MakeGridCity(opt);
  EXPECT_EQ(net.num_vertices(), 100);
  // Full bidirectional grid: 2 * (2 * 10 * 9) edges.
  EXPECT_EQ(net.num_edges(), 360);
}

TEST(RingCityTest, StronglyConnected) {
  RingCityOptions opt;
  opt.rings = 4;
  opt.spokes = 10;
  RoadNetwork net = MakeRingCity(opt);
  EXPECT_EQ(net.num_vertices(), 1 + 4 * 10);
  std::vector<int32_t> comp;
  EXPECT_EQ(StronglyConnectedComponents(net, &comp), 1);
}

TEST(RandomGeometricTest, ConnectedAndNonEmpty) {
  RandomGeometricOptions opt;
  opt.num_vertices = 250;
  opt.connect_radius_m = 420.0;  // well above the percolation threshold
  RoadNetwork net = MakeRandomGeometric(opt);
  EXPECT_GT(net.num_vertices(), 150);
  std::vector<int32_t> comp;
  EXPECT_EQ(StronglyConnectedComponents(net, &comp), 1);
}

}  // namespace
}  // namespace mtshare
