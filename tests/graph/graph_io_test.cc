#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/graph_generators.h"

namespace mtshare {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(GraphIoTest, RoundTripPreservesTopologyAndCosts) {
  GridCityOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  RoadNetwork original = MakeGridCity(opt);
  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveEdgeList(original, path).ok());

  Result<RoadNetwork> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const RoadNetwork& net = loaded.value();
  ASSERT_EQ(net.num_vertices(), original.num_vertices());
  ASSERT_EQ(net.num_edges(), original.num_edges());
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    auto a = original.OutArcs(v);
    auto b = net.OutArcs(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].head, b[i].head);
      EXPECT_NEAR(a[i].cost, b[i].cost, 1e-6);
    }
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileIsIoError) {
  Result<RoadNetwork> r = LoadEdgeList("/nonexistent/net.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::string path = TempPath("comments.csv");
  {
    std::ofstream out(path);
    out << "# header\n\nv,0,0\nv,10,0\n# mid comment\ne,0,1,10\n";
  }
  Result<RoadNetwork> r = LoadEdgeList(path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().num_vertices(), 2);
  EXPECT_EQ(r.value().num_edges(), 1);
  std::remove(path.c_str());
}

TEST(GraphIoTest, EdgeToUnknownVertexRejectedWithLineNumber) {
  std::string path = TempPath("badedge.csv");
  {
    std::ofstream out(path);
    out << "v,0,0\ne,0,5,10\n";
  }
  Result<RoadNetwork> r = LoadEdgeList(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GraphIoTest, NegativeLengthRejected) {
  std::string path = TempPath("neglen.csv");
  {
    std::ofstream out(path);
    out << "v,0,0\nv,1,1\ne,0,1,-5\n";
  }
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::remove(path.c_str());
}

TEST(GraphIoTest, UnknownRecordTypeRejected) {
  std::string path = TempPath("badtype.csv");
  {
    std::ofstream out(path);
    out << "x,1,2\n";
  }
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::remove(path.c_str());
}

TEST(GraphIoTest, MalformedCoordinatesRejected) {
  std::string path = TempPath("badcoord.csv");
  {
    std::ofstream out(path);
    out << "v,zero,0\n";
  }
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::remove(path.c_str());
}

TEST(GraphIoTest, SpeedFactorRoundTrips) {
  std::string path = TempPath("factor.csv");
  {
    std::ofstream out(path);
    out << "v,0,0\nv,100,0\ne,0,1,100,2.0\n";
  }
  Result<RoadNetwork> r = LoadEdgeList(path, 10.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().OutArcs(0)[0].cost, 5.0, 1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtshare
