#include "graph/road_network.h"

#include <gtest/gtest.h>

namespace mtshare {
namespace {

// Small diamond: 0 -> 1 -> 3, 0 -> 2 -> 3, plus back edge 3 -> 0.
RoadNetwork MakeDiamond() {
  RoadNetwork::Builder b(10.0);  // 10 m/s
  VertexId v0 = b.AddVertex({0, 0});
  VertexId v1 = b.AddVertex({100, 100});
  VertexId v2 = b.AddVertex({100, -100});
  VertexId v3 = b.AddVertex({200, 0});
  b.AddEdge(v0, v1, 150.0);
  b.AddEdge(v1, v3, 150.0);
  b.AddEdge(v0, v2, 140.0);
  b.AddEdge(v2, v3, 140.0);
  b.AddEdge(v3, v0, 210.0);
  return b.Build();
}

TEST(RoadNetworkTest, CountsAndCoords) {
  RoadNetwork net = MakeDiamond();
  EXPECT_EQ(net.num_vertices(), 4);
  EXPECT_EQ(net.num_edges(), 5);
  EXPECT_DOUBLE_EQ(net.coord(3).x, 200.0);
}

TEST(RoadNetworkTest, ForwardAdjacency) {
  RoadNetwork net = MakeDiamond();
  auto arcs = net.OutArcs(0);
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_TRUE((arcs[0].head == 1 && arcs[1].head == 2) ||
              (arcs[0].head == 2 && arcs[1].head == 1));
}

TEST(RoadNetworkTest, ReverseAdjacency) {
  RoadNetwork net = MakeDiamond();
  auto arcs = net.InArcs(3);
  ASSERT_EQ(arcs.size(), 2u);
  // InArcs heads are the tails of the incoming edges.
  EXPECT_TRUE((arcs[0].head == 1 && arcs[1].head == 2) ||
              (arcs[0].head == 2 && arcs[1].head == 1));
}

TEST(RoadNetworkTest, EdgeCostFromSpeed) {
  RoadNetwork net = MakeDiamond();
  auto arcs = net.OutArcs(0);
  for (const Arc& a : arcs) {
    EXPECT_DOUBLE_EQ(a.cost, a.length_m / 10.0);
  }
}

TEST(RoadNetworkTest, SpeedFactorAcceleratesEdge) {
  RoadNetwork::Builder b(10.0);
  VertexId u = b.AddVertex({0, 0});
  VertexId v = b.AddVertex({100, 0});
  b.AddEdge(u, v, 100.0, 2.0);
  RoadNetwork net = b.Build();
  EXPECT_DOUBLE_EQ(net.OutArcs(u)[0].cost, 5.0);
}

TEST(RoadNetworkTest, BoundsCoverAllVertices) {
  RoadNetwork net = MakeDiamond();
  EXPECT_DOUBLE_EQ(net.bounds().min.x, 0.0);
  EXPECT_DOUBLE_EQ(net.bounds().max.x, 200.0);
  EXPECT_DOUBLE_EQ(net.bounds().min.y, -100.0);
  EXPECT_DOUBLE_EQ(net.bounds().max.y, 100.0);
  EXPECT_TRUE(net.bounds().Contains({50, 50}));
  EXPECT_FALSE(net.bounds().Contains({-1, 0}));
}

TEST(RoadNetworkTest, EuclideanLowerBoundIsAdmissible) {
  RoadNetwork net = MakeDiamond();
  // Shortest 0 -> 3 is via vertex 2: (140 + 140) / 10 = 28 s.
  EXPECT_LE(net.EuclideanLowerBound(0, 3), 28.0);
}

TEST(RoadNetworkTest, EuclideanLowerBoundAccountsForFastEdges) {
  RoadNetwork::Builder b(10.0);
  VertexId u = b.AddVertex({0, 0});
  VertexId v = b.AddVertex({1000, 0});
  b.AddEdge(u, v, 1000.0, 2.0);  // 50 s actual
  RoadNetwork net = b.Build();
  EXPECT_LE(net.EuclideanLowerBound(u, v), 50.0);
}

TEST(SccTest, IdentifiesComponents) {
  // Two 2-cycles joined by a one-way edge: {0,1} and {2,3}.
  RoadNetwork::Builder b;
  for (int i = 0; i < 4; ++i) b.AddVertex({double(i), 0});
  b.AddEdge(0, 1, 10);
  b.AddEdge(1, 0, 10);
  b.AddEdge(2, 3, 10);
  b.AddEdge(3, 2, 10);
  b.AddEdge(1, 2, 10);
  RoadNetwork net = b.Build();
  std::vector<int32_t> comp;
  EXPECT_EQ(StronglyConnectedComponents(net, &comp), 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(SccTest, ExtractLargestKeepsBiggerComponent) {
  RoadNetwork::Builder b;
  for (int i = 0; i < 5; ++i) b.AddVertex({double(i), 0});
  // Component A: 0<->1<->2 (3 vertices), component B: 3<->4.
  b.AddEdge(0, 1, 10);
  b.AddEdge(1, 0, 10);
  b.AddEdge(1, 2, 10);
  b.AddEdge(2, 1, 10);
  b.AddEdge(3, 4, 10);
  b.AddEdge(4, 3, 10);
  b.AddEdge(2, 3, 10);  // one-way bridge
  RoadNetwork net = b.Build();
  std::vector<VertexId> mapping;
  RoadNetwork scc = ExtractLargestScc(net, &mapping);
  EXPECT_EQ(scc.num_vertices(), 3);
  EXPECT_NE(mapping[0], kInvalidVertex);
  EXPECT_EQ(mapping[3], kInvalidVertex);
  EXPECT_EQ(mapping[4], kInvalidVertex);
}

TEST(SccTest, PreservesEdgeCostsThroughExtraction) {
  RoadNetwork::Builder b(10.0);
  VertexId u = b.AddVertex({0, 0});
  VertexId v = b.AddVertex({100, 0});
  b.AddEdge(u, v, 100.0, 2.0);
  b.AddEdge(v, u, 100.0, 1.0);
  RoadNetwork net = b.Build();
  RoadNetwork scc = ExtractLargestScc(net);
  ASSERT_EQ(scc.num_vertices(), 2);
  double c01 = scc.OutArcs(0)[0].cost;
  double c10 = scc.OutArcs(1)[0].cost;
  EXPECT_NEAR(std::min(c01, c10), 5.0, 1e-9);
  EXPECT_NEAR(std::max(c01, c10), 10.0, 1e-9);
}

TEST(RoadNetworkTest, MemoryBytesNonZero) {
  EXPECT_GT(MakeDiamond().MemoryBytes(), 0u);
}

}  // namespace
}  // namespace mtshare
