#include "geo/mobility_vector.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mtshare {
namespace {

MobilityVector MakeVec(double ox, double oy, double dx, double dy) {
  return MobilityVector{Point{ox, oy}, Point{dx, dy}};
}

TEST(MobilityVectorTest, DisplacementAndLength) {
  MobilityVector v = MakeVec(1.0, 2.0, 4.0, 6.0);
  EXPECT_DOUBLE_EQ(v.Displacement().x, 3.0);
  EXPECT_DOUBLE_EQ(v.Displacement().y, 4.0);
  EXPECT_DOUBLE_EQ(v.Length(), 5.0);
}

TEST(DirectionCosineTest, ParallelTripsScoreOne) {
  MobilityVector a = MakeVec(0, 0, 100, 0);
  MobilityVector b = MakeVec(500, 500, 900, 500);  // also due east
  EXPECT_NEAR(DirectionCosine(a, b), 1.0, 1e-12);
}

TEST(DirectionCosineTest, OppositeTripsScoreMinusOne) {
  // The Fig. 1 motivation: t2 "travels inversely with r1" and must be
  // excludable by the direction measure.
  MobilityVector a = MakeVec(0, 0, 100, 0);
  MobilityVector b = MakeVec(900, 0, 100, 0);
  EXPECT_NEAR(DirectionCosine(a, b), -1.0, 1e-12);
}

TEST(DirectionCosineTest, PerpendicularTripsScoreZero) {
  MobilityVector a = MakeVec(0, 0, 100, 0);
  MobilityVector b = MakeVec(0, 0, 0, 100);
  EXPECT_NEAR(DirectionCosine(a, b), 0.0, 1e-12);
}

TEST(DirectionCosineTest, FortyFiveDegrees) {
  // The paper's default lambda = 0.707 corresponds to theta = 45 deg.
  MobilityVector a = MakeVec(0, 0, 100, 0);
  MobilityVector b = MakeVec(0, 0, 100, 100);
  EXPECT_NEAR(DirectionCosine(a, b), std::sqrt(0.5), 1e-12);
}

TEST(DirectionCosineTest, DegenerateTripIsIncompatible) {
  // A zero-displacement trip has no direction, so it cannot *share* one:
  // it must not pass any lambda threshold. (It used to score 1.0, which
  // admitted origin == destination requests into every mobility cluster.)
  MobilityVector a = MakeVec(5, 5, 5, 5);  // zero displacement
  MobilityVector b = MakeVec(0, 0, 100, 0);
  EXPECT_DOUBLE_EQ(DirectionCosine(a, b), 0.0);
  EXPECT_DOUBLE_EQ(DirectionCosine(b, a), 0.0);
  EXPECT_DOUBLE_EQ(DirectionCosine(a, a), 0.0);
}

TEST(Raw4dCosineTest, ZeroVectorIsIncompatible) {
  MobilityVector zero = MakeVec(0, 0, 0, 0);  // zero norm as a raw 4-tuple
  MobilityVector b = MakeVec(0, 0, 100, 0);
  EXPECT_DOUBLE_EQ(CosineSimilarityRaw4d(zero, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarityRaw4d(b, zero), 0.0);
}

TEST(Raw4dCosineTest, SaturatesForDistantCityCoordinates) {
  // Documents why the library uses displacement cosine: with raw 4-tuples,
  // two trips in opposite directions still score ~1 when coordinates are
  // large relative to trip lengths.
  MobilityVector east = MakeVec(50000, 50000, 51000, 50000);
  MobilityVector west = MakeVec(51000, 50000, 50000, 50000);
  EXPECT_GT(CosineSimilarityRaw4d(east, west), 0.99);
  EXPECT_LT(DirectionCosine(east, west), -0.99);
}

}  // namespace
}  // namespace mtshare
