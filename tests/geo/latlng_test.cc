#include "geo/latlng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mtshare {
namespace {

// Chengdu city center, the paper's evaluation city.
const LatLng kChengdu{30.657, 104.066};

TEST(HaversineTest, ZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(HaversineMeters(kChengdu, kChengdu), 0.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  LatLng a{30.0, 104.0};
  LatLng b{31.0, 104.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111195.0, 300.0);
}

TEST(HaversineTest, Symmetric) {
  LatLng a{30.0, 104.0};
  LatLng b{30.5, 104.5};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(ProjectionTest, OriginMapsToZero) {
  Projection proj(kChengdu);
  Point p = proj.Project(kChengdu);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(ProjectionTest, RoundTrip) {
  Projection proj(kChengdu);
  LatLng coord{30.70, 104.10};
  LatLng back = proj.Unproject(proj.Project(coord));
  EXPECT_NEAR(back.lat, coord.lat, 1e-9);
  EXPECT_NEAR(back.lng, coord.lng, 1e-9);
}

TEST(ProjectionTest, DistancesMatchHaversineOverCityExtent) {
  Projection proj(kChengdu);
  // ~7 km east-ish, comparable to the paper's 2nd-Ring-Road extent.
  LatLng a{30.66, 104.03};
  LatLng b{30.70, 104.10};
  double planar = Distance(proj.Project(a), proj.Project(b));
  double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar, sphere, sphere * 0.001);
}

TEST(PointDistanceTest, EuclideanBasics) {
  Point a{0.0, 0.0};
  Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared(a, b), 25.0);
  EXPECT_TRUE(a == (Point{0.0, 0.0}));
}

}  // namespace
}  // namespace mtshare
