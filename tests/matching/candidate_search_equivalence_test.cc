// The ch_buckets candidate path must make BIT-IDENTICAL dispatch
// decisions to the index path: last-stop bucket sweeps answer the same
// reachability predicate the per-taxi probes answer, and the
// detour-ellipse screen only clears provably infeasible insertion slots.
// These tests run the whole system both ways for every scheme and compare
// run outcomes field by field (the ISSUE 10 acceptance gate), and pin the
// bucket-store consistency invariant under the event-driven engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"
#include "matching/taxi_state.h"
#include "sim/engine.h"
#include "sim/request_source.h"

namespace mtshare {
namespace {

struct RunOptions {
  SchemeKind scheme = SchemeKind::kMtShare;
  uint64_t seed = 11;
  CandidateSearch candidates = CandidateSearch::kIndex;
  bool event_driven = true;
  int32_t num_threads = 1;
  OracleBackend oracle_backend = OracleBackend::kAuto;
};

Metrics RunOnce(const RunOptions& opt) {
  GridCityOptions gopt;
  gopt.rows = 16;
  gopt.cols = 16;
  gopt.seed = opt.seed;
  RoadNetwork net = MakeGridCity(gopt);

  DemandModelOptions dopt;
  dopt.seed = opt.seed + 1;
  DemandModel demand(net, dopt);
  DistanceOracle oracle(net);
  ScenarioOptions sopt;
  sopt.num_requests = 160;
  sopt.num_historical_trips = 2500;
  sopt.offline_fraction = 0.2;
  sopt.seed = opt.seed + 2;
  Scenario scenario = MakeScenario(net, demand, oracle, sopt);

  SystemConfig config;
  config.kappa = 16;
  config.kt = 5;
  config.matching.candidate_search = opt.candidates;
  // Fresh system per run so dispatcher indexes and bucket stores start
  // cold and the comparison sees identical initial state.
  MTShareSystem system(net, scenario.HistoricalOdPairs(), config);

  ScenarioSpec spec;
  spec.scheme = opt.scheme;
  spec.requests = &scenario.requests;
  spec.num_taxis = 24;
  spec.fleet_seed = opt.seed + 3;
  spec.event_driven = opt.event_driven;
  spec.num_threads = opt.num_threads;
  spec.oracle_backend = opt.oracle_backend;
  Result<Metrics> run = system.RunScenario(spec);
  EXPECT_TRUE(run.ok()) << run.status();
  return std::move(run).value();
}

/// Asserts identical decisions. Unlike the engine-equivalence harness this
/// deliberately does NOT compare oracle query counts — eliminating probes
/// is the ch_buckets path's whole point; what must agree is every
/// per-request decision field and the aggregate outcomes they roll into.
void ExpectIdenticalDecisions(const Metrics& a, const Metrics& b,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.TotalRequests(), b.TotalRequests());
  EXPECT_EQ(a.ServedRequests(), b.ServedRequests());
  EXPECT_EQ(a.ServedOnline(), b.ServedOnline());
  EXPECT_EQ(a.ServedOffline(), b.ServedOffline());
  EXPECT_DOUBLE_EQ(a.total_driver_income, b.total_driver_income);
  EXPECT_EQ(a.engine.arcs_stepped, b.engine.arcs_stepped);
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); ++i) {
    const RequestRecord& ra = a.records()[i];
    const RequestRecord& rb = b.records()[i];
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(ra.assigned, rb.assigned);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.taxi, rb.taxi);
    EXPECT_EQ(ra.candidates, rb.candidates);
    EXPECT_DOUBLE_EQ(ra.pickup_time, rb.pickup_time);
    EXPECT_DOUBLE_EQ(ra.dropoff_time, rb.dropoff_time);
    EXPECT_DOUBLE_EQ(ra.regular_fare, rb.regular_fare);
    EXPECT_DOUBLE_EQ(ra.shared_fare, rb.shared_fare);
  }
}

TEST(CandidateSearchEquivalenceTest, BucketsMatchIndexForEverySchemeAndSeed) {
  for (uint64_t seed : {11u, 29u}) {
    for (SchemeKind scheme :
         {SchemeKind::kNoSharing, SchemeKind::kTShare, SchemeKind::kPGreedyDp,
          SchemeKind::kMtShare, SchemeKind::kMtSharePro}) {
      const std::string label =
          std::string(SchemeName(scheme)) + " seed " + std::to_string(seed);
      SCOPED_TRACE(label);
      RunOptions opt;
      opt.scheme = scheme;
      opt.seed = seed;
      opt.candidates = CandidateSearch::kIndex;
      Metrics index = RunOnce(opt);
      opt.candidates = CandidateSearch::kChBuckets;
      Metrics buckets = RunOnce(opt);
      ExpectIdenticalDecisions(index, buckets, label);
      // The bucket path identified itself and did real sweep work.
      // pGreedyDP is the exception: it has no reachability probe to
      // replace (its DP rejects unreachable pickups), so it never sweeps
      // and benefits from the ellipse screen alone.
      EXPECT_FALSE(index.routing.bucket_search);
      EXPECT_TRUE(buckets.routing.bucket_search);
      EXPECT_EQ(index.routing.bucket_candidates, 0);
      if (scheme != SchemeKind::kPGreedyDp && buckets.ServedOnline() > 0) {
        EXPECT_GT(buckets.routing.bucket_candidates, 0);
        EXPECT_GE(buckets.routing.bucket_maintenance_ms, 0.0);
      }
      // Every scheme with landmarks armed runs the detour-ellipse screen
      // in place of the plain lower-bound pass (No-Sharing has neither a
      // schedule to screen nor landmarks).
      if (scheme != SchemeKind::kNoSharing && buckets.ServedOnline() > 0) {
        EXPECT_GT(buckets.routing.slots_screened, 0)
            << SchemeName(scheme);
      }
      EXPECT_EQ(index.routing.slots_screened, 0);
      EXPECT_EQ(index.routing.ellipse_pruned, 0);
      EXPECT_EQ(buckets.routing.fallback_queries, 0);
    }
  }
}

TEST(CandidateSearchEquivalenceTest, BucketsMatchAcrossEngineCores) {
  // The dirty-anchor maintenance rides the engine's OnScheduleChanged
  // notifications; both advancement cores must drive it to the same
  // decisions (and to the index path's decisions).
  RunOptions opt;
  opt.scheme = SchemeKind::kMtShare;
  opt.seed = 47;
  opt.candidates = CandidateSearch::kChBuckets;
  opt.event_driven = true;
  Metrics event = RunOnce(opt);
  opt.event_driven = false;
  Metrics sweep = RunOnce(opt);
  ExpectIdenticalDecisions(event, sweep, "event vs sweep core, ch_buckets");

  opt.candidates = CandidateSearch::kIndex;
  Metrics index_sweep = RunOnce(opt);
  ExpectIdenticalDecisions(index_sweep, sweep, "index vs ch_buckets, sweep");
}

TEST(CandidateSearchEquivalenceTest, BucketsMatchUnderThreadedEvaluation) {
  // Slot masks are written sequentially before the pool fan-out; a
  // threaded run must reproduce the sequential decisions exactly.
  RunOptions opt;
  opt.scheme = SchemeKind::kTShare;
  opt.seed = 29;
  opt.candidates = CandidateSearch::kChBuckets;
  opt.num_threads = 1;
  Metrics sequential = RunOnce(opt);
  opt.num_threads = 4;
  Metrics threaded = RunOnce(opt);
  ExpectIdenticalDecisions(sequential, threaded, "1 vs 4 threads");
}

TEST(CandidateSearchEquivalenceTest, BucketsMatchOnChOracleBackend) {
  // On the CH oracle the bucket store shares the oracle's hierarchy
  // instead of building its own; decisions still match the index path.
  RunOptions opt;
  opt.scheme = SchemeKind::kMtShare;
  opt.seed = 11;
  opt.oracle_backend = OracleBackend::kCh;
  opt.candidates = CandidateSearch::kIndex;
  Metrics index = RunOnce(opt);
  opt.candidates = CandidateSearch::kChBuckets;
  Metrics buckets = RunOnce(opt);
  ExpectIdenticalDecisions(index, buckets, "ch oracle backend");
  EXPECT_TRUE(buckets.routing.ch_active);
}

TEST(CandidateSearchEquivalenceTest, BucketStoreStaysConsistentMidRun) {
  // Invariant the maintenance hooks must uphold at every decision point:
  // a taxi's bucket deposits either match its CURRENT location or the
  // taxi is marked dirty (so the next sweep rebuilds it). A missed
  // OnScheduleChanged call would leave a moved taxi clean with a stale
  // anchor, which this callback catches at every dispatch of a full run
  // under the lazy event-driven core.
  GridCityOptions gopt;
  gopt.rows = 16;
  gopt.cols = 16;
  gopt.seed = 83;
  RoadNetwork net = MakeGridCity(gopt);
  DemandModelOptions dopt;
  dopt.seed = 84;
  DemandModel demand(net, dopt);
  DistanceOracle oracle(net);
  ScenarioOptions sopt;
  sopt.num_requests = 160;
  sopt.num_historical_trips = 2500;
  sopt.offline_fraction = 0.2;
  sopt.seed = 85;
  Scenario scenario = MakeScenario(net, demand, oracle, sopt);
  SystemConfig config;
  config.kappa = 16;
  config.kt = 5;
  config.matching.candidate_search = CandidateSearch::kChBuckets;
  MTShareSystem system(net, scenario.HistoricalOdPairs(), config);

  std::vector<TaxiState> fleet =
      MakeFleet(net, 24, config.taxi_capacity, 86,
                scenario.requests.front().release_time);
  std::unique_ptr<Dispatcher> dispatcher =
      system.MakeDispatcher(SchemeKind::kMtShare, &fleet);
  ASSERT_TRUE(dispatcher->ChBucketSearchEnabled());
  const LastStopBuckets* buckets = dispatcher->buckets();
  ASSERT_NE(buckets, nullptr);

  EngineOptions eopts;
  int64_t checks = 0;
  eopts.on_decision = [&](const RideRequest&, const RequestRecord&) {
    for (const TaxiState& t : fleet) {
      ++checks;
      EXPECT_TRUE(buckets->dirty(t.id) || buckets->anchor(t.id) == t.location)
          << "taxi " << t.id << ": clean bucket entries anchored at "
          << buckets->anchor(t.id) << " but taxi is at " << t.location;
    }
  };
  SimulationEngine engine(net, dispatcher.get(), &fleet, eopts);
  VectorRequestSource source(&scenario.requests);
  Metrics m = engine.Run(source);
  EXPECT_GT(m.ServedRequests(), 0);
  EXPECT_GT(checks, 0);
}

}  // namespace
}  // namespace mtshare
