// Tests of probabilistic idle cruising: the mT-Share-pro behavior that
// steers empty taxis toward offline-encounter mass (and the Fig. 16
// decorator that arms it on baselines).
#include <gtest/gtest.h>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"
#include "sim/engine.h"

namespace mtshare {
namespace {

class IdleCruisingTest : public ::testing::Test {
 protected:
  IdleCruisingTest() {
    GridCityOptions gopt;
    gopt.rows = 16;
    gopt.cols = 16;
    gopt.seed = 19;
    net_ = MakeGridCity(gopt);
    demand_ = std::make_unique<DemandModel>(net_, DemandModelOptions{});
    oracle_ = std::make_unique<DistanceOracle>(net_);
    ScenarioOptions sopt;
    sopt.num_requests = 60;
    sopt.num_historical_trips = 3000;
    sopt.offline_fraction = 0.5;
    scenario_ = MakeScenario(net_, *demand_, *oracle_, sopt);
    SystemConfig cfg;
    cfg.kappa = 16;
    cfg.kt = 4;
    system_ = std::make_unique<MTShareSystem>(
        net_, scenario_.HistoricalOdPairs(), cfg);
  }

  RoadNetwork net_;
  std::unique_ptr<DemandModel> demand_;
  std::unique_ptr<DistanceOracle> oracle_;
  Scenario scenario_;
  std::unique_ptr<MTShareSystem> system_;
};

TEST_F(IdleCruisingTest, ProDispatcherOffersCruises) {
  auto fleet = MakeFleet(net_, 4, 3, 7, 0.0);
  auto pro = system_->MakeDispatcher(SchemeKind::kMtSharePro, &fleet);
  RoutePlanner::PlannedRoute cruise = pro->PlanIdleCruise(0, 100.0);
  ASSERT_TRUE(cruise.valid);
  EXPECT_GT(cruise.path.vertices.size(), 1u);
  EXPECT_EQ(cruise.path.front(), fleet[0].location);
}

TEST_F(IdleCruisingTest, BasicDispatcherNeverCruises) {
  auto fleet = MakeFleet(net_, 4, 3, 7, 0.0);
  auto basic = system_->MakeDispatcher(SchemeKind::kMtShare, &fleet);
  EXPECT_FALSE(basic->PlanIdleCruise(0, 100.0).valid);
  auto tshare = system_->MakeDispatcher(SchemeKind::kTShare, &fleet);
  EXPECT_FALSE(tshare->PlanIdleCruise(0, 100.0).valid);
}

TEST_F(IdleCruisingTest, CruiseOffersAreRateLimited) {
  auto fleet = MakeFleet(net_, 4, 3, 7, 0.0);
  auto pro = system_->MakeDispatcher(SchemeKind::kMtSharePro, &fleet);
  ASSERT_TRUE(pro->PlanIdleCruise(0, 100.0).valid);
  // Immediately after, the same taxi is refused; another taxi is not.
  EXPECT_FALSE(pro->PlanIdleCruise(0, 110.0).valid);
  EXPECT_TRUE(pro->PlanIdleCruise(1, 110.0).valid);
  // After the cooldown the taxi may cruise again.
  EXPECT_TRUE(pro->PlanIdleCruise(0, 161.0).valid);
}

TEST_F(IdleCruisingTest, EngineMovesIdleProTaxis) {
  auto fleet = MakeFleet(net_, 6, 3, 7, 0.0);
  std::vector<VertexId> start_locations;
  for (const auto& t : fleet) start_locations.push_back(t.location);

  auto pro = system_->MakeDispatcher(SchemeKind::kMtSharePro, &fleet);
  EngineOptions eopts;
  SimulationEngine engine(net_, pro.get(), &fleet, eopts);
  // Offline-only stream: no dispatches, movement can only come from
  // cruising.
  std::vector<RideRequest> requests;
  for (RequestId i = 0; i < 5; ++i) {
    RideRequest r = scenario_.requests[i];
    r.id = i;
    r.offline = true;
    r.release_time = 60.0 * double(i + 1);
    r.deadline = r.release_time + 1.3 * r.direct_cost;
    requests.push_back(r);
  }
  engine.Run(requests);
  double total_driven = 0.0;
  for (const auto& t : fleet) total_driven += t.driven_meters;
  EXPECT_GT(total_driven, 0.0);  // pro taxis cruised
}

TEST_F(IdleCruisingTest, EngineKeepsBasicTaxisParked) {
  auto fleet = MakeFleet(net_, 6, 3, 7, 0.0);
  auto basic = system_->MakeDispatcher(SchemeKind::kMtShare, &fleet);
  EngineOptions eopts;
  SimulationEngine engine(net_, basic.get(), &fleet, eopts);
  std::vector<RideRequest> requests;
  for (RequestId i = 0; i < 5; ++i) {
    RideRequest r = scenario_.requests[i];
    r.id = i;
    r.offline = true;
    r.release_time = 60.0 * double(i + 1);
    requests.push_back(r);
  }
  engine.Run(requests);
  for (const auto& t : fleet) {
    EXPECT_DOUBLE_EQ(t.driven_meters, 0.0);
  }
}

TEST_F(IdleCruisingTest, DecoratedBaselineCruises) {
  auto fleet = MakeFleet(net_, 4, 3, 7, 0.0);
  auto tshare = system_->MakeDispatcher(SchemeKind::kTShare, &fleet);
  auto planner = std::make_unique<RoutePlanner>(
      net_, system_->partitioning(), system_->landmarks(),
      &system_->transitions(), &system_->oracle(), RoutePlannerOptions{});
  tshare->EnableIdleCruising(&system_->partitioning(), std::move(planner));
  EXPECT_TRUE(tshare->PlanIdleCruise(0, 100.0).valid);
}

TEST_F(IdleCruisingTest, CruisingTaxiRemainsDispatchable) {
  auto fleet = MakeFleet(net_, 3, 3, 7, 0.0);
  auto pro = system_->MakeDispatcher(SchemeKind::kMtSharePro, &fleet);
  EngineOptions eopts;
  SimulationEngine engine(net_, pro.get(), &fleet, eopts);
  // One offline request early (starts cruising), one ONLINE request later:
  // a cruising taxi must still take the dispatch.
  std::vector<RideRequest> requests;
  {
    RideRequest r = scenario_.requests[0];
    r.id = 0;
    r.offline = true;
    r.release_time = 30.0;
    requests.push_back(r);
    RideRequest q = scenario_.requests[1];
    q.id = 1;
    q.offline = false;
    q.release_time = 400.0;
    q.deadline = q.release_time + 2.5 * q.direct_cost;
    requests.push_back(q);
  }
  Metrics m = engine.Run(requests);
  EXPECT_TRUE(m.records()[1].completed);
}

}  // namespace
}  // namespace mtshare
