#include "matching/taxi_index.h"

#include <gtest/gtest.h>

#include "graph/graph_generators.h"
#include "routing/dijkstra.h"
#include "sim/taxi.h"

namespace mtshare {
namespace {

class TaxiIndexTest : public ::testing::Test {
 protected:
  TaxiIndexTest() {
    GridCityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    opt.seed = 17;
    net_ = MakeGridCity(opt);
    partitioning_ = GridPartition(net_, 9);
    index_ = std::make_unique<MtShareTaxiIndex>(net_, partitioning_, 0.707,
                                                3600.0);
  }

  TaxiState IdleTaxiAt(TaxiId id, VertexId v) {
    TaxiState t;
    t.id = id;
    t.capacity = 3;
    t.location = v;
    return t;
  }

  bool InPartitionList(PartitionId p, TaxiId id) {
    return index_->PartitionContains(p, id);
  }

  RoadNetwork net_;
  MapPartitioning partitioning_;
  std::unique_ptr<MtShareTaxiIndex> index_;
};

TEST_F(TaxiIndexTest, IdleTaxiIndexedInItsPartition) {
  TaxiState t = IdleTaxiAt(0, 10);
  index_->ReindexTaxi(t, 0.0);
  EXPECT_TRUE(InPartitionList(partitioning_.PartitionOf(10), 0));
  // Idle: not mobility-clustered.
  EXPECT_EQ(index_->clustering().num_members(), 0);
}

TEST_F(TaxiIndexTest, ReindexMovesMembership) {
  TaxiState t = IdleTaxiAt(0, 10);
  index_->ReindexTaxi(t, 0.0);
  PartitionId before = partitioning_.PartitionOf(10);
  // Move the idle taxi far away.
  VertexId far = net_.num_vertices() - 1;
  t.location = far;
  index_->OnTaxiMoved(t, 5.0);
  PartitionId after = partitioning_.PartitionOf(far);
  if (before != after) {
    EXPECT_FALSE(InPartitionList(before, 0));
  }
  EXPECT_TRUE(InPartitionList(after, 0));
}

TEST_F(TaxiIndexTest, BusyTaxiIndexedAlongRouteWithinHorizon) {
  TaxiState t = IdleTaxiAt(1, 0);
  // Fake a committed route crossing the map with a dropoff far away.
  DijkstraSearch search(net_);
  Path path = search.FindPath(0, net_.num_vertices() - 1);
  ASSERT_TRUE(path.valid);
  RideRequest r;
  r.id = 7;
  r.origin = 0;
  r.destination = net_.num_vertices() - 1;
  r.release_time = 0.0;
  r.direct_cost = path.cost;
  r.deadline = 10 * path.cost;
  t.schedule = Schedule::WithInsertion(Schedule(), r, 0, 0);
  ApplyPlan(&t, net_, t.schedule, path.vertices, {0.0, path.cost}, 0.0, false);
  index_->ReindexTaxi(t, 0.0);

  // Every partition the route crosses within T_mp lists the taxi.
  for (size_t i = 0; i < path.vertices.size(); ++i) {
    if (t.route_times[i] > 3600.0) break;
    EXPECT_TRUE(InPartitionList(partitioning_.PartitionOf(path.vertices[i]),
                                1))
        << "vertex " << path.vertices[i];
  }
  // Busy with a dropoff: mobility-clustered.
  EXPECT_EQ(index_->clustering().num_members(), 1);
}

TEST_F(TaxiIndexTest, HorizonCapsRouteMemberships) {
  TaxiState t = IdleTaxiAt(2, 0);
  DijkstraSearch search(net_);
  Path path = search.FindPath(0, net_.num_vertices() - 1);
  ASSERT_TRUE(path.valid);
  RideRequest r;
  r.id = 9;
  r.origin = 0;
  r.destination = net_.num_vertices() - 1;
  r.deadline = 10 * path.cost;
  r.direct_cost = path.cost;
  t.schedule = Schedule::WithInsertion(Schedule(), r, 0, 0);
  ApplyPlan(&t, net_, t.schedule, path.vertices, {0.0, path.cost}, 0.0, false);

  MtShareTaxiIndex tiny(net_, partitioning_, 0.707, /*tmp=*/1.0);
  tiny.ReindexTaxi(t, 0.0);
  // Only partitions reachable within 1 s (i.e., the first) are listed.
  int32_t memberships = 0;
  for (PartitionId p = 0; p < partitioning_.num_partitions(); ++p) {
    memberships += tiny.PartitionContains(p, 2) ? 1 : 0;
  }
  EXPECT_EQ(memberships, 1);
}

TEST_F(TaxiIndexTest, RequestsShapeClustersAndAreRemovable) {
  RideRequest r;
  r.id = 3;
  r.origin = 0;
  r.destination = net_.num_vertices() - 1;
  index_->AddRequest(r);
  EXPECT_EQ(index_->clustering().num_members(), 1);
  MobilityVector probe{net_.coord(r.origin), net_.coord(r.destination)};
  ClusterId c = index_->FindCluster(probe);
  EXPECT_NE(c, kInvalidCluster);
  // No taxis in that cluster yet.
  EXPECT_TRUE(index_->ClusterTaxis(c).empty());
  index_->RemoveRequest(3);
  EXPECT_EQ(index_->clustering().num_members(), 0);
}

TEST_F(TaxiIndexTest, ClusterTaxisFiltersOutRequests) {
  // A busy taxi and a request heading the same way share a cluster; only
  // the taxi surfaces in ClusterTaxis.
  TaxiState t = IdleTaxiAt(4, 0);
  DijkstraSearch search(net_);
  Path path = search.FindPath(0, net_.num_vertices() - 1);
  RideRequest served;
  served.id = 11;
  served.origin = 0;
  served.destination = net_.num_vertices() - 1;
  served.direct_cost = path.cost;
  served.deadline = 10 * path.cost;
  t.schedule = Schedule::WithInsertion(Schedule(), served, 0, 0);
  ApplyPlan(&t, net_, t.schedule, path.vertices, {0.0, path.cost}, 0.0,
            false);
  index_->ReindexTaxi(t, 0.0);

  RideRequest r;
  r.id = 12;
  r.origin = 0;
  r.destination = net_.num_vertices() - 1;
  index_->AddRequest(r);

  MobilityVector probe{net_.coord(0), net_.coord(net_.num_vertices() - 1)};
  ClusterId c = index_->FindCluster(probe);
  ASSERT_NE(c, kInvalidCluster);
  std::vector<TaxiId> taxis = index_->ClusterTaxis(c);
  ASSERT_EQ(taxis.size(), 1u);
  EXPECT_EQ(taxis[0], 4);
}

TEST_F(TaxiIndexTest, MemoryAccounted) {
  TaxiState t = IdleTaxiAt(0, 10);
  index_->ReindexTaxi(t, 0.0);
  EXPECT_GT(index_->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace mtshare
