#include "matching/taxi_index.h"

#include <gtest/gtest.h>

#include "graph/graph_generators.h"
#include "routing/dijkstra.h"
#include "sim/taxi.h"

namespace mtshare {
namespace {

class TaxiIndexTest : public ::testing::Test {
 protected:
  TaxiIndexTest() {
    GridCityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    opt.seed = 17;
    net_ = MakeGridCity(opt);
    partitioning_ = GridPartition(net_, 9);
    index_ = std::make_unique<MtShareTaxiIndex>(net_, partitioning_, 0.707,
                                                3600.0);
  }

  TaxiState IdleTaxiAt(TaxiId id, VertexId v) {
    TaxiState t;
    t.id = id;
    t.capacity = 3;
    t.location = v;
    return t;
  }

  bool InPartitionList(PartitionId p, TaxiId id) {
    return index_->PartitionContains(p, id);
  }

  RoadNetwork net_;
  MapPartitioning partitioning_;
  std::unique_ptr<MtShareTaxiIndex> index_;
};

TEST_F(TaxiIndexTest, IdleTaxiIndexedInItsPartition) {
  TaxiState t = IdleTaxiAt(0, 10);
  index_->ReindexTaxi(t, 0.0);
  EXPECT_TRUE(InPartitionList(partitioning_.PartitionOf(10), 0));
  // Idle: not mobility-clustered.
  EXPECT_EQ(index_->clustering().num_members(), 0);
}

TEST_F(TaxiIndexTest, ReindexMovesMembership) {
  TaxiState t = IdleTaxiAt(0, 10);
  index_->ReindexTaxi(t, 0.0);
  PartitionId before = partitioning_.PartitionOf(10);
  // Move the idle taxi far away.
  VertexId far = net_.num_vertices() - 1;
  t.location = far;
  index_->OnTaxiMoved(t, 5.0);
  PartitionId after = partitioning_.PartitionOf(far);
  if (before != after) {
    EXPECT_FALSE(InPartitionList(before, 0));
  }
  EXPECT_TRUE(InPartitionList(after, 0));
}

TEST_F(TaxiIndexTest, BusyTaxiIndexedAlongRouteWithinHorizon) {
  TaxiState t = IdleTaxiAt(1, 0);
  // Fake a committed route crossing the map with a dropoff far away.
  DijkstraSearch search(net_);
  Path path = search.FindPath(0, net_.num_vertices() - 1);
  ASSERT_TRUE(path.valid);
  RideRequest r;
  r.id = 7;
  r.origin = 0;
  r.destination = net_.num_vertices() - 1;
  r.release_time = 0.0;
  r.direct_cost = path.cost;
  r.deadline = 10 * path.cost;
  t.schedule = Schedule::WithInsertion(Schedule(), r, 0, 0);
  ApplyPlan(&t, net_, t.schedule, path.vertices, {0.0, path.cost}, 0.0, false);
  index_->ReindexTaxi(t, 0.0);

  // Every partition the route crosses within T_mp lists the taxi.
  for (size_t i = 0; i < path.vertices.size(); ++i) {
    if (t.route.time(i) > 3600.0) break;
    EXPECT_TRUE(InPartitionList(partitioning_.PartitionOf(path.vertices[i]),
                                1))
        << "vertex " << path.vertices[i];
  }
  // Busy with a dropoff: mobility-clustered.
  EXPECT_EQ(index_->clustering().num_members(), 1);
}

TEST_F(TaxiIndexTest, HorizonCapsRouteMemberships) {
  TaxiState t = IdleTaxiAt(2, 0);
  DijkstraSearch search(net_);
  Path path = search.FindPath(0, net_.num_vertices() - 1);
  ASSERT_TRUE(path.valid);
  RideRequest r;
  r.id = 9;
  r.origin = 0;
  r.destination = net_.num_vertices() - 1;
  r.deadline = 10 * path.cost;
  r.direct_cost = path.cost;
  t.schedule = Schedule::WithInsertion(Schedule(), r, 0, 0);
  ApplyPlan(&t, net_, t.schedule, path.vertices, {0.0, path.cost}, 0.0, false);

  MtShareTaxiIndex tiny(net_, partitioning_, 0.707, /*tmp=*/1.0);
  tiny.ReindexTaxi(t, 0.0);
  // Only partitions reachable within 1 s (i.e., the first) are listed.
  int32_t memberships = 0;
  for (PartitionId p = 0; p < partitioning_.num_partitions(); ++p) {
    memberships += tiny.PartitionContains(p, 2) ? 1 : 0;
  }
  EXPECT_EQ(memberships, 1);
}

TEST_F(TaxiIndexTest, RequestsShapeClustersAndAreRemovable) {
  RideRequest r;
  r.id = 3;
  r.origin = 0;
  r.destination = net_.num_vertices() - 1;
  index_->AddRequest(r);
  EXPECT_EQ(index_->clustering().num_members(), 1);
  MobilityVector probe{net_.coord(r.origin), net_.coord(r.destination)};
  ClusterId c = index_->FindCluster(probe);
  EXPECT_NE(c, kInvalidCluster);
  // No taxis in that cluster yet.
  EXPECT_TRUE(index_->ClusterTaxis(c).empty());
  index_->RemoveRequest(3);
  EXPECT_EQ(index_->clustering().num_members(), 0);
}

TEST_F(TaxiIndexTest, ClusterTaxisFiltersOutRequests) {
  // A busy taxi and a request heading the same way share a cluster; only
  // the taxi surfaces in ClusterTaxis.
  TaxiState t = IdleTaxiAt(4, 0);
  DijkstraSearch search(net_);
  Path path = search.FindPath(0, net_.num_vertices() - 1);
  RideRequest served;
  served.id = 11;
  served.origin = 0;
  served.destination = net_.num_vertices() - 1;
  served.direct_cost = path.cost;
  served.deadline = 10 * path.cost;
  t.schedule = Schedule::WithInsertion(Schedule(), served, 0, 0);
  ApplyPlan(&t, net_, t.schedule, path.vertices, {0.0, path.cost}, 0.0,
            false);
  index_->ReindexTaxi(t, 0.0);

  RideRequest r;
  r.id = 12;
  r.origin = 0;
  r.destination = net_.num_vertices() - 1;
  index_->AddRequest(r);

  MobilityVector probe{net_.coord(0), net_.coord(net_.num_vertices() - 1)};
  ClusterId c = index_->FindCluster(probe);
  ASSERT_NE(c, kInvalidCluster);
  std::vector<TaxiId> taxis = index_->ClusterTaxis(c);
  ASSERT_EQ(taxis.size(), 1u);
  EXPECT_EQ(taxis[0], 4);
}

TEST_F(TaxiIndexTest, BusyTaxiCrossingPartitionDropsStaleEntry) {
  // Regression: OnTaxiMoved used to early-return for busy taxis, so a taxi
  // that crossed a partition border stayed listed in the partition it left
  // with a past arrival time — candidate search kept surfacing it there
  // for the rest of its trip.
  TaxiState t = IdleTaxiAt(5, 0);
  DijkstraSearch search(net_);
  Path path = search.FindPath(0, net_.num_vertices() - 1);
  ASSERT_TRUE(path.valid);
  RideRequest r;
  r.id = 21;
  r.origin = 0;
  r.destination = net_.num_vertices() - 1;
  r.direct_cost = path.cost;
  r.deadline = 10 * path.cost;
  t.schedule = Schedule::WithInsertion(Schedule(), r, 0, 0);
  ApplyPlan(&t, net_, t.schedule, path.vertices, {0.0, path.cost}, 0.0, false);
  index_->ReindexTaxi(t, 0.0);
  ASSERT_FALSE(t.Idle());

  PartitionId start = partitioning_.PartitionOf(path.vertices[0]);
  ASSERT_TRUE(InPartitionList(start, 5));
  // First route position after which the remaining route never re-enters
  // the start partition.
  size_t cross = path.vertices.size();
  for (size_t i = path.vertices.size(); i-- > 0;) {
    if (partitioning_.PartitionOf(path.vertices[i]) == start) {
      cross = i + 1;
      break;
    }
  }
  ASSERT_LT(cross, path.vertices.size()) << "route never leaves partition";

  // Advance the taxi to the crossing vertex, as the engine would.
  t.location = path.vertices[cross];
  t.location_time = t.route.time(cross);
  t.route_pos = cross;
  index_->OnTaxiMoved(t, t.location_time);

  EXPECT_FALSE(InPartitionList(start, 5)) << "stale entry left behind";
  PartitionId here = partitioning_.PartitionOf(t.location);
  EXPECT_TRUE(InPartitionList(here, 5));
}

TEST_F(TaxiIndexTest, BusyTaxiMoveWithinPartitionKeepsEntryUntouched) {
  TaxiState t = IdleTaxiAt(6, 0);
  DijkstraSearch search(net_);
  Path path = search.FindPath(0, net_.num_vertices() - 1);
  ASSERT_TRUE(path.valid);
  RideRequest r;
  r.id = 22;
  r.origin = 0;
  r.destination = net_.num_vertices() - 1;
  r.direct_cost = path.cost;
  r.deadline = 10 * path.cost;
  t.schedule = Schedule::WithInsertion(Schedule(), r, 0, 0);
  ApplyPlan(&t, net_, t.schedule, path.vertices, {0.0, path.cost}, 0.0, false);
  index_->ReindexTaxi(t, 0.0);

  PartitionId start = partitioning_.PartitionOf(path.vertices[0]);
  // Find a later route vertex still inside the start partition, if any.
  size_t inside = 0;
  for (size_t i = 1; i < path.vertices.size(); ++i) {
    if (partitioning_.PartitionOf(path.vertices[i]) == start) inside = i;
    else break;
  }
  if (inside == 0) GTEST_SKIP() << "route leaves immediately";

  t.location = path.vertices[inside];
  t.location_time = t.route.time(inside);
  t.route_pos = inside;
  index_->OnTaxiMoved(t, t.location_time);

  // Still listed with its ORIGINAL first-arrival time: within-partition
  // moves must not reindex (that is the cheap path the early return keeps).
  bool found = false;
  for (const MtShareTaxiIndex::Arrival& a : index_->PartitionTaxis(start)) {
    if (a.taxi == 6) {
      found = true;
      EXPECT_DOUBLE_EQ(a.time, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TaxiIndexTest, RemovalWithTiedArrivalTimesKeepsOtherTaxis) {
  // The sorted-key removal binary-searches by arrival time and then scans
  // the tie range for the right taxi id; several taxis indexed at the same
  // instant in the same partition exercise exactly that range.
  for (TaxiId id = 0; id < 5; ++id) {
    TaxiState t = IdleTaxiAt(id, 10);
    index_->ReindexTaxi(t, 0.0);
  }
  PartitionId p = partitioning_.PartitionOf(10);
  for (TaxiId id = 0; id < 5; ++id) ASSERT_TRUE(InPartitionList(p, id));

  // Move the middle taxi elsewhere; its tied neighbors must survive.
  TaxiState moved = IdleTaxiAt(2, net_.num_vertices() - 1);
  index_->ReindexTaxi(moved, 3.0);
  EXPECT_FALSE(InPartitionList(p, 2));
  for (TaxiId id : {0, 1, 3, 4}) {
    EXPECT_TRUE(InPartitionList(p, id)) << "taxi " << id;
  }
  EXPECT_TRUE(
      InPartitionList(partitioning_.PartitionOf(net_.num_vertices() - 1), 2));
}

TEST_F(TaxiIndexTest, MemoryAccounted) {
  TaxiState t = IdleTaxiAt(0, 10);
  index_->ReindexTaxi(t, 0.0);
  EXPECT_GT(index_->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace mtshare
