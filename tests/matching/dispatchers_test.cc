#include <gtest/gtest.h>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"
#include "matching/taxi_state.h"

namespace mtshare {
namespace {

// Scheme-level behavioural tests on a mid-size city. The full comparative
// curves live in bench/; here we pin the qualitative properties the paper
// claims for each scheme.
class DispatchersTest : public ::testing::Test {
 protected:
  DispatchersTest() {
    // City must be meaningfully larger than gamma (2.5 km) for the indexing
    // differences between schemes to matter: 30x30 blocks of 200 m ~ 6 km.
    GridCityOptions gopt;
    gopt.rows = 30;
    gopt.cols = 30;
    gopt.spacing_m = 200.0;
    gopt.seed = 23;
    net_ = MakeGridCity(gopt);
    demand_ = std::make_unique<DemandModel>(net_, DemandModelOptions{});
    oracle_ = std::make_unique<DistanceOracle>(net_);

    ScenarioOptions sopt;
    sopt.num_requests = 400;
    sopt.num_historical_trips = 6000;
    sopt.seed = 31;
    scenario_ = MakeScenario(net_, *demand_, *oracle_, sopt);

    SystemConfig cfg;
    cfg.kappa = 30;
    cfg.kt = 8;
    system_ = std::make_unique<MTShareSystem>(
        net_, scenario_.HistoricalOdPairs(), cfg);
  }

  // Runs the fixture scenario through the spec API (the old positional
  // overload is gone).
  Metrics Run(SchemeKind scheme, int32_t taxis) {
    ScenarioSpec spec;
    spec.scheme = scheme;
    spec.requests = &scenario_.requests;
    spec.num_taxis = taxis;
    Result<Metrics> m = system_->RunScenario(spec);
    EXPECT_TRUE(m.ok()) << m.status();
    return m.value();
  }

  RoadNetwork net_;
  std::unique_ptr<DemandModel> demand_;
  std::unique_ptr<DistanceOracle> oracle_;
  Scenario scenario_;
  std::unique_ptr<MTShareSystem> system_;
};

TEST_F(DispatchersTest, TaxiMobilityVectorFromSchedule) {
  TaxiState t;
  t.id = 0;
  t.location = 0;
  EXPECT_DOUBLE_EQ(TaxiMobilityVector(t, net_).Length(), 0.0);

  RideRequest r;
  r.id = 0;
  r.origin = 1;
  r.destination = net_.num_vertices() - 1;
  r.deadline = 1e9;
  r.direct_cost = 100;
  t.schedule = Schedule::WithInsertion(Schedule(), r, 0, 0);
  MobilityVector mv = TaxiMobilityVector(t, net_);
  EXPECT_GT(mv.Length(), 0.0);
  EXPECT_TRUE(mv.destination ==
              net_.coord(net_.num_vertices() - 1));
}

TEST_F(DispatchersTest, MakeFleetPlacesTaxisOnVertices) {
  auto fleet = MakeFleet(net_, 25, 4, 99, 100.0);
  ASSERT_EQ(fleet.size(), 25u);
  for (const TaxiState& t : fleet) {
    EXPECT_GE(t.location, 0);
    EXPECT_LT(t.location, net_.num_vertices());
    EXPECT_EQ(t.capacity, 4);
    EXPECT_DOUBLE_EQ(t.location_time, 100.0);
    EXPECT_TRUE(t.Idle());
  }
}

TEST_F(DispatchersTest, ComparativeServedOrdering) {
  // Paper Figs. 6/10: sharing schemes serve more than No-Sharing and
  // mT-Share serves the most.
  const int32_t taxis = 30;
  Metrics none = Run(SchemeKind::kNoSharing, taxis);
  Metrics tshare = Run(SchemeKind::kTShare, taxis);
  Metrics pgreedy = Run(SchemeKind::kPGreedyDp, taxis);
  Metrics mt = Run(SchemeKind::kMtShare, taxis);

  // T-Share's first-valid greed can sink to No-Sharing levels under light
  // demand (the paper observes the same in Fig. 10); require "similar".
  EXPECT_GE(tshare.ServedRequests(), none.ServedRequests() * 3 / 4);
  EXPECT_GT(pgreedy.ServedRequests(), none.ServedRequests());
  EXPECT_GT(mt.ServedRequests(), none.ServedRequests());
  // mT-Share at least matches the grid baselines on this workload.
  EXPECT_GE(mt.ServedRequests(), tshare.ServedRequests());
}

TEST_F(DispatchersTest, CandidateSetOrdering) {
  // Paper Table III: T-Share's dual-side search examines fewer candidates
  // than pGreedyDP's single-side scan.
  const int32_t taxis = 30;
  Metrics tshare = Run(SchemeKind::kTShare, taxis);
  Metrics pgreedy = Run(SchemeKind::kPGreedyDp, taxis);
  EXPECT_LT(tshare.MeanCandidates(), pgreedy.MeanCandidates());
}

TEST_F(DispatchersTest, AssignedRoutesStartAtTaxiAndVisitEvents) {
  std::vector<TaxiState> fleet = MakeFleet(net_, 20, 3, 5, 0.0);
  auto dispatcher =
      system_->MakeDispatcher(SchemeKind::kMtShare, &fleet);
  int32_t checked = 0;
  for (const RideRequest& r : scenario_.requests) {
    if (r.offline) continue;
    DispatchOutcome outcome = dispatcher->Dispatch(r, r.release_time);
    if (!outcome.assigned) continue;
    const TaxiState& t = fleet[outcome.taxi];
    ASSERT_FALSE(outcome.route.path.vertices.empty());
    EXPECT_EQ(outcome.route.path.front(), t.location);
    // Every scheduled event vertex appears on the route.
    for (const ScheduleEvent& e : outcome.schedule.events()) {
      auto& verts = outcome.route.path.vertices;
      EXPECT_NE(std::find(verts.begin(), verts.end(), e.vertex), verts.end());
    }
    // Arrivals respect deadlines.
    for (size_t i = 0; i < outcome.schedule.size(); ++i) {
      EXPECT_LE(outcome.route.event_arrivals[i],
                outcome.schedule.at(i).deadline + 1e-6);
    }
    if (++checked >= 25) break;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(DispatchersTest, MtShareDetourNeverNegative) {
  std::vector<TaxiState> fleet = MakeFleet(net_, 20, 3, 5, 0.0);
  auto dispatcher = system_->MakeDispatcher(SchemeKind::kMtShare, &fleet);
  for (size_t i = 0; i < 40 && i < scenario_.requests.size(); ++i) {
    const RideRequest& r = scenario_.requests[i];
    if (r.offline) continue;
    DispatchOutcome outcome = dispatcher->Dispatch(r, r.release_time);
    if (outcome.assigned) {
      EXPECT_GE(outcome.detour, -1e-6);
    }
  }
}

TEST_F(DispatchersTest, ProVariantUsesProbabilisticRoutes) {
  Metrics pro = Run(SchemeKind::kMtSharePro, 30);
  // The pro variant must still behave sanely.
  EXPECT_GT(pro.ServedRequests(), 0);
  // Probabilistic routing costs more response time than basic mT-Share.
  Metrics basic = Run(SchemeKind::kMtShare, 30);
  EXPECT_GE(pro.MeanResponseMs(), basic.MeanResponseMs() * 0.5);
}

}  // namespace
}  // namespace mtshare
