#include "spatial/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/random.h"
#include "graph/graph_generators.h"

namespace mtshare {
namespace {

class GridIndexTest : public ::testing::Test {
 protected:
  GridIndexTest() {
    GridCityOptions opt;
    opt.rows = 15;
    opt.cols = 15;
    opt.seed = 3;
    net_ = MakeGridCity(opt);
    index_ = std::make_unique<GridIndex>(net_, 150.0);
  }

  RoadNetwork net_;
  std::unique_ptr<GridIndex> index_;
};

TEST_F(GridIndexTest, NearestMatchesBruteForce) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    Point q{rng.NextUniform(-200, 2000), rng.NextUniform(-200, 2000)};
    VertexId got = index_->NearestVertex(q);
    ASSERT_NE(got, kInvalidVertex);
    double best = std::numeric_limits<double>::infinity();
    VertexId expect = kInvalidVertex;
    for (VertexId v = 0; v < net_.num_vertices(); ++v) {
      double d = DistanceSquared(net_.coord(v), q);
      if (d < best) {
        best = d;
        expect = v;
      }
    }
    EXPECT_DOUBLE_EQ(DistanceSquared(net_.coord(got), q), best)
        << "trial " << trial << " got " << got << " expect " << expect;
  }
}

TEST_F(GridIndexTest, RadiusMatchesBruteForce) {
  Rng rng(6);
  for (int trial = 0; trial < 25; ++trial) {
    Point q{rng.NextUniform(0, 1800), rng.NextUniform(0, 1800)};
    double radius = rng.NextUniform(50, 600);
    auto got = index_->VerticesInRadius(q, radius);
    std::sort(got.begin(), got.end());
    std::vector<VertexId> expect;
    for (VertexId v = 0; v < net_.num_vertices(); ++v) {
      if (Distance(net_.coord(v), q) <= radius) expect.push_back(v);
    }
    EXPECT_EQ(got, expect) << "trial " << trial;
  }
}

TEST_F(GridIndexTest, CellsInRadiusCoverQueryDisk) {
  Point q{900, 900};
  auto cells = index_->CellsInRadius(q, 400.0);
  // Every vertex within the radius must live in one of the returned cells.
  auto vertices = index_->VerticesInRadius(q, 400.0);
  for (VertexId v : vertices) {
    int32_t cell = index_->CellOf(net_.coord(v));
    EXPECT_NE(std::find(cells.begin(), cells.end(), cell), cells.end());
  }
}

TEST_F(GridIndexTest, MemoryAccounted) { EXPECT_GT(index_->MemoryBytes(), 0u); }

TEST(DynamicGridIndexTest, UpdateMoveRemove) {
  BoundingBox box{{0, 0}, {1000, 1000}};
  DynamicGridIndex idx(box, 100.0);
  idx.Update(1, {50, 50});
  idx.Update(2, {500, 500});
  EXPECT_TRUE(idx.Contains(1));
  EXPECT_EQ(idx.size(), 2);

  auto near_origin = idx.ObjectsInRadius({0, 0}, 120.0);
  ASSERT_EQ(near_origin.size(), 1u);
  EXPECT_EQ(near_origin[0], 1);

  idx.Update(1, {900, 900});  // move across cells
  EXPECT_TRUE(idx.ObjectsInRadius({0, 0}, 120.0).empty());
  auto near_corner = idx.ObjectsInRadius({1000, 1000}, 200.0);
  ASSERT_EQ(near_corner.size(), 1u);
  EXPECT_EQ(near_corner[0], 1);

  idx.Remove(1);
  EXPECT_FALSE(idx.Contains(1));
  EXPECT_EQ(idx.size(), 1);
  idx.Remove(1);  // double remove is a no-op
  EXPECT_EQ(idx.size(), 1);
}

TEST(DynamicGridIndexTest, UpdateWithinSameCellKeepsObjectFindable) {
  BoundingBox box{{0, 0}, {1000, 1000}};
  DynamicGridIndex idx(box, 100.0);
  idx.Update(7, {10, 10});
  idx.Update(7, {20, 20});  // same cell
  auto got = idx.ObjectsInRadius({15, 15}, 30.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 7);
  // Exactly once (no duplicate bucket entries).
  got = idx.ObjectsInRadius({0, 0}, 2000.0);
  EXPECT_EQ(got.size(), 1u);
}

TEST(DynamicGridIndexTest, NearestObjectsOrdering) {
  BoundingBox box{{0, 0}, {1000, 1000}};
  DynamicGridIndex idx(box, 50.0);
  idx.Update(10, {100, 0});
  idx.Update(20, {300, 0});
  idx.Update(30, {600, 0});
  auto nearest = idx.NearestObjects({0, 0}, 2);
  ASSERT_EQ(nearest.size(), 2u);
  EXPECT_EQ(nearest[0], 10);
  EXPECT_EQ(nearest[1], 20);
}

TEST(DynamicGridIndexTest, NearestObjectsMoreThanAvailable) {
  BoundingBox box{{0, 0}, {100, 100}};
  DynamicGridIndex idx(box, 10.0);
  idx.Update(1, {5, 5});
  auto nearest = idx.NearestObjects({50, 50}, 5);
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0], 1);
}

TEST(DynamicGridIndexTest, PointsOutsideBoundsClampSafely) {
  BoundingBox box{{0, 0}, {100, 100}};
  DynamicGridIndex idx(box, 10.0);
  idx.Update(1, {-50, 500});  // outside declared bounds
  EXPECT_TRUE(idx.Contains(1));
  auto found = idx.ObjectsInRadius({-50, 500}, 1.0);
  ASSERT_EQ(found.size(), 1u);
}

}  // namespace
}  // namespace mtshare
