#include "spatial/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/random.h"

namespace mtshare {
namespace {

std::vector<Point> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.NextUniform(0, 5000), rng.NextUniform(0, 5000)});
  }
  return pts;
}

TEST(KdTreeTest, EmptyTree) {
  KdTree tree({});
  EXPECT_EQ(tree.Nearest({0, 0}), -1);
  EXPECT_TRUE(tree.RadiusSearch({0, 0}, 100).empty());
}

TEST(KdTreeTest, SinglePoint) {
  KdTree tree({Point{10, 20}});
  EXPECT_EQ(tree.Nearest({0, 0}), 0);
  EXPECT_EQ(tree.RadiusSearch({10, 20}, 1).size(), 1u);
}

TEST(KdTreeTest, NearestMatchesBruteForce) {
  auto pts = RandomPoints(400, 21);
  KdTree tree(pts);
  Rng rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    Point q{rng.NextUniform(-500, 5500), rng.NextUniform(-500, 5500)};
    int32_t got = tree.Nearest(q);
    double best = std::numeric_limits<double>::infinity();
    for (const Point& p : pts) best = std::min(best, DistanceSquared(p, q));
    EXPECT_DOUBLE_EQ(DistanceSquared(pts[got], q), best);
  }
}

TEST(KdTreeTest, RadiusMatchesBruteForce) {
  auto pts = RandomPoints(300, 31);
  KdTree tree(pts);
  Rng rng(32);
  for (int trial = 0; trial < 50; ++trial) {
    Point q{rng.NextUniform(0, 5000), rng.NextUniform(0, 5000)};
    double r = rng.NextUniform(100, 1500);
    auto got = tree.RadiusSearch(q, r);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> expect;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (Distance(pts[i], q) <= r) expect.push_back(static_cast<int32_t>(i));
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(KdTreeTest, DuplicatePointsAllFound) {
  std::vector<Point> pts = {{5, 5}, {5, 5}, {5, 5}, {100, 100}};
  KdTree tree(pts);
  auto got = tree.RadiusSearch({5, 5}, 0.5);
  EXPECT_EQ(got.size(), 3u);
}

TEST(KdTreeTest, CollinearPointsDegenerateSplits) {
  std::vector<Point> pts;
  for (int i = 0; i < 64; ++i) pts.push_back({double(i), 0.0});
  KdTree tree(pts);
  EXPECT_EQ(tree.Nearest({31.4, 10.0}), 31);
  EXPECT_EQ(tree.RadiusSearch({10, 0}, 2.5).size(), 5u);
}

}  // namespace
}  // namespace mtshare
