#include "demand/trip_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/graph_generators.h"

namespace mtshare {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class TripIoTest : public ::testing::Test {
 protected:
  TripIoTest() {
    GridCityOptions opt;
    opt.rows = 10;
    opt.cols = 10;
    opt.seed = 3;
    net_ = MakeGridCity(opt);
    snap_ = std::make_unique<GridIndex>(net_, 150.0);
  }

  RoadNetwork net_;
  std::unique_ptr<GridIndex> snap_;
};

TEST_F(TripIoTest, RoundTripThroughGaiaCsv) {
  // Synthesize trips on vertices, save, reload: endpoints must snap back
  // to the same vertices (save writes the exact vertex coordinates).
  std::vector<Trip> trips = {{100.0, 0, 57}, {160.0, 12, 80}, {40.0, 33, 5}};
  std::string path = TempPath("trips.csv");
  ASSERT_TRUE(SaveTripCsv(path, trips, net_).ok());

  TripCsvOptions opt;
  opt.rebase_to = -1.0;  // keep raw timestamps
  Result<TripCsvResult> r = LoadTripCsv(path, net_, *snap_, opt);
  ASSERT_TRUE(r.ok()) << r.status();
  const TripCsvResult& res = r.value();
  EXPECT_EQ(res.parsed_lines, 3);
  ASSERT_EQ(res.trips.size(), 3u);
  // Sorted by release time: 40, 100, 160.
  EXPECT_EQ(res.trips[0].origin, 33);
  EXPECT_EQ(res.trips[0].destination, 5);
  EXPECT_DOUBLE_EQ(res.trips[0].release_time, 40.0);
  EXPECT_EQ(res.trips[1].origin, 0);
  EXPECT_EQ(res.trips[2].origin, 12);
}

TEST_F(TripIoTest, RebaseShiftsEarliestTripToZero) {
  std::vector<Trip> trips = {{1000.0, 0, 57}, {1200.0, 12, 80}};
  std::string path = TempPath("rebase.csv");
  ASSERT_TRUE(SaveTripCsv(path, trips, net_).ok());
  TripCsvOptions opt;
  opt.rebase_to = 500.0;
  Result<TripCsvResult> r = LoadTripCsv(path, net_, *snap_, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().trips[0].release_time, 500.0);
  EXPECT_DOUBLE_EQ(r.value().trips[1].release_time, 700.0);
}

TEST_F(TripIoTest, OffMapEndpointsDropped) {
  std::string path = TempPath("offmap.csv");
  {
    std::ofstream out(path);
    // Pickup ~1 degree (~100 km) away from the projection origin.
    out << "0,1,10,105.2,31.6,104.0661,30.6576\n";
  }
  TripCsvOptions opt;
  Result<TripCsvResult> r = LoadTripCsv(path, net_, *snap_, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().dropped_snap, 1);
  EXPECT_TRUE(r.value().trips.empty());
}

TEST_F(TripIoTest, DegenerateTripsDropped) {
  std::vector<Trip> trips = {{10.0, 7, 7}};
  // Save writes it; load snaps both endpoints to vertex 7 and drops it.
  std::string path = TempPath("degenerate.csv");
  ASSERT_TRUE(SaveTripCsv(path, trips, net_).ok());
  Result<TripCsvResult> r = LoadTripCsv(path, net_, *snap_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().dropped_degenerate, 1);
}

TEST_F(TripIoTest, MalformedLineReportsLineNumber) {
  std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "# comment\n0,1,10,104.07\n";
  }
  Result<TripCsvResult> r = LoadTripCsv(path, net_, *snap_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(":2:"), std::string::npos);
}

TEST_F(TripIoTest, NonNumericFieldRejected) {
  std::string path = TempPath("nan.csv");
  {
    std::ofstream out(path);
    out << "0,1,ten,104.07,30.66,104.08,30.67\n";
  }
  EXPECT_FALSE(LoadTripCsv(path, net_, *snap_).ok());
}

TEST_F(TripIoTest, MissingFileIsIoError) {
  Result<TripCsvResult> r = LoadTripCsv("/no/such/file.csv", net_, *snap_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(TripIoTest, LoadedTripsUsableAsHistory) {
  // End-to-end: save a synthetic day, reload, feed the transition model.
  std::vector<Trip> trips;
  for (int i = 0; i < 50; ++i) {
    trips.push_back(Trip{double(i * 60), VertexId(i % net_.num_vertices()),
                         VertexId((i * 7 + 13) % net_.num_vertices())});
  }
  std::string path = TempPath("history.csv");
  ASSERT_TRUE(SaveTripCsv(path, trips, net_).ok());
  Result<TripCsvResult> r = LoadTripCsv(path, net_, *snap_);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().trips.size(), 40u);  // a few degenerate drops allowed
}

}  // namespace
}  // namespace mtshare
