#include "demand/demand_model.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_generators.h"

namespace mtshare {
namespace {

RoadNetwork TestNet() {
  GridCityOptions opt;
  opt.rows = 20;
  opt.cols = 20;
  opt.seed = 31;
  return MakeGridCity(opt);
}

TEST(DiurnalWeightTest, WorkdayPeaksAtMorningPeakHour) {
  // The paper's peak scenario is 8:00-9:00 of a workday with the most
  // hourly requests; our profile must agree.
  double peak = DemandModel::DiurnalWeight(DayType::kWorkday, 8);
  for (int h = 0; h < 24; ++h) {
    EXPECT_LE(DemandModel::DiurnalWeight(DayType::kWorkday, h), peak)
        << "hour " << h;
  }
}

TEST(DiurnalWeightTest, WeekendFlatterThanWorkday) {
  auto spread = [](DayType d) {
    double lo = 1e9;
    double hi = 0;
    for (int h = 9; h < 21; ++h) {  // core daytime hours
      double w = DemandModel::DiurnalWeight(d, h);
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
    return hi / lo;
  };
  EXPECT_LT(spread(DayType::kWeekend), spread(DayType::kWorkday));
}

TEST(FlowWeightTest, MorningCommuteAsymmetry) {
  double res_to_bus =
      FlowWeight(HotspotType::kResidential, HotspotType::kBusiness, 8);
  double bus_to_res =
      FlowWeight(HotspotType::kBusiness, HotspotType::kResidential, 8);
  EXPECT_GT(res_to_bus, bus_to_res);
}

TEST(FlowWeightTest, EveningReversesCommute) {
  double res_to_bus =
      FlowWeight(HotspotType::kResidential, HotspotType::kBusiness, 18);
  double bus_to_res =
      FlowWeight(HotspotType::kBusiness, HotspotType::kResidential, 18);
  EXPECT_GT(bus_to_res, res_to_bus);
}

TEST(DemandModelTest, TripsHaveValidEndpoints) {
  RoadNetwork net = TestNet();
  DemandModel demand(net, DemandModelOptions{});
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Trip t = demand.SampleTrip(8 * 3600.0, rng);
    ASSERT_GE(t.origin, 0);
    ASSERT_LT(t.origin, net.num_vertices());
    ASSERT_GE(t.destination, 0);
    ASSERT_LT(t.destination, net.num_vertices());
    EXPECT_NE(t.origin, t.destination);
  }
}

TEST(DemandModelTest, MostTripsRespectMinLength) {
  RoadNetwork net = TestNet();
  DemandModelOptions opt;
  opt.min_trip_m = 800.0;
  DemandModel demand(net, opt);
  Rng rng(7);
  int violations = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    Trip t = demand.SampleTrip(12 * 3600.0, rng);
    if (Distance(net.coord(t.origin), net.coord(t.destination)) <
        opt.min_trip_m / 2) {
      ++violations;
    }
  }
  EXPECT_LT(violations, n / 20);  // resampling keeps these rare
}

TEST(DemandModelTest, GenerateTripsSortedAndInWindow) {
  RoadNetwork net = TestNet();
  DemandModel demand(net, DemandModelOptions{});
  Rng rng(9);
  auto trips = demand.GenerateTrips(8 * 3600.0, 9 * 3600.0, 150, rng);
  ASSERT_EQ(trips.size(), 150u);
  EXPECT_TRUE(std::is_sorted(trips.begin(), trips.end(),
                             [](const Trip& a, const Trip& b) {
                               return a.release_time < b.release_time;
                             }));
  for (const Trip& t : trips) {
    EXPECT_GE(t.release_time, 8 * 3600.0);
    EXPECT_LT(t.release_time, 9 * 3600.0);
  }
}

TEST(DemandModelTest, FullDayFollowsDiurnalProfile) {
  RoadNetwork net = TestNet();
  DemandModel demand(net, DemandModelOptions{});
  Rng rng(11);
  auto trips = demand.GenerateTrips(0.0, 86400.0, 4000, rng);
  std::vector<int> per_hour(24, 0);
  for (const Trip& t : trips) {
    ++per_hour[int(t.release_time / 3600.0) % 24];
  }
  // Morning peak must dominate the pre-dawn trough clearly.
  EXPECT_GT(per_hour[8], 4 * per_hour[3]);
}

TEST(DemandModelTest, MorningFlowIsDirectionallyBiased) {
  // During the morning peak, trips into business hotspots should outnumber
  // trips out of them — the asymmetry the partitioner mines.
  RoadNetwork net = TestNet();
  DemandModelOptions opt;
  opt.uniform_fraction = 0.0;
  DemandModel demand(net, opt);
  Rng rng(13);
  const auto& centers = demand.hotspot_centers();
  const auto& types = demand.hotspot_types();
  auto nearest_hotspot = [&](VertexId v) {
    size_t best = 0;
    for (size_t h = 1; h < centers.size(); ++h) {
      if (DistanceSquared(net.coord(v), centers[h]) <
          DistanceSquared(net.coord(v), centers[best])) {
        best = h;
      }
    }
    return best;
  };
  int into_business = 0;
  int out_of_business = 0;
  for (int i = 0; i < 600; ++i) {
    Trip t = demand.SampleTrip(8 * 3600.0, rng);
    if (types[nearest_hotspot(t.destination)] == HotspotType::kBusiness) {
      ++into_business;
    }
    if (types[nearest_hotspot(t.origin)] == HotspotType::kBusiness) {
      ++out_of_business;
    }
  }
  EXPECT_GT(into_business, out_of_business);
}

TEST(DemandModelTest, DeterministicGivenSeeds) {
  RoadNetwork net = TestNet();
  DemandModel demand(net, DemandModelOptions{});
  Rng rng_a(15);
  Rng rng_b(15);
  auto a = demand.GenerateTrips(0, 3600, 50, rng_a);
  auto b = demand.GenerateTrips(0, 3600, 50, rng_b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].origin, b[i].origin);
    EXPECT_EQ(a[i].destination, b[i].destination);
    EXPECT_DOUBLE_EQ(a[i].release_time, b[i].release_time);
  }
}

}  // namespace
}  // namespace mtshare
