#include "demand/request_generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_generators.h"

namespace mtshare {
namespace {

class RequestGeneratorTest : public ::testing::Test {
 protected:
  RequestGeneratorTest() {
    GridCityOptions gopt;
    gopt.rows = 14;
    gopt.cols = 14;
    gopt.seed = 37;
    net_ = MakeGridCity(gopt);
    oracle_ = std::make_unique<DistanceOracle>(net_);
    demand_ = std::make_unique<DemandModel>(net_, DemandModelOptions{});
  }

  Scenario Make(ScenarioOptions opt) {
    return MakeScenario(net_, *demand_, *oracle_, opt);
  }

  RoadNetwork net_;
  std::unique_ptr<DistanceOracle> oracle_;
  std::unique_ptr<DemandModel> demand_;
};

TEST_F(RequestGeneratorTest, RequestsSortedWithUniqueIds) {
  ScenarioOptions opt;
  opt.num_requests = 200;
  opt.num_historical_trips = 500;
  Scenario s = Make(opt);
  EXPECT_GE(s.requests.size(), 190u);  // a few drops allowed
  EXPECT_TRUE(std::is_sorted(s.requests.begin(), s.requests.end(),
                             [](const RideRequest& a, const RideRequest& b) {
                               return a.release_time < b.release_time;
                             }));
  for (size_t i = 0; i < s.requests.size(); ++i) {
    EXPECT_EQ(s.requests[i].id, RequestId(i));
  }
}

TEST_F(RequestGeneratorTest, DeadlineFollowsRho) {
  ScenarioOptions opt;
  opt.num_requests = 100;
  opt.num_historical_trips = 100;
  opt.rho = 1.5;
  Scenario s = Make(opt);
  for (const RideRequest& r : s.requests) {
    EXPECT_NEAR(r.deadline, r.release_time + 1.5 * r.direct_cost, 1e-9);
    EXPECT_GT(r.direct_cost, 0.0);
    EXPECT_LT(r.direct_cost, kInfiniteCost);
  }
}

TEST_F(RequestGeneratorTest, WaitBudgetConsistent) {
  ScenarioOptions opt;
  opt.num_requests = 50;
  opt.num_historical_trips = 100;
  opt.rho = 1.3;
  Scenario s = Make(opt);
  for (const RideRequest& r : s.requests) {
    EXPECT_NEAR(r.WaitBudget(), 0.3 * r.direct_cost, 1e-9);
    EXPECT_NEAR(r.PickupDeadline(), r.release_time + 0.3 * r.direct_cost,
                1e-9);
  }
}

TEST_F(RequestGeneratorTest, OfflineFractionApproximatelyHonored) {
  ScenarioOptions opt;
  opt.num_requests = 600;
  opt.num_historical_trips = 100;
  opt.offline_fraction = 1.0 / 3.0;
  Scenario s = Make(opt);
  double frac = double(s.CountOffline()) / s.requests.size();
  EXPECT_NEAR(frac, 1.0 / 3.0, 0.06);
}

TEST_F(RequestGeneratorTest, ZeroOfflineFraction) {
  ScenarioOptions opt;
  opt.num_requests = 100;
  opt.num_historical_trips = 50;
  opt.offline_fraction = 0.0;
  Scenario s = Make(opt);
  EXPECT_EQ(s.CountOffline(), 0);
}

TEST_F(RequestGeneratorTest, PartySizesWithinBounds) {
  ScenarioOptions opt;
  opt.num_requests = 300;
  opt.num_historical_trips = 50;
  opt.multi_rider_fraction = 0.5;
  opt.max_party = 3;
  Scenario s = Make(opt);
  bool saw_multi = false;
  for (const RideRequest& r : s.requests) {
    EXPECT_GE(r.passengers, 1);
    EXPECT_LE(r.passengers, 3);
    saw_multi |= r.passengers > 1;
  }
  EXPECT_TRUE(saw_multi);
}

TEST_F(RequestGeneratorTest, HistoricalPairsMatchTrips) {
  ScenarioOptions opt;
  opt.num_requests = 10;
  opt.num_historical_trips = 120;
  Scenario s = Make(opt);
  EXPECT_EQ(s.historical_trips.size(), 120u);
  auto pairs = s.HistoricalOdPairs();
  ASSERT_EQ(pairs.size(), 120u);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].first, s.historical_trips[i].origin);
    EXPECT_EQ(pairs[i].second, s.historical_trips[i].destination);
  }
}

TEST_F(RequestGeneratorTest, DeterministicForSeed) {
  ScenarioOptions opt;
  opt.num_requests = 80;
  opt.num_historical_trips = 80;
  opt.seed = 77;
  Scenario a = Make(opt);
  Scenario b = Make(opt);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].origin, b.requests[i].origin);
    EXPECT_EQ(a.requests[i].offline, b.requests[i].offline);
  }
}

}  // namespace
}  // namespace mtshare
