// Property tests: global invariants that must hold for every scheme on any
// workload — deadline compliance, causal ordering, odometer consistency,
// and money conservation. Parameterized over scheme x seed.
#include <gtest/gtest.h>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"
#include "matching/taxi_state.h"
#include "sim/engine.h"

namespace mtshare {
namespace {

struct PropertyCase {
  SchemeKind scheme;
  uint64_t seed;
};

class EnginePropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(EnginePropertyTest, GlobalInvariantsHold) {
  const PropertyCase& param = GetParam();
  GridCityOptions gopt;
  gopt.rows = 16;
  gopt.cols = 16;
  gopt.seed = param.seed;
  RoadNetwork net = MakeGridCity(gopt);
  DemandModelOptions dopt;
  dopt.seed = param.seed + 1;
  DemandModel demand(net, dopt);
  DistanceOracle oracle(net);

  ScenarioOptions sopt;
  sopt.num_requests = 180;
  sopt.num_historical_trips = 2500;
  sopt.offline_fraction = 0.25;
  sopt.seed = param.seed + 2;
  Scenario scenario = MakeScenario(net, demand, oracle, sopt);

  SystemConfig cfg;
  cfg.kappa = 20;
  cfg.kt = 5;
  cfg.seed = param.seed + 3;
  MTShareSystem system(net, scenario.HistoricalOdPairs(), cfg);

  // Run through a hand-built engine so the fleet stays inspectable.
  auto fleet = MakeFleet(net, 24, cfg.taxi_capacity, param.seed + 4,
                         scenario.requests.empty()
                             ? 0.0
                             : scenario.requests.front().release_time);
  auto dispatcher = system.MakeDispatcher(param.scheme, &fleet);
  EngineOptions eopts;
  eopts.payment = cfg.payment;
  SimulationEngine engine(net, dispatcher.get(), &fleet, eopts);
  Metrics m = engine.Run(scenario.requests);

  // --- per-request invariants ---
  double total_shared_fares = 0.0;
  for (const RequestRecord& rec : m.records()) {
    const RideRequest& r = scenario.requests[rec.id];
    if (!rec.completed) continue;
    // The paper's time constraint: delivery before the deadline, always.
    EXPECT_LE(rec.dropoff_time, r.deadline + 1e-6)
        << SchemeName(param.scheme) << " request " << rec.id;
    // Pickup before its own deadline keeps waiting within the budget.
    EXPECT_LE(rec.pickup_time, r.PickupDeadline() + 1e-6);
    // Causality.
    EXPECT_GE(rec.pickup_time, r.release_time - 1e-6);
    EXPECT_GE(rec.dropoff_time, rec.pickup_time - 1e-6);
    // Riding at least as long as the direct trip (taxis cannot teleport).
    EXPECT_GE(rec.dropoff_time - rec.pickup_time, r.direct_cost - 1e-6);
    // No-loss payment guarantee.
    EXPECT_LE(rec.shared_fare, rec.regular_fare + 1e-9);
    EXPECT_GE(rec.shared_fare, 0.0);
    total_shared_fares += rec.shared_fare;
  }

  // --- fleet invariants ---
  double fleet_income = 0.0;
  for (const TaxiState& t : fleet) {
    EXPECT_GE(t.driven_meters, t.occupied_meters - 1e-6) << "taxi " << t.id;
    EXPECT_GE(t.onboard, 0);
    EXPECT_LE(t.onboard, t.capacity);
    fleet_income += t.income;
  }
  // Money conservation: drivers collect exactly what passengers paid.
  EXPECT_NEAR(fleet_income, total_shared_fares, 1e-6)
      << SchemeName(param.scheme);

  // --- aggregate sanity ---
  EXPECT_LE(m.ServedRequests(), m.TotalRequests());
  EXPECT_EQ(m.ServedRequests(), m.ServedOnline() + m.ServedOffline());
  if (param.scheme == SchemeKind::kNoSharing) {
    EXPECT_EQ(m.ServedOffline(), 0);
  }
}

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string name = SchemeName(info.param.scheme);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, EnginePropertyTest,
    ::testing::Values(PropertyCase{SchemeKind::kNoSharing, 1},
                      PropertyCase{SchemeKind::kTShare, 1},
                      PropertyCase{SchemeKind::kPGreedyDp, 1},
                      PropertyCase{SchemeKind::kMtShare, 1},
                      PropertyCase{SchemeKind::kMtSharePro, 1},
                      PropertyCase{SchemeKind::kTShare, 2},
                      PropertyCase{SchemeKind::kMtShare, 2},
                      PropertyCase{SchemeKind::kMtSharePro, 2},
                      PropertyCase{SchemeKind::kMtShare, 3},
                      PropertyCase{SchemeKind::kPGreedyDp, 3}),
    CaseName);

}  // namespace
}  // namespace mtshare
