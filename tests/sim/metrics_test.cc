#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace mtshare {
namespace {

RideRequest MakeRequest(RequestId id, Seconds release, Seconds direct,
                        bool offline = false) {
  RideRequest r;
  r.id = id;
  r.release_time = release;
  r.direct_cost = direct;
  r.deadline = release + 1.3 * direct;
  r.offline = offline;
  return r;
}

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() {
    // Three requests: one served online, one served offline, one rejected.
    metrics_.Register(MakeRequest(0, 0.0, 600.0));
    metrics_.Register(MakeRequest(1, 10.0, 300.0, /*offline=*/true));
    metrics_.Register(MakeRequest(2, 20.0, 450.0));

    RequestRecord& a = metrics_.record(0);
    a.assigned = true;
    a.completed = true;
    a.pickup_time = 120.0;  // waited 2 min
    a.dropoff_time = 120.0 + 600.0 + 60.0;  // 1 min detour
    a.response_ms = 0.4;
    a.candidates = 10;
    a.regular_fare = 20.0;
    a.shared_fare = 16.0;

    RequestRecord& b = metrics_.record(1);
    b.assigned = true;
    b.completed = true;
    b.pickup_time = 70.0;  // waited 1 min
    b.dropoff_time = 70.0 + 300.0;  // no detour
    b.regular_fare = 10.0;
    b.shared_fare = 10.0;

    RequestRecord& c = metrics_.record(2);
    c.response_ms = 0.2;
    c.candidates = 4;
  }

  Metrics metrics_;
};

TEST_F(MetricsTest, ServedCounts) {
  EXPECT_EQ(metrics_.TotalRequests(), 3);
  EXPECT_EQ(metrics_.ServedRequests(), 2);
  EXPECT_EQ(metrics_.ServedOnline(), 1);
  EXPECT_EQ(metrics_.ServedOffline(), 1);
}

TEST_F(MetricsTest, ResponseOverOnlineRequestsOnly) {
  // Online requests 0 and 2 (offline request 1's encounter is excluded).
  EXPECT_DOUBLE_EQ(metrics_.MeanResponseMs(), (0.4 + 0.2) / 2);
}

TEST_F(MetricsTest, WaitAndDetourOverServedOnly) {
  EXPECT_DOUBLE_EQ(metrics_.MeanWaitingMinutes(), (2.0 + 1.0) / 2);
  EXPECT_DOUBLE_EQ(metrics_.MeanDetourMinutes(), (1.0 + 0.0) / 2);
}

TEST_F(MetricsTest, CandidatesOverOnlineRequests) {
  EXPECT_DOUBLE_EQ(metrics_.MeanCandidates(), (10 + 4) / 2.0);
}

TEST_F(MetricsTest, FareAggregates) {
  EXPECT_DOUBLE_EQ(metrics_.TotalRegularFares(), 30.0);
  EXPECT_DOUBLE_EQ(metrics_.TotalSharedFares(), 26.0);
  // Mean of per-request savings: (0.2 + 0.0) / 2.
  EXPECT_DOUBLE_EQ(metrics_.MeanFareSaving(), 0.1);
}

TEST(MetricsEmptyTest, EmptyAggregatesAreZero) {
  Metrics m;
  EXPECT_EQ(m.TotalRequests(), 0);
  EXPECT_DOUBLE_EQ(m.MeanResponseMs(), 0.0);
  EXPECT_DOUBLE_EQ(m.MeanWaitingMinutes(), 0.0);
  EXPECT_DOUBLE_EQ(m.MeanFareSaving(), 0.0);
}

}  // namespace
}  // namespace mtshare
