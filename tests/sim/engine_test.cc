#include "sim/engine.h"

#include <gtest/gtest.h>

#include "matching/no_sharing.h"
#include "matching/t_share.h"
#include "sim/taxi.h"

namespace mtshare {
namespace {

// Line city: vertices 0..9 on a row, 100 m apart, 10 m/s -> 10 s per hop.
RoadNetwork LineCity() {
  RoadNetwork::Builder b(10.0);
  for (int i = 0; i < 10; ++i) b.AddVertex({i * 100.0, 0.0});
  for (int i = 0; i + 1 < 10; ++i) b.AddBidirectionalEdge(i, i + 1, 100.0);
  return b.Build();
}

RideRequest MakeRequest(RequestId id, VertexId o, VertexId d, Seconds t,
                        Seconds direct, double rho, bool offline = false) {
  RideRequest r;
  r.id = id;
  r.origin = o;
  r.destination = d;
  r.release_time = t;
  r.direct_cost = direct;
  r.deadline = t + rho * direct;
  r.offline = offline;
  return r;
}

class EngineLineTest : public ::testing::Test {
 protected:
  EngineLineTest() : net_(LineCity()), oracle_(net_) {}

  Metrics RunWith(Dispatcher* d, std::vector<TaxiState>* fleet,
                  const std::vector<RideRequest>& requests,
                  bool serve_offline = true) {
    EngineOptions opts;
    opts.serve_offline = serve_offline;
    SimulationEngine engine(net_, d, fleet, opts);
    return engine.Run(requests);
  }

  RoadNetwork net_;
  DistanceOracle oracle_;
  MatchingConfig config_;
};

TEST_F(EngineLineTest, SingleRequestExactTimings) {
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 3;
  fleet[0].location = 0;
  NoSharingDispatcher dispatcher(net_, &oracle_, &fleet, config_);

  // o=2 (20 s away), d=5 (30 s ride), released at t=0, rho=2.
  std::vector<RideRequest> reqs = {MakeRequest(0, 2, 5, 0.0, 30.0, 2.0)};
  Metrics m = RunWith(&dispatcher, &fleet, reqs);

  EXPECT_EQ(m.ServedRequests(), 1);
  const RequestRecord& rec = m.records()[0];
  EXPECT_TRUE(rec.completed);
  EXPECT_DOUBLE_EQ(rec.pickup_time, 20.0);
  EXPECT_DOUBLE_EQ(rec.dropoff_time, 50.0);
  EXPECT_DOUBLE_EQ(m.MeanWaitingMinutes(), 20.0 / 60.0);
  EXPECT_DOUBLE_EQ(m.MeanDetourMinutes(), 0.0);
  // Taxi ended at the dropoff vertex, idle.
  EXPECT_EQ(fleet[0].location, 5);
  EXPECT_TRUE(fleet[0].Idle());
  // Odometer: 20 m approach is empty; 300 m occupied.
  EXPECT_DOUBLE_EQ(fleet[0].driven_meters, 500.0);
  EXPECT_DOUBLE_EQ(fleet[0].occupied_meters, 300.0);
}

TEST_F(EngineLineTest, UnreachableDeadlineGoesUnserved) {
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 3;
  fleet[0].location = 9;  // 70 s from origin 2
  NoSharingDispatcher dispatcher(net_, &oracle_, &fleet, config_);
  // Pickup deadline = 0 + 1.5*30 - 30 = 15 s: unreachable.
  std::vector<RideRequest> reqs = {MakeRequest(0, 2, 5, 0.0, 30.0, 1.5)};
  Metrics m = RunWith(&dispatcher, &fleet, reqs);
  EXPECT_EQ(m.ServedRequests(), 0);
  EXPECT_FALSE(m.records()[0].assigned);
  EXPECT_TRUE(fleet[0].Idle());
}

TEST_F(EngineLineTest, SharedRideTimingsAndFares) {
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 3;
  fleet[0].location = 0;
  TShareDispatcher dispatcher(net_, &oracle_, &fleet, config_);

  // r0: 1 -> 8 released t=0 (direct 70 s), generous rho.
  // r1: 2 -> 7 released t=5 (direct 50 s): perfectly en-route.
  std::vector<RideRequest> reqs = {MakeRequest(0, 1, 8, 0.0, 70.0, 2.0),
                                   MakeRequest(1, 2, 7, 5.0, 50.0, 2.0)};
  Metrics m = RunWith(&dispatcher, &fleet, reqs);
  ASSERT_EQ(m.ServedRequests(), 2);
  const RequestRecord& r0 = m.records()[0];
  const RequestRecord& r1 = m.records()[1];
  // r1 rides inside r0's trip: pickup after r0's, dropoff before r0's.
  EXPECT_GT(r1.pickup_time, r0.pickup_time);
  EXPECT_LT(r1.dropoff_time, r0.dropoff_time);
  // Shared episode: both paid less than regular (positive benefit).
  EXPECT_LE(r0.shared_fare, r0.regular_fare);
  EXPECT_LE(r1.shared_fare, r1.regular_fare);
  EXPECT_GT(r0.regular_fare, 0.0);
  // Driver collected exactly what passengers paid (conservation).
  EXPECT_NEAR(fleet[0].income, r0.shared_fare + r1.shared_fare, 1e-9);
}

TEST_F(EngineLineTest, OfflineRequestServedOnEncounter) {
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 3;
  fleet[0].location = 0;
  TShareDispatcher dispatcher(net_, &oracle_, &fleet, config_);

  // Online trip 0 -> 9 drives past vertex 4 where an offline rider waits.
  std::vector<RideRequest> reqs = {
      MakeRequest(0, 0, 9, 0.0, 90.0, 2.0),
      MakeRequest(1, 4, 8, 10.0, 40.0, 2.5, /*offline=*/true)};
  Metrics m = RunWith(&dispatcher, &fleet, reqs);
  EXPECT_EQ(m.ServedRequests(), 2);
  EXPECT_EQ(m.ServedOffline(), 1);
  const RequestRecord& off = m.records()[1];
  EXPECT_TRUE(off.completed);
  // Encountered at vertex 4, which the taxi reaches at t=40.
  EXPECT_DOUBLE_EQ(off.pickup_time, 40.0);
}

TEST_F(EngineLineTest, OfflineIgnoredWhenDisabled) {
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 3;
  fleet[0].location = 0;
  TShareDispatcher dispatcher(net_, &oracle_, &fleet, config_);
  std::vector<RideRequest> reqs = {
      MakeRequest(0, 0, 9, 0.0, 90.0, 2.0),
      MakeRequest(1, 4, 8, 10.0, 40.0, 2.5, /*offline=*/true)};
  Metrics m = RunWith(&dispatcher, &fleet, reqs, /*serve_offline=*/false);
  EXPECT_EQ(m.ServedOffline(), 0);
  EXPECT_EQ(m.ServedOnline(), 1);
}

TEST_F(EngineLineTest, OfflineExpiresWhenTaxiTooLate) {
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 3;
  fleet[0].location = 0;
  TShareDispatcher dispatcher(net_, &oracle_, &fleet, config_);
  // Offline rider at vertex 8 with a pickup deadline of ~5 s: the passing
  // taxi arrives at t=80, long after expiry.
  std::vector<RideRequest> reqs = {
      MakeRequest(0, 0, 9, 0.0, 90.0, 2.0),
      MakeRequest(1, 8, 9, 0.0, 10.0, 1.5, /*offline=*/true)};
  Metrics m = RunWith(&dispatcher, &fleet, reqs);
  EXPECT_FALSE(m.records()[1].completed);
}

TEST_F(EngineLineTest, NoSharingNeverServesOffline) {
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 3;
  fleet[0].location = 0;
  NoSharingDispatcher dispatcher(net_, &oracle_, &fleet, config_);
  std::vector<RideRequest> reqs = {
      MakeRequest(0, 0, 9, 0.0, 90.0, 2.0),
      MakeRequest(1, 4, 8, 10.0, 40.0, 2.5, /*offline=*/true)};
  Metrics m = RunWith(&dispatcher, &fleet, reqs);
  EXPECT_EQ(m.ServedOffline(), 0);
}

TEST_F(EngineLineTest, CapacityLimitsConcurrentRiders) {
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 1;  // single seat
  fleet[0].location = 0;
  TShareDispatcher dispatcher(net_, &oracle_, &fleet, config_);
  // Two overlapping trips: the second cannot share a 1-seat taxi and its
  // tight deadline forbids serving it after the first.
  std::vector<RideRequest> reqs = {MakeRequest(0, 1, 8, 0.0, 70.0, 1.5),
                                   MakeRequest(1, 2, 7, 5.0, 50.0, 1.2)};
  Metrics m = RunWith(&dispatcher, &fleet, reqs);
  EXPECT_EQ(m.ServedRequests(), 1);
}

TEST(ComputeRouteTimesTest, AccumulatesArcCosts) {
  RoadNetwork net = LineCity();
  std::vector<VertexId> path = {0, 1, 2, 3};
  auto times = ComputeRouteTimes(net, path, 100.0);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 100.0);
  EXPECT_DOUBLE_EQ(times[3], 130.0);
}

TEST(ApplyPlanTest, InstallsScheduleAndRoute) {
  RoadNetwork net = LineCity();
  TaxiState taxi;
  taxi.id = 0;
  taxi.location = 0;
  RideRequest r = MakeRequest(0, 1, 3, 0.0, 20.0, 2.0);
  Schedule s = Schedule::WithInsertion(Schedule(), r, 0, 0);
  ApplyPlan(&taxi, net, s, {0, 1, 2, 3}, {10.0, 30.0}, 0.0, false);
  EXPECT_EQ(taxi.schedule.size(), 2u);
  EXPECT_EQ(taxi.route.size(), 4u);
  EXPECT_EQ(taxi.route_pos, 0u);
  EXPECT_DOUBLE_EQ(taxi.route.time(3), 30.0);
  EXPECT_TRUE(taxi.HasRoute());
}

}  // namespace
}  // namespace mtshare
