// Edge cases and failure injection for the simulation stack: empty fleets,
// empty request streams, saturated fleets, zero-capacity corner cases, and
// dispatcher behavior under starvation.
#include <gtest/gtest.h>

#include "matching/no_sharing.h"
#include "matching/t_share.h"
#include "sim/engine.h"

namespace mtshare {
namespace {

RoadNetwork LineCity() {
  RoadNetwork::Builder b(10.0);
  for (int i = 0; i < 10; ++i) b.AddVertex({i * 100.0, 0.0});
  for (int i = 0; i + 1 < 10; ++i) b.AddBidirectionalEdge(i, i + 1, 100.0);
  return b.Build();
}

RideRequest MakeRequest(RequestId id, VertexId o, VertexId d, Seconds t,
                        Seconds direct, double rho, bool offline = false) {
  RideRequest r;
  r.id = id;
  r.origin = o;
  r.destination = d;
  r.release_time = t;
  r.direct_cost = direct;
  r.deadline = t + rho * direct;
  r.offline = offline;
  return r;
}

TEST(EngineEdgeTest, EmptyRequestStream) {
  RoadNetwork net = LineCity();
  DistanceOracle oracle(net);
  std::vector<TaxiState> fleet(2);
  fleet[0].id = 0;
  fleet[0].location = 0;
  fleet[1].id = 1;
  fleet[1].location = 5;
  MatchingConfig config;
  NoSharingDispatcher dispatcher(net, &oracle, &fleet, config);
  SimulationEngine engine(net, &dispatcher, &fleet, EngineOptions{});
  Metrics m = engine.Run({});
  EXPECT_EQ(m.TotalRequests(), 0);
  EXPECT_EQ(m.ServedRequests(), 0);
  EXPECT_DOUBLE_EQ(m.total_driver_income, 0.0);
}

TEST(EngineEdgeTest, EmptyFleetRejectsEverything) {
  RoadNetwork net = LineCity();
  DistanceOracle oracle(net);
  std::vector<TaxiState> fleet;
  MatchingConfig config;
  TShareDispatcher dispatcher(net, &oracle, &fleet, config);
  SimulationEngine engine(net, &dispatcher, &fleet, EngineOptions{});
  Metrics m = engine.Run({MakeRequest(0, 2, 5, 0.0, 30.0, 2.0)});
  EXPECT_EQ(m.ServedRequests(), 0);
  EXPECT_FALSE(m.records()[0].assigned);
}

TEST(EngineEdgeTest, SaturatedFleetRejectsOverflow) {
  RoadNetwork net = LineCity();
  DistanceOracle oracle(net);
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 1;
  fleet[0].location = 0;
  MatchingConfig config;
  TShareDispatcher dispatcher(net, &oracle, &fleet, config);
  SimulationEngine engine(net, &dispatcher, &fleet, EngineOptions{});
  // Five simultaneous tight requests; a 1-seat taxi can serve at most a
  // couple sequentially within deadlines.
  std::vector<RideRequest> reqs;
  for (int i = 0; i < 5; ++i) {
    reqs.push_back(MakeRequest(i, 1 + (i % 3), 8, double(i), 60.0, 1.3));
  }
  Metrics m = engine.Run(reqs);
  EXPECT_LE(m.ServedRequests(), 2);
  int assigned = 0;
  for (const auto& rec : m.records()) assigned += rec.assigned ? 1 : 0;
  EXPECT_EQ(assigned, m.ServedRequests());  // assigned implies completed
}

TEST(EngineEdgeTest, RequestWithOriginEqualToTaxiLocationPicksUpImmediately) {
  RoadNetwork net = LineCity();
  DistanceOracle oracle(net);
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 2;
  fleet[0].location = 3;
  MatchingConfig config;
  NoSharingDispatcher dispatcher(net, &oracle, &fleet, config);
  SimulationEngine engine(net, &dispatcher, &fleet, EngineOptions{});
  Metrics m = engine.Run({MakeRequest(0, 3, 7, 5.0, 40.0, 2.0)});
  ASSERT_EQ(m.ServedRequests(), 1);
  EXPECT_DOUBLE_EQ(m.records()[0].pickup_time, 5.0);  // zero wait
  EXPECT_DOUBLE_EQ(m.records()[0].dropoff_time, 45.0);
}

TEST(EngineEdgeTest, BackToBackTripsReuseTheTaxi) {
  RoadNetwork net = LineCity();
  DistanceOracle oracle(net);
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 2;
  fleet[0].location = 0;
  MatchingConfig config;
  NoSharingDispatcher dispatcher(net, &oracle, &fleet, config);
  SimulationEngine engine(net, &dispatcher, &fleet, EngineOptions{});
  // Second trip released long after the first finishes.
  std::vector<RideRequest> reqs = {
      MakeRequest(0, 1, 4, 0.0, 30.0, 2.0),
      MakeRequest(1, 5, 8, 200.0, 30.0, 2.0),
  };
  Metrics m = engine.Run(reqs);
  EXPECT_EQ(m.ServedRequests(), 2);
  EXPECT_EQ(m.records()[1].taxi, 0);
  // The taxi idled at 4, then approached 5 (10 s away).
  EXPECT_DOUBLE_EQ(m.records()[1].pickup_time, 210.0);
}

TEST(EngineEdgeTest, MultiPassengerPartyConsumesSeats) {
  RoadNetwork net = LineCity();
  DistanceOracle oracle(net);
  std::vector<TaxiState> fleet(1);
  fleet[0].id = 0;
  fleet[0].capacity = 3;
  fleet[0].location = 0;
  MatchingConfig config;
  TShareDispatcher dispatcher(net, &oracle, &fleet, config);
  SimulationEngine engine(net, &dispatcher, &fleet, EngineOptions{});
  RideRequest party = MakeRequest(0, 1, 8, 0.0, 70.0, 2.0);
  party.passengers = 3;  // fills the taxi
  std::vector<RideRequest> reqs = {party,
                                   MakeRequest(1, 2, 7, 5.0, 50.0, 1.2)};
  Metrics m = engine.Run(reqs);
  EXPECT_TRUE(m.records()[0].completed);
  EXPECT_FALSE(m.records()[1].completed);  // no seat left, deadline tight
}

TEST(EngineEdgeTest, OfflineOnlyWorkloadWithParkedFleetServesNothing) {
  RoadNetwork net = LineCity();
  DistanceOracle oracle(net);
  std::vector<TaxiState> fleet(2);
  fleet[0].id = 0;
  fleet[0].location = 0;
  fleet[1].id = 1;
  fleet[1].location = 9;
  MatchingConfig config;
  TShareDispatcher dispatcher(net, &oracle, &fleet, config);
  SimulationEngine engine(net, &dispatcher, &fleet, EngineOptions{});
  // Only offline requests: parked taxis never move, so nobody is met.
  std::vector<RideRequest> reqs = {
      MakeRequest(0, 4, 8, 0.0, 40.0, 2.0, /*offline=*/true),
      MakeRequest(1, 5, 2, 10.0, 30.0, 2.0, /*offline=*/true)};
  Metrics m = engine.Run(reqs);
  EXPECT_EQ(m.ServedRequests(), 0);
}

TEST(EngineEdgeTest, DuplicateSimultaneousRequestsBothConsidered) {
  RoadNetwork net = LineCity();
  DistanceOracle oracle(net);
  std::vector<TaxiState> fleet(2);
  fleet[0].id = 0;
  fleet[0].capacity = 2;
  fleet[0].location = 0;
  fleet[1].id = 1;
  fleet[1].capacity = 2;
  fleet[1].location = 9;
  MatchingConfig config;
  TShareDispatcher dispatcher(net, &oracle, &fleet, config);
  SimulationEngine engine(net, &dispatcher, &fleet, EngineOptions{});
  std::vector<RideRequest> reqs = {MakeRequest(0, 4, 6, 0.0, 20.0, 4.0),
                                   MakeRequest(1, 4, 6, 0.0, 20.0, 4.0)};
  Metrics m = engine.Run(reqs);
  EXPECT_EQ(m.ServedRequests(), 2);
}

}  // namespace
}  // namespace mtshare
