// The event-driven simulation core must make bit-identical decisions to
// the legacy full-fleet sweep: same assignments, same pickup/dropoff
// times, same fares, same oracle traffic. These tests run both cores over
// randomized scenarios for every scheme and compare run outcomes field by
// field, and exercise the lazy FleetSync materialization hook directly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"
#include "matching/no_sharing.h"
#include "sim/engine.h"
#include "sim/taxi.h"

namespace mtshare {
namespace {

Metrics RunOnce(SchemeKind scheme, uint64_t seed, bool event_driven,
                bool serve_offline) {
  GridCityOptions gopt;
  gopt.rows = 16;
  gopt.cols = 16;
  gopt.seed = seed;
  RoadNetwork net = MakeGridCity(gopt);

  DemandModelOptions dopt;
  dopt.seed = seed + 1;
  DemandModel demand(net, dopt);
  DistanceOracle oracle(net);
  ScenarioOptions sopt;
  sopt.num_requests = 160;
  sopt.num_historical_trips = 2500;
  sopt.offline_fraction = 0.2;
  sopt.seed = seed + 2;
  Scenario scenario = MakeScenario(net, demand, oracle, sopt);

  SystemConfig config;
  config.kappa = 16;
  config.kt = 5;
  // Fresh system per run: dispatcher, indexes, and oracle caches all start
  // cold, so counter comparisons see identical initial state.
  MTShareSystem system(net, scenario.HistoricalOdPairs(), config);

  ScenarioSpec spec;
  spec.scheme = scheme;
  spec.requests = &scenario.requests;
  spec.num_taxis = 24;
  spec.fleet_seed = seed + 3;
  spec.serve_offline = serve_offline;
  spec.event_driven = event_driven;
  Result<Metrics> run = system.RunScenario(spec);
  EXPECT_TRUE(run.ok()) << run.status();
  return std::move(run).value();
}

/// Asserts that two runs made identical decisions and identical oracle
/// traffic (the default exact backend's counters are pure functions of the
/// query multiset, which both cores must preserve).
void ExpectIdenticalOutcomes(const Metrics& a, const Metrics& b,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.TotalRequests(), b.TotalRequests());
  EXPECT_EQ(a.ServedRequests(), b.ServedRequests());
  EXPECT_EQ(a.ServedOnline(), b.ServedOnline());
  EXPECT_EQ(a.ServedOffline(), b.ServedOffline());
  EXPECT_DOUBLE_EQ(a.total_driver_income, b.total_driver_income);
  EXPECT_EQ(a.index_memory_bytes, b.index_memory_bytes);
  EXPECT_EQ(a.oracle_queries, b.oracle_queries);
  EXPECT_EQ(a.oracle_row_hits, b.oracle_row_hits);
  EXPECT_EQ(a.oracle_row_misses, b.oracle_row_misses);
  // Both cores step the exact same route arcs; the event core just skips
  // the taxis that have none due.
  EXPECT_EQ(a.engine.arcs_stepped, b.engine.arcs_stepped);
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); ++i) {
    const RequestRecord& ra = a.records()[i];
    const RequestRecord& rb = b.records()[i];
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(ra.assigned, rb.assigned);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.taxi, rb.taxi);
    EXPECT_EQ(ra.candidates, rb.candidates);
    EXPECT_DOUBLE_EQ(ra.pickup_time, rb.pickup_time);
    EXPECT_DOUBLE_EQ(ra.dropoff_time, rb.dropoff_time);
    EXPECT_DOUBLE_EQ(ra.regular_fare, rb.regular_fare);
    EXPECT_DOUBLE_EQ(ra.shared_fare, rb.shared_fare);
  }
}

TEST(EngineEquivalenceTest, EventCoreMatchesSweepForEverySchemeAndSeed) {
  for (uint64_t seed : {11u, 29u, 47u}) {
    for (SchemeKind scheme :
         {SchemeKind::kNoSharing, SchemeKind::kTShare,
          SchemeKind::kPGreedyDp, SchemeKind::kMtShare,
          SchemeKind::kMtSharePro}) {
      Metrics sweep = RunOnce(scheme, seed, /*event_driven=*/false,
                              /*serve_offline=*/true);
      Metrics event = RunOnce(scheme, seed, /*event_driven=*/true,
                              /*serve_offline=*/true);
      EXPECT_FALSE(sweep.engine.event_driven);
      EXPECT_TRUE(event.engine.event_driven);
      ExpectIdenticalOutcomes(sweep, event,
                              std::string(SchemeName(scheme)) + " seed " +
                                  std::to_string(seed));
      // The event core did heap-driven work and touched strictly fewer
      // advancement units than boundaries x fleet.
      if (event.engine.arcs_stepped > 0) {
        EXPECT_GT(event.engine.heap_pops, 0);
      }
      EXPECT_EQ(sweep.engine.heap_pops, 0);
    }
  }
}

TEST(EngineEquivalenceTest, DeferredBoundariesStayEquivalent) {
  // No-Sharing ignores offline requests entirely, so their release
  // boundaries are deferrable — the event core must skip them (that is
  // the point) and still land on identical outcomes.
  Metrics sweep = RunOnce(SchemeKind::kNoSharing, 73, /*event_driven=*/false,
                          /*serve_offline=*/true);
  Metrics event = RunOnce(SchemeKind::kNoSharing, 73, /*event_driven=*/true,
                          /*serve_offline=*/true);
  ExpectIdenticalOutcomes(sweep, event, "no-sharing deferral");
  EXPECT_GT(event.engine.boundaries_deferred, 0);
  EXPECT_EQ(sweep.engine.boundaries_deferred, 0);

  // serve_offline=false makes every offline boundary deferrable for the
  // sharing baselines too.
  Metrics sweep_off = RunOnce(SchemeKind::kTShare, 91, /*event_driven=*/false,
                              /*serve_offline=*/false);
  Metrics event_off = RunOnce(SchemeKind::kTShare, 91, /*event_driven=*/true,
                              /*serve_offline=*/false);
  ExpectIdenticalOutcomes(sweep_off, event_off, "t-share serve_offline=off");
  EXPECT_GT(event_off.engine.boundaries_deferred, 0);

  // mT-Share's clustering is update-order sensitive; the gate must keep it
  // on strict per-boundary advancement.
  Metrics event_mt = RunOnce(SchemeKind::kMtShare, 91, /*event_driven=*/true,
                             /*serve_offline=*/false);
  EXPECT_EQ(event_mt.engine.boundaries_deferred, 0);
}

RoadNetwork LineCity() {
  RoadNetwork::Builder b(10.0);
  for (int i = 0; i < 10; ++i) b.AddVertex({i * 100.0, 0.0});
  for (int i = 0; i + 1 < 10; ++i) b.AddBidirectionalEdge(i, i + 1, 100.0);
  return b.Build();
}

TEST(LazySyncTest, MidArcSyncMatchesEagerStepping) {
  RoadNetwork net = LineCity();
  DistanceOracle oracle(net);
  // One lazily synced fleet (event core), one eagerly stepped (sweep core
  // through the same hook), both driving the same eventless route.
  std::vector<TaxiState> lazy_fleet(1);
  std::vector<TaxiState> eager_fleet(1);
  for (std::vector<TaxiState>* fleet : {&lazy_fleet, &eager_fleet}) {
    (*fleet)[0].id = 0;
    (*fleet)[0].location = 0;
  }
  MatchingConfig config;
  NoSharingDispatcher lazy_dispatcher(net, &oracle, &lazy_fleet, config);
  NoSharingDispatcher eager_dispatcher(net, &oracle, &eager_fleet, config);
  EngineOptions lazy_opts;
  lazy_opts.serve_offline = false;
  EngineOptions eager_opts = lazy_opts;
  eager_opts.event_driven = false;
  SimulationEngine lazy_engine(net, &lazy_dispatcher, &lazy_fleet, lazy_opts);
  SimulationEngine eager_engine(net, &eager_dispatcher, &eager_fleet,
                                eager_opts);

  // 9 arcs of 100 m at 10 m/s: the taxi reaches vertex k at t = 10k.
  std::vector<VertexId> path;
  for (VertexId v = 0; v < 10; ++v) path.push_back(v);
  ApplyPlan(&lazy_fleet[0], net, Schedule(), path, {}, 0.0,
            /*probabilistic_route=*/false);
  ApplyPlan(&eager_fleet[0], net, Schedule(), path, {}, 0.0,
            /*probabilistic_route=*/false);

  // Materialize through the dispatcher-facing hook at a mid-arc time:
  // t = 35 is between the arrivals at vertex 3 (t=30) and vertex 4 (t=40).
  FleetSync* lazy_sync = &lazy_engine;
  FleetSync* eager_sync = &eager_engine;
  lazy_sync->SyncTaxi(0, 35.0);
  eager_sync->SyncTaxi(0, 35.0);

  EXPECT_EQ(lazy_fleet[0].location, 3);
  EXPECT_DOUBLE_EQ(lazy_fleet[0].location_time, 30.0);
  EXPECT_EQ(lazy_fleet[0].route_pos, 3u);
  EXPECT_DOUBLE_EQ(lazy_fleet[0].driven_meters, 300.0);

  EXPECT_EQ(lazy_fleet[0].location, eager_fleet[0].location);
  EXPECT_DOUBLE_EQ(lazy_fleet[0].location_time, eager_fleet[0].location_time);
  EXPECT_EQ(lazy_fleet[0].route_pos, eager_fleet[0].route_pos);
  EXPECT_DOUBLE_EQ(lazy_fleet[0].driven_meters, eager_fleet[0].driven_meters);

  // Re-syncing at the same instant is a no-op (nothing newly due).
  lazy_sync->SyncTaxi(0, 35.0);
  EXPECT_EQ(lazy_fleet[0].route_pos, 3u);
  EXPECT_DOUBLE_EQ(lazy_fleet[0].driven_meters, 300.0);

  // Syncing far past the route end drains it completely.
  lazy_sync->SyncTaxi(0, 1000.0);
  EXPECT_EQ(lazy_fleet[0].location, 9);
  EXPECT_DOUBLE_EQ(lazy_fleet[0].location_time, 90.0);
  EXPECT_FALSE(lazy_fleet[0].HasRoute());
  EXPECT_DOUBLE_EQ(lazy_fleet[0].driven_meters, 900.0);
}

}  // namespace
}  // namespace mtshare
