// Tier-1 coverage for the streaming ingest seam (DESIGN.md §12): a
// StreamRequestSource fed the serialized log of a request vector must
// replay byte-identically to the vector itself for every scheme and every
// batch window, Δt=0 must reproduce the classic per-request replay, and
// malformed streams must surface line-tagged errors through RunScenario
// instead of crashing the engine.
#include "sim/request_source.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/mtshare_system.h"
#include "demand/trip_io.h"
#include "graph/graph_generators.h"

namespace mtshare {
namespace {

class RequestSourceTest : public ::testing::Test {
 protected:
  RequestSourceTest() {
    GridCityOptions gopt;
    gopt.rows = 16;
    gopt.cols = 16;
    gopt.seed = 33;
    net_ = MakeGridCity(gopt);
    demand_ = std::make_unique<DemandModel>(net_, DemandModelOptions{});
    oracle_ = std::make_unique<DistanceOracle>(net_);

    ScenarioOptions sopt;
    sopt.num_requests = 160;
    sopt.num_historical_trips = 3000;
    sopt.offline_fraction = 0.15;
    scenario_ = MakeScenario(net_, *demand_, *oracle_, sopt);

    // A bursty variant of the same workload: release times compressed
    // 1000x (~44 req/s), so a 50-200 ms batch window actually holds
    // multiple requests and the admission queue can back up. Deadlines
    // keep their original slack relative to the new release times.
    burst_ = scenario_.requests;
    for (RideRequest& r : burst_) {
      Seconds slack = r.deadline - r.release_time;
      r.release_time =
          burst_[0].release_time +
          (r.release_time - burst_[0].release_time) / 1000.0;
      r.deadline = r.release_time + slack;
    }

    config_.kappa = 20;
    config_.kt = 5;
    system_ = std::make_unique<MTShareSystem>(
        net_, scenario_.HistoricalOdPairs(), config_);
  }

  static std::string Serialize(const std::vector<RideRequest>& requests,
                               bool json) {
    std::ostringstream os;
    os << "# serialized request log\n";
    for (const RideRequest& r : requests) {
      os << (json ? FormatRequestJson(r) : FormatRequestCsv(r)) << "\n";
    }
    return os.str();
  }

  Metrics RunVector(SchemeKind scheme,
                    const std::vector<RideRequest>& requests,
                    double window_ms, int64_t max_queue = 0) {
    ScenarioSpec spec;
    spec.scheme = scheme;
    spec.requests = &requests;
    spec.num_taxis = 24;
    spec.fleet_seed = 7;
    spec.batch_window_ms = window_ms;
    spec.max_queue = max_queue;
    Result<Metrics> m = system_->RunScenario(spec);
    EXPECT_TRUE(m.ok()) << m.status();
    return std::move(m).value();
  }

  Metrics RunStream(SchemeKind scheme,
                    const std::vector<RideRequest>& requests, bool json,
                    double window_ms, int64_t max_queue = 0) {
    std::istringstream in(Serialize(requests, json));
    StreamRequestSource source(&in);
    ScenarioSpec spec;
    spec.scheme = scheme;
    spec.source = &source;
    spec.num_taxis = 24;
    spec.fleet_seed = 7;
    spec.batch_window_ms = window_ms;
    spec.max_queue = max_queue;
    Result<Metrics> m = system_->RunScenario(spec);
    EXPECT_TRUE(m.ok()) << m.status();
    return std::move(m).value();
  }

  RoadNetwork net_;
  std::unique_ptr<DemandModel> demand_;
  std::unique_ptr<DistanceOracle> oracle_;
  Scenario scenario_;
  std::vector<RideRequest> burst_;
  SystemConfig config_;
  std::unique_ptr<MTShareSystem> system_;
};

/// Every decision the simulation makes must match bit for bit; wall-clock
/// fields (response_ms, execution_seconds) are exempt.
void ExpectIdenticalDecisions(const Metrics& a, const Metrics& b,
                              const std::string& label) {
  ASSERT_EQ(a.TotalRequests(), b.TotalRequests()) << label;
  EXPECT_EQ(a.ServedRequests(), b.ServedRequests()) << label;
  EXPECT_EQ(a.ServedOnline(), b.ServedOnline()) << label;
  EXPECT_EQ(a.ServedOffline(), b.ServedOffline()) << label;
  EXPECT_DOUBLE_EQ(a.total_driver_income, b.total_driver_income) << label;
  EXPECT_EQ(a.serve.batches, b.serve.batches) << label;
  EXPECT_EQ(a.serve.admitted, b.serve.admitted) << label;
  EXPECT_EQ(a.serve.shed, b.serve.shed) << label;
  EXPECT_EQ(a.serve.queue_depth, b.serve.queue_depth) << label;
  for (int32_t i = 0; i < a.TotalRequests(); ++i) {
    const RequestRecord& ra = a.records()[i];
    const RequestRecord& rb = b.records()[i];
    EXPECT_EQ(ra.assigned, rb.assigned) << label << " req " << i;
    EXPECT_EQ(ra.completed, rb.completed) << label << " req " << i;
    EXPECT_EQ(ra.shed, rb.shed) << label << " req " << i;
    EXPECT_EQ(ra.taxi, rb.taxi) << label << " req " << i;
    EXPECT_EQ(ra.candidates, rb.candidates) << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.pickup_time, rb.pickup_time) << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.dropoff_time, rb.dropoff_time)
        << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.regular_fare, rb.regular_fare)
        << label << " req " << i;
    EXPECT_DOUBLE_EQ(ra.shared_fare, rb.shared_fare) << label << " req " << i;
  }
}

constexpr SchemeKind kAllSchemes[] = {
    SchemeKind::kNoSharing, SchemeKind::kTShare, SchemeKind::kPGreedyDp,
    SchemeKind::kMtShare, SchemeKind::kMtSharePro};

/// Core ingest-equivalence guarantee, CSV wire format: streaming the
/// serialized log replays the vector bit for bit under every scheme with
/// the classic per-request window.
TEST_F(RequestSourceTest, CsvStreamMatchesVectorForAllSchemes) {
  for (SchemeKind scheme : kAllSchemes) {
    Metrics vec = RunVector(scheme, scenario_.requests, /*window_ms=*/0);
    Metrics streamed =
        RunStream(scheme, scenario_.requests, /*json=*/false, 0);
    EXPECT_GT(vec.ServedRequests(), 0) << SchemeName(scheme);
    // Classic replays report the trivial serve counters.
    EXPECT_EQ(vec.serve.batches, 0) << SchemeName(scheme);
    EXPECT_EQ(vec.serve.queue_depth, 1) << SchemeName(scheme);
    EXPECT_GT(vec.serve.admitted, 0) << SchemeName(scheme);
    ExpectIdenticalDecisions(vec, streamed,
                             std::string(SchemeName(scheme)) + " csv");
  }
}

/// Same guarantee at every tested batch window on the bursty workload,
/// JSON wire format. Δt=0 is included: the batch path must collapse to
/// the classic loop exactly.
TEST_F(RequestSourceTest, JsonStreamMatchesVectorAtEveryBatchWindow) {
  for (double window_ms : {0.0, 50.0, 200.0}) {
    for (SchemeKind scheme : kAllSchemes) {
      std::string label = std::string(SchemeName(scheme)) + " window " +
                          std::to_string(window_ms);
      Metrics vec = RunVector(scheme, burst_, window_ms);
      Metrics streamed = RunStream(scheme, burst_, /*json=*/true, window_ms);
      ExpectIdenticalDecisions(vec, streamed, label);
      if (window_ms > 0) {
        // The burst actually exercised batching: fewer flushes than
        // requests, more than one request in flight at the peak.
        EXPECT_GT(vec.serve.batches, 0) << label;
        EXPECT_LT(vec.serve.batches, vec.serve.admitted) << label;
        EXPECT_GT(vec.serve.queue_depth, 1) << label;
      }
    }
  }
}

/// Δt=0 batch semantics equal the plain spec.requests replay — the batch
/// machinery must be invisible when disabled.
TEST_F(RequestSourceTest, ZeroWindowEqualsClassicReplay) {
  ScenarioSpec classic;
  classic.scheme = SchemeKind::kMtShare;
  classic.requests = &scenario_.requests;
  classic.num_taxis = 24;
  classic.fleet_seed = 7;
  Result<Metrics> base = system_->RunScenario(classic);
  ASSERT_TRUE(base.ok()) << base.status();
  Metrics windowed = RunVector(SchemeKind::kMtShare, scenario_.requests, 0);
  ExpectIdenticalDecisions(base.value(), windowed, "classic-vs-zero-window");
}

/// Admission control: with a tight queue cap on the bursty workload, the
/// engine sheds instead of queueing without bound, and every request still
/// gets exactly one decision.
TEST_F(RequestSourceTest, MaxQueueShedsAndCountsStayConsistent) {
  int64_t decisions = 0;
  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.requests = &burst_;
  spec.num_taxis = 24;
  spec.fleet_seed = 7;
  spec.batch_window_ms = 200.0;
  spec.max_queue = 3;
  spec.on_decision = [&](const RideRequest& r, const RequestRecord& rec) {
    EXPECT_EQ(r.id, rec.id);
    if (rec.shed) {
      EXPECT_FALSE(rec.assigned) << "shed request " << rec.id
                                 << " must never reach the dispatcher";
    }
    ++decisions;
  };
  Result<Metrics> run = system_->RunScenario(spec);
  ASSERT_TRUE(run.ok()) << run.status();
  const Metrics& m = run.value();
  EXPECT_GT(m.serve.shed, 0);
  EXPECT_LE(m.serve.queue_depth, 3);
  int64_t online = 0;
  int64_t shed_records = 0;
  for (const RequestRecord& rec : m.records()) {
    online += rec.offline ? 0 : 1;
    shed_records += rec.shed ? 1 : 0;
  }
  EXPECT_EQ(m.serve.admitted + m.serve.shed, online);
  EXPECT_EQ(m.serve.shed, shed_records);
  // One decision per admitted or shed request plus each served offline
  // encounter (unserved offline requests never produce a decision).
  EXPECT_EQ(decisions, m.serve.admitted + m.serve.shed + m.ServedOffline());
}

TEST_F(RequestSourceTest, RequestLogFormatsRoundTripExactly) {
  for (const RideRequest& r : scenario_.requests) {
    for (bool json : {false, true}) {
      std::string line = json ? FormatRequestJson(r) : FormatRequestCsv(r);
      Result<RideRequest> back = ParseRequestLine(line);
      ASSERT_TRUE(back.ok()) << back.status() << " for: " << line;
      const RideRequest& p = back.value();
      EXPECT_EQ(p.id, r.id);
      // %.17g serialization: doubles survive the round trip bit for bit.
      EXPECT_EQ(p.release_time, r.release_time);
      EXPECT_EQ(p.deadline, r.deadline);
      EXPECT_EQ(p.direct_cost, r.direct_cost);
      EXPECT_EQ(p.origin, r.origin);
      EXPECT_EQ(p.destination, r.destination);
      EXPECT_EQ(p.passengers, r.passengers);
      EXPECT_EQ(p.offline, r.offline);
    }
  }
}

TEST_F(RequestSourceTest, PeekDoesNotConsume) {
  VectorRequestSource source(&scenario_.requests);
  RideRequest a, b, c;
  ASSERT_TRUE(source.Peek(&a));
  ASSERT_TRUE(source.Peek(&b));
  EXPECT_EQ(a.id, b.id);
  ASSERT_TRUE(source.Next(&c));
  EXPECT_EQ(c.id, a.id);
  ASSERT_TRUE(source.Next(&c));
  EXPECT_EQ(c.id, a.id + 1);
}

TEST_F(RequestSourceTest, MalformedStreamsFailRunScenarioWithLineError) {
  struct Case {
    const char* name;
    std::string log;
    const char* expect;
  };
  const std::string good = FormatRequestCsv(scenario_.requests[0]);
  std::vector<Case> cases;
  cases.push_back({"garbage", good + "\nnot,a,request\n", "line 2"});
  RideRequest sparse = scenario_.requests[1];
  sparse.id = 99;
  cases.push_back(
      {"sparse ids", good + "\n" + FormatRequestCsv(sparse) + "\n", "dense"});
  RideRequest early = scenario_.requests[1];
  early.id = 1;
  early.release_time = scenario_.requests[0].release_time - 100.0;
  cases.push_back({"unsorted", good + "\n" + FormatRequestCsv(early) + "\n",
                   "sorted"});
  RideRequest costless = scenario_.requests[0];
  costless.direct_cost = -1.0;
  costless.deadline = -1.0;
  cases.push_back(
      {"no cost", FormatRequestCsv(costless) + "\n", "direct_cost"});

  for (const Case& c : cases) {
    std::istringstream in(c.log);
    StreamRequestSource source(&in);
    ScenarioSpec spec;
    spec.scheme = SchemeKind::kMtShare;
    spec.source = &source;
    spec.num_taxis = 10;
    Result<Metrics> run = system_->RunScenario(spec);
    ASSERT_FALSE(run.ok()) << c.name;
    EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument) << c.name;
    EXPECT_NE(run.status().message().find(c.expect), std::string::npos)
        << c.name << ": " << run.status();
  }
}

TEST_F(RequestSourceTest, OutOfRangeVerticesFailWhenBoundsKnown) {
  RideRequest bad = scenario_.requests[0];
  bad.origin = net_.num_vertices() + 5;
  std::istringstream in(FormatRequestCsv(bad) + "\n");
  StreamSourceOptions opts;
  opts.num_vertices = net_.num_vertices();
  StreamRequestSource source(&in, opts);
  RideRequest out;
  EXPECT_FALSE(source.Next(&out));
  EXPECT_FALSE(source.status().ok());
  EXPECT_NE(source.status().message().find("out of range"),
            std::string::npos);
}

/// The finalize hook fills fields raw service traffic omits: logs can
/// carry bare o/d/release lines (no id, cost, or deadline) and still
/// replay, with costs derived from the oracle.
TEST_F(RequestSourceTest, FinalizeHookDerivesCostAndDeadline) {
  std::ostringstream os;
  for (size_t i = 0; i < 40; ++i) {
    const RideRequest& r = scenario_.requests[i];
    char buf[128];
    std::snprintf(buf, sizeof(buf), "-1,%.17g,%lld,%lld,-1,-1,1,0\n",
                  r.release_time, static_cast<long long>(r.origin),
                  static_cast<long long>(r.destination));
    os << buf;
  }
  std::istringstream in(os.str());
  StreamSourceOptions opts;
  opts.num_vertices = net_.num_vertices();
  opts.finalize = [this](RideRequest* r) {
    r->direct_cost = oracle_->Cost(r->origin, r->destination);
    r->deadline = r->release_time + 1.3 * r->direct_cost;
  };
  StreamRequestSource source(&in, opts);
  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.source = &source;
  spec.num_taxis = 15;
  Result<Metrics> run = system_->RunScenario(spec);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run.value().TotalRequests(), 40);
  EXPECT_EQ(source.produced(), 40);
  for (const RequestRecord& rec : run.value().records()) {
    EXPECT_GT(rec.direct_cost, 0.0);
  }
}

/// The generator source streams a synthetic scenario lazily; for a fixed
/// (demand, seed) it is deterministic, sorted, and dense, and the engine
/// can consume it directly without a materialized vector.
TEST_F(RequestSourceTest, GeneratorSourceIsDeterministicSortedAndRunnable) {
  ScenarioOptions sopt;
  sopt.num_requests = 120;
  sopt.offline_fraction = 0.1;
  sopt.seed = 91;

  auto drain = [&]() {
    GeneratorRequestSource source(*demand_, *oracle_, sopt);
    std::vector<RideRequest> out;
    RideRequest r;
    while (source.Next(&r)) out.push_back(r);
    return out;
  };
  std::vector<RideRequest> a = drain();
  std::vector<RideRequest> b = drain();
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<RequestId>(i));
    EXPECT_GT(a[i].direct_cost, 0.0);
    EXPECT_GT(a[i].deadline, a[i].release_time);
    if (i > 0) EXPECT_GE(a[i].release_time, a[i - 1].release_time);
    EXPECT_EQ(a[i].origin, b[i].origin);
    EXPECT_EQ(a[i].destination, b[i].destination);
    EXPECT_EQ(a[i].release_time, b[i].release_time);
    EXPECT_EQ(a[i].passengers, b[i].passengers);
    EXPECT_EQ(a[i].offline, b[i].offline);
  }

  GeneratorRequestSource source(*demand_, *oracle_, sopt);
  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.source = &source;
  spec.num_taxis = 20;
  Result<Metrics> run = system_->RunScenario(spec);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run.value().TotalRequests(), static_cast<int32_t>(a.size()));
  EXPECT_GT(run.value().ServedRequests(), 0);

  // Streaming from the generator equals running its materialized drain —
  // the lazy path changes memory, not decisions.
  ScenarioSpec vec_spec;
  vec_spec.scheme = SchemeKind::kMtShare;
  vec_spec.requests = &a;
  vec_spec.num_taxis = 20;
  Result<Metrics> vec_run = system_->RunScenario(vec_spec);
  ASSERT_TRUE(vec_run.ok()) << vec_run.status();
  ExpectIdenticalDecisions(vec_run.value(), run.value(), "generator");
}

}  // namespace
}  // namespace mtshare
