// End-to-end tests of the mtshare_serve service binary: pipe a request
// log produced by mtshare_sim --save-requests through the server, check
// the JSON decision stream, the schema-5 "serve" report block, and the
// strict flag/log error handling. Compiled only when the CLI targets are
// wired in (MTSHARE_SERVE_BINARY / MTSHARE_SIM_BINARY).
#include <gtest/gtest.h>

#if defined(MTSHARE_SERVE_BINARY) && defined(MTSHARE_SIM_BINARY)

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace mtshare {
namespace {

int RunCommand(const std::string& command) {
  int rc = std::system(command.c_str());
  return rc < 0 ? rc : WEXITSTATUS(rc);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Numeric value following `"key":` in raw JSON (good enough for the
/// flat keys these tests check).
double NumberAfter(const std::string& json, const std::string& key) {
  size_t at = json.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << "missing key " << key;
  if (at == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + at + key.size() + 3, nullptr);
}

/// Shared city/fleet flags: the two binaries build identical systems from
/// these, which is what makes the served counts comparable.
const char kCityFlags[] =
    " --rows=12 --cols=12 --taxis=15 --scheme=mt-share --seed=42";

class ServeCliTest : public ::testing::Test {
 protected:
  std::string Tmp(const std::string& name) {
    return testing::TempDir() + "mtshare_serve_" + name;
  }
};

TEST_F(ServeCliTest, ServesPipedLogEndToEnd) {
  std::string log = Tmp("log.csv");
  std::string sim_report = Tmp("sim_report.json");
  std::string serve_report = Tmp("serve_report.json");
  std::string out = Tmp("out.jsonl");
  std::string err = Tmp("err.txt");
  for (const std::string& f : {log, sim_report, serve_report, out, err}) {
    std::remove(f.c_str());
  }

  std::string gen = std::string(MTSHARE_SIM_BINARY) + kCityFlags +
                    " --requests=150 --save-requests=" + log +
                    " --report=" + sim_report + " > /dev/null";
  ASSERT_EQ(RunCommand(gen), 0) << gen;

  std::string serve = std::string(MTSHARE_SERVE_BINARY) + kCityFlags +
                      " --gauge-every=50 --report=" + serve_report + " < " +
                      log + " > " + out + " 2> " + err;
  ASSERT_EQ(RunCommand(serve), 0) << serve << "\n" << ReadFile(err);

  // One JSON decision line per logged request.
  std::ifstream lines(out);
  std::string line;
  int decisions = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.rfind("{\"id\":", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    ++decisions;
  }
  std::string sim_json = ReadFile(sim_report);
  double logged = NumberAfter(sim_json, "total");
  EXPECT_EQ(decisions, static_cast<int>(logged));

  // Live gauges reached stderr while the run was in flight.
  std::string gauges = ReadFile(err);
  EXPECT_NE(gauges.find("p50="), std::string::npos) << gauges;
  EXPECT_NE(gauges.find("p99="), std::string::npos) << gauges;

  // The report carries the serve block with everything admitted, and the
  // streamed replay serves exactly what the vector run served.
  std::string serve_json = ReadFile(serve_report);
  EXPECT_NE(serve_json.find("\"experiment\": \"mtshare_serve\""),
            std::string::npos);
  EXPECT_NE(serve_json.find("\"serve\""), std::string::npos);
  EXPECT_EQ(NumberAfter(serve_json, "admitted"), logged);
  EXPECT_EQ(NumberAfter(serve_json, "shed"), 0.0);
  EXPECT_EQ(NumberAfter(serve_json, "served"),
            NumberAfter(sim_json, "served"));

  for (const std::string& f : {log, sim_report, serve_report, out, err}) {
    std::remove(f.c_str());
  }
}

TEST_F(ServeCliTest, BatchWindowReportsBatches) {
  std::string log = Tmp("batch_log.csv");
  std::string report = Tmp("batch_report.json");
  std::string gen = std::string(MTSHARE_SIM_BINARY) + kCityFlags +
                    " --requests=120 --save-requests=" + log + " > /dev/null";
  ASSERT_EQ(RunCommand(gen), 0) << gen;
  std::string serve = std::string(MTSHARE_SERVE_BINARY) + kCityFlags +
                      " --batch-window-ms=60000 --gauge-every=0 --report=" +
                      report + " < " + log + " > /dev/null 2> /dev/null";
  ASSERT_EQ(RunCommand(serve), 0) << serve;
  std::string json = ReadFile(report);
  EXPECT_EQ(NumberAfter(json, "batch_window_ms"), 60000.0);
  EXPECT_GT(NumberAfter(json, "batches"), 0.0);
  // A 60 s simulated window over an hour of traffic must coalesce
  // arrivals: strictly fewer flushes than admitted requests.
  EXPECT_LT(NumberAfter(json, "batches"), NumberAfter(json, "admitted"));
  std::remove(log.c_str());
  std::remove(report.c_str());
}

TEST_F(ServeCliTest, RejectsMalformedFlags) {
  // Regression: garbage numerics must exit 2, never atoi to a zero fleet.
  // --seed went through GetD (a double parse) for a while, so "-1" and
  // "abc" silently became seed 42; it must reject like every other flag.
  for (const char* flag :
       {"--taxis=abc", "--batch-window-ms=nope", "--batch-window-ms=-3",
        "--max-queue=-1", "--gauge-every=x", "--scheme=uber-pool",
        "--oracle=magic", "--engine=warp", "--seed=-1", "--seed=abc",
        "--seed=4.5", "--candidates=magic", "--candidates=",
        "--candidates=INDEX", "--candidates=buckets"}) {
    std::string cmd = std::string(MTSHARE_SERVE_BINARY) + " \"" +
                      std::string(flag) +
                      "\" < /dev/null > /dev/null 2>&1";
    EXPECT_EQ(RunCommand(cmd), 2) << flag;
  }
}

TEST_F(ServeCliTest, AcceptsFullUint64SeedRange) {
  // The whole uint64 range is a valid seed — UINT64_MAX used to lose
  // precision through the double path (2^64-1 is not representable).
  std::string serve = std::string(MTSHARE_SERVE_BINARY) + kCityFlags +
                      " --seed=18446744073709551615 --gauge-every=0"
                      " < /dev/null > /dev/null 2>&1";
  EXPECT_EQ(RunCommand(serve), 0) << serve;
}

TEST_F(ServeCliTest, ShortWriteOnDecisionStreamExitsOne) {
  // The decision stream is the service's product; losing it silently (full
  // disk, closed pipe) must surface as exit 1 with a diagnostic, exactly
  // as --help documents. /dev/full fails every write with ENOSPC.
  std::ifstream dev_full("/dev/full");
  if (!dev_full.good()) GTEST_SKIP() << "/dev/full unavailable";

  std::string log = Tmp("short_write_log.csv");
  std::string err = Tmp("short_write_err.txt");
  std::string gen = std::string(MTSHARE_SIM_BINARY) + kCityFlags +
                    " --requests=40 --save-requests=" + log + " > /dev/null";
  ASSERT_EQ(RunCommand(gen), 0) << gen;
  std::string serve = std::string(MTSHARE_SERVE_BINARY) + kCityFlags +
                      " --gauge-every=0 < " + log + " > /dev/full 2> " + err;
  EXPECT_EQ(RunCommand(serve), 1) << serve;
  std::string message = ReadFile(err);
  EXPECT_NE(message.find("short write"), std::string::npos) << message;
  std::remove(log.c_str());
  std::remove(err.c_str());
}

TEST_F(ServeCliTest, MalformedLogLineFailsWithLineTaggedError) {
  std::string log = Tmp("bad_log.csv");
  std::string err = Tmp("bad_err.txt");
  {
    std::ofstream out(log);
    out << "# comment\n";
    out << "0,28800.0,3,40,-1,-1,1,0\n";
    out << "this is not a request\n";
  }
  std::string serve = std::string(MTSHARE_SERVE_BINARY) + kCityFlags +
                      " --gauge-every=0 < " + log + " > /dev/null 2> " + err;
  EXPECT_EQ(RunCommand(serve), 1) << serve;
  std::string message = ReadFile(err);
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  std::remove(log.c_str());
  std::remove(err.c_str());
}

}  // namespace
}  // namespace mtshare

#endif  // MTSHARE_SERVE_BINARY && MTSHARE_SIM_BINARY
