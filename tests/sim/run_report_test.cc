#include "sim/run_report.h"

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"

namespace mtshare {
namespace {

/// Pulls the numeric value of `"key":` out of raw JSON text, searching from
/// the first occurrence of `section` (pass "" for top-level keys). Enough
/// of a parser for schema validation without a JSON dependency.
double NumberAfter(const std::string& json, const std::string& section,
                   const std::string& key) {
  size_t from = 0;
  if (!section.empty()) {
    from = json.find("\"" + section + "\"");
    EXPECT_NE(from, std::string::npos) << "missing section " << section;
    if (from == std::string::npos) return 0.0;
  }
  size_t at = json.find("\"" + key + "\":", from);
  EXPECT_NE(at, std::string::npos)
      << "missing key " << key << " in section " << section;
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + key.size() + 3, nullptr);
}

bool HasKey(const std::string& json, const std::string& key) {
  return json.find("\"" + key + "\":") != std::string::npos;
}

void ValidateReportSchema(const std::string& json) {
  EXPECT_EQ(NumberAfter(json, "", "schema_version"), 6.0);
  for (const char* key :
       {"experiment", "scheme", "window", "num_taxis", "num_requests",
        "seed", "requests", "response_ms", "waiting_min", "detour_min",
        "candidates", "phases", "oracle", "routing", "engine", "serve",
        "index_memory_bytes", "total_driver_income", "execution_seconds"}) {
    EXPECT_TRUE(HasKey(json, key)) << "missing top-level key " << key;
  }

  // Batched-routing section (schema_version 2). Counters are cumulative
  // and non-negative; fallbacks mean the priming fan missed a leg shape,
  // which is a bug by construction.
  for (const char* key : {"batched", "batch_queries", "settled_vertices",
                          "lb_pruned", "fallback_queries"}) {
    EXPECT_GE(NumberAfter(json, "routing", key), 0.0) << key;
  }
  EXPECT_EQ(NumberAfter(json, "routing", "fallback_queries"), 0.0);

  // Contraction-hierarchy counters (added in schema_version 3). Always
  // present; zero unless the run used the CH backend.
  EXPECT_TRUE(HasKey(json, "backend")) << "missing oracle backend name";
  for (const char* key :
       {"ch_active", "ch_shortcuts", "ch_preprocessing_ms",
        "ch_point_queries", "ch_bucket_queries", "ch_upward_settled",
        "ch_bucket_entries"}) {
    EXPECT_GE(NumberAfter(json, "routing", key), 0.0) << key;
  }

  // Candidate-search path counters (added in schema_version 6). The name
  // is one of the two ParseCandidateSearch spellings; the counters are
  // cumulative and zero on the index path.
  EXPECT_TRUE(HasKey(json, "candidate_search")) << "missing candidate_search";
  EXPECT_TRUE(json.find("\"candidate_search\": \"index\"") !=
                  std::string::npos ||
              json.find("\"candidate_search\":\"index\"") !=
                  std::string::npos ||
              json.find("\"candidate_search\": \"ch_buckets\"") !=
                  std::string::npos ||
              json.find("\"candidate_search\":\"ch_buckets\"") !=
                  std::string::npos)
      << "candidate_search must be index|ch_buckets";
  for (const char* key : {"bucket_candidates", "bucket_maintenance_ms",
                          "slots_screened", "ellipse_pruned"}) {
    EXPECT_GE(NumberAfter(json, "routing", key), 0.0) << key;
  }

  // Simulation-core counters (added in schema_version 4). A run with any
  // requests crosses at least one release boundary and one drain round;
  // heap pops / lazy syncs are zero on the sweep core.
  for (const char* key : {"event_driven", "heap_pops", "lazy_syncs",
                          "arcs_stepped", "boundaries", "boundaries_deferred",
                          "drain_rounds"}) {
    EXPECT_GE(NumberAfter(json, "engine", key), 0.0) << key;
  }
  EXPECT_GE(NumberAfter(json, "engine", "drain_rounds"), 1.0);

  // Streaming-ingest counters (added in schema_version 5). Classic runs
  // report a zero batch window with every request admitted, nothing shed.
  for (const char* key : {"batch_window_ms", "batches", "admitted", "shed",
                          "queue_depth"}) {
    EXPECT_GE(NumberAfter(json, "serve", key), 0.0) << key;
  }

  // Percentiles must be monotone within every distribution.
  for (const char* dist :
       {"response_ms", "waiting_min", "detour_min", "candidates"}) {
    double mn = NumberAfter(json, dist, "min");
    double p50 = NumberAfter(json, dist, "p50");
    double p90 = NumberAfter(json, dist, "p90");
    double p95 = NumberAfter(json, dist, "p95");
    double p99 = NumberAfter(json, dist, "p99");
    double mx = NumberAfter(json, dist, "max");
    EXPECT_LE(mn, p50) << dist;
    EXPECT_LE(p50, p90) << dist;
    EXPECT_LE(p90, p95) << dist;
    EXPECT_LE(p95, p99) << dist;
    EXPECT_LE(p99, mx * (1 + 1e-9)) << dist;
  }

  // Phase accounting reconciles with the engine's dispatch wall-clock:
  // phases are timed strictly inside the per-request response timers, so
  // their sum can never exceed the total by more than timer read noise.
  double attributed = NumberAfter(json, "phases", "attributed_ms");
  double total = NumberAfter(json, "phases", "dispatch_total_ms");
  double unattributed = NumberAfter(json, "phases", "unattributed_ms");
  EXPECT_GE(attributed, 0.0);
  EXPECT_GE(total, 0.0);
  EXPECT_NEAR(attributed + unattributed, total, 1e-3 * (1.0 + total));
  if (NumberAfter(json, "phases", "enabled") == 1.0) {
    EXPECT_LE(attributed, total * 1.15 + 5.0);
    double phase_sum = 0.0;
    for (const char* phase :
         {"candidate_search", "filter", "insertion", "routing"}) {
      double ms = NumberAfter(json, phase, "ms");
      EXPECT_GE(ms, 0.0) << phase;
      phase_sum += ms;
    }
    EXPECT_NEAR(phase_sum, attributed, 1e-3 * (1.0 + attributed));
  }
}

class RunReportTest : public ::testing::Test {
 protected:
  RunReportTest() {
    GridCityOptions gopt;
    gopt.rows = 14;
    gopt.cols = 14;
    gopt.seed = 33;
    net_ = MakeGridCity(gopt);
    demand_ = std::make_unique<DemandModel>(net_, DemandModelOptions{});
    oracle_ = std::make_unique<DistanceOracle>(net_);

    ScenarioOptions sopt;
    sopt.num_requests = 150;
    sopt.num_historical_trips = 2500;
    sopt.offline_fraction = 0.2;
    scenario_ = MakeScenario(net_, *demand_, *oracle_, sopt);

    config_.kappa = 16;
    config_.kt = 5;
    system_ = std::make_unique<MTShareSystem>(
        net_, scenario_.HistoricalOdPairs(), config_);
  }

  Metrics RunWithTiming(SchemeKind scheme) {
    ScenarioSpec spec;
    spec.scheme = scheme;
    spec.requests = &scenario_.requests;
    spec.num_taxis = 25;
    spec.collect_phase_timing = true;
    Result<Metrics> r = system_->RunScenario(spec);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }

  RunReportContext Context() {
    RunReportContext ctx;
    ctx.experiment = "run_report_test";
    ctx.scheme = "mT-Share";
    ctx.window = "peak";
    ctx.num_taxis = 25;
    ctx.num_requests = static_cast<int32_t>(scenario_.requests.size());
    ctx.seed = 33;
    return ctx;
  }

  RoadNetwork net_;
  std::unique_ptr<DemandModel> demand_;
  std::unique_ptr<DistanceOracle> oracle_;
  Scenario scenario_;
  SystemConfig config_;
  std::unique_ptr<MTShareSystem> system_;
};

TEST_F(RunReportTest, SchemaIsValidForEveryScheme) {
  for (SchemeKind scheme :
       {SchemeKind::kNoSharing, SchemeKind::kTShare, SchemeKind::kPGreedyDp,
        SchemeKind::kMtShare, SchemeKind::kMtSharePro}) {
    Metrics m = RunWithTiming(scheme);
    std::string json = RunReportJson(Context(), m);
    SCOPED_TRACE(SchemeName(scheme));
    ValidateReportSchema(json);
    EXPECT_EQ(NumberAfter(json, "phases", "enabled"), 1.0);
    // Something actually dispatched, so at least one phase saw calls.
    double calls = 0.0;
    for (const char* phase :
         {"candidate_search", "filter", "insertion", "routing"}) {
      calls += NumberAfter(json, phase, "calls");
    }
    EXPECT_GT(calls, 0.0);
    // Every sharing scheme goes through the batched insertion path by
    // default (No-Sharing has no insertion fan-out to batch).
    EXPECT_EQ(NumberAfter(json, "routing", "batched"), 1.0);
    if (scheme != SchemeKind::kNoSharing) {
      EXPECT_GT(NumberAfter(json, "routing", "batch_queries"), 0.0);
    }
    // The event-driven core is the default and did real heap work: every
    // assigned route is armed on the heap and popped as the taxi moves.
    EXPECT_EQ(NumberAfter(json, "engine", "event_driven"), 1.0);
    EXPECT_GT(NumberAfter(json, "engine", "heap_pops"), 0.0);
    EXPECT_GT(NumberAfter(json, "engine", "arcs_stepped"), 0.0);
  }
}

TEST_F(RunReportTest, DisabledTimingReportsZeroPhases) {
  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.requests = &scenario_.requests;
  spec.num_taxis = 25;
  spec.collect_phase_timing = false;
  Result<Metrics> r = system_->RunScenario(spec);
  ASSERT_TRUE(r.ok());
  std::string json = RunReportJson(Context(), r.value());
  EXPECT_EQ(NumberAfter(json, "phases", "enabled"), 0.0);
  EXPECT_EQ(NumberAfter(json, "phases", "attributed_ms"), 0.0);
  ValidateReportSchema(json);
}

TEST_F(RunReportTest, SingleLineModeHasNoNewlines) {
  Metrics m = RunWithTiming(SchemeKind::kMtShare);
  std::string line = RunReportJson(Context(), m, /*indent=*/0);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  ValidateReportSchema(line);
  // Pretty and single-line renderings agree once whitespace is dropped.
  std::string pretty = RunReportJson(Context(), m, /*indent=*/2);
  std::string squashed;
  for (char c : pretty) {
    if (c != '\n' && c != ' ') squashed += c;
  }
  std::string line_squashed;
  for (char c : line) {
    if (c != ' ') line_squashed += c;
  }
  EXPECT_EQ(squashed, line_squashed);
}

TEST_F(RunReportTest, EscapesStringsAndAppendsLines) {
  Metrics m = RunWithTiming(SchemeKind::kNoSharing);
  RunReportContext ctx = Context();
  ctx.experiment = "quo\"te\\back\nline";
  std::string json = RunReportJson(ctx, m);
  EXPECT_NE(json.find("quo\\\"te\\\\back\\nline"), std::string::npos);

  std::string path = testing::TempDir() + "mtshare_run_report_append.json";
  std::remove(path.c_str());
  ASSERT_TRUE(AppendRunReportLine(path, Context(), m).ok());
  ASSERT_TRUE(AppendRunReportLine(path, Context(), m).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    ValidateReportSchema(line);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST_F(RunReportTest, WriteRunReportFailsOnBadPath) {
  Metrics m = RunWithTiming(SchemeKind::kNoSharing);
  Status s = WriteRunReport("/nonexistent-dir/report.json", Context(), m);
  EXPECT_FALSE(s.ok());
}

#ifdef MTSHARE_SIM_BINARY

int RunCommand(const std::string& command) {
  int rc = std::system(command.c_str());
  return rc < 0 ? rc : WEXITSTATUS(rc);
}

TEST(MtshareSimCliTest, ReportFlagEmitsValidJson) {
  std::string path = testing::TempDir() + "mtshare_sim_cli_report.json";
  std::remove(path.c_str());
  std::string cmd = std::string(MTSHARE_SIM_BINARY) +
                    " --scheme=mt-share --rows=14 --cols=14 --taxis=20"
                    " --requests=120 --report=" + path + " > /dev/null";
  ASSERT_EQ(RunCommand(cmd), 0) << cmd;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "report file missing: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  ValidateReportSchema(json);
  EXPECT_EQ(NumberAfter(json, "", "num_taxis"), 20.0);
  EXPECT_EQ(NumberAfter(json, "", "num_requests"), 120.0);
  EXPECT_EQ(NumberAfter(json, "phases", "enabled"), 1.0);
  std::remove(path.c_str());
}

TEST(MtshareSimCliTest, RejectsMalformedNumericFlags) {
  // Regression: "--taxis=abc" used to atoi to 0 and run an empty fleet,
  // and "--seed=-1" / "--seed=abc" went through a double parse that
  // silently fell back to the default seed.
  for (const char* flag : {"--taxis=abc", "--requests=12x", "--rho=",
                           "--threads=-2", "--seed=4 2", "--seed=-1",
                           "--seed=abc", "--seed=4.5",
                           "--batch-window-ms=abc", "--batch-window-ms=-5",
                           "--max-queue=x"}) {
    std::string cmd = std::string(MTSHARE_SIM_BINARY) + " \"" +
                      std::string(flag) + "\" > /dev/null 2>&1";
    EXPECT_EQ(RunCommand(cmd), 2) << flag;
  }
}

TEST(MtshareSimCliTest, CandidatesFlagIsStrict) {
  // --candidates selects the candidate-search path (DESIGN.md §14); the
  // parse is exact-match, so case drift or abbreviations exit 2 instead of
  // silently running the default path and skewing an A/B comparison.
  for (const char* flag : {"--candidates=magic", "--candidates=",
                           "--candidates=INDEX", "--candidates=buckets",
                           "--candidates=ch-buckets"}) {
    std::string cmd = std::string(MTSHARE_SIM_BINARY) + " \"" +
                      std::string(flag) + "\" > /dev/null 2>&1";
    EXPECT_EQ(RunCommand(cmd), 2) << flag;
  }
}

TEST(MtshareSimCliTest, ChBucketsPathEmitsBucketCounters) {
  std::string path = testing::TempDir() + "mtshare_sim_cli_buckets.json";
  std::remove(path.c_str());
  std::string cmd = std::string(MTSHARE_SIM_BINARY) +
                    " --scheme=mt-share --rows=14 --cols=14 --taxis=20"
                    " --requests=120 --candidates=ch_buckets --report=" +
                    path + " > /dev/null";
  ASSERT_EQ(RunCommand(cmd), 0) << cmd;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "report file missing: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  ValidateReportSchema(json);
  EXPECT_NE(json.find("\"candidate_search\": \"ch_buckets\""),
            std::string::npos);
  EXPECT_GT(NumberAfter(json, "routing", "bucket_candidates"), 0.0);
  EXPECT_GT(NumberAfter(json, "routing", "slots_screened"), 0.0);
  EXPECT_EQ(NumberAfter(json, "routing", "fallback_queries"), 0.0);
  std::remove(path.c_str());
}

TEST(MtshareSimCliTest, AcceptsFullUint64SeedRange) {
  // UINT64_MAX is a legal seed; the old double path rounded it.
  std::string cmd = std::string(MTSHARE_SIM_BINARY) +
                    " --rows=8 --cols=8 --taxis=5 --requests=20"
                    " --seed=18446744073709551615 > /dev/null 2>&1";
  EXPECT_EQ(RunCommand(cmd), 0);
}

#endif  // MTSHARE_SIM_BINARY

}  // namespace
}  // namespace mtshare
