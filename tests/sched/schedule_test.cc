#include "sched/schedule.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "graph/graph_generators.h"
#include "routing/distance_oracle.h"

namespace mtshare {
namespace {

// All tests use a straight-line cost function on vertex ids scaled by 10s
// per unit unless a real network is needed.
Seconds LineCost(VertexId a, VertexId b) { return std::abs(a - b) * 10.0; }

RideRequest MakeRequest(RequestId id, VertexId o, VertexId d, Seconds t,
                        double rho = 1.5, int32_t pax = 1) {
  RideRequest r;
  r.id = id;
  r.origin = o;
  r.destination = d;
  r.release_time = t;
  r.direct_cost = LineCost(o, d);
  r.deadline = t + rho * r.direct_cost;
  r.passengers = pax;
  return r;
}

TEST(ScheduleTest, WithInsertionPlacesEventsInOrder) {
  RideRequest r1 = MakeRequest(1, 2, 8, 0.0);
  Schedule base;
  Schedule s = Schedule::WithInsertion(base, r1, 0, 0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.at(0).is_pickup);
  EXPECT_EQ(s.at(0).vertex, 2);
  EXPECT_FALSE(s.at(1).is_pickup);
  EXPECT_EQ(s.at(1).vertex, 8);

  RideRequest r2 = MakeRequest(2, 3, 6, 0.0);
  Schedule s2 = Schedule::WithInsertion(s, r2, 1, 1);
  ASSERT_EQ(s2.size(), 4u);
  EXPECT_EQ(s2.at(0).request, 1);
  EXPECT_EQ(s2.at(1).request, 2);
  EXPECT_TRUE(s2.at(1).is_pickup);
  EXPECT_EQ(s2.at(2).request, 2);
  EXPECT_FALSE(s2.at(2).is_pickup);
  EXPECT_EQ(s2.at(3).request, 1);
}

TEST(ScheduleTest, PopFrontAndEraseRequest) {
  RideRequest r1 = MakeRequest(1, 2, 8, 0.0);
  RideRequest r2 = MakeRequest(2, 3, 6, 0.0);
  Schedule s = Schedule::WithInsertion(Schedule(), r1, 0, 0);
  s = Schedule::WithInsertion(s, r2, 1, 1);
  s.PopFront();
  EXPECT_EQ(s.size(), 3u);
  s.EraseRequest(2);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.at(0).request, 1);
}

TEST(ScheduleTest, FinalOnboardBalances) {
  RideRequest r = MakeRequest(1, 2, 8, 0.0, 1.5, 2);
  Schedule s = Schedule::WithInsertion(Schedule(), r, 0, 0);
  EXPECT_EQ(s.FinalOnboard(1), 1);
}

TEST(CheckScheduleTest, FeasibleWalkComputesTimes) {
  RideRequest r = MakeRequest(1, 2, 8, 0.0);
  Schedule s = Schedule::WithInsertion(Schedule(), r, 0, 0);
  ScheduleCheck c = CheckSchedule(s, 0, 0.0, 0, 3, LineCost);
  ASSERT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.total_travel, 20.0 + 60.0);
  EXPECT_DOUBLE_EQ(c.completion_time, 80.0);
  ASSERT_EQ(c.event_arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(c.event_arrivals[0], 20.0);
  EXPECT_DOUBLE_EQ(c.event_arrivals[1], 80.0);
}

TEST(CheckScheduleTest, DeadlineViolationInfeasible) {
  RideRequest r = MakeRequest(1, 2, 8, 0.0, 1.1);  // tight deadline: 66s
  Schedule s = Schedule::WithInsertion(Schedule(), r, 0, 0);
  // Start far away: pickup at t=100 > pickup deadline.
  ScheduleCheck c = CheckSchedule(s, 12, 0.0, 0, 3, LineCost);
  EXPECT_FALSE(c.feasible);
}

TEST(CheckScheduleTest, CapacityViolationInfeasible) {
  RideRequest r = MakeRequest(1, 2, 8, 0.0, 2.0, 3);
  Schedule s = Schedule::WithInsertion(Schedule(), r, 0, 0);
  ScheduleCheck c = CheckSchedule(s, 2, 0.0, 1, 3, LineCost);  // 1+3 > 3
  EXPECT_FALSE(c.feasible);
}

TEST(CheckScheduleTest, StartOverCapacityInfeasible) {
  Schedule s;
  ScheduleCheck c = CheckSchedule(s, 0, 0.0, 4, 3, LineCost);
  EXPECT_FALSE(c.feasible);
}

TEST(CheckScheduleTest, EmptyScheduleTriviallyFeasible) {
  Schedule s;
  ScheduleCheck c = CheckSchedule(s, 5, 7.0, 0, 3, LineCost);
  EXPECT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.total_travel, 0.0);
  EXPECT_DOUBLE_EQ(c.completion_time, 7.0);
}

TEST(FindBestInsertionTest, EmptyScheduleTakesDirectRoute) {
  RideRequest r = MakeRequest(1, 2, 8, 0.0);
  InsertionResult ins =
      FindBestInsertion(Schedule(), r, 0, 0.0, 0, 3, LineCost);
  ASSERT_TRUE(ins.found);
  EXPECT_EQ(ins.pickup_pos, 0u);
  EXPECT_EQ(ins.dropoff_pos, 0u);
  EXPECT_DOUBLE_EQ(ins.detour, 80.0);
}

TEST(FindBestInsertionTest, PrefersCheapestPosition) {
  // Base: serve request A from 0 to 10. New request B from 4 to 6 lies on
  // the way; inserting inside costs nothing extra.
  RideRequest a = MakeRequest(1, 0, 10, 0.0, 2.0);
  Schedule base = Schedule::WithInsertion(Schedule(), a, 0, 0);
  // Generous rho: B's pickup deadline must cover the 40 s drive to vertex 4.
  RideRequest b = MakeRequest(2, 4, 6, 0.0, 4.0);
  InsertionResult ins = FindBestInsertion(base, b, 0, 0.0, 0, 3, LineCost);
  ASSERT_TRUE(ins.found);
  EXPECT_NEAR(ins.detour, 0.0, 1e-9);
  EXPECT_EQ(ins.pickup_pos, 1u);  // after A's pickup
  EXPECT_EQ(ins.dropoff_pos, 1u);
}

TEST(FindBestInsertionTest, RespectsCapacityAcrossSegments) {
  RideRequest a = MakeRequest(1, 0, 10, 0.0, 2.0, 2);
  Schedule base = Schedule::WithInsertion(Schedule(), a, 0, 0);
  // Capacity 2: B (1 pax) cannot ride between A's pickup and dropoff.
  RideRequest b = MakeRequest(2, 4, 6, 0.0, 10.0);
  InsertionResult ins = FindBestInsertion(base, b, 0, 0.0, 0, 2, LineCost);
  ASSERT_TRUE(ins.found);
  // Only feasible placement: after A is dropped (pickup_pos == 2).
  EXPECT_EQ(ins.pickup_pos, 2u);
}

TEST(FindBestInsertionTest, InfeasibleWhenDeadlinesTight) {
  RideRequest a = MakeRequest(1, 0, 10, 0.0, 1.05);
  Schedule base = Schedule::WithInsertion(Schedule(), a, 0, 0);
  // B would detour A beyond its 5% slack.
  RideRequest b = MakeRequest(2, 20, 30, 0.0, 1.05);
  InsertionResult ins = FindBestInsertion(base, b, 0, 0.0, 0, 3, LineCost);
  EXPECT_FALSE(ins.found);
}

TEST(FindBestInsertionTest, InfeasibleBaseScheduleFails) {
  RideRequest a = MakeRequest(1, 2, 8, 0.0, 1.1);
  Schedule base = Schedule::WithInsertion(Schedule(), a, 0, 0);
  RideRequest b = MakeRequest(2, 3, 7, 0.0, 2.0);
  // Taxi too far to honor A at all: base walk infeasible.
  InsertionResult ins = FindBestInsertion(base, b, 40, 0.0, 0, 3, LineCost);
  EXPECT_FALSE(ins.found);
}

// ------- DP variant: equivalence with the exhaustive search -------

class InsertionDpEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(InsertionDpEquivalence, MatchesNaiveOnRandomInstances) {
  Rng rng(1000 + GetParam());
  GridCityOptions gopt;
  gopt.rows = 10;
  gopt.cols = 10;
  gopt.seed = 5;
  RoadNetwork net = MakeGridCity(gopt);
  DistanceOracle oracle(net);
  LegCostFn cost = [&](VertexId a, VertexId b) { return oracle.Cost(a, b); };

  auto random_vertex = [&]() {
    return VertexId(rng.NextInt(0, net.num_vertices() - 1));
  };
  auto random_request = [&](RequestId id, Seconds now) {
    RideRequest r;
    r.id = id;
    r.release_time = now;
    r.origin = random_vertex();
    do {
      r.destination = random_vertex();
    } while (r.destination == r.origin);
    r.direct_cost = oracle.Cost(r.origin, r.destination);
    r.deadline = now + rng.NextUniform(1.2, 2.2) * r.direct_cost;
    r.passengers = int32_t(rng.NextInt(1, 2));
    return r;
  };

  // Build a base schedule by inserting a few requests greedily.
  VertexId taxi_loc = random_vertex();
  int32_t capacity = 4;
  Schedule base;
  for (int k = 0; k < 3; ++k) {
    RideRequest r = random_request(k, 0.0);
    InsertionResult ins =
        FindBestInsertion(base, r, taxi_loc, 0.0, 0, capacity, cost);
    if (ins.found) base = ins.schedule;
  }

  for (int trial = 0; trial < 10; ++trial) {
    RideRequest r = random_request(100 + trial, 0.0);
    InsertionResult naive =
        FindBestInsertion(base, r, taxi_loc, 0.0, 0, capacity, cost);
    InsertionResult dp =
        FindBestInsertionDp(base, r, taxi_loc, 0.0, 0, capacity, cost);
    ASSERT_EQ(naive.found, dp.found) << "trial " << trial;
    if (naive.found) {
      EXPECT_NEAR(naive.detour, dp.detour, 1e-6) << "trial " << trial;
      EXPECT_TRUE(dp.check.feasible);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, InsertionDpEquivalence,
                         ::testing::Range(0, 8));

// ------- Slot masks (the detour-ellipse screen's output contract) -------

class InsertionMaskEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(InsertionMaskEquivalence, MaskedSearchesAgreeOnRandomInstances) {
  Rng rng(7000 + GetParam());
  GridCityOptions gopt;
  gopt.rows = 10;
  gopt.cols = 10;
  gopt.seed = 5;
  RoadNetwork net = MakeGridCity(gopt);
  DistanceOracle oracle(net);
  LegCostFn cost = [&](VertexId a, VertexId b) { return oracle.Cost(a, b); };

  auto random_vertex = [&]() {
    return VertexId(rng.NextInt(0, net.num_vertices() - 1));
  };
  auto random_request = [&](RequestId id) {
    RideRequest r;
    r.id = id;
    r.release_time = 0.0;
    r.origin = random_vertex();
    do {
      r.destination = random_vertex();
    } while (r.destination == r.origin);
    r.direct_cost = oracle.Cost(r.origin, r.destination);
    r.deadline = rng.NextUniform(1.2, 2.2) * r.direct_cost;
    r.passengers = int32_t(rng.NextInt(1, 2));
    return r;
  };

  VertexId taxi_loc = random_vertex();
  int32_t capacity = 4;
  Schedule base;
  for (int k = 0; k < 3; ++k) {
    RideRequest r = random_request(k);
    InsertionResult ins =
        FindBestInsertion(base, r, taxi_loc, 0.0, 0, capacity, cost);
    if (ins.found) base = ins.schedule;
  }
  const size_t m = base.size();

  for (int trial = 0; trial < 10; ++trial) {
    RideRequest r = random_request(100 + trial);
    InsertionResult unmasked =
        FindBestInsertion(base, r, taxi_loc, 0.0, 0, capacity, cost);

    // All-ones mask == no mask, for both searches.
    InsertionSlotMask ones;
    ones.pickup.assign(m + 1, 1);
    ones.dropoff.assign(m + 1, 1);
    InsertionResult with_ones =
        FindBestInsertion(base, r, taxi_loc, 0.0, 0, capacity, cost, &ones);
    InsertionResult dp_ones =
        FindBestInsertionDp(base, r, taxi_loc, 0.0, 0, capacity, cost, &ones);
    EXPECT_EQ(with_ones.found, unmasked.found);
    EXPECT_EQ(dp_ones.found, unmasked.found);
    if (unmasked.found) {
      EXPECT_EQ(with_ones.pickup_pos, unmasked.pickup_pos);
      EXPECT_EQ(with_ones.dropoff_pos, unmasked.dropoff_pos);
      EXPECT_DOUBLE_EQ(with_ones.detour, unmasked.detour);
      EXPECT_NEAR(dp_ones.detour, unmasked.detour, 1e-6);
    }

    // Random mask: DP and exhaustive search must agree with each other
    // on the restricted slot set (this is what licenses the DP to take
    // the ellipse screen's masks).
    InsertionSlotMask random_mask;
    random_mask.pickup.assign(m + 1, 0);
    random_mask.dropoff.assign(m + 1, 0);
    for (size_t i = 0; i <= m; ++i) {
      random_mask.pickup[i] = rng.NextInt(0, 1) != 0;
      random_mask.dropoff[i] = rng.NextInt(0, 1) != 0;
    }
    InsertionResult naive = FindBestInsertion(base, r, taxi_loc, 0.0, 0,
                                              capacity, cost, &random_mask);
    InsertionResult dp = FindBestInsertionDp(base, r, taxi_loc, 0.0, 0,
                                             capacity, cost, &random_mask);
    ASSERT_EQ(naive.found, dp.found) << "trial " << trial;
    if (naive.found) {
      EXPECT_NEAR(naive.detour, dp.detour, 1e-6) << "trial " << trial;
      EXPECT_TRUE(dp.check.feasible);
      // The masked winner honors the mask.
      EXPECT_TRUE(random_mask.pickup[naive.pickup_pos]);
      EXPECT_TRUE(random_mask.dropoff[naive.dropoff_pos]);
      // A masked search can never beat the unmasked optimum.
      ASSERT_TRUE(unmasked.found);
      EXPECT_GE(naive.detour, unmasked.detour - 1e-9);
    }

    // A mask that keeps the unmasked winner's slots (clearing others at
    // random) must return exactly the unmasked optimum — the producer
    // contract: clearing only non-optimal slots never changes the result.
    if (unmasked.found) {
      InsertionSlotMask keep = random_mask;
      keep.pickup[unmasked.pickup_pos] = 1;
      keep.dropoff[unmasked.dropoff_pos] = 1;
      InsertionResult kept = FindBestInsertionDp(base, r, taxi_loc, 0.0, 0,
                                                 capacity, cost, &keep);
      ASSERT_TRUE(kept.found);
      EXPECT_NEAR(kept.detour, unmasked.detour, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, InsertionMaskEquivalence,
                         ::testing::Range(0, 8));

TEST(InsertionMaskTest, AllZeroMaskFindsNothing) {
  RideRequest b = MakeRequest(2, 4, 6, 0.0, 10.0);
  InsertionSlotMask zeros;
  zeros.pickup.assign(1, 0);
  zeros.dropoff.assign(1, 0);
  EXPECT_FALSE(
      FindBestInsertion(Schedule(), b, 0, 0.0, 0, 3, LineCost, &zeros).found);
  EXPECT_FALSE(
      FindBestInsertionDp(Schedule(), b, 0, 0.0, 0, 3, LineCost, &zeros)
          .found);
}

TEST(FindBestInsertionDpTest, OnboardPassengersRestrictCapacity) {
  RideRequest b = MakeRequest(2, 4, 6, 0.0, 10.0, 2);
  // Taxi already carries 2 of 3 seats: a 2-passenger party cannot fit.
  InsertionResult dp =
      FindBestInsertionDp(Schedule(), b, 0, 0.0, 2, 3, LineCost);
  EXPECT_FALSE(dp.found);
}

TEST(FindBestInsertionDpTest, AppendAtEndWhenMidRouteFull) {
  RideRequest a = MakeRequest(1, 0, 10, 0.0, 3.0, 3);
  Schedule base = Schedule::WithInsertion(Schedule(), a, 0, 0);
  // rho 10: pickup deadline covers waiting for A's dropoff at t=100.
  RideRequest b = MakeRequest(2, 12, 16, 0.0, 10.0, 2);
  InsertionResult dp = FindBestInsertionDp(base, b, 0, 0.0, 0, 3, LineCost);
  ASSERT_TRUE(dp.found);
  EXPECT_EQ(dp.pickup_pos, 2u);
  EXPECT_EQ(dp.dropoff_pos, 2u);
}

}  // namespace
}  // namespace mtshare
