#include "sched/partition_filter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_generators.h"

namespace mtshare {
namespace {

class PartitionFilterTest : public ::testing::Test {
 protected:
  PartitionFilterTest() {
    GridCityOptions opt;
    opt.rows = 20;
    opt.cols = 20;
    opt.seed = 11;
    net_ = MakeGridCity(opt);
    partitioning_ = GridPartition(net_, 25);
    lg_ = std::make_unique<LandmarkGraph>(net_, partitioning_);
  }

  VertexId CornerVertex(bool max_x, bool max_y) const {
    VertexId best = 0;
    for (VertexId v = 0; v < net_.num_vertices(); ++v) {
      double sx = max_x ? net_.coord(v).x : -net_.coord(v).x;
      double sy = max_y ? net_.coord(v).y : -net_.coord(v).y;
      double bx = max_x ? net_.coord(best).x : -net_.coord(best).x;
      double by = max_y ? net_.coord(best).y : -net_.coord(best).y;
      if (sx + sy > bx + by) best = v;
    }
    return best;
  }

  RoadNetwork net_;
  MapPartitioning partitioning_;
  std::unique_ptr<LandmarkGraph> lg_;
};

TEST_F(PartitionFilterTest, EndpointsAlwaysRetained) {
  PartitionFilter filter(net_, partitioning_, *lg_, 0.707, 1.0);
  VertexId a = CornerVertex(false, false);
  VertexId b = CornerVertex(true, true);
  auto kept = filter.Filter(a, b);
  PartitionId pa = partitioning_.PartitionOf(a);
  PartitionId pb = partitioning_.PartitionOf(b);
  EXPECT_NE(std::find(kept.begin(), kept.end(), pa), kept.end());
  EXPECT_NE(std::find(kept.begin(), kept.end(), pb), kept.end());
}

TEST_F(PartitionFilterTest, IntraPartitionLegKeepsOnlyThatPartition) {
  PartitionFilter filter(net_, partitioning_, *lg_, 0.707, 1.0);
  // Find two distinct vertices in the same partition.
  const auto& members = partitioning_.partition_vertices[0];
  ASSERT_GE(members.size(), 2u);
  auto kept = filter.Filter(members[0], members[1]);
  EXPECT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 0);
}

TEST_F(PartitionFilterTest, PrunesSubstantiallyOnDiagonalLeg) {
  PartitionFilter filter(net_, partitioning_, *lg_, 0.707, 1.0);
  VertexId a = CornerVertex(false, false);
  VertexId b = CornerVertex(true, true);
  auto kept = filter.Filter(a, b);
  // Some pruning must happen (opposite-direction partitions fail the
  // direction rule).
  EXPECT_LT(static_cast<int32_t>(kept.size()),
            partitioning_.num_partitions());
  EXPECT_GE(kept.size(), 2u);
}

TEST_F(PartitionFilterTest, BackwardPartitionsFailDirectionRule) {
  PartitionFilter filter(net_, partitioning_, *lg_, 0.707, 1.0);
  // Leg from the SW corner to the map center: NE-most partitions past the
  // center may stay (cost rule), but the partition at the far SW->NE
  // *opposite* corner of the leg origin... verify the partition containing
  // the NE corner is excluded for a SW-center leg that stops mid-map.
  VertexId a = CornerVertex(false, false);
  // Mid-map vertex: closest to centroid of everything.
  Point mid{(net_.bounds().min.x + net_.bounds().max.x) / 2,
            (net_.bounds().min.y + net_.bounds().max.y) / 2};
  VertexId m = 0;
  for (VertexId v = 0; v < net_.num_vertices(); ++v) {
    if (DistanceSquared(net_.coord(v), mid) <
        DistanceSquared(net_.coord(m), mid)) {
      m = v;
    }
  }
  auto kept = filter.Filter(m, a);  // heading SW from the center
  // The NE-corner partition lies in the opposite direction; must be gone.
  PartitionId ne = partitioning_.PartitionOf(CornerVertex(true, true));
  EXPECT_EQ(std::find(kept.begin(), kept.end(), ne), kept.end());
}

TEST_F(PartitionFilterTest, LooserLambdaKeepsMore) {
  PartitionFilter tight(net_, partitioning_, *lg_, 0.9, 1.0);
  PartitionFilter loose(net_, partitioning_, *lg_, 0.0, 1.0);
  VertexId a = CornerVertex(false, false);
  VertexId b = CornerVertex(true, true);
  EXPECT_LE(tight.Filter(a, b).size(), loose.Filter(a, b).size());
}

TEST_F(PartitionFilterTest, LargerEpsilonKeepsMore) {
  PartitionFilter tight(net_, partitioning_, *lg_, 0.0, 0.05);
  PartitionFilter loose(net_, partitioning_, *lg_, 0.0, 2.0);
  VertexId a = CornerVertex(false, false);
  VertexId b = CornerVertex(true, true);
  EXPECT_LE(tight.Filter(a, b).size(), loose.Filter(a, b).size());
}

TEST_F(PartitionFilterTest, MaskCoversExactlyKeptPartitions) {
  PartitionFilter filter(net_, partitioning_, *lg_, 0.707, 1.0);
  VertexId a = CornerVertex(false, false);
  VertexId b = CornerVertex(true, true);
  auto kept = filter.Filter(a, b);
  std::vector<uint8_t> mask(net_.num_vertices(), 0);
  filter.AddToMask(kept, &mask);
  size_t expected = 0;
  for (PartitionId p : kept) {
    expected += partitioning_.partition_vertices[p].size();
  }
  size_t got = 0;
  for (uint8_t m : mask) got += m;
  EXPECT_EQ(got, expected);
  EXPECT_NEAR(filter.RetainedVertexFraction(kept),
              double(expected) / net_.num_vertices(), 1e-12);
}

TEST(PartitionFilterCraftedTest, DirectionAndCostRulesOnLineCity) {
  // Hand-built line city where both Algorithm 2 rules have exact, known
  // outcomes: 20 vertices on a line, 100 s per hop, four partitions of
  // five consecutive vertices (landmark = middle vertex by medoid).
  RoadNetwork::Builder b(1.0);
  for (int i = 0; i < 20; ++i) b.AddVertex({100.0 * i, 0.0});
  for (int i = 0; i + 1 < 20; ++i) {
    b.AddEdge(i, i + 1, 100.0);
    b.AddEdge(i + 1, i, 100.0);
  }
  RoadNetwork net = b.Build();

  MapPartitioning parts;
  parts.vertex_partition.resize(20);
  parts.partition_vertices.resize(4);
  for (VertexId v = 0; v < 20; ++v) {
    parts.vertex_partition[v] = v / 5;
    parts.partition_vertices[v / 5].push_back(v);
  }
  FinalizeGeometry(net, &parts);
  LandmarkGraph lg(net, parts);
  PartitionFilter filter(net, parts, lg, /*lambda=*/0.5, /*epsilon=*/0.5);

  auto contains = [](const std::vector<PartitionId>& kept, PartitionId p) {
    return std::find(kept.begin(), kept.end(), p) != kept.end();
  };

  // Eastbound leg partition 0 -> 2. Partition 1 lies on the way: direction
  // cosine exactly 1 and zero extra landmark cost, so both rules pass.
  // Partition 3 is past the destination: direction passes (cosine 1) but
  // the detour doubles the landmark cost — 2000 s via l3 vs 1000 s direct,
  // above the (1 + 0.5) bound — so the COST rule alone must drop it.
  std::vector<PartitionId> east = filter.Filter(2, 12);
  EXPECT_TRUE(contains(east, 0));
  EXPECT_TRUE(contains(east, 1));
  EXPECT_TRUE(contains(east, 2));
  EXPECT_FALSE(contains(east, 3));

  // Westbound leg partition 2 -> 0. Partition 3 now lies *behind* the
  // travel direction (cosine -1 < lambda): the DIRECTION rule alone drops
  // it, and no epsilon can readmit it.
  std::vector<PartitionId> west = filter.Filter(12, 2);
  EXPECT_TRUE(contains(west, 1));
  EXPECT_FALSE(contains(west, 3));
  PartitionFilter loose(net, parts, lg, /*lambda=*/0.5, /*epsilon=*/10.0);
  EXPECT_FALSE(contains(loose.Filter(12, 2), 3));

  // Short leg partition 0 -> 1. Partition 2 passes direction but triples
  // the landmark cost (1500 s via l2 vs 500 s direct): excluded at
  // epsilon = 0.5, readmitted once epsilon is loose enough.
  std::vector<PartitionId> short_leg = filter.Filter(2, 7);
  EXPECT_FALSE(contains(short_leg, 2));
  EXPECT_FALSE(contains(short_leg, 3));
  EXPECT_TRUE(contains(loose.Filter(2, 7), 2));
}

}  // namespace
}  // namespace mtshare
