#include "sched/route_planner.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_generators.h"
#include "partition/bipartite_partitioner.h"

namespace mtshare {
namespace {

class RoutePlannerTest : public ::testing::Test {
 protected:
  RoutePlannerTest() {
    GridCityOptions opt;
    opt.rows = 16;
    opt.cols = 16;
    opt.seed = 13;
    net_ = MakeGridCity(opt);
    partitioning_ = GridPartition(net_, 16);
    lg_ = std::make_unique<LandmarkGraph>(net_, partitioning_);
    oracle_ = std::make_unique<DistanceOracle>(net_);

    // Simple history: every vertex sends trips toward the max-x edge so
    // the east side carries encounter mass.
    VertexId east = 0;
    for (VertexId v = 0; v < net_.num_vertices(); ++v) {
      if (net_.coord(v).x > net_.coord(east).x) east = v;
    }
    std::vector<OdPair> trips;
    Rng rng(3);
    for (VertexId v = 0; v < net_.num_vertices(); ++v) {
      if (v != east) trips.emplace_back(v, east);
    }
    transitions_ = TransitionModel::Build(
        net_.num_vertices(), partitioning_.num_partitions(),
        partitioning_.vertex_partition, trips);
    planner_ = std::make_unique<RoutePlanner>(
        net_, partitioning_, *lg_, &transitions_, oracle_.get(),
        RoutePlannerOptions{});
  }

  RideRequest MakeRequest(VertexId o, VertexId d, Seconds t, double rho) {
    RideRequest r;
    r.id = 0;
    r.origin = o;
    r.destination = d;
    r.release_time = t;
    r.direct_cost = oracle_->Cost(o, d);
    r.deadline = t + rho * r.direct_cost;
    return r;
  }

  RoadNetwork net_;
  MapPartitioning partitioning_;
  std::unique_ptr<LandmarkGraph> lg_;
  std::unique_ptr<DistanceOracle> oracle_;
  TransitionModel transitions_;
  std::unique_ptr<RoutePlanner> planner_;
};

TEST_F(RoutePlannerTest, BasicLegNearShortestPathCost) {
  // Partition filtering trades exact optimality for pruning: the filtered
  // leg can exceed the true shortest path when the optimum weaves through
  // direction-rule-pruned partitions, but must stay within a modest
  // stretch and usually matches exactly.
  DijkstraSearch reference(net_);
  Rng rng(7);
  int exact = 0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    VertexId a = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    VertexId b = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    Path leg = planner_->PlanBasicLeg(a, b);
    ASSERT_TRUE(leg.valid) << a << "->" << b;
    Seconds optimum = reference.Cost(a, b);
    EXPECT_GE(leg.cost, optimum - 1e-9) << a << "->" << b;
    // Cost-rule slack bound: stretch stays within (1 + epsilon) = 2.
    EXPECT_LE(leg.cost, optimum * 2.0 + 1e-9) << a << "->" << b;
    if (std::abs(leg.cost - optimum) < 1e-9) ++exact;
  }
  EXPECT_GE(exact, trials / 2);
}

TEST_F(RoutePlannerTest, BasicLegTrivialForSameVertex) {
  Path leg = planner_->PlanBasicLeg(5, 5);
  ASSERT_TRUE(leg.valid);
  EXPECT_DOUBLE_EQ(leg.cost, 0.0);
}

TEST_F(RoutePlannerTest, PlanRouteEmptyScheduleValid) {
  auto planned = planner_->PlanRoute(3, 100.0, Schedule(), false);
  EXPECT_TRUE(planned.valid);
  EXPECT_TRUE(planned.event_arrivals.empty());
}

TEST_F(RoutePlannerTest, PlanRouteArrivalsMonotoneAndDeadlineSafe) {
  RideRequest r = MakeRequest(0, net_.num_vertices() - 1, 0.0, 1.6);
  Schedule s = Schedule::WithInsertion(Schedule(), r, 0, 0);
  auto planned = planner_->PlanRoute(10, 0.0, s, false);
  ASSERT_TRUE(planned.valid);
  ASSERT_EQ(planned.event_arrivals.size(), 2u);
  EXPECT_LE(planned.event_arrivals[0], planned.event_arrivals[1]);
  EXPECT_LE(planned.event_arrivals[1], r.deadline + 1e-9);
  // The route's vertices trace pickup then dropoff.
  EXPECT_EQ(planned.path.front(), 10);
  EXPECT_EQ(planned.path.back(), r.destination);
}

TEST_F(RoutePlannerTest, PlanRouteRejectsImpossibleDeadline) {
  RideRequest r = MakeRequest(0, net_.num_vertices() - 1, 0.0, 1.2);
  Schedule s = Schedule::WithInsertion(Schedule(), r, 0, 0);
  // Taxi starts at the far corner: approach alone blows the slack.
  auto planned = planner_->PlanRoute(net_.num_vertices() - 1, 0.0, s, false);
  EXPECT_FALSE(planned.valid);
}

TEST_F(RoutePlannerTest, EncounterMassHigherTowardTripSinks) {
  // Taxi heading east (all trips end east): east-side partitions must have
  // positive mass.
  Point east_dir{1000.0, 0.0};
  double max_mass = 0.0;
  for (PartitionId p = 0; p < partitioning_.num_partitions(); ++p) {
    max_mass = std::max(max_mass,
                        planner_->PartitionEncounterMass(p, east_dir));
  }
  EXPECT_GT(max_mass, 0.0);
}

TEST_F(RoutePlannerTest, ProbabilisticLegRespectsBudget) {
  DijkstraSearch reference(net_);
  VertexId a = 0;
  VertexId b = net_.num_vertices() - 1;
  Seconds shortest = reference.Cost(a, b);
  Point dir{net_.coord(b).x - net_.coord(a).x,
            net_.coord(b).y - net_.coord(a).y};
  Path leg = planner_->PlanProbabilisticLeg(a, b, dir, shortest * 1.5);
  if (leg.valid) {
    EXPECT_LE(leg.cost, shortest * 1.5 + 1e-9);
    EXPECT_GE(leg.cost, shortest - 1e-9);
    EXPECT_EQ(leg.front(), a);
    EXPECT_EQ(leg.back(), b);
  }
  // With a generous budget a valid leg must exist.
  Path generous = planner_->PlanProbabilisticLeg(a, b, dir, shortest * 10.0);
  EXPECT_TRUE(generous.valid);
}

TEST_F(RoutePlannerTest, ProbabilisticFailsOnImpossibleBudget) {
  VertexId a = 0;
  VertexId b = net_.num_vertices() - 1;
  Point dir{1.0, 1.0};
  Path leg = planner_->PlanProbabilisticLeg(a, b, dir, 1.0 /*one second*/);
  EXPECT_FALSE(leg.valid);
  EXPECT_GT(planner_->probabilistic_fallbacks(), 0);
}

TEST_F(RoutePlannerTest, ProbabilisticRouteFollowsMass) {
  // With slack, the probabilistic leg should accumulate at least as much
  // per-vertex encounter mass as the shortest path does.
  DijkstraSearch reference(net_);
  VertexId a = 0;
  VertexId b = net_.num_vertices() - 1;
  Point dir{net_.coord(b).x - net_.coord(a).x,
            net_.coord(b).y - net_.coord(a).y};
  Path shortest = reference.FindPath(a, b);
  Path prob = planner_->PlanProbabilisticLeg(a, b, dir, shortest.cost * 2.0);
  ASSERT_TRUE(prob.valid);

  auto mass_of = [&](const Path& p) {
    double acc = 0.0;
    for (VertexId v : p.vertices) {
      PartitionId part = partitioning_.PartitionOf(v);
      acc += planner_->PartitionEncounterMass(part, dir) /
             std::max<size_t>(1, partitioning_.partition_vertices[part].size());
    }
    return acc;
  };
  EXPECT_GE(mass_of(prob), mass_of(shortest) * 0.8);
}

TEST_F(RoutePlannerTest, ProbPlanRouteFallsBackAndStaysFeasible) {
  RideRequest r = MakeRequest(0, net_.num_vertices() - 1, 0.0, 1.25);
  Schedule s = Schedule::WithInsertion(Schedule(), r, 0, 0);
  Point dir{1.0, 0.0};
  auto planned = planner_->PlanRoute(0, 0.0, s, /*probabilistic=*/true, dir);
  ASSERT_TRUE(planned.valid);
  EXPECT_LE(planned.event_arrivals[1], r.deadline + 1e-9);
}

TEST_F(RoutePlannerTest, LegCountersAdvance) {
  int64_t b0 = planner_->basic_legs();
  planner_->PlanBasicLeg(0, 20);
  EXPECT_EQ(planner_->basic_legs(), b0 + 1);
  int64_t p0 = planner_->probabilistic_legs();
  planner_->PlanProbabilisticLeg(0, 20, Point{1, 0}, 1e9);
  EXPECT_EQ(planner_->probabilistic_legs(), p0 + 1);
}

}  // namespace
}  // namespace mtshare
