#include "payment/payment_model.h"

#include <gtest/gtest.h>

namespace mtshare {
namespace {

PaymentConfig DefaultConfig() {
  return PaymentConfig{};  // beta 0.8, eta 0.01, 8 yuan / 2 km / 1.9 per km
}

TEST(RegularFareTest, BaseFareCoversShortTrips) {
  PaymentConfig c = DefaultConfig();
  EXPECT_DOUBLE_EQ(RegularFare(0.0, c), 8.0);
  EXPECT_DOUBLE_EQ(RegularFare(1500.0, c), 8.0);
  EXPECT_DOUBLE_EQ(RegularFare(2000.0, c), 8.0);
}

TEST(RegularFareTest, PerKmBeyondBase) {
  PaymentConfig c = DefaultConfig();
  EXPECT_DOUBLE_EQ(RegularFare(5000.0, c), 8.0 + 3.0 * 1.9);
  EXPECT_DOUBLE_EQ(RegularFare(2500.0, c), 8.0 + 0.5 * 1.9);
}

TEST(SettleEpisodeTest, SinglePassengerNoDetourPaysRegular) {
  PaymentConfig c = DefaultConfig();
  // One rider, driven distance == direct distance: B = 0.
  std::vector<EpisodePassenger> riders = {{1, 5000.0, 5000.0}};
  EpisodeSettlement s = SettleEpisode(riders, 5000.0, c);
  EXPECT_DOUBLE_EQ(s.benefit, 0.0);
  ASSERT_EQ(s.passengers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.passengers[0].shared_fare,
                   s.passengers[0].regular_fare);
  EXPECT_DOUBLE_EQ(s.driver_income, s.passengers[0].regular_fare);
}

TEST(SettleEpisodeTest, SharedEpisodeProducesPositiveBenefit) {
  PaymentConfig c = DefaultConfig();
  // Two riders with 6 km direct trips sharing a 8 km drive.
  std::vector<EpisodePassenger> riders = {{1, 6000.0, 7000.0},
                                          {2, 6000.0, 7500.0}};
  EpisodeSettlement s = SettleEpisode(riders, 8000.0, c);
  double f_s = RegularFare(6000.0, c);
  double f_route = RegularFare(8000.0, c);
  EXPECT_NEAR(s.benefit, 2 * f_s - f_route, 1e-9);
  EXPECT_GT(s.benefit, 0.0);
  // eq. (8): everyone pays strictly less than regular.
  for (const auto& p : s.passengers) {
    EXPECT_LT(p.shared_fare, p.regular_fare);
    EXPECT_GT(p.shared_fare, 0.0);
  }
  // Money conservation: fares collected == driver income.
  double collected = s.passengers[0].shared_fare + s.passengers[1].shared_fare;
  EXPECT_NEAR(collected, s.driver_income, 1e-9);
  // Driver earns more than the plain route fare.
  EXPECT_GT(s.driver_income, f_route);
}

TEST(SettleEpisodeTest, LargerDetourGetsLargerCompensation) {
  PaymentConfig c = DefaultConfig();
  std::vector<EpisodePassenger> riders = {{1, 6000.0, 6000.0},   // no detour
                                          {2, 6000.0, 9000.0}};  // 50% detour
  EpisodeSettlement s = SettleEpisode(riders, 9000.0, c);
  ASSERT_TRUE(s.benefit > 0.0);
  double saving_1 = s.passengers[0].regular_fare - s.passengers[0].shared_fare;
  double saving_2 = s.passengers[1].regular_fare - s.passengers[1].shared_fare;
  EXPECT_GT(saving_2, saving_1);
  // Base rate eta ensures the zero-detour rider still gains.
  EXPECT_GT(saving_1, 0.0);
}

TEST(SettleEpisodeTest, DetourRatesFollowEquationSix) {
  PaymentConfig c = DefaultConfig();
  std::vector<EpisodePassenger> riders = {{1, 4000.0, 5000.0}};
  EpisodeSettlement s = SettleEpisode(riders, 5000.0, c);
  EXPECT_NEAR(s.passengers[0].detour_rate, 0.01 + 1000.0 / 4000.0, 1e-12);
}

TEST(SettleEpisodeTest, BetaSplitsBenefit) {
  PaymentConfig c = DefaultConfig();
  c.beta = 0.5;
  std::vector<EpisodePassenger> riders = {{1, 6000.0, 6500.0},
                                          {2, 6000.0, 6500.0}};
  EpisodeSettlement s = SettleEpisode(riders, 7000.0, c);
  ASSERT_GT(s.benefit, 0.0);
  double passenger_savings = 0.0;
  for (const auto& p : s.passengers) {
    passenger_savings += p.regular_fare - p.shared_fare;
  }
  EXPECT_NEAR(passenger_savings, 0.5 * s.benefit, 1e-9);
  EXPECT_NEAR(s.driver_income - s.ridesharing_fare, 0.5 * s.benefit, 1e-9);
}

TEST(SettleEpisodeTest, NegativeBenefitClampedNoLoss) {
  PaymentConfig c = DefaultConfig();
  // Single rider on a long probabilistic detour: driven 9 km vs 5 km direct.
  std::vector<EpisodePassenger> riders = {{1, 5000.0, 9000.0}};
  EpisodeSettlement s = SettleEpisode(riders, 9000.0, c);
  EXPECT_DOUBLE_EQ(s.benefit, 0.0);
  EXPECT_DOUBLE_EQ(s.passengers[0].shared_fare, s.passengers[0].regular_fare);
}

TEST(SettleEpisodeTest, EqualDetoursSplitEqually) {
  PaymentConfig c = DefaultConfig();
  std::vector<EpisodePassenger> riders = {{1, 6000.0, 7200.0},
                                          {2, 6000.0, 7200.0}};
  EpisodeSettlement s = SettleEpisode(riders, 8000.0, c);
  ASSERT_GT(s.benefit, 0.0);
  EXPECT_NEAR(s.passengers[0].shared_fare, s.passengers[1].shared_fare, 1e-9);
}

TEST(SettleEpisodeTest, NumericJitterDetourClamped) {
  PaymentConfig c = DefaultConfig();
  // traveled marginally below direct due to rounding: sigma stays at eta.
  std::vector<EpisodePassenger> riders = {{1, 5000.0, 4999.9999}};
  EpisodeSettlement s = SettleEpisode(riders, 5000.0, c);
  EXPECT_NEAR(s.passengers[0].detour_rate, c.eta, 1e-9);
}

}  // namespace
}  // namespace mtshare
