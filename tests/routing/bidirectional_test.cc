#include "routing/bidirectional.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_generators.h"
#include "routing/dijkstra.h"

namespace mtshare {
namespace {

TEST(BidirectionalTest, AgreesWithDijkstraOnGrid) {
  GridCityOptions opt;
  opt.rows = 14;
  opt.cols = 14;
  opt.seed = 5;
  RoadNetwork net = MakeGridCity(opt);
  BidirectionalSearch bidi(net);
  DijkstraSearch dijkstra(net);
  Rng rng(101);
  for (int i = 0; i < 80; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    EXPECT_NEAR(bidi.Cost(s, t), dijkstra.Cost(s, t), 1e-9) << s << "->" << t;
  }
}

TEST(BidirectionalTest, AgreesOnAsymmetricOneWayNetwork) {
  // One-way heavy network: forward and backward searches genuinely differ.
  GridCityOptions opt;
  opt.rows = 12;
  opt.cols = 12;
  opt.one_way_fraction = 0.5;
  opt.seed = 7;
  RoadNetwork net = MakeGridCity(opt);
  BidirectionalSearch bidi(net);
  DijkstraSearch dijkstra(net);
  Rng rng(103);
  for (int i = 0; i < 60; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    EXPECT_NEAR(bidi.Cost(s, t), dijkstra.Cost(s, t), 1e-9) << s << "->" << t;
  }
}

TEST(BidirectionalTest, PathIsContiguousAndCostConsistent) {
  GridCityOptions opt;
  opt.rows = 12;
  opt.cols = 12;
  RoadNetwork net = MakeGridCity(opt);
  BidirectionalSearch bidi(net);
  Rng rng(107);
  for (int i = 0; i < 20; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    Path p = bidi.FindPath(s, t);
    ASSERT_TRUE(p.valid);
    ASSERT_EQ(p.front(), s);
    ASSERT_EQ(p.back(), t);
    Seconds acc = 0.0;
    for (size_t k = 0; k + 1 < p.vertices.size(); ++k) {
      Seconds best = kInfiniteCost;
      for (const Arc& arc : net.OutArcs(p.vertices[k])) {
        if (arc.head == p.vertices[k + 1]) best = std::min(best, arc.cost);
      }
      ASSERT_LT(best, kInfiniteCost) << "missing arc";
      acc += best;
    }
    EXPECT_NEAR(acc, p.cost, 1e-9);
  }
}

TEST(BidirectionalTest, RandomPathsUseRealArcsAndMatchDijkstraCost) {
  // Randomized structural check on a one-way-heavy network: every
  // consecutive vertex pair of FindPath must be a real arc (the meeting
  // point of the two frontiers is where a stitching bug would fabricate a
  // nonexistent hop), and the summed arc costs must equal the independent
  // Dijkstra cost — not just the path's own claimed cost.
  GridCityOptions opt;
  opt.rows = 13;
  opt.cols = 13;
  opt.one_way_fraction = 0.4;
  opt.seed = 19;
  RoadNetwork net = MakeGridCity(opt);
  BidirectionalSearch bidi(net);
  DijkstraSearch dijkstra(net);
  Rng rng(113);
  int valid_paths = 0;
  for (int i = 0; i < 60; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    Seconds ref = dijkstra.Cost(s, t);
    Path p = bidi.FindPath(s, t);
    if (ref == kInfiniteCost) {
      EXPECT_FALSE(p.valid) << s << "->" << t;
      continue;
    }
    ASSERT_TRUE(p.valid) << s << "->" << t;
    ASSERT_EQ(p.front(), s);
    ASSERT_EQ(p.back(), t);
    Seconds acc = 0.0;
    for (size_t k = 0; k + 1 < p.vertices.size(); ++k) {
      Seconds best = kInfiniteCost;
      for (const Arc& arc : net.OutArcs(p.vertices[k])) {
        if (arc.head == p.vertices[k + 1]) best = std::min(best, arc.cost);
      }
      ASSERT_LT(best, kInfiniteCost)
          << "fabricated arc " << p.vertices[k] << "->" << p.vertices[k + 1];
      acc += best;
    }
    EXPECT_NEAR(acc, ref, 1e-9) << s << "->" << t;
    EXPECT_NEAR(p.cost, ref, 1e-9) << s << "->" << t;
    ++valid_paths;
  }
  EXPECT_GT(valid_paths, 0);
}

TEST(BidirectionalTest, SettlesFewerVerticesThanDijkstra) {
  GridCityOptions opt;
  opt.rows = 24;
  opt.cols = 24;
  RoadNetwork net = MakeGridCity(opt);
  BidirectionalSearch bidi(net);
  DijkstraSearch dijkstra(net);
  VertexId s = 0;
  VertexId t = net.num_vertices() - 1;
  bidi.Cost(s, t);
  dijkstra.Cost(s, t);
  EXPECT_LT(bidi.last_settled_count(), dijkstra.last_settled_count());
}

TEST(BidirectionalTest, TrivialAndUnreachable) {
  RoadNetwork::Builder b(1.0);
  b.AddVertex({0, 0});
  b.AddVertex({10, 0});
  b.AddEdge(0, 1, 10);
  RoadNetwork net = b.Build();
  BidirectionalSearch bidi(net);
  EXPECT_DOUBLE_EQ(bidi.Cost(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(bidi.Cost(0, 1), 10.0);
  EXPECT_EQ(bidi.Cost(1, 0), kInfiniteCost);
  EXPECT_FALSE(bidi.FindPath(1, 0).valid);
}

TEST(BidirectionalTest, RepeatedQueriesIndependent) {
  RingCityOptions opt;
  opt.rings = 5;
  opt.spokes = 12;
  RoadNetwork net = MakeRingCity(opt);
  BidirectionalSearch reused(net);
  DijkstraSearch reference(net);
  Rng rng(109);
  for (int i = 0; i < 40; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    EXPECT_NEAR(reused.Cost(s, t), reference.Cost(s, t), 1e-9);
  }
}

}  // namespace
}  // namespace mtshare
