#include "routing/distance_oracle.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_generators.h"

namespace mtshare {
namespace {

TEST(DistanceOracleTest, ExactModeMatchesDijkstra) {
  GridCityOptions gopt;
  gopt.rows = 9;
  gopt.cols = 9;
  RoadNetwork net = MakeGridCity(gopt);
  DistanceOracle oracle(net);  // small -> exact
  EXPECT_TRUE(oracle.exact_mode());
  DijkstraSearch dijkstra(net);
  Rng rng(91);
  for (int i = 0; i < 50; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    EXPECT_DOUBLE_EQ(oracle.Cost(s, t), dijkstra.Cost(s, t));
  }
}

TEST(DistanceOracleTest, LruModeMatchesDijkstra) {
  GridCityOptions gopt;
  gopt.rows = 9;
  gopt.cols = 9;
  RoadNetwork net = MakeGridCity(gopt);
  OracleOptions oopt;
  oopt.backend = OracleBackend::kLru;  // auto would now pick CH here
  oopt.max_exact_vertices = 10;
  oopt.lru_rows = 8;
  DistanceOracle oracle(net, oopt);
  EXPECT_FALSE(oracle.exact_mode());
  DijkstraSearch dijkstra(net);
  Rng rng(93);
  for (int i = 0; i < 80; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    EXPECT_DOUBLE_EQ(oracle.Cost(s, t), dijkstra.Cost(s, t));
  }
}

TEST(DistanceOracleTest, RowReuseAvoidsRecomputation) {
  GridCityOptions gopt;
  gopt.rows = 8;
  gopt.cols = 8;
  RoadNetwork net = MakeGridCity(gopt);
  DistanceOracle oracle(net);
  for (VertexId t = 0; t < net.num_vertices(); ++t) oracle.Cost(0, t);
  EXPECT_EQ(oracle.row_misses(), 1);
  EXPECT_EQ(oracle.queries(), net.num_vertices());
}

TEST(DistanceOracleTest, LruEvictionStillCorrect) {
  GridCityOptions gopt;
  gopt.rows = 8;
  gopt.cols = 8;
  RoadNetwork net = MakeGridCity(gopt);
  OracleOptions oopt;
  oopt.backend = OracleBackend::kLru;  // auto would now pick CH here
  oopt.max_exact_vertices = 1;
  oopt.lru_rows = 2;  // tiny cache: constant eviction
  DistanceOracle oracle(net, oopt);
  DijkstraSearch dijkstra(net);
  // Cycle through 4 sources repeatedly.
  for (int round = 0; round < 3; ++round) {
    for (VertexId s = 0; s < 4; ++s) {
      EXPECT_DOUBLE_EQ(oracle.Cost(s, 20), dijkstra.Cost(s, 20));
    }
  }
  EXPECT_GT(oracle.row_misses(), 4);  // evictions forced recomputation
}

TEST(DistanceOracleTest, LruByteCapClampsRetainedRows) {
  // lru_rows was tuned on ~4.9k-vertex maps; on a 100k-vertex city the
  // same row count is gigabytes. lru_max_bytes clamps the retained rows
  // at construction: with a 1 KiB budget on 512-byte rows only 2 rows
  // survive, so cycling 4 sources must evict (uncapped: all 4 fit).
  GridCityOptions gopt;
  gopt.rows = 8;
  gopt.cols = 8;
  RoadNetwork net = MakeGridCity(gopt);
  OracleOptions capped;
  capped.backend = OracleBackend::kLru;
  capped.lru_rows = 64;
  capped.lru_shards = 1;
  capped.lru_max_bytes = net.num_vertices() * sizeof(Seconds) * 2;
  OracleOptions uncapped = capped;
  uncapped.lru_max_bytes = 0;
  DistanceOracle capped_oracle(net, capped);
  DistanceOracle uncapped_oracle(net, uncapped);
  DijkstraSearch dijkstra(net);
  for (int round = 0; round < 3; ++round) {
    for (VertexId s = 0; s < 4; ++s) {
      EXPECT_DOUBLE_EQ(capped_oracle.Cost(s, 20), dijkstra.Cost(s, 20));
      EXPECT_DOUBLE_EQ(uncapped_oracle.Cost(s, 20), dijkstra.Cost(s, 20));
    }
  }
  EXPECT_GT(capped_oracle.row_misses(), 4);  // cap forced evictions
  EXPECT_EQ(uncapped_oracle.row_misses(), 4);  // all four rows retained
}

TEST(DistanceOracleTest, SelfCostIsZeroWithoutRowFetch) {
  GridCityOptions gopt;
  gopt.rows = 6;
  gopt.cols = 6;
  RoadNetwork net = MakeGridCity(gopt);
  DistanceOracle oracle(net);
  EXPECT_DOUBLE_EQ(oracle.Cost(5, 5), 0.0);
  EXPECT_EQ(oracle.row_misses(), 0);
}

TEST(DistanceOracleTest, MemoryGrowsWithRows) {
  GridCityOptions gopt;
  gopt.rows = 8;
  gopt.cols = 8;
  RoadNetwork net = MakeGridCity(gopt);
  DistanceOracle oracle(net);
  size_t before = oracle.MemoryBytes();
  oracle.Row(0);
  EXPECT_GT(oracle.MemoryBytes(), before);
}

}  // namespace
}  // namespace mtshare
