#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "graph/graph_generators.h"
#include "routing/dijkstra.h"
#include "routing/distance_oracle.h"

namespace mtshare {
namespace {

// Runs in mtshare_thread_tests so the tsan preset checks it: many threads
// hammer one CH-backed oracle with point, one-to-many, and many-to-many
// queries at once. The engine pool must hand every thread its own ChQuery
// (stateful buffers) and the counters must not race; every answer must
// still equal the precomputed Dijkstra reference bit for bit.
TEST(ChConcurrencyTest, ConcurrentQueriesMatchDijkstra) {
  GridCityOptions gopt;
  gopt.rows = 10;
  gopt.cols = 10;
  gopt.one_way_fraction = 0.2;
  gopt.seed = 67;
  RoadNetwork net = MakeGridCity(gopt);
  OracleOptions oopt;
  oopt.backend = OracleBackend::kCh;
  DistanceOracle oracle(net, oopt);

  // Reference rows, computed before any threads start.
  const int32_t n = net.num_vertices();
  DijkstraSearch dijkstra(net);
  std::vector<std::vector<Seconds>> reference(n);
  for (VertexId v = 0; v < n; ++v) reference[v] = dijkstra.CostsFrom(v);

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 40;
  ThreadPool pool(kThreads);
  std::atomic<int> mismatches{0};
  std::vector<std::future<void>> futures;
  for (int w = 0; w < kThreads; ++w) {
    futures.push_back(pool.Submit([&, w] {
      Rng rng(671 + uint64_t(w));
      std::vector<VertexId> sources, targets;
      std::vector<Seconds> got;
      for (int round = 0; round < kRoundsPerThread; ++round) {
        VertexId s = VertexId(rng.NextInt(0, n - 1));
        VertexId t = VertexId(rng.NextInt(0, n - 1));
        if (oracle.Cost(s, t) != reference[s][t]) mismatches.fetch_add(1);

        targets.clear();
        for (int i = 0; i < 6; ++i) {
          targets.push_back(VertexId(rng.NextInt(0, n - 1)));
        }
        oracle.CostMany(s, targets, &got);
        for (size_t i = 0; i < targets.size(); ++i) {
          if (got[i] != reference[s][targets[i]]) mismatches.fetch_add(1);
        }

        sources.clear();
        for (int i = 0; i < 3; ++i) {
          sources.push_back(VertexId(rng.NextInt(0, n - 1)));
        }
        oracle.CostManyToMany(sources, targets, &got);
        for (size_t a = 0; a < sources.size(); ++a) {
          for (size_t b = 0; b < targets.size(); ++b) {
            if (got[a * targets.size() + b] !=
                reference[sources[a]][targets[b]]) {
              mismatches.fetch_add(1);
            }
          }
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(mismatches.load(), 0);

  // Counter sanity: every round issued 1 point + 1 CostMany + 3 m2m-source
  // queries; the pool saw at most kThreads engines.
  EXPECT_EQ(oracle.queries(), int64_t(kThreads) * kRoundsPerThread * 5);
  EXPECT_EQ(oracle.batch_queries(), int64_t(kThreads) * kRoundsPerThread * 2);
  ChQueryStats stats = oracle.ch_query_stats();
  EXPECT_GT(stats.point_queries, 0);
  EXPECT_GT(stats.bucket_queries, 0);
}

}  // namespace
}  // namespace mtshare
