#include "routing/dijkstra.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_generators.h"

namespace mtshare {
namespace {

// 0 -> 1 (10s), 1 -> 2 (10s), 0 -> 2 (25s), 2 -> 0 (5s).
RoadNetwork MakeTriangle() {
  RoadNetwork::Builder b(1.0);  // 1 m/s: cost == length
  b.AddVertex({0, 0});
  b.AddVertex({10, 0});
  b.AddVertex({20, 0});
  b.AddEdge(0, 1, 10);
  b.AddEdge(1, 2, 10);
  b.AddEdge(0, 2, 25);
  b.AddEdge(2, 0, 5);
  return b.Build();
}

TEST(DijkstraTest, PicksCheaperTwoHopPath) {
  RoadNetwork net = MakeTriangle();
  DijkstraSearch search(net);
  EXPECT_DOUBLE_EQ(search.Cost(0, 2), 20.0);
  Path p = search.FindPath(0, 2);
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.vertices, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(p.cost, 20.0);
}

TEST(DijkstraTest, SourceEqualsTarget) {
  RoadNetwork net = MakeTriangle();
  DijkstraSearch search(net);
  EXPECT_DOUBLE_EQ(search.Cost(1, 1), 0.0);
  Path p = search.FindPath(1, 1);
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.vertices, std::vector<VertexId>{1});
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  RoadNetwork::Builder b(1.0);
  b.AddVertex({0, 0});
  b.AddVertex({10, 0});
  b.AddEdge(0, 1, 10);  // no way back
  RoadNetwork net = b.Build();
  DijkstraSearch search(net);
  EXPECT_EQ(search.Cost(1, 0), kInfiniteCost);
  EXPECT_FALSE(search.FindPath(1, 0).valid);
}

TEST(DijkstraTest, RepeatedQueriesReuseBuffersCorrectly) {
  GridCityOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  RoadNetwork net = MakeGridCity(opt);
  DijkstraSearch reused(net);
  Rng rng(77);
  for (int i = 0; i < 30; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    DijkstraSearch fresh(net);
    EXPECT_DOUBLE_EQ(reused.Cost(s, t), fresh.Cost(s, t)) << s << "->" << t;
  }
}

TEST(DijkstraTest, CostsFromMatchesPairwise) {
  GridCityOptions opt;
  opt.rows = 7;
  opt.cols = 7;
  RoadNetwork net = MakeGridCity(opt);
  DijkstraSearch search(net);
  auto row = search.CostsFrom(0);
  ASSERT_EQ(row.size(), size_t(net.num_vertices()));
  for (VertexId t = 0; t < net.num_vertices(); t += 7) {
    EXPECT_DOUBLE_EQ(row[t], search.Cost(0, t));
  }
}

TEST(DijkstraTest, CostsToTargetsAligned) {
  RoadNetwork net = MakeTriangle();
  DijkstraSearch search(net);
  std::vector<VertexId> targets = {2, 0, 1};
  auto costs = search.CostsToTargets(0, targets);
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_DOUBLE_EQ(costs[0], 20.0);
  EXPECT_DOUBLE_EQ(costs[1], 0.0);
  EXPECT_DOUBLE_EQ(costs[2], 10.0);
}

TEST(DijkstraTest, AllowedMaskRestrictsExpansion) {
  RoadNetwork net = MakeTriangle();
  DijkstraSearch search(net);
  // Forbid vertex 1: only the direct 0->2 edge remains.
  std::vector<uint8_t> allowed = {1, 0, 1};
  SearchOptions opt;
  opt.allowed_vertices = &allowed;
  EXPECT_DOUBLE_EQ(search.Cost(0, 2, opt), 25.0);
  Path p = search.FindPath(0, 2, opt);
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.vertices, (std::vector<VertexId>{0, 2}));
}

TEST(DijkstraTest, MaskedSearchSettlesFewerVertices) {
  GridCityOptions gopt;
  gopt.rows = 16;
  gopt.cols = 16;
  RoadNetwork net = MakeGridCity(gopt);
  DijkstraSearch search(net);
  VertexId s = 0;
  VertexId t = net.num_vertices() - 1;
  search.Cost(s, t);
  int64_t full = search.last_settled_count();

  // Allow only a band of vertices around the straight line s-t.
  std::vector<uint8_t> allowed(net.num_vertices(), 0);
  Point a = net.coord(s);
  Point b = net.coord(t);
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    Point p = net.coord(v);
    // Distance from p to segment ab, cheap band test via cross product.
    double cross = std::abs((b.x - a.x) * (p.y - a.y) -
                            (b.y - a.y) * (p.x - a.x)) /
                   (Distance(a, b) + 1e-9);
    if (cross < 500.0) allowed[v] = 1;
  }
  SearchOptions opt;
  opt.allowed_vertices = &allowed;
  Seconds masked_cost = search.Cost(s, t, opt);
  EXPECT_LT(search.last_settled_count(), full);
  EXPECT_GE(masked_cost, search.Cost(s, t) - 1e-9);  // mask can't beat optimum
}

TEST(DijkstraTest, VertexWeightObjectiveMinimizesWeights) {
  // Square: 0->1->3 and 0->2->3, same travel costs, but vertex 1 is heavy.
  RoadNetwork::Builder b(1.0);
  b.AddVertex({0, 0});
  b.AddVertex({10, 10});
  b.AddVertex({10, -10});
  b.AddVertex({20, 0});
  b.AddEdge(0, 1, 10);
  b.AddEdge(1, 3, 10);
  b.AddEdge(0, 2, 10);
  b.AddEdge(2, 3, 10);
  RoadNetwork net = b.Build();
  DijkstraSearch search(net);
  std::vector<double> weights = {0.0, 100.0, 1.0, 0.0};
  SearchOptions opt;
  opt.vertex_weights = &weights;
  Path p = search.FindPath(0, 3, opt);
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.vertices, (std::vector<VertexId>{0, 2, 3}));
  // Path cost still reports true travel seconds.
  EXPECT_DOUBLE_EQ(p.cost, 20.0);
}

TEST(DijkstraTest, MaxObjectiveAborts) {
  GridCityOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  RoadNetwork net = MakeGridCity(opt);
  DijkstraSearch search(net);
  SearchOptions sopt;
  sopt.max_objective = 1.0;  // one second: nothing nontrivial reachable
  EXPECT_EQ(search.Cost(0, net.num_vertices() - 1, sopt), kInfiniteCost);
}

TEST(PathTest, ConcatJoinsAtSharedVertex) {
  Path a{{1, 2, 3}, 10.0, true};
  Path b{{3, 4}, 5.0, true};
  Path c = ConcatPaths(a, b);
  ASSERT_TRUE(c.valid);
  EXPECT_EQ(c.vertices, (std::vector<VertexId>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(c.cost, 15.0);
}

TEST(PathTest, ConcatWithInvalidYieldsInvalid) {
  Path a{{1, 2}, 10.0, true};
  EXPECT_FALSE(ConcatPaths(a, Path::Invalid()).valid);
  EXPECT_FALSE(ConcatPaths(Path::Invalid(), a).valid);
}

}  // namespace
}  // namespace mtshare
