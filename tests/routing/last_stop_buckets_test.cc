#include "routing/last_stop_buckets.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "graph/graph_generators.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"

namespace mtshare {
namespace {

// The bucket store's contract is the CH subsystem's: BIT-IDENTICAL costs.
// Arc costs live on the dyadic grid, so deposit + sweep sums are exact and
// every comparison below is EXPECT_EQ on doubles.

RoadNetwork TestCity(uint64_t seed) {
  GridCityOptions gopt;
  gopt.rows = 9;
  gopt.cols = 9;
  gopt.one_way_fraction = 0.3;  // asymmetric distances
  gopt.seed = seed;
  return MakeGridCity(gopt);
}

/// Anchors every taxi at anchors[id] (one FlushDirty from the given map).
void Anchor(LastStopBuckets* buckets, const std::vector<VertexId>& anchors) {
  buckets->FlushDirty([&](TaxiId id) { return anchors[id]; });
}

TEST(LastStopBucketsTest, SweepMatchesDijkstraForEveryOriginWithinBudget) {
  RoadNetwork net = TestCity(41);
  ContractionHierarchy ch = ContractionHierarchy::Build(net);
  DijkstraSearch dijkstra(net);

  const int32_t kTaxis = 12;
  Rng rng(7);
  std::vector<VertexId> anchors(kTaxis);
  for (VertexId& a : anchors) {
    a = static_cast<VertexId>(rng.NextInt(0, net.num_vertices() - 1));
  }
  LastStopBuckets buckets(ch, kTaxis);
  Anchor(&buckets, anchors);

  // Directed ground truth anchor -> origin, per taxi.
  std::vector<std::vector<Seconds>> rows(kTaxis);
  for (TaxiId id = 0; id < kTaxis; ++id) {
    rows[id] = dijkstra.CostsFrom(anchors[id]);
  }

  const Seconds budget = 400.0;
  for (VertexId origin = 0; origin < net.num_vertices(); origin += 3) {
    buckets.Sweep(origin, budget);
    for (TaxiId id = 0; id < kTaxis; ++id) {
      const Seconds truth = rows[id][origin];
      const Seconds swept = buckets.SweptDistance(id);
      if (truth <= budget) {
        // Within budget the sweep reports the exact distance — the
        // accept/reject predicate `now + d <= deadline` cannot diverge
        // from a per-taxi oracle probe.
        EXPECT_EQ(swept, truth) << "taxi " << id << " origin " << origin;
      } else {
        // Beyond the (slack-widened) cutoff: absent or an over-budget
        // partial min; either way the exact re-check rejects it.
        EXPECT_GT(swept, budget) << "taxi " << id << " origin " << origin;
      }
    }
    // The found set is exactly the within-cutoff taxis (entries past the
    // cutoff are never recorded).
    for (TaxiId id : buckets.found()) {
      EXPECT_LE(buckets.SweptDistance(id),
                budget + LastStopBuckets::kBudgetSlack);
      EXPECT_EQ(buckets.SweptDistance(id), rows[id][origin]);
    }
  }
}

TEST(LastStopBucketsTest, DirtyChurnKeepsStoreExact) {
  RoadNetwork net = TestCity(43);
  ContractionHierarchy ch = ContractionHierarchy::Build(net);
  DijkstraSearch dijkstra(net);

  const int32_t kTaxis = 8;
  Rng rng(11);
  std::vector<VertexId> anchors(kTaxis, 0);
  LastStopBuckets buckets(ch, kTaxis);
  Anchor(&buckets, anchors);

  // Move random subsets around repeatedly; after every flush the sweep
  // must read distances from the NEW anchors only — stale deposits of a
  // moved taxi may not survive (swap-pop removal integrity).
  for (int round = 0; round < 20; ++round) {
    for (TaxiId id = 0; id < kTaxis; ++id) {
      if (rng.NextInt(0, 2) == 0) {
        anchors[id] =
            static_cast<VertexId>(rng.NextInt(0, net.num_vertices() - 1));
        buckets.MarkDirty(id);
        buckets.MarkDirty(id);  // idempotent
      }
    }
    Anchor(&buckets, anchors);
    const VertexId origin =
        static_cast<VertexId>(rng.NextInt(0, net.num_vertices() - 1));
    buckets.Sweep(origin, kInfiniteCost);
    for (TaxiId id = 0; id < kTaxis; ++id) {
      EXPECT_EQ(buckets.SweptDistance(id),
                dijkstra.CostsFrom(anchors[id])[origin])
          << "round " << round << " taxi " << id;
      EXPECT_FALSE(buckets.dirty(id));
      EXPECT_EQ(buckets.anchor(id), anchors[id]);
    }
  }
}

TEST(LastStopBucketsTest, FlushSkipsCleanAndUnmovedTaxis) {
  RoadNetwork net = TestCity(47);
  ContractionHierarchy ch = ContractionHierarchy::Build(net);
  LastStopBuckets buckets(ch, 4);
  std::vector<VertexId> anchors = {3, 14, 27, 30};
  Anchor(&buckets, anchors);
  EXPECT_EQ(buckets.stats().updates, 4);

  // Clean taxis are not re-deposited.
  Anchor(&buckets, anchors);
  EXPECT_EQ(buckets.stats().updates, 4);

  // Dirty but unmoved (marked on a schedule commit that kept the taxi in
  // place): the flush clears the flag without paying a rebuild.
  buckets.MarkDirty(1);
  Anchor(&buckets, anchors);
  EXPECT_EQ(buckets.stats().updates, 4);
  EXPECT_FALSE(buckets.dirty(1));

  // Actually moved: exactly one rebuild.
  anchors[2] = 55;
  buckets.MarkDirty(2);
  Anchor(&buckets, anchors);
  EXPECT_EQ(buckets.stats().updates, 5);
  EXPECT_EQ(buckets.anchor(2), 55);
}

TEST(LastStopBucketsTest, NegativeBudgetFindsNothing) {
  RoadNetwork net = TestCity(53);
  ContractionHierarchy ch = ContractionHierarchy::Build(net);
  LastStopBuckets buckets(ch, 2);
  Anchor(&buckets, {5, 9});
  buckets.Sweep(5, -1.0);
  EXPECT_TRUE(buckets.found().empty());
  EXPECT_EQ(buckets.SweptDistance(0), kInfiniteCost);

  // Zero budget still finds the taxi standing on the origin.
  buckets.Sweep(5, 0.0);
  ASSERT_EQ(buckets.found().size(), 1u);
  EXPECT_EQ(buckets.found()[0], 0);
  EXPECT_EQ(buckets.SweptDistance(0), 0.0);
}

TEST(LastStopBucketsTest, StatsAndMemoryAccounting) {
  RoadNetwork net = TestCity(59);
  ContractionHierarchy ch = ContractionHierarchy::Build(net);
  LastStopBuckets buckets(ch, 3);
  EXPECT_GT(buckets.MemoryBytes(), 0u);
  Anchor(&buckets, {1, 2, 3});
  buckets.Sweep(40, 600.0);
  const LastStopBucketStats& s = buckets.stats();
  EXPECT_EQ(s.updates, 3);
  EXPECT_EQ(s.sweeps, 1);
  EXPECT_EQ(s.found, static_cast<int64_t>(buckets.found().size()));
  EXPECT_GT(s.deposit_settled, 0);
  EXPECT_GT(s.sweep_settled, 0);
  EXPECT_GE(s.maintenance_ms, 0.0);
  EXPECT_GT(buckets.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace mtshare
