#include "routing/one_to_many.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "common/random.h"
#include "graph/graph_generators.h"
#include "routing/dijkstra.h"
#include "routing/distance_oracle.h"

namespace mtshare {
namespace {

RoadNetwork MakeNet(uint64_t seed, double one_way = 0.0) {
  GridCityOptions opt;
  opt.rows = 13;
  opt.cols = 13;
  opt.seed = seed;
  opt.one_way_fraction = one_way;
  return MakeGridCity(opt);
}

// The whole point of the batched layer: values must equal the full
// one-to-all row BIT FOR BIT, not just within a tolerance — otherwise
// batched and per-pair runs could diverge on deadline-edge insertions.
TEST(OneToManySearchTest, MatchesFullDijkstraRowBitwise) {
  RoadNetwork net = MakeNet(21, /*one_way=*/0.3);
  OneToManySearch sweep(net);
  DijkstraSearch dijkstra(net);
  Rng rng(211);
  std::vector<VertexId> targets;
  std::vector<Seconds> got;
  for (int round = 0; round < 40; ++round) {
    VertexId source = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    targets.clear();
    int n = static_cast<int>(rng.NextInt(1, 12));
    for (int i = 0; i < n; ++i) {
      targets.push_back(VertexId(rng.NextInt(0, net.num_vertices() - 1)));
    }
    targets.push_back(source);      // self target
    targets.push_back(targets[0]);  // duplicate target
    sweep.CostsTo(source, targets, &got);
    ASSERT_EQ(got.size(), targets.size());
    std::vector<Seconds> row = dijkstra.CostsFrom(source);
    for (size_t i = 0; i < targets.size(); ++i) {
      EXPECT_EQ(got[i], row[targets[i]])  // exact, no tolerance
          << source << "->" << targets[i];
    }
    EXPECT_GT(sweep.last_settled_count(), 0);
    EXPECT_LE(sweep.last_settled_count(), net.num_vertices());
  }
}

TEST(OneToManySearchTest, TruncatesBeforeSettlingEverything) {
  RoadNetwork net = MakeNet(22);
  OneToManySearch sweep(net);
  std::vector<Seconds> got;
  // A target adjacent to the source settles after a handful of vertices.
  VertexId source = 0;
  VertexId near = net.OutArcs(source)[0].head;
  std::vector<VertexId> targets{near};
  sweep.CostsTo(source, targets, &got);
  EXPECT_LT(sweep.last_settled_count(), net.num_vertices() / 2);
}

TEST(DistanceOracleTest, CostManyMatchesCostBitwiseInBothModes) {
  RoadNetwork net = MakeNet(23, /*one_way=*/0.2);
  OracleOptions exact_opts;
  DistanceOracle exact(net, exact_opts);
  OracleOptions lru_opts;
  lru_opts.backend = OracleBackend::kLru;
  lru_opts.max_exact_vertices = 0;
  DistanceOracle lru(net, lru_opts);
  ASSERT_TRUE(exact.exact_mode());
  ASSERT_FALSE(lru.exact_mode());

  Rng rng(231);
  std::vector<VertexId> targets;
  std::vector<Seconds> got;
  for (int round = 0; round < 20; ++round) {
    VertexId source = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    targets.clear();
    for (int i = 0; i < 8; ++i) {
      targets.push_back(VertexId(rng.NextInt(0, net.num_vertices() - 1)));
    }
    for (DistanceOracle* oracle : {&exact, &lru}) {
      oracle->CostMany(source, targets, &got);
      ASSERT_EQ(got.size(), targets.size());
      for (size_t i = 0; i < targets.size(); ++i) {
        EXPECT_EQ(got[i], oracle->Cost(source, targets[i]));
      }
    }
  }
}

TEST(DistanceOracleTest, CostManyCountsOneQueryAndOneBatch) {
  RoadNetwork net = MakeNet(24);
  DistanceOracle oracle(net);
  std::vector<VertexId> targets{1, 2, 3, 4, 5};
  std::vector<Seconds> got;
  int64_t q0 = oracle.queries();
  oracle.CostMany(0, targets, &got);
  EXPECT_EQ(oracle.queries() - q0, 1);
  EXPECT_EQ(oracle.batch_queries(), 1);
  // The counter invariant the oracle documents: row traffic never exceeds
  // queries.
  EXPECT_LE(oracle.row_hits() + oracle.row_misses(), oracle.queries());
}

class InsertionCostBatchTest
    : public ::testing::TestWithParam<OracleBackend> {
 protected:
  InsertionCostBatchTest() : net_(MakeNet(25, /*one_way=*/0.25)) {
    OracleOptions opts;
    opts.backend = GetParam();
    if (GetParam() != OracleBackend::kExact) opts.max_exact_vertices = 0;
    oracle_ = std::make_unique<DistanceOracle>(net_, opts);
    // The reference answers per-pair queries on the exact backend: all
    // backends must agree bit for bit, so cross-backend comparison is the
    // stronger check.
    reference_ = std::make_unique<DistanceOracle>(net_);
  }

  bool lru() const { return GetParam() == OracleBackend::kLru; }

  RoadNetwork net_;
  std::unique_ptr<DistanceOracle> oracle_;
  std::unique_ptr<DistanceOracle> reference_;
};

TEST_P(InsertionCostBatchTest, PrimedLegsMatchOracleBitwiseWithNoFallbacks) {
  InsertionCostBatch batch(net_, oracle_.get());
  Rng rng(251);
  for (int round = 0; round < 15; ++round) {
    VertexId origin = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    VertexId dest = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    batch.Begin(origin, dest);
    // A few candidate walks: taxi location followed by schedule stops.
    std::vector<std::vector<VertexId>> walks;
    for (int c = 0; c < 4; ++c) {
      std::vector<VertexId> walk;
      int stops = static_cast<int>(rng.NextInt(1, 6));
      for (int s = 0; s < stops; ++s) {
        walk.push_back(VertexId(rng.NextInt(0, net_.num_vertices() - 1)));
      }
      batch.AddCandidate(walk);
      walks.push_back(std::move(walk));
    }
    batch.Prime();

    // Every leg an insertion DP can request over these walks: endpoint
    // fans, stop->endpoint legs, and base-adjacent stop pairs.
    auto check = [&](VertexId a, VertexId b) {
      EXPECT_EQ(batch.Cost(a, b), reference_->Cost(a, b))
          << a << "->" << b << " backend=" << OracleBackendName(GetParam());
    };
    check(origin, dest);
    for (const std::vector<VertexId>& walk : walks) {
      for (size_t i = 0; i < walk.size(); ++i) {
        check(origin, walk[i]);
        check(dest, walk[i]);
        check(walk[i], origin);
        check(walk[i], dest);
        if (i + 1 < walk.size()) check(walk[i], walk[i + 1]);
      }
    }
    EXPECT_EQ(batch.stats().fallback_queries, 0) << "round " << round;
  }
  BatchRoutingStats stats = batch.stats();
  EXPECT_GT(stats.batch_queries, 0);
  if (lru()) {
    // LRU mode services the endpoint fans with truncated sweeps.
    EXPECT_GT(stats.settled_vertices, 0);
  } else {
    EXPECT_EQ(stats.settled_vertices, 0);
  }
  if (GetParam() == OracleBackend::kCh) {
    // CH priming runs entirely on bucket-based many-to-many passes.
    ChQueryStats ch = oracle_->ch_query_stats();
    EXPECT_GT(ch.bucket_queries, 0);
    EXPECT_GT(ch.bucket_entries, 0);
    EXPECT_GT(ch.upward_settled, 0);
  }
}

TEST_P(InsertionCostBatchTest, IncrementalPrimingCoversLaterCandidates) {
  // T-Share's usage pattern: Begin once, then AddCandidate + Prime per
  // candidate, with overlapping stop sets between candidates.
  InsertionCostBatch batch(net_, oracle_.get());
  VertexId origin = 3;
  VertexId dest = 90;
  batch.Begin(origin, dest);
  std::vector<VertexId> first{10, 20, 30};
  std::vector<VertexId> second{20, 30, 40};  // shares stops with `first`
  batch.AddCandidate(first);
  batch.Prime();
  batch.AddCandidate(second);
  batch.Prime();
  for (VertexId s : second) {
    EXPECT_EQ(batch.Cost(origin, s), reference_->Cost(origin, s));
    EXPECT_EQ(batch.Cost(s, dest), reference_->Cost(s, dest));
  }
  EXPECT_EQ(batch.Cost(VertexId{20}, VertexId{30}),
            reference_->Cost(VertexId{20}, VertexId{30}));
  EXPECT_EQ(batch.Cost(VertexId{30}, VertexId{40}),
            reference_->Cost(VertexId{30}, VertexId{40}));
  EXPECT_EQ(batch.stats().fallback_queries, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, InsertionCostBatchTest,
    ::testing::Values(OracleBackend::kExact, OracleBackend::kLru,
                      OracleBackend::kCh),
    [](const ::testing::TestParamInfo<OracleBackend>& info) {
      std::string name = OracleBackendName(info.param);
      name[0] = static_cast<char>(std::toupper(name[0]));
      return name + "Mode";
    });

}  // namespace
}  // namespace mtshare
