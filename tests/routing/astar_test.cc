#include "routing/astar.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_generators.h"
#include "routing/dijkstra.h"

namespace mtshare {
namespace {

TEST(AStarTest, AgreesWithDijkstraOnRandomPairs) {
  GridCityOptions opt;
  opt.rows = 14;
  opt.cols = 14;
  opt.seed = 5;
  RoadNetwork net = MakeGridCity(opt);
  AStarSearch astar(net);
  DijkstraSearch dijkstra(net);
  Rng rng(81);
  for (int i = 0; i < 60; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    EXPECT_NEAR(astar.Cost(s, t), dijkstra.Cost(s, t), 1e-9)
        << s << "->" << t;
  }
}

TEST(AStarTest, AgreesOnRingTopology) {
  RingCityOptions opt;
  opt.rings = 5;
  opt.spokes = 12;
  RoadNetwork net = MakeRingCity(opt);
  AStarSearch astar(net);
  DijkstraSearch dijkstra(net);
  Rng rng(83);
  for (int i = 0; i < 40; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    EXPECT_NEAR(astar.Cost(s, t), dijkstra.Cost(s, t), 1e-9);
  }
}

TEST(AStarTest, SettlesFewerVerticesThanDijkstra) {
  GridCityOptions opt;
  opt.rows = 24;
  opt.cols = 24;
  RoadNetwork net = MakeGridCity(opt);
  AStarSearch astar(net);
  DijkstraSearch dijkstra(net);
  // Corner to corner: the heuristic should prune substantially.
  VertexId s = 0;
  VertexId t = net.num_vertices() - 1;
  astar.Cost(s, t);
  dijkstra.Cost(s, t);
  EXPECT_LT(astar.last_settled_count(), dijkstra.last_settled_count());
}

TEST(AStarTest, PathIsContiguousAndCostConsistent) {
  GridCityOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  RoadNetwork net = MakeGridCity(opt);
  AStarSearch astar(net);
  Path p = astar.FindPath(3, net.num_vertices() - 4);
  ASSERT_TRUE(p.valid);
  Seconds acc = 0.0;
  for (size_t i = 0; i + 1 < p.vertices.size(); ++i) {
    bool found = false;
    for (const Arc& arc : net.OutArcs(p.vertices[i])) {
      if (arc.head == p.vertices[i + 1]) {
        acc += arc.cost;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "missing arc at hop " << i;
  }
  EXPECT_NEAR(acc, p.cost, 1e-9);
}

TEST(AStarTest, TrivialAndUnreachable) {
  RoadNetwork::Builder b(1.0);
  b.AddVertex({0, 0});
  b.AddVertex({10, 0});
  b.AddEdge(0, 1, 10);
  RoadNetwork net = b.Build();
  AStarSearch astar(net);
  EXPECT_DOUBLE_EQ(astar.Cost(0, 0), 0.0);
  EXPECT_EQ(astar.Cost(1, 0), kInfiniteCost);
}

}  // namespace
}  // namespace mtshare
