#include "routing/contraction_hierarchy.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "graph/graph_generators.h"
#include "routing/ch_query.h"
#include "routing/dijkstra.h"
#include "routing/distance_oracle.h"

namespace mtshare {
namespace {

// The CH subsystem's contract is BIT-IDENTICAL costs, not approximate
// ones: arc costs live on the dyadic grid (QuantizeTravelCost), so every
// path sum — however the CH associates it through shortcuts and bucket
// meetings — is exact. Each comparison below is EXPECT_EQ on doubles.

void ExpectAllPairsMatch(const RoadNetwork& net, const ChOptions& copt) {
  ContractionHierarchy ch = ContractionHierarchy::Build(net, copt);
  ChQuery query(ch);
  DijkstraSearch dijkstra(net);
  for (VertexId s = 0; s < net.num_vertices(); ++s) {
    std::vector<Seconds> row = dijkstra.CostsFrom(s);
    for (VertexId t = 0; t < net.num_vertices(); ++t) {
      ASSERT_EQ(query.Cost(s, t), row[t]) << s << "->" << t;
    }
  }
}

TEST(ContractionHierarchyTest, GridCityAllPairsBitIdentical) {
  GridCityOptions gopt;
  gopt.rows = 8;
  gopt.cols = 8;
  gopt.one_way_fraction = 0.3;  // asymmetric distances
  gopt.seed = 41;
  ExpectAllPairsMatch(MakeGridCity(gopt), ChOptions{});
}

TEST(ContractionHierarchyTest, RandomGeometricAllPairsBitIdentical) {
  RandomGeometricOptions ropt;
  ropt.num_vertices = 120;
  ropt.seed = 43;
  ExpectAllPairsMatch(MakeRandomGeometric(ropt), ChOptions{});
}

TEST(ContractionHierarchyTest, TinyWitnessLimitStaysCorrect) {
  // A starved witness search may only ADD redundant shortcuts — distances
  // must not change.
  GridCityOptions gopt;
  gopt.rows = 7;
  gopt.cols = 7;
  gopt.one_way_fraction = 0.25;
  gopt.seed = 47;
  ChOptions copt;
  copt.witness_settle_limit = 1;
  ExpectAllPairsMatch(MakeGridCity(gopt), copt);
}

TEST(ContractionHierarchyTest, DisconnectedComponentsReportInfinity) {
  // Two islands plus a one-way bridge 0->4: reachability is asymmetric and
  // partial, and nothing routes back. Built directly (no SCC extraction).
  RoadNetwork::Builder builder(10.0);
  for (int i = 0; i < 8; ++i) {
    builder.AddVertex(Point{double(i % 4) * 100.0, double(i / 4) * 100.0});
  }
  // Island A: 0-1-2-3 cycle (both ways). Island B: 4-5-6-7 cycle.
  for (VertexId v = 0; v < 4; ++v) {
    builder.AddBidirectionalEdge(v, (v + 1) % 4, 130.0);
    builder.AddBidirectionalEdge(4 + v, 4 + (v + 1) % 4, 170.0);
  }
  builder.AddEdge(0, 4, 500.0);  // one-way bridge
  RoadNetwork net = builder.Build();

  ContractionHierarchy ch = ContractionHierarchy::Build(net);
  ChQuery query(ch);
  DijkstraSearch dijkstra(net);
  for (VertexId s = 0; s < net.num_vertices(); ++s) {
    std::vector<Seconds> row = dijkstra.CostsFrom(s);
    for (VertexId t = 0; t < net.num_vertices(); ++t) {
      EXPECT_EQ(query.Cost(s, t), row[t]) << s << "->" << t;
    }
  }
  EXPECT_EQ(query.Cost(4, 0), kInfiniteCost);  // bridge is one-way
  EXPECT_LT(query.Cost(0, 4), kInfiniteCost);
}

TEST(ContractionHierarchyTest, BucketQueriesMatchPointQueries) {
  GridCityOptions gopt;
  gopt.rows = 10;
  gopt.cols = 10;
  gopt.one_way_fraction = 0.2;
  gopt.seed = 53;
  RoadNetwork net = MakeGridCity(gopt);
  ContractionHierarchy ch = ContractionHierarchy::Build(net);
  ChQuery query(ch);
  DijkstraSearch dijkstra(net);

  Rng rng(531);
  std::vector<VertexId> sources, targets;
  std::vector<Seconds> many, matrix;
  for (int round = 0; round < 25; ++round) {
    sources.clear();
    targets.clear();
    for (int i = 0; i < 5; ++i) {
      sources.push_back(VertexId(rng.NextInt(0, net.num_vertices() - 1)));
    }
    for (int i = 0; i < 9; ++i) {
      targets.push_back(VertexId(rng.NextInt(0, net.num_vertices() - 1)));
    }
    targets.push_back(targets[0]);   // duplicate target
    targets.push_back(sources[0]);   // a source as target (distance 0 cell)

    query.CostMany(sources[0], targets, &many);
    ASSERT_EQ(many.size(), targets.size());
    std::vector<Seconds> row = dijkstra.CostsFrom(sources[0]);
    for (size_t i = 0; i < targets.size(); ++i) {
      EXPECT_EQ(many[i], row[targets[i]]) << "CostMany " << targets[i];
    }

    query.CostManyToMany(sources, targets, &matrix);
    ASSERT_EQ(matrix.size(), sources.size() * targets.size());
    for (size_t s = 0; s < sources.size(); ++s) {
      std::vector<Seconds> srow = dijkstra.CostsFrom(sources[s]);
      for (size_t t = 0; t < targets.size(); ++t) {
        EXPECT_EQ(matrix[s * targets.size() + t], srow[targets[t]])
            << sources[s] << "->" << targets[t];
      }
    }
  }
  EXPECT_GT(query.stats().bucket_queries, 0);
  EXPECT_GT(query.stats().bucket_entries, 0);
}

TEST(ContractionHierarchyTest, DeterministicAcrossThreadCounts) {
  // The contraction order (and so the whole index) must not depend on the
  // preprocessing thread count — only the initial priority pass is
  // parallel, and it reads immutable state.
  GridCityOptions gopt;
  gopt.rows = 9;
  gopt.cols = 9;
  gopt.seed = 59;
  RoadNetwork net = MakeGridCity(gopt);
  ChOptions seq;
  seq.threads = 1;
  ChOptions par;
  par.threads = 4;
  ContractionHierarchy a = ContractionHierarchy::Build(net, seq);
  ContractionHierarchy b = ContractionHierarchy::Build(net, par);
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    EXPECT_EQ(a.rank(v), b.rank(v)) << "vertex " << v;
  }
  EXPECT_EQ(a.stats().shortcuts_added, b.stats().shortcuts_added);
}

TEST(ContractionHierarchyTest, StatsAndMemoryArePopulated) {
  GridCityOptions gopt;
  gopt.rows = 8;
  gopt.cols = 8;
  RoadNetwork net = MakeGridCity(gopt);
  ContractionHierarchy ch = ContractionHierarchy::Build(net);
  EXPECT_GE(ch.stats().shortcuts_added, 0);
  EXPECT_GE(ch.stats().preprocessing_ms, 0.0);
  // The search graphs partition the core arcs: every original arc (plus
  // shortcuts) shows up in exactly one of up/down, so the index is at
  // least as large as the rank array.
  EXPECT_GE(ch.MemoryBytes(), size_t(net.num_vertices()) * sizeof(int32_t));
}

TEST(DistanceOracleChBackendTest, AutoSelectsChAboveExactThreshold) {
  GridCityOptions gopt;
  gopt.rows = 9;
  gopt.cols = 9;
  RoadNetwork net = MakeGridCity(gopt);
  OracleOptions small;
  small.max_exact_vertices = 10;  // auto -> CH
  DistanceOracle ch_oracle(net, small);
  EXPECT_EQ(ch_oracle.backend(), OracleBackend::kCh);
  DistanceOracle exact_oracle(net);  // auto -> exact (81 <= 4200)
  EXPECT_EQ(exact_oracle.backend(), OracleBackend::kExact);
}

TEST(DistanceOracleChBackendTest, MatchesExactBackendBitwise) {
  GridCityOptions gopt;
  gopt.rows = 11;
  gopt.cols = 11;
  gopt.one_way_fraction = 0.25;
  gopt.seed = 61;
  RoadNetwork net = MakeGridCity(gopt);
  OracleOptions copt;
  copt.backend = OracleBackend::kCh;
  DistanceOracle ch_oracle(net, copt);
  DistanceOracle exact_oracle(net);

  Rng rng(611);
  std::vector<VertexId> targets;
  std::vector<Seconds> got, want;
  for (int round = 0; round < 30; ++round) {
    VertexId s = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    EXPECT_EQ(ch_oracle.Cost(s, t), exact_oracle.Cost(s, t));
    targets.clear();
    for (int i = 0; i < 7; ++i) {
      targets.push_back(VertexId(rng.NextInt(0, net.num_vertices() - 1)));
    }
    ch_oracle.CostMany(s, targets, &got);
    exact_oracle.CostMany(s, targets, &want);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], want[i]);
  }
  ChQueryStats stats = ch_oracle.ch_query_stats();
  EXPECT_GT(stats.point_queries, 0);
  EXPECT_GT(stats.bucket_queries, 0);
  EXPECT_EQ(ch_oracle.row_hits(), 0);
  EXPECT_EQ(ch_oracle.row_misses(), 0);
}

TEST(DistanceOracleChBackendTest, ManyToManyCountsAndMemory) {
  GridCityOptions gopt;
  gopt.rows = 9;
  gopt.cols = 9;
  RoadNetwork net = MakeGridCity(gopt);
  OracleOptions copt;
  copt.backend = OracleBackend::kCh;
  DistanceOracle oracle(net, copt);
  // Index memory is visible before any query runs.
  size_t idle_bytes = oracle.MemoryBytes();
  EXPECT_GT(idle_bytes, 0u);

  std::vector<VertexId> sources{0, 5, 9};
  std::vector<VertexId> targets{3, 7, 11, 20};
  std::vector<Seconds> matrix;
  int64_t q0 = oracle.queries();
  oracle.CostManyToMany(sources, targets, &matrix);
  EXPECT_EQ(matrix.size(), sources.size() * targets.size());
  EXPECT_EQ(oracle.queries() - q0, int64_t(sources.size()));
  EXPECT_EQ(oracle.batch_queries(), 1);
  // Pooled query engines are part of the oracle's resident footprint.
  EXPECT_GT(oracle.MemoryBytes(), idle_bytes);
}

TEST(DistanceOracleChBackendTest, RowPtrFallsBackToDijkstraRow) {
  GridCityOptions gopt;
  gopt.rows = 7;
  gopt.cols = 7;
  RoadNetwork net = MakeGridCity(gopt);
  OracleOptions copt;
  copt.backend = OracleBackend::kCh;
  DistanceOracle oracle(net, copt);
  DijkstraSearch dijkstra(net);
  auto row = oracle.RowPtr(3);
  std::vector<Seconds> want = dijkstra.CostsFrom(3);
  ASSERT_EQ(row->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ((*row)[i], want[i]);
}

TEST(QuantizeTravelCostTest, SnapsToDyadicGridAndStaysPositive) {
  // Quantized costs are exact multiples of 2^-20 s ...
  Seconds q = QuantizeTravelCost(123.456789);
  EXPECT_EQ(q * kCostQuantumScale, std::round(q * kCostQuantumScale));
  EXPECT_NEAR(q, 123.456789, 1.0 / kCostQuantumScale);
  // ... idempotent ...
  EXPECT_EQ(QuantizeTravelCost(q), q);
  // ... and never zero, however short the arc.
  EXPECT_GT(QuantizeTravelCost(1e-12), 0.0);
}

}  // namespace
}  // namespace mtshare
