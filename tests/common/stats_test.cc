#include "common/stats.h"

#include <gtest/gtest.h>

namespace mtshare {
namespace {

TEST(SummaryStatsTest, EmptyAccumulator) {
  SummaryStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Percentile(0.5), 0.0);
}

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_NEAR(s.StdDev(), 2.138, 1e-3);
}

TEST(SummaryStatsTest, PercentileInterpolates) {
  SummaryStats s;
  for (int i = 1; i <= 5; ++i) s.Add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.125), 1.5);
}

TEST(SummaryStatsTest, PercentileCacheInvalidatedByAdd) {
  SummaryStats s;
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Median(), 1.0);
  s.Add(100.0);
  EXPECT_DOUBLE_EQ(s.Median(), 50.5);
}

TEST(SummaryStatsTest, MergeCombines) {
  SummaryStats a;
  SummaryStats b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.5);
}

TEST(SummaryStatsTest, ClearResets) {
  SummaryStats s;
  s.Add(5.0);
  s.Clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(HistogramTest, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(4), 8.0);
  h.Add(1.0);
  h.Add(1.9);
  h.Add(2.0);
  h.Add(9.99);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(4), 1u);
  EXPECT_EQ(h.TotalCount(), 4u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-0.5);
  h.Add(2.0);
  h.Add(1.0);  // hi edge counts as overflow ([lo, hi) domain)
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.TotalCount(), 3u);
}

TEST(HistogramTest, CdfReachesOneWithoutOverflow) {
  Histogram h(0.0, 4.0, 4);
  for (double v : {0.5, 1.5, 2.5, 3.5}) h.Add(v);
  std::vector<double> cdf = h.Cdf();
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.25);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

TEST(HistogramTest, CdfIncludesUnderflowMass) {
  Histogram h(1.0, 2.0, 2);
  h.Add(0.0);   // underflow
  h.Add(1.25);  // bucket 0
  std::vector<double> cdf = h.Cdf();
  EXPECT_DOUBLE_EQ(cdf[0], 1.0);  // both samples at or below bucket 0 edge
}

}  // namespace
}  // namespace mtshare
