#include "common/histogram.h"

#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

namespace mtshare {
namespace {

TEST(LatencyHistogramTest, EmptyReportsZeros) {
  LatencyHistogram h = LatencyHistogram::ForLatencyMs();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
}

TEST(LatencyHistogramTest, PercentilesOfKnownUniformDistribution) {
  // 1..1000 uniformly: p should sit near p * 1000 with a relative error
  // bounded by one geometric bucket (the documented resolution contract).
  LatencyHistogram h(1.0, 1e4, 256);
  for (int v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1000.0);
  EXPECT_NEAR(h.Mean(), 500.5, 1e-9);  // sum is exact, not bucketed
  const double ratio = 1.08;  // > one bucket growth factor at 256 bins
  for (double p : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    double expect = p * 1000.0;
    double got = h.Percentile(p);
    EXPECT_LE(got, expect * ratio) << "p=" << p;
    EXPECT_GE(got, expect / ratio) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, PercentilesAreMonotone) {
  LatencyHistogram h = LatencyHistogram::ForLatencyMs();
  std::mt19937 rng(7);
  std::lognormal_distribution<double> latency(0.0, 2.0);
  for (int i = 0; i < 5000; ++i) h.Record(latency(rng));
  double prev = 0.0;
  for (double p = 0.0; p <= 1.0; p += 0.01) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  EXPECT_LE(h.Percentile(1.0), h.Max() + 1e-12);
  EXPECT_GE(h.Percentile(0.0), h.Min() - 1e-12);
}

TEST(LatencyHistogramTest, BoundaryValuesLandInConsistentBuckets) {
  LatencyHistogram h(1.0, 1000.0, 30);
  // Values on and around every bucket edge must land in a bucket whose
  // [low, high) span actually contains them (log round-off guard).
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    double edges[] = {h.BucketLow(i), h.BucketHigh(i) * (1 - 1e-12)};
    for (double v : edges) {
      if (v <= 0.0) continue;
      LatencyHistogram probe(1.0, 1000.0, 30);
      probe.Record(v);
      for (size_t b = 0; b < probe.num_buckets(); ++b) {
        if (probe.bucket_count(b) == 0) continue;
        EXPECT_LE(probe.BucketLow(b), v);
        if (b + 1 < probe.num_buckets()) {
          EXPECT_LT(v, probe.BucketHigh(b) * (1 + 1e-9));
        }
      }
    }
  }
}

TEST(LatencyHistogramTest, NegativeAndOverflowSamples) {
  LatencyHistogram h(1.0, 100.0, 10);
  h.Record(-5.0);   // clamps to 0, lands in [0, lo)
  h.Record(1e9);    // lands in [hi, inf)
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(h.num_buckets() - 1), 1);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1e9);
  // The overflow bucket interpolates toward the observed max, never past.
  EXPECT_LE(h.Percentile(0.99), 1e9);
}

TEST(LatencyHistogramTest, MergeMatchesSingleRecorder) {
  // Samples split across per-thread recorders then merged must reproduce
  // the single-recorder distribution exactly (same counters, same
  // percentile answers) — the contract that makes cross-thread
  // aggregation safe.
  const int kThreads = 4;
  const int kPerThread = 4000;
  LatencyHistogram reference = LatencyHistogram::ForLatencyMs();
  std::vector<LatencyHistogram> parts(
      kThreads, LatencyHistogram::ForLatencyMs());
  std::vector<std::vector<double>> samples(kThreads);
  std::mt19937 rng(42);
  std::gamma_distribution<double> latency(2.0, 3.0);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      samples[t].push_back(latency(rng));
    }
  }
  for (const auto& chunk : samples) {
    for (double v : chunk) reference.Record(v);
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (double v : samples[t]) parts[t].Record(v);
    });
  }
  for (auto& th : threads) th.join();

  LatencyHistogram merged = LatencyHistogram::ForLatencyMs();
  for (const auto& part : parts) merged.Merge(part);

  EXPECT_EQ(merged.count(), reference.count());
  // Summation order differs (4 partial sums vs one long chain), so the
  // totals agree only to floating-point round-off.
  EXPECT_NEAR(merged.sum(), reference.sum(), 1e-9 * reference.sum());
  EXPECT_DOUBLE_EQ(merged.Min(), reference.Min());
  EXPECT_DOUBLE_EQ(merged.Max(), reference.Max());
  for (size_t i = 0; i < merged.num_buckets(); ++i) {
    ASSERT_EQ(merged.bucket_count(i), reference.bucket_count(i)) << i;
  }
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(p), reference.Percentile(p)) << p;
  }
}

TEST(LatencyHistogramTest, MergeIntoEmptyAndFromEmpty) {
  LatencyHistogram a = LatencyHistogram::ForMinutes();
  LatencyHistogram b = LatencyHistogram::ForMinutes();
  b.Record(3.0);
  b.Record(9.0);
  a.Merge(b);  // into empty: adopts min/max
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.Min(), 3.0);
  EXPECT_DOUBLE_EQ(a.Max(), 9.0);
  LatencyHistogram empty = LatencyHistogram::ForMinutes();
  a.Merge(empty);  // from empty: unchanged
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.Min(), 3.0);
}

}  // namespace
}  // namespace mtshare
