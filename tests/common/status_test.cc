#include "common/status.h"

#include <gtest/gtest.h>

namespace mtshare {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("kappa must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "kappa must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: kappa must be positive");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    MTSHARE_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("disk gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

}  // namespace
}  // namespace mtshare
