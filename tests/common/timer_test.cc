#include "common/timer.h"

#include <gtest/gtest.h>

namespace mtshare {
namespace {

TEST(WallTimerTest, MonotoneNonNegative) {
  WallTimer timer;
  double a = timer.ElapsedSeconds();
  double b = timer.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(WallTimerTest, UnitsConsistent) {
  WallTimer timer;
  // Burn a little CPU so elapsed is strictly positive.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 1e-9;
  double s = timer.ElapsedSeconds();
  double ms = timer.ElapsedMillis();
  double us = timer.ElapsedMicros();
  EXPECT_GT(s, 0.0);
  // Later reads are larger, and the unit ratios hold approximately.
  EXPECT_GE(ms, s * 1e3);
  EXPECT_GE(us, ms * 1e3 * 0.5);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 1e-9;
  double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1e-3);
}

}  // namespace
}  // namespace mtshare
