#include "common/sharded_lru.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mtshare {
namespace {

TEST(ShardedLruTest, ComputesOnMissServesOnHit) {
  ShardedLruCache<int, std::string> cache(/*capacity=*/8, /*num_shards=*/2);
  std::atomic<int> computes{0};
  auto compute = [&](const int& k) {
    computes.fetch_add(1);
    return std::to_string(k);
  };
  EXPECT_EQ(*cache.GetOrCompute(7, compute), "7");
  EXPECT_EQ(*cache.GetOrCompute(7, compute), "7");
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(ShardedLruTest, EvictsLeastRecentlyUsedPerShard) {
  // One shard, capacity 2: inserting a third key evicts the stalest.
  ShardedLruCache<int, int> cache(/*capacity=*/2, /*num_shards=*/1);
  std::atomic<int> computes{0};
  auto compute = [&](const int& k) {
    computes.fetch_add(1);
    return k * 10;
  };
  cache.GetOrCompute(1, compute);  // miss
  cache.GetOrCompute(2, compute);  // miss
  cache.GetOrCompute(1, compute);  // hit, refreshes 1
  cache.GetOrCompute(3, compute);  // miss, evicts 2 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.GetOrCompute(1, compute), 10);  // still resident
  EXPECT_EQ(*cache.GetOrCompute(2, compute), 20);  // recompute: was evicted
  EXPECT_EQ(computes.load(), 4);
}

TEST(ShardedLruTest, ShardCountClampsToCapacity) {
  // A tiny cache must not be inflated by the one-entry-per-shard floor:
  // capacity 1 with 4 requested shards still holds exactly one entry.
  ShardedLruCache<int, int> tiny(/*capacity=*/1, /*num_shards=*/4);
  EXPECT_EQ(tiny.num_shards(), 1u);
  auto compute = [](const int& k) { return k; };
  for (int k = 0; k < 100; ++k) tiny.GetOrCompute(k, compute);
  EXPECT_EQ(tiny.size(), 1u);

  ShardedLruCache<int, int> mid(/*capacity=*/8, /*num_shards=*/16);
  EXPECT_EQ(mid.num_shards(), 8u);
  ShardedLruCache<int, int> big(/*capacity=*/64, /*num_shards=*/16);
  EXPECT_EQ(big.num_shards(), 16u);
}

TEST(ShardedLruTest, CapacitySumsToBudgetForNonDivisibleShardCounts) {
  // Regression: capacity / shards truncation used to drop the remainder —
  // a 20-entry budget over 16 shards held only 16 rows. Every shard gets
  // the floor share and the first capacity % shards one extra.
  struct Case {
    size_t capacity;
    size_t shards;
  };
  for (Case c : {Case{20, 16}, Case{7, 3}, Case{100, 16}, Case{17, 4},
                 Case{16, 16}, Case{1, 1}}) {
    ShardedLruCache<int, int> cache(c.capacity, c.shards);
    EXPECT_EQ(cache.capacity(), c.capacity)
        << "capacity=" << c.capacity << " shards=" << c.shards;
  }
}

TEST(ShardedLruTest, NonDivisibleBudgetIsActuallyUsable) {
  // 7 entries over 3 shards: whatever the key→shard spread, the cache can
  // never hold more than 7 rows, and with single-shard keys the odd shard
  // really holds its 3 (= 2 + 1 extra) rows.
  ShardedLruCache<size_t, int> cache(/*capacity=*/7, /*num_shards=*/3);
  EXPECT_EQ(cache.capacity(), 7u);
  auto compute = [](const size_t& k) { return static_cast<int>(k); };
  for (size_t k = 0; k < 1000; ++k) cache.GetOrCompute(k, compute);
  EXPECT_LE(cache.size(), 7u);
  EXPECT_GE(cache.size(), 1u);
}

TEST(ShardedLruTest, ThrowingComputeLeavesShardConsistent) {
  // Regression: the key used to be linked into the recency list before
  // compute ran, so a throwing compute orphaned a recency entry; the next
  // insert of the same key then duplicated it and the shard overflowed
  // its capacity. The exception must propagate and leave no trace.
  ShardedLruCache<int, std::string> cache(/*capacity=*/2, /*num_shards=*/1);
  std::atomic<int> attempts{0};
  auto flaky = [&](const int& k) -> std::string {
    if (attempts.fetch_add(1) == 0) throw std::runtime_error("transient");
    return std::to_string(k);
  };
  EXPECT_THROW(cache.GetOrCompute(9, flaky), std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);  // nothing half-inserted
  // The same key computes cleanly on retry — exactly one cached copy.
  EXPECT_EQ(*cache.GetOrCompute(9, flaky), "9");
  EXPECT_EQ(*cache.GetOrCompute(9, flaky), "9");
  EXPECT_EQ(cache.size(), 1u);

  // Interleave throwing and succeeding inserts past capacity: size must
  // never exceed the 2-entry budget and survivors stay retrievable.
  std::atomic<bool> poison{false};
  auto sometimes = [&](const int& k) -> std::string {
    if (poison.load()) throw std::runtime_error("poisoned");
    return std::to_string(k);
  };
  for (int k = 0; k < 12; ++k) {
    poison.store(k % 3 == 2);
    if (k % 3 == 2) {
      EXPECT_THROW(cache.GetOrCompute(100 + k, sometimes),
                   std::runtime_error);
    } else {
      EXPECT_EQ(*cache.GetOrCompute(100 + k, sometimes),
                std::to_string(100 + k));
    }
    EXPECT_LE(cache.size(), 2u) << "k=" << k;
  }
  poison.store(false);
  EXPECT_EQ(*cache.GetOrCompute(110, sometimes), "110");  // k=10 survivor: hit
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruTest, EvictedValueSurvivesViaSharedPtr) {
  ShardedLruCache<int, std::vector<int>> cache(/*capacity=*/1,
                                               /*num_shards=*/1);
  auto compute = [](const int& k) { return std::vector<int>(3, k); };
  std::shared_ptr<const std::vector<int>> row = cache.GetOrCompute(5, compute);
  cache.GetOrCompute(6, compute);  // evicts key 5
  EXPECT_EQ(row->size(), 3u);      // the held pointer keeps the value alive
  EXPECT_EQ((*row)[0], 5);
}

TEST(ShardedLruTest, ConcurrentHitCountingIsExact) {
  // N threads x M lookups over a key set that fits in cache: after the
  // warm-up misses, every access is a hit, and hits + misses == lookups.
  const int kThreads = 8;
  const int kLookups = 2000;
  const int kKeys = 16;
  ShardedLruCache<int, int> cache(/*capacity=*/64, /*num_shards=*/4);
  auto compute = [](const int& k) { return k + 1; };
  std::vector<std::thread> threads;
  std::atomic<int64_t> checked{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kLookups; ++i) {
        int key = (t + i) % kKeys;
        auto value = cache.GetOrCompute(key, compute);
        if (*value == key + 1) checked.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(checked.load(), int64_t(kThreads) * kLookups);  // values correct
  EXPECT_EQ(cache.hits() + cache.misses(), int64_t(kThreads) * kLookups);
  // No evictions (64 >= 16): each key computes at most once per shard
  // residency, i.e. exactly kKeys misses.
  EXPECT_EQ(cache.misses(), kKeys);
  EXPECT_EQ(cache.size(), size_t(kKeys));
}

TEST(ShardedLruTest, MemoryBytesSumsEntries) {
  ShardedLruCache<int, std::vector<double>> cache(/*capacity=*/8,
                                                  /*num_shards=*/2);
  auto compute = [](const int&) { return std::vector<double>(10, 1.0); };
  EXPECT_EQ(cache.MemoryBytes([](const std::vector<double>& v) {
    return v.size() * sizeof(double);
  }), 0u);
  cache.GetOrCompute(1, compute);
  cache.GetOrCompute(2, compute);
  size_t bytes = cache.MemoryBytes([](const std::vector<double>& v) {
    return v.size() * sizeof(double);
  });
  EXPECT_GE(bytes, 2 * 10 * sizeof(double));
}

}  // namespace
}  // namespace mtshare
