#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mtshare {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.size(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  std::future<void> done = pool.Submit([&] { value.store(42); });
  done.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, SubmitManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v.store(0);
    pool.ParallelFor(visits.size(),
                     [&](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n < threads: only n indices run.
  std::atomic<int> tiny{0};
  pool.ParallelFor(2, [&](size_t) { tiny.fetch_add(1); });
  EXPECT_EQ(tiny.load(), 2);
}

TEST(ThreadPoolTest, ParallelForResultsMatchSequential) {
  // Slot-per-index writing: the parallel sum equals the serial sum.
  std::vector<int64_t> input(1000);
  std::iota(input.begin(), input.end(), 1);
  std::vector<int64_t> out_seq(input.size());
  for (size_t i = 0; i < input.size(); ++i) out_seq[i] = input[i] * input[i];
  ThreadPool pool(8);
  std::vector<int64_t> out_par(input.size());
  pool.ParallelFor(input.size(),
                   [&](size_t i) { out_par[i] = input[i] * input[i]; });
  EXPECT_EQ(out_seq, out_par);
}

TEST(ThreadPoolTest, DefaultThreadsHonorsRequestAndFallsBack) {
  EXPECT_EQ(ThreadPool::DefaultThreads(3), 3);
  EXPECT_EQ(ThreadPool::DefaultThreads(1), 1);
  EXPECT_GE(ThreadPool::DefaultThreads(0), 1);   // hardware concurrency
  EXPECT_GE(ThreadPool::DefaultThreads(-1), 1);
}

}  // namespace
}  // namespace mtshare
