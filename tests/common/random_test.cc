#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace mtshare {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntRespectsBoundsAndCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, SingletonIntRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextDiscrete(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.01);
}

TEST(RngTest, DiscreteZeroWeightsFallsBackToUniform) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextDiscrete(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace mtshare
