#include "common/string_util.h"

#include <gtest/gtest.h>

namespace mtshare {
namespace {

TEST(SplitTest, BasicFields) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiter) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ParseDoubleTest, ValidValues) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace mtshare
