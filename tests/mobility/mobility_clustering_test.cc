#include "mobility/mobility_clustering.h"

#include <gtest/gtest.h>

namespace mtshare {
namespace {

MobilityVector East(double oy = 0) {
  return MobilityVector{Point{0, oy}, Point{1000, oy}};
}
MobilityVector West(double oy = 0) {
  return MobilityVector{Point{1000, oy}, Point{0, oy}};
}
MobilityVector North() { return MobilityVector{Point{0, 0}, Point{0, 1000}}; }

constexpr double kLambda45 = 0.707;

TEST(MobilityClusteringTest, FirstMemberFoundsCluster) {
  MobilityClustering mc(kLambda45);
  ClusterId c = mc.Assign(1, East());
  EXPECT_NE(c, kInvalidCluster);
  EXPECT_EQ(mc.num_live_clusters(), 1);
  EXPECT_EQ(mc.ClusterOf(1), c);
}

TEST(MobilityClusteringTest, SimilarDirectionsShareCluster) {
  MobilityClustering mc(kLambda45);
  ClusterId c1 = mc.Assign(1, East(0));
  ClusterId c2 = mc.Assign(2, East(500));
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(mc.num_live_clusters(), 1);
  EXPECT_EQ(mc.Members(c1).size(), 2u);
}

TEST(MobilityClusteringTest, OppositeDirectionsSplit) {
  MobilityClustering mc(kLambda45);
  ClusterId c1 = mc.Assign(1, East());
  ClusterId c2 = mc.Assign(2, West());
  EXPECT_NE(c1, c2);
  EXPECT_EQ(mc.num_live_clusters(), 2);
}

TEST(MobilityClusteringTest, PerpendicularSplitsAt45DegreeThreshold) {
  MobilityClustering mc(kLambda45);
  ClusterId c1 = mc.Assign(1, East());
  ClusterId c2 = mc.Assign(2, North());
  EXPECT_NE(c1, c2);
}

TEST(MobilityClusteringTest, LooserLambdaMergesMore) {
  MobilityClustering mc(-1.0);  // everything is compatible
  ClusterId c1 = mc.Assign(1, East());
  ClusterId c2 = mc.Assign(2, West());
  EXPECT_EQ(c1, c2);
}

TEST(MobilityClusteringTest, GeneralVectorIsMemberMean) {
  MobilityClustering mc(kLambda45);
  mc.Assign(1, MobilityVector{Point{0, 0}, Point{100, 0}});
  ClusterId c = mc.Assign(2, MobilityVector{Point{10, 0}, Point{110, 0}});
  MobilityVector g = mc.GeneralVector(c);
  EXPECT_DOUBLE_EQ(g.origin.x, 5.0);
  EXPECT_DOUBLE_EQ(g.destination.x, 105.0);
}

TEST(MobilityClusteringTest, RemoveUpdatesAggregates) {
  MobilityClustering mc(kLambda45);
  ClusterId c = mc.Assign(1, MobilityVector{Point{0, 0}, Point{100, 0}});
  mc.Assign(2, MobilityVector{Point{50, 0}, Point{150, 0}});
  mc.Remove(1);
  MobilityVector g = mc.GeneralVector(c);
  EXPECT_DOUBLE_EQ(g.origin.x, 50.0);
  EXPECT_EQ(mc.Members(c).size(), 1u);
}

TEST(MobilityClusteringTest, EmptiedClusterIsRecycled) {
  MobilityClustering mc(kLambda45);
  ClusterId c_east = mc.Assign(1, East());
  mc.Remove(1);
  EXPECT_EQ(mc.num_live_clusters(), 0);
  // A new (different-direction) member reuses the freed slot.
  ClusterId c_north = mc.Assign(2, North());
  EXPECT_EQ(c_east, c_north);
  EXPECT_EQ(mc.num_live_clusters(), 1);
}

TEST(MobilityClusteringTest, RemoveAbsentMemberIsNoop) {
  MobilityClustering mc(kLambda45);
  mc.Remove(42);
  EXPECT_EQ(mc.num_live_clusters(), 0);
}

TEST(MobilityClusteringTest, ReassignMovesBetweenClusters) {
  MobilityClustering mc(kLambda45);
  ClusterId c1 = mc.Assign(1, East());
  mc.Assign(9, East(10));  // keep the east cluster alive
  ClusterId c2 = mc.Assign(1, West());
  EXPECT_NE(c1, c2);
  EXPECT_EQ(mc.ClusterOf(1), c2);
  EXPECT_EQ(mc.Members(c1).size(), 1u);
}

TEST(MobilityClusteringTest, FindBestClusterDoesNotInsert) {
  MobilityClustering mc(kLambda45);
  ClusterId c = mc.Assign(1, East());
  EXPECT_EQ(mc.FindBestCluster(East(200)), c);
  EXPECT_EQ(mc.FindBestCluster(West()), kInvalidCluster);
  EXPECT_EQ(mc.num_members(), 1);
}

TEST(MobilityClusteringTest, FindBestPicksClosestDirection) {
  // Tight lambda so east and northeast stay separate clusters.
  MobilityClustering mc(0.9);
  ClusterId east = mc.Assign(1, East());
  ClusterId northeast =
      mc.Assign(2, MobilityVector{Point{0, 0}, Point{1000, 1000}});
  ASSERT_NE(east, northeast);
  // Probe at ~5 degrees: east cluster is the better match.
  MobilityVector probe{Point{0, 0}, Point{1000, 87}};
  EXPECT_EQ(mc.FindBestCluster(probe), east);
}

TEST(MobilityClusteringTest, FindCompatibleClustersReturnsAllPassing) {
  MobilityClustering mc(0.9);
  mc.Assign(1, East());                                         // 0 deg
  mc.Assign(2, MobilityVector{Point{0, 0}, Point{1000, 800}});  // ~39 deg
  mc.Assign(3, West());                                         // 180 deg
  EXPECT_EQ(mc.num_live_clusters(), 3);
  // Probe at ~22 deg passes lambda=0.9 against both eastward clusters.
  MobilityVector probe{Point{0, 0}, Point{1000, 400}};
  auto compatible = mc.FindCompatibleClusters(probe);
  EXPECT_EQ(compatible.size(), 2u);
}

TEST(MobilityClusteringTest, ManyMembersStressRecycling) {
  MobilityClustering mc(kLambda45);
  for (int64_t i = 0; i < 200; ++i) {
    mc.Assign(i, (i % 2 == 0) ? East(double(i)) : West(double(i)));
  }
  EXPECT_EQ(mc.num_live_clusters(), 2);
  for (int64_t i = 0; i < 200; ++i) mc.Remove(i);
  EXPECT_EQ(mc.num_live_clusters(), 0);
  EXPECT_EQ(mc.num_members(), 0);
}

}  // namespace
}  // namespace mtshare
