#include "mobility/transition_model.h"

#include <gtest/gtest.h>

namespace mtshare {
namespace {

// 4 vertices in 2 groups: {0,1} -> group 0, {2,3} -> group 1.
const std::vector<int32_t> kGroups = {0, 0, 1, 1};

TEST(TransitionModelTest, EmpiricalFrequencies) {
  std::vector<OdPair> trips = {{0, 2}, {0, 3}, {0, 1}, {0, 2}};
  TransitionModel m = TransitionModel::Build(4, 2, kGroups, trips);
  // Vertex 0: 3 of 4 trips end in group 1.
  EXPECT_DOUBLE_EQ(m.Probability(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m.Probability(0, 1), 0.75);
  EXPECT_EQ(m.TripCount(0), 4);
  EXPECT_EQ(m.total_trips(), 4);
}

TEST(TransitionModelTest, RowsSumToOne) {
  std::vector<OdPair> trips = {{0, 2}, {1, 3}, {2, 0}, {3, 1}, {0, 1}};
  TransitionModel m = TransitionModel::Build(4, 2, kGroups, trips);
  for (VertexId v = 0; v < 4; ++v) {
    double sum = 0.0;
    for (int32_t g = 0; g < 2; ++g) sum += m.Probability(v, g);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "vertex " << v;
  }
}

TEST(TransitionModelTest, NoDataVertexGetsGlobalPrior) {
  std::vector<OdPair> trips = {{0, 2}, {0, 2}, {0, 1}};  // vertex 3 unseen
  TransitionModel m = TransitionModel::Build(4, 2, kGroups, trips);
  EXPECT_EQ(m.TripCount(3), 0);
  // Global: 2/3 to group 1, 1/3 to group 0.
  EXPECT_NEAR(m.Probability(3, 1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.Probability(3, 0), 1.0 / 3.0, 1e-12);
}

TEST(TransitionModelTest, NoTripsAtAllGivesUniform) {
  TransitionModel m = TransitionModel::Build(4, 2, kGroups, {});
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(m.Probability(v, 0), 0.5);
    EXPECT_DOUBLE_EQ(m.Probability(v, 1), 0.5);
  }
}

TEST(TransitionModelTest, LaplaceSmoothingSpreadsMass) {
  std::vector<OdPair> trips = {{0, 2}, {0, 2}};
  TransitionModel raw = TransitionModel::Build(4, 2, kGroups, trips, 0.0);
  TransitionModel smooth = TransitionModel::Build(4, 2, kGroups, trips, 1.0);
  EXPECT_DOUBLE_EQ(raw.Probability(0, 0), 0.0);
  EXPECT_GT(smooth.Probability(0, 0), 0.0);
  EXPECT_LT(smooth.Probability(0, 1), 1.0);
  double sum = smooth.Probability(0, 0) + smooth.Probability(0, 1);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(TransitionModelTest, MassTowardsSumsSelectedGroups) {
  std::vector<OdPair> trips = {{0, 0}, {0, 2}, {0, 3}, {0, 3}};
  TransitionModel m = TransitionModel::Build(4, 2, kGroups, trips);
  EXPECT_DOUBLE_EQ(m.MassTowards(0, {0}), 0.25);
  EXPECT_DOUBLE_EQ(m.MassTowards(0, {1}), 0.75);
  EXPECT_DOUBLE_EQ(m.MassTowards(0, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(m.MassTowards(0, {}), 0.0);
}

TEST(TransitionModelTest, MemoryAccounting) {
  TransitionModel m = TransitionModel::Build(4, 2, kGroups, {});
  EXPECT_GE(m.MemoryBytes(), 4 * 2 * sizeof(double));
}

}  // namespace
}  // namespace mtshare
