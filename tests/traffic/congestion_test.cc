#include "traffic/congestion.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_generators.h"
#include "routing/dijkstra.h"

namespace mtshare {
namespace {

TEST(CongestionProfileTest, DefaultIsFlatUnity) {
  CongestionProfile flat;
  EXPECT_TRUE(flat.IsFlat());
  for (int h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(flat.Multiplier(h * 3600.0 + 123.0), 1.0);
  }
}

TEST(CongestionProfileTest, WorkdayPeaksAtRushHours) {
  CongestionProfile rush = CongestionProfile::Workday(1.0);
  EXPECT_FALSE(rush.IsFlat());
  double morning = rush.Multiplier(8.5 * 3600.0);   // hour-8 anchor
  double night = rush.Multiplier(3.5 * 3600.0);
  EXPECT_NEAR(morning, 1.8, 1e-9);
  EXPECT_NEAR(night, 1.0, 1e-9);
  // Evening peak too.
  EXPECT_GT(rush.Multiplier(18.5 * 3600.0), 1.7);
}

TEST(CongestionProfileTest, InterpolatesBetweenHours) {
  CongestionProfile rush = CongestionProfile::Workday(1.0);
  // Between the hour-7 (+35%) and hour-8 (+80%) anchors.
  double mid = rush.Multiplier(8.0 * 3600.0);
  EXPECT_GT(mid, 1.35);
  EXPECT_LT(mid, 1.80);
}

TEST(CongestionProfileTest, AmplitudeZeroIsFreeFlow) {
  CongestionProfile none = CongestionProfile::Workday(0.0);
  EXPECT_TRUE(none.IsFlat());
}

TEST(CongestionProfileTest, WrapsAcrossMidnight) {
  CongestionProfile rush = CongestionProfile::Workday(1.0);
  EXPECT_NEAR(rush.Multiplier(0.0), rush.Multiplier(86400.0), 1e-12);
  EXPECT_NEAR(rush.Multiplier(-3600.0), rush.Multiplier(23 * 3600.0), 1e-12);
}

class TimeDependentTest : public ::testing::Test {
 protected:
  TimeDependentTest() {
    GridCityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    opt.seed = 9;
    net_ = MakeGridCity(opt);
  }
  RoadNetwork net_;
};

TEST_F(TimeDependentTest, FlatProfileMatchesStaticDijkstra) {
  CongestionProfile flat;
  TimeDependentDijkstra td(net_, flat);
  DijkstraSearch reference(net_);
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    EXPECT_NEAR(td.Cost(s, t, 12345.0), reference.Cost(s, t), 1e-9);
  }
}

TEST_F(TimeDependentTest, RushHourSlowsTrips) {
  CongestionProfile rush = CongestionProfile::Workday(1.0);
  TimeDependentDijkstra td(net_, rush);
  VertexId s = 0;
  VertexId t = net_.num_vertices() - 1;
  Seconds at_rush = td.Cost(s, t, 8.5 * 3600.0);
  Seconds at_night = td.Cost(s, t, 3.0 * 3600.0);
  EXPECT_GT(at_rush, at_night * 1.3);
}

TEST_F(TimeDependentTest, FifoPropertyHolds) {
  // Departing later never arrives earlier.
  CongestionProfile rush = CongestionProfile::Workday(1.0);
  TimeDependentDijkstra td(net_, rush);
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    Seconds dep = rng.NextUniform(6 * 3600.0, 10 * 3600.0);
    Seconds arr1 = td.EarliestArrival(s, t, dep);
    Seconds arr2 = td.EarliestArrival(s, t, dep + 120.0);
    EXPECT_GE(arr2 + 1e-6, arr1) << s << "->" << t << " dep " << dep;
  }
}

TEST_F(TimeDependentTest, PathMatchesArrivalWhenRetimed) {
  CongestionProfile rush = CongestionProfile::Workday(0.7);
  TimeDependentDijkstra td(net_, rush);
  VertexId s = 3;
  VertexId t = net_.num_vertices() - 5;
  Seconds dep = 7.8 * 3600.0;
  Path p = td.FindPath(s, t, dep);
  ASSERT_TRUE(p.valid);
  Seconds retimed = td.RetimePath(p.vertices, dep);
  EXPECT_NEAR(retimed - dep, p.cost, 1e-6);
}

TEST_F(TimeDependentTest, StaticRouteDegradesUnderCongestion) {
  // A statically planned (free-flow) route re-timed under rush traffic is
  // never faster than the congestion-aware route — the audit the ablation
  // bench runs at scale.
  CongestionProfile rush = CongestionProfile::Workday(1.0);
  TimeDependentDijkstra td(net_, rush);
  DijkstraSearch static_search(net_);
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    VertexId s = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    VertexId t = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    if (s == t) continue;
    Seconds dep = 8.2 * 3600.0;
    Path static_path = static_search.FindPath(s, t);
    ASSERT_TRUE(static_path.valid);
    Seconds static_retimed = td.RetimePath(static_path.vertices, dep);
    Seconds aware = td.EarliestArrival(s, t, dep);
    EXPECT_GE(static_retimed + 1e-6, aware);
  }
}

TEST_F(TimeDependentTest, TrivialAndUnreachable) {
  RoadNetwork::Builder b(1.0);
  b.AddVertex({0, 0});
  b.AddVertex({10, 0});
  b.AddEdge(0, 1, 10);
  RoadNetwork tiny = b.Build();
  CongestionProfile flat;
  TimeDependentDijkstra td(tiny, flat);
  EXPECT_DOUBLE_EQ(td.EarliestArrival(0, 0, 500.0), 500.0);
  EXPECT_EQ(td.Cost(1, 0, 0.0), kInfiniteCost);
}

}  // namespace
}  // namespace mtshare
