#include "partition/landmark_graph.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_generators.h"
#include "routing/dijkstra.h"

namespace mtshare {
namespace {

class LandmarkGraphTest : public ::testing::Test {
 protected:
  LandmarkGraphTest() {
    GridCityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    opt.seed = 3;
    net_ = MakeGridCity(opt);
    partitioning_ = GridPartition(net_, 9);
    lg_ = std::make_unique<LandmarkGraph>(net_, partitioning_);
  }

  RoadNetwork net_;
  MapPartitioning partitioning_;
  std::unique_ptr<LandmarkGraph> lg_;
};

TEST_F(LandmarkGraphTest, SelfCostIsZero) {
  for (PartitionId p = 0; p < lg_->num_partitions(); ++p) {
    EXPECT_DOUBLE_EQ(lg_->LandmarkCost(p, p), 0.0);
  }
}

TEST_F(LandmarkGraphTest, CostsMatchDijkstraBetweenLandmarks) {
  DijkstraSearch search(net_);
  for (PartitionId a = 0; a < lg_->num_partitions(); ++a) {
    for (PartitionId b = 0; b < lg_->num_partitions(); b += 2) {
      EXPECT_DOUBLE_EQ(
          lg_->LandmarkCost(a, b),
          search.Cost(partitioning_.landmarks[a], partitioning_.landmarks[b]));
    }
  }
}

TEST_F(LandmarkGraphTest, AdjacencyIsSymmetric) {
  for (PartitionId a = 0; a < lg_->num_partitions(); ++a) {
    for (PartitionId b : lg_->Neighbors(a)) {
      EXPECT_TRUE(lg_->Adjacent(b, a)) << a << " ~ " << b;
    }
  }
}

TEST_F(LandmarkGraphTest, NoSelfAdjacency) {
  for (PartitionId a = 0; a < lg_->num_partitions(); ++a) {
    EXPECT_FALSE(lg_->Adjacent(a, a));
  }
}

TEST_F(LandmarkGraphTest, EveryPartitionHasANeighborOnConnectedCity) {
  for (PartitionId a = 0; a < lg_->num_partitions(); ++a) {
    EXPECT_FALSE(lg_->Neighbors(a).empty()) << "partition " << a;
  }
}

TEST_F(LandmarkGraphTest, AdjacencyImpliedByCrossingEdges) {
  // Pick any cross-partition road edge and verify adjacency holds.
  int checked = 0;
  for (VertexId v = 0; v < net_.num_vertices() && checked < 50; ++v) {
    PartitionId pv = partitioning_.PartitionOf(v);
    for (const Arc& arc : net_.OutArcs(v)) {
      PartitionId pw = partitioning_.PartitionOf(arc.head);
      if (pv != pw) {
        EXPECT_TRUE(lg_->Adjacent(pv, pw));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_F(LandmarkGraphTest, TriangleInequalityOverLandmarks) {
  // cost(a,c) <= cost(a,b) + cost(b,c): true since costs are real
  // shortest-path costs on the road network.
  int32_t k = lg_->num_partitions();
  for (PartitionId a = 0; a < k; ++a) {
    for (PartitionId b = 0; b < k; ++b) {
      for (PartitionId c = 0; c < k; c += 3) {
        EXPECT_LE(lg_->LandmarkCost(a, c),
                  lg_->LandmarkCost(a, b) + lg_->LandmarkCost(b, c) + 1e-9);
      }
    }
  }
}

TEST_F(LandmarkGraphTest, LowerBoundIsAdmissibleOnRandomPairs) {
  // The candidate-pruning contract: LowerBound(a, b) <= true cost, always —
  // an inadmissible bound would silently change matching results. Sampled
  // over random pairs, including same-partition and same-vertex pairs.
  DijkstraSearch search(net_);
  Rng rng(77);
  int nontrivial = 0;
  for (int i = 0; i < 400; ++i) {
    VertexId a = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    VertexId b = VertexId(rng.NextInt(0, net_.num_vertices() - 1));
    Seconds lb = lg_->LowerBound(a, b);
    EXPECT_GE(lb, 0.0) << a << "->" << b;
    Seconds exact = search.Cost(a, b);
    EXPECT_LE(lb, exact + 1e-9) << a << "->" << b;
    if (lb > 0.0) ++nontrivial;
  }
  // The bound must actually bite somewhere, or pruning is a no-op.
  EXPECT_GT(nontrivial, 0);
}

TEST_F(LandmarkGraphTest, LowerBoundIsZeroForSameVertex) {
  for (VertexId v = 0; v < net_.num_vertices(); v += 17) {
    EXPECT_DOUBLE_EQ(lg_->LowerBound(v, v), 0.0);
  }
}

TEST_F(LandmarkGraphTest, LowerBoundAdmissibleOnOneWayNetwork) {
  // Asymmetric network: d(a,b) != d(b,a), so the from/to landmark tables
  // must be genuinely directional (a reverse-Dijkstra bug would surface as
  // an inadmissible bound here).
  GridCityOptions opt;
  opt.rows = 12;
  opt.cols = 12;
  opt.one_way_fraction = 0.5;
  opt.seed = 11;
  RoadNetwork net = MakeGridCity(opt);
  MapPartitioning parts = GridPartition(net, 9);
  LandmarkGraph lg(net, parts);
  DijkstraSearch search(net);
  Rng rng(78);
  for (int i = 0; i < 300; ++i) {
    VertexId a = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId b = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    EXPECT_LE(lg.LowerBound(a, b), search.Cost(a, b) + 1e-9)
        << a << "->" << b;
  }
}

TEST_F(LandmarkGraphTest, MemoryAccounting) {
  EXPECT_GE(lg_->MemoryBytes(),
            size_t(lg_->num_partitions()) * lg_->num_partitions() *
                sizeof(Seconds));
}

}  // namespace
}  // namespace mtshare
