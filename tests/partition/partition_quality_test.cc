// Comparative quality of the two partitioning strategies: bipartite
// partitions must be more *transition-homogeneous* than grid partitions of
// the same cardinality when the workload has directional structure — the
// property Table V's end-to-end gains rest on.
#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_generators.h"
#include "mobility/transition_model.h"
#include "partition/bipartite_partitioner.h"

namespace mtshare {
namespace {

// Average within-partition variance of the per-vertex transition vectors,
// computed against a fixed reference grouping (the grid partitions) so the
// two strategies are measured in the same feature space.
double TransitionVariance(const MapPartitioning& partitioning,
                          const TransitionModel& reference) {
  double total = 0.0;
  int64_t count = 0;
  const int32_t dim = reference.num_groups();
  for (const auto& members : partitioning.partition_vertices) {
    if (members.size() < 2) continue;
    std::vector<double> mean(dim, 0.0);
    for (VertexId v : members) {
      const double* row = reference.Row(v);
      for (int32_t j = 0; j < dim; ++j) mean[j] += row[j];
    }
    for (double& m : mean) m /= double(members.size());
    for (VertexId v : members) {
      const double* row = reference.Row(v);
      double d2 = 0.0;
      for (int32_t j = 0; j < dim; ++j) {
        d2 += (row[j] - mean[j]) * (row[j] - mean[j]);
      }
      total += d2;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / double(count);
}

TEST(PartitionQualityTest, BipartiteMoreTransitionHomogeneousThanGrid) {
  GridCityOptions gopt;
  gopt.rows = 16;
  gopt.cols = 16;
  gopt.seed = 29;
  RoadNetwork net = MakeGridCity(gopt);

  // Polarized history: west half flows to the NE corner, east half to the
  // SW corner — strong transition structure on top of geography.
  VertexId ne = 0;
  VertexId sw = 0;
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    if (net.coord(v).x + net.coord(v).y >
        net.coord(ne).x + net.coord(ne).y) {
      ne = v;
    }
    if (net.coord(v).x + net.coord(v).y <
        net.coord(sw).x + net.coord(sw).y) {
      sw = v;
    }
  }
  // Diagonal split so the polarization boundary always crosses the
  // axis-aligned grid partitions (making them transition-mixed).
  double mid_diag = (net.bounds().min.x + net.bounds().max.x) / 2 +
                    (net.bounds().min.y + net.bounds().max.y) / 2;
  std::vector<OdPair> trips;
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    VertexId dest = net.coord(v).x + net.coord(v).y < mid_diag ? ne : sw;
    if (dest != v) {
      for (int k = 0; k < 3; ++k) trips.emplace_back(v, dest);
    }
  }

  MapPartitioning grid = GridPartition(net, 16);
  BipartiteOptions bopt;
  bopt.kappa = grid.num_partitions();
  bopt.kt = 4;
  MapPartitioning bipartite = BipartitePartition(net, trips, bopt);
  ASSERT_GT(bipartite.num_partitions(), 1);

  // Shared feature space: transition vectors against the grid partitions.
  TransitionModel reference = TransitionModel::Build(
      net.num_vertices(), grid.num_partitions(), grid.vertex_partition,
      trips);
  double var_grid = TransitionVariance(grid, reference);
  double var_bipartite = TransitionVariance(bipartite, reference);
  EXPECT_LT(var_bipartite, var_grid) << "bipartite should group vertices "
                                        "with similar transition patterns";
}

TEST(PartitionQualityTest, StrategiesEquivalentWithoutStructure) {
  // With uniform random trips there is no transition signal: bipartite
  // degenerates to a geographic clustering and must not be much worse than
  // grid on geometry (mean partition radius within 2x).
  GridCityOptions gopt;
  gopt.rows = 14;
  gopt.cols = 14;
  gopt.seed = 31;
  RoadNetwork net = MakeGridCity(gopt);
  Rng rng(33);
  std::vector<OdPair> trips;
  for (int i = 0; i < 3000; ++i) {
    VertexId a = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    VertexId b = VertexId(rng.NextInt(0, net.num_vertices() - 1));
    if (a != b) trips.emplace_back(a, b);
  }
  MapPartitioning grid = GridPartition(net, 12);
  BipartiteOptions bopt;
  bopt.kappa = grid.num_partitions();
  bopt.kt = 4;
  MapPartitioning bipartite = BipartitePartition(net, trips, bopt);

  auto mean_radius = [](const MapPartitioning& p) {
    double acc = 0.0;
    for (double r : p.radius_m) acc += r;
    return acc / p.num_partitions();
  };
  EXPECT_LT(mean_radius(bipartite), 2.5 * mean_radius(grid));
}

}  // namespace
}  // namespace mtshare
