#include "partition/bipartite_partitioner.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_generators.h"

namespace mtshare {
namespace {

RoadNetwork TestNet() {
  GridCityOptions opt;
  opt.rows = 14;
  opt.cols = 14;
  opt.seed = 9;
  return MakeGridCity(opt);
}

// Synthetic history: vertices in the left half send trips to the top-right
// corner, right half to the bottom-left corner — two sharply different
// transition patterns.
std::vector<OdPair> PolarizedTrips(const RoadNetwork& net, int per_vertex) {
  // Find corner-most vertices.
  VertexId top_right = 0;
  VertexId bottom_left = 0;
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    const Point& p = net.coord(v);
    const Point& tr = net.coord(top_right);
    const Point& bl = net.coord(bottom_left);
    if (p.x + p.y > tr.x + tr.y) top_right = v;
    if (p.x + p.y < bl.x + bl.y) bottom_left = v;
  }
  double mid_x = (net.bounds().min.x + net.bounds().max.x) / 2;
  std::vector<OdPair> trips;
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    VertexId dest = net.coord(v).x < mid_x ? top_right : bottom_left;
    if (dest == v) continue;
    for (int i = 0; i < per_vertex; ++i) trips.emplace_back(v, dest);
  }
  return trips;
}

TEST(BipartitePartitionTest, ValidPartitioningStructure) {
  RoadNetwork net = TestNet();
  BipartiteOptions opt;
  opt.kappa = 12;
  opt.kt = 4;
  MapPartitioning p = BipartitePartition(net, PolarizedTrips(net, 3), opt);
  ASSERT_EQ(p.vertex_partition.size(), size_t(net.num_vertices()));
  std::vector<int> seen(net.num_vertices(), 0);
  for (PartitionId pid = 0; pid < p.num_partitions(); ++pid) {
    EXPECT_FALSE(p.partition_vertices[pid].empty());
    for (VertexId v : p.partition_vertices[pid]) {
      EXPECT_EQ(p.vertex_partition[v], pid);
      ++seen[v];
    }
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(BipartitePartitionTest, PartitionCountNearKappa) {
  RoadNetwork net = TestNet();
  BipartiteOptions opt;
  opt.kappa = 12;
  opt.kt = 4;
  MapPartitioning p = BipartitePartition(net, PolarizedTrips(net, 3), opt);
  EXPECT_GE(p.num_partitions(), opt.kappa / 2);
  EXPECT_LE(p.num_partitions(), opt.kappa * 2);
}

TEST(BipartitePartitionTest, SeparatesPolarizedTransitionPatterns) {
  RoadNetwork net = TestNet();
  BipartiteOptions opt;
  opt.kappa = 10;
  opt.kt = 2;
  MapPartitioning p = BipartitePartition(net, PolarizedTrips(net, 5), opt);
  // No partition should straddle the x midline by much: count partitions
  // whose members are mixed across halves.
  double mid_x = (net.bounds().min.x + net.bounds().max.x) / 2;
  int mixed = 0;
  for (PartitionId pid = 0; pid < p.num_partitions(); ++pid) {
    int left = 0;
    int right = 0;
    for (VertexId v : p.partition_vertices[pid]) {
      (net.coord(v).x < mid_x ? left : right)++;
    }
    int minority = std::min(left, right);
    if (minority > static_cast<int>(p.partition_vertices[pid].size()) / 4) {
      ++mixed;
    }
  }
  // Most partitions should be pure given the sharp polarization.
  EXPECT_LE(mixed, p.num_partitions() / 3);
}

TEST(BipartitePartitionTest, DeterministicForSeed) {
  RoadNetwork net = TestNet();
  BipartiteOptions opt;
  opt.kappa = 8;
  opt.kt = 3;
  auto trips = PolarizedTrips(net, 2);
  MapPartitioning a = BipartitePartition(net, trips, opt);
  MapPartitioning b = BipartitePartition(net, trips, opt);
  EXPECT_EQ(a.vertex_partition, b.vertex_partition);
}

TEST(BipartitePartitionTest, WorksWithEmptyHistory) {
  RoadNetwork net = TestNet();
  BipartiteOptions opt;
  opt.kappa = 8;
  opt.kt = 3;
  MapPartitioning p = BipartitePartition(net, {}, opt);
  EXPECT_GT(p.num_partitions(), 0);
  // With uniform transition rows the result degenerates gracefully to a
  // geographic clustering; structure must still be valid.
  for (PartitionId pid = 0; pid < p.num_partitions(); ++pid) {
    EXPECT_FALSE(p.partition_vertices[pid].empty());
  }
}

TEST(BipartitePartitionTest, DiagnosticsReportIterations) {
  RoadNetwork net = TestNet();
  BipartiteOptions opt;
  opt.kappa = 8;
  opt.kt = 3;
  opt.max_outer_iterations = 4;
  BipartiteDiagnostics diag;
  BipartitePartition(net, PolarizedTrips(net, 2), opt, &diag);
  EXPECT_GE(diag.outer_iterations, 1);
  EXPECT_LE(diag.outer_iterations, 4);
  EXPECT_GE(diag.last_change_fraction, 0.0);
  EXPECT_LE(diag.last_change_fraction, 1.0);
}

TEST(BipartitePartitionTest, PartitionsAreGeographicallyCompact) {
  RoadNetwork net = TestNet();
  BipartiteOptions opt;
  opt.kappa = 12;
  opt.kt = 4;
  MapPartitioning p = BipartitePartition(net, PolarizedTrips(net, 3), opt);
  // Average partition radius should be far below the city radius.
  double city_radius =
      std::max(net.bounds().Width(), net.bounds().Height()) / 2;
  double avg_radius = 0;
  for (double r : p.radius_m) avg_radius += r;
  avg_radius /= p.num_partitions();
  EXPECT_LT(avg_radius, city_radius * 0.6);
}

}  // namespace
}  // namespace mtshare
