#include "partition/map_partitioning.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/graph_generators.h"

namespace mtshare {
namespace {

RoadNetwork TestNet() {
  GridCityOptions opt;
  opt.rows = 16;
  opt.cols = 16;
  opt.seed = 7;
  return MakeGridCity(opt);
}

TEST(GridPartitionTest, EveryVertexAssignedExactlyOnce) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 16);
  ASSERT_EQ(p.vertex_partition.size(), size_t(net.num_vertices()));
  std::vector<int> seen(net.num_vertices(), 0);
  for (PartitionId pid = 0; pid < p.num_partitions(); ++pid) {
    for (VertexId v : p.partition_vertices[pid]) {
      EXPECT_EQ(p.vertex_partition[v], pid);
      ++seen[v];
    }
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(GridPartitionTest, PartitionCountNearTarget) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 16);
  EXPECT_GE(p.num_partitions(), 10);
  EXPECT_LE(p.num_partitions(), 24);
}

TEST(GridPartitionTest, NoEmptyPartitions) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 25);
  for (const auto& members : p.partition_vertices) {
    EXPECT_FALSE(members.empty());
  }
}

TEST(GridPartitionTest, SinglePartitionDegenerate) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 1);
  EXPECT_EQ(p.num_partitions(), 1);
  EXPECT_EQ(p.partition_vertices[0].size(), size_t(net.num_vertices()));
}

TEST(FinalizeGeometryTest, LandmarkIsMemberOfItsPartition) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 12);
  for (PartitionId pid = 0; pid < p.num_partitions(); ++pid) {
    VertexId lm = p.landmarks[pid];
    EXPECT_EQ(p.vertex_partition[lm], pid);
  }
}

TEST(FinalizeGeometryTest, RadiusCoversAllMembers) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 12);
  for (PartitionId pid = 0; pid < p.num_partitions(); ++pid) {
    for (VertexId v : p.partition_vertices[pid]) {
      EXPECT_LE(Distance(net.coord(v), p.centroids[pid]),
                p.radius_m[pid] + 1e-9);
    }
  }
}

TEST(FinalizeGeometryTest, LandmarkNearCentroid) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 9);
  for (PartitionId pid = 0; pid < p.num_partitions(); ++pid) {
    // A landmark should be closer to the centroid than the partition edge.
    double d = Distance(net.coord(p.landmarks[pid]), p.centroids[pid]);
    EXPECT_LE(d, p.radius_m[pid] + 1e-9);
  }
}

TEST(IntersectingCircleTest, FindsContainingPartition) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 16);
  for (VertexId v = 0; v < net.num_vertices(); v += 37) {
    auto hits = p.PartitionsIntersectingCircle(net.coord(v), 1.0);
    PartitionId own = p.PartitionOf(v);
    EXPECT_NE(std::find(hits.begin(), hits.end(), own), hits.end())
        << "vertex " << v;
  }
}

TEST(IntersectingCircleTest, LargeRadiusCoversEverything) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 16);
  auto hits = p.PartitionsIntersectingCircle(net.coord(0), 1e9);
  EXPECT_EQ(static_cast<int32_t>(hits.size()), p.num_partitions());
}

TEST(IntersectingCircleTest, SmallRadiusFarAwayFindsNothingNearby) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 16);
  Point far{net.bounds().max.x + 1e6, net.bounds().max.y + 1e6};
  EXPECT_TRUE(p.PartitionsIntersectingCircle(far, 10.0).empty());
}

TEST(MapPartitioningTest, MemoryAccounting) {
  RoadNetwork net = TestNet();
  MapPartitioning p = GridPartition(net, 16);
  EXPECT_GT(p.MemoryBytes(), size_t(net.num_vertices()) * sizeof(PartitionId));
}

}  // namespace
}  // namespace mtshare
