// The money side of ridesharing, worked end to end (paper Sec. IV-D):
// three passengers share a taxi for part of their trips; this example
// settles the episode with eqs. (5)-(8) and prints who pays what, why the
// driver still comes out ahead, and how the detour-proportional split
// compensates the rider who looped the longest.
//
//   $ ./build/examples/payment_walkthrough
#include <cstdio>

#include "payment/payment_model.h"

using namespace mtshare;

int main() {
  PaymentConfig config;  // beta = 0.80, eta = 0.01, Chengdu-style tariff
  std::printf("tariff: %.0f yuan covers the first %.0f km, then %.2f/km\n",
              config.base_fare, config.base_km, config.per_km);
  std::printf("benefit split: passengers %.0f%%, driver %.0f%%; base detour "
              "rate eta=%.2f\n\n",
              config.beta * 100, (1 - config.beta) * 100, config.eta);

  // One shared episode: the taxi drove 11.2 km while occupied and carried
  // three overlapping trips.
  std::vector<EpisodePassenger> riders = {
      {/*request=*/1, /*direct_m=*/6200.0, /*traveled_m=*/6200.0},  // no detour
      {/*request=*/2, /*direct_m=*/4800.0, /*traveled_m=*/5900.0},  // +23%
      {/*request=*/3, /*direct_m=*/3500.0, /*traveled_m=*/5200.0},  // +49%
  };
  const double driven_m = 11200.0;
  EpisodeSettlement s = SettleEpisode(riders, driven_m, config);

  double sum_regular = 0.0;
  std::printf("%-10s %10s %10s %10s %10s\n", "passenger", "direct km",
              "sigma", "alone", "shared");
  for (size_t i = 0; i < s.passengers.size(); ++i) {
    const PassengerSettlement& p = s.passengers[i];
    sum_regular += p.regular_fare;
    std::printf("#%-9lld %10.1f %10.3f %10.2f %10.2f\n",
                static_cast<long long>(p.request), riders[i].direct_m / 1000.0,
                p.detour_rate, p.regular_fare, p.shared_fare);
  }
  std::printf("\nseparate rides would cost %.2f; the shared route's fare is "
              "%.2f\n",
              sum_regular, s.ridesharing_fare);
  std::printf("ridesharing benefit B = %.2f (eq. 5)\n", s.benefit);
  std::printf("passengers keep beta*B = %.2f, split by detour rates "
              "(eqs. 6-8)\n",
              config.beta * s.benefit);
  std::printf("driver earns %.2f = route fare %.2f + (1-beta)*B %.2f\n",
              s.driver_income, s.ridesharing_fare,
              (1 - config.beta) * s.benefit);
  std::printf("\nnote how passenger #3 (largest detour) receives the largest\n"
              "discount, and nobody pays more than riding alone.\n");
  return 0;
}
