// Streaming dispatch: feed the engine through a RequestSource instead of a
// pre-materialized vector, watch every match decision live, and coalesce
// arrivals into batch windows with load shedding.
//
//   $ ./build/examples/streaming_dispatch
//
// This is the in-process version of what `tools/mtshare_serve` does over
// stdin/stdout (README "Service mode", DESIGN.md §12): the same run API,
// ScenarioSpec, just pointed at a stream.
#include <cstdio>
#include <sstream>

#include "core/mtshare_system.h"
#include "demand/trip_io.h"
#include "graph/graph_generators.h"
#include "sim/request_source.h"

using namespace mtshare;

int main() {
  // 1. A city, demand, and a trained system — exactly as in `quickstart`.
  GridCityOptions city;
  city.rows = 16;
  city.cols = 16;
  RoadNetwork network = MakeGridCity(city);
  DemandModel demand(network, DemandModelOptions{});
  DistanceOracle oracle(network);

  ScenarioOptions sopt;
  sopt.num_requests = 300;
  sopt.num_historical_trips = 6000;
  Scenario scenario = MakeScenario(network, demand, oracle, sopt);

  SystemConfig config;
  config.kappa = 20;
  config.kt = 5;
  auto system = MTShareSystem::Create(network, scenario.HistoricalOdPairs(),
                                      config);
  if (!system.ok()) {
    std::fprintf(stderr, "system: %s\n", system.status().ToString().c_str());
    return 1;
  }

  // 2. A request log in the service wire format — one CSV line per request,
  //    the layout `mtshare_sim --save-requests` writes and `mtshare_serve`
  //    reads. Here the "service traffic" is the scenario serialized into a
  //    stringstream; in production it would be a socket or a log file.
  std::stringstream wire;
  for (const RideRequest& r : scenario.requests) {
    wire << FormatRequestCsv(r) << "\n";
  }

  // 3. A StreamRequestSource parses it back one line at a time. The source
  //    self-validates (dense ids, release-sorted, vertex bounds) and a run
  //    fed from it is byte-identical to one fed from the vector.
  StreamSourceOptions wire_options;
  wire_options.num_vertices = network.num_vertices();
  StreamRequestSource stream(&wire, wire_options);

  // 4. Dispatch with a 500 ms (simulated) batch window and a bounded
  //    pending queue, printing every decision as it is made. Window 0
  //    would be the classic per-request loop; requests past the queue
  //    bound are shed, not silently dropped.
  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.source = &stream;  // instead of spec.requests
  spec.num_taxis = 30;
  spec.batch_window_ms = 500.0;
  spec.max_queue = 16;
  spec.on_decision = [](const RideRequest& r, const RequestRecord& rec) {
    if (rec.shed) {
      std::printf("request %lld: shed (queue full)\n",
                  static_cast<long long>(r.id));
    } else if (r.id < 5 || rec.offline) {  // keep the demo output short
      std::printf("request %lld: %s taxi %d (%.2f ms)%s\n",
                  static_cast<long long>(r.id),
                  rec.assigned ? "assigned to" : "rejected by", rec.taxi,
                  rec.response_ms, rec.offline ? " [street hail]" : "");
    }
  };

  Result<Metrics> run = system.value()->RunScenario(spec);
  if (!run.ok()) {  // a malformed stream fails here with a line-tagged error
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const Metrics& m = run.value();

  // 5. The serve counters land in Metrics::serve (and in the schema-5
  //    "serve" block of --report files).
  std::printf(
      "\nserved %lld/%zu  batches=%lld  admitted=%lld  shed=%lld  "
      "queue_depth=%lld\n",
      static_cast<long long>(m.ServedRequests()), scenario.requests.size(),
      static_cast<long long>(m.serve.batches),
      static_cast<long long>(m.serve.admitted),
      static_cast<long long>(m.serve.shed),
      static_cast<long long>(m.serve.queue_depth));
  return 0;
}
