// Rush hour, downtown: the scenario the paper's introduction motivates.
// Compares every matching scheme on the same morning-peak request stream
// and prints a side-by-side scoreboard — the quick way to see why
// mobility-aware matching matters when demand outstrips the fleet.
//
//   $ ./build/examples/peak_hour_comparison
#include <cstdio>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"

using namespace mtshare;

int main() {
  GridCityOptions city;
  city.rows = 32;
  city.cols = 32;
  city.spacing_m = 160.0;
  RoadNetwork network = MakeGridCity(city);

  DemandModelOptions dopt;
  dopt.day = DayType::kWorkday;
  DemandModel demand(network, dopt);
  DistanceOracle oracle(network);

  ScenarioOptions sopt;
  sopt.t_begin = 8 * 3600.0;
  sopt.t_end = 9 * 3600.0;
  sopt.num_requests = 1200;  // heavy morning demand
  sopt.num_historical_trips = 15000;
  Scenario scenario = MakeScenario(network, demand, oracle, sopt);

  SystemConfig config;
  config.kappa = 64;
  config.kt = 16;
  auto system = MTShareSystem::Create(network, scenario.HistoricalOdPairs(),
                                      config);
  if (!system.ok()) {
    std::fprintf(stderr, "system: %s\n", system.status().ToString().c_str());
    return 1;
  }

  const int32_t fleet = 120;
  std::printf("morning peak: %zu requests, %d taxis, %d-vertex city\n\n",
              scenario.requests.size(), fleet, network.num_vertices());
  std::printf("%-12s %8s %10s %10s %10s %12s\n", "scheme", "served",
              "resp(ms)", "wait(min)", "detour", "income");
  ScenarioSpec spec;
  spec.requests = &scenario.requests;
  spec.num_taxis = fleet;
  for (SchemeKind scheme :
       {SchemeKind::kNoSharing, SchemeKind::kTShare, SchemeKind::kPGreedyDp,
        SchemeKind::kMtShare}) {
    spec.scheme = scheme;
    Result<Metrics> run = system.value()->RunScenario(spec);
    if (!run.ok()) {
      std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
      return 1;
    }
    Metrics m = std::move(run).value();
    std::printf("%-12s %8d %10.3f %10.2f %10.2f %12.0f\n", SchemeName(scheme),
                m.ServedRequests(), m.MeanResponseMs(),
                m.MeanWaitingMinutes(), m.MeanDetourMinutes(),
                m.total_driver_income);
  }
  std::printf(
      "\nReading the table: ridesharing roughly halves the unserved queue\n"
      "versus exclusive taxis, and mT-Share's mobility-aware indexing finds\n"
      "matches the grid-based baselines miss, at sub-millisecond dispatch.\n");
  return 0;
}
