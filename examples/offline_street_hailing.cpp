// A lazy weekend late morning: a third of the riders never open the app —
// they stand at the roadside and raise a hand (the paper's *offline*
// requests, 13.71%-55.39% of real users). This example contrasts plain
// mT-Share with mT-Share-pro, whose probabilistic routing steers
// under-loaded taxis through the streets where hailers are statistically
// likely, so drivers find fares the server never saw.
//
//   $ ./build/examples/offline_street_hailing
#include <cstdio>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"

using namespace mtshare;

int main() {
  GridCityOptions city;
  city.rows = 32;
  city.cols = 32;
  city.spacing_m = 160.0;
  RoadNetwork network = MakeGridCity(city);

  DemandModelOptions dopt;
  dopt.day = DayType::kWeekend;
  DemandModel demand(network, dopt);
  DistanceOracle oracle(network);

  ScenarioOptions sopt;
  sopt.t_begin = 10 * 3600.0;
  sopt.t_end = 11 * 3600.0;
  sopt.num_requests = 700;
  sopt.offline_fraction = 1.0 / 3.0;  // street hailers
  sopt.num_historical_trips = 15000;
  Scenario scenario = MakeScenario(network, demand, oracle, sopt);

  SystemConfig config;
  config.kappa = 64;
  config.kt = 16;
  auto system = MTShareSystem::Create(network, scenario.HistoricalOdPairs(),
                                      config);
  if (!system.ok()) {
    std::fprintf(stderr, "system: %s\n", system.status().ToString().c_str());
    return 1;
  }

  const int32_t fleet = 100;
  std::printf("weekend 10:00-11:00, %zu requests (%d hailing offline), "
              "%d taxis\n\n",
              scenario.requests.size(), scenario.CountOffline(), fleet);
  std::printf("%-14s %8s %9s %9s %10s %11s\n", "scheme", "served", "online",
              "offline", "resp(ms)", "detour(min)");
  ScenarioSpec spec;
  spec.requests = &scenario.requests;
  spec.num_taxis = fleet;
  for (SchemeKind scheme : {SchemeKind::kMtShare, SchemeKind::kMtSharePro}) {
    spec.scheme = scheme;
    Result<Metrics> run = system.value()->RunScenario(spec);
    if (!run.ok()) {
      std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
      return 1;
    }
    Metrics m = std::move(run).value();
    std::printf("%-14s %8d %9d %9d %10.3f %11.2f\n", SchemeName(scheme),
                m.ServedRequests(), m.ServedOnline(), m.ServedOffline(),
                m.MeanResponseMs(), m.MeanDetourMinutes());
  }
  std::printf(
      "\nmT-Share-pro's taxis cruise toward partitions with high historical\n"
      "trip-origin mass when under-loaded (Algorithm 4), so they cross paths\n"
      "with street hailers the dispatcher cannot see. The price is a longer\n"
      "average detour and costlier route planning — the trade the paper\n"
      "evaluates in its nonpeak scenario (Figs. 10-13, 16).\n");
  return 0;
}
