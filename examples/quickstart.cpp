// Quickstart: build a city, train mT-Share on historical trips, and serve a
// morning of ride requests.
//
//   $ ./build/examples/quickstart
//
// Walks the whole public API surface in ~60 lines: road network generation,
// demand modeling, scenario creation, system construction, and a simulated
// run with the mT-Share matching scheme.
#include <cstdio>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"

using namespace mtshare;

int main() {
  // 1. A road network. Generators give synthetic cities; LoadEdgeList()
  //    (graph/graph_io.h) reads your own map instead.
  GridCityOptions city;
  city.rows = 24;
  city.cols = 24;
  RoadNetwork network = MakeGridCity(city);
  std::printf("city: %d vertices, %d road segments\n", network.num_vertices(),
              network.num_edges());

  // 2. Demand: a hotspot model with commute-like directional flows.
  DemandModel demand(network, DemandModelOptions{});

  // 3. A scenario: one peak hour of requests plus the historical trips the
  //    mobility statistics are trained on.
  DistanceOracle oracle(network);
  ScenarioOptions sopt;
  sopt.t_begin = 8 * 3600.0;  // 08:00
  sopt.t_end = 9 * 3600.0;    // 09:00
  sopt.num_requests = 600;
  sopt.num_historical_trips = 10000;
  Scenario scenario = MakeScenario(network, demand, oracle, sopt);
  std::printf("scenario: %zu requests, %zu historical trips\n",
              scenario.requests.size(), scenario.historical_trips.size());

  // 4. The system: builds the bipartite map partitioning, landmark graph,
  //    and transition statistics from the historical trips. Create()
  //    validates the config and reports errors instead of dying.
  SystemConfig config;
  config.kappa = 40;  // partitions; scale with city size
  config.kt = 10;
  auto system = MTShareSystem::Create(network, scenario.HistoricalOdPairs(),
                                      config);
  if (!system.ok()) {
    std::fprintf(stderr, "system: %s\n", system.status().ToString().c_str());
    return 1;
  }
  std::printf("partitioning: %d partitions\n",
              system.value()->partitioning().num_partitions());

  // 5. Run a fleet of 60 shared taxis under mT-Share. ScenarioSpec is the
  //    primary run API; num_threads > 1 parallelizes candidate scoring
  //    with bit-identical results.
  ScenarioSpec spec;
  spec.scheme = SchemeKind::kMtShare;
  spec.requests = &scenario.requests;
  spec.num_taxis = 60;
  Result<Metrics> run = system.value()->RunScenario(spec);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }
  Metrics metrics = std::move(run).value();

  std::printf("\nresults (mT-Share, 60 taxis):\n");
  std::printf("  served:        %d / %d requests\n", metrics.ServedRequests(),
              metrics.TotalRequests());
  std::printf("  response time: %.3f ms/request\n", metrics.MeanResponseMs());
  std::printf("  waiting time:  %.1f min\n", metrics.MeanWaitingMinutes());
  std::printf("  detour time:   %.1f min\n", metrics.MeanDetourMinutes());
  std::printf("  fare saving:   %.1f%% vs riding alone\n",
              metrics.MeanFareSaving() * 100.0);
  std::printf("  driver income: %.0f yuan across the fleet\n",
              metrics.total_driver_income);
  return 0;
}
