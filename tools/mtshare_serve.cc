// mtshare_serve — streaming dispatch service over the mT-Share stack.
//
// Reads a newline-delimited request log (CSV or flat JSON, the format of
// demand/trip_io.h) from stdin or --input, dispatches each request through
// the configured scheme as it arrives, and streams one JSON decision line
// per request to stdout. Live SLO gauges (p50/p99 dispatch latency,
// ingest rate, shed count) go to stderr while the run is in flight.
//
// Examples:
//   mtshare_sim --rows=24 --cols=24 --requests=10000 --save-requests=log.csv
//   mtshare_serve --rows=24 --cols=24 --scheme=mt-share < log.csv
//   tail -f live.log | mtshare_serve --network=city.csv --batch-window-ms=200
//
// Flags (all --key=value):
//   --scheme       no-sharing | t-share | pgreedy-dp | mt-share |
//                  mt-share-pro            (default mt-share)
//   --taxis        fleet size              (default 150)
//   --kappa        partitions              (default 120)
//   --capacity     seats per taxi          (default 3)
//   --gamma        searching range, m      (default 2500)
//   --rho          deadline flexibility used to derive deadlines the log
//                  omits                   (default 1.3)
//   --seed         RNG seed                (default 42)
//   --threads      matching worker threads (default 1; 0 = all cores)
//   --oracle       auto | exact | lru | ch (default auto)
//   --candidates   index | ch_buckets      (default index) — candidate
//                  search path (DESIGN.md §14); ch_buckets answers pickup
//                  reachability with one backward CH sweep over last-stop
//                  buckets and screens insertion slots with the
//                  detour-ellipse bound. Decisions are identical.
//   --engine       event | sweep           (default event)
//   --rows/--cols  generated city size     (default 48x48)
//   --network      edge-list CSV to load instead of generating
//   --historical   historical trips for the mobility statistics
//                  (default 40000, matching mtshare_sim — with the same
//                  city/seed flags the two tools build identical systems,
//                  so serving a --save-requests log replays the sim run
//                  byte-identically)
//   --window       peak | nonpeak demand profile for the historical trips
//                  (default peak)
//   --batch-window-ms  collect arrivals for this many simulated ms after
//                  the first pending release, dispatch the batch at window
//                  close (default 0 = dispatch per request)
//   --max-queue    admission cap on the pending dispatch queue (default 0
//                  = unbounded; arrivals past the cap are shed)
//   --gauge-every  emit a gauge line to stderr every N decisions
//                  (default 1000; 0 = silent)
//   --input        read the request log from this file instead of stdin
//   --report       write a schema-5 JSON run report here (includes the
//                  "serve" admission/backpressure block)
//
// Exit codes: 0 success, 1 runtime failure (bad network file, malformed
// request line, short write), 2 flag/usage errors.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "common/histogram.h"
#include "common/string_util.h"
#include "core/mtshare_system.h"
#include "demand/trip_io.h"
#include "graph/graph_generators.h"
#include "graph/graph_io.h"
#include "sim/request_source.h"
#include "sim/run_report.h"

using namespace mtshare;

namespace {

std::map<std::string, std::string> ParseArgs(int argc, char** argv,
                                             bool* ok) {
  std::map<std::string, std::string> args;
  *ok = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      *ok = false;
      continue;
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args[arg.substr(2)] = "1";
    } else {
      args[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return args;
}

/// Strict numeric flag lookup: malformed values ("abc", "12x", "") are a
/// hard error instead of silently becoming 0 via atoi-style parsing.
double GetD(const std::map<std::string, std::string>& args,
            const std::string& key, double fallback, bool* ok) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  double value = 0.0;
  if (!ParseDouble(Trim(it->second), &value)) {
    std::fprintf(stderr, "invalid numeric value for --%s: '%s'\n",
                 key.c_str(), it->second.c_str());
    *ok = false;
    return fallback;
  }
  return value;
}

/// Strict non-negative integer flag (counts: taxis, threads, ...).
int32_t GetCount(const std::map<std::string, std::string>& args,
                 const std::string& key, int32_t fallback, bool* ok) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  int64_t value = 0;
  if (!ParseInt64(Trim(it->second), &value) || value < 0 ||
      value > INT32_MAX) {
    std::fprintf(stderr,
                 "invalid value for --%s: '%s' (want an integer >= 0)\n",
                 key.c_str(), it->second.c_str());
    *ok = false;
    return fallback;
  }
  return static_cast<int32_t>(value);
}

std::string GetS(const std::map<std::string, std::string>& args,
                 const std::string& key, const std::string& fallback) {
  auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

/// Strict unsigned 64-bit flag (RNG seeds). A double-based parse would
/// silently round seeds above 2^53 and make negative inputs UB on the
/// cast; ParseUint64 keeps full precision up to UINT64_MAX and rejects
/// signs and garbage outright.
uint64_t GetU64(const std::map<std::string, std::string>& args,
                const std::string& key, uint64_t fallback, bool* ok) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  uint64_t value = 0;
  if (!ParseUint64(Trim(it->second), &value)) {
    std::fprintf(stderr,
                 "invalid value for --%s: '%s' (want an unsigned integer)\n",
                 key.c_str(), it->second.c_str());
    *ok = false;
    return fallback;
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef SIGPIPE
  // A reader hanging up mid-stream must surface as a short write (exit 1
  // with a diagnostic), not kill the process with the default SIGPIPE
  // disposition before the write failure can be reported.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  bool ok = true;
  auto args = ParseArgs(argc, argv, &ok);
  if (!ok || args.count("help")) {
    std::fprintf(stderr,
                 "see the header of tools/mtshare_serve.cc for usage\n");
    return args.count("help") ? 0 : 2;
  }

  std::optional<SchemeKind> scheme =
      ParseScheme(GetS(args, "scheme", "mt-share"));
  if (!scheme.has_value()) {
    std::fprintf(stderr, "unknown --scheme\n");
    return 2;
  }
  const bool peak = GetS(args, "window", "peak") == "peak";
  const uint64_t seed = GetU64(args, "seed", 42, &ok);

  RoadNetwork network;
  std::string network_file = GetS(args, "network", "");
  GridCityOptions gopt;
  gopt.rows = GetCount(args, "rows", 48, &ok);
  gopt.cols = GetCount(args, "cols", 48, &ok);
  gopt.seed = seed;

  SystemConfig config;
  config.kappa = GetCount(args, "kappa", 120, &ok);
  config.kt = std::min<int32_t>(config.kappa, 20);
  config.rho = GetD(args, "rho", 1.3, &ok);
  config.taxi_capacity = GetCount(args, "capacity", 3, &ok);
  config.matching.gamma_max_m = GetD(args, "gamma", 2500.0, &ok);
  if (!ParseOracleBackend(GetS(args, "oracle", "auto"),
                          &config.oracle.backend)) {
    std::fprintf(stderr, "unknown --oracle (want auto|exact|lru|ch)\n");
    return 2;
  }
  if (!ParseCandidateSearch(GetS(args, "candidates", "index"),
                            &config.matching.candidate_search)) {
    std::fprintf(stderr, "unknown --candidates (want index|ch_buckets)\n");
    return 2;
  }
  config.seed = seed;

  const int32_t num_taxis = GetCount(args, "taxis", 150, &ok);
  const int32_t num_threads = GetCount(args, "threads", 1, &ok);
  const int32_t historical = GetCount(args, "historical", 40000, &ok);
  const double batch_window_ms = GetD(args, "batch-window-ms", 0.0, &ok);
  if (ok && batch_window_ms < 0.0) {
    std::fprintf(stderr, "--batch-window-ms must be >= 0\n");
    ok = false;
  }
  const int32_t max_queue = GetCount(args, "max-queue", 0, &ok);
  const int32_t gauge_every = GetCount(args, "gauge-every", 1000, &ok);
  const std::string engine_mode = GetS(args, "engine", "event");
  if (engine_mode != "event" && engine_mode != "sweep") {
    std::fprintf(stderr, "unknown --engine (want event|sweep)\n");
    return 2;
  }
  if (!ok) return 2;  // every malformed flag already printed its error

  Status valid = config.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "bad configuration: %s\n", valid.ToString().c_str());
    return 2;
  }

  if (!network_file.empty()) {
    Result<RoadNetwork> loaded = LoadEdgeList(network_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load network: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    network = std::move(loaded).value();
    network = ExtractLargestScc(network);
  } else {
    network = MakeGridCity(gopt);
  }

  // Historical trips only — the request stream itself arrives on stdin.
  DemandModelOptions dopt;
  dopt.day = peak ? DayType::kWorkday : DayType::kWeekend;
  dopt.seed = seed + 1;
  DemandModel demand(network, dopt);
  OracleOptions scratch;
  if (network.num_vertices() > scratch.max_exact_vertices) {
    scratch.backend = OracleBackend::kLru;
  }
  DistanceOracle scratch_oracle(network, scratch);
  ScenarioOptions sopt;
  sopt.num_requests = 0;
  sopt.num_historical_trips = historical;
  sopt.seed = seed + 2;
  Scenario scenario = MakeScenario(network, demand, scratch_oracle, sopt);

  auto system =
      MTShareSystem::Create(network, scenario.HistoricalOdPairs(), config);
  if (!system.ok()) {
    std::fprintf(stderr, "system: %s\n", system.status().ToString().c_str());
    return 2;
  }

  std::ifstream input_file;
  std::istream* in = &std::cin;
  std::string input_path = GetS(args, "input", "");
  if (!input_path.empty()) {
    input_file.open(input_path);
    if (!input_file) {
      std::fprintf(stderr, "cannot read --input %s\n", input_path.c_str());
      return 1;
    }
    in = &input_file;
  }

  // Service logs may omit direct_cost/deadline; derive them the same way
  // the generator does (cost from the oracle, deadline from rho). The
  // bounds guard leaves out-of-range vertices for the source's validation,
  // which reports a line-tagged error instead of crashing the oracle.
  DistanceOracle& oracle = system.value()->oracle();
  const double rho = config.rho;
  const int64_t num_vertices = network.num_vertices();
  StreamSourceOptions source_options;
  source_options.num_vertices = num_vertices;
  source_options.finalize = [&oracle, rho, num_vertices](RideRequest* r) {
    if (r->origin < 0 || r->origin >= num_vertices || r->destination < 0 ||
        r->destination >= num_vertices) {
      return;
    }
    if (r->direct_cost <= 0.0) {
      r->direct_cost = oracle.Cost(r->origin, r->destination);
    }
    if (r->deadline <= r->release_time) {
      r->deadline = r->release_time + rho * r->direct_cost;
    }
  };
  StreamRequestSource source(in, source_options);

  // Decision stream + live gauges. Latency is the dispatcher wall clock
  // per request (RequestRecord::response_ms); rate is decisions over real
  // time since the first one.
  LatencyHistogram latency = LatencyHistogram::ForLatencyMs();
  int64_t decisions = 0;
  int64_t shed = 0;
  // The decision stream IS the tool's output: a short write (full disk,
  // closed pipe) must fail the run, not silently drop decisions. printf
  // buffers, so failures can surface at any later write or only at the
  // final fflush — track the first one and re-check ferror at the end.
  bool write_failed = false;
  const auto t0 = std::chrono::steady_clock::now();

  ScenarioSpec spec;
  spec.scheme = *scheme;
  spec.source = &source;
  spec.num_taxis = num_taxis;
  spec.fleet_seed = seed + 3;
  spec.num_threads = num_threads;
  spec.event_driven = engine_mode == "event";
  spec.batch_window_ms = batch_window_ms;
  spec.max_queue = max_queue;
  spec.on_decision = [&](const RideRequest& r, const RequestRecord& rec) {
    ++decisions;
    int written = 0;
    if (rec.shed) {
      ++shed;
      written = std::printf("{\"id\":%lld,\"shed\":true}\n",
                            static_cast<long long>(r.id));
    } else if (rec.offline) {
      written = std::printf("{\"id\":%lld,\"offline\":true,\"taxi\":%d}\n",
                            static_cast<long long>(r.id), rec.taxi);
    } else {
      latency.Record(rec.response_ms);
      written = std::printf(
          "{\"id\":%lld,\"assigned\":%s,\"taxi\":%d,\"response_ms\":%.3f,"
          "\"candidates\":%d}\n",
          static_cast<long long>(r.id), rec.assigned ? "true" : "false",
          rec.taxi, rec.response_ms, rec.candidates);
    }
    write_failed = write_failed || written < 0;
    if (gauge_every > 0 && decisions % gauge_every == 0) {
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::fprintf(stderr,
                   "[serve] n=%lld p50=%.3fms p99=%.3fms rate=%.0f req/s "
                   "shed=%lld\n",
                   static_cast<long long>(decisions), latency.Percentile(0.50),
                   latency.Percentile(0.99),
                   elapsed_s > 0 ? decisions / elapsed_s : 0.0,
                   static_cast<long long>(shed));
    }
  };

  Result<Metrics> run = system.value()->RunScenario(spec);
  if (!run.ok()) {
    std::fprintf(stderr, "serve: %s\n", run.status().ToString().c_str());
    return 1;
  }
  Metrics m = std::move(run).value();
  if (std::fflush(stdout) != 0 || std::ferror(stdout) || write_failed) {
    std::fprintf(stderr,
                 "serve: short write on the decision stream (disk full or "
                 "closed pipe?) — decisions were lost\n");
    return 1;
  }

  std::fprintf(stderr,
               "[serve] done scheme=%s ingested=%lld served=%d "
               "(online=%d offline=%d) shed=%lld p50=%.3fms p99=%.3fms "
               "batches=%lld queue_depth=%lld exec_s=%.2f\n",
               SchemeName(*scheme), static_cast<long long>(source.produced()),
               m.ServedRequests(), m.ServedOnline(), m.ServedOffline(),
               static_cast<long long>(m.serve.shed), latency.Percentile(0.50),
               latency.Percentile(0.99),
               static_cast<long long>(m.serve.batches),
               static_cast<long long>(m.serve.queue_depth),
               m.execution_seconds);

  std::string report_path = GetS(args, "report", "");
  if (!report_path.empty()) {
    RunReportContext ctx;
    ctx.experiment = "mtshare_serve";
    ctx.scheme = SchemeName(*scheme);
    ctx.window = peak ? "peak" : "nonpeak";
    ctx.num_taxis = num_taxis;
    ctx.num_requests = static_cast<int32_t>(source.produced());
    ctx.seed = seed;
    Status written = WriteRunReport(report_path, ctx, m);
    if (!written.ok()) {
      std::fprintf(stderr, "report: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[serve] run report written to %s\n",
                 report_path.c_str());
  }
  return 0;
}
