# Smoke-runs mtshare_sim with --report and asserts the JSON lands with the
# expected schema marker. Invoked by the mtshare_sim_report_smoke ctest;
# needs -DSIM_BINARY=... and -DREPORT_PATH=...
file(REMOVE "${REPORT_PATH}")
execute_process(
  COMMAND "${SIM_BINARY}" --scheme=mt-share --rows=12 --cols=12
          --taxis=15 --requests=80 --report=${REPORT_PATH}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mtshare_sim --report exited ${rc}\n${out}\n${err}")
endif()
if(NOT EXISTS "${REPORT_PATH}")
  message(FATAL_ERROR "report file was not written: ${REPORT_PATH}")
endif()
file(READ "${REPORT_PATH}" report)
# Keys through schema_version 6 (the candidate-search routing counters).
foreach(key "schema_version" "response_ms" "p95" "phases" "dispatch_total_ms"
        "routing" "batch_queries" "settled_vertices" "lb_pruned"
        "fallback_queries" "serve" "batch_window_ms" "admitted" "shed"
        "queue_depth" "candidate_search" "bucket_candidates"
        "bucket_maintenance_ms" "slots_screened" "ellipse_pruned")
  if(NOT report MATCHES "\"${key}\"")
    message(FATAL_ERROR "report missing key '${key}':\n${report}")
  endif()
endforeach()
# The default path must label itself; a stray "ch_buckets" here means the
# flag default regressed.
if(NOT report MATCHES "\"candidate_search\": *\"index\"")
  message(FATAL_ERROR "default run not labeled candidate_search=index:\n${report}")
endif()
# Every online request in a classic run is admitted; zero means the serve
# counters are not wired through the engine.
if(report MATCHES "\"admitted\": *0[,\n}]")
  message(FATAL_ERROR "report shows zero admitted requests:\n${report}")
endif()
# A batched-routing miss during insertion means the priming fan has a
# coverage hole; fail the smoke loudly rather than silently degrade.
if(NOT report MATCHES "\"fallback_queries\": *0[,\n}]")
  message(FATAL_ERROR "report shows nonzero fallback_queries:\n${report}")
endif()
file(REMOVE "${REPORT_PATH}")

# Same smoke on the ch_buckets candidate path (schema_version 6): the run
# must label itself, do real sweep work, and keep the no-fallback invariant
# — the decision metrics are equivalence-tested elsewhere; this guards the
# CLI wiring and the counter plumbing.
execute_process(
  COMMAND "${SIM_BINARY}" --scheme=mt-share --rows=12 --cols=12
          --taxis=15 --requests=80 --candidates=ch_buckets
          --report=${REPORT_PATH}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mtshare_sim --candidates=ch_buckets exited ${rc}\n${out}\n${err}")
endif()
file(READ "${REPORT_PATH}" report)
if(NOT report MATCHES "\"candidate_search\": *\"ch_buckets\"")
  message(FATAL_ERROR "ch_buckets run not labeled:\n${report}")
endif()
if(report MATCHES "\"bucket_candidates\": *0[,\n}]")
  message(FATAL_ERROR "ch_buckets run swept no candidates:\n${report}")
endif()
if(NOT report MATCHES "\"fallback_queries\": *0[,\n}]")
  message(FATAL_ERROR "ch_buckets run shows nonzero fallback_queries:\n${report}")
endif()
file(REMOVE "${REPORT_PATH}")

# Optional second leg (pass -DSCALE_BINARY=... and -DSCALE_REPORT_DIR=...):
# smoke-run bench_scale at reduced CI sizes on a single tiny row and
# validate the BENCH_scale.json trajectory line — same run-report schema,
# appended by RecordTrajectoryRun instead of a BenchEnv, so a wiring break
# there would not be caught by the sim smoke above.
if(DEFINED SCALE_BINARY)
  set(scale_report "${SCALE_REPORT_DIR}/BENCH_scale.json")
  file(REMOVE "${scale_report}")
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env MTSHARE_SCALE_CI=1
            MTSHARE_SCALE_ONLY=50:300
            "MTSHARE_BENCH_REPORT_DIR=${SCALE_REPORT_DIR}"
            "${SCALE_BINARY}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_scale exited ${rc}\n${out}\n${err}")
  endif()
  if(NOT EXISTS "${scale_report}")
    message(FATAL_ERROR "trajectory file was not written: ${scale_report}")
  endif()
  file(READ "${scale_report}" trajectory)
  foreach(key "schema_version" "experiment" "scheme" "window" "num_taxis"
          "num_requests" "seed" "served" "response_ms" "execution_seconds"
          "oracle" "backend" "engine" "arcs_stepped")
    if(NOT trajectory MATCHES "\"${key}\"")
      message(FATAL_ERROR
              "BENCH_scale.json missing key '${key}':\n${trajectory}")
    endif()
  endforeach()
  if(NOT trajectory MATCHES "\"experiment\": *\"scale\"")
    message(FATAL_ERROR "BENCH_scale.json has a wrong slug:\n${trajectory}")
  endif()
  file(REMOVE "${scale_report}")
endif()
