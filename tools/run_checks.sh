#!/usr/bin/env bash
# Full local gate for the mT-Share repo:
#   1. configure + build the default preset, run the tier-1 ctest suite
#   2. configure + build the tsan preset, run the `tsan`-labelled tests
#      (thread pool, sharded LRU, parallel scenario sweeps)
#   3. configure + build the asan preset, run the full suite under
#      AddressSanitizer + LeakSanitizer
#   4. smoke-run mtshare_sim --report and check the JSON schema marker,
#      run both advancement cores (--engine=sweep|event) and check the
#      schema-4 engine counters, and smoke BM_EngineAdvance
#   5. serve smoke: pipe a --save-requests log through mtshare_serve and
#      check the decision stream plus the schema-5 "serve" block
#   6. (opt-in) scale smoke: the `scale`-labelled ctest tier at reduced
#      sizes — bench_scale trajectory schema, 10^6-request stream
#      determinism, 10k-fleet engine equivalence
#
# Run from the repo root:  tools/run_checks.sh
# Also reachable as:       cmake --build build --target check
# Skip the tsan leg (e.g. on toolchains without libtsan): MTSHARE_SKIP_TSAN=1
# Skip the asan leg likewise:                             MTSHARE_SKIP_ASAN=1
# Run the minutes-long scale leg (off by default):        MTSHARE_RUN_SCALE=1
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${MTSHARE_CHECK_JOBS:-$(nproc)}

echo "==> [1/6] default preset: build + tier-1 tests"
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

if [[ "${MTSHARE_SKIP_TSAN:-0}" != "1" ]]; then
  echo "==> [2/6] tsan preset: build + concurrency tests"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS" --target mtshare_thread_tests
  ctest --preset tsan -j "$JOBS"
else
  echo "==> [2/6] tsan preset: skipped (MTSHARE_SKIP_TSAN=1)"
fi

if [[ "${MTSHARE_SKIP_ASAN:-0}" != "1" ]]; then
  echo "==> [3/6] asan preset: build + full suite under ASan/LSan"
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$JOBS" --target mtshare_tests mtshare_thread_tests mtshare_sim_cli mtshare_serve_cli
  ctest --preset asan -j "$JOBS"
else
  echo "==> [3/6] asan preset: skipped (MTSHARE_SKIP_ASAN=1)"
fi

echo "==> [4/6] run-report smoke"
report=$(mktemp /tmp/mtshare_report.XXXXXX.json)
trap 'rm -f "$report"' EXIT
build/tools/mtshare_sim --scheme=mt-share --rows=12 --cols=12 \
  --taxis=15 --requests=80 --report="$report" >/dev/null
grep -q '"schema_version"' "$report"
grep -q '"dispatch_total_ms"' "$report"
grep -q '"batch_queries"' "$report"
grep -q '"backend"' "$report"
build/tools/mtshare_sim --scheme=mt-share --rows=12 --cols=12 \
  --taxis=15 --requests=80 --oracle=ch --report="$report" >/dev/null
grep -q '"backend": "ch"' "$report"
grep -q '"ch_upward_settled"' "$report"
# Both advancement cores must emit the schema-4 engine block: the sweep
# with zero heap traffic, the event core (the default) with live counters.
build/tools/mtshare_sim --scheme=mt-share --rows=12 --cols=12 \
  --taxis=15 --requests=80 --engine=sweep --report="$report" >/dev/null
grep -q '"event_driven": 0' "$report"
grep -q '"heap_pops": 0' "$report"
build/tools/mtshare_sim --scheme=mt-share --rows=12 --cols=12 \
  --taxis=15 --requests=80 --engine=event --report="$report" >/dev/null
grep -q '"event_driven": 1' "$report"
grep -q '"heap_pops"' "$report"
grep -q '"lazy_syncs"' "$report"
grep -q '"arcs_stepped"' "$report"
# The ch_buckets candidate path (schema-6 counters) must run end to end,
# label itself, and keep the no-fallback invariant.
build/tools/mtshare_sim --scheme=mt-share --rows=12 --cols=12 \
  --taxis=15 --requests=80 --candidates=ch_buckets --report="$report" >/dev/null
grep -q '"candidate_search": "ch_buckets"' "$report"
grep -q '"bucket_candidates"' "$report"
grep -q '"ellipse_pruned"' "$report"
grep -q '"fallback_queries": 0' "$report"
echo "report OK: $report"
# One quick advancement-core micro-bench pass (both engines, small fleet)
# to catch bit-rot in the bench harness itself.
build/bench/bench_micro_components \
  --benchmark_filter='BM_EngineAdvance/fleet:100/' \
  --benchmark_min_time=0.01 >/dev/null

echo "==> [5/6] serve smoke (log pipe + schema-5 serve block)"
request_log=$(mktemp /tmp/mtshare_requests.XXXXXX.csv)
decisions=$(mktemp /tmp/mtshare_decisions.XXXXXX.jsonl)
trap 'rm -f "$report" "$request_log" "$decisions"' EXIT
build/tools/mtshare_sim --scheme=mt-share --rows=12 --cols=12 \
  --taxis=15 --requests=80 --save-requests="$request_log" >/dev/null
build/tools/mtshare_serve --scheme=mt-share --rows=12 --cols=12 \
  --taxis=15 --gauge-every=0 --report="$report" \
  < "$request_log" > "$decisions" 2>/dev/null
grep -q '"serve"' "$report"
grep -q '"admitted"' "$report"
# Everything logged must be admitted — "admitted": 0 means the serve
# counters are dead.
if grep -q '"admitted": 0,' "$report"; then
  echo "serve smoke: zero admitted requests" >&2
  exit 1
fi
grep -q '"id":0' "$decisions"
echo "serve OK: $(wc -l < "$decisions") decision lines"

if [[ "${MTSHARE_RUN_SCALE:-0}" == "1" ]]; then
  echo "==> [6/6] scale smoke (reduced sizes; ctest -L scale)"
  cmake --build --preset default -j "$JOBS" \
    --target mtshare_scale_tests bench_scale
  MTSHARE_SCALE_CI=1 ctest --preset scale -j "$JOBS"
else
  echo "==> [6/6] scale smoke: skipped (set MTSHARE_RUN_SCALE=1 to run)"
fi

echo "all checks passed"
