// mtshare_sim — command-line runner for the mT-Share simulation stack.
//
// Examples:
//   mtshare_sim --scheme=mt-share --taxis=150 --requests=1500
//   mtshare_sim --scheme=mt-share-pro --window=nonpeak --offline=0.33
//   mtshare_sim --network=city.csv --scheme=pgreedy-dp --per-request=out.csv
//
// Flags (all --key=value):
//   --scheme       no-sharing | t-share | pgreedy-dp | mt-share |
//                  mt-share-pro            (default mt-share)
//   --window       peak | nonpeak          (default peak)
//   --taxis        fleet size              (default 150)
//   --requests     request count           (default 1500)
//   --offline      offline fraction        (default 0 peak / 0.32 nonpeak)
//   --rho          deadline flexibility    (default 1.3)
//   --kappa        partitions              (default 120)
//   --capacity     seats per taxi          (default 3)
//   --gamma        searching range, m      (default 2500)
//   --seed         RNG seed                (default 42)
//   --threads      matching worker threads (default 1; 0 = all cores;
//                  results identical for any value)
//   --rows/--cols  generated city size     (default 48x48)
//   --network      edge-list CSV to load instead of generating
//   --per-request  write a per-request CSV record here
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "core/mtshare_system.h"
#include "graph/graph_generators.h"
#include "graph/graph_io.h"

using namespace mtshare;

namespace {

std::map<std::string, std::string> ParseArgs(int argc, char** argv,
                                             bool* ok) {
  std::map<std::string, std::string> args;
  *ok = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      *ok = false;
      continue;
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args[arg.substr(2)] = "1";
    } else {
      args[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return args;
}

double GetD(const std::map<std::string, std::string>& args,
            const std::string& key, double fallback) {
  auto it = args.find(key);
  return it == args.end() ? fallback : std::stod(it->second);
}

std::string GetS(const std::map<std::string, std::string>& args,
                 const std::string& key, const std::string& fallback) {
  auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  bool ok = true;
  auto args = ParseArgs(argc, argv, &ok);
  if (!ok || args.count("help")) {
    std::fprintf(stderr, "see the header of tools/mtshare_sim.cc for usage\n");
    return args.count("help") ? 0 : 2;
  }

  std::optional<SchemeKind> scheme = ParseScheme(GetS(args, "scheme", "mt-share"));
  if (!scheme.has_value()) {
    std::fprintf(stderr, "unknown --scheme\n");
    return 2;
  }
  const bool peak = GetS(args, "window", "peak") == "peak";
  const uint64_t seed = uint64_t(GetD(args, "seed", 42));

  // City: generated or loaded.
  RoadNetwork network;
  std::string network_file = GetS(args, "network", "");
  if (!network_file.empty()) {
    Result<RoadNetwork> loaded = LoadEdgeList(network_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load network: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    network = std::move(loaded).value();
    network = ExtractLargestScc(network);
  } else {
    GridCityOptions gopt;
    gopt.rows = int32_t(GetD(args, "rows", 48));
    gopt.cols = int32_t(GetD(args, "cols", 48));
    gopt.seed = seed;
    network = MakeGridCity(gopt);
  }

  SystemConfig config;
  config.kappa = int32_t(GetD(args, "kappa", 120));
  config.kt = std::min<int32_t>(config.kappa, 20);
  config.rho = GetD(args, "rho", 1.3);
  config.taxi_capacity = int32_t(GetD(args, "capacity", 3));
  config.matching.gamma_max_m = GetD(args, "gamma", 2500.0);
  config.seed = seed;
  Status valid = config.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "bad configuration: %s\n", valid.ToString().c_str());
    return 2;
  }

  DemandModelOptions dopt;
  dopt.day = peak ? DayType::kWorkday : DayType::kWeekend;
  dopt.seed = seed + 1;
  DemandModel demand(network, dopt);
  DistanceOracle oracle(network);

  ScenarioOptions sopt;
  sopt.t_begin = (peak ? 8 : 10) * 3600.0;
  sopt.t_end = sopt.t_begin + 3600.0;
  sopt.num_requests = int32_t(GetD(args, "requests", 1500));
  sopt.offline_fraction = GetD(args, "offline", peak ? 0.0 : 0.32);
  sopt.rho = config.rho;
  sopt.seed = seed + 2;
  Scenario scenario = MakeScenario(network, demand, oracle, sopt);

  auto system =
      MTShareSystem::Create(network, scenario.HistoricalOdPairs(), config);
  if (!system.ok()) {
    std::fprintf(stderr, "system: %s\n", system.status().ToString().c_str());
    return 2;
  }
  ScenarioSpec spec;
  spec.scheme = *scheme;
  spec.requests = &scenario.requests;
  spec.num_taxis = int32_t(GetD(args, "taxis", 150));
  spec.fleet_seed = seed + 3;
  spec.num_threads = int32_t(GetD(args, "threads", 1));
  Result<Metrics> run = system.value()->RunScenario(spec);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 2;
  }
  Metrics m = std::move(run).value();

  std::printf("scheme=%s window=%s taxis=%d requests=%zu offline=%d\n",
              SchemeName(*scheme), peak ? "peak" : "nonpeak", spec.num_taxis,
              scenario.requests.size(), scenario.CountOffline());
  std::printf("served=%d (online=%d offline=%d)\n", m.ServedRequests(),
              m.ServedOnline(), m.ServedOffline());
  std::printf("response_ms=%.3f wait_min=%.2f detour_min=%.2f\n",
              m.MeanResponseMs(), m.MeanWaitingMinutes(),
              m.MeanDetourMinutes());
  std::printf("fare_saving=%.1f%% driver_income=%.0f exec_s=%.2f\n",
              m.MeanFareSaving() * 100.0, m.total_driver_income,
              m.execution_seconds);

  std::string per_request = GetS(args, "per-request", "");
  if (!per_request.empty()) {
    std::ofstream out(per_request);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", per_request.c_str());
      return 1;
    }
    out << "id,offline,completed,release,pickup,dropoff,direct_s,"
           "response_ms,taxi,regular_fare,shared_fare\n";
    for (const RequestRecord& r : m.records()) {
      out << r.id << "," << r.offline << "," << r.completed << ","
          << r.release_time << "," << r.pickup_time << "," << r.dropoff_time
          << "," << r.direct_cost << "," << r.response_ms << "," << r.taxi
          << "," << r.regular_fare << "," << r.shared_fare << "\n";
    }
    std::printf("per-request records written to %s\n", per_request.c_str());
  }
  return 0;
}
