// mtshare_sim — command-line runner for the mT-Share simulation stack.
//
// Examples:
//   mtshare_sim --scheme=mt-share --taxis=150 --requests=1500
//   mtshare_sim --scheme=mt-share-pro --window=nonpeak --offline=0.33
//   mtshare_sim --network=city.csv --scheme=pgreedy-dp --per-request=out.csv
//
// Flags (all --key=value):
//   --scheme       no-sharing | t-share | pgreedy-dp | mt-share |
//                  mt-share-pro            (default mt-share)
//   --window       peak | nonpeak          (default peak)
//   --taxis        fleet size              (default 150)
//   --requests     request count           (default 1500)
//   --offline      offline fraction        (default 0 peak / 0.32 nonpeak)
//   --rho          deadline flexibility    (default 1.3)
//   --kappa        partitions              (default 120)
//   --capacity     seats per taxi          (default 3)
//   --gamma        searching range, m      (default 2500)
//   --seed         RNG seed                (default 42)
//   --threads      matching worker threads (default 1; 0 = all cores;
//                  results identical for any value)
//   --batched      batched insertion routing (default 1; 0 = per-pair
//                  oracle queries; results identical either way)
//   --oracle       auto | exact | lru | ch  (default auto: exact table for
//                  small graphs, contraction hierarchy for large ones;
//                  results identical for every backend)
//   --candidates   index | ch_buckets       (default index: each scheme's
//                  native candidate scan with per-taxi reachability
//                  probes; ch_buckets = last-stop CH bucket sweeps +
//                  detour-ellipse slot pruning, DESIGN.md §14; dispatch
//                  decisions identical either way)
//   --engine       event | sweep            (default event: min-heap fleet
//                  advancement; sweep = legacy per-boundary full-fleet
//                  walk; decision metrics identical either way)
//   --rows/--cols  generated city size     (default 48x48)
//   --network      edge-list CSV to load instead of generating
//   --batch-window-ms  batch-window ingest Δt, simulated ms (default 0 =
//                  dispatch each request at its own release boundary; see
//                  DESIGN.md §12)
//   --max-queue    admission cap on the pending dispatch queue (default 0
//                  = unbounded; arrivals past the cap are shed)
//   --save-requests  write the scenario's request log here (the wire
//                  format mtshare_serve ingests; see demand/trip_io.h)
//   --per-request  write a per-request CSV record here
//   --report       write a structured JSON run report here (percentiles,
//                  per-phase dispatch breakdown; see EXPERIMENTS.md)
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "common/string_util.h"
#include "core/mtshare_system.h"
#include "demand/trip_io.h"
#include "graph/graph_generators.h"
#include "graph/graph_io.h"
#include "sim/run_report.h"

using namespace mtshare;

namespace {

std::map<std::string, std::string> ParseArgs(int argc, char** argv,
                                             bool* ok) {
  std::map<std::string, std::string> args;
  *ok = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      *ok = false;
      continue;
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args[arg.substr(2)] = "1";
    } else {
      args[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return args;
}

/// Strict numeric flag lookup: malformed values ("abc", "12x", "") are a
/// hard error instead of silently becoming 0 via atoi-style parsing.
double GetD(const std::map<std::string, std::string>& args,
            const std::string& key, double fallback, bool* ok) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  double value = 0.0;
  if (!ParseDouble(Trim(it->second), &value)) {
    std::fprintf(stderr, "invalid numeric value for --%s: '%s'\n",
                 key.c_str(), it->second.c_str());
    *ok = false;
    return fallback;
  }
  return value;
}

/// Strict non-negative integer flag (counts: taxis, requests, threads...).
int32_t GetCount(const std::map<std::string, std::string>& args,
                 const std::string& key, int32_t fallback, bool* ok) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  int64_t value = 0;
  if (!ParseInt64(Trim(it->second), &value) || value < 0 ||
      value > INT32_MAX) {
    std::fprintf(stderr,
                 "invalid value for --%s: '%s' (want an integer >= 0)\n",
                 key.c_str(), it->second.c_str());
    *ok = false;
    return fallback;
  }
  return static_cast<int32_t>(value);
}

std::string GetS(const std::map<std::string, std::string>& args,
                 const std::string& key, const std::string& fallback) {
  auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

/// Strict unsigned 64-bit flag (RNG seeds). A double-based parse would
/// silently round seeds above 2^53 and make negative inputs UB on the
/// cast; ParseUint64 keeps full precision up to UINT64_MAX and rejects
/// signs and garbage outright.
uint64_t GetU64(const std::map<std::string, std::string>& args,
                const std::string& key, uint64_t fallback, bool* ok) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  uint64_t value = 0;
  if (!ParseUint64(Trim(it->second), &value)) {
    std::fprintf(stderr,
                 "invalid value for --%s: '%s' (want an unsigned integer)\n",
                 key.c_str(), it->second.c_str());
    *ok = false;
    return fallback;
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  bool ok = true;
  auto args = ParseArgs(argc, argv, &ok);
  if (!ok || args.count("help")) {
    std::fprintf(stderr, "see the header of tools/mtshare_sim.cc for usage\n");
    return args.count("help") ? 0 : 2;
  }

  std::optional<SchemeKind> scheme = ParseScheme(GetS(args, "scheme", "mt-share"));
  if (!scheme.has_value()) {
    std::fprintf(stderr, "unknown --scheme\n");
    return 2;
  }
  const bool peak = GetS(args, "window", "peak") == "peak";
  const uint64_t seed = GetU64(args, "seed", 42, &ok);

  // City: generated or loaded.
  RoadNetwork network;
  std::string network_file = GetS(args, "network", "");
  GridCityOptions gopt;
  gopt.rows = GetCount(args, "rows", 48, &ok);
  gopt.cols = GetCount(args, "cols", 48, &ok);
  gopt.seed = seed;

  SystemConfig config;
  config.kappa = GetCount(args, "kappa", 120, &ok);
  config.kt = std::min<int32_t>(config.kappa, 20);
  config.rho = GetD(args, "rho", 1.3, &ok);
  config.taxi_capacity = GetCount(args, "capacity", 3, &ok);
  config.matching.gamma_max_m = GetD(args, "gamma", 2500.0, &ok);
  config.matching.batched_routing = GetCount(args, "batched", 1, &ok) != 0;
  if (!ParseOracleBackend(GetS(args, "oracle", "auto"), &config.oracle.backend)) {
    std::fprintf(stderr, "unknown --oracle (want auto|exact|lru|ch)\n");
    return 2;
  }
  if (!ParseCandidateSearch(GetS(args, "candidates", "index"),
                            &config.matching.candidate_search)) {
    std::fprintf(stderr, "unknown --candidates (want index|ch_buckets)\n");
    return 2;
  }
  config.seed = seed;

  ScenarioOptions sopt;
  sopt.t_begin = (peak ? 8 : 10) * 3600.0;
  sopt.t_end = sopt.t_begin + 3600.0;
  sopt.num_requests = GetCount(args, "requests", 1500, &ok);
  sopt.offline_fraction = GetD(args, "offline", peak ? 0.0 : 0.32, &ok);
  sopt.rho = config.rho;
  sopt.seed = seed + 2;

  const int32_t num_taxis = GetCount(args, "taxis", 150, &ok);
  const int32_t num_threads = GetCount(args, "threads", 1, &ok);
  const double batch_window_ms = GetD(args, "batch-window-ms", 0.0, &ok);
  if (ok && batch_window_ms < 0.0) {
    std::fprintf(stderr, "--batch-window-ms must be >= 0\n");
    ok = false;
  }
  const int32_t max_queue = GetCount(args, "max-queue", 0, &ok);
  const std::string engine_mode = GetS(args, "engine", "event");
  if (engine_mode != "event" && engine_mode != "sweep") {
    std::fprintf(stderr, "unknown --engine (want event|sweep)\n");
    return 2;
  }
  if (!ok) return 2;  // every malformed flag already printed its error

  Status valid = config.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "bad configuration: %s\n", valid.ToString().c_str());
    return 2;
  }

  if (!network_file.empty()) {
    Result<RoadNetwork> loaded = LoadEdgeList(network_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load network: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    network = std::move(loaded).value();
    network = ExtractLargestScc(network);
  } else {
    network = MakeGridCity(gopt);
  }

  DemandModelOptions dopt;
  dopt.day = peak ? DayType::kWorkday : DayType::kWeekend;
  dopt.seed = seed + 1;
  DemandModel demand(network, dopt);
  // Scenario generation issues scattered point queries; don't pay CH
  // preprocessing for them (every backend returns identical costs anyway).
  OracleOptions scratch;
  if (network.num_vertices() > scratch.max_exact_vertices) {
    scratch.backend = OracleBackend::kLru;
  }
  DistanceOracle oracle(network, scratch);

  Scenario scenario = MakeScenario(network, demand, oracle, sopt);

  auto system =
      MTShareSystem::Create(network, scenario.HistoricalOdPairs(), config);
  if (!system.ok()) {
    std::fprintf(stderr, "system: %s\n", system.status().ToString().c_str());
    return 2;
  }
  std::string save_requests = GetS(args, "save-requests", "");
  if (!save_requests.empty()) {
    Status saved = SaveRequestLog(save_requests, scenario.requests);
    if (!saved.ok()) {
      std::fprintf(stderr, "save-requests: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("request log written to %s\n", save_requests.c_str());
  }

  ScenarioSpec spec;
  spec.scheme = *scheme;
  spec.requests = &scenario.requests;
  spec.num_taxis = num_taxis;
  spec.fleet_seed = seed + 3;
  spec.num_threads = num_threads;
  spec.event_driven = engine_mode == "event";
  spec.batch_window_ms = batch_window_ms;
  spec.max_queue = max_queue;
  Result<Metrics> run = system.value()->RunScenario(spec);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 2;
  }
  Metrics m = std::move(run).value();

  std::printf("scheme=%s window=%s taxis=%d requests=%zu offline=%d\n",
              SchemeName(*scheme), peak ? "peak" : "nonpeak", spec.num_taxis,
              scenario.requests.size(), scenario.CountOffline());
  std::printf("served=%d (online=%d offline=%d)\n", m.ServedRequests(),
              m.ServedOnline(), m.ServedOffline());
  std::printf("response_ms=%.3f wait_min=%.2f detour_min=%.2f\n",
              m.MeanResponseMs(), m.MeanWaitingMinutes(),
              m.MeanDetourMinutes());
  std::printf("fare_saving=%.1f%% driver_income=%.0f exec_s=%.2f\n",
              m.MeanFareSaving() * 100.0, m.total_driver_income,
              m.execution_seconds);
  std::printf(
      "oracle=%s settled_vertices=%lld ch_upward_settled=%lld "
      "ch_shortcuts=%lld\n",
      m.oracle_backend.c_str(),
      static_cast<long long>(m.routing.settled_vertices),
      static_cast<long long>(m.routing.ch_upward_settled),
      static_cast<long long>(m.routing.ch_shortcuts));

  std::string report_path = GetS(args, "report", "");
  if (!report_path.empty()) {
    RunReportContext ctx;
    ctx.experiment = "mtshare_sim";
    ctx.scheme = SchemeName(*scheme);
    ctx.window = peak ? "peak" : "nonpeak";
    ctx.num_taxis = spec.num_taxis;
    ctx.num_requests = static_cast<int32_t>(scenario.requests.size());
    ctx.seed = seed;
    Status written = WriteRunReport(report_path, ctx, m);
    if (!written.ok()) {
      std::fprintf(stderr, "report: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("run report written to %s\n", report_path.c_str());
  }

  std::string per_request = GetS(args, "per-request", "");
  if (!per_request.empty()) {
    std::ofstream out(per_request);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", per_request.c_str());
      return 1;
    }
    out << "id,offline,completed,release,pickup,dropoff,direct_s,"
           "response_ms,taxi,regular_fare,shared_fare\n";
    for (const RequestRecord& r : m.records()) {
      out << r.id << "," << r.offline << "," << r.completed << ","
          << r.release_time << "," << r.pickup_time << "," << r.dropoff_time
          << "," << r.direct_cost << "," << r.response_ms << "," << r.taxi
          << "," << r.regular_fare << "," << r.shared_fare << "\n";
    }
    std::printf("per-request records written to %s\n", per_request.c_str());
  }
  return 0;
}
