#include "graph/graph_generators.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace mtshare {
namespace {

double Jitter(Rng& rng, double amount) {
  return rng.NextUniform(-amount, amount);
}

}  // namespace

RoadNetwork MakeGridCity(const GridCityOptions& options) {
  MTSHARE_CHECK(options.rows >= 2 && options.cols >= 2);
  Rng rng(options.seed);
  RoadNetwork::Builder builder;

  auto vertex_at = [&](int32_t r, int32_t c) {
    return static_cast<VertexId>(r * options.cols + c);
  };
  for (int32_t r = 0; r < options.rows; ++r) {
    for (int32_t c = 0; c < options.cols; ++c) {
      builder.AddVertex(Point{
          c * options.spacing_m + Jitter(rng, options.jitter_m),
          r * options.spacing_m + Jitter(rng, options.jitter_m)});
    }
  }

  auto is_arterial_row = [&](int32_t r) {
    return options.arterial_every > 0 && r % options.arterial_every == 0;
  };
  auto add_street = [&](VertexId u, VertexId v, bool arterial) {
    if (rng.NextDouble() < options.drop_edge_fraction) return;
    double length = 0.0;
    {
      // Use perturbed coordinates for the true segment length.
      // (Builder stores coords already.)
      length = options.spacing_m;
    }
    double factor = arterial ? options.arterial_speed_factor : 1.0;
    if (rng.NextDouble() < options.one_way_fraction) {
      // Randomly orient the one-way street.
      if (rng.NextDouble() < 0.5) {
        builder.AddEdge(u, v, length, factor);
      } else {
        builder.AddEdge(v, u, length, factor);
      }
    } else {
      builder.AddBidirectionalEdge(u, v, length, factor);
    }
  };

  for (int32_t r = 0; r < options.rows; ++r) {
    for (int32_t c = 0; c < options.cols; ++c) {
      if (c + 1 < options.cols) {
        add_street(vertex_at(r, c), vertex_at(r, c + 1), is_arterial_row(r));
      }
      if (r + 1 < options.rows) {
        add_street(vertex_at(r, c), vertex_at(r + 1, c), is_arterial_row(c));
      }
    }
  }

  RoadNetwork raw = builder.Build();
  return ExtractLargestScc(raw);
}

RoadNetwork MakeRingCity(const RingCityOptions& options) {
  MTSHARE_CHECK(options.rings >= 1 && options.spokes >= 3);
  Rng rng(options.seed);
  RoadNetwork::Builder builder;

  // Center vertex plus rings x spokes lattice in polar coordinates.
  VertexId center = builder.AddVertex(Point{0.0, 0.0});
  auto vertex_at = [&](int32_t ring, int32_t spoke) {
    return static_cast<VertexId>(1 + ring * options.spokes +
                                 (spoke % options.spokes));
  };
  for (int32_t ring = 0; ring < options.rings; ++ring) {
    double radius = (ring + 1) * options.ring_spacing_m;
    for (int32_t spoke = 0; spoke < options.spokes; ++spoke) {
      double angle = 2.0 * M_PI * spoke / options.spokes +
                     rng.NextUniform(-0.02, 0.02);
      builder.AddVertex(
          Point{radius * std::cos(angle), radius * std::sin(angle)});
    }
  }

  // Ring roads.
  for (int32_t ring = 0; ring < options.rings; ++ring) {
    double radius = (ring + 1) * options.ring_spacing_m;
    double segment = 2.0 * M_PI * radius / options.spokes;
    for (int32_t spoke = 0; spoke < options.spokes; ++spoke) {
      builder.AddBidirectionalEdge(vertex_at(ring, spoke),
                                   vertex_at(ring, spoke + 1), segment, 1.2);
    }
  }
  // Radial avenues.
  for (int32_t spoke = 0; spoke < options.spokes; ++spoke) {
    builder.AddBidirectionalEdge(center, vertex_at(0, spoke),
                                 options.ring_spacing_m, 1.0);
    for (int32_t ring = 0; ring + 1 < options.rings; ++ring) {
      builder.AddBidirectionalEdge(vertex_at(ring, spoke),
                                   vertex_at(ring + 1, spoke),
                                   options.ring_spacing_m, 1.0);
    }
  }
  return builder.Build();
}

RoadNetwork MakeRandomGeometric(const RandomGeometricOptions& options) {
  MTSHARE_CHECK(options.num_vertices >= 2);
  Rng rng(options.seed);
  RoadNetwork::Builder builder;
  std::vector<Point> pts;
  pts.reserve(options.num_vertices);
  for (int32_t i = 0; i < options.num_vertices; ++i) {
    Point p{rng.NextUniform(0.0, options.side_m),
            rng.NextUniform(0.0, options.side_m)};
    pts.push_back(p);
    builder.AddVertex(p);
  }
  double r2 = options.connect_radius_m * options.connect_radius_m;
  for (int32_t i = 0; i < options.num_vertices; ++i) {
    for (int32_t j = i + 1; j < options.num_vertices; ++j) {
      double d2 = DistanceSquared(pts[i], pts[j]);
      if (d2 <= r2 && d2 > 0.0) {
        builder.AddBidirectionalEdge(i, j, std::sqrt(d2));
      }
    }
  }
  RoadNetwork raw = builder.Build();
  return ExtractLargestScc(raw);
}

}  // namespace mtshare
