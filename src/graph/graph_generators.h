#ifndef MTSHARE_GRAPH_GRAPH_GENERATORS_H_
#define MTSHARE_GRAPH_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/road_network.h"

namespace mtshare {

/// Options for a perturbed Manhattan-grid city with arterials and a fraction
/// of one-way streets. This is the library's stand-in for the OSM Chengdu
/// graph used by the paper (see DESIGN.md, substitution table): comparable
/// degree distribution (2-4), strongly connected, planar-ish.
struct GridCityOptions {
  int32_t rows = 40;
  int32_t cols = 40;
  double spacing_m = 120.0;        ///< block edge length
  double jitter_m = 20.0;          ///< coordinate perturbation
  double one_way_fraction = 0.15;  ///< streets that are one-directional
  int32_t arterial_every = 8;      ///< every k-th row/col is faster
  double arterial_speed_factor = 1.4;
  double drop_edge_fraction = 0.05;  ///< random street closures
  uint64_t seed = 7;
};

/// Generates the grid city and restricts it to its largest SCC (the
/// restriction typically removes <1% of vertices).
RoadNetwork MakeGridCity(const GridCityOptions& options);

/// Ring-and-spoke city (old-town topology): `rings` concentric ring roads
/// crossed by `spokes` radial avenues.
struct RingCityOptions {
  int32_t rings = 12;
  int32_t spokes = 24;
  double ring_spacing_m = 350.0;
  uint64_t seed = 11;
};

RoadNetwork MakeRingCity(const RingCityOptions& options);

/// Random geometric graph: n vertices uniform in a square of the given side,
/// bidirectional edges between vertices within connect_radius_m, restricted
/// to the largest SCC. Used by property tests as an unstructured topology.
struct RandomGeometricOptions {
  int32_t num_vertices = 600;
  double side_m = 4000.0;
  double connect_radius_m = 260.0;
  uint64_t seed = 13;
};

RoadNetwork MakeRandomGeometric(const RandomGeometricOptions& options);

}  // namespace mtshare

#endif  // MTSHARE_GRAPH_GRAPH_GENERATORS_H_
