#include "graph/road_network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace mtshare {

Seconds RoadNetwork::EuclideanLowerBound(VertexId a, VertexId b) const {
  return Distance(coords_[a], coords_[b]) / (speed_mps_ * max_speed_factor_);
}

size_t RoadNetwork::MemoryBytes() const {
  return coords_.size() * sizeof(Point) +
         (fwd_offsets_.size() + rev_offsets_.size()) * sizeof(int32_t) +
         (fwd_arcs_.size() + rev_arcs_.size()) * sizeof(Arc);
}

RoadNetwork::Builder::Builder(double speed_mps) : speed_mps_(speed_mps) {
  MTSHARE_CHECK(speed_mps > 0.0);
}

VertexId RoadNetwork::Builder::AddVertex(const Point& coord) {
  coords_.push_back(coord);
  return static_cast<VertexId>(coords_.size() - 1);
}

void RoadNetwork::Builder::AddEdge(VertexId u, VertexId v, double length_m,
                                   double speed_factor) {
  MTSHARE_CHECK(u >= 0 && u < num_vertices());
  MTSHARE_CHECK(v >= 0 && v < num_vertices());
  MTSHARE_CHECK(length_m > 0.0);
  MTSHARE_CHECK(speed_factor > 0.0);
  max_speed_factor_ = std::max(max_speed_factor_, speed_factor);
  edges_.push_back(
      RawEdge{u, v, length_m,
              QuantizeTravelCost(length_m / (speed_mps_ * speed_factor))});
}

void RoadNetwork::Builder::AddBidirectionalEdge(VertexId u, VertexId v,
                                                double length_m,
                                                double speed_factor) {
  AddEdge(u, v, length_m, speed_factor);
  AddEdge(v, u, length_m, speed_factor);
}

RoadNetwork RoadNetwork::Builder::Build() {
  RoadNetwork net;
  net.coords_ = std::move(coords_);
  net.speed_mps_ = speed_mps_;
  net.max_speed_factor_ = max_speed_factor_;

  const int32_t n = static_cast<int32_t>(net.coords_.size());
  auto fill_csr = [&](bool forward, std::vector<int32_t>& offsets,
                      std::vector<Arc>& arcs) {
    offsets.assign(n + 1, 0);
    for (const RawEdge& e : edges_) {
      ++offsets[(forward ? e.u : e.v) + 1];
    }
    for (int32_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
    arcs.resize(edges_.size());
    std::vector<int32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const RawEdge& e : edges_) {
      int32_t tail = forward ? e.u : e.v;
      int32_t head = forward ? e.v : e.u;
      arcs[cursor[tail]++] = Arc{head, e.length_m, e.cost};
    }
  };
  fill_csr(true, net.fwd_offsets_, net.fwd_arcs_);
  fill_csr(false, net.rev_offsets_, net.rev_arcs_);

  BoundingBox box;
  if (!net.coords_.empty()) {
    box.min = box.max = net.coords_[0];
    for (const Point& p : net.coords_) {
      box.min.x = std::min(box.min.x, p.x);
      box.min.y = std::min(box.min.y, p.y);
      box.max.x = std::max(box.max.x, p.x);
      box.max.y = std::max(box.max.y, p.y);
    }
  }
  net.bounds_ = box;
  return net;
}

int32_t StronglyConnectedComponents(const RoadNetwork& network,
                                    std::vector<int32_t>* component_ids) {
  const int32_t n = network.num_vertices();
  component_ids->assign(n, -1);
  // Iterative Tarjan.
  std::vector<int32_t> index(n, -1);
  std::vector<int32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int32_t> stack;
  struct Frame {
    VertexId v;
    size_t arc_pos;
  };
  std::vector<Frame> call_stack;
  int32_t next_index = 0;
  int32_t num_components = 0;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      VertexId v = frame.v;
      auto arcs = network.OutArcs(v);
      if (frame.arc_pos < arcs.size()) {
        VertexId w = arcs[frame.arc_pos++].head;
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          while (true) {
            VertexId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            (*component_ids)[w] = num_components;
            if (w == v) break;
          }
          ++num_components;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          VertexId parent = call_stack.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return num_components;
}

RoadNetwork ExtractLargestScc(const RoadNetwork& network,
                              std::vector<VertexId>* old_to_new) {
  std::vector<int32_t> comp;
  int32_t num_components = StronglyConnectedComponents(network, &comp);
  const int32_t n = network.num_vertices();

  std::vector<int32_t> sizes(num_components, 0);
  for (int32_t c : comp) ++sizes[c];
  int32_t best =
      static_cast<int32_t>(std::max_element(sizes.begin(), sizes.end()) -
                           sizes.begin());

  std::vector<VertexId> mapping(n, kInvalidVertex);
  RoadNetwork::Builder builder(network.speed_mps());
  for (VertexId v = 0; v < n; ++v) {
    if (comp[v] == best) mapping[v] = builder.AddVertex(network.coord(v));
  }
  for (VertexId v = 0; v < n; ++v) {
    if (comp[v] != best) continue;
    for (const Arc& arc : network.OutArcs(v)) {
      if (comp[arc.head] != best) continue;
      // Preserve the original travel time by back-deriving the speed factor.
      double factor = arc.length_m / (arc.cost * network.speed_mps());
      builder.AddEdge(mapping[v], mapping[arc.head], arc.length_m, factor);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return builder.Build();
}

}  // namespace mtshare
