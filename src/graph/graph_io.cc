#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mtshare {

Status SaveEdgeList(const RoadNetwork& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "# mtshare edge list: v,x,y then e,tail,head,length_m,speed_factor\n";
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    const Point& p = network.coord(v);
    out << "v," << p.x << "," << p.y << "\n";
  }
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    for (const Arc& arc : network.OutArcs(v)) {
      double factor = arc.length_m / (arc.cost * network.speed_mps());
      out << "e," << v << "," << arc.head << "," << arc.length_m << ","
          << factor << "\n";
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<RoadNetwork> LoadEdgeList(const std::string& path, double speed_mps) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);

  RoadNetwork::Builder builder(speed_mps);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = Trim(line);
    if (text.empty() || text[0] == '#') continue;
    std::vector<std::string> fields = Split(text, ',');
    auto malformed = [&](const char* why) {
      std::ostringstream os;
      os << path << ":" << line_no << ": " << why << ": " << line;
      return Status::InvalidArgument(os.str());
    };
    if (fields[0] == "v") {
      if (fields.size() != 3) return malformed("vertex needs v,x,y");
      double x = 0.0;
      double y = 0.0;
      if (!ParseDouble(fields[1], &x) || !ParseDouble(fields[2], &y)) {
        return malformed("bad vertex coordinates");
      }
      builder.AddVertex(Point{x, y});
    } else if (fields[0] == "e") {
      if (fields.size() != 4 && fields.size() != 5) {
        return malformed("edge needs e,tail,head,length[,factor]");
      }
      int64_t u = 0;
      int64_t v = 0;
      double length = 0.0;
      double factor = 1.0;
      if (!ParseInt64(fields[1], &u) || !ParseInt64(fields[2], &v) ||
          !ParseDouble(fields[3], &length)) {
        return malformed("bad edge fields");
      }
      if (fields.size() == 5 && !ParseDouble(fields[4], &factor)) {
        return malformed("bad speed factor");
      }
      if (u < 0 || v < 0 || u >= builder.num_vertices() ||
          v >= builder.num_vertices()) {
        return malformed("edge references unknown vertex");
      }
      if (length <= 0.0 || factor <= 0.0) {
        return malformed("edge length/factor must be positive");
      }
      builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                      length, factor);
    } else {
      return malformed("unknown record type");
    }
  }
  return builder.Build();
}

}  // namespace mtshare
