#ifndef MTSHARE_GRAPH_GRAPH_IO_H_
#define MTSHARE_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/road_network.h"

namespace mtshare {

/// Plain-text network interchange format, one record per line:
///   v,<x_meters>,<y_meters>                     (vertices first, in id order)
///   e,<tail>,<head>,<length_m>[,<speed_factor>]
/// Lines starting with '#' are comments. This is the bridge for running the
/// library on a real OSM extract (see DESIGN.md substitution table).
Status SaveEdgeList(const RoadNetwork& network, const std::string& path);

Result<RoadNetwork> LoadEdgeList(const std::string& path,
                                 double speed_mps = 15.0 * 1000.0 / 3600.0);

}  // namespace mtshare

#endif  // MTSHARE_GRAPH_GRAPH_IO_H_
