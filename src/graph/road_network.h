#ifndef MTSHARE_GRAPH_ROAD_NETWORK_H_
#define MTSHARE_GRAPH_ROAD_NETWORK_H_

#include <cmath>
#include <span>
#include <vector>

#include "common/types.h"
#include "geo/latlng.h"

namespace mtshare {

/// Travel costs are snapped to this grid (2^-20 s, ~1 microsecond) when a
/// network is built. Because every arc cost is then an integer multiple of
/// a power of two, and any realistic path sum stays far below 2^33 seconds,
/// every partial sum of arc costs is exactly representable in a double and
/// floating-point addition over costs is *associative*. That makes every
/// routing backend (Dijkstra rows, truncated one-to-many sweeps, and the
/// contraction-hierarchy searches, whose shortcut sums associate
/// differently) return bit-identical costs — the invariant the oracle
/// equivalence tests pin. The snap moves each arc by at most 2^-21 s of
/// travel time, far below anything the simulation can observe.
inline constexpr double kCostQuantumScale = 1048576.0;  // 2^20

/// Rounds `cost` to the nearest multiple of the cost quantum (minimum one
/// quantum, so arc costs stay strictly positive). Idempotent.
inline Seconds QuantizeTravelCost(Seconds cost) {
  double scaled = cost * kCostQuantumScale;
  // Beyond 2^53 the scaled value has no fractional part anyway (and such a
  // cost — >272 years of travel — is out of the exactness envelope).
  if (!(scaled < 9007199254740992.0)) return cost;
  double snapped = std::round(scaled);
  if (snapped < 1.0) snapped = 1.0;
  return snapped / kCostQuantumScale;
}

/// An outgoing (or incoming) road segment in adjacency order.
struct Arc {
  VertexId head = kInvalidVertex;  ///< the other endpoint
  double length_m = 0.0;           ///< segment length, meters
  Seconds cost = 0.0;              ///< travel time, seconds
};

/// Axis-aligned bounding box on the city plane.
struct BoundingBox {
  Point min;
  Point max;

  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
  bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
};

/// Immutable directed road network (paper Def. 1) in CSR form with both
/// forward and reverse adjacency. Edge travel times derive from segment
/// lengths and a network-wide cruise speed (the paper evaluates with a
/// constant 15 km/h, Sec. V-A4), optionally scaled per edge.
class RoadNetwork {
 public:
  class Builder;

  /// An empty network; populate via Builder::Build().
  RoadNetwork() = default;

  int32_t num_vertices() const {
    return static_cast<int32_t>(coords_.size());
  }
  int32_t num_edges() const { return static_cast<int32_t>(fwd_arcs_.size()); }

  const Point& coord(VertexId v) const { return coords_[v]; }
  const std::vector<Point>& coords() const { return coords_; }

  /// Outgoing arcs of v.
  std::span<const Arc> OutArcs(VertexId v) const {
    return {fwd_arcs_.data() + fwd_offsets_[v],
            fwd_arcs_.data() + fwd_offsets_[v + 1]};
  }
  /// Incoming arcs of v (heads are the arc *tails*).
  std::span<const Arc> InArcs(VertexId v) const {
    return {rev_arcs_.data() + rev_offsets_[v],
            rev_arcs_.data() + rev_offsets_[v + 1]};
  }

  /// Cruise speed used to derive travel times, meters/second.
  double speed_mps() const { return speed_mps_; }

  const BoundingBox& bounds() const { return bounds_; }

  /// Straight-line lower bound on travel time between two vertices; admissible
  /// for A* because no arc is faster than max_speed_factor * speed.
  Seconds EuclideanLowerBound(VertexId a, VertexId b) const;

  /// Approximate resident memory of the CSR structures, bytes.
  size_t MemoryBytes() const;

 private:
  std::vector<Point> coords_;
  std::vector<int32_t> fwd_offsets_;
  std::vector<Arc> fwd_arcs_;
  std::vector<int32_t> rev_offsets_;
  std::vector<Arc> rev_arcs_;
  double speed_mps_ = 15.0 * 1000.0 / 3600.0;
  double max_speed_factor_ = 1.0;
  BoundingBox bounds_;
};

/// Accumulates vertices/edges, then freezes them into CSR.
class RoadNetwork::Builder {
 public:
  /// speed_mps: network cruise speed (default 15 km/h as in the paper).
  explicit Builder(double speed_mps = 15.0 * 1000.0 / 3600.0);

  VertexId AddVertex(const Point& coord);

  /// Adds directed edge u -> v. speed_factor scales the cruise speed on this
  /// edge (e.g., 1.3 for an arterial). Requires valid vertex ids and
  /// length_m > 0.
  void AddEdge(VertexId u, VertexId v, double length_m,
               double speed_factor = 1.0);

  /// Convenience: AddEdge both ways.
  void AddBidirectionalEdge(VertexId u, VertexId v, double length_m,
                            double speed_factor = 1.0);

  int32_t num_vertices() const { return static_cast<int32_t>(coords_.size()); }

  RoadNetwork Build();

 private:
  struct RawEdge {
    VertexId u;
    VertexId v;
    double length_m;
    Seconds cost;
  };

  double speed_mps_;
  double max_speed_factor_ = 1.0;
  std::vector<Point> coords_;
  std::vector<RawEdge> edges_;
};

/// Vertex set restriction: returns the subnetwork induced by the largest
/// strongly connected component, plus the mapping old vertex -> new vertex
/// (kInvalidVertex for dropped vertices). Routing layers require strong
/// connectivity so every pickup can reach every dropoff.
RoadNetwork ExtractLargestScc(const RoadNetwork& network,
                              std::vector<VertexId>* old_to_new = nullptr);

/// Strongly-connected-component ids per vertex (iterative Tarjan);
/// returns the number of components.
int32_t StronglyConnectedComponents(const RoadNetwork& network,
                                    std::vector<int32_t>* component_ids);

}  // namespace mtshare

#endif  // MTSHARE_GRAPH_ROAD_NETWORK_H_
