#include "matching/mt_share.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mtshare {

MtShareDispatcher::MtShareDispatcher(const RoadNetwork& network,
                                     DistanceOracle* oracle,
                                     std::vector<TaxiState>* fleet,
                                     const MatchingConfig& config,
                                     const MapPartitioning& partitioning,
                                     const LandmarkGraph& landmarks,
                                     const TransitionModel* transitions)
    : Dispatcher(network, oracle, fleet, config),
      partitioning_(partitioning),
      planner_(network, partitioning, landmarks, transitions, oracle,
               RoutePlannerOptions{config.lambda, config.epsilon,
                                   /*max_attempts=*/5,
                                   /*max_partition_paths=*/64,
                                   /*max_path_hops=*/10,
                                   config.prob_max_stretch,
                                   config.prob_extra_slack}),
      index_(network, partitioning, config.lambda, config.tmp) {
  MTSHARE_CHECK(!config.probabilistic || transitions != nullptr);
  EnableLowerBoundPruning(&landmarks);
  if (config.probabilistic) EnableIdleCruising(&partitioning_, &planner_);
  for (const TaxiState& t : *fleet_) index_.ReindexTaxi(t, t.location_time);
}

void MtShareDispatcher::OnTaxiMoved(TaxiId id) {
  const TaxiState& t = taxi(id);
  index_.OnTaxiMoved(t, t.location_time);
}

void MtShareDispatcher::OnTaxiAdvanced(TaxiId id, size_t from_pos,
                                       size_t to_pos) {
  index_.OnTaxiAdvanced(taxi(id), from_pos, to_pos);
}

void MtShareDispatcher::OnScheduleCommitted(TaxiId id) {
  const TaxiState& t = taxi(id);
  index_.ReindexTaxi(t, t.location_time);
}

void MtShareDispatcher::OnRequestCompleted(const RideRequest& request,
                                           TaxiId id) {
  (void)id;
  index_.RemoveRequest(request.id);
}

size_t MtShareDispatcher::IndexMemoryBytes() const {
  return index_.MemoryBytes();
}

bool MtShareDispatcher::ProbQualifies(const TaxiState& t) const {
  double needed = config_.prob_free_seat_fraction * t.capacity;
  return t.FreeSeats() >= static_cast<int32_t>(std::ceil(needed - 1e-9));
}

const std::vector<TaxiId>& MtShareDispatcher::CandidateTaxis(
    const RideRequest& request, Seconds now, double gamma) {
  const Point& origin = network_.coord(request.origin);
  MobilityVector rv{origin, network_.coord(request.destination)};

  // One epoch bump covers both stamp arrays for this call.
  if (static_cast<int32_t>(seen_stamp_.size()) <
      static_cast<int32_t>(fleet_->size())) {
    seen_stamp_.assign(fleet_->size(), 0);
    cluster_stamp_.assign(fleet_->size(), 0);
  }
  ++seen_epoch_;

  area_buf_.clear();
  {
    // Partition + mobility-compatibility setup is the filter phase: it
    // decides which taxis are even eligible before the arrival lists are
    // scanned.
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kFilter);
    // Partitions intersecting the searching circle (eq. (3)'s S_ri).
    partitioning_.AppendPartitionsIntersectingCircle(origin, gamma,
                                                     &area_buf_);

    // Direction-compatible mobility cluster(s): the single best C_a per the
    // literal eq. (3), or the union of all passing clusters (default; avoids
    // losing taxis to cluster fragmentation).
    cluster_buf_.clear();
    if (config_.match_all_compatible_clusters) {
      index_.AppendCompatibleClusterTaxis(rv, &cluster_buf_);
    } else {
      index_.AppendClusterTaxis(index_.FindCluster(rv), &cluster_buf_);
    }
    for (TaxiId id : cluster_buf_) cluster_stamp_[id] = seen_epoch_;
  }

  ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kCandidateSearch);
  std::vector<TaxiId>& candidates = candidates_buf_;
  candidates.clear();
  const Seconds pickup_deadline = request.PickupDeadline();
  // ch_buckets path: one backward CH sweep replaces every per-taxi
  // reachability probe below. The structural scan (partition lists,
  // cluster stamps, seat filter) is unchanged, so the candidate set and
  // its order — and therefore the dispatch decision — are identical.
  const bool buckets = ChBucketSearchEnabled();
  if (buckets) BucketSweep(request.origin, pickup_deadline - now);
  // Epoch-stamped dedup across overlapping partitions.
  for (PartitionId p : area_buf_) {
    for (const MtShareTaxiIndex::Arrival& entry : index_.PartitionTaxis(p)) {
      // Lists are arrival-sorted (Sec. IV-B3): once an entry arrives after
      // the pickup deadline, every later one does too (refinement rule 3,
      // cheap form).
      if (entry.time > pickup_deadline) break;
      TaxiId id = entry.taxi;
      if (seen_stamp_[id] == seen_epoch_) continue;
      seen_stamp_[id] = seen_epoch_;
      const TaxiState& t = taxi(id);
      // Rule (eq. 3): busy taxis must share the travel direction; empty
      // taxis are always eligible (refinement rule 1).
      if (!t.Idle() && cluster_stamp_[id] != seen_epoch_) continue;
      // Refinement rule 2: idle capacity.
      if (t.FreeSeats() < request.passengers) continue;
      // Refinement rule 3: exact reachability. On the bucket path the
      // swept distance IS the oracle cost whenever it is within the
      // budget, and kInfiniteCost/an over-budget partial min otherwise —
      // either way this exact re-check accepts the same taxis. On the
      // index path the landmark lower bound settles most violations in
      // O(1); only survivors pay the exact oracle probe.
      if (buckets) {
        if (now + BucketDistance(id) > pickup_deadline) continue;
      } else {
        if (LowerBoundPrunesPickup(t.location, request, now)) continue;
        if (now + oracle_->Cost(t.location, request.origin) >
            pickup_deadline) {
          continue;
        }
      }
      candidates.push_back(id);
    }
  }
  return candidates;
}

DispatchOutcome MtShareDispatcher::Dispatch(const RideRequest& request,
                                            Seconds now) {
  DispatchOutcome outcome;
  // Searching range gamma. Eq. (2) derives gamma = speed * wait-budget; the
  // paper's evaluation fixes gamma = 2.5 km ("equivalent to a waiting time
  // of 10 min", Table II) for all schemes, so the shared cap is used and
  // the adaptive value only ever shrinks it when the budget is *larger*
  // than the cap allows (it never is at the default rho).
  double gamma = config_.gamma_max_m;
  const std::vector<TaxiId>& candidates = CandidateTaxis(request, now, gamma);

  // Exhaustive insertion over the candidate set (Algorithm 1), fanned out
  // across the attached thread pool. The reduction in EvaluateCandidates is
  // deterministic, so the winning (taxi, schedule) pair is identical to the
  // single-threaded loop.
  outcome.candidates = static_cast<int32_t>(candidates.size());
  CandidateEval best = EvaluateCandidates(candidates, request, now);
  if (best.taxi == kInvalidTaxi) return outcome;
  Seconds best_cost = best.insertion.detour;
  TaxiId best_taxi = best.taxi;
  InsertionResult best_ins = std::move(best.insertion);
  RoutePlanner::PlannedRoute best_prob_route;
  bool best_is_prob = false;

  // Probabilistic mode (Algorithm 1 with flag set): the winning schedule
  // instance gets an offline-seeking route. The paper costs every instance
  // with its probabilistic route; we select by oracle detour and plan the
  // winner's route probabilistically — same winner in almost all cases at
  // a fraction of the planning work (see DESIGN.md).
  if (config_.probabilistic && ProbQualifies(taxi(best_taxi))) {
    const TaxiState& t = taxi(best_taxi);
    Point dir = Point{0, 0};
    Point dest_sum{0, 0};
    int32_t n = 0;
    for (const ScheduleEvent& e : best_ins.schedule.events()) {
      if (e.is_pickup) continue;
      dest_sum.x += network_.coord(e.vertex).x;
      dest_sum.y += network_.coord(e.vertex).y;
      ++n;
    }
    if (n > 0) {
      const Point& here = network_.coord(t.location);
      dir = Point{dest_sum.x / n - here.x, dest_sum.y / n - here.y};
    }
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kRouting);
    best_prob_route = planner_.PlanRoute(t.location, now, best_ins.schedule,
                                         /*probabilistic=*/true, dir);
    best_is_prob = best_prob_route.valid;
  }

  RoutePlanner::PlannedRoute route;
  if (best_is_prob) {
    route = std::move(best_prob_route);
  } else {
    // Basic routing commits exact shortest legs: the paper precomputes and
    // caches all-pairs shortest paths for every scheme (Sec. V-A4), so the
    // partition-filtered search (RoutePlanner::PlanBasicLeg) is the
    // cold-cache compute path, not a different route. Costs here come from
    // the same oracle the insertion check used, so feasibility carries over.
    const TaxiState& t = taxi(best_taxi);
    route = PlanShortestRoute(t.location, now, best_ins.schedule);
  }
  if (!route.valid) return outcome;

  outcome.assigned = true;
  outcome.taxi = best_taxi;
  outcome.detour = best_cost;
  outcome.schedule = std::move(best_ins.schedule);
  outcome.route = std::move(route);
  outcome.probabilistic_route = best_is_prob;
  index_.AddRequest(request);  // active rides shape the cluster vectors
  return outcome;
}

}  // namespace mtshare
