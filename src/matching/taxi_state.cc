#include "matching/taxi_state.h"

#include "common/random.h"

namespace mtshare {

MobilityVector TaxiMobilityVector(const TaxiState& taxi,
                                  const RoadNetwork& network) {
  return TaxiMobilityVectorFrom(taxi, network, taxi.location);
}

MobilityVector TaxiMobilityVectorFrom(const TaxiState& taxi,
                                      const RoadNetwork& network,
                                      VertexId location) {
  const Point& here = network.coord(location);
  Point dest_sum{0, 0};
  int32_t dropoffs = 0;
  for (const ScheduleEvent& e : taxi.schedule.events()) {
    if (e.is_pickup) continue;
    dest_sum.x += network.coord(e.vertex).x;
    dest_sum.y += network.coord(e.vertex).y;
    ++dropoffs;
  }
  if (dropoffs == 0) return MobilityVector{here, here};
  return MobilityVector{
      here, Point{dest_sum.x / dropoffs, dest_sum.y / dropoffs}};
}

std::vector<TaxiState> MakeFleet(const RoadNetwork& network, int32_t count,
                                 int32_t capacity, uint64_t seed,
                                 Seconds start_time) {
  Rng rng(seed);
  std::vector<TaxiState> fleet(count);
  for (int32_t i = 0; i < count; ++i) {
    fleet[i].id = i;
    fleet[i].capacity = capacity;
    fleet[i].location =
        static_cast<VertexId>(rng.NextInt(0, network.num_vertices() - 1));
    fleet[i].location_time = start_time;
  }
  return fleet;
}

}  // namespace mtshare
