#ifndef MTSHARE_MATCHING_PHASE_TIMERS_H_
#define MTSHARE_MATCHING_PHASE_TIMERS_H_

#include <array>
#include <chrono>
#include <cstdint>

namespace mtshare {

/// Where dispatch wall-clock time goes (the run-report breakdown). Every
/// scheme attributes its work to these four phases; whatever falls between
/// them (glue, index bookkeeping) shows up as the report's unattributed
/// residual.
enum class DispatchPhase : int {
  /// Probing the spatial / partition-arrival indexes for raw candidates.
  kCandidateSearch = 0,
  /// Partition + mobility-cluster compatibility, seat and reachability
  /// refinement of the raw candidate set.
  kFilter,
  /// Schedule insertion feasibility (FindBestInsertionDp over candidates).
  kInsertion,
  /// Route materialization: shortest-path legs and probabilistic planning,
  /// including the routing oracle work they trigger.
  kRouting,
};

inline constexpr size_t kNumDispatchPhases = 4;

inline const char* DispatchPhaseName(DispatchPhase phase) {
  switch (phase) {
    case DispatchPhase::kCandidateSearch:
      return "candidate_search";
    case DispatchPhase::kFilter:
      return "filter";
    case DispatchPhase::kInsertion:
      return "insertion";
    case DispatchPhase::kRouting:
      return "routing";
  }
  return "?";
}

/// Accumulated per-phase dispatch time for one dispatcher (== one run).
/// Only the engine thread writes it — candidate evaluation fans out to the
/// pool *inside* an attributed section, so the section timer itself never
/// races. When `enabled` is false the scoped timer below never reads the
/// clock, so an untimed run pays one branch per section.
struct PhaseTimers {
  bool enabled = false;
  std::array<double, kNumDispatchPhases> seconds{};
  std::array<int64_t, kNumDispatchPhases> calls{};

  void Reset() {
    seconds.fill(0.0);
    calls.fill(0);
  }

  double total_seconds() const {
    double total = 0.0;
    for (double s : seconds) total += s;
    return total;
  }
};

/// RAII section timer: attributes the enclosed scope to one phase.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseTimers& timers, DispatchPhase phase)
      : timers_(timers), phase_(static_cast<size_t>(phase)) {
    if (timers_.enabled) start_ = Clock::now();
  }
  ~ScopedPhaseTimer() {
    if (!timers_.enabled) return;
    timers_.seconds[phase_] +=
        std::chrono::duration<double>(Clock::now() - start_).count();
    ++timers_.calls[phase_];
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  PhaseTimers& timers_;
  size_t phase_;
  Clock::time_point start_;
};

}  // namespace mtshare

#endif  // MTSHARE_MATCHING_PHASE_TIMERS_H_
