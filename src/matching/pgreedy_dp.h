#ifndef MTSHARE_MATCHING_PGREEDY_DP_H_
#define MTSHARE_MATCHING_PGREEDY_DP_H_

#include "matching/dispatcher.h"
#include "spatial/grid_index.h"

namespace mtshare {

/// The pGreedyDP baseline (Tong et al., VLDB'18, as characterized in paper
/// Sec. V-A2): grid-indexed taxis, candidates are *all* taxis within gamma
/// of the request origin (single-side, no direction pruning — hence the
/// largest candidate sets, Table III), and the insertion position is found
/// with the dynamic-programming slack precomputation
/// (FindBestInsertionDp). The minimum-detour candidate wins.
class PGreedyDpDispatcher : public Dispatcher {
 public:
  PGreedyDpDispatcher(const RoadNetwork& network, DistanceOracle* oracle,
                      std::vector<TaxiState>* fleet,
                      const MatchingConfig& config);

  std::string_view name() const override { return "pGreedyDP"; }

  DispatchOutcome Dispatch(const RideRequest& request, Seconds now) override;

  void OnTaxiMoved(TaxiId taxi) override;
  void OnScheduleCommitted(TaxiId taxi) override;

  size_t IndexMemoryBytes() const override { return index_.MemoryBytes(); }

 private:
  DynamicGridIndex index_;  ///< positions of all taxis
};

}  // namespace mtshare

#endif  // MTSHARE_MATCHING_PGREEDY_DP_H_
