#ifndef MTSHARE_MATCHING_NO_SHARING_H_
#define MTSHARE_MATCHING_NO_SHARING_H_

#include "matching/dispatcher.h"
#include "spatial/grid_index.h"

namespace mtshare {

/// The regular-taxi baseline (paper Sec. V-A2): each request goes to the
/// geographically nearest *idle* taxi inside the searching range gamma; no
/// sharing ever happens, and offline requests are not served.
class NoSharingDispatcher : public Dispatcher {
 public:
  NoSharingDispatcher(const RoadNetwork& network, DistanceOracle* oracle,
                      std::vector<TaxiState>* fleet,
                      const MatchingConfig& config);

  std::string_view name() const override { return "No-Sharing"; }

  DispatchOutcome Dispatch(const RideRequest& request, Seconds now) override;

  void OnTaxiMoved(TaxiId taxi) override;
  void OnScheduleCommitted(TaxiId taxi) override;

  bool ServesOfflineRequests() const override { return false; }
  size_t IndexMemoryBytes() const override { return index_.MemoryBytes(); }

 private:
  DynamicGridIndex index_;  ///< positions of idle taxis only
};

}  // namespace mtshare

#endif  // MTSHARE_MATCHING_NO_SHARING_H_
