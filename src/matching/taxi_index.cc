#include "matching/taxi_index.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {

MtShareTaxiIndex::MtShareTaxiIndex(const RoadNetwork& network,
                                   const MapPartitioning& partitioning,
                                   double lambda, Seconds tmp)
    : network_(network),
      partitioning_(partitioning),
      tmp_(tmp),
      partition_taxis_(partitioning.num_partitions()),
      clustering_(lambda) {}

void MtShareTaxiIndex::RemoveTaxiPartitions(TaxiId id) {
  if (static_cast<size_t>(id) >= taxi_partitions_.size()) return;
  for (const Membership& m : taxi_partitions_[id]) {
    auto& list = partition_taxis_[m.partition];
    // The list is arrival-sorted and the membership recorded the entry's
    // arrival time: binary-search to the tie range instead of scanning the
    // whole list from the front.
    auto pos = std::lower_bound(
        list.begin(), list.end(), m.time,
        [](const Arrival& a, Seconds t) { return a.time < t; });
    for (; pos != list.end() && pos->time <= m.time; ++pos) {
      if (pos->taxi == id) {
        list.erase(pos);
        break;
      }
    }
  }
  // clear() keeps the slot's capacity: the subsequent reindex refills it
  // without touching the allocator.
  taxi_partitions_[id].clear();
}

bool MtShareTaxiIndex::PartitionContains(PartitionId p, TaxiId id) const {
  for (const Arrival& a : partition_taxis_[p]) {
    if (a.taxi == id) return true;
  }
  return false;
}

void MtShareTaxiIndex::ReindexTaxi(const TaxiState& taxi, Seconds now) {
  ReindexTaxiAt(taxi, taxi.route_pos, now);
}

void MtShareTaxiIndex::ReindexTaxiAt(const TaxiState& taxi, size_t pos,
                                     Seconds now) {
  // The taxi's location as of route position `pos` — falls back to the
  // stored location for drained/empty routes (ReindexTaxi delegation).
  VertexId location =
      pos < taxi.route.size() ? taxi.route.vertex(pos) : taxi.location;
  if (static_cast<size_t>(taxi.id) >= taxi_partitions_.size()) {
    taxi_partitions_.resize(taxi.id + 1);
  }
  RemoveTaxiPartitions(taxi.id);
  std::vector<Membership>& memberships = taxi_partitions_[taxi.id];
  auto add = [&](PartitionId p, Seconds arrival) {
    // Memberships are visited in increasing arrival order, so the first
    // insertion carries the earliest arrival. All of this taxi's old
    // entries were just removed, so a duplicate can only come from this
    // call — check the (short) local membership list, not the partition's.
    for (const Membership& existing : memberships) {
      if (existing.partition == p) return;
    }
    auto& list = partition_taxis_[p];
    Arrival entry{arrival, taxi.id};
    auto pos = std::upper_bound(list.begin(), list.end(), arrival,
                                [](Seconds t, const Arrival& a) {
                                  return t < a.time;
                                });
    list.insert(pos, entry);
    memberships.push_back(Membership{p, arrival});
  };
  // Current partition, at the current time.
  add(partitioning_.PartitionOf(location), now);
  // Partitions along the committed route, first-arrival within T_mp.
  for (size_t i = pos; i < taxi.route.size(); ++i) {
    Seconds arrival = taxi.route.time(i);
    if (arrival > now + tmp_) break;
    add(partitioning_.PartitionOf(taxi.route.vertex(i)), arrival);
  }

  // Mobility cluster: busy taxis only (Sec. IV-B2 excludes empty taxis).
  MobilityVector mv = TaxiMobilityVectorFrom(taxi, network_, location);
  if (mv.Length() > 0.0) {
    clustering_.Assign(TaxiKey(taxi.id), mv);
  } else {
    clustering_.Remove(TaxiKey(taxi.id));
  }
}

void MtShareTaxiIndex::OnTaxiMoved(const TaxiState& taxi, Seconds now) {
  if (taxi.Idle()) {
    ReindexTaxi(taxi, now);
    return;
  }
  // Busy taxis: future memberships are route-derived and stay valid, but
  // the moment the taxi crosses into a new partition its old
  // current-partition entry is stale — the partition it left keeps
  // advertising it with a past arrival time, inflating candidate lists
  // with taxis that are no longer anywhere near. Reindex on crossing
  // (memberships.front() is the current-partition entry by construction);
  // moves within a partition keep the cheap early return.
  if (static_cast<size_t>(taxi.id) >= taxi_partitions_.size() ||
      taxi_partitions_[taxi.id].empty() ||
      taxi_partitions_[taxi.id].front().partition !=
          partitioning_.PartitionOf(taxi.location)) {
    ReindexTaxi(taxi, now);
  }
}

void MtShareTaxiIndex::OnTaxiAdvanced(const TaxiState& taxi, size_t from_pos,
                                      size_t to_pos) {
  if (taxi.Idle()) {
    // The per-arc sweep reindexes an idle taxi at every step, but each
    // reindex rebuilds the partition entries wholesale and the clustering
    // Remove is idempotent — only the final one survives.
    Seconds now = to_pos < taxi.route.size() ? taxi.route.time(to_pos)
                                             : taxi.location_time;
    ReindexTaxiAt(taxi, to_pos, now);
    return;
  }
  // Busy taxis: replay the crossing check at every stepped position. A
  // crossing must reindex *as of that position* — the route scan start and
  // the T_mp horizon both depend on where the crossing happened, so
  // collapsing to one batch-end reindex would record different arrivals.
  for (size_t pos = from_pos + 1; pos <= to_pos; ++pos) {
    if (static_cast<size_t>(taxi.id) >= taxi_partitions_.size() ||
        taxi_partitions_[taxi.id].empty() ||
        taxi_partitions_[taxi.id].front().partition !=
            partitioning_.PartitionOf(taxi.route.vertex(pos))) {
      ReindexTaxiAt(taxi, pos, taxi.route.time(pos));
    }
  }
}

void MtShareTaxiIndex::AddRequest(const RideRequest& request) {
  clustering_.Assign(RequestKey(request.id),
                     MobilityVector{network_.coord(request.origin),
                                    network_.coord(request.destination)});
}

void MtShareTaxiIndex::RemoveRequest(RequestId id) {
  clustering_.Remove(RequestKey(id));
}

ClusterId MtShareTaxiIndex::FindCluster(const MobilityVector& probe) const {
  return clustering_.FindBestCluster(probe);
}

std::vector<TaxiId> MtShareTaxiIndex::ClusterTaxis(ClusterId cluster) const {
  std::vector<TaxiId> taxis;
  AppendClusterTaxis(cluster, &taxis);
  return taxis;
}

std::vector<TaxiId> MtShareTaxiIndex::CompatibleClusterTaxis(
    const MobilityVector& probe) const {
  std::vector<TaxiId> taxis;
  AppendCompatibleClusterTaxis(probe, &taxis);
  return taxis;
}

void MtShareTaxiIndex::AppendClusterTaxis(ClusterId cluster,
                                          std::vector<TaxiId>* out) const {
  if (cluster == kInvalidCluster) return;
  for (int64_t key : clustering_.Members(cluster)) {
    if (key >= 0) out->push_back(static_cast<TaxiId>(key));
  }
}

void MtShareTaxiIndex::AppendCompatibleClusterTaxis(
    const MobilityVector& probe, std::vector<TaxiId>* out) const {
  for (ClusterId c : clustering_.FindCompatibleClusters(probe)) {
    for (int64_t key : clustering_.Members(c)) {
      if (key >= 0) out->push_back(static_cast<TaxiId>(key));
    }
  }
}

size_t MtShareTaxiIndex::MemoryBytes() const {
  size_t bytes = clustering_.MemoryBytes();
  for (const auto& m : partition_taxis_) {
    bytes += m.size() * sizeof(Arrival);
  }
  // Count non-empty slots the way the previous node-based map accounting
  // did (payload + per-entry overhead), so reported index memory stays
  // comparable across the storage change.
  for (const auto& memberships : taxi_partitions_) {
    if (memberships.empty()) continue;
    bytes += memberships.size() * sizeof(Membership) + 24;
  }
  return bytes;
}

}  // namespace mtshare
