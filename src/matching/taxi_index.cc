#include "matching/taxi_index.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {

MtShareTaxiIndex::MtShareTaxiIndex(const RoadNetwork& network,
                                   const MapPartitioning& partitioning,
                                   double lambda, Seconds tmp)
    : network_(network),
      partitioning_(partitioning),
      tmp_(tmp),
      partition_taxis_(partitioning.num_partitions()),
      clustering_(lambda) {}

void MtShareTaxiIndex::RemoveTaxiPartitions(TaxiId id) {
  auto it = taxi_partitions_.find(id);
  if (it == taxi_partitions_.end()) return;
  for (PartitionId p : it->second) {
    auto& list = partition_taxis_[p];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].taxi == id) {
        list.erase(list.begin() + i);
        break;
      }
    }
  }
  taxi_partitions_.erase(it);
}

bool MtShareTaxiIndex::PartitionContains(PartitionId p, TaxiId id) const {
  for (const Arrival& a : partition_taxis_[p]) {
    if (a.taxi == id) return true;
  }
  return false;
}

void MtShareTaxiIndex::ReindexTaxi(const TaxiState& taxi, Seconds now) {
  RemoveTaxiPartitions(taxi.id);
  std::vector<PartitionId> memberships;
  auto add = [&](PartitionId p, Seconds arrival) {
    // Memberships are visited in increasing arrival order, so the first
    // insertion carries the earliest arrival; keep the list sorted.
    for (const Arrival& existing : partition_taxis_[p]) {
      if (existing.taxi == taxi.id) return;
    }
    auto& list = partition_taxis_[p];
    Arrival entry{arrival, taxi.id};
    auto pos = std::upper_bound(list.begin(), list.end(), arrival,
                                [](Seconds t, const Arrival& a) {
                                  return t < a.time;
                                });
    list.insert(pos, entry);
    memberships.push_back(p);
  };
  // Current partition, at the current time.
  add(partitioning_.PartitionOf(taxi.location), now);
  // Partitions along the committed route, first-arrival within T_mp.
  for (size_t i = taxi.route_pos; i < taxi.route.size(); ++i) {
    Seconds arrival = taxi.route_times[i];
    if (arrival > now + tmp_) break;
    add(partitioning_.PartitionOf(taxi.route[i]), arrival);
  }
  taxi_partitions_.emplace(taxi.id, std::move(memberships));

  // Mobility cluster: busy taxis only (Sec. IV-B2 excludes empty taxis).
  MobilityVector mv = TaxiMobilityVector(taxi, network_);
  if (mv.Length() > 0.0) {
    clustering_.Assign(TaxiKey(taxi.id), mv);
  } else {
    clustering_.Remove(TaxiKey(taxi.id));
  }
}

void MtShareTaxiIndex::OnTaxiMoved(const TaxiState& taxi, Seconds now) {
  if (!taxi.Idle()) return;  // busy taxis: memberships are route-derived
  ReindexTaxi(taxi, now);
}

void MtShareTaxiIndex::AddRequest(const RideRequest& request) {
  clustering_.Assign(RequestKey(request.id),
                     MobilityVector{network_.coord(request.origin),
                                    network_.coord(request.destination)});
}

void MtShareTaxiIndex::RemoveRequest(RequestId id) {
  clustering_.Remove(RequestKey(id));
}

ClusterId MtShareTaxiIndex::FindCluster(const MobilityVector& probe) const {
  return clustering_.FindBestCluster(probe);
}

std::vector<TaxiId> MtShareTaxiIndex::ClusterTaxis(ClusterId cluster) const {
  std::vector<TaxiId> taxis;
  if (cluster == kInvalidCluster) return taxis;
  for (int64_t key : clustering_.Members(cluster)) {
    if (key >= 0) taxis.push_back(static_cast<TaxiId>(key));
  }
  return taxis;
}

std::vector<TaxiId> MtShareTaxiIndex::CompatibleClusterTaxis(
    const MobilityVector& probe) const {
  std::vector<TaxiId> taxis;
  for (ClusterId c : clustering_.FindCompatibleClusters(probe)) {
    for (int64_t key : clustering_.Members(c)) {
      if (key >= 0) taxis.push_back(static_cast<TaxiId>(key));
    }
  }
  return taxis;
}

size_t MtShareTaxiIndex::MemoryBytes() const {
  size_t bytes = clustering_.MemoryBytes();
  for (const auto& m : partition_taxis_) {
    bytes += m.size() * sizeof(Arrival);
  }
  for (const auto& [id, partitions] : taxi_partitions_) {
    (void)id;
    bytes += partitions.size() * sizeof(PartitionId) + 24;
  }
  return bytes;
}

}  // namespace mtshare
