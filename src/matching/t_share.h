#ifndef MTSHARE_MATCHING_T_SHARE_H_
#define MTSHARE_MATCHING_T_SHARE_H_

#include "matching/dispatcher.h"
#include "spatial/grid_index.h"

namespace mtshare {

/// The T-Share baseline (Ma et al., ICDE'13 / TKDE'15, as characterized in
/// paper Sec. V-A2): grid-indexed taxis, a *dual-side* search anchored at
/// both the request's origin and destination, and **first-valid** taxi
/// selection — it stops at the first candidate admitting a feasible
/// insertion instead of scanning for the minimum-detour one.
///
/// The dual-side intersection is what shrinks its candidate sets (paper
/// Table III) and "mistakenly removes many possible taxis" [42]: a taxi
/// currently on the far side of the destination is discarded even when its
/// schedule would serve the trip well.
class TShareDispatcher : public Dispatcher {
 public:
  TShareDispatcher(const RoadNetwork& network, DistanceOracle* oracle,
                   std::vector<TaxiState>* fleet,
                   const MatchingConfig& config);

  std::string_view name() const override { return "T-Share"; }

  DispatchOutcome Dispatch(const RideRequest& request, Seconds now) override;

  void OnTaxiMoved(TaxiId taxi) override;
  void OnScheduleCommitted(TaxiId taxi) override;

  size_t IndexMemoryBytes() const override { return index_.MemoryBytes(); }

 private:
  DynamicGridIndex index_;  ///< positions of all taxis
  /// Detour-ellipse scratch (Dispatch is serialized per instance).
  InsertionSlotMask mask_buf_;
};

}  // namespace mtshare

#endif  // MTSHARE_MATCHING_T_SHARE_H_
