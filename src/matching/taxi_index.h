#ifndef MTSHARE_MATCHING_TAXI_INDEX_H_
#define MTSHARE_MATCHING_TAXI_INDEX_H_

#include <cstdint>
#include <vector>

#include "matching/taxi_state.h"
#include "mobility/mobility_clustering.h"
#include "partition/map_partitioning.h"

namespace mtshare {

/// mT-Share's dual taxi index (paper Sec. IV-B3):
///  - *map-partition lists* P_z.L_t: for each partition, the taxis that are
///    in it now or will arrive within the horizon T_mp, with arrival times
///    (derived from committed routes);
///  - *mobility-cluster lists* C_a.L_t: busy taxis grouped by travel
///    direction via MobilityClustering. Ride requests are clustered in the
///    same structure (distinct key space) so cluster general vectors track
///    both populations.
class MtShareTaxiIndex {
 public:
  MtShareTaxiIndex(const RoadNetwork& network,
                   const MapPartitioning& partitioning, double lambda,
                   Seconds tmp);

  /// (Re)indexes a taxi from its current state: partition memberships from
  /// its route (or its location when idle) and cluster membership from its
  /// mobility vector. Call on fleet setup and whenever a schedule/route is
  /// committed or drained.
  void ReindexTaxi(const TaxiState& taxi, Seconds now);

  /// Refresh when a taxi's location changed. Idle taxis reindex on every
  /// move. Busy taxis' *future* memberships are route-derived and stay
  /// valid between commits, but the current-partition entry goes stale the
  /// moment the taxi crosses a partition border: the partition it left
  /// keeps advertising it with a past arrival time. Crossing triggers a
  /// reindex; moves within a partition stay O(1).
  void OnTaxiMoved(const TaxiState& taxi, Seconds now);

  /// Batched form of OnTaxiMoved for the event-driven engine: the taxi
  /// advanced from route position `from_pos` through `to_pos`. Replays the
  /// per-arc sweep exactly — for busy taxis every partition crossing
  /// triggers a reindex *as of that position* (location, arrival horizon,
  /// and mobility vector evaluated at the crossing, so the clustering's
  /// floating-point fold sees the identical Assign sequence); idle taxis
  /// reindex once at `to_pos` (intermediate idle reindexes are fully
  /// overwritten: partition entries are rebuilt and the clustering Remove
  /// is idempotent). The caller must keep schedule-changing events outside
  /// the batch (the engine splits batches at event arcs).
  void OnTaxiAdvanced(const TaxiState& taxi, size_t from_pos, size_t to_pos);

  /// Registers a ride request in the mobility clustering (affects general
  /// vectors); call when the request enters the system.
  void AddRequest(const RideRequest& request);
  /// Removes a request (completed or rejected).
  void RemoveRequest(RequestId id);

  /// One entry of a partition taxi list.
  struct Arrival {
    Seconds time = 0.0;
    TaxiId taxi = kInvalidTaxi;
  };

  /// Taxis indexed in partition p with their first arrival time there,
  /// sorted ascending by arrival (paper Sec. IV-B3) so scans can stop at
  /// the first entry beyond a deadline.
  const std::vector<Arrival>& PartitionTaxis(PartitionId p) const {
    return partition_taxis_[p];
  }

  /// Whether taxi `id` is listed in partition p (test helper).
  bool PartitionContains(PartitionId p, TaxiId id) const;

  /// Best direction-compatible cluster for a probe vector,
  /// kInvalidCluster if none.
  ClusterId FindCluster(const MobilityVector& probe) const;

  /// Busy taxis in the given mobility cluster.
  std::vector<TaxiId> ClusterTaxis(ClusterId cluster) const;

  /// Busy taxis across every cluster whose general vector passes lambda
  /// against the probe (union of direction-compatible clusters).
  std::vector<TaxiId> CompatibleClusterTaxis(const MobilityVector& probe) const;

  /// Allocation-free variants for hot dispatch paths: append into a
  /// caller-owned buffer (same order as the by-value forms) instead of
  /// materializing a fresh vector per request.
  void AppendClusterTaxis(ClusterId cluster, std::vector<TaxiId>* out) const;
  void AppendCompatibleClusterTaxis(const MobilityVector& probe,
                                    std::vector<TaxiId>* out) const;

  const MobilityClustering& clustering() const { return clustering_; }

  size_t MemoryBytes() const;

 private:
  static int64_t TaxiKey(TaxiId id) { return id; }
  static int64_t RequestKey(RequestId id) { return -(id + 2); }

  void RemoveTaxiPartitions(TaxiId id);

  /// ReindexTaxi evaluated as of route position `pos`: location is
  /// route[pos], the route scan starts there, and the T_mp horizon is
  /// anchored at `now`. ReindexTaxi delegates with pos = taxi.route_pos.
  void ReindexTaxiAt(const TaxiState& taxi, size_t pos, Seconds now);

  const RoadNetwork& network_;
  const MapPartitioning& partitioning_;
  Seconds tmp_;

  /// One recorded membership: the partition a taxi is listed in plus the
  /// arrival time its entry carries — the binary-search key into that
  /// partition's sorted Arrival list at removal time.
  struct Membership {
    PartitionId partition = 0;
    Seconds time = 0.0;
  };

  std::vector<std::vector<Arrival>> partition_taxis_;
  /// Memberships of each indexed taxi, in insertion order (the current
  /// partition first, then route partitions by first arrival). Dense by
  /// taxi id, grown on demand; an empty inner vector means "not indexed".
  /// Reindexing clears and refills the taxi's slot in place, so the
  /// steady-state reindex churn of a large fleet allocates nothing.
  std::vector<std::vector<Membership>> taxi_partitions_;
  MobilityClustering clustering_;
};

}  // namespace mtshare

#endif  // MTSHARE_MATCHING_TAXI_INDEX_H_
