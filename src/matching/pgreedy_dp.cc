#include "matching/pgreedy_dp.h"

namespace mtshare {

PGreedyDpDispatcher::PGreedyDpDispatcher(const RoadNetwork& network,
                                         DistanceOracle* oracle,
                                         std::vector<TaxiState>* fleet,
                                         const MatchingConfig& config)
    : Dispatcher(network, oracle, fleet, config),
      index_(network.bounds(), config.grid_cell_m) {
  for (const TaxiState& t : *fleet_) {
    index_.Update(t.id, network_.coord(t.location));
  }
}

void PGreedyDpDispatcher::OnTaxiMoved(TaxiId id) {
  index_.Update(id, network_.coord(taxi(id).location));
}

void PGreedyDpDispatcher::OnScheduleCommitted(TaxiId id) {
  index_.Update(id, network_.coord(taxi(id).location));
}

DispatchOutcome PGreedyDpDispatcher::Dispatch(const RideRequest& request,
                                              Seconds now) {
  DispatchOutcome outcome;
  const Point& origin = network_.coord(request.origin);
  std::vector<int32_t> nearby =
      index_.ObjectsInRadius(origin, config_.gamma_max_m);

  Seconds best_detour = kInfiniteCost;
  InsertionResult best_ins;
  TaxiId best_taxi = kInvalidTaxi;
  for (int32_t id : nearby) {
    const TaxiState& t = taxi(id);
    if (t.FreeSeats() < request.passengers) continue;
    ++outcome.candidates;
    // No direction/temporal prefilter: the scheme examines every in-range
    // taxi's schedule (the paper's Table III shows it with the largest
    // candidate sets and Fig. 7 with the slowest response); the DP itself
    // rejects unreachable pickups.
    InsertionResult ins = FindBestInsertionDp(t.schedule, request, t.location,
                                              now, t.onboard, t.capacity,
                                              OracleCost());
    if (ins.found && ins.detour < best_detour) {
      best_detour = ins.detour;
      best_ins = std::move(ins);
      best_taxi = id;
    }
  }
  if (best_taxi == kInvalidTaxi) return outcome;

  RoutePlanner::PlannedRoute route = PlanShortestRoute(
      taxi(best_taxi).location, now, best_ins.schedule);
  if (!route.valid) return outcome;
  outcome.assigned = true;
  outcome.taxi = best_taxi;
  outcome.detour = best_detour;
  outcome.schedule = std::move(best_ins.schedule);
  outcome.route = std::move(route);
  return outcome;
}

}  // namespace mtshare
