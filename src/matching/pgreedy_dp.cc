#include "matching/pgreedy_dp.h"

namespace mtshare {

PGreedyDpDispatcher::PGreedyDpDispatcher(const RoadNetwork& network,
                                         DistanceOracle* oracle,
                                         std::vector<TaxiState>* fleet,
                                         const MatchingConfig& config)
    : Dispatcher(network, oracle, fleet, config),
      index_(network.bounds(), config.grid_cell_m) {
  for (const TaxiState& t : *fleet_) {
    index_.Update(t.id, network_.coord(t.location));
  }
}

void PGreedyDpDispatcher::OnTaxiMoved(TaxiId id) {
  index_.Update(id, network_.coord(taxi(id).location));
}

void PGreedyDpDispatcher::OnScheduleCommitted(TaxiId id) {
  index_.Update(id, network_.coord(taxi(id).location));
}

DispatchOutcome PGreedyDpDispatcher::Dispatch(const RideRequest& request,
                                              Seconds now) {
  DispatchOutcome outcome;
  const Point& origin = network_.coord(request.origin);
  std::vector<int32_t> nearby;
  {
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kCandidateSearch);
    nearby = index_.ObjectsInRadius(origin, config_.gamma_max_m);
  }

  // No direction/temporal prefilter: the scheme examines every in-range
  // taxi's schedule (the paper's Table III shows it with the largest
  // candidate sets and Fig. 7 with the slowest response); the DP itself
  // rejects unreachable pickups. The seat filter stays sequential, the DP
  // evaluations fan out across the thread pool with a deterministic
  // reduction.
  std::vector<TaxiId> candidates;
  candidates.reserve(nearby.size());
  {
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kFilter);
    for (int32_t id : nearby) {
      if (taxi(id).FreeSeats() < request.passengers) continue;
      candidates.push_back(id);
    }
  }
  outcome.candidates = static_cast<int32_t>(candidates.size());
  CandidateEval best = EvaluateCandidates(candidates, request, now);
  if (best.taxi == kInvalidTaxi) return outcome;
  TaxiId best_taxi = best.taxi;
  Seconds best_detour = best.insertion.detour;
  InsertionResult best_ins = std::move(best.insertion);

  RoutePlanner::PlannedRoute route = PlanShortestRoute(
      taxi(best_taxi).location, now, best_ins.schedule);
  if (!route.valid) return outcome;
  outcome.assigned = true;
  outcome.taxi = best_taxi;
  outcome.detour = best_detour;
  outcome.schedule = std::move(best_ins.schedule);
  outcome.route = std::move(route);
  return outcome;
}

}  // namespace mtshare
