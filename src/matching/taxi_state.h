#ifndef MTSHARE_MATCHING_TAXI_STATE_H_
#define MTSHARE_MATCHING_TAXI_STATE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "geo/mobility_vector.h"
#include "graph/road_network.h"
#include "sched/schedule.h"

namespace mtshare {

/// One materialized route node: the vertex, its planned arrival time, and
/// the cached length in meters of the arc to the *next* node (0 on the
/// last node). Interleaving the per-node fields keeps the event engine's
/// heap-pop -> advance loop on one cache line per step instead of touching
/// three parallel arrays.
struct RouteNode {
  VertexId vertex = kInvalidVertex;
  Seconds time = 0.0;
  double arc_length_m = 0.0;
};

/// A taxi's materialized route R_tj. Storage is a single node vector whose
/// capacity survives Reset(), so a taxi replanned thousands of times over a
/// run settles into one stable arena-like allocation instead of churning
/// three vectors per plan.
class TaxiRoute {
 public:
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  VertexId vertex(size_t i) const { return nodes_[i].vertex; }
  Seconds time(size_t i) const { return nodes_[i].time; }
  /// Meters of arc vertex(i) -> vertex(i+1), cached at plan time so
  /// stepping a taxi needs no adjacency lookups.
  double arc_length_m(size_t i) const { return nodes_[i].arc_length_m; }
  Seconds back_time() const { return nodes_.back().time; }

  /// Starts a fresh route at `start`, departing at `t`; retains capacity.
  void Reset(VertexId start, Seconds t) {
    nodes_.clear();
    nodes_.push_back(RouteNode{start, t, 0.0});
  }
  /// Extends the route across an arc of `arc_m` meters to `vertex`,
  /// arriving at `t`.
  void Append(double arc_m, VertexId vertex, Seconds t) {
    nodes_.back().arc_length_m = arc_m;
    nodes_.push_back(RouteNode{vertex, t, 0.0});
  }

 private:
  std::vector<RouteNode> nodes_;
};

/// Runtime status of one shared taxi (paper Def. 3): current location, the
/// pending schedule S_tj and its materialized route R_tj, plus bookkeeping
/// the simulation and payment model need.
struct TaxiState {
  TaxiId id = kInvalidTaxi;
  int32_t capacity = 3;
  /// Riders currently inside the taxi.
  int32_t onboard = 0;

  /// Last reached vertex and when the taxi arrived there.
  VertexId location = kInvalidVertex;
  Seconds location_time = 0.0;

  /// Pending pickup/dropoff events, in execution order.
  Schedule schedule;
  /// Planned arrival time per schedule event of the applied plan. Executed
  /// events advance `event_pos` instead of shifting the vector, keeping it
  /// parallel to the schedule's popped prefix.
  std::vector<Seconds> event_arrivals;
  size_t event_pos = 0;

  /// Remaining route: route.vertex(route_pos) == location; empty when idle.
  TaxiRoute route;
  size_t route_pos = 0;

  /// True when this taxi currently drives probabilistic-routing legs.
  bool probabilistic_route = false;

  /// Lifetime odometer (meters) and the occupied sub-distance.
  double driven_meters = 0.0;
  double occupied_meters = 0.0;
  /// Accumulated driver income under the active payment model.
  double income = 0.0;

  /// Distance driven in the current ridesharing episode (resets when the
  /// taxi empties; feeds the episode settlement of the payment model).
  double episode_meters = 0.0;
  /// Requests picked up during the current episode, settled together.
  std::vector<RequestId> episode_requests;

  int32_t FreeSeats() const { return capacity - onboard; }
  bool Idle() const { return schedule.empty() && onboard == 0; }
  bool HasRoute() const { return route_pos + 1 < route.size(); }
};

/// The taxi's mobility vector (paper Sec. IV-B2): origin = current location,
/// destination = centroid of the dropoff vertices in its schedule. Returns
/// a zero-displacement vector for taxis with no pending dropoffs (they have
/// "no fixed travel destination" and are not mobility-clustered).
MobilityVector TaxiMobilityVector(const TaxiState& taxi,
                                  const RoadNetwork& network);

/// Same vector with the origin overridden — the taxi's mobility vector as
/// it was (or will be) at `location`, given its current schedule. Used by
/// the batched index updates to replay partition-crossing reindexes at the
/// exact positions the per-arc sweep would have performed them.
MobilityVector TaxiMobilityVectorFrom(const TaxiState& taxi,
                                      const RoadNetwork& network,
                                      VertexId location);

/// Builds `count` idle taxis at uniformly random vertices (Sec. V-A4 sets
/// initial taxi locations to random graph vertices).
std::vector<TaxiState> MakeFleet(const RoadNetwork& network, int32_t count,
                                 int32_t capacity, uint64_t seed,
                                 Seconds start_time = 0.0);

}  // namespace mtshare

#endif  // MTSHARE_MATCHING_TAXI_STATE_H_
