#ifndef MTSHARE_MATCHING_DISPATCHER_H_
#define MTSHARE_MATCHING_DISPATCHER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "demand/request.h"
#include "matching/phase_timers.h"
#include "matching/taxi_state.h"
#include "partition/landmark_graph.h"
#include "partition/map_partitioning.h"
#include "routing/distance_oracle.h"
#include "routing/last_stop_buckets.h"
#include "routing/one_to_many.h"
#include "sched/route_planner.h"

namespace mtshare {

/// Which candidate-search path discovers pickup-reachable taxis
/// (DESIGN.md §14). kIndex is each scheme's native structural scan with a
/// per-taxi exact reachability probe; kChBuckets answers every probe of a
/// dispatch with one backward CH sweep over last-stop bucket entries
/// (LastStopBuckets) and screens insertion slots with detour-ellipse
/// landmark bounds before exact routing. Dispatch decisions are
/// bit-identical either way — both paths keep the same structural
/// candidate set and order, and only replace provably-outcome-free work.
enum class CandidateSearch {
  kIndex = 0,
  kChBuckets,
};

/// Lower-case stable name ("index", "ch_buckets").
const char* CandidateSearchName(CandidateSearch mode);

/// Parses a path name (as accepted by mtshare_sim --candidates=). Returns
/// false on unknown names, leaving *out untouched.
bool ParseCandidateSearch(std::string_view name, CandidateSearch* out);

/// Parameters shared by all matching schemes (paper Table II).
struct MatchingConfig {
  /// Cap on the candidate searching range gamma (Table II default 2.5 km,
  /// swept in Fig. 15). mT-Share additionally adapts gamma to the request's
  /// waiting budget via eq. (2).
  double gamma_max_m = 2500.0;
  /// Constant cruise speed (15 km/h, Sec. V-A4); converts wait budget to
  /// search radius.
  double speed_mps = 15.0 * 1000.0 / 3600.0;
  /// Direction-similarity threshold lambda (0.707 == 45 degrees).
  double lambda = 0.707;
  /// Partition-filter cost slack epsilon.
  double epsilon = 1.0;
  /// Horizon of the partition taxi lists T_mp (1 hour).
  Seconds tmp = 3600.0;
  /// Enables probabilistic routing (the mT-Share^pro variant).
  bool probabilistic = false;
  /// A taxi drives probabilistic legs only while at least this fraction of
  /// its capacity is idle (Sec. V-A1: "half of the capacity in idle").
  double prob_free_seat_fraction = 0.5;
  /// Probabilistic-leg travel budget: min(deadline slack,
  /// shortest * prob_max_stretch + prob_extra_slack) — the probability vs
  /// detour trade-off knob (ablated in bench_ablation_design).
  double prob_max_stretch = 1.5;
  Seconds prob_extra_slack = 90.0;
  /// When true (default), candidate search accepts busy taxis from every
  /// mobility cluster whose general vector passes lambda against the
  /// request; when false, only the single best-matching cluster C_a is
  /// used (the paper's literal eq. (3); ablated in the lambda bench).
  bool match_all_compatible_clusters = true;
  /// Grid pitch of the baselines' spatial taxi index.
  double grid_cell_m = 500.0;
  /// When true (default), insertion evaluation primes an InsertionCostBatch
  /// (one-to-many row passes / truncated sweeps) instead of issuing one
  /// oracle query per leg per candidate. Results are bit-identical either
  /// way; the toggle exists for the equivalence test and A/B benches.
  bool batched_routing = true;
  /// Candidate-search path (see CandidateSearch). kChBuckets needs a
  /// contraction hierarchy; MTShareSystem arms it via
  /// Dispatcher::EnableChBucketSearch.
  CandidateSearch candidate_search = CandidateSearch::kIndex;
};

/// Brings a taxi's simulated state up to `now` before it is read. The
/// simulation engine registers itself here: with the event-driven core,
/// taxis the event queue has not yet touched can lag behind the clock, and
/// this hook materializes them on demand. The engine materializes every
/// due taxi before handing control to a dispatcher, so in practice these
/// calls are no-ops — the hook is the *contract* that makes the engine's
/// laziness invisible to the matching layer, and the seam tests use to
/// exercise lazy syncs directly.
class FleetSync {
 public:
  virtual ~FleetSync() = default;
  virtual void SyncTaxi(TaxiId taxi, Seconds now) = 0;
};

/// What a matching scheme returns for one ride request.
struct DispatchOutcome {
  bool assigned = false;
  TaxiId taxi = kInvalidTaxi;
  /// Detour cost omega of the winning schedule instance (paper eq. (4)).
  Seconds detour = 0.0;
  /// Candidate taxis whose schedules were examined (paper Table III).
  int32_t candidates = 0;
  /// New schedule + route for the winning taxi; the engine applies them.
  Schedule schedule;
  RoutePlanner::PlannedRoute route;
  /// Whether the route was planned probabilistically.
  bool probabilistic_route = false;
};

/// Interface of a passenger-taxi matching scheme. One instance owns the
/// indexes for one simulation run; the engine feeds it taxi lifecycle
/// notifications so indexes stay fresh.
class Dispatcher {
 public:
  /// The dispatcher reads and never mutates the fleet; the engine applies
  /// outcomes.
  Dispatcher(const RoadNetwork& network, DistanceOracle* oracle,
             std::vector<TaxiState>* fleet, const MatchingConfig& config);
  virtual ~Dispatcher() = default;

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  virtual std::string_view name() const = 0;

  /// Matches one online ride request; pure decision, no state mutation
  /// beyond the scheme's own index bookkeeping.
  virtual DispatchOutcome Dispatch(const RideRequest& request,
                                   Seconds now) = 0;

  /// Batch-window entry point (DESIGN.md §12): the engine collected
  /// `batch` (release order) over one window and asks the scheme to
  /// dispatch it at window-close time `now`. `dispatch_one` runs the
  /// standard dispatch-and-commit path for one request — each request's
  /// plan is applied before the next dispatch runs, so later requests see
  /// the fleet the earlier assignments produced. Implementations must call
  /// it exactly once per request; the default replays the batch in release
  /// order, which keeps batched runs deterministic and makes Δt=0 collapse
  /// to the per-request loop. Override to prime shared per-window state
  /// (or, later, to solve the batch as one assignment problem).
  virtual void DispatchBatch(
      const std::vector<const RideRequest*>& batch, Seconds now,
      const std::function<void(const RideRequest&)>& dispatch_one);

  /// A taxi advanced one vertex along its route.
  virtual void OnTaxiMoved(TaxiId taxi) { (void)taxi; }
  /// Batched movement notification from the event-driven engine: the taxi
  /// advanced from route position `from_pos` through `to_pos` (to_pos can
  /// trail the taxi's current route_pos when the engine splits a batch
  /// around a schedule event). Must be observationally equivalent to one
  /// OnTaxiMoved per arc; the default collapses the batch into a single
  /// OnTaxiMoved, which is exact for last-write-wins indexes (the grid
  /// baselines) and no-op trackers. mT-Share overrides it to replay its
  /// partition-crossing reindexes per crossing.
  virtual void OnTaxiAdvanced(TaxiId taxi, size_t from_pos, size_t to_pos) {
    (void)from_pos;
    (void)to_pos;
    OnTaxiMoved(taxi);
  }
  /// Whether per-arc index updates are order-sensitive *across taxis*.
  /// mT-Share's mobility clustering folds taxi vectors into floating-point
  /// cluster sums, so the inter-taxi update order is observable bit-wise;
  /// the engine only defers fleet advancement across release boundaries
  /// for schemes where it is not.
  virtual bool IndexUpdatesOrderSensitive() const { return false; }
  /// A taxi's schedule/route was replaced (assignment) or drained (idle).
  virtual void OnScheduleCommitted(TaxiId taxi) { (void)taxi; }
  /// A request left the system (delivered).
  virtual void OnRequestCompleted(const RideRequest& request, TaxiId taxi) {
    (void)request;
    (void)taxi;
  }
  /// A taxi's position or schedule changed in a way that can move its
  /// last-stop bucket anchor: schedule commit, per-arc advance, lazy
  /// materialization. The engine calls this IN ADDITION to the index
  /// notifications above (schemes override those without chaining to the
  /// base, so anchor upkeep needs its own hook). The base marks the taxi's
  /// bucket entries dirty — O(1), idempotent; the rebuild is deferred to
  /// the next sweep, which skips taxis whose anchor did not actually move.
  /// No-op when bucket search is off.
  virtual void OnScheduleChanged(TaxiId taxi) {
    if (buckets_ != nullptr) buckets_->MarkDirty(taxi);
  }

  /// Offline-request encounter (paper Sec. IV-C2): `taxi` met the waiting
  /// request at its origin vertex; serve it if a feasible insertion exists.
  /// Default: best insertion via oracle costs + shortest-path route.
  virtual DispatchOutcome TryServeEncountered(const RideRequest& request,
                                              TaxiId taxi, Seconds now);

  /// Whether this scheme participates in offline serving (No-Sharing does
  /// not; the adjusted baselines and mT-Share do, Sec. V-A2).
  virtual bool ServesOfflineRequests() const { return true; }

  /// Asked by the engine when a taxi is idle with no route: an
  /// offline-seeking cruise route (mT-Share-pro sends empty taxis toward
  /// high encounter-mass partitions; every other scheme parks them).
  /// Returns an invalid route unless idle cruising was enabled.
  virtual RoutePlanner::PlannedRoute PlanIdleCruise(TaxiId taxi, Seconds now);

  /// Arms probabilistic idle cruising: empty taxis are steered toward
  /// nearby partitions sampled by offline-encounter mass. mT-Share-pro arms
  /// this with its own planner; the Fig. 16 bench arms it on the baselines
  /// to form their "+ probabilistic routing" variants. `planner` is owned
  /// by the dispatcher when passed by unique_ptr.
  void EnableIdleCruising(const MapPartitioning* partitioning,
                          RoutePlanner* planner);
  void EnableIdleCruising(const MapPartitioning* partitioning,
                          std::unique_ptr<RoutePlanner> planner);

  /// Whether idle cruising is armed. The engine skips the per-boundary
  /// cruise offers entirely when it is not (PlanIdleCruise would be a
  /// side-effect-free early return for every taxi).
  bool IdleCruisingEnabled() const { return cruise_planner_ != nullptr; }

  /// Registers the engine's lazy-materialization hook (null detaches).
  void set_fleet_sync(FleetSync* sync) { fleet_sync_ = sync; }
  FleetSync* fleet_sync() const { return fleet_sync_; }

  /// Resident bytes of the scheme's index structures (paper Table IV).
  virtual size_t IndexMemoryBytes() const { return 0; }

  /// Attaches a worker pool (not owned; may be null = sequential). The
  /// arg-min schemes score each candidate taxi's exhaustive insertion
  /// concurrently; results are bit-identical to a single-threaded run
  /// because the reduction happens in candidate order (see
  /// EvaluateCandidates). The pool must outlive the dispatcher or be
  /// detached by passing nullptr.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Arms (or disarms) per-phase dispatch timing and clears any
  /// accumulated totals. Disabled timing costs one branch per section.
  void EnablePhaseTiming(bool enabled) {
    phase_timers_.Reset();
    phase_timers_.enabled = enabled;
  }
  /// Accumulated per-phase dispatch time (the run-report breakdown).
  const PhaseTimers& phase_timers() const { return phase_timers_; }

  /// Arms landmark-triangle lower bounds: candidate taxis whose pickup is
  /// provably unreachable before its deadline are skipped without exact
  /// routing. Admissible (never exceeds the true cost, with an absolute
  /// slack absorbing FP rounding), so outcomes are unchanged — only work
  /// is saved. `landmarks` must outlive the dispatcher; null disarms.
  void EnableLowerBoundPruning(const LandmarkGraph* landmarks) {
    lb_landmarks_ = landmarks;
  }

  /// Arms the ch_buckets candidate path on `ch` (must outlive the
  /// dispatcher; null disarms). Construction marks every taxi dirty, so
  /// the first sweep deposits the whole fleet. The schemes consult
  /// ChBucketSearchEnabled() to route their reachability probes through
  /// BucketSweep/BucketDistance instead of per-taxi oracle queries.
  void EnableChBucketSearch(const ContractionHierarchy* ch);
  bool ChBucketSearchEnabled() const { return buckets_ != nullptr; }
  /// The bucket store (null unless enabled) — test/diagnostic access.
  const LastStopBuckets* buckets() const { return buckets_.get(); }

  /// Batched-routing counters for Metrics / the run report.
  BatchRoutingStats routing_stats() const {
    BatchRoutingStats s = batch_.stats();
    s.batched = config_.batched_routing;
    s.lb_pruned = lb_pruned_;
    s.bucket_search = buckets_ != nullptr;
    if (buckets_ != nullptr) {
      s.bucket_candidates = buckets_->stats().found;
      s.bucket_maintenance_ms = buckets_->stats().maintenance_ms;
    }
    s.slots_screened = slots_screened_;
    s.ellipse_pruned = ellipse_pruned_;
    return s;
  }

 protected:
  /// Best feasible insertion over `candidates` for `request`: each
  /// candidate's FindBestInsertionDp runs on the pool when one is attached
  /// (the matching hot path, paper Algorithm 1 / Table III), then a
  /// sequential scan in candidate order keeps the winner — lowest detour,
  /// ties to the earliest candidate — making the result independent of
  /// thread schedule. Candidate lists are emitted in deterministic order
  /// with ascending taxi ids within a bucket, so the tie-break is by taxi
  /// id exactly as the single-threaded loop behaves.
  struct CandidateEval {
    TaxiId taxi = kInvalidTaxi;
    InsertionResult insertion;
  };
  CandidateEval EvaluateCandidates(const std::vector<TaxiId>& candidates,
                                   const RideRequest& request, Seconds now);
  /// Oracle-backed leg cost function (the O(1) shortest-path assumption).
  LegCostFn OracleCost();
  /// Leg costs served from the primed batch table (fallback: oracle).
  LegCostFn BatchedCost();
  /// Registers `t`'s insertion stop walk (location + schedule stops) with
  /// the batch; call batch_.Prime() once all candidates are registered.
  void RegisterCandidateStops(const TaxiState& t);
  /// True (and counted) when the landmark lower bound proves the taxi
  /// cannot reach the request origin by the pickup deadline. kLbSlack
  /// absorbs floating-point triangle-inequality violations so the prune
  /// can never disagree with the exact feasibility checks.
  bool LowerBoundPrunesPickup(VertexId taxi_location, const RideRequest& r,
                              Seconds now);
  static constexpr Seconds kLbSlack = 1e-6;

  /// ch_buckets path: one backward CH sweep from `origin` discovers every
  /// taxi whose current location reaches it within `budget` seconds
  /// (typically pickup_deadline - now). Flushes dirty bucket entries first
  /// (that is where maintenance time is paid), so the distances reflect
  /// exactly the locations the index path's per-taxi probes would read.
  /// Returns the found set; exact distances via BucketDistance.
  const std::vector<TaxiId>& BucketSweep(VertexId origin, Seconds budget);
  /// Exact cost taxi -> sweep origin from the most recent BucketSweep;
  /// kInfiniteCost when the taxi was beyond the (slack-widened) budget.
  /// Bit-identical to oracle_->Cost(taxi.location, origin) whenever the
  /// true cost is within the budget, so callers re-checking against the
  /// exact deadline make the same accept/reject decision as a probe.
  Seconds BucketDistance(TaxiId id) const {
    return buckets_->SweptDistance(id);
  }
  /// Detour-ellipse screen (DESIGN.md §14): fills `mask` with the
  /// insertion slots of `t`'s schedule that the landmark lower/upper
  /// bounds cannot prove infeasible for `r`. Returns false when no
  /// (pickup <= dropoff) pair survives — the candidate can be skipped
  /// without exact routing. Only provably infeasible slots are cleared,
  /// so masked insertion search returns the unmasked optimum.
  bool ComputeEllipseMask(const TaxiState& t, const RideRequest& r,
                          Seconds now, InsertionSlotMask* mask);
  /// The screen needs both the bucket path (the opt-in) and landmarks
  /// (the bounds).
  bool EllipseScreenEnabled() const {
    return buckets_ != nullptr && lb_landmarks_ != nullptr;
  }

  /// Materializes `taxi`'s simulated state up to `now` before reading it
  /// (no-op without a registered FleetSync, or when the taxi is current).
  /// Schemes call this ahead of candidate evaluation and encounter probes.
  void SyncTaxiState(TaxiId taxi, Seconds now) const {
    if (fleet_sync_ != nullptr) fleet_sync_->SyncTaxi(taxi, now);
  }

  /// Materializes an unrestricted shortest-path route for a schedule.
  RoutePlanner::PlannedRoute PlanShortestRoute(VertexId start,
                                               Seconds start_time,
                                               const Schedule& schedule);

  const TaxiState& taxi(TaxiId id) const { return (*fleet_)[id]; }

  const RoadNetwork& network_;
  DistanceOracle* oracle_;
  std::vector<TaxiState>* fleet_;
  MatchingConfig config_;
  DijkstraSearch route_dijkstra_;
  /// Per-request leg-cost table primed by the batched routing layer.
  InsertionCostBatch batch_;
  /// Landmark lower bounds for candidate pruning (null = disabled).
  const LandmarkGraph* lb_landmarks_ = nullptr;
  int64_t lb_pruned_ = 0;
  /// Last-stop bucket store of the ch_buckets path (null = index path).
  std::unique_ptr<LastStopBuckets> buckets_;
  /// Detour-ellipse screen counters (run-report routing section).
  int64_t slots_screened_ = 0;
  int64_t ellipse_pruned_ = 0;
  std::vector<VertexId> batch_walk_buf_;
  /// EvaluateCandidates scratch, reused across requests (each slot is
  /// rewritten — or its `found` flag cleared — before the reduction reads
  /// it). Worker threads write disjoint slots only.
  std::vector<InsertionResult> eval_results_;
  std::vector<uint8_t> eval_skip_;
  /// Per-candidate slot masks from the ellipse screen (written
  /// sequentially before the pool fan-out; workers read disjoint slots).
  std::vector<InsertionSlotMask> eval_masks_;
  /// ComputeEllipseMask scratch: lower-bound arrival chain and suffix-min
  /// deadline gaps of the candidate's base schedule.
  std::vector<Seconds> lba_buf_;
  std::vector<Seconds> gap_suffix_buf_;
  /// Per-phase dispatch time; schemes attribute their sections with
  /// ScopedPhaseTimer. Written only by the engine thread.
  PhaseTimers phase_timers_;

 private:
  /// Worker pool for candidate evaluation (not owned; null = sequential).
  ThreadPool* pool_ = nullptr;
  /// Lazy fleet materialization hook (not owned; null = fleet is eager).
  FleetSync* fleet_sync_ = nullptr;

  // Idle-cruising state (see EnableIdleCruising).
  const MapPartitioning* cruise_partitioning_ = nullptr;
  RoutePlanner* cruise_planner_ = nullptr;
  std::unique_ptr<RoutePlanner> owned_cruise_planner_;
  std::vector<Seconds> next_cruise_time_;
  Rng cruise_rng_{0xC0FFEE};
};

}  // namespace mtshare

#endif  // MTSHARE_MATCHING_DISPATCHER_H_
