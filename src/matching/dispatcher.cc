#include "matching/dispatcher.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {

const char* CandidateSearchName(CandidateSearch mode) {
  switch (mode) {
    case CandidateSearch::kIndex:
      return "index";
    case CandidateSearch::kChBuckets:
      return "ch_buckets";
  }
  return "index";
}

bool ParseCandidateSearch(std::string_view name, CandidateSearch* out) {
  if (name == "index") {
    *out = CandidateSearch::kIndex;
    return true;
  }
  if (name == "ch_buckets") {
    *out = CandidateSearch::kChBuckets;
    return true;
  }
  return false;
}

Dispatcher::Dispatcher(const RoadNetwork& network, DistanceOracle* oracle,
                       std::vector<TaxiState>* fleet,
                       const MatchingConfig& config)
    : network_(network),
      oracle_(oracle),
      fleet_(fleet),
      config_(config),
      route_dijkstra_(network),
      batch_(network, oracle) {
  MTSHARE_CHECK(oracle != nullptr);
  MTSHARE_CHECK(fleet != nullptr);
}

LegCostFn Dispatcher::OracleCost() {
  return [this](VertexId a, VertexId b) { return oracle_->Cost(a, b); };
}

LegCostFn Dispatcher::BatchedCost() {
  return [this](VertexId a, VertexId b) { return batch_.Cost(a, b); };
}

void Dispatcher::RegisterCandidateStops(const TaxiState& t) {
  batch_walk_buf_.clear();
  batch_walk_buf_.push_back(t.location);
  for (const ScheduleEvent& e : t.schedule.events()) {
    batch_walk_buf_.push_back(e.vertex);
  }
  batch_.AddCandidate(batch_walk_buf_);
}

void Dispatcher::EnableChBucketSearch(const ContractionHierarchy* ch) {
  if (ch == nullptr) {
    buckets_.reset();
    return;
  }
  buckets_ = std::make_unique<LastStopBuckets>(
      *ch, static_cast<int32_t>(fleet_->size()));
}

const std::vector<TaxiId>& Dispatcher::BucketSweep(VertexId origin,
                                                   Seconds budget) {
  // Anchors are read straight off the fleet, exactly as the index path's
  // probes do (no sync here: the schemes do not sync during their scans
  // either, and any lazy advance re-dirties the taxi via
  // OnScheduleChanged, so the next sweep sees the moved location).
  buckets_->FlushDirty([this](TaxiId id) { return taxi(id).location; });
  buckets_->Sweep(origin, budget);
  return buckets_->found();
}

/// Slot screen for one candidate. Notation: the base schedule has events
/// ev[0..m); slot i inserts before ev[i] (i == m appends); prev_i is the
/// stop driven from (taxi location for i == 0). All bounds chain the
/// landmark triangle inequalities, so a cleared slot is *provably*
/// infeasible under the exact leg costs:
///   - lba[k] <= arr[k]: lower-bound arrival chain (arc costs are dyadic,
///     so both chains sum exactly in doubles; LowerBound never exceeds the
///     true leg).
///   - P1: even the lower-bound pickup time from slot i misses the pickup
///     deadline — no (i, j) can be feasible.
///   - P2 (i < m): ANY insertion with pickup at i displaces ev[i] by at
///     least lb_d1 = LB(prev_i, o) + LB(o, v_i) - UB(prev_i, v_i) (for
///     j > i that is d1 itself; for j == i the full detour routes o -> d
///     -> v_i, and d(o,d) + d(d,v_i) >= d(o,v_i) >= LB(o,v_i)). If ev[i]'s
///     own deadline gap cannot absorb lb_d1, every pair is infeasible.
///     Uses the PER-SLOT gap, not the suffix min: later events also gain
///     the dropoff displacement, so their gaps are not comparable here.
///   - D1: the lower-bound dropoff time from slot j misses the delivery
///     deadline for every pickup i <= j (for i < j the displaced arrival
///     at ev[j-1] is >= lba[j-1] since d1 >= 0; for i == j the route
///     prev_j -> o -> d costs at least d(prev_j, d) >= LB(prev_j, d)).
///   - D2 (j < m): every event k >= j is displaced by at least
///     lb_d2 = LB(prev_j, d) + LB(d, v_j) - UB(prev_j, v_j) (for i < j the
///     total displacement is d1 + d2 >= d2 >= lb_d2; for i == j the full
///     detour bounds the same way via d(prev,o) + d(o,d) >= d(prev,d)).
///     The suffix-min gap over k >= j is valid because ALL of them shift.
/// kLbSlack absorbs the (sub-ulp) FP slop of the comparisons, mirroring
/// LowerBoundPrunesPickup. UpperBound returns kInfiniteCost on
/// disconnected terms, making lb_d1/lb_d2 -inf: never prunes.
bool Dispatcher::ComputeEllipseMask(const TaxiState& t, const RideRequest& r,
                                    Seconds now, InsertionSlotMask* mask) {
  const EventSpan ev = t.schedule.events();
  const size_t m = ev.size();
  mask->pickup.assign(m + 1, 1);
  mask->dropoff.assign(m + 1, 1);
  if (lb_landmarks_ == nullptr) return true;
  const LandmarkGraph& lm = *lb_landmarks_;
  slots_screened_ += static_cast<int64_t>(2 * (m + 1));
  const Seconds pickup_deadline = r.PickupDeadline();

  std::vector<Seconds>& lba = lba_buf_;
  lba.assign(m, 0.0);
  {
    Seconds at_time = now;
    VertexId at = t.location;
    for (size_t k = 0; k < m; ++k) {
      at_time += lm.LowerBound(at, ev[k].vertex);
      lba[k] = at_time;
      at = ev[k].vertex;
    }
  }
  std::vector<Seconds>& gap_suffix = gap_suffix_buf_;
  gap_suffix.assign(m + 1, kInfiniteCost);
  for (size_t k = m; k-- > 0;) {
    gap_suffix[k] = std::min(gap_suffix[k + 1], ev[k].deadline - lba[k]);
  }

  int64_t pruned = 0;
  for (size_t i = 0; i <= m; ++i) {
    const VertexId prev = (i == 0) ? t.location : ev[i - 1].vertex;
    const Seconds t_prev_lb = (i == 0) ? now : lba[i - 1];
    const Seconds to_pickup_lb = lm.LowerBound(prev, r.origin);
    if (t_prev_lb + to_pickup_lb > pickup_deadline + kLbSlack) {  // P1
      mask->pickup[i] = 0;
      ++pruned;
      continue;
    }
    if (i < m) {  // P2
      const Seconds lb_d1 = to_pickup_lb +
                            lm.LowerBound(r.origin, ev[i].vertex) -
                            lm.UpperBound(prev, ev[i].vertex);
      if (lb_d1 > (ev[i].deadline - lba[i]) + kLbSlack) {
        mask->pickup[i] = 0;
        ++pruned;
      }
    }
  }
  for (size_t j = 0; j <= m; ++j) {
    const VertexId prev = (j == 0) ? t.location : ev[j - 1].vertex;
    Seconds drop_lb;
    if (j == 0) {
      drop_lb = now + lm.LowerBound(t.location, r.origin) +
                lm.LowerBound(r.origin, r.destination);
    } else {
      drop_lb = lba[j - 1] + lm.LowerBound(prev, r.destination);
    }
    if (drop_lb > r.deadline + kLbSlack) {  // D1
      mask->dropoff[j] = 0;
      ++pruned;
      continue;
    }
    if (j < m) {  // D2
      const Seconds lb_d2 = lm.LowerBound(prev, r.destination) +
                            lm.LowerBound(r.destination, ev[j].vertex) -
                            lm.UpperBound(prev, ev[j].vertex);
      if (lb_d2 > gap_suffix[j] + kLbSlack) {
        mask->dropoff[j] = 0;
        ++pruned;
      }
    }
  }
  ellipse_pruned_ += pruned;

  // The candidate survives iff some allowed pickup slot i has an allowed
  // dropoff slot j >= i.
  size_t last_drop = m + 1;  // sentinel: none allowed
  for (size_t j = m + 1; j-- > 0;) {
    if (mask->dropoff[j]) {
      last_drop = j;
      break;
    }
  }
  if (last_drop == m + 1) return false;
  for (size_t i = 0; i <= last_drop; ++i) {
    if (mask->pickup[i]) return true;
  }
  return false;
}

bool Dispatcher::LowerBoundPrunesPickup(VertexId taxi_location,
                                        const RideRequest& r, Seconds now) {
  if (lb_landmarks_ == nullptr) return false;
  Seconds lb = lb_landmarks_->LowerBound(taxi_location, r.origin);
  if (now + lb > r.PickupDeadline() + kLbSlack) {
    ++lb_pruned_;
    return true;
  }
  return false;
}

void Dispatcher::DispatchBatch(
    const std::vector<const RideRequest*>& batch, Seconds now,
    const std::function<void(const RideRequest&)>& dispatch_one) {
  (void)now;  // the engine already advanced the fleet to the window close
  for (const RideRequest* request : batch) {
    dispatch_one(*request);
  }
}

Dispatcher::CandidateEval Dispatcher::EvaluateCandidates(
    const std::vector<TaxiId>& candidates, const RideRequest& request,
    Seconds now) {
  ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kInsertion);
  // Materialize every candidate before any state is read — sequentially,
  // ahead of the pool fan-out, so lazy advancement never runs on a worker.
  for (TaxiId id : candidates) SyncTaxiState(id, now);
  // Reused per-call scratch: slots are overwritten by evaluate() (or their
  // `found` flag cleared on the skip path), so stale entries from the
  // previous request can never leak into the reduction.
  eval_results_.resize(candidates.size());
  std::vector<InsertionResult>& results = eval_results_;
  // Lower-bound prune first (sequential, so the counter and the batch are
  // thread-count invariant): a pruned candidate's pickup provably misses
  // its deadline, so its DP could only return found == false — skip it and
  // keep its stops out of the priming fan.
  eval_skip_.assign(candidates.size(), 0);
  std::vector<uint8_t>& skip = eval_skip_;
  const bool ellipse = EllipseScreenEnabled();
  if (ellipse) {
    // ch_buckets path: the detour-ellipse screen subsumes the lower-bound
    // pickup prune (its P1 at slot 0 is the same test) and additionally
    // masks provably infeasible insertion slots out of the DP. Fully
    // pruned candidates are skipped outright and never registered with
    // the priming batch. Sequential, so counters and the batch are
    // thread-count invariant.
    eval_masks_.resize(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!ComputeEllipseMask(taxi(candidates[i]), request, now,
                              &eval_masks_[i])) {
        skip[i] = 1;
      }
    }
  } else if (lb_landmarks_ != nullptr) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (LowerBoundPrunesPickup(taxi(candidates[i]).location, request,
                                 now)) {
        skip[i] = 1;
      }
    }
  }
  LegCostFn cost;
  if (config_.batched_routing) {
    // Prime every leg the insertion walks can request with one-to-many
    // passes, sequentially; workers then read the immutable table.
    batch_.Begin(request.origin, request.destination);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!skip[i]) RegisterCandidateStops(taxi(candidates[i]));
    }
    batch_.Prime();
    cost = BatchedCost();
  } else {
    cost = OracleCost();
  }
  auto evaluate = [&](size_t i) {
    if (skip[i]) {
      results[i].found = false;  // slot may hold a previous request's result
      return;
    }
    const TaxiState& t = taxi(candidates[i]);
    results[i] = FindBestInsertionDp(t.schedule, request, t.location, now,
                                     t.onboard, t.capacity, cost,
                                     ellipse ? &eval_masks_[i] : nullptr);
  };
  if (pool_ != nullptr && pool_->size() > 1 && candidates.size() > 1) {
    // Each slot is written by exactly one task; the oracle behind `cost` is
    // thread-safe. Fleet state is read-only during a dispatch decision.
    pool_->ParallelFor(candidates.size(), evaluate);
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) evaluate(i);
  }
  CandidateEval best;
  Seconds best_detour = kInfiniteCost;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!results[i].found) continue;
    if (results[i].detour < best_detour) {
      best_detour = results[i].detour;
      best.taxi = candidates[i];
      best.insertion = std::move(results[i]);
    }
  }
  return best;
}

RoutePlanner::PlannedRoute Dispatcher::PlanShortestRoute(
    VertexId start, Seconds start_time, const Schedule& schedule) {
  ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kRouting);
  RoutePlanner::PlannedRoute out;
  out.path = Path::Trivial(start);
  Seconds t = start_time;
  VertexId at = start;
  for (const ScheduleEvent& event : schedule.events()) {
    Path leg = at == event.vertex ? Path::Trivial(at)
                                  : route_dijkstra_.FindPath(at, event.vertex);
    if (!leg.valid) return RoutePlanner::PlannedRoute{};
    t += leg.cost;
    if (t > event.deadline + 1e-9) return RoutePlanner::PlannedRoute{};
    out.path = ConcatPaths(out.path, leg);
    out.event_arrivals.push_back(t);
    at = event.vertex;
  }
  out.valid = true;
  return out;
}

void Dispatcher::EnableIdleCruising(const MapPartitioning* partitioning,
                                    RoutePlanner* planner) {
  MTSHARE_CHECK(partitioning != nullptr && planner != nullptr);
  cruise_partitioning_ = partitioning;
  cruise_planner_ = planner;
}

void Dispatcher::EnableIdleCruising(const MapPartitioning* partitioning,
                                    std::unique_ptr<RoutePlanner> planner) {
  owned_cruise_planner_ = std::move(planner);
  EnableIdleCruising(partitioning, owned_cruise_planner_.get());
}

RoutePlanner::PlannedRoute Dispatcher::PlanIdleCruise(TaxiId id, Seconds now) {
  if (cruise_planner_ == nullptr) return {};
  if (next_cruise_time_.size() != fleet_->size()) {
    next_cruise_time_.assign(fleet_->size(), 0.0);
  }
  if (now < next_cruise_time_[id]) return {};
  next_cruise_time_[id] = now + 60.0;  // retry at most once a minute

  const TaxiState& t = taxi(id);
  const MapPartitioning& parts = *cruise_partitioning_;
  PartitionId here = parts.PartitionOf(t.location);
  // Candidate cruise targets: nearby partitions weighted by direction-free
  // encounter mass. Sampling (not arg-max) keeps the idle fleet spread out
  // instead of herding every empty taxi into the single hottest zone.
  const Point& pos = network_.coord(t.location);
  std::vector<PartitionId> nearby;
  std::vector<double> weights;
  for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
    if (p == here) continue;
    if (Distance(pos, parts.centroids[p]) > config_.gamma_max_m) continue;
    double mass = cruise_planner_->PartitionEncounterMass(p, Point{0, 0});
    if (mass <= 0.0) continue;
    nearby.push_back(p);
    weights.push_back(mass);
  }
  if (nearby.empty()) return {};
  PartitionId target_partition = nearby[cruise_rng_.NextDiscrete(weights)];

  VertexId target = parts.landmarks[target_partition];
  if (target == t.location) return {};
  Seconds shortest = oracle_->Cost(t.location, target);
  if (shortest == kInfiniteCost) return {};
  Path leg = cruise_planner_->PlanProbabilisticLeg(
      t.location, target, Point{0, 0}, shortest * 1.5 + 60.0);
  if (!leg.valid) leg = cruise_planner_->PlanBasicLeg(t.location, target);
  if (!leg.valid) return {};
  RoutePlanner::PlannedRoute route;
  route.valid = true;
  route.path = std::move(leg);
  return route;
}

DispatchOutcome Dispatcher::TryServeEncountered(const RideRequest& request,
                                                TaxiId taxi_id, Seconds now) {
  DispatchOutcome outcome;
  SyncTaxiState(taxi_id, now);
  const TaxiState& t = taxi(taxi_id);
  if (t.FreeSeats() < request.passengers) return outcome;
  // The taxi is physically at the request's origin: insert and re-plan.
  InsertionResult ins;
  {
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kInsertion);
    ins = FindBestInsertionDp(t.schedule, request, t.location, now, t.onboard,
                              t.capacity, OracleCost());
  }
  if (!ins.found) return outcome;
  RoutePlanner::PlannedRoute route =
      PlanShortestRoute(t.location, now, ins.schedule);
  if (!route.valid) return outcome;
  outcome.assigned = true;
  outcome.taxi = taxi_id;
  outcome.detour = ins.detour;
  outcome.candidates = 1;
  outcome.schedule = std::move(ins.schedule);
  outcome.route = std::move(route);
  return outcome;
}

}  // namespace mtshare
