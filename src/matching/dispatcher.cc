#include "matching/dispatcher.h"

#include "common/logging.h"

namespace mtshare {

Dispatcher::Dispatcher(const RoadNetwork& network, DistanceOracle* oracle,
                       std::vector<TaxiState>* fleet,
                       const MatchingConfig& config)
    : network_(network),
      oracle_(oracle),
      fleet_(fleet),
      config_(config),
      route_dijkstra_(network),
      batch_(network, oracle) {
  MTSHARE_CHECK(oracle != nullptr);
  MTSHARE_CHECK(fleet != nullptr);
}

LegCostFn Dispatcher::OracleCost() {
  return [this](VertexId a, VertexId b) { return oracle_->Cost(a, b); };
}

LegCostFn Dispatcher::BatchedCost() {
  return [this](VertexId a, VertexId b) { return batch_.Cost(a, b); };
}

void Dispatcher::RegisterCandidateStops(const TaxiState& t) {
  batch_walk_buf_.clear();
  batch_walk_buf_.push_back(t.location);
  for (const ScheduleEvent& e : t.schedule.events()) {
    batch_walk_buf_.push_back(e.vertex);
  }
  batch_.AddCandidate(batch_walk_buf_);
}

bool Dispatcher::LowerBoundPrunesPickup(VertexId taxi_location,
                                        const RideRequest& r, Seconds now) {
  if (lb_landmarks_ == nullptr) return false;
  Seconds lb = lb_landmarks_->LowerBound(taxi_location, r.origin);
  if (now + lb > r.PickupDeadline() + kLbSlack) {
    ++lb_pruned_;
    return true;
  }
  return false;
}

void Dispatcher::DispatchBatch(
    const std::vector<const RideRequest*>& batch, Seconds now,
    const std::function<void(const RideRequest&)>& dispatch_one) {
  (void)now;  // the engine already advanced the fleet to the window close
  for (const RideRequest* request : batch) {
    dispatch_one(*request);
  }
}

Dispatcher::CandidateEval Dispatcher::EvaluateCandidates(
    const std::vector<TaxiId>& candidates, const RideRequest& request,
    Seconds now) {
  ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kInsertion);
  // Materialize every candidate before any state is read — sequentially,
  // ahead of the pool fan-out, so lazy advancement never runs on a worker.
  for (TaxiId id : candidates) SyncTaxiState(id, now);
  // Reused per-call scratch: slots are overwritten by evaluate() (or their
  // `found` flag cleared on the skip path), so stale entries from the
  // previous request can never leak into the reduction.
  eval_results_.resize(candidates.size());
  std::vector<InsertionResult>& results = eval_results_;
  // Lower-bound prune first (sequential, so the counter and the batch are
  // thread-count invariant): a pruned candidate's pickup provably misses
  // its deadline, so its DP could only return found == false — skip it and
  // keep its stops out of the priming fan.
  eval_skip_.assign(candidates.size(), 0);
  std::vector<uint8_t>& skip = eval_skip_;
  if (lb_landmarks_ != nullptr) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (LowerBoundPrunesPickup(taxi(candidates[i]).location, request,
                                 now)) {
        skip[i] = 1;
      }
    }
  }
  LegCostFn cost;
  if (config_.batched_routing) {
    // Prime every leg the insertion walks can request with one-to-many
    // passes, sequentially; workers then read the immutable table.
    batch_.Begin(request.origin, request.destination);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!skip[i]) RegisterCandidateStops(taxi(candidates[i]));
    }
    batch_.Prime();
    cost = BatchedCost();
  } else {
    cost = OracleCost();
  }
  auto evaluate = [&](size_t i) {
    if (skip[i]) {
      results[i].found = false;  // slot may hold a previous request's result
      return;
    }
    const TaxiState& t = taxi(candidates[i]);
    results[i] = FindBestInsertionDp(t.schedule, request, t.location, now,
                                     t.onboard, t.capacity, cost);
  };
  if (pool_ != nullptr && pool_->size() > 1 && candidates.size() > 1) {
    // Each slot is written by exactly one task; the oracle behind `cost` is
    // thread-safe. Fleet state is read-only during a dispatch decision.
    pool_->ParallelFor(candidates.size(), evaluate);
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) evaluate(i);
  }
  CandidateEval best;
  Seconds best_detour = kInfiniteCost;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!results[i].found) continue;
    if (results[i].detour < best_detour) {
      best_detour = results[i].detour;
      best.taxi = candidates[i];
      best.insertion = std::move(results[i]);
    }
  }
  return best;
}

RoutePlanner::PlannedRoute Dispatcher::PlanShortestRoute(
    VertexId start, Seconds start_time, const Schedule& schedule) {
  ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kRouting);
  RoutePlanner::PlannedRoute out;
  out.path = Path::Trivial(start);
  Seconds t = start_time;
  VertexId at = start;
  for (const ScheduleEvent& event : schedule.events()) {
    Path leg = at == event.vertex ? Path::Trivial(at)
                                  : route_dijkstra_.FindPath(at, event.vertex);
    if (!leg.valid) return RoutePlanner::PlannedRoute{};
    t += leg.cost;
    if (t > event.deadline + 1e-9) return RoutePlanner::PlannedRoute{};
    out.path = ConcatPaths(out.path, leg);
    out.event_arrivals.push_back(t);
    at = event.vertex;
  }
  out.valid = true;
  return out;
}

void Dispatcher::EnableIdleCruising(const MapPartitioning* partitioning,
                                    RoutePlanner* planner) {
  MTSHARE_CHECK(partitioning != nullptr && planner != nullptr);
  cruise_partitioning_ = partitioning;
  cruise_planner_ = planner;
}

void Dispatcher::EnableIdleCruising(const MapPartitioning* partitioning,
                                    std::unique_ptr<RoutePlanner> planner) {
  owned_cruise_planner_ = std::move(planner);
  EnableIdleCruising(partitioning, owned_cruise_planner_.get());
}

RoutePlanner::PlannedRoute Dispatcher::PlanIdleCruise(TaxiId id, Seconds now) {
  if (cruise_planner_ == nullptr) return {};
  if (next_cruise_time_.size() != fleet_->size()) {
    next_cruise_time_.assign(fleet_->size(), 0.0);
  }
  if (now < next_cruise_time_[id]) return {};
  next_cruise_time_[id] = now + 60.0;  // retry at most once a minute

  const TaxiState& t = taxi(id);
  const MapPartitioning& parts = *cruise_partitioning_;
  PartitionId here = parts.PartitionOf(t.location);
  // Candidate cruise targets: nearby partitions weighted by direction-free
  // encounter mass. Sampling (not arg-max) keeps the idle fleet spread out
  // instead of herding every empty taxi into the single hottest zone.
  const Point& pos = network_.coord(t.location);
  std::vector<PartitionId> nearby;
  std::vector<double> weights;
  for (PartitionId p = 0; p < parts.num_partitions(); ++p) {
    if (p == here) continue;
    if (Distance(pos, parts.centroids[p]) > config_.gamma_max_m) continue;
    double mass = cruise_planner_->PartitionEncounterMass(p, Point{0, 0});
    if (mass <= 0.0) continue;
    nearby.push_back(p);
    weights.push_back(mass);
  }
  if (nearby.empty()) return {};
  PartitionId target_partition = nearby[cruise_rng_.NextDiscrete(weights)];

  VertexId target = parts.landmarks[target_partition];
  if (target == t.location) return {};
  Seconds shortest = oracle_->Cost(t.location, target);
  if (shortest == kInfiniteCost) return {};
  Path leg = cruise_planner_->PlanProbabilisticLeg(
      t.location, target, Point{0, 0}, shortest * 1.5 + 60.0);
  if (!leg.valid) leg = cruise_planner_->PlanBasicLeg(t.location, target);
  if (!leg.valid) return {};
  RoutePlanner::PlannedRoute route;
  route.valid = true;
  route.path = std::move(leg);
  return route;
}

DispatchOutcome Dispatcher::TryServeEncountered(const RideRequest& request,
                                                TaxiId taxi_id, Seconds now) {
  DispatchOutcome outcome;
  SyncTaxiState(taxi_id, now);
  const TaxiState& t = taxi(taxi_id);
  if (t.FreeSeats() < request.passengers) return outcome;
  // The taxi is physically at the request's origin: insert and re-plan.
  InsertionResult ins;
  {
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kInsertion);
    ins = FindBestInsertionDp(t.schedule, request, t.location, now, t.onboard,
                              t.capacity, OracleCost());
  }
  if (!ins.found) return outcome;
  RoutePlanner::PlannedRoute route =
      PlanShortestRoute(t.location, now, ins.schedule);
  if (!route.valid) return outcome;
  outcome.assigned = true;
  outcome.taxi = taxi_id;
  outcome.detour = ins.detour;
  outcome.candidates = 1;
  outcome.schedule = std::move(ins.schedule);
  outcome.route = std::move(route);
  return outcome;
}

}  // namespace mtshare
