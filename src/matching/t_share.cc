#include "matching/t_share.h"

#include <algorithm>

namespace mtshare {

TShareDispatcher::TShareDispatcher(const RoadNetwork& network,
                                   DistanceOracle* oracle,
                                   std::vector<TaxiState>* fleet,
                                   const MatchingConfig& config)
    : Dispatcher(network, oracle, fleet, config),
      index_(network.bounds(), config.grid_cell_m) {
  for (const TaxiState& t : *fleet_) {
    index_.Update(t.id, network_.coord(t.location));
  }
}

void TShareDispatcher::OnTaxiMoved(TaxiId id) {
  index_.Update(id, network_.coord(taxi(id).location));
}

void TShareDispatcher::OnScheduleCommitted(TaxiId id) {
  index_.Update(id, network_.coord(taxi(id).location));
}

DispatchOutcome TShareDispatcher::Dispatch(const RideRequest& request,
                                           Seconds now) {
  DispatchOutcome outcome;
  const Point& origin = network_.coord(request.origin);
  const Point& dest = network_.coord(request.destination);
  const double gamma = config_.gamma_max_m;

  // Origin side: taxis currently within gamma of the pickup.
  std::vector<int32_t> origin_side;
  {
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kCandidateSearch);
    origin_side = index_.ObjectsInRadius(origin, gamma);
  }
  // Destination side: taxis farther from the dropoff than the trip length
  // (or gamma, whichever is larger) are discarded — the dual-side
  // intersection that "mistakenly removes many possible taxis" (paper
  // Sec. III-B / Tong et al. [42]): a taxi on the far side of the
  // destination is dropped even when its schedule would serve the trip.
  const double dest_bound = std::max(Distance(origin, dest), gamma);
  std::vector<int32_t> candidates;
  {
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kFilter);
    for (int32_t id : origin_side) {
      const TaxiState& t = taxi(id);
      if (Distance(network_.coord(t.location), dest) > dest_bound) continue;
      if (t.FreeSeats() < request.passengers) continue;
      candidates.push_back(id);
    }
    // Nearest-to-origin first; T-Share returns the FIRST valid taxi.
    std::sort(candidates.begin(), candidates.end(),
              [&](int32_t a, int32_t b) {
                return DistanceSquared(network_.coord(taxi(a).location),
                                       origin) <
                       DistanceSquared(network_.coord(taxi(b).location),
                                       origin);
              });
  }

  // T-Share's signature is first-valid (not arg-min), with route planning
  // inside the loop: the scan usually stops after one or two candidates, so
  // unlike the arg-min schemes there is no evaluation fan-out to
  // parallelize — speculatively scoring the whole candidate list would do
  // strictly more work than the sequential early exit it replaces. Batched
  // routing therefore primes incrementally, one candidate per Prime(), so
  // the early exit keeps its win.
  if (config_.batched_routing) {
    batch_.Begin(request.origin, request.destination);
  }
  // ch_buckets path: one backward CH sweep replaces the per-candidate
  // reachability probes, and the detour-ellipse screen skips candidates
  // (and their per-candidate Prime passes) whose every insertion slot is
  // provably infeasible. The first-valid scan order is unchanged.
  const bool buckets = ChBucketSearchEnabled();
  if (buckets) {
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kCandidateSearch);
    BucketSweep(request.origin, request.PickupDeadline() - now);
  }
  for (int32_t id : candidates) {
    const TaxiState& t = taxi(id);
    ++outcome.candidates;
    {
      ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kFilter);
      if (buckets) {
        if (now + BucketDistance(id) > request.PickupDeadline()) continue;
      } else {
        // Admissible lower bound first: prunes without touching the oracle
        // and can never disagree with the exact check below.
        if (LowerBoundPrunesPickup(t.location, request, now)) continue;
        Seconds approach = oracle_->Cost(t.location, request.origin);
        if (now + approach > request.PickupDeadline()) continue;
      }
    }
    InsertionResult ins;
    {
      ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kInsertion);
      const InsertionSlotMask* mask = nullptr;
      if (EllipseScreenEnabled()) {
        // A fully pruned candidate's DP could only return found == false;
        // skipping it before RegisterCandidateStops/Prime also saves its
        // two batch passes.
        if (!ComputeEllipseMask(t, request, now, &mask_buf_)) continue;
        mask = &mask_buf_;
      }
      LegCostFn cost;
      if (config_.batched_routing) {
        RegisterCandidateStops(t);
        batch_.Prime();
        cost = BatchedCost();
      } else {
        cost = OracleCost();
      }
      ins = FindBestInsertionDp(t.schedule, request, t.location, now,
                                t.onboard, t.capacity, cost, mask);
    }
    if (!ins.found) continue;
    RoutePlanner::PlannedRoute route =
        PlanShortestRoute(t.location, now, ins.schedule);
    if (!route.valid) continue;
    outcome.assigned = true;
    outcome.taxi = id;
    outcome.detour = ins.detour;
    outcome.schedule = std::move(ins.schedule);
    outcome.route = std::move(route);
    return outcome;  // first valid, not best — the scheme's signature
  }
  return outcome;
}

}  // namespace mtshare
