#ifndef MTSHARE_MATCHING_MT_SHARE_H_
#define MTSHARE_MATCHING_MT_SHARE_H_

#include <memory>

#include "matching/dispatcher.h"
#include "matching/taxi_index.h"
#include "mobility/transition_model.h"
#include "partition/landmark_graph.h"
#include "partition/map_partitioning.h"

namespace mtshare {

/// The paper's scheme (Sec. IV): mobility-aware candidate search over map
/// partitions x mobility clusters, exhaustive minimum-detour insertion
/// (Algorithm 1), and two-phase route planning with partition filtering —
/// basic shortest-path legs by default, probabilistic offline-seeking legs
/// when config.probabilistic is set and the taxi has enough idle seats
/// (the mT-Share^pro variant).
class MtShareDispatcher : public Dispatcher {
 public:
  /// `partitioning`/`landmarks`/`transitions` must outlive the dispatcher.
  /// `transitions` may be null when probabilistic routing is disabled; its
  /// group space must equal the partitioning otherwise.
  MtShareDispatcher(const RoadNetwork& network, DistanceOracle* oracle,
                    std::vector<TaxiState>* fleet,
                    const MatchingConfig& config,
                    const MapPartitioning& partitioning,
                    const LandmarkGraph& landmarks,
                    const TransitionModel* transitions);

  std::string_view name() const override {
    return config_.probabilistic ? "mT-Share-pro" : "mT-Share";
  }

  DispatchOutcome Dispatch(const RideRequest& request, Seconds now) override;

  void OnTaxiMoved(TaxiId taxi) override;
  void OnTaxiAdvanced(TaxiId taxi, size_t from_pos, size_t to_pos) override;
  void OnScheduleCommitted(TaxiId taxi) override;
  void OnRequestCompleted(const RideRequest& request, TaxiId taxi) override;

  /// The mobility clustering folds floating-point sums in update order, so
  /// index updates from different simulation boundaries must not be merged
  /// or reordered — the engine keeps this scheme on strict per-boundary
  /// advancement.
  bool IndexUpdatesOrderSensitive() const override { return true; }


  size_t IndexMemoryBytes() const override;

  /// Route planner (exposed for the routing-mode benches and tests).
  RoutePlanner& planner() { return planner_; }
  const MtShareTaxiIndex& index() const { return index_; }

 private:
  /// Candidate taxi set T_ri of paper eq. (3) plus the refinement rules.
  /// Returns a reference into `candidates_buf_`, valid until the next call
  /// (Dispatch is serialized per dispatcher instance, see DESIGN.md).
  const std::vector<TaxiId>& CandidateTaxis(const RideRequest& request,
                                            Seconds now, double gamma);

  /// Whether this taxi may drive probabilistic legs right now.
  bool ProbQualifies(const TaxiState& t) const;

  const MapPartitioning& partitioning_;
  RoutePlanner planner_;
  MtShareTaxiIndex index_;
  /// Epoch-stamped visited markers for candidate dedup and for the
  /// direction-compatible cluster membership test (O(1) reset: one epoch
  /// bump per CandidateTaxis call covers both arrays).
  std::vector<uint32_t> seen_stamp_;
  std::vector<uint32_t> cluster_stamp_;
  uint32_t seen_epoch_ = 0;
  /// Per-request scratch (cleared + refilled each call; capacity persists
  /// so steady-state candidate search performs no allocations).
  std::vector<PartitionId> area_buf_;
  std::vector<TaxiId> cluster_buf_;
  std::vector<TaxiId> candidates_buf_;
};

}  // namespace mtshare

#endif  // MTSHARE_MATCHING_MT_SHARE_H_
