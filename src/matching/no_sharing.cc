#include "matching/no_sharing.h"

namespace mtshare {

NoSharingDispatcher::NoSharingDispatcher(const RoadNetwork& network,
                                         DistanceOracle* oracle,
                                         std::vector<TaxiState>* fleet,
                                         const MatchingConfig& config)
    : Dispatcher(network, oracle, fleet, config),
      index_(network.bounds(), config.grid_cell_m) {
  for (const TaxiState& t : *fleet_) {
    if (t.Idle()) index_.Update(t.id, network_.coord(t.location));
  }
}

void NoSharingDispatcher::OnTaxiMoved(TaxiId id) {
  // Busy taxis stay out of the idle index; position refresh happens when
  // the schedule drains (OnScheduleCommitted).
  (void)id;
}

void NoSharingDispatcher::OnScheduleCommitted(TaxiId id) {
  const TaxiState& t = taxi(id);
  if (t.Idle()) {
    index_.Update(id, network_.coord(t.location));
  } else {
    index_.Remove(id);
  }
}

DispatchOutcome NoSharingDispatcher::Dispatch(const RideRequest& request,
                                              Seconds now) {
  DispatchOutcome outcome;
  const Point& origin = network_.coord(request.origin);
  std::vector<int32_t> nearby;
  {
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kCandidateSearch);
    nearby = index_.ObjectsInRadius(origin, config_.gamma_max_m);
    // Nearest idle taxi that can still reach the pickup in time.
    std::sort(nearby.begin(), nearby.end(), [&](int32_t a, int32_t b) {
      return DistanceSquared(network_.coord(taxi(a).location), origin) <
             DistanceSquared(network_.coord(taxi(b).location), origin);
    });
  }
  // ch_buckets path: one backward CH sweep answers every per-candidate
  // reachability probe below; the nearest-first scan order is unchanged.
  const bool buckets = ChBucketSearchEnabled();
  if (buckets) {
    ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kCandidateSearch);
    BucketSweep(request.origin, request.PickupDeadline() - now);
  }
  for (int32_t id : nearby) {
    const TaxiState& t = taxi(id);
    if (!t.Idle() || t.capacity < request.passengers) continue;
    ++outcome.candidates;
    {
      ScopedPhaseTimer timer(phase_timers_, DispatchPhase::kFilter);
      Seconds approach = buckets ? BucketDistance(id)
                                 : oracle_->Cost(t.location, request.origin);
      if (now + approach > request.PickupDeadline()) continue;
    }
    Schedule schedule;
    schedule.Append(ScheduleEvent{request.id, request.origin, true,
                                  request.PickupDeadline(),
                                  request.passengers});
    schedule.Append(ScheduleEvent{request.id, request.destination, false,
                                  request.deadline, request.passengers});
    RoutePlanner::PlannedRoute route =
        PlanShortestRoute(t.location, now, schedule);
    if (!route.valid) continue;
    outcome.assigned = true;
    outcome.taxi = id;
    outcome.detour = 0.0;  // exclusive ride: no shared detour
    outcome.schedule = std::move(schedule);
    outcome.route = std::move(route);
    return outcome;
  }
  return outcome;
}

}  // namespace mtshare
