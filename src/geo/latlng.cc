#include "geo/latlng.h"

#include <cmath>

namespace mtshare {
namespace {

constexpr double kEarthRadiusMeters = 6371000.0;
constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

bool operator==(const Point& a, const Point& b) {
  return a.x == b.x && a.y == b.y;
}

double HaversineMeters(const LatLng& a, const LatLng& b) {
  double lat1 = a.lat * kDegToRad;
  double lat2 = b.lat * kDegToRad;
  double dlat = (b.lat - a.lat) * kDegToRad;
  double dlng = (b.lng - a.lng) * kDegToRad;
  double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2) *
                 std::sin(dlng / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(s)));
}

Projection::Projection(const LatLng& origin)
    : origin_(origin),
      meters_per_deg_lat_(kEarthRadiusMeters * kDegToRad),
      meters_per_deg_lng_(kEarthRadiusMeters * kDegToRad *
                          std::cos(origin.lat * kDegToRad)) {}

Point Projection::Project(const LatLng& coord) const {
  return Point{(coord.lng - origin_.lng) * meters_per_deg_lng_,
               (coord.lat - origin_.lat) * meters_per_deg_lat_};
}

LatLng Projection::Unproject(const Point& point) const {
  return LatLng{origin_.lat + point.y / meters_per_deg_lat_,
                origin_.lng + point.x / meters_per_deg_lng_};
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace mtshare
