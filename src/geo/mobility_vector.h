#ifndef MTSHARE_GEO_MOBILITY_VECTOR_H_
#define MTSHARE_GEO_MOBILITY_VECTOR_H_

#include "geo/latlng.h"

namespace mtshare {

/// Mobility vector (paper Def. 9): a trip's origin and destination. The
/// paper writes it as the 4-tuple (lat_o, lng_o, lat_d, lng_d); the travel
/// *direction* it encodes is the displacement destination - origin.
struct MobilityVector {
  Point origin;
  Point destination;

  /// Displacement on the city plane (the direction the trip travels).
  Point Displacement() const {
    return Point{destination.x - origin.x, destination.y - origin.y};
  }

  double Length() const { return Distance(origin, destination); }
};

/// Cosine similarity between the travel directions of two mobility vectors,
/// i.e., between their displacement vectors. This is the measure used by
/// mobility clustering and by the partition-filter direction rule
/// (paper eq. (1) with threshold lambda).
///
/// Note: the paper's eq. (1) literally dots the raw 4-tuples, but over a
/// single city the absolute coordinates dominate that product and every pair
/// scores ~1, which cannot express "t2 travels inversely with r1" (Fig. 1).
/// The displacement-based cosine is the measure consistent with the paper's
/// semantics ("travel direction difference"); CosineSimilarityRaw4d keeps
/// the literal formula available for ablation.
double DirectionCosine(const MobilityVector& a, const MobilityVector& b);

/// The literal 4-d cosine of eq. (1); see DirectionCosine for why the
/// library does not use it internally.
double CosineSimilarityRaw4d(const MobilityVector& a, const MobilityVector& b);

/// Cosine between two planar vectors; 0.0 (incompatible) when either has
/// zero length — a degenerate trip has no direction, so it cannot *share*
/// one. Returning 1.0 here would admit origin == destination requests into
/// every mobility cluster and past every direction filter.
double DirectionCosine(const Point& u, const Point& v);

}  // namespace mtshare

#endif  // MTSHARE_GEO_MOBILITY_VECTOR_H_
