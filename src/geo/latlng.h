#ifndef MTSHARE_GEO_LATLNG_H_
#define MTSHARE_GEO_LATLNG_H_

namespace mtshare {

/// A WGS84 coordinate, degrees.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;
};

/// A point on the local city plane, meters. All internal geometry (road
/// networks, indexes, mobility vectors) uses this planar frame; real-world
/// datasets are projected once at load time.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

bool operator==(const Point& a, const Point& b);

/// Great-circle distance in meters (haversine).
double HaversineMeters(const LatLng& a, const LatLng& b);

/// Equirectangular projection centered at a reference coordinate. Accurate
/// to well under 0.1% over a metropolitan extent (tens of km), which is all
/// the ridesharing pipeline needs.
class Projection {
 public:
  explicit Projection(const LatLng& origin);

  Point Project(const LatLng& coord) const;
  LatLng Unproject(const Point& point) const;
  const LatLng& origin() const { return origin_; }

 private:
  LatLng origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lng_;
};

/// Euclidean distance on the city plane, meters.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (avoids the sqrt in hot loops).
double DistanceSquared(const Point& a, const Point& b);

}  // namespace mtshare

#endif  // MTSHARE_GEO_LATLNG_H_
