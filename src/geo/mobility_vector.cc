#include "geo/mobility_vector.h"

#include <cmath>

namespace mtshare {

double DirectionCosine(const Point& u, const Point& v) {
  double nu = std::sqrt(u.x * u.x + u.y * u.y);
  double nv = std::sqrt(v.x * v.x + v.y * v.y);
  if (nu <= 0.0 || nv <= 0.0) return 0.0;
  return (u.x * v.x + u.y * v.y) / (nu * nv);
}

double DirectionCosine(const MobilityVector& a, const MobilityVector& b) {
  return DirectionCosine(a.Displacement(), b.Displacement());
}

double CosineSimilarityRaw4d(const MobilityVector& a,
                             const MobilityVector& b) {
  double dot = a.origin.x * b.origin.x + a.origin.y * b.origin.y +
               a.destination.x * b.destination.x +
               a.destination.y * b.destination.y;
  double na = std::sqrt(a.origin.x * a.origin.x + a.origin.y * a.origin.y +
                        a.destination.x * a.destination.x +
                        a.destination.y * a.destination.y);
  double nb = std::sqrt(b.origin.x * b.origin.x + b.origin.y * b.origin.y +
                        b.destination.x * b.destination.x +
                        b.destination.y * b.destination.y);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (na * nb);
}

}  // namespace mtshare
