#include "mobility/mobility_clustering.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {

MobilityClustering::MobilityClustering(double lambda) : lambda_(lambda) {
  MTSHARE_CHECK(lambda >= -1.0 && lambda <= 1.0);
}

ClusterId MobilityClustering::AllocateCluster() {
  if (!free_list_.empty()) {
    ClusterId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  clusters_.emplace_back();
  return static_cast<ClusterId>(clusters_.size() - 1);
}

ClusterId MobilityClustering::Assign(int64_t member,
                                     const MobilityVector& vector) {
  Remove(member);
  ClusterId best = FindBestCluster(vector);
  if (best == kInvalidCluster) {
    best = AllocateCluster();
    Cluster& c = clusters_[best];
    c.origin_sum = Point{0, 0};
    c.dest_sum = Point{0, 0};
    c.members.clear();
    c.live = true;
    ++live_clusters_;
  }
  Cluster& c = clusters_[best];
  c.origin_sum.x += vector.origin.x;
  c.origin_sum.y += vector.origin.y;
  c.dest_sum.x += vector.destination.x;
  c.dest_sum.y += vector.destination.y;
  c.members.push_back(member);
  member_cluster_.emplace(member, std::make_pair(best, vector));
  return best;
}

void MobilityClustering::Remove(int64_t member) {
  auto it = member_cluster_.find(member);
  if (it == member_cluster_.end()) return;
  auto [cluster_id, vector] = it->second;
  Cluster& c = clusters_[cluster_id];
  c.origin_sum.x -= vector.origin.x;
  c.origin_sum.y -= vector.origin.y;
  c.dest_sum.x -= vector.destination.x;
  c.dest_sum.y -= vector.destination.y;
  c.members.erase(std::find(c.members.begin(), c.members.end(), member));
  member_cluster_.erase(it);
  if (c.members.empty()) {
    c.live = false;
    --live_clusters_;
    free_list_.push_back(cluster_id);
  }
}

ClusterId MobilityClustering::ClusterOf(int64_t member) const {
  auto it = member_cluster_.find(member);
  return it == member_cluster_.end() ? kInvalidCluster : it->second.first;
}

ClusterId MobilityClustering::FindBestCluster(
    const MobilityVector& probe) const {
  ClusterId best = kInvalidCluster;
  double best_cos = lambda_;
  for (size_t i = 0; i < clusters_.size(); ++i) {
    if (!clusters_[i].live) continue;
    double c = DirectionCosine(probe, clusters_[i].General());
    if (c >= best_cos) {
      best_cos = c;
      best = static_cast<ClusterId>(i);
    }
  }
  return best;
}

std::vector<ClusterId> MobilityClustering::FindCompatibleClusters(
    const MobilityVector& probe) const {
  std::vector<ClusterId> out;
  for (size_t i = 0; i < clusters_.size(); ++i) {
    if (!clusters_[i].live) continue;
    if (DirectionCosine(probe, clusters_[i].General()) >= lambda_) {
      out.push_back(static_cast<ClusterId>(i));
    }
  }
  return out;
}

MobilityVector MobilityClustering::GeneralVector(ClusterId cluster) const {
  MTSHARE_CHECK(cluster >= 0 &&
                cluster < static_cast<ClusterId>(clusters_.size()));
  MTSHARE_CHECK(clusters_[cluster].live);
  return clusters_[cluster].General();
}

const std::vector<int64_t>& MobilityClustering::Members(
    ClusterId cluster) const {
  MTSHARE_CHECK(cluster >= 0 &&
                cluster < static_cast<ClusterId>(clusters_.size()));
  return clusters_[cluster].members;
}

size_t MobilityClustering::MemoryBytes() const {
  size_t bytes = clusters_.size() * sizeof(Cluster);
  for (const Cluster& c : clusters_) bytes += c.members.size() * sizeof(int64_t);
  bytes += member_cluster_.size() *
           (sizeof(int64_t) + sizeof(std::pair<ClusterId, MobilityVector>) + 16);
  return bytes;
}

}  // namespace mtshare
