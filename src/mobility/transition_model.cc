#include "mobility/transition_model.h"

#include "common/logging.h"

namespace mtshare {

TransitionModel TransitionModel::Build(int32_t num_vertices,
                                       int32_t num_groups,
                                       const std::vector<int32_t>& vertex_group,
                                       const std::vector<OdPair>& trips,
                                       double laplace_alpha) {
  MTSHARE_CHECK(num_vertices >= 0);
  MTSHARE_CHECK(num_groups > 0);
  MTSHARE_CHECK(static_cast<int32_t>(vertex_group.size()) == num_vertices);
  MTSHARE_CHECK(laplace_alpha >= 0.0);

  TransitionModel model;
  model.num_groups_ = num_groups;
  model.rows_.assign(static_cast<size_t>(num_vertices) * num_groups, 0.0);
  model.trip_counts_.assign(num_vertices, 0);

  std::vector<double> global(num_groups, 0.0);
  for (const OdPair& trip : trips) {
    VertexId origin = trip.first;
    VertexId dest = trip.second;
    MTSHARE_CHECK(origin >= 0 && origin < num_vertices);
    MTSHARE_CHECK(dest >= 0 && dest < num_vertices);
    int32_t group = vertex_group[dest];
    MTSHARE_CHECK(group >= 0 && group < num_groups);
    model.rows_[static_cast<size_t>(origin) * num_groups + group] += 1.0;
    ++model.trip_counts_[origin];
    global[group] += 1.0;
    ++model.total_trips_;
  }

  // Normalize the global prior.
  if (model.total_trips_ > 0) {
    for (double& g : global) g /= static_cast<double>(model.total_trips_);
  } else {
    for (double& g : global) g = 1.0 / num_groups;
  }

  for (VertexId v = 0; v < num_vertices; ++v) {
    double* row = model.rows_.data() + static_cast<size_t>(v) * num_groups;
    double total = static_cast<double>(model.trip_counts_[v]) +
                   laplace_alpha * num_groups;
    if (model.trip_counts_[v] == 0 && laplace_alpha == 0.0) {
      // No data: fall back to the city-wide destination distribution.
      for (int32_t g = 0; g < num_groups; ++g) row[g] = global[g];
      continue;
    }
    for (int32_t g = 0; g < num_groups; ++g) {
      row[g] = (row[g] + laplace_alpha) / total;
    }
  }
  return model;
}

double TransitionModel::MassTowards(VertexId v,
                                    const std::vector<int32_t>& groups) const {
  const double* row = Row(v);
  double acc = 0.0;
  for (int32_t g : groups) {
    MTSHARE_CHECK(g >= 0 && g < num_groups_);
    acc += row[g];
  }
  return acc;
}

}  // namespace mtshare
