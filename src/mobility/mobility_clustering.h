#ifndef MTSHARE_MOBILITY_MOBILITY_CLUSTERING_H_
#define MTSHARE_MOBILITY_MOBILITY_CLUSTERING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "geo/mobility_vector.h"

namespace mtshare {

/// Incremental direction clustering of ride requests and busy taxis (paper
/// Sec. IV-B2). Members are opaque 64-bit keys (the matching layer encodes
/// taxi vs request ids). Each cluster keeps a *general mobility vector*
/// whose origin/destination are the means of the member origins/
/// destinations; a new member joins the best cluster whose general vector's
/// travel direction is within cos(theta) >= lambda, else founds a cluster.
///
/// Clusters that drain to zero members are recycled via a free list, so
/// long simulations do not leak cluster slots.
class MobilityClustering {
 public:
  /// lambda: cosine threshold (paper default 0.707 == 45 degrees).
  explicit MobilityClustering(double lambda);

  /// Adds (or re-adds) a member; returns its cluster. If the member already
  /// exists it is reassigned (remove + add).
  ClusterId Assign(int64_t member, const MobilityVector& vector);

  /// Removes a member (no-op if absent).
  void Remove(int64_t member);

  /// Cluster currently holding the member, kInvalidCluster if absent.
  ClusterId ClusterOf(int64_t member) const;

  /// Best direction-compatible cluster for a probe vector without inserting
  /// (candidate search uses this to locate C_a for a new request);
  /// kInvalidCluster if none passes lambda.
  ClusterId FindBestCluster(const MobilityVector& probe) const;

  /// All clusters whose general vector passes lambda against the probe.
  std::vector<ClusterId> FindCompatibleClusters(
      const MobilityVector& probe) const;

  /// General mobility vector of a live cluster.
  MobilityVector GeneralVector(ClusterId cluster) const;

  const std::vector<int64_t>& Members(ClusterId cluster) const;

  int32_t num_live_clusters() const { return live_clusters_; }
  int32_t num_members() const {
    return static_cast<int32_t>(member_cluster_.size());
  }
  double lambda() const { return lambda_; }

  size_t MemoryBytes() const;

 private:
  struct Cluster {
    Point origin_sum{0, 0};
    Point dest_sum{0, 0};
    std::vector<int64_t> members;
    bool live = false;

    MobilityVector General() const {
      double n = static_cast<double>(members.size());
      return MobilityVector{Point{origin_sum.x / n, origin_sum.y / n},
                            Point{dest_sum.x / n, dest_sum.y / n}};
    }
  };

  ClusterId AllocateCluster();

  double lambda_;
  std::vector<Cluster> clusters_;
  std::vector<ClusterId> free_list_;
  int32_t live_clusters_ = 0;
  std::unordered_map<int64_t, std::pair<ClusterId, MobilityVector>>
      member_cluster_;
};

}  // namespace mtshare

#endif  // MTSHARE_MOBILITY_MOBILITY_CLUSTERING_H_
