#ifndef MTSHARE_MOBILITY_TRANSITION_MODEL_H_
#define MTSHARE_MOBILITY_TRANSITION_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"

namespace mtshare {

/// Per-vertex transition-probability vectors (paper Sec. IV-B1 step 1):
/// B[i][j] is the empirical probability that a historical trip starting at
/// vertex i ended inside vertex group j (groups are spatial clusters during
/// bipartite partitioning, and final map partitions afterwards).
///
/// The same statistics double as the offline-request predictor: probabilistic
/// routing (Algorithm 4 step 1) sums them over direction-compatible
/// destination groups.
class TransitionModel {
 public:
  /// Builds from historical trips.
  ///  - vertex_group: group id per vertex, values in [0, num_groups)
  ///  - laplace_alpha: additive smoothing; 0 keeps raw frequencies.
  /// Vertices with no observed trips get the *global* destination-group
  /// distribution (the best prior available).
  static TransitionModel Build(int32_t num_vertices, int32_t num_groups,
                               const std::vector<int32_t>& vertex_group,
                               const std::vector<OdPair>& trips,
                               double laplace_alpha = 0.0);

  int32_t num_vertices() const {
    return static_cast<int32_t>(trip_counts_.size());
  }
  int32_t num_groups() const { return num_groups_; }

  /// Row of transition probabilities for vertex v (size num_groups,
  /// sums to ~1).
  const double* Row(VertexId v) const {
    return rows_.data() + static_cast<size_t>(v) * num_groups_;
  }

  double Probability(VertexId v, int32_t group) const {
    return Row(v)[group];
  }

  /// Number of historical trips observed departing from v.
  int64_t TripCount(VertexId v) const { return trip_counts_[v]; }
  int64_t total_trips() const { return total_trips_; }

  /// Probability mass flowing from v into any group of `groups`.
  double MassTowards(VertexId v, const std::vector<int32_t>& groups) const;

  size_t MemoryBytes() const {
    return rows_.size() * sizeof(double) + trip_counts_.size() * sizeof(int64_t);
  }

 private:
  int32_t num_groups_ = 0;
  std::vector<double> rows_;  // row-major num_vertices x num_groups
  std::vector<int64_t> trip_counts_;
  int64_t total_trips_ = 0;
};

}  // namespace mtshare

#endif  // MTSHARE_MOBILITY_TRANSITION_MODEL_H_
