#include "traffic/congestion.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace mtshare {

CongestionProfile::CongestionProfile() { hourly_.fill(1.0); }

CongestionProfile::CongestionProfile(const std::array<double, 24>& hourly)
    : hourly_(hourly) {
  for (double m : hourly_) MTSHARE_CHECK(m >= 1.0);
}

CongestionProfile CongestionProfile::Workday(double amplitude) {
  MTSHARE_CHECK(amplitude >= 0.0);
  std::array<double, 24> hourly;
  hourly.fill(1.0);
  // Shoulders and peaks of the two rush windows.
  const double peak = 0.8 * amplitude;      // up to +80%
  const double shoulder = 0.35 * amplitude;  // up to +35%
  hourly[7] = 1.0 + shoulder;
  hourly[8] = 1.0 + peak;
  hourly[9] = 1.0 + shoulder;
  hourly[12] = 1.0 + 0.15 * amplitude;
  hourly[17] = 1.0 + shoulder;
  hourly[18] = 1.0 + peak;
  hourly[19] = 1.0 + shoulder;
  return CongestionProfile(hourly);
}

double CongestionProfile::Multiplier(Seconds time) const {
  double day = std::fmod(time, 86400.0);
  if (day < 0) day += 86400.0;
  // Anchor multipliers at hour midpoints; interpolate linearly between.
  double h = day / 3600.0 - 0.5;
  if (h < 0) h += 24.0;
  int lo = static_cast<int>(h) % 24;
  int hi = (lo + 1) % 24;
  double frac = h - std::floor(h);
  return hourly_[lo] * (1.0 - frac) + hourly_[hi] * frac;
}

bool CongestionProfile::IsFlat() const {
  return std::all_of(hourly_.begin(), hourly_.end(),
                     [](double m) { return m == 1.0; });
}

TimeDependentDijkstra::TimeDependentDijkstra(const RoadNetwork& network,
                                             const CongestionProfile& profile)
    : network_(network),
      profile_(profile),
      arrival_(network.num_vertices(), 0.0),
      parent_(network.num_vertices(), kInvalidVertex),
      epoch_(network.num_vertices(), 0) {}

bool TimeDependentDijkstra::Run(VertexId source, VertexId target,
                                Seconds departure_time) {
  MTSHARE_CHECK(source >= 0 && source < network_.num_vertices());
  MTSHARE_CHECK(target >= 0 && target < network_.num_vertices());
  ++current_epoch_;
  if (current_epoch_ == 0) {
    std::fill(epoch_.begin(), epoch_.end(), 0);
    current_epoch_ = 1;
  }
  struct Entry {
    Seconds arrival;
    VertexId vertex;
    bool operator>(const Entry& other) const {
      return arrival > other.arrival;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  arrival_[source] = departure_time;
  parent_[source] = kInvalidVertex;
  epoch_[source] = current_epoch_;
  queue.push(Entry{departure_time, source});

  while (!queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (epoch_[top.vertex] != current_epoch_ ||
        top.arrival > arrival_[top.vertex]) {
      continue;
    }
    if (top.vertex == target) return true;
    for (const Arc& arc : network_.OutArcs(top.vertex)) {
      // FIFO: evaluate the multiplier at departure from the tail.
      Seconds t = top.arrival + arc.cost * profile_.Multiplier(top.arrival);
      VertexId next = arc.head;
      if (epoch_[next] != current_epoch_ || t < arrival_[next]) {
        epoch_[next] = current_epoch_;
        arrival_[next] = t;
        parent_[next] = top.vertex;
        queue.push(Entry{t, next});
      }
    }
  }
  return target == kInvalidVertex;
}

Seconds TimeDependentDijkstra::EarliestArrival(VertexId source,
                                               VertexId target,
                                               Seconds departure_time) {
  if (source == target) return departure_time;
  if (!Run(source, target, departure_time)) return kInfiniteCost;
  return arrival_[target];
}

Seconds TimeDependentDijkstra::Cost(VertexId source, VertexId target,
                                    Seconds departure_time) {
  Seconds arrival = EarliestArrival(source, target, departure_time);
  return arrival == kInfiniteCost ? kInfiniteCost : arrival - departure_time;
}

Path TimeDependentDijkstra::FindPath(VertexId source, VertexId target,
                                     Seconds departure_time) {
  if (source == target) return Path::Trivial(source);
  if (!Run(source, target, departure_time)) return Path::Invalid();
  Path path;
  path.cost = arrival_[target] - departure_time;
  path.valid = true;
  for (VertexId v = target; v != kInvalidVertex; v = parent_[v]) {
    path.vertices.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.vertices.begin(), path.vertices.end());
  return path;
}

Seconds TimeDependentDijkstra::RetimePath(const std::vector<VertexId>& path,
                                          Seconds departure_time) const {
  Seconds t = departure_time;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Arc* best = nullptr;
    for (const Arc& arc : network_.OutArcs(path[i])) {
      if (arc.head == path[i + 1] &&
          (best == nullptr || arc.cost < best->cost)) {
        best = &arc;
      }
    }
    MTSHARE_CHECK(best != nullptr);
    t += best->cost * profile_.Multiplier(t);
  }
  return t;
}

}  // namespace mtshare
