#ifndef MTSHARE_TRAFFIC_CONGESTION_H_
#define MTSHARE_TRAFFIC_CONGESTION_H_

#include <array>
#include <vector>

#include "graph/road_network.h"
#include "routing/path.h"

namespace mtshare {

/// Diurnal congestion: a piecewise-linear multiplier on free-flow travel
/// times, anchored at each hour's midpoint. The paper assumes stable
/// traffic (Sec. III-A) but states the system "could easily extend to run
/// with real-time traffic conditions"; this module is that extension point.
///
/// Linear interpolation keeps the cost function continuous, and city-scale
/// hourly deltas keep it FIFO (a later departure never arrives earlier),
/// which time-dependent Dijkstra requires for correctness.
class CongestionProfile {
 public:
  /// Flat profile (multiplier 1.0 all day) — equivalent to static costs.
  CongestionProfile();

  /// Custom 24-hour multipliers (index = hour). All must be >= 1.0.
  explicit CongestionProfile(const std::array<double, 24>& hourly);

  /// A typical workday city profile: morning (7-9) and evening (17-19)
  /// rush slowdowns scaled by `amplitude` (0 = free flow, 1 = up to +80%).
  static CongestionProfile Workday(double amplitude);

  /// Multiplier at an absolute time (seconds since midnight, wraps daily).
  double Multiplier(Seconds time) const;

  /// True when every multiplier is 1.0.
  bool IsFlat() const;

 private:
  std::array<double, 24> hourly_;
};

/// Earliest-arrival search under time-dependent edge costs
/// cost(u→v, t) = freeflow(u→v) * profile.Multiplier(t).
/// FIFO networks make label-setting Dijkstra exact.
///
/// Not thread-safe; create one per thread.
class TimeDependentDijkstra {
 public:
  TimeDependentDijkstra(const RoadNetwork& network,
                        const CongestionProfile& profile);

  /// Earliest arrival time at target when departing source at
  /// `departure_time`; kInfiniteCost if unreachable.
  Seconds EarliestArrival(VertexId source, VertexId target,
                          Seconds departure_time);

  /// Travel duration (arrival - departure).
  Seconds Cost(VertexId source, VertexId target, Seconds departure_time);

  /// Full path of the earliest-arrival route.
  Path FindPath(VertexId source, VertexId target, Seconds departure_time);

  /// Re-times an existing vertex path under congestion: the arrival time
  /// at the last vertex when departing at departure_time. Used to audit
  /// how statically planned routes degrade under traffic.
  Seconds RetimePath(const std::vector<VertexId>& path,
                     Seconds departure_time) const;

 private:
  bool Run(VertexId source, VertexId target, Seconds departure_time);

  const RoadNetwork& network_;
  const CongestionProfile& profile_;
  std::vector<Seconds> arrival_;
  std::vector<VertexId> parent_;
  std::vector<uint32_t> epoch_;
  uint32_t current_epoch_ = 0;
};

}  // namespace mtshare

#endif  // MTSHARE_TRAFFIC_CONGESTION_H_
