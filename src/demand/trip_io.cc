#include "demand/trip_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mtshare {

namespace {

/// Shortest decimal form that parses back to the exact same double (%.17g
/// is always sufficient for a binary64 round-trip).
std::string ExactDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Result<TripCsvResult> LoadTripCsv(const std::string& path,
                                  const RoadNetwork& network,
                                  const GridIndex& snap,
                                  const TripCsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  Projection projection(options.projection_origin);

  TripCsvResult result;
  std::string line;
  int line_no = 0;
  Seconds min_release = kInfiniteCost;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = Trim(line);
    if (text.empty() || text[0] == '#') continue;
    std::vector<std::string> fields = Split(text, ',');
    auto malformed = [&](const char* why) {
      std::ostringstream os;
      os << path << ":" << line_no << ": " << why;
      return Status::InvalidArgument(os.str());
    };
    if (fields.size() != 7) {
      return malformed("expected 7 fields: txn,taxi,ts,plng,plat,dlng,dlat");
    }
    double ts = 0.0;
    double plng = 0.0;
    double plat = 0.0;
    double dlng = 0.0;
    double dlat = 0.0;
    if (!ParseDouble(fields[2], &ts) || !ParseDouble(fields[3], &plng) ||
        !ParseDouble(fields[4], &plat) || !ParseDouble(fields[5], &dlng) ||
        !ParseDouble(fields[6], &dlat)) {
      return malformed("bad numeric field");
    }
    ++result.parsed_lines;

    Point pickup = projection.Project(LatLng{plat, plng});
    Point dropoff = projection.Project(LatLng{dlat, dlng});
    VertexId origin = snap.NearestVertex(pickup);
    VertexId dest = snap.NearestVertex(dropoff);
    if (origin == kInvalidVertex || dest == kInvalidVertex) {
      ++result.dropped_snap;
      continue;
    }
    if (options.max_snap_distance_m > 0 &&
        (Distance(network.coord(origin), pickup) >
             options.max_snap_distance_m ||
         Distance(network.coord(dest), dropoff) >
             options.max_snap_distance_m)) {
      ++result.dropped_snap;
      continue;
    }
    if (origin == dest) {
      ++result.dropped_degenerate;
      continue;
    }
    result.trips.push_back(Trip{ts, origin, dest});
    min_release = std::min(min_release, ts);
  }

  if (options.rebase_to >= 0.0 && !result.trips.empty()) {
    for (Trip& t : result.trips) {
      t.release_time = t.release_time - min_release + options.rebase_to;
    }
  }
  std::sort(result.trips.begin(), result.trips.end(),
            [](const Trip& a, const Trip& b) {
              return a.release_time < b.release_time;
            });
  return result;
}

Status SaveTripCsv(const std::string& path, const std::vector<Trip>& trips,
                   const RoadNetwork& network, const TripCsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  Projection projection(options.projection_origin);
  out << "# txn,taxi,release_ts,pickup_lng,pickup_lat,dropoff_lng,"
         "dropoff_lat\n";
  out.precision(10);
  int64_t txn = 0;
  for (const Trip& t : trips) {
    LatLng p = projection.Unproject(network.coord(t.origin));
    LatLng d = projection.Unproject(network.coord(t.destination));
    out << txn << "," << (txn % 997) << "," << t.release_time << "," << p.lng
        << "," << p.lat << "," << d.lng << "," << d.lat << "\n";
    ++txn;
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

std::string FormatRequestCsv(const RideRequest& r) {
  std::string line;
  line += std::to_string(r.id);
  line += ',';
  line += ExactDouble(r.release_time);
  line += ',';
  line += std::to_string(r.origin);
  line += ',';
  line += std::to_string(r.destination);
  line += ',';
  line += ExactDouble(r.deadline);
  line += ',';
  line += ExactDouble(r.direct_cost);
  line += ',';
  line += std::to_string(r.passengers);
  line += ',';
  line += r.offline ? '1' : '0';
  return line;
}

std::string FormatRequestJson(const RideRequest& r) {
  std::string line = "{\"id\":";
  line += std::to_string(r.id);
  line += ",\"release_time\":";
  line += ExactDouble(r.release_time);
  line += ",\"origin\":";
  line += std::to_string(r.origin);
  line += ",\"destination\":";
  line += std::to_string(r.destination);
  line += ",\"deadline\":";
  line += ExactDouble(r.deadline);
  line += ",\"direct_cost\":";
  line += ExactDouble(r.direct_cost);
  line += ",\"passengers\":";
  line += std::to_string(r.passengers);
  line += ",\"offline\":";
  line += r.offline ? "true" : "false";
  line += '}';
  return line;
}

namespace {

Result<RideRequest> ParseRequestJsonLine(std::string_view text) {
  auto malformed = [](const std::string& why) {
    return Status::InvalidArgument("bad JSON request: " + why);
  };
  // A flat object of numeric/bool fields — commas and colons never appear
  // inside values, so a field split needs no real JSON tokenizer.
  if (text.size() < 2 || text.front() != '{' || text.back() != '}') {
    return malformed("expected one flat {...} object");
  }
  RideRequest r;
  r.id = kInvalidRequest;
  r.deadline = -1.0;
  r.direct_cost = -1.0;
  bool has_release = false;
  bool has_origin = false;
  bool has_destination = false;
  std::string_view inner = Trim(text.substr(1, text.size() - 2));
  if (inner.empty()) return malformed("empty object");
  for (const std::string& field : Split(inner, ',')) {
    size_t colon = field.find(':');
    if (colon == std::string::npos) return malformed("field without ':'");
    std::string_view key = Trim(std::string_view(field).substr(0, colon));
    std::string_view value = Trim(std::string_view(field).substr(colon + 1));
    if (key.size() < 2 || key.front() != '"' || key.back() != '"') {
      return malformed("unquoted key");
    }
    key = key.substr(1, key.size() - 2);
    double num = 0.0;
    int64_t integer = 0;
    if (key == "release_time") {
      if (!ParseDouble(value, &num)) return malformed("bad release_time");
      r.release_time = num;
      has_release = true;
    } else if (key == "deadline") {
      if (!ParseDouble(value, &num)) return malformed("bad deadline");
      r.deadline = num;
    } else if (key == "direct_cost") {
      if (!ParseDouble(value, &num)) return malformed("bad direct_cost");
      r.direct_cost = num;
    } else if (key == "id") {
      if (!ParseInt64(value, &integer)) return malformed("bad id");
      r.id = integer;
    } else if (key == "origin") {
      if (!ParseInt64(value, &integer)) return malformed("bad origin");
      r.origin = static_cast<VertexId>(integer);
      has_origin = true;
    } else if (key == "destination") {
      if (!ParseInt64(value, &integer)) return malformed("bad destination");
      r.destination = static_cast<VertexId>(integer);
      has_destination = true;
    } else if (key == "passengers") {
      if (!ParseInt64(value, &integer)) return malformed("bad passengers");
      r.passengers = static_cast<int32_t>(integer);
    } else if (key == "offline") {
      if (value == "true") {
        r.offline = true;
      } else if (value == "false") {
        r.offline = false;
      } else if (ParseInt64(value, &integer)) {
        r.offline = integer != 0;
      } else {
        return malformed("bad offline");
      }
    } else {
      return malformed("unknown key '" + std::string(key) + "'");
    }
  }
  if (!has_release || !has_origin || !has_destination) {
    return malformed("release_time, origin, and destination are required");
  }
  return r;
}

Result<RideRequest> ParseRequestCsvLine(std::string_view text) {
  auto malformed = [](const char* why) {
    return Status::InvalidArgument(std::string("bad CSV request: ") + why);
  };
  std::vector<std::string> fields = Split(text, ',');
  if (fields.size() != 8) {
    return malformed(
        "expected 8 fields: id,release,origin,destination,deadline,"
        "direct_cost,passengers,offline");
  }
  RideRequest r;
  int64_t id = 0;
  int64_t origin = 0;
  int64_t destination = 0;
  int64_t passengers = 0;
  int64_t offline = 0;
  if (!ParseInt64(Trim(fields[0]), &id) ||
      !ParseDouble(Trim(fields[1]), &r.release_time) ||
      !ParseInt64(Trim(fields[2]), &origin) ||
      !ParseInt64(Trim(fields[3]), &destination) ||
      !ParseDouble(Trim(fields[4]), &r.deadline) ||
      !ParseDouble(Trim(fields[5]), &r.direct_cost) ||
      !ParseInt64(Trim(fields[6]), &passengers) ||
      !ParseInt64(Trim(fields[7]), &offline)) {
    return malformed("bad numeric field");
  }
  r.id = id;
  r.origin = static_cast<VertexId>(origin);
  r.destination = static_cast<VertexId>(destination);
  r.passengers = static_cast<int32_t>(passengers);
  r.offline = offline != 0;
  return r;
}

}  // namespace

Result<RideRequest> ParseRequestLine(std::string_view line) {
  std::string_view text = Trim(line);
  if (text.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  return text.front() == '{' ? ParseRequestJsonLine(text)
                             : ParseRequestCsvLine(text);
}

Status SaveRequestLog(const std::string& path,
                      const std::vector<RideRequest>& requests, bool json) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "# request log: id,release,origin,destination,deadline,"
         "direct_cost,passengers,offline (or JSON lines)\n";
  for (const RideRequest& r : requests) {
    out << (json ? FormatRequestJson(r) : FormatRequestCsv(r)) << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace mtshare
