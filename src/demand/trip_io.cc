#include "demand/trip_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mtshare {

Result<TripCsvResult> LoadTripCsv(const std::string& path,
                                  const RoadNetwork& network,
                                  const GridIndex& snap,
                                  const TripCsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  Projection projection(options.projection_origin);

  TripCsvResult result;
  std::string line;
  int line_no = 0;
  Seconds min_release = kInfiniteCost;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = Trim(line);
    if (text.empty() || text[0] == '#') continue;
    std::vector<std::string> fields = Split(text, ',');
    auto malformed = [&](const char* why) {
      std::ostringstream os;
      os << path << ":" << line_no << ": " << why;
      return Status::InvalidArgument(os.str());
    };
    if (fields.size() != 7) {
      return malformed("expected 7 fields: txn,taxi,ts,plng,plat,dlng,dlat");
    }
    double ts = 0.0;
    double plng = 0.0;
    double plat = 0.0;
    double dlng = 0.0;
    double dlat = 0.0;
    if (!ParseDouble(fields[2], &ts) || !ParseDouble(fields[3], &plng) ||
        !ParseDouble(fields[4], &plat) || !ParseDouble(fields[5], &dlng) ||
        !ParseDouble(fields[6], &dlat)) {
      return malformed("bad numeric field");
    }
    ++result.parsed_lines;

    Point pickup = projection.Project(LatLng{plat, plng});
    Point dropoff = projection.Project(LatLng{dlat, dlng});
    VertexId origin = snap.NearestVertex(pickup);
    VertexId dest = snap.NearestVertex(dropoff);
    if (origin == kInvalidVertex || dest == kInvalidVertex) {
      ++result.dropped_snap;
      continue;
    }
    if (options.max_snap_distance_m > 0 &&
        (Distance(network.coord(origin), pickup) >
             options.max_snap_distance_m ||
         Distance(network.coord(dest), dropoff) >
             options.max_snap_distance_m)) {
      ++result.dropped_snap;
      continue;
    }
    if (origin == dest) {
      ++result.dropped_degenerate;
      continue;
    }
    result.trips.push_back(Trip{ts, origin, dest});
    min_release = std::min(min_release, ts);
  }

  if (options.rebase_to >= 0.0 && !result.trips.empty()) {
    for (Trip& t : result.trips) {
      t.release_time = t.release_time - min_release + options.rebase_to;
    }
  }
  std::sort(result.trips.begin(), result.trips.end(),
            [](const Trip& a, const Trip& b) {
              return a.release_time < b.release_time;
            });
  return result;
}

Status SaveTripCsv(const std::string& path, const std::vector<Trip>& trips,
                   const RoadNetwork& network, const TripCsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  Projection projection(options.projection_origin);
  out << "# txn,taxi,release_ts,pickup_lng,pickup_lat,dropoff_lng,"
         "dropoff_lat\n";
  out.precision(10);
  int64_t txn = 0;
  for (const Trip& t : trips) {
    LatLng p = projection.Unproject(network.coord(t.origin));
    LatLng d = projection.Unproject(network.coord(t.destination));
    out << txn << "," << (txn % 997) << "," << t.release_time << "," << p.lng
        << "," << p.lat << "," << d.lng << "," << d.lat << "\n";
    ++txn;
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace mtshare
