#ifndef MTSHARE_DEMAND_TRIP_IO_H_
#define MTSHARE_DEMAND_TRIP_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "demand/trip.h"
#include "geo/latlng.h"
#include "graph/road_network.h"
#include "spatial/grid_index.h"

namespace mtshare {

/// Loader for taxi-transaction CSVs in the Didi GAIA layout used by the
/// paper (Sec. V-A1): one transaction per line,
///
///   transaction_id,taxi_id,release_unix_ts,pickup_lng,pickup_lat,
///   dropoff_lng,dropoff_lat
///
/// Lines starting with '#' are comments. Coordinates are projected around
/// `projection_origin` and snapped to the nearest network vertex (the paper
/// premaps every request endpoint to the closest road vertex, Sec. V-A4).
struct TripCsvOptions {
  LatLng projection_origin{30.657, 104.066};  // Chengdu city center
  /// Transactions whose endpoints snap farther than this are dropped
  /// (off-map GPS noise). <= 0 disables the filter.
  double max_snap_distance_m = 500.0;
  /// Release timestamps are shifted so the earliest trip starts at this
  /// simulation time. Negative keeps raw timestamps.
  Seconds rebase_to = 0.0;
};

struct TripCsvResult {
  std::vector<Trip> trips;  ///< sorted by release time
  int64_t parsed_lines = 0;
  int64_t dropped_snap = 0;  ///< endpoints too far from the network
  int64_t dropped_degenerate = 0;  ///< origin == destination after snapping
};

/// Parses the CSV; returns IoError / InvalidArgument with a line reference
/// on malformed input.
Result<TripCsvResult> LoadTripCsv(const std::string& path,
                                  const RoadNetwork& network,
                                  const GridIndex& snap,
                                  const TripCsvOptions& options = {});

/// Writes trips in the same layout (vertex coordinates are unprojected
/// back around the projection origin), so synthetic workloads can be
/// exchanged with tools expecting the GAIA schema.
Status SaveTripCsv(const std::string& path, const std::vector<Trip>& trips,
                   const RoadNetwork& network,
                   const TripCsvOptions& options = {});

}  // namespace mtshare

#endif  // MTSHARE_DEMAND_TRIP_IO_H_
