#ifndef MTSHARE_DEMAND_TRIP_IO_H_
#define MTSHARE_DEMAND_TRIP_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "demand/request.h"
#include "demand/trip.h"
#include "geo/latlng.h"
#include "graph/road_network.h"
#include "spatial/grid_index.h"

namespace mtshare {

/// Loader for taxi-transaction CSVs in the Didi GAIA layout used by the
/// paper (Sec. V-A1): one transaction per line,
///
///   transaction_id,taxi_id,release_unix_ts,pickup_lng,pickup_lat,
///   dropoff_lng,dropoff_lat
///
/// Lines starting with '#' are comments. Coordinates are projected around
/// `projection_origin` and snapped to the nearest network vertex (the paper
/// premaps every request endpoint to the closest road vertex, Sec. V-A4).
struct TripCsvOptions {
  LatLng projection_origin{30.657, 104.066};  // Chengdu city center
  /// Transactions whose endpoints snap farther than this are dropped
  /// (off-map GPS noise). <= 0 disables the filter.
  double max_snap_distance_m = 500.0;
  /// Release timestamps are shifted so the earliest trip starts at this
  /// simulation time. Negative keeps raw timestamps.
  Seconds rebase_to = 0.0;
};

struct TripCsvResult {
  std::vector<Trip> trips;  ///< sorted by release time
  int64_t parsed_lines = 0;
  int64_t dropped_snap = 0;  ///< endpoints too far from the network
  int64_t dropped_degenerate = 0;  ///< origin == destination after snapping
};

/// Parses the CSV; returns IoError / InvalidArgument with a line reference
/// on malformed input.
Result<TripCsvResult> LoadTripCsv(const std::string& path,
                                  const RoadNetwork& network,
                                  const GridIndex& snap,
                                  const TripCsvOptions& options = {});

/// Writes trips in the same layout (vertex coordinates are unprojected
/// back around the projection origin), so synthetic workloads can be
/// exchanged with tools expecting the GAIA schema.
Status SaveTripCsv(const std::string& path, const std::vector<Trip>& trips,
                   const RoadNetwork& network,
                   const TripCsvOptions& options = {});

// --- request logs (the streaming-ingest wire format, DESIGN.md §12) ---
//
// One request per line, in either of two self-describing layouts that
// StreamRequestSource auto-detects per line:
//
//   CSV:   id,release,origin,destination,deadline,direct_cost,passengers,
//          offline                                  (8 fields, offline 0/1)
//   JSON:  {"id":0,"release_time":4.5,"origin":7,"destination":31,
//           "deadline":9.1,"direct_cost":3.2,"passengers":1,"offline":0}
//
// Lines starting with '#' are comments. Doubles are serialized with %.17g
// so a formatted-then-parsed request is bit-identical to the original —
// the property the stream-vs-vector ingest equivalence tests rely on.
// In the JSON layout `id`, `deadline`, `direct_cost`, `passengers`, and
// `offline` are optional (missing id = assign the next dense id; missing
// deadline/direct_cost = -1, to be filled by a finalize hook); the CSV
// layout always carries all 8 fields but accepts -1 sentinels.

/// One CSV request-log line (no trailing newline).
std::string FormatRequestCsv(const RideRequest& request);

/// One JSON request-log line (no trailing newline).
std::string FormatRequestJson(const RideRequest& request);

/// Parses one request-log line (either layout). Returns InvalidArgument on
/// malformed input. Missing optional fields come back as the sentinels
/// documented above; no cross-line validation (ids/order) happens here.
Result<RideRequest> ParseRequestLine(std::string_view line);

/// Writes a request log, one line per request (CSV by default; JSON lines
/// when `json` is set). Round-trips exactly through ParseRequestLine.
Status SaveRequestLog(const std::string& path,
                      const std::vector<RideRequest>& requests,
                      bool json = false);

}  // namespace mtshare

#endif  // MTSHARE_DEMAND_TRIP_IO_H_
