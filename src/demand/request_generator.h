#ifndef MTSHARE_DEMAND_REQUEST_GENERATOR_H_
#define MTSHARE_DEMAND_REQUEST_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "demand/demand_model.h"
#include "demand/request.h"
#include "demand/trip.h"
#include "routing/distance_oracle.h"

namespace mtshare {

/// Parameters of an evaluation scenario (paper Sec. V-A1).
struct ScenarioOptions {
  /// Scenario window, seconds since midnight. Peak: 8:00-9:00 workday;
  /// nonpeak: 10:00-11:00 weekend.
  Seconds t_begin = 8 * 3600.0;
  Seconds t_end = 9 * 3600.0;
  /// Requests released inside the window.
  int32_t num_requests = 5000;
  /// Fraction marked offline (hidden until encountered). Paper nonpeak:
  /// 5000 of 15480 ~ 32%; peak: 0.
  double offline_fraction = 0.0;
  /// Deadline flexibility rho: deadline = t + rho * cost(o, d) (eq. (9),
  /// Table II default 1.3).
  double rho = 1.3;
  /// Riders per request (1..capacity); >1 sampled with small probability.
  double multi_rider_fraction = 0.15;
  int32_t max_party = 2;
  /// Historical trips to generate for the transition statistics ("the rest
  /// of the taxi data" in Sec. V-A1).
  int32_t num_historical_trips = 40000;
  uint64_t seed = 29;
};

/// A fully materialized scenario: the request stream the dispatcher will
/// see plus the historical trips that train the mobility statistics.
struct Scenario {
  std::vector<RideRequest> requests;  // sorted by release time
  std::vector<Trip> historical_trips;

  std::vector<OdPair> HistoricalOdPairs() const;
  int32_t CountOffline() const;
};

/// Builds a scenario: samples trips from the demand model, snaps deadlines
/// via the oracle, marks a random subset offline. Requests whose
/// origin/destination coincide or are unreachable are resampled.
Scenario MakeScenario(const RoadNetwork& network, const DemandModel& demand,
                      DistanceOracle& oracle, const ScenarioOptions& options);

}  // namespace mtshare

#endif  // MTSHARE_DEMAND_REQUEST_GENERATOR_H_
