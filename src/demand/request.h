#ifndef MTSHARE_DEMAND_REQUEST_H_
#define MTSHARE_DEMAND_REQUEST_H_

#include "common/types.h"

namespace mtshare {

/// A ride request r_i = <t, o, d, e> (paper Def. 2). Online requests reach
/// the dispatcher at release_time; offline requests stay invisible until a
/// shared taxi encounters their origin vertex while they are waiting.
struct RideRequest {
  RequestId id = kInvalidRequest;
  Seconds release_time = 0.0;
  VertexId origin = kInvalidVertex;
  VertexId destination = kInvalidVertex;
  /// Delivery deadline e (paper eq. (9): t + rho * cost(o, d)).
  Seconds deadline = 0.0;
  /// Direct shortest travel cost cost(o, d), cached at generation.
  Seconds direct_cost = 0.0;
  /// Riders in the party (counts against taxi capacity).
  int32_t passengers = 1;
  /// True for roadside-hailing requests never submitted to the system.
  bool offline = false;

  /// Latest pickup time that still allows an on-time delivery via the
  /// direct route: e - cost(o, d) (paper Sec. III-A).
  Seconds PickupDeadline() const { return deadline - direct_cost; }

  /// The waiting budget Delta-t of paper eq. (2).
  Seconds WaitBudget() const { return deadline - direct_cost - release_time; }
};

}  // namespace mtshare

#endif  // MTSHARE_DEMAND_REQUEST_H_
