#include "demand/request_generator.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {

std::vector<OdPair> Scenario::HistoricalOdPairs() const {
  std::vector<OdPair> pairs;
  pairs.reserve(historical_trips.size());
  for (const Trip& t : historical_trips) {
    pairs.emplace_back(t.origin, t.destination);
  }
  return pairs;
}

int32_t Scenario::CountOffline() const {
  int32_t n = 0;
  for (const RideRequest& r : requests) n += r.offline ? 1 : 0;
  return n;
}

Scenario MakeScenario(const RoadNetwork& network, const DemandModel& demand,
                      DistanceOracle& oracle, const ScenarioOptions& options) {
  MTSHARE_CHECK(options.rho > 1.0);
  MTSHARE_CHECK(options.offline_fraction >= 0.0 &&
                options.offline_fraction <= 1.0);
  Rng rng(options.seed);
  Scenario scenario;

  // Historical trips span the whole day so the transition statistics see
  // every diurnal regime, as the paper trains on the full dataset minus the
  // evaluation window.
  scenario.historical_trips = demand.GenerateTrips(
      0.0, 86400.0, options.num_historical_trips, rng);

  std::vector<Trip> trips =
      demand.GenerateTrips(options.t_begin, options.t_end,
                           options.num_requests, rng);
  scenario.requests.reserve(trips.size());
  RequestId next_id = 0;
  for (Trip& trip : trips) {
    Seconds direct = oracle.Cost(trip.origin, trip.destination);
    for (int attempt = 0; attempt < 8 && (direct == kInfiniteCost ||
                                          trip.origin == trip.destination);
         ++attempt) {
      trip = demand.SampleTrip(trip.release_time, rng);
      direct = oracle.Cost(trip.origin, trip.destination);
    }
    if (direct == kInfiniteCost || trip.origin == trip.destination) {
      continue;  // pathological sample; drop (SCC networks make this rare)
    }
    RideRequest r;
    r.id = next_id++;
    r.release_time = trip.release_time;
    r.origin = trip.origin;
    r.destination = trip.destination;
    r.direct_cost = direct;
    r.deadline = trip.release_time + options.rho * direct;
    r.passengers = 1;
    if (rng.NextDouble() < options.multi_rider_fraction &&
        options.max_party > 1) {
      r.passengers =
          static_cast<int32_t>(rng.NextInt(2, options.max_party));
    }
    r.offline = rng.NextDouble() < options.offline_fraction;
    scenario.requests.push_back(r);
  }
  // GenerateTrips sorts by time; dropped samples keep order intact.
  return scenario;
}

}  // namespace mtshare
