#ifndef MTSHARE_DEMAND_DEMAND_MODEL_H_
#define MTSHARE_DEMAND_DEMAND_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "demand/trip.h"
#include "graph/road_network.h"
#include "spatial/grid_index.h"

namespace mtshare {

/// Day profile used by the diurnal demand curve (paper Fig. 5a shows both).
enum class DayType { kWorkday, kWeekend };

/// Functional role of a demand hotspot; drives the time-dependent flow
/// asymmetry (residential -> business in the morning peak, the reverse in
/// the evening) that gives vertices distinguishable transition patterns —
/// the signal bipartite map partitioning mines.
enum class HotspotType { kResidential, kBusiness, kLeisure };

struct DemandModelOptions {
  int32_t num_hotspots = 9;
  /// Gaussian spread of trip endpoints around a hotspot.
  double hotspot_sigma_m = 500.0;
  /// Probability that an endpoint is uniform background instead of
  /// hotspot-anchored.
  double uniform_fraction = 0.15;
  /// Resample destinations closer than this to the origin (GPS noise trips
  /// are filtered out of taxi datasets too).
  double min_trip_m = 800.0;
  uint64_t seed = 23;
  DayType day = DayType::kWorkday;
};

/// Synthetic spatio-temporal taxi demand: a hotspot mixture with
/// time-varying directional flows and the diurnal volume profile of the
/// paper's Chengdu dataset (Fig. 5). Substitute for the Didi GAIA trips —
/// see DESIGN.md for why the substitution preserves the evaluation.
class DemandModel {
 public:
  DemandModel(const RoadNetwork& network, const DemandModelOptions& options);

  /// Samples one trip released at `time` (seconds since midnight; values
  /// >= 24h wrap for multi-day horizons).
  Trip SampleTrip(Seconds time, Rng& rng) const;

  /// `count` trips with release times in [t_begin, t_end), placed by
  /// rejection sampling against the diurnal profile and sorted by time.
  std::vector<Trip> GenerateTrips(Seconds t_begin, Seconds t_end,
                                  int32_t count, Rng& rng) const;

  /// Relative demand weight of the hour-of-day (0-23) for a day type.
  /// The workday curve peaks at hour 8 (the paper's peak scenario) and the
  /// weekend curve is flatter with a late-morning hump.
  static double DiurnalWeight(DayType day, int32_t hour);

  /// Day profile this model samples under (GeneratorRequestSource replays
  /// the same rejection sampling outside the model).
  DayType day() const { return options_.day; }

  const std::vector<Point>& hotspot_centers() const { return centers_; }
  const std::vector<HotspotType>& hotspot_types() const { return types_; }

 private:
  Point SampleEndpoint(int32_t hotspot, Rng& rng) const;
  int32_t PickOriginHotspot(int32_t hour, Rng& rng) const;
  int32_t PickDestinationHotspot(int32_t origin_hotspot, int32_t hour,
                                 Rng& rng) const;

  const RoadNetwork& network_;
  DemandModelOptions options_;
  std::unique_ptr<GridIndex> snap_;
  std::vector<Point> centers_;
  std::vector<HotspotType> types_;
};

/// Time-of-day flow multiplier between hotspot roles; exposed for tests.
double FlowWeight(HotspotType from, HotspotType to, int32_t hour);

/// Hour-of-day (0-23) of a timestamp; values >= 24h wrap, negatives are
/// shifted into the day.
int32_t HourOf(Seconds time);

}  // namespace mtshare

#endif  // MTSHARE_DEMAND_DEMAND_MODEL_H_
