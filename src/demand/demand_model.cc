#include "demand/demand_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mtshare {
namespace {

// Relative hourly demand, hours 0..23. Shapes chosen to match the paper's
// Fig. 5a utilization curves: workday maxima at the 8:00-9:00 morning peak
// and a secondary evening peak; weekends flatter with a late-morning hump.
constexpr double kWorkdayProfile[24] = {
    0.10, 0.06, 0.04, 0.03, 0.04, 0.10, 0.30, 0.75, 1.00, 0.90,
    0.70, 0.65, 0.60, 0.58, 0.60, 0.65, 0.80, 0.95, 0.90, 0.70,
    0.55, 0.45, 0.30, 0.18};
constexpr double kWeekendProfile[24] = {
    0.15, 0.10, 0.06, 0.04, 0.04, 0.06, 0.12, 0.25, 0.45, 0.60,
    0.70, 0.72, 0.70, 0.68, 0.66, 0.65, 0.68, 0.72, 0.70, 0.65,
    0.60, 0.52, 0.40, 0.25};

}  // namespace

int32_t HourOf(Seconds time) {
  double day_sec = std::fmod(time, 86400.0);
  if (day_sec < 0) day_sec += 86400.0;
  return static_cast<int32_t>(day_sec / 3600.0) % 24;
}

double FlowWeight(HotspotType from, HotspotType to, int32_t hour) {
  double w = 1.0;
  bool morning = hour >= 7 && hour <= 10;
  bool evening = hour >= 17 && hour <= 20;
  bool midday = hour >= 11 && hour <= 16;
  bool night = hour >= 21 || hour <= 5;
  using H = HotspotType;
  if (morning) {
    if (from == H::kResidential && to == H::kBusiness) w *= 4.0;
    if (from == H::kBusiness && to == H::kResidential) w *= 0.5;
  }
  if (evening) {
    if (from == H::kBusiness && to == H::kResidential) w *= 4.0;
    if (from == H::kBusiness && to == H::kLeisure) w *= 2.0;
  }
  if (midday && from == H::kBusiness && to == H::kBusiness) w *= 2.0;
  if (night && from == H::kLeisure && to == H::kResidential) w *= 3.0;
  return w;
}

double DemandModel::DiurnalWeight(DayType day, int32_t hour) {
  MTSHARE_CHECK(hour >= 0 && hour < 24);
  return day == DayType::kWorkday ? kWorkdayProfile[hour]
                                  : kWeekendProfile[hour];
}

DemandModel::DemandModel(const RoadNetwork& network,
                         const DemandModelOptions& options)
    : network_(network), options_(options) {
  MTSHARE_CHECK(network.num_vertices() > 0);
  MTSHARE_CHECK(options.num_hotspots > 0);
  double cell = std::max(50.0, std::min(network.bounds().Width(),
                                        network.bounds().Height()) /
                                   64.0);
  snap_ = std::make_unique<GridIndex>(network, cell);

  Rng rng(options.seed);
  const BoundingBox& box = network.bounds();
  // Keep hotspots away from the map border so their Gaussians stay inside.
  double margin_x = box.Width() * 0.12;
  double margin_y = box.Height() * 0.12;
  for (int32_t h = 0; h < options.num_hotspots; ++h) {
    centers_.push_back(
        Point{rng.NextUniform(box.min.x + margin_x, box.max.x - margin_x),
              rng.NextUniform(box.min.y + margin_y, box.max.y - margin_y)});
    types_.push_back(static_cast<HotspotType>(h % 3));
  }
}

Point DemandModel::SampleEndpoint(int32_t hotspot, Rng& rng) const {
  const BoundingBox& box = network_.bounds();
  if (hotspot < 0) {  // uniform background
    return Point{rng.NextUniform(box.min.x, box.max.x),
                 rng.NextUniform(box.min.y, box.max.y)};
  }
  const Point& c = centers_[hotspot];
  Point p{c.x + rng.NextGaussian() * options_.hotspot_sigma_m,
          c.y + rng.NextGaussian() * options_.hotspot_sigma_m};
  p.x = std::clamp(p.x, box.min.x, box.max.x);
  p.y = std::clamp(p.y, box.min.y, box.max.y);
  return p;
}

int32_t DemandModel::PickOriginHotspot(int32_t hour, Rng& rng) const {
  if (rng.NextDouble() < options_.uniform_fraction) return -1;
  // Origin propensity: where trips *start* at this hour is the row-sum of
  // the flow matrix from each hotspot role.
  std::vector<double> weights(centers_.size());
  for (size_t h = 0; h < centers_.size(); ++h) {
    double acc = 0.0;
    for (size_t g = 0; g < centers_.size(); ++g) {
      if (g == h) continue;
      acc += FlowWeight(types_[h], types_[g], hour);
    }
    weights[h] = acc;
  }
  return static_cast<int32_t>(rng.NextDiscrete(weights));
}

int32_t DemandModel::PickDestinationHotspot(int32_t origin_hotspot,
                                            int32_t hour, Rng& rng) const {
  if (rng.NextDouble() < options_.uniform_fraction) return -1;
  HotspotType from = origin_hotspot >= 0 ? types_[origin_hotspot]
                                         : HotspotType::kResidential;
  std::vector<double> weights(centers_.size());
  for (size_t g = 0; g < centers_.size(); ++g) {
    weights[g] = (static_cast<int32_t>(g) == origin_hotspot)
                     ? 0.0
                     : FlowWeight(from, types_[g], hour);
  }
  return static_cast<int32_t>(rng.NextDiscrete(weights));
}

Trip DemandModel::SampleTrip(Seconds time, Rng& rng) const {
  int32_t hour = HourOf(time);
  int32_t oh = PickOriginHotspot(hour, rng);
  VertexId origin = snap_->NearestVertex(SampleEndpoint(oh, rng));
  VertexId dest = origin;
  for (int attempt = 0; attempt < 16 && dest == origin; ++attempt) {
    int32_t dh = PickDestinationHotspot(oh, hour, rng);
    Point p = SampleEndpoint(dh, rng);
    if (Distance(p, network_.coord(origin)) < options_.min_trip_m) continue;
    dest = snap_->NearestVertex(p);
  }
  if (dest == origin) {
    // Degenerate fallback: any other vertex.
    dest = (origin + 1) % network_.num_vertices();
  }
  return Trip{time, origin, dest};
}

std::vector<Trip> DemandModel::GenerateTrips(Seconds t_begin, Seconds t_end,
                                             int32_t count, Rng& rng) const {
  MTSHARE_CHECK(t_end > t_begin);
  MTSHARE_CHECK(count >= 0);
  std::vector<Trip> trips;
  trips.reserve(count);
  // Rejection sampling of release times against the diurnal profile.
  double max_weight = 0.0;
  for (int32_t h = 0; h < 24; ++h) {
    max_weight = std::max(max_weight, DiurnalWeight(options_.day, h));
  }
  while (static_cast<int32_t>(trips.size()) < count) {
    Seconds t = rng.NextUniform(t_begin, t_end);
    double accept = DiurnalWeight(options_.day, HourOf(t)) / max_weight;
    if (rng.NextDouble() > accept) continue;
    trips.push_back(SampleTrip(t, rng));
  }
  std::sort(trips.begin(), trips.end(), [](const Trip& a, const Trip& b) {
    return a.release_time < b.release_time;
  });
  return trips;
}

}  // namespace mtshare
