#ifndef MTSHARE_DEMAND_TRIP_H_
#define MTSHARE_DEMAND_TRIP_H_

#include "common/types.h"

namespace mtshare {

/// A historical taxi transaction reduced to what the pipeline consumes:
/// when it was requested and where it went (the Didi GAIA schema's release
/// time + pickup/dropoff coordinates, snapped to graph vertices).
struct Trip {
  Seconds release_time = 0.0;
  VertexId origin = kInvalidVertex;
  VertexId destination = kInvalidVertex;
};

}  // namespace mtshare

#endif  // MTSHARE_DEMAND_TRIP_H_
