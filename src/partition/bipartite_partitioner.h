#ifndef MTSHARE_PARTITION_BIPARTITE_PARTITIONER_H_
#define MTSHARE_PARTITION_BIPARTITE_PARTITIONER_H_

#include <cstdint>

#include "mobility/transition_model.h"
#include "partition/map_partitioning.h"

namespace mtshare {

/// Options for the bipartite map partitioning of paper Sec. IV-B1.
struct BipartiteOptions {
  /// Number of spatial clusters kappa (paper sweeps 50-250, default 150;
  /// scale with network size).
  int32_t kappa = 120;
  /// Number of transition clusters k_t (paper default 20, k_t < kappa).
  int32_t kt = 20;
  /// Outer iterations of the (transition-probability -> transition
  /// clustering -> geo-clustering) loop; the paper iterates to convergence,
  /// which on our workloads arrives within a handful of rounds.
  int32_t max_outer_iterations = 6;
  /// Additive smoothing for the per-vertex transition vectors.
  double laplace_alpha = 0.0;
  uint64_t seed = 17;
};

struct BipartiteDiagnostics {
  int32_t outer_iterations = 0;
  bool converged = false;
  /// Fraction of vertices whose (canonicalized) label changed in the last
  /// completed iteration.
  double last_change_fraction = 0.0;
};

/// Runs bipartite map partitioning: k-means on vertex coordinates seeds
/// kappa spatial clusters; then, iteratively, (1) per-vertex transition
/// probability vectors against the current clusters, (2) k-means of those
/// vectors into kt transition clusters, (3) geo k-means of each transition
/// cluster into floor(n*kappa/N + 1/2) spatial clusters; until the spatial
/// clustering stabilizes. The result's partitions are both geographically
/// compact and transition-homogeneous.
MapPartitioning BipartitePartition(const RoadNetwork& network,
                                   const std::vector<OdPair>& historical_trips,
                                   const BipartiteOptions& options,
                                   BipartiteDiagnostics* diagnostics = nullptr);

}  // namespace mtshare

#endif  // MTSHARE_PARTITION_BIPARTITE_PARTITIONER_H_
