#include "partition/landmark_graph.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace mtshare {
namespace {

/// Dijkstra over reversed arcs: costs *to* `sink` from every vertex.
/// LandmarkGraph needs one row per landmark at build time only, so a plain
/// local search (no epoch buffers) keeps DijkstraSearch forward-only.
std::vector<Seconds> ReverseCostsFrom(const RoadNetwork& network,
                                      VertexId sink) {
  struct Entry {
    Seconds cost;
    VertexId vertex;
    bool operator>(const Entry& other) const { return cost > other.cost; }
  };
  std::vector<Seconds> dist(network.num_vertices(), kInfiniteCost);
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  dist[sink] = 0.0;
  queue.push(Entry{0.0, sink});
  while (!queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (top.cost > dist[top.vertex]) continue;
    for (const Arc& arc : network.InArcs(top.vertex)) {
      Seconds cand = top.cost + arc.cost;
      if (cand < dist[arc.head]) {
        dist[arc.head] = cand;
        queue.push(Entry{cand, arc.head});
      }
    }
  }
  return dist;
}

}  // namespace

LandmarkGraph::LandmarkGraph(const RoadNetwork& network,
                             const MapPartitioning& partitioning)
    : num_partitions_(partitioning.num_partitions()),
      partitioning_(&partitioning) {
  MTSHARE_CHECK(num_partitions_ > 0);
  adjacency_.resize(num_partitions_);

  // Adjacency: a road edge whose endpoints lie in different partitions
  // makes those partitions adjacent.
  std::vector<std::vector<uint8_t>> adj_matrix(
      num_partitions_, std::vector<uint8_t>(num_partitions_, 0));
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    PartitionId pv = partitioning.PartitionOf(v);
    for (const Arc& arc : network.OutArcs(v)) {
      PartitionId pw = partitioning.PartitionOf(arc.head);
      if (pv != pw) {
        adj_matrix[pv][pw] = 1;
        adj_matrix[pw][pv] = 1;
      }
    }
  }
  for (PartitionId p = 0; p < num_partitions_; ++p) {
    for (PartitionId q = 0; q < num_partitions_; ++q) {
      if (adj_matrix[p][q]) adjacency_[p].push_back(q);
    }
  }

  // Landmark-to-landmark costs: one Dijkstra row per landmark. The same
  // forward row (plus a reverse sweep) also yields every member vertex's
  // distance from/to its home landmark — the per-vertex terms of the
  // LowerBound() triangle inequality.
  costs_.assign(static_cast<size_t>(num_partitions_) * num_partitions_,
                kInfiniteCost);
  from_landmark_.assign(network.num_vertices(), kInfiniteCost);
  to_landmark_.assign(network.num_vertices(), kInfiniteCost);
  DijkstraSearch search(network);
  for (PartitionId p = 0; p < num_partitions_; ++p) {
    std::vector<Seconds> row = search.CostsFrom(partitioning.landmarks[p]);
    for (PartitionId q = 0; q < num_partitions_; ++q) {
      costs_[static_cast<size_t>(p) * num_partitions_ + q] =
          row[partitioning.landmarks[q]];
    }
    std::vector<Seconds> rev =
        ReverseCostsFrom(network, partitioning.landmarks[p]);
    for (VertexId v : partitioning.partition_vertices[p]) {
      from_landmark_[v] = row[v];
      to_landmark_[v] = rev[v];
    }
  }
}

Seconds LandmarkGraph::LowerBound(VertexId a, VertexId b) const {
  PartitionId pa = partitioning_->PartitionOf(a);
  PartitionId pb = partitioning_->PartitionOf(b);
  Seconds ll = LandmarkCost(pa, pb);
  Seconds fa = from_landmark_[a];
  Seconds tb = to_landmark_[b];
  if (ll >= kInfiniteCost || fa >= kInfiniteCost || tb >= kInfiniteCost) {
    return 0.0;  // disconnected terms make the bound meaningless
  }
  Seconds lb = ll - fa - tb;
  return lb > 0.0 ? lb : 0.0;
}

Seconds LandmarkGraph::UpperBound(VertexId a, VertexId b) const {
  PartitionId pa = partitioning_->PartitionOf(a);
  PartitionId pb = partitioning_->PartitionOf(b);
  Seconds ll = LandmarkCost(pa, pb);
  Seconds ta = to_landmark_[a];
  Seconds fb = from_landmark_[b];
  if (ll >= kInfiniteCost || ta >= kInfiniteCost || fb >= kInfiniteCost) {
    return kInfiniteCost;
  }
  return ta + ll + fb;
}

bool LandmarkGraph::Adjacent(PartitionId a, PartitionId b) const {
  const auto& nbrs = adjacency_[a];
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

size_t LandmarkGraph::MemoryBytes() const {
  size_t bytes = costs_.size() * sizeof(Seconds);
  bytes += (from_landmark_.size() + to_landmark_.size()) * sizeof(Seconds);
  for (const auto& nbrs : adjacency_) bytes += nbrs.size() * sizeof(PartitionId);
  return bytes;
}

}  // namespace mtshare
