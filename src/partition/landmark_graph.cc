#include "partition/landmark_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {

LandmarkGraph::LandmarkGraph(const RoadNetwork& network,
                             const MapPartitioning& partitioning)
    : num_partitions_(partitioning.num_partitions()) {
  MTSHARE_CHECK(num_partitions_ > 0);
  adjacency_.resize(num_partitions_);

  // Adjacency: a road edge whose endpoints lie in different partitions
  // makes those partitions adjacent.
  std::vector<std::vector<uint8_t>> adj_matrix(
      num_partitions_, std::vector<uint8_t>(num_partitions_, 0));
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    PartitionId pv = partitioning.PartitionOf(v);
    for (const Arc& arc : network.OutArcs(v)) {
      PartitionId pw = partitioning.PartitionOf(arc.head);
      if (pv != pw) {
        adj_matrix[pv][pw] = 1;
        adj_matrix[pw][pv] = 1;
      }
    }
  }
  for (PartitionId p = 0; p < num_partitions_; ++p) {
    for (PartitionId q = 0; q < num_partitions_; ++q) {
      if (adj_matrix[p][q]) adjacency_[p].push_back(q);
    }
  }

  // Landmark-to-landmark costs: one Dijkstra row per landmark.
  costs_.assign(static_cast<size_t>(num_partitions_) * num_partitions_,
                kInfiniteCost);
  DijkstraSearch search(network);
  for (PartitionId p = 0; p < num_partitions_; ++p) {
    std::vector<Seconds> row = search.CostsFrom(partitioning.landmarks[p]);
    for (PartitionId q = 0; q < num_partitions_; ++q) {
      costs_[static_cast<size_t>(p) * num_partitions_ + q] =
          row[partitioning.landmarks[q]];
    }
  }
}

bool LandmarkGraph::Adjacent(PartitionId a, PartitionId b) const {
  const auto& nbrs = adjacency_[a];
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

size_t LandmarkGraph::MemoryBytes() const {
  size_t bytes = costs_.size() * sizeof(Seconds);
  for (const auto& nbrs : adjacency_) bytes += nbrs.size() * sizeof(PartitionId);
  return bytes;
}

}  // namespace mtshare
