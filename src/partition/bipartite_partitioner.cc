#include "partition/bipartite_partitioner.h"

#include <algorithm>
#include <cmath>

#include "clustering/kmeans.h"
#include "common/logging.h"
#include "common/random.h"

namespace mtshare {
namespace {

/// Canonicalizes labels to first-occurrence order so two label vectors can
/// be compared for identical groupings regardless of label permutation.
std::vector<int32_t> CanonicalizeLabels(const std::vector<int32_t>& labels) {
  std::vector<int32_t> mapping(labels.size(), -1);
  std::vector<int32_t> out(labels.size());
  int32_t next = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    int32_t l = labels[i];
    MTSHARE_CHECK(l >= 0 && l < static_cast<int32_t>(labels.size()));
    if (mapping[l] == -1) mapping[l] = next++;
    out[i] = mapping[l];
  }
  return out;
}

double ChangeFraction(const std::vector<int32_t>& a,
                      const std::vector<int32_t>& b) {
  MTSHARE_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  size_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++diff;
  }
  return static_cast<double>(diff) / static_cast<double>(a.size());
}

/// Geo k-means over the full vertex set (used for the initial kappa
/// spatial clusters).
std::vector<int32_t> GeoCluster(const RoadNetwork& network, int32_t k,
                                Rng& rng) {
  std::vector<double> coords;
  coords.reserve(static_cast<size_t>(network.num_vertices()) * 2);
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    coords.push_back(network.coord(v).x);
    coords.push_back(network.coord(v).y);
  }
  KMeansOptions opt;
  opt.k = k;
  return KMeans(coords, 2, opt, rng).assignment;
}

}  // namespace

MapPartitioning BipartitePartition(const RoadNetwork& network,
                                   const std::vector<OdPair>& historical_trips,
                                   const BipartiteOptions& options,
                                   BipartiteDiagnostics* diagnostics) {
  MTSHARE_CHECK(network.num_vertices() > 0);
  MTSHARE_CHECK(options.kappa > 0);
  MTSHARE_CHECK(options.kt > 0);
  const int32_t n = network.num_vertices();
  Rng rng(options.seed);

  // Initial spatial clusters: plain geo k-means with k = kappa.
  std::vector<int32_t> spatial = GeoCluster(network, options.kappa, rng);
  int32_t num_spatial =
      1 + *std::max_element(spatial.begin(), spatial.end());
  std::vector<int32_t> canonical = CanonicalizeLabels(spatial);

  BipartiteDiagnostics diag;
  for (int32_t outer = 0; outer < options.max_outer_iterations; ++outer) {
    diag.outer_iterations = outer + 1;

    // Step 1: transition probability vectors against current clusters.
    TransitionModel transitions = TransitionModel::Build(
        n, num_spatial, spatial, historical_trips, options.laplace_alpha);

    // Step 2: k-means over the transition vectors -> kt transition clusters.
    std::vector<double> rows(static_cast<size_t>(n) * num_spatial);
    for (VertexId v = 0; v < n; ++v) {
      std::copy_n(transitions.Row(v), num_spatial,
                  rows.begin() + static_cast<size_t>(v) * num_spatial);
    }
    KMeansOptions topt;
    topt.k = options.kt;
    KMeansResult trans = KMeans(rows, num_spatial, topt, rng);

    // Step 3: geo-cluster each transition cluster into
    // floor(n_c * kappa / N + 1/2) spatial clusters.
    std::vector<std::vector<VertexId>> trans_members(trans.k_effective);
    for (VertexId v = 0; v < n; ++v) {
      trans_members[trans.assignment[v]].push_back(v);
    }
    std::vector<int32_t> new_spatial(n, -1);
    int32_t next_label = 0;
    for (const auto& members : trans_members) {
      if (members.empty()) continue;
      int32_t sub_k = std::max<int32_t>(
          1, static_cast<int32_t>(std::floor(
                 static_cast<double>(members.size()) * options.kappa / n +
                 0.5)));
      std::vector<double> coords;
      coords.reserve(members.size() * 2);
      for (VertexId v : members) {
        coords.push_back(network.coord(v).x);
        coords.push_back(network.coord(v).y);
      }
      KMeansOptions gopt;
      gopt.k = sub_k;
      KMeansResult geo = KMeans(coords, 2, gopt, rng);
      for (size_t i = 0; i < members.size(); ++i) {
        new_spatial[members[i]] = next_label + geo.assignment[i];
      }
      next_label += geo.k_effective;
    }
    MTSHARE_CHECK(std::count(new_spatial.begin(), new_spatial.end(), -1) == 0);

    std::vector<int32_t> new_canonical = CanonicalizeLabels(new_spatial);
    diag.last_change_fraction = ChangeFraction(canonical, new_canonical);
    spatial = std::move(new_spatial);
    num_spatial = next_label;
    canonical = std::move(new_canonical);
    if (diag.last_change_fraction == 0.0) {
      diag.converged = true;
      break;
    }
  }

  MapPartitioning out;
  out.vertex_partition.assign(canonical.begin(), canonical.end());
  int32_t k = 1 + *std::max_element(canonical.begin(), canonical.end());
  out.partition_vertices.resize(k);
  for (VertexId v = 0; v < n; ++v) {
    out.partition_vertices[canonical[v]].push_back(v);
  }
  FinalizeGeometry(network, &out);
  if (diagnostics != nullptr) *diagnostics = diag;
  MTSHARE_LOG(kDebug) << "bipartite partitioning: " << k << " partitions in "
                      << diag.outer_iterations << " iterations (converged="
                      << diag.converged << ")";
  return out;
}

}  // namespace mtshare
