#ifndef MTSHARE_PARTITION_LANDMARK_GRAPH_H_
#define MTSHARE_PARTITION_LANDMARK_GRAPH_H_

#include <vector>

#include "partition/map_partitioning.h"
#include "routing/dijkstra.h"

namespace mtshare {

/// Landmark graph G_l (paper Def. 8): one vertex per partition landmark,
/// an edge between landmarks of adjacent partitions (partitions are
/// adjacent when some road edge crosses between them). Carries the dense
/// landmark-to-landmark travel-cost table used by partition filtering
/// (Algorithm 2) and by probabilistic routing's partition-path planning
/// (Algorithm 4 step 2).
class LandmarkGraph {
 public:
  /// Builds adjacency from crossing edges and the cost table with one
  /// Dijkstra per landmark on the real network (kappa searches, done once;
  /// the paper likewise precomputes landmark costs, Sec. V-A4).
  LandmarkGraph(const RoadNetwork& network,
                const MapPartitioning& partitioning);

  int32_t num_partitions() const {
    return static_cast<int32_t>(adjacency_.size());
  }

  /// Travel cost between the landmarks of two partitions on the road
  /// network (not restricted to landmark-graph hops).
  Seconds LandmarkCost(PartitionId a, PartitionId b) const {
    return costs_[static_cast<size_t>(a) * num_partitions_ + b];
  }

  /// Partitions adjacent to p.
  const std::vector<PartitionId>& Neighbors(PartitionId p) const {
    return adjacency_[p];
  }

  bool Adjacent(PartitionId a, PartitionId b) const;

  size_t MemoryBytes() const;

 private:
  int32_t num_partitions_;
  std::vector<std::vector<PartitionId>> adjacency_;
  std::vector<Seconds> costs_;  // dense num_partitions^2
};

}  // namespace mtshare

#endif  // MTSHARE_PARTITION_LANDMARK_GRAPH_H_
