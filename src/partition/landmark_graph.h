#ifndef MTSHARE_PARTITION_LANDMARK_GRAPH_H_
#define MTSHARE_PARTITION_LANDMARK_GRAPH_H_

#include <vector>

#include "partition/map_partitioning.h"
#include "routing/dijkstra.h"

namespace mtshare {

/// Landmark graph G_l (paper Def. 8): one vertex per partition landmark,
/// an edge between landmarks of adjacent partitions (partitions are
/// adjacent when some road edge crosses between them). Carries the dense
/// landmark-to-landmark travel-cost table used by partition filtering
/// (Algorithm 2) and by probabilistic routing's partition-path planning
/// (Algorithm 4 step 2).
class LandmarkGraph {
 public:
  /// Builds adjacency from crossing edges and the cost table with one
  /// Dijkstra per landmark on the real network (kappa searches, done once;
  /// the paper likewise precomputes landmark costs, Sec. V-A4).
  LandmarkGraph(const RoadNetwork& network,
                const MapPartitioning& partitioning);

  int32_t num_partitions() const {
    return static_cast<int32_t>(adjacency_.size());
  }

  /// Travel cost between the landmarks of two partitions on the road
  /// network (not restricted to landmark-graph hops).
  Seconds LandmarkCost(PartitionId a, PartitionId b) const {
    return costs_[static_cast<size_t>(a) * num_partitions_ + b];
  }

  /// Partitions adjacent to p.
  const std::vector<PartitionId>& Neighbors(PartitionId p) const {
    return adjacency_[p];
  }

  bool Adjacent(PartitionId a, PartitionId b) const;

  /// Admissible lower bound on the road-network travel cost a -> b, by
  /// triangle inequality over the home landmarks l_a, l_b:
  ///   d(a, b) >= d(l_a, l_b) - d(l_a, a) - d(b, l_b).
  /// Never exceeds the true cost (so pruning with it cannot change
  /// results); returns 0 when the bound is vacuous or any term is
  /// infinite. O(1): all three terms are precomputed at build.
  Seconds LowerBound(VertexId a, VertexId b) const;

  /// Admissible *upper* bound on the travel cost a -> b, by routing through
  /// the home landmarks:  d(a, b) <= d(a, l_a) + d(l_a, l_b) + d(l_b, b).
  /// Never below the true cost; returns kInfiniteCost when any term is
  /// infinite (an unusable bound, unlike LowerBound's vacuous 0). O(1):
  /// all three terms are precomputed at build. Paired with LowerBound in
  /// the detour-ellipse screen (DESIGN.md §14) to lower-bound the added
  /// cost of an insertion slot: LB(x, o) + LB(o, y) - UB(x, y) <= d1.
  Seconds UpperBound(VertexId a, VertexId b) const;

  size_t MemoryBytes() const;

 private:
  int32_t num_partitions_;
  const MapPartitioning* partitioning_;  // outlives this (owner builds both)
  std::vector<std::vector<PartitionId>> adjacency_;
  std::vector<Seconds> costs_;  // dense num_partitions^2
  /// Per-vertex distances to/from the vertex's home landmark:
  /// from_landmark_[v] = d(l_{P(v)}, v), to_landmark_[v] = d(v, l_{P(v)}).
  std::vector<Seconds> from_landmark_;
  std::vector<Seconds> to_landmark_;
};

}  // namespace mtshare

#endif  // MTSHARE_PARTITION_LANDMARK_GRAPH_H_
