#ifndef MTSHARE_PARTITION_MAP_PARTITIONING_H_
#define MTSHARE_PARTITION_MAP_PARTITIONING_H_

#include <vector>

#include "common/types.h"
#include "graph/road_network.h"

namespace mtshare {

/// A partitioning of the road-network vertex set plus derived geometry.
/// Produced by GridPartition (baseline) or BipartitePartition (paper
/// Sec. IV-B1); consumed by the taxi index, candidate search, partition
/// filtering, and probabilistic routing.
struct MapPartitioning {
  /// Partition id per vertex; every vertex is assigned.
  std::vector<PartitionId> vertex_partition;
  /// Member vertices per partition.
  std::vector<std::vector<VertexId>> partition_vertices;
  /// Landmark vertex per partition (paper Def. 7: the member vertex with
  /// minimum total distance to the other members; approximated, see
  /// FinalizeGeometry).
  std::vector<VertexId> landmarks;
  /// Geometric centroid of the member coordinates, per partition.
  std::vector<Point> centroids;
  /// Max distance from centroid to any member vertex, per partition.
  std::vector<double> radius_m;

  int32_t num_partitions() const {
    return static_cast<int32_t>(partition_vertices.size());
  }

  PartitionId PartitionOf(VertexId v) const { return vertex_partition[v]; }

  /// Partitions whose bounding circle intersects the query circle — the
  /// map-partition set S_ri of candidate search (paper eq. (3) context).
  std::vector<PartitionId> PartitionsIntersectingCircle(const Point& center,
                                                        double radius) const;
  /// Same set appended into a caller-owned buffer (hot dispatch paths
  /// clear + reuse one buffer per thread instead of allocating per query).
  void AppendPartitionsIntersectingCircle(const Point& center, double radius,
                                          std::vector<PartitionId>* out) const;

  size_t MemoryBytes() const;
};

/// Fills centroids/radius/landmarks from vertex_partition +
/// partition_vertices. Landmark selection: among the `medoid_sample`
/// members nearest the centroid, pick the one minimizing total Euclidean
/// distance to a sample of members (exact medoid is O(n^2)).
void FinalizeGeometry(const RoadNetwork& network, MapPartitioning* partitioning,
                      int32_t medoid_sample = 8);

/// Uniform-grid partitioner over the bounding box with roughly
/// `target_partitions` non-empty cells — the indexing scheme of
/// T-Share/pGreedyDP and the paper's Table V baseline strategy.
MapPartitioning GridPartition(const RoadNetwork& network,
                              int32_t target_partitions);

}  // namespace mtshare

#endif  // MTSHARE_PARTITION_MAP_PARTITIONING_H_
