#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "partition/map_partitioning.h"

namespace mtshare {

std::vector<PartitionId> MapPartitioning::PartitionsIntersectingCircle(
    const Point& center, double radius) const {
  std::vector<PartitionId> out;
  AppendPartitionsIntersectingCircle(center, radius, &out);
  return out;
}

void MapPartitioning::AppendPartitionsIntersectingCircle(
    const Point& center, double radius, std::vector<PartitionId>* out) const {
  for (PartitionId p = 0; p < num_partitions(); ++p) {
    if (Distance(center, centroids[p]) <= radius + radius_m[p]) {
      out->push_back(p);
    }
  }
}

size_t MapPartitioning::MemoryBytes() const {
  size_t bytes = vertex_partition.size() * sizeof(PartitionId) +
                 landmarks.size() * sizeof(VertexId) +
                 centroids.size() * sizeof(Point) +
                 radius_m.size() * sizeof(double);
  for (const auto& members : partition_vertices) {
    bytes += members.size() * sizeof(VertexId);
  }
  return bytes;
}

void FinalizeGeometry(const RoadNetwork& network,
                      MapPartitioning* partitioning, int32_t medoid_sample) {
  const int32_t k = partitioning->num_partitions();
  partitioning->centroids.assign(k, Point{0, 0});
  partitioning->radius_m.assign(k, 0.0);
  partitioning->landmarks.assign(k, kInvalidVertex);

  for (PartitionId p = 0; p < k; ++p) {
    const auto& members = partitioning->partition_vertices[p];
    MTSHARE_CHECK(!members.empty());
    Point centroid{0, 0};
    for (VertexId v : members) {
      centroid.x += network.coord(v).x;
      centroid.y += network.coord(v).y;
    }
    centroid.x /= static_cast<double>(members.size());
    centroid.y /= static_cast<double>(members.size());
    partitioning->centroids[p] = centroid;

    double radius = 0.0;
    for (VertexId v : members) {
      radius = std::max(radius, Distance(network.coord(v), centroid));
    }
    partitioning->radius_m[p] = radius;

    // Candidate landmarks: the medoid_sample members nearest the centroid.
    std::vector<VertexId> candidates(members.begin(), members.end());
    int32_t take = std::min<int32_t>(medoid_sample,
                                     static_cast<int32_t>(candidates.size()));
    std::partial_sort(candidates.begin(), candidates.begin() + take,
                      candidates.end(), [&](VertexId a, VertexId b) {
                        return DistanceSquared(network.coord(a), centroid) <
                               DistanceSquared(network.coord(b), centroid);
                      });
    // Score each candidate by total distance to a bounded member sample.
    const size_t stride = std::max<size_t>(1, members.size() / 64);
    VertexId best = candidates[0];
    double best_score = kInfiniteCost;
    for (int32_t c = 0; c < take; ++c) {
      double score = 0.0;
      for (size_t i = 0; i < members.size(); i += stride) {
        score += Distance(network.coord(candidates[c]),
                          network.coord(members[i]));
      }
      if (score < best_score) {
        best_score = score;
        best = candidates[c];
      }
    }
    partitioning->landmarks[p] = best;
  }
}

MapPartitioning GridPartition(const RoadNetwork& network,
                              int32_t target_partitions) {
  MTSHARE_CHECK(target_partitions > 0);
  MTSHARE_CHECK(network.num_vertices() > 0);
  const BoundingBox& box = network.bounds();
  double width = std::max(box.Width(), 1.0);
  double height = std::max(box.Height(), 1.0);
  // Choose a cell lattice with ~target_partitions cells at the box aspect.
  double aspect = width / height;
  int32_t ny = std::max<int32_t>(
      1, static_cast<int32_t>(std::round(std::sqrt(target_partitions / aspect))));
  int32_t nx = std::max<int32_t>(
      1, static_cast<int32_t>(std::round(static_cast<double>(target_partitions) / ny)));

  auto cell_of = [&](const Point& p) {
    int32_t cx = std::clamp(
        static_cast<int32_t>((p.x - box.min.x) / width * nx), 0, nx - 1);
    int32_t cy = std::clamp(
        static_cast<int32_t>((p.y - box.min.y) / height * ny), 0, ny - 1);
    return cy * nx + cx;
  };

  // Map occupied cells to dense partition ids.
  std::vector<PartitionId> cell_partition(static_cast<size_t>(nx) * ny,
                                          kInvalidPartition);
  MapPartitioning out;
  out.vertex_partition.resize(network.num_vertices());
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    int32_t cell = cell_of(network.coord(v));
    if (cell_partition[cell] == kInvalidPartition) {
      cell_partition[cell] = static_cast<PartitionId>(
          out.partition_vertices.size());
      out.partition_vertices.emplace_back();
    }
    PartitionId p = cell_partition[cell];
    out.vertex_partition[v] = p;
    out.partition_vertices[p].push_back(v);
  }
  FinalizeGeometry(network, &out);
  return out;
}

}  // namespace mtshare
