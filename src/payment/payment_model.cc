#include "payment/payment_model.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {

double RegularFare(double distance_m, const PaymentConfig& config) {
  MTSHARE_CHECK(distance_m >= 0.0);
  double km = distance_m / 1000.0;
  if (km <= config.base_km) return config.base_fare;
  return config.base_fare + (km - config.base_km) * config.per_km;
}

EpisodeSettlement SettleEpisode(const std::vector<EpisodePassenger>& riders,
                                double episode_driven_m,
                                const PaymentConfig& config) {
  MTSHARE_CHECK(!riders.empty());
  EpisodeSettlement out;
  out.ridesharing_fare = RegularFare(episode_driven_m, config);

  double total_regular = 0.0;
  double sigma_sum = 0.0;
  out.passengers.reserve(riders.size());
  for (const EpisodePassenger& r : riders) {
    MTSHARE_CHECK(r.direct_m > 0.0);
    PassengerSettlement p;
    p.request = r.request;
    p.regular_fare = RegularFare(r.direct_m, config);
    // sigma_i = eta + detour distance / direct distance (eq. 6); clamp the
    // detour at zero against numeric jitter.
    double detour = std::max(0.0, r.traveled_m - r.direct_m);
    p.detour_rate = config.eta + detour / r.direct_m;
    total_regular += p.regular_fare;
    sigma_sum += p.detour_rate;
    out.passengers.push_back(p);
  }

  double benefit = total_regular - out.ridesharing_fare;
  if (benefit <= 0.0 || sigma_sum <= 0.0) {
    // No shared benefit: everyone pays the regular fare (no-loss
    // guarantee); the driver collects them all.
    out.benefit = 0.0;
    for (PassengerSettlement& p : out.passengers) {
      p.shared_fare = p.regular_fare;
    }
    out.driver_income = total_regular;
    return out;
  }

  out.benefit = benefit;
  double passenger_pool = config.beta * benefit;
  for (PassengerSettlement& p : out.passengers) {
    p.shared_fare =
        p.regular_fare - passenger_pool * (p.detour_rate / sigma_sum);
  }
  out.driver_income = out.ridesharing_fare + (1.0 - config.beta) * benefit;
  return out;
}

}  // namespace mtshare
