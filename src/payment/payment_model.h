#ifndef MTSHARE_PAYMENT_PAYMENT_MODEL_H_
#define MTSHARE_PAYMENT_PAYMENT_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mtshare {

/// Parameters of the benefit-sharing payment model (paper Sec. IV-D).
struct PaymentConfig {
  /// Share of the ridesharing benefit going to passengers as a group
  /// (Table II default 0.80; the driver keeps 1 - beta).
  double beta = 0.80;
  /// Base detour rate eta guaranteeing zero-detour passengers still gain
  /// (Table II default 0.01).
  double eta = 0.01;
  /// Regular taxi tariff: flag fare covering the first base_km, then a
  /// per-km rate (Chengdu-style tariff).
  double base_fare = 8.0;
  double base_km = 2.0;
  double per_km = 1.9;
};

/// Fare of a regular (non-shared) taxi ride over `distance_m` meters.
double RegularFare(double distance_m, const PaymentConfig& config);

/// One passenger's view of a settled ridesharing episode.
struct PassengerSettlement {
  RequestId request = kInvalidRequest;
  double regular_fare = 0.0;  ///< f^s: what the trip would cost unshared
  double shared_fare = 0.0;   ///< f (eq. 8): what the passenger pays
  double detour_rate = 0.0;   ///< sigma (eqs. 6/7)
};

/// Input per passenger of an episode.
struct EpisodePassenger {
  RequestId request = kInvalidRequest;
  double direct_m = 0.0;    ///< shortest-path trip length
  double traveled_m = 0.0;  ///< distance actually ridden aboard the taxi
};

/// Outcome of settling one ridesharing episode (a maximal occupied
/// interval of one taxi).
struct EpisodeSettlement {
  double benefit = 0.0;        ///< B (eq. 5), clamped at >= 0
  double ridesharing_fare = 0.0;  ///< F: regular fare of the driven distance
  double driver_income = 0.0;  ///< F + (1 - beta) * B
  std::vector<PassengerSettlement> passengers;
};

/// Applies eqs. (5)-(8): B = sum f^s - F split between driver (1-beta) and
/// passengers (beta), the passenger share divided in proportion to detour
/// rates sigma_i = eta + (traveled - direct) / direct.
///
/// When the episode yields no positive benefit (e.g., a single passenger on
/// a probabilistic detour), every passenger pays exactly the regular fare
/// (the model's no-loss guarantee) and the driver collects those fares.
EpisodeSettlement SettleEpisode(const std::vector<EpisodePassenger>& riders,
                                double episode_driven_m,
                                const PaymentConfig& config);

}  // namespace mtshare

#endif  // MTSHARE_PAYMENT_PAYMENT_MODEL_H_
