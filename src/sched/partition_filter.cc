#include "sched/partition_filter.h"

#include "common/logging.h"

namespace mtshare {

PartitionFilter::PartitionFilter(const RoadNetwork& network,
                                 const MapPartitioning& partitioning,
                                 const LandmarkGraph& landmark_graph,
                                 double lambda, double epsilon)
    : network_(network),
      partitioning_(partitioning),
      landmarks_(landmark_graph),
      lambda_(lambda),
      epsilon_(epsilon) {
  MTSHARE_CHECK(lambda >= -1.0 && lambda <= 1.0);
  MTSHARE_CHECK(epsilon >= 0.0);
}

std::vector<PartitionId> PartitionFilter::Filter(VertexId from,
                                                 VertexId to) const {
  const PartitionId pz = partitioning_.PartitionOf(from);
  const PartitionId pz1 = partitioning_.PartitionOf(to);
  std::vector<PartitionId> kept;
  kept.push_back(pz);
  if (pz1 != pz) kept.push_back(pz1);
  if (pz == pz1) {
    // Intra-partition leg: nothing to prune against.
    return kept;
  }

  const VertexId lz = partitioning_.landmarks[pz];
  const VertexId lz1 = partitioning_.landmarks[pz1];
  const Point& a = network_.coord(lz);
  const Point& b = network_.coord(lz1);
  const Point leg_dir{b.x - a.x, b.y - a.y};
  const Seconds direct = landmarks_.LandmarkCost(pz, pz1);

  for (PartitionId p = 0; p < partitioning_.num_partitions(); ++p) {
    if (p == pz || p == pz1) continue;
    // Travel-direction rule: vector landmark(z) -> landmark(p) vs leg.
    const Point& c = network_.coord(partitioning_.landmarks[p]);
    const Point via_dir{c.x - a.x, c.y - a.y};
    if (DirectionCosine(via_dir, leg_dir) < lambda_) continue;
    // Travel-cost rule: detour via p within (1 + epsilon) of direct.
    const Seconds via = landmarks_.LandmarkCost(pz, p) +
                        landmarks_.LandmarkCost(p, pz1);
    if (via > (1.0 + epsilon_) * direct) continue;
    kept.push_back(p);
  }
  return kept;
}

void PartitionFilter::AddToMask(const std::vector<PartitionId>& partitions,
                                std::vector<uint8_t>* mask) const {
  MTSHARE_CHECK(static_cast<int32_t>(mask->size()) ==
                network_.num_vertices());
  for (PartitionId p : partitions) {
    for (VertexId v : partitioning_.partition_vertices[p]) {
      (*mask)[v] = 1;
    }
  }
}

double PartitionFilter::RetainedVertexFraction(
    const std::vector<PartitionId>& kept) const {
  size_t retained = 0;
  for (PartitionId p : kept) {
    retained += partitioning_.partition_vertices[p].size();
  }
  return static_cast<double>(retained) /
         static_cast<double>(network_.num_vertices());
}

}  // namespace mtshare
