#include "sched/schedule.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {

void Schedule::PopFront() {
  MTSHARE_CHECK(!empty());
  ++head_;
  if (head_ == events_.size()) {
    events_.clear();
    head_ = 0;
  }
}

void Schedule::EraseRequest(RequestId request) {
  events_.erase(std::remove_if(events_.begin() + head_, events_.end(),
                               [&](const ScheduleEvent& e) {
                                 return e.request == request;
                               }),
                events_.end());
  if (head_ == events_.size()) {
    events_.clear();
    head_ = 0;
  }
}

Schedule Schedule::WithInsertion(const Schedule& base, const RideRequest& r,
                                 size_t pickup_pos, size_t dropoff_pos) {
  MTSHARE_CHECK(pickup_pos <= dropoff_pos);
  MTSHARE_CHECK(dropoff_pos <= base.size());
  ScheduleEvent pickup{r.id, r.origin, true, r.PickupDeadline(), r.passengers};
  ScheduleEvent dropoff{r.id, r.destination, false, r.deadline, r.passengers};
  Schedule out;
  out.events_.reserve(base.size() + 2);
  for (size_t k = 0; k <= base.size(); ++k) {
    if (k == pickup_pos) out.events_.push_back(pickup);
    if (k == dropoff_pos) out.events_.push_back(dropoff);
    if (k < base.size()) out.events_.push_back(base.at(k));
  }
  return out;
}

int32_t Schedule::FinalOnboard(int32_t onboard) const {
  for (const ScheduleEvent& e : events()) {
    onboard += e.is_pickup ? e.passengers : -e.passengers;
  }
  return onboard;
}

ScheduleCheck CheckSchedule(const Schedule& schedule, VertexId start_vertex,
                            Seconds start_time, int32_t onboard,
                            int32_t capacity, const LegCostFn& leg_cost) {
  ScheduleCheck check;
  if (onboard > capacity) return check;
  Seconds time = start_time;
  Seconds travel = 0.0;
  VertexId at = start_vertex;
  int32_t load = onboard;
  check.event_arrivals.reserve(schedule.size());
  for (const ScheduleEvent& e : schedule.events()) {
    Seconds leg = leg_cost(at, e.vertex);
    if (leg == kInfiniteCost) return ScheduleCheck{};
    time += leg;
    travel += leg;
    if (time > e.deadline) return ScheduleCheck{};
    load += e.is_pickup ? e.passengers : -e.passengers;
    if (load > capacity || load < 0) return ScheduleCheck{};
    check.event_arrivals.push_back(time);
    at = e.vertex;
  }
  check.feasible = true;
  check.total_travel = travel;
  check.completion_time = time;
  return check;
}

InsertionResult FindBestInsertion(const Schedule& base, const RideRequest& r,
                                  VertexId taxi_location, Seconds now,
                                  int32_t onboard, int32_t capacity,
                                  const LegCostFn& leg_cost,
                                  const InsertionSlotMask* slot_mask) {
  InsertionResult best;
  ScheduleCheck base_check =
      CheckSchedule(base, taxi_location, now, onboard, capacity, leg_cost);
  if (!base_check.feasible) return best;

  for (size_t i = 0; i <= base.size(); ++i) {
    if (slot_mask != nullptr && !slot_mask->pickup[i]) continue;
    for (size_t j = i; j <= base.size(); ++j) {
      if (slot_mask != nullptr && !slot_mask->dropoff[j]) continue;
      Schedule candidate = Schedule::WithInsertion(base, r, i, j);
      ScheduleCheck check = CheckSchedule(candidate, taxi_location, now,
                                          onboard, capacity, leg_cost);
      if (!check.feasible) continue;
      Seconds detour = check.total_travel - base_check.total_travel;
      if (detour < best.detour) {
        best.found = true;
        best.pickup_pos = i;
        best.dropoff_pos = j;
        best.detour = detour;
        best.schedule = std::move(candidate);
        best.check = std::move(check);
      }
    }
  }
  return best;
}

InsertionResult FindBestInsertionDp(const Schedule& base, const RideRequest& r,
                                    VertexId taxi_location, Seconds now,
                                    int32_t onboard, int32_t capacity,
                                    const LegCostFn& leg_cost,
                                    const InsertionSlotMask* slot_mask) {
  const size_t m = base.size();
  const auto& ev = base.events();
  if (onboard > capacity) return InsertionResult{};

  // Prefix arrival times, loads, and suffix deadline slack of the base
  // schedule (the pGreedyDP precomputation).
  std::vector<Seconds> arr(m, 0.0);
  std::vector<int32_t> load_after(m, 0);
  {
    Seconds t = now;
    VertexId at = taxi_location;
    int32_t load = onboard;
    for (size_t k = 0; k < m; ++k) {
      Seconds leg = leg_cost(at, ev[k].vertex);
      if (leg == kInfiniteCost) return InsertionResult{};
      t += leg;
      if (t > ev[k].deadline) return InsertionResult{};  // base infeasible
      load += ev[k].is_pickup ? ev[k].passengers : -ev[k].passengers;
      if (load > capacity || load < 0) return InsertionResult{};
      arr[k] = t;
      load_after[k] = load;
      at = ev[k].vertex;
    }
  }
  std::vector<Seconds> slack_suffix(m + 1, kInfiniteCost);
  for (size_t k = m; k-- > 0;) {
    slack_suffix[k] = std::min(slack_suffix[k + 1], ev[k].deadline - arr[k]);
  }

  const Seconds pickup_deadline = r.PickupDeadline();
  const int32_t pax = r.passengers;
  InsertionResult best;

  for (size_t i = 0; i <= m; ++i) {
    if (slot_mask != nullptr && !slot_mask->pickup[i]) continue;
    const VertexId prev_i = (i == 0) ? taxi_location : ev[i - 1].vertex;
    const Seconds t_prev = (i == 0) ? now : arr[i - 1];
    const int32_t load_before_i = (i == 0) ? onboard : load_after[i - 1];
    if (load_before_i + pax > capacity) continue;

    const Seconds to_pickup = leg_cost(prev_i, r.origin);
    if (to_pickup == kInfiniteCost) continue;
    const Seconds pickup_t = t_prev + to_pickup;
    if (pickup_t > pickup_deadline) continue;

    // Case j == i: dropoff immediately follows pickup.
    if (slot_mask == nullptr || slot_mask->dropoff[i]) {
      const Seconds ride = leg_cost(r.origin, r.destination);
      if (ride != kInfiniteCost) {
        const Seconds drop_t = pickup_t + ride;
        if (drop_t <= r.deadline) {
          Seconds detour;
          bool ok = true;
          if (i < m) {
            const Seconds back = leg_cost(r.destination, ev[i].vertex);
            const Seconds old_leg = leg_cost(prev_i, ev[i].vertex);
            if (back == kInfiniteCost) {
              ok = false;
              detour = kInfiniteCost;
            } else {
              detour = to_pickup + ride + back - old_leg;
              ok = detour <= slack_suffix[i];
            }
          } else {
            detour = to_pickup + ride;
          }
          if (ok && detour < best.detour) {
            best.found = true;
            best.pickup_pos = i;
            best.dropoff_pos = i;
            best.detour = detour;
          }
        }
      }
    }

    if (i == m) continue;  // no later dropoff positions exist

    // Case j > i: the pickup displaces leg (prev_i -> v_i) by d1; scan j
    // upward maintaining the running deadline-gap and load maxima over
    // events [i, j).
    const Seconds into_i = leg_cost(r.origin, ev[i].vertex);
    const Seconds old_leg_i = leg_cost(prev_i, ev[i].vertex);
    if (into_i == kInfiniteCost) continue;
    const Seconds d1 = to_pickup + into_i - old_leg_i;

    Seconds min_gap = kInfiniteCost;   // min(deadline_k - arr_k), k in [i, j)
    int32_t max_load = load_before_i;  // max load carried while rider aboard
    for (size_t j = i + 1; j <= m; ++j) {
      // Extend the window with event j-1.
      min_gap = std::min(min_gap, ev[j - 1].deadline - arr[j - 1]);
      max_load = std::max(max_load, load_after[j - 1]);
      if (d1 > min_gap) break;                // later j only shrinks min_gap
      if (max_load + pax > capacity) break;   // and grows max_load
      if (slot_mask != nullptr && !slot_mask->dropoff[j]) continue;

      const VertexId prev_j = ev[j - 1].vertex;
      const Seconds to_drop = leg_cost(prev_j, r.destination);
      if (to_drop == kInfiniteCost) continue;
      const Seconds drop_t = arr[j - 1] + d1 + to_drop;
      if (drop_t > r.deadline) continue;

      Seconds detour;
      bool ok = true;
      if (j < m) {
        const Seconds back = leg_cost(r.destination, ev[j].vertex);
        const Seconds old_leg_j = leg_cost(prev_j, ev[j].vertex);
        if (back == kInfiniteCost) {
          ok = false;
          detour = kInfiniteCost;
        } else {
          const Seconds d2 = to_drop + back - old_leg_j;
          detour = d1 + d2;
          ok = detour <= slack_suffix[j];
        }
      } else {
        detour = d1 + to_drop;
      }
      if (ok && detour < best.detour) {
        best.found = true;
        best.pickup_pos = i;
        best.dropoff_pos = j;
        best.detour = detour;
      }
    }
  }

  if (best.found) {
    best.schedule =
        Schedule::WithInsertion(base, r, best.pickup_pos, best.dropoff_pos);
    best.check = CheckSchedule(best.schedule, taxi_location, now, onboard,
                               capacity, leg_cost);
    if (!best.check.feasible) {
      // The DP's algebraic test and the re-walk accumulate leg costs in
      // different orders; on an exact deadline boundary they can disagree
      // by an ulp. Defer to the walk-based search, whose winner is
      // feasible by construction.
      return FindBestInsertion(base, r, taxi_location, now, onboard,
                               capacity, leg_cost, slot_mask);
    }
  }
  return best;
}

}  // namespace mtshare
