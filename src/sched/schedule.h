#ifndef MTSHARE_SCHED_SCHEDULE_H_
#define MTSHARE_SCHED_SCHEDULE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/types.h"
#include "demand/request.h"

namespace mtshare {

/// One pickup or dropoff stop in a taxi schedule (paper Def. 4).
struct ScheduleEvent {
  RequestId request = kInvalidRequest;
  VertexId vertex = kInvalidVertex;
  bool is_pickup = false;
  /// Latest permissible execution time: the request's delivery deadline for
  /// dropoffs, its pickup deadline for pickups.
  Seconds deadline = 0.0;
  /// Party size of the request (capacity delta: + on pickup, - on dropoff).
  int32_t passengers = 1;
};

/// Travel-cost callback used by feasibility checks — typically bound to
/// DistanceOracle::Cost, giving the O(1) queries the paper assumes.
using LegCostFn = std::function<Seconds(VertexId, VertexId)>;

/// Read-only view over the pending events of a Schedule. PopFront advances
/// a cursor instead of shifting storage, so the view starts past any
/// already-executed prefix.
class EventSpan {
 public:
  using const_iterator = const ScheduleEvent*;

  EventSpan(const ScheduleEvent* begin, const ScheduleEvent* end)
      : begin_(begin), end_(end) {}

  const_iterator begin() const { return begin_; }
  const_iterator end() const { return end_; }
  size_t size() const { return static_cast<size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  const ScheduleEvent& front() const { return *begin_; }
  const ScheduleEvent& operator[](size_t i) const { return begin_[i]; }

 private:
  const ScheduleEvent* begin_;
  const ScheduleEvent* end_;
};

/// An ordered event list S_tj. Pickup of a request always precedes its
/// dropoff. The schedule does not know taxi position/time; those are
/// supplied to the checking functions.
class Schedule {
 public:
  Schedule() = default;

  EventSpan events() const {
    return EventSpan(events_.data() + head_, events_.data() + events_.size());
  }
  bool empty() const { return head_ == events_.size(); }
  size_t size() const { return events_.size() - head_; }
  const ScheduleEvent& at(size_t i) const { return events_[head_ + i]; }

  /// Appends an event (building-block; prefer WithInsertion).
  void Append(const ScheduleEvent& event) { events_.push_back(event); }

  /// Removes the first event (after the taxi executes it). O(1): advances
  /// the head cursor; storage is reclaimed once the schedule drains.
  void PopFront();

  /// Drops both events of a request (e.g., a rider cancellation).
  void EraseRequest(RequestId request);

  /// New schedule with the request's pickup inserted before position
  /// `pickup_pos` and dropoff before `dropoff_pos` of the *original* event
  /// list (pickup_pos <= dropoff_pos <= size()). Existing event order is
  /// preserved — the paper's design choice shared with prior work
  /// (Sec. IV-C2).
  static Schedule WithInsertion(const Schedule& base, const RideRequest& r,
                                size_t pickup_pos, size_t dropoff_pos);

  /// Number of riders that will be aboard after all events execute, given
  /// `onboard` currently in the taxi (sanity helper; 0 for consistent
  /// schedules that drop off everyone).
  int32_t FinalOnboard(int32_t onboard) const;

 private:
  std::vector<ScheduleEvent> events_;
  /// Index of the first pending event; [0, head_) were already executed.
  size_t head_ = 0;
};

/// Outcome of walking a schedule from the taxi's position.
struct ScheduleCheck {
  bool feasible = false;
  /// Total travel seconds from the start vertex through every event.
  Seconds total_travel = 0.0;
  /// Absolute time the last event executes.
  Seconds completion_time = 0.0;
  /// Absolute arrival time per event (valid when feasible).
  std::vector<Seconds> event_arrivals;
};

/// Simulates the schedule: starting at `start_vertex` at `start_time` with
/// `onboard` riders, drives leg-by-leg using `leg_cost`, enforcing each
/// event's deadline and the capacity bound at every moment (paper Sec. III-C
/// constraints).
ScheduleCheck CheckSchedule(const Schedule& schedule, VertexId start_vertex,
                            Seconds start_time, int32_t onboard,
                            int32_t capacity, const LegCostFn& leg_cost);

/// Result of searching all insertion positions of a request into a schedule.
struct InsertionResult {
  bool found = false;
  size_t pickup_pos = 0;
  size_t dropoff_pos = 0;
  /// Increase in total travel vs. the unmodified schedule — the detour cost
  /// omega of paper eq. (4)/Algorithm 1.
  Seconds detour = kInfiniteCost;
  Schedule schedule;   // the winning instance
  ScheduleCheck check;  // its feasibility walk
};

/// Per-slot screen for insertion search: slot i (insert before base event
/// i; i == size() appends) participates only while its flag is nonzero.
/// Producers (the detour-ellipse screen, DESIGN.md §14) may only clear
/// slots that are PROVABLY infeasible — the searches below skip cleared
/// slots without checking them, so an over-eager mask would change the
/// returned optimum. Both vectors must have size() + 1 entries.
struct InsertionSlotMask {
  std::vector<uint8_t> pickup;
  std::vector<uint8_t> dropoff;
};

/// Enumerates all (pickup_pos <= dropoff_pos) insertions of `r` into `base`
/// (O(m^2) instances, each checked in O(m)) and returns the feasible
/// instance with minimum detour. This is the exhaustive scan of paper
/// Algorithm 1's inner loop. `slot_mask` (optional) skips screened-out
/// slots.
InsertionResult FindBestInsertion(const Schedule& base, const RideRequest& r,
                                  VertexId taxi_location, Seconds now,
                                  int32_t onboard, int32_t capacity,
                                  const LegCostFn& leg_cost,
                                  const InsertionSlotMask* slot_mask = nullptr);

/// Same optimum as FindBestInsertion, computed with the dynamic-programming
/// slack precomputation of the pGreedyDP baseline (Tong et al., VLDB'18):
/// prefix arrival times and suffix slack arrays make each candidate pair
/// O(1) to evaluate after O(m) setup, so the whole search is O(m^2) instead
/// of O(m^3).
InsertionResult FindBestInsertionDp(
    const Schedule& base, const RideRequest& r, VertexId taxi_location,
    Seconds now, int32_t onboard, int32_t capacity, const LegCostFn& leg_cost,
    const InsertionSlotMask* slot_mask = nullptr);

}  // namespace mtshare

#endif  // MTSHARE_SCHED_SCHEDULE_H_
