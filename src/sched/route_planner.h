#ifndef MTSHARE_SCHED_ROUTE_PLANNER_H_
#define MTSHARE_SCHED_ROUTE_PLANNER_H_

#include <cstdint>
#include <vector>

#include "mobility/transition_model.h"
#include "routing/distance_oracle.h"
#include "sched/partition_filter.h"
#include "sched/schedule.h"

namespace mtshare {

struct RoutePlannerOptions {
  /// Direction threshold lambda shared by partition filtering and the
  /// suitable-destination test (Table II default 0.707 == 45 degrees).
  double lambda = 0.707;
  /// Cost-rule slack epsilon (paper sets 1.0 conservatively).
  double epsilon = 1.0;
  /// Probabilistic routing retries before discarding (paper: 5).
  int32_t max_attempts = 5;
  /// Bound on enumerated landmark paths per leg (the paper enumerates all
  /// paths of the small filtered landmark graph; we cap for safety).
  int32_t max_partition_paths = 64;
  /// Bound on landmark-path hops during enumeration.
  int32_t max_path_hops = 10;
  /// Cap on a probabilistic leg's travel relative to its shortest leg:
  /// budget = min(deadline slack, shortest * stretch + slack_s). Keeps the
  /// offline-seeking detour from consuming the very slack needed to insert
  /// an encountered hailer (the probability/detour trade-off the paper
  /// defers to future work, Sec. IV-C2).
  double prob_max_stretch = 1.5;
  Seconds prob_extra_slack = 90.0;
};

/// Two-phase route planning (paper Sec. IV-C2): partition filtering plus
/// segment-level routing, in basic (shortest path, Algorithm 3) or
/// probabilistic (offline-request seeking, Algorithm 4) mode.
///
/// Not thread-safe; owns reusable search buffers.
class RoutePlanner {
 public:
  /// `transitions` may be null when only basic routing is used; when
  /// provided, its group space must be the partitioning's partitions.
  RoutePlanner(const RoadNetwork& network, const MapPartitioning& partitioning,
               const LandmarkGraph& landmark_graph,
               const TransitionModel* transitions, DistanceOracle* oracle,
               const RoutePlannerOptions& options);

  /// Algorithm 3 for one leg: shortest path on the partition-filtered
  /// subgraph; falls back to the unrestricted graph if the filtered
  /// subgraph disconnects the endpoints.
  Path PlanBasicLeg(VertexId from, VertexId to);

  /// Algorithm 4 for one leg: maximize the probability of encountering
  /// direction-compatible offline requests, subject to the leg completing
  /// within `travel_budget` seconds. `taxi_direction` is the displacement
  /// of the taxi's mobility vector. Returns an invalid path when no
  /// attempt satisfies the budget (caller falls back or discards).
  Path PlanProbabilisticLeg(VertexId from, VertexId to,
                            const Point& taxi_direction,
                            Seconds travel_budget);

  /// A materialized route for a whole schedule.
  struct PlannedRoute {
    bool valid = false;
    Path path;                            ///< concatenated leg paths
    std::vector<Seconds> event_arrivals;  ///< absolute arrival per event
  };

  /// Plans every leg of `schedule` starting from `start` at `start_time`.
  /// In probabilistic mode each leg gets the largest travel budget that
  /// keeps all remaining deadlines reachable (assuming shortest-path legs
  /// afterwards); legs where probabilistic planning fails fall back to
  /// basic. Returns invalid if any deadline is missed.
  PlannedRoute PlanRoute(VertexId start, Seconds start_time,
                         const Schedule& schedule, bool probabilistic,
                         const Point& taxi_direction = Point{0, 0});

  /// Probability mass of meeting suitable requests inside partition `p`
  /// for a taxi heading along `taxi_direction` (Algorithm 4 step 1);
  /// exposed for tests and the routing-mode benches.
  double PartitionEncounterMass(PartitionId p,
                                const Point& taxi_direction) const;

  int64_t basic_legs() const { return basic_legs_; }
  int64_t probabilistic_legs() const { return prob_legs_; }
  int64_t probabilistic_fallbacks() const { return prob_fallbacks_; }

 private:
  /// Destination partitions compatible with the taxi direction from
  /// partition p.
  std::vector<int32_t> SuitableDestinations(PartitionId p,
                                            const Point& taxi_direction) const;

  /// Enumerates simple landmark paths from `pz` to `pz1` within the kept
  /// partitions, ordered by descending accumulated encounter mass.
  std::vector<std::vector<PartitionId>> EnumeratePartitionPaths(
      const std::vector<PartitionId>& kept, PartitionId pz, PartitionId pz1,
      const Point& taxi_direction) const;

  void ClearMask();

  const RoadNetwork& network_;
  const MapPartitioning& partitioning_;
  const LandmarkGraph& landmarks_;
  const TransitionModel* transitions_;
  DistanceOracle* oracle_;
  RoutePlannerOptions options_;
  PartitionFilter filter_;
  DijkstraSearch dijkstra_;

  /// Partition-to-partition transition mass: sum over vertices of the row
  /// partition of their transition probability into the column partition.
  std::vector<double> partition_transition_;  // kappa x kappa, row-major

  std::vector<uint8_t> mask_;
  std::vector<PartitionId> mask_partitions_;  // partitions currently set
  std::vector<double> vertex_weights_;

  int64_t basic_legs_ = 0;
  int64_t prob_legs_ = 0;
  int64_t prob_fallbacks_ = 0;
};

}  // namespace mtshare

#endif  // MTSHARE_SCHED_ROUTE_PLANNER_H_
