#include "sched/route_planner.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {
namespace {

constexpr double kPsiFloor = 1e-6;  // avoids division by zero in 1/psi

}  // namespace

RoutePlanner::RoutePlanner(const RoadNetwork& network,
                           const MapPartitioning& partitioning,
                           const LandmarkGraph& landmark_graph,
                           const TransitionModel* transitions,
                           DistanceOracle* oracle,
                           const RoutePlannerOptions& options)
    : network_(network),
      partitioning_(partitioning),
      landmarks_(landmark_graph),
      transitions_(transitions),
      oracle_(oracle),
      options_(options),
      filter_(network, partitioning, landmark_graph, options.lambda,
              options.epsilon),
      dijkstra_(network),
      mask_(network.num_vertices(), 0),
      vertex_weights_(network.num_vertices(), 0.0) {
  MTSHARE_CHECK(oracle != nullptr);
  const int32_t k = partitioning.num_partitions();
  if (transitions_ != nullptr) {
    MTSHARE_CHECK(transitions_->num_groups() == k);
    MTSHARE_CHECK(transitions_->num_vertices() == network.num_vertices());
    partition_transition_.assign(static_cast<size_t>(k) * k, 0.0);
    for (VertexId v = 0; v < network.num_vertices(); ++v) {
      PartitionId p = partitioning.PartitionOf(v);
      const double* row = transitions_->Row(v);
      for (int32_t q = 0; q < k; ++q) {
        partition_transition_[static_cast<size_t>(p) * k + q] += row[q];
      }
    }
  }
}

void RoutePlanner::ClearMask() {
  for (PartitionId p : mask_partitions_) {
    for (VertexId v : partitioning_.partition_vertices[p]) mask_[v] = 0;
  }
  mask_partitions_.clear();
}

Path RoutePlanner::PlanBasicLeg(VertexId from, VertexId to) {
  ++basic_legs_;
  if (from == to) return Path::Trivial(from);
  std::vector<PartitionId> kept = filter_.Filter(from, to);
  ClearMask();
  filter_.AddToMask(kept, &mask_);
  mask_partitions_ = kept;
  SearchOptions sopt;
  sopt.allowed_vertices = &mask_;
  Path path = dijkstra_.FindPath(from, to, sopt);
  if (!path.valid) {
    // Filtered subgraph disconnected the endpoints; retry unrestricted.
    path = dijkstra_.FindPath(from, to);
  }
  return path;
}

std::vector<int32_t> RoutePlanner::SuitableDestinations(
    PartitionId p, const Point& taxi_direction) const {
  std::vector<int32_t> dests;
  const Point& from = network_.coord(partitioning_.landmarks[p]);
  bool no_direction =
      taxi_direction.x == 0.0 && taxi_direction.y == 0.0;
  for (PartitionId q = 0; q < partitioning_.num_partitions(); ++q) {
    if (q == p) continue;
    if (!no_direction) {
      const Point& to = network_.coord(partitioning_.landmarks[q]);
      Point dir{to.x - from.x, to.y - from.y};
      if (DirectionCosine(dir, taxi_direction) < options_.lambda) continue;
    }
    dests.push_back(q);
  }
  return dests;
}

double RoutePlanner::PartitionEncounterMass(
    PartitionId p, const Point& taxi_direction) const {
  if (transitions_ == nullptr) return 0.0;
  const int32_t k = partitioning_.num_partitions();
  double mass = 0.0;
  for (int32_t q : SuitableDestinations(p, taxi_direction)) {
    mass += partition_transition_[static_cast<size_t>(p) * k + q];
  }
  return mass;
}

std::vector<std::vector<PartitionId>> RoutePlanner::EnumeratePartitionPaths(
    const std::vector<PartitionId>& kept, PartitionId pz, PartitionId pz1,
    const Point& taxi_direction) const {
  // Per-partition encounter mass (Algorithm 4 step 1).
  std::vector<double> mass(partitioning_.num_partitions(), 0.0);
  std::vector<uint8_t> in_kept(partitioning_.num_partitions(), 0);
  for (PartitionId p : kept) {
    in_kept[p] = 1;
    mass[p] = PartitionEncounterMass(p, taxi_direction);
  }

  // Depth-first enumeration of simple paths, greedy-heavy-first so that
  // early truncation keeps the strongest candidates.
  struct PathAcc {
    std::vector<PartitionId> path;
    double weight;
  };
  std::vector<PathAcc> found;
  std::vector<PartitionId> current;
  std::vector<uint8_t> visited(partitioning_.num_partitions(), 0);

  struct Frame {
    PartitionId node;
    std::vector<PartitionId> neighbors;
    size_t next = 0;
  };
  auto sorted_neighbors = [&](PartitionId p) {
    std::vector<PartitionId> nbrs;
    for (PartitionId q : landmarks_.Neighbors(p)) {
      if (in_kept[q] && !visited[q]) nbrs.push_back(q);
    }
    std::sort(nbrs.begin(), nbrs.end(), [&](PartitionId a, PartitionId b) {
      return mass[a] > mass[b];
    });
    return nbrs;
  };

  std::vector<Frame> stack;
  current.push_back(pz);
  visited[pz] = 1;
  if (pz == pz1) {
    found.push_back({current, mass[pz]});
  } else {
    stack.push_back({pz, sorted_neighbors(pz), 0});
    while (!stack.empty() &&
           static_cast<int32_t>(found.size()) < options_.max_partition_paths) {
      Frame& frame = stack.back();
      if (frame.next >= frame.neighbors.size() ||
          static_cast<int32_t>(current.size()) > options_.max_path_hops) {
        visited[frame.node] = 0;
        current.pop_back();
        stack.pop_back();
        continue;
      }
      PartitionId next = frame.neighbors[frame.next++];
      if (visited[next]) continue;
      current.push_back(next);
      if (next == pz1) {
        double w = 0.0;
        for (PartitionId p : current) w += mass[p];
        found.push_back({current, w});
        current.pop_back();
      } else {
        visited[next] = 1;
        stack.push_back({next, sorted_neighbors(next), 0});
      }
    }
  }

  std::stable_sort(found.begin(), found.end(),
                   [](const PathAcc& a, const PathAcc& b) {
                     return a.weight > b.weight;
                   });
  std::vector<std::vector<PartitionId>> out;
  out.reserve(found.size());
  for (PathAcc& acc : found) out.push_back(std::move(acc.path));
  return out;
}

Path RoutePlanner::PlanProbabilisticLeg(VertexId from, VertexId to,
                                        const Point& taxi_direction,
                                        Seconds travel_budget) {
  ++prob_legs_;
  MTSHARE_CHECK(transitions_ != nullptr);
  if (from == to) return Path::Trivial(from);

  // Hopeless budgets fall back immediately (cheaper than a doomed search).
  if (oracle_->Cost(from, to) > travel_budget) {
    ++prob_fallbacks_;
    return Path::Invalid();
  }

  std::vector<PartitionId> kept = filter_.Filter(from, to);
  PartitionId pz = partitioning_.PartitionOf(from);
  PartitionId pz1 = partitioning_.PartitionOf(to);
  std::vector<std::vector<PartitionId>> partition_paths =
      EnumeratePartitionPaths(kept, pz, pz1, taxi_direction);

  int32_t attempts =
      std::min<int32_t>(options_.max_attempts,
                        static_cast<int32_t>(partition_paths.size()));
  for (int32_t attempt = 0; attempt < attempts; ++attempt) {
    const auto& path_partitions = partition_paths[attempt];
    ClearMask();
    filter_.AddToMask(path_partitions, &mask_);
    mask_partitions_ = path_partitions;
    // Fine-grained weights (Algorithm 4 step 3): 1/psi_c where psi_c is the
    // vertex's transition mass toward its partition's suitable destinations.
    for (PartitionId p : path_partitions) {
      std::vector<int32_t> dests = SuitableDestinations(p, taxi_direction);
      for (VertexId v : partitioning_.partition_vertices[p]) {
        double psi = transitions_->MassTowards(v, dests);
        vertex_weights_[v] = 1.0 / (psi + kPsiFloor);
      }
    }
    SearchOptions sopt;
    sopt.allowed_vertices = &mask_;
    sopt.vertex_weights = &vertex_weights_;
    sopt.max_travel = travel_budget;
    Path path = dijkstra_.FindPath(from, to, sopt);
    if (path.valid && path.cost <= travel_budget) return path;
  }
  ++prob_fallbacks_;
  return Path::Invalid();
}

RoutePlanner::PlannedRoute RoutePlanner::PlanRoute(VertexId start,
                                                   Seconds start_time,
                                                   const Schedule& schedule,
                                                   bool probabilistic,
                                                   const Point& taxi_direction) {
  PlannedRoute out;
  out.path = Path::Trivial(start);
  if (schedule.empty()) {
    out.valid = true;
    return out;
  }

  // Oracle (shortest-path) leg costs for budget computation: leg z connects
  // event z-1 (or start) to event z.
  const size_t m = schedule.size();
  std::vector<Seconds> oracle_leg(m, 0.0);
  {
    VertexId at = start;
    for (size_t z = 0; z < m; ++z) {
      oracle_leg[z] = oracle_->Cost(at, schedule.at(z).vertex);
      if (oracle_leg[z] == kInfiniteCost) return PlannedRoute{};
      at = schedule.at(z).vertex;
    }
  }

  VertexId at = start;
  Seconds t = start_time;
  for (size_t z = 0; z < m; ++z) {
    const ScheduleEvent& event = schedule.at(z);
    Path leg;
    if (probabilistic) {
      // Largest leg travel budget keeping every remaining deadline
      // reachable via shortest paths afterwards.
      Seconds budget = kInfiniteCost;
      Seconds future = 0.0;
      for (size_t k = z; k < m; ++k) {
        if (k > z) future += oracle_leg[k];
        budget = std::min(budget, schedule.at(k).deadline - t - future);
      }
      budget = std::min(budget, oracle_leg[z] * options_.prob_max_stretch +
                                    options_.prob_extra_slack);
      leg = PlanProbabilisticLeg(at, event.vertex, taxi_direction, budget);
      if (!leg.valid) leg = PlanBasicLeg(at, event.vertex);
    } else {
      leg = PlanBasicLeg(at, event.vertex);
    }
    if (!leg.valid) return PlannedRoute{};
    t += leg.cost;
    if (t > event.deadline + 1e-9) return PlannedRoute{};
    out.path = ConcatPaths(out.path, leg);
    out.event_arrivals.push_back(t);
    at = event.vertex;
  }
  out.valid = true;
  return out;
}

}  // namespace mtshare
