#ifndef MTSHARE_SCHED_PARTITION_FILTER_H_
#define MTSHARE_SCHED_PARTITION_FILTER_H_

#include <cstdint>
#include <vector>

#include "geo/mobility_vector.h"
#include "partition/landmark_graph.h"
#include "partition/map_partitioning.h"

namespace mtshare {

/// Partition filtering (paper Algorithm 2): given a leg between two
/// consecutive schedule events, retain only the map partitions that
///  (1) lie along the travel direction (cos between landmark vectors
///      >= lambda), and
///  (2) do not lengthen the landmark route beyond (1 + epsilon) times the
///      direct landmark cost.
/// The retained set prunes the search space of both routing modes.
class PartitionFilter {
 public:
  PartitionFilter(const RoadNetwork& network,
                  const MapPartitioning& partitioning,
                  const LandmarkGraph& landmark_graph, double lambda,
                  double epsilon);

  /// Retained partitions for a leg from `from` to `to` (vertices). The
  /// endpoints' partitions are always retained.
  std::vector<PartitionId> Filter(VertexId from, VertexId to) const;

  /// Sets mask[v] = 1 for every vertex of every retained partition.
  /// `mask` must be sized to num_vertices.
  void AddToMask(const std::vector<PartitionId>& partitions,
                 std::vector<uint8_t>* mask) const;

  /// Fraction of vertices that survive filtering for the leg — the pruning
  /// diagnostic reported by the partition-filter micro-bench.
  double RetainedVertexFraction(const std::vector<PartitionId>& kept) const;

  double lambda() const { return lambda_; }
  double epsilon() const { return epsilon_; }

 private:
  const RoadNetwork& network_;
  const MapPartitioning& partitioning_;
  const LandmarkGraph& landmarks_;
  double lambda_;
  double epsilon_;
};

}  // namespace mtshare

#endif  // MTSHARE_SCHED_PARTITION_FILTER_H_
