#include "clustering/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace mtshare {
namespace {

double RowRowDistanceSquared(const std::vector<double>& data, size_t dim,
                             size_t a, size_t b) {
  double acc = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    double d = data[a * dim + j] - data[b * dim + j];
    acc += d * d;
  }
  return acc;
}

std::vector<double> SeedKMeansPlusPlus(const std::vector<double>& data,
                                       size_t dim, size_t num_rows, int32_t k,
                                       Rng& rng) {
  std::vector<double> centroids(static_cast<size_t>(k) * dim);
  std::vector<size_t> chosen;
  chosen.reserve(k);
  chosen.push_back(static_cast<size_t>(
      rng.NextInt(0, static_cast<int64_t>(num_rows) - 1)));
  std::vector<double> min_d2(num_rows,
                             std::numeric_limits<double>::infinity());
  for (int32_t c = 1; c < k; ++c) {
    size_t last = chosen.back();
    for (size_t i = 0; i < num_rows; ++i) {
      min_d2[i] = std::min(min_d2[i], RowRowDistanceSquared(data, dim, i, last));
    }
    chosen.push_back(rng.NextDiscrete(min_d2));
  }
  for (int32_t c = 0; c < k; ++c) {
    std::copy_n(data.begin() + chosen[c] * dim, dim,
                centroids.begin() + static_cast<size_t>(c) * dim);
  }
  return centroids;
}

std::vector<double> SeedRandom(const std::vector<double>& data, size_t dim,
                               size_t num_rows, int32_t k, Rng& rng) {
  std::vector<size_t> order(num_rows);
  for (size_t i = 0; i < num_rows; ++i) order[i] = i;
  std::vector<size_t> picks;
  picks.reserve(k);
  // Partial Fisher-Yates: pick k distinct rows.
  for (int32_t c = 0; c < k; ++c) {
    size_t j = static_cast<size_t>(
        rng.NextInt(c, static_cast<int64_t>(num_rows) - 1));
    std::swap(order[c], order[j]);
    picks.push_back(order[c]);
  }
  std::vector<double> centroids(static_cast<size_t>(k) * dim);
  for (int32_t c = 0; c < k; ++c) {
    std::copy_n(data.begin() + picks[c] * dim, dim,
                centroids.begin() + static_cast<size_t>(c) * dim);
  }
  return centroids;
}

}  // namespace

double RowCentroidDistanceSquared(const std::vector<double>& data, size_t dim,
                                  size_t row,
                                  const std::vector<double>& centroids,
                                  size_t centroid) {
  double acc = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    double d = data[row * dim + j] - centroids[centroid * dim + j];
    acc += d * d;
  }
  return acc;
}

KMeansResult KMeans(const std::vector<double>& data, size_t dim,
                    const KMeansOptions& options, Rng& rng) {
  MTSHARE_CHECK(dim > 0);
  MTSHARE_CHECK(data.size() % dim == 0);
  const size_t num_rows = data.size() / dim;
  KMeansResult result;
  if (num_rows == 0) return result;

  const int32_t k =
      std::max<int32_t>(1, std::min<int32_t>(options.k,
                                             static_cast<int32_t>(num_rows)));
  result.k_effective = k;

  result.centroids = options.kmeanspp_seeding
                         ? SeedKMeansPlusPlus(data, dim, num_rows, k, rng)
                         : SeedRandom(data, dim, num_rows, k, rng);
  result.assignment.assign(num_rows, 0);

  std::vector<double> new_centroids(static_cast<size_t>(k) * dim);
  std::vector<int64_t> counts(k);

  for (int32_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    double inertia = 0.0;
    for (size_t i = 0; i < num_rows; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int32_t best_c = 0;
      for (int32_t c = 0; c < k; ++c) {
        double d2 = RowCentroidDistanceSquared(data, dim, i, result.centroids,
                                               static_cast<size_t>(c));
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    std::fill(new_centroids.begin(), new_centroids.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < num_rows; ++i) {
      int32_t c = result.assignment[i];
      ++counts[c];
      for (size_t j = 0; j < dim; ++j) {
        new_centroids[static_cast<size_t>(c) * dim + j] += data[i * dim + j];
      }
    }
    for (int32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed the empty cluster at the row farthest from its centroid.
        size_t worst_row = 0;
        double worst = -1.0;
        for (size_t i = 0; i < num_rows; ++i) {
          double d2 = RowCentroidDistanceSquared(
              data, dim, i, result.centroids,
              static_cast<size_t>(result.assignment[i]));
          if (d2 > worst) {
            worst = d2;
            worst_row = i;
          }
        }
        std::copy_n(data.begin() + worst_row * dim, dim,
                    new_centroids.begin() + static_cast<size_t>(c) * dim);
      } else {
        for (size_t j = 0; j < dim; ++j) {
          new_centroids[static_cast<size_t>(c) * dim + j] /=
              static_cast<double>(counts[c]);
        }
      }
    }

    double movement = 0.0;
    for (size_t idx = 0; idx < new_centroids.size(); ++idx) {
      double d = new_centroids[idx] - result.centroids[idx];
      movement += d * d;
    }
    result.centroids.swap(new_centroids);
    if (movement < options.tolerance) break;
  }

  // Final assignment against the last centroids.
  double inertia = 0.0;
  for (size_t i = 0; i < num_rows; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int32_t best_c = 0;
    for (int32_t c = 0; c < k; ++c) {
      double d2 = RowCentroidDistanceSquared(data, dim, i, result.centroids,
                                             static_cast<size_t>(c));
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    result.assignment[i] = best_c;
    inertia += best;
  }
  result.inertia = inertia;
  return result;
}

}  // namespace mtshare
