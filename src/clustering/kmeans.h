#ifndef MTSHARE_CLUSTERING_KMEANS_H_
#define MTSHARE_CLUSTERING_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace mtshare {

/// Options for Lloyd's algorithm with k-means++ seeding.
struct KMeansOptions {
  int32_t k = 8;
  int32_t max_iterations = 60;
  /// Stop when total centroid movement (squared) falls below this.
  double tolerance = 1e-6;
  bool kmeanspp_seeding = true;
};

struct KMeansResult {
  /// Cluster id per input row, in [0, k_effective).
  std::vector<int32_t> assignment;
  /// Row-major centroids, k_effective x dim.
  std::vector<double> centroids;
  int32_t k_effective = 0;
  int32_t iterations = 0;
  /// Sum of squared distances from each row to its centroid.
  double inertia = 0.0;
};

/// Clusters `num_rows` points of dimension `dim`, stored row-major in
/// `data`. Both stages of the paper's bipartite map partitioning
/// (geo-clustering on coordinates, transition clustering on probability
/// vectors; Sec. IV-B1) run through this routine.
///
/// If k >= num_rows, every row becomes its own cluster. Clusters that fall
/// empty during iteration are reseeded to the point farthest from its
/// centroid, so k_effective == min(k, num_rows) always holds.
KMeansResult KMeans(const std::vector<double>& data, size_t dim,
                    const KMeansOptions& options, Rng& rng);

/// Squared Euclidean distance between row `row` of data and a centroid.
double RowCentroidDistanceSquared(const std::vector<double>& data, size_t dim,
                                  size_t row, const std::vector<double>& centroids,
                                  size_t centroid);

}  // namespace mtshare

#endif  // MTSHARE_CLUSTERING_KMEANS_H_
