#include "spatial/kdtree.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace mtshare {

KdTree::KdTree(std::vector<Point> points) : points_(std::move(points)) {
  order_.resize(points_.size());
  std::iota(order_.begin(), order_.end(), 0);
  nodes_.reserve(points_.size());
  root_ = BuildRecursive(0, static_cast<int32_t>(points_.size()), 0);
}

int32_t KdTree::BuildRecursive(int32_t lo, int32_t hi, int depth) {
  if (lo >= hi) return -1;
  uint8_t axis = static_cast<uint8_t>(depth % 2);
  int32_t mid = lo + (hi - lo) / 2;
  std::nth_element(order_.begin() + lo, order_.begin() + mid,
                   order_.begin() + hi, [&](int32_t a, int32_t b) {
                     return axis == 0 ? points_[a].x < points_[b].x
                                      : points_[a].y < points_[b].y;
                   });
  int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{order_[mid], -1, -1, axis});
  // Children are built after the push; write indices via the vector to
  // survive reallocation.
  int32_t left = BuildRecursive(lo, mid, depth + 1);
  int32_t right = BuildRecursive(mid + 1, hi, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

int32_t KdTree::Nearest(const Point& query) const {
  if (root_ == -1) return -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  int32_t best_index = -1;
  NearestRecursive(root_, query, best_d2, best_index);
  return best_index;
}

void KdTree::NearestRecursive(int32_t node, const Point& query,
                              double& best_d2, int32_t& best_index) const {
  if (node == -1) return;
  const Node& n = nodes_[node];
  const Point& p = points_[n.point_index];
  double d2 = DistanceSquared(p, query);
  if (d2 < best_d2) {
    best_d2 = d2;
    best_index = n.point_index;
  }
  double delta = n.axis == 0 ? query.x - p.x : query.y - p.y;
  int32_t near = delta < 0 ? n.left : n.right;
  int32_t far = delta < 0 ? n.right : n.left;
  NearestRecursive(near, query, best_d2, best_index);
  if (delta * delta < best_d2) {
    NearestRecursive(far, query, best_d2, best_index);
  }
}

std::vector<int32_t> KdTree::RadiusSearch(const Point& query,
                                          double radius_m) const {
  std::vector<int32_t> out;
  RadiusRecursive(root_, query, radius_m * radius_m, &out);
  return out;
}

void KdTree::RadiusRecursive(int32_t node, const Point& query, double r2,
                             std::vector<int32_t>* out) const {
  if (node == -1) return;
  const Node& n = nodes_[node];
  const Point& p = points_[n.point_index];
  if (DistanceSquared(p, query) <= r2) out->push_back(n.point_index);
  double delta = n.axis == 0 ? query.x - p.x : query.y - p.y;
  int32_t near = delta < 0 ? n.left : n.right;
  int32_t far = delta < 0 ? n.right : n.left;
  RadiusRecursive(near, query, r2, out);
  if (delta * delta <= r2) RadiusRecursive(far, query, r2, out);
}

}  // namespace mtshare
