#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace mtshare {
namespace {

int32_t ClampIndex(double offset, double cell, int32_t count) {
  int32_t idx = static_cast<int32_t>(std::floor(offset / cell));
  return std::clamp(idx, 0, count - 1);
}

}  // namespace

GridIndex::GridIndex(const RoadNetwork& network, double cell_size_m)
    : network_(network), cell_size_(cell_size_m) {
  MTSHARE_CHECK(cell_size_m > 0.0);
  const BoundingBox& box = network.bounds();
  origin_ = box.min;
  cells_x_ = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(box.Width() / cell_size_m)) + 1);
  cells_y_ = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(box.Height() / cell_size_m)) + 1);
  buckets_.resize(static_cast<size_t>(cells_x_) * cells_y_);
  for (VertexId v = 0; v < network.num_vertices(); ++v) {
    buckets_[CellOf(network.coord(v))].push_back(v);
  }
}

int32_t GridIndex::CellOf(const Point& p) const {
  int32_t cx = ClampIndex(p.x - origin_.x, cell_size_, cells_x_);
  int32_t cy = ClampIndex(p.y - origin_.y, cell_size_, cells_y_);
  return cy * cells_x_ + cx;
}

std::vector<int32_t> GridIndex::CellsInRadius(const Point& center,
                                              double radius_m) const {
  int32_t x_lo = ClampIndex(center.x - radius_m - origin_.x, cell_size_,
                            cells_x_);
  int32_t x_hi = ClampIndex(center.x + radius_m - origin_.x, cell_size_,
                            cells_x_);
  int32_t y_lo = ClampIndex(center.y - radius_m - origin_.y, cell_size_,
                            cells_y_);
  int32_t y_hi = ClampIndex(center.y + radius_m - origin_.y, cell_size_,
                            cells_y_);
  std::vector<int32_t> cells;
  cells.reserve(static_cast<size_t>(x_hi - x_lo + 1) * (y_hi - y_lo + 1));
  for (int32_t cy = y_lo; cy <= y_hi; ++cy) {
    for (int32_t cx = x_lo; cx <= x_hi; ++cx) {
      cells.push_back(cy * cells_x_ + cx);
    }
  }
  return cells;
}

std::vector<VertexId> GridIndex::VerticesInRadius(const Point& center,
                                                  double radius_m) const {
  std::vector<VertexId> out;
  double r2 = radius_m * radius_m;
  for (int32_t cell : CellsInRadius(center, radius_m)) {
    for (VertexId v : buckets_[cell]) {
      if (DistanceSquared(network_.coord(v), center) <= r2) out.push_back(v);
    }
  }
  return out;
}

VertexId GridIndex::NearestVertex(const Point& query) const {
  if (network_.num_vertices() == 0) return kInvalidVertex;
  int32_t qx = ClampIndex(query.x - origin_.x, cell_size_, cells_x_);
  int32_t qy = ClampIndex(query.y - origin_.y, cell_size_, cells_y_);

  VertexId best = kInvalidVertex;
  double best_d2 = std::numeric_limits<double>::infinity();
  int32_t max_ring = std::max(cells_x_, cells_y_);
  for (int32_t ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate is found, one extra ring suffices: any point in a
    // farther ring is at least (ring-1)*cell_size away.
    if (best != kInvalidVertex) {
      double safe = (static_cast<double>(ring) - 1.0) * cell_size_;
      if (safe > 0.0 && safe * safe > best_d2) break;
    }
    for (int32_t cy = qy - ring; cy <= qy + ring; ++cy) {
      if (cy < 0 || cy >= cells_y_) continue;
      for (int32_t cx = qx - ring; cx <= qx + ring; ++cx) {
        if (cx < 0 || cx >= cells_x_) continue;
        bool on_ring = (std::abs(cx - qx) == ring || std::abs(cy - qy) == ring);
        if (!on_ring) continue;
        for (VertexId v : buckets_[cy * cells_x_ + cx]) {
          double d2 = DistanceSquared(network_.coord(v), query);
          if (d2 < best_d2) {
            best_d2 = d2;
            best = v;
          }
        }
      }
    }
  }
  return best;
}

size_t GridIndex::MemoryBytes() const {
  size_t bytes = buckets_.size() * sizeof(std::vector<VertexId>);
  for (const auto& bucket : buckets_) bytes += bucket.size() * sizeof(VertexId);
  return bytes;
}

DynamicGridIndex::DynamicGridIndex(const BoundingBox& bounds,
                                   double cell_size_m)
    : cell_size_(cell_size_m), origin_(bounds.min) {
  MTSHARE_CHECK(cell_size_m > 0.0);
  cells_x_ = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(bounds.Width() / cell_size_m)) + 1);
  cells_y_ = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(bounds.Height() / cell_size_m)) + 1);
  buckets_.resize(static_cast<size_t>(cells_x_) * cells_y_);
}

int32_t DynamicGridIndex::CellOf(const Point& p) const {
  int32_t cx = ClampIndex(p.x - origin_.x, cell_size_, cells_x_);
  int32_t cy = ClampIndex(p.y - origin_.y, cell_size_, cells_y_);
  return cy * cells_x_ + cx;
}

void DynamicGridIndex::Update(int32_t id, const Point& pos) {
  int32_t new_cell = CellOf(pos);
  auto it = positions_.find(id);
  if (it != positions_.end()) {
    int32_t old_cell = it->second.first;
    if (old_cell == new_cell) {
      it->second.second = pos;
      return;
    }
    auto& bucket = buckets_[old_cell];
    bucket.erase(std::find(bucket.begin(), bucket.end(), id));
    it->second = {new_cell, pos};
  } else {
    positions_.emplace(id, std::make_pair(new_cell, pos));
  }
  buckets_[new_cell].push_back(id);
}

void DynamicGridIndex::Remove(int32_t id) {
  auto it = positions_.find(id);
  if (it == positions_.end()) return;
  auto& bucket = buckets_[it->second.first];
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  positions_.erase(it);
}

bool DynamicGridIndex::Contains(int32_t id) const {
  return positions_.count(id) > 0;
}

std::vector<int32_t> DynamicGridIndex::ObjectsInRadius(const Point& center,
                                                       double radius_m) const {
  std::vector<int32_t> out;
  double r2 = radius_m * radius_m;
  int32_t x_lo = ClampIndex(center.x - radius_m - origin_.x, cell_size_,
                            cells_x_);
  int32_t x_hi = ClampIndex(center.x + radius_m - origin_.x, cell_size_,
                            cells_x_);
  int32_t y_lo = ClampIndex(center.y - radius_m - origin_.y, cell_size_,
                            cells_y_);
  int32_t y_hi = ClampIndex(center.y + radius_m - origin_.y, cell_size_,
                            cells_y_);
  for (int32_t cy = y_lo; cy <= y_hi; ++cy) {
    for (int32_t cx = x_lo; cx <= x_hi; ++cx) {
      for (int32_t id : buckets_[cy * cells_x_ + cx]) {
        if (DistanceSquared(positions_.at(id).second, center) <= r2) {
          out.push_back(id);
        }
      }
    }
  }
  return out;
}

std::vector<int32_t> DynamicGridIndex::NearestObjects(const Point& center,
                                                      int32_t limit) const {
  std::vector<std::pair<double, int32_t>> found;
  int32_t qx = ClampIndex(center.x - origin_.x, cell_size_, cells_x_);
  int32_t qy = ClampIndex(center.y - origin_.y, cell_size_, cells_y_);
  int32_t max_ring = std::max(cells_x_, cells_y_);
  for (int32_t ring = 0; ring <= max_ring; ++ring) {
    if (static_cast<int32_t>(found.size()) >= limit) {
      // All objects in farther rings are at least (ring-1)*cell away; stop
      // when the limit-th nearest found so far beats that bound.
      std::sort(found.begin(), found.end());
      double safe = (static_cast<double>(ring) - 1.0) * cell_size_;
      if (safe > 0.0 && found[limit - 1].first <= safe * safe) break;
    }
    for (int32_t cy = qy - ring; cy <= qy + ring; ++cy) {
      if (cy < 0 || cy >= cells_y_) continue;
      for (int32_t cx = qx - ring; cx <= qx + ring; ++cx) {
        if (cx < 0 || cx >= cells_x_) continue;
        if (std::abs(cx - qx) != ring && std::abs(cy - qy) != ring) continue;
        for (int32_t id : buckets_[cy * cells_x_ + cx]) {
          found.emplace_back(
              DistanceSquared(positions_.at(id).second, center), id);
        }
      }
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<int32_t> out;
  out.reserve(std::min<size_t>(found.size(), limit));
  for (size_t i = 0; i < found.size() && i < static_cast<size_t>(limit); ++i) {
    out.push_back(found[i].second);
  }
  return out;
}

size_t DynamicGridIndex::MemoryBytes() const {
  size_t bytes = buckets_.size() * sizeof(std::vector<int32_t>);
  for (const auto& bucket : buckets_) bytes += bucket.size() * sizeof(int32_t);
  bytes += positions_.size() *
           (sizeof(int32_t) + sizeof(std::pair<int32_t, Point>) + 16);
  return bytes;
}

}  // namespace mtshare
