#ifndef MTSHARE_SPATIAL_GRID_INDEX_H_
#define MTSHARE_SPATIAL_GRID_INDEX_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/road_network.h"

namespace mtshare {

/// Uniform grid over the network bounding box indexing the static vertex
/// set. Supports radius queries and nearest-vertex snapping (used to map
/// request GPS points to graph vertices, as the paper does in Sec. V-A4).
/// Grid cells are also the indexing unit of the T-Share baseline.
class GridIndex {
 public:
  /// cell_size_m: grid pitch. Values near the average block length work well.
  GridIndex(const RoadNetwork& network, double cell_size_m);

  /// All vertices within radius_m of center (exact post-filter).
  std::vector<VertexId> VerticesInRadius(const Point& center,
                                         double radius_m) const;

  /// The vertex closest to the query point; kInvalidVertex on empty network.
  VertexId NearestVertex(const Point& query) const;

  /// Cell id containing a point (clamped to the grid extent).
  int32_t CellOf(const Point& p) const;
  int32_t num_cells() const { return cells_x_ * cells_y_; }
  int32_t cells_x() const { return cells_x_; }
  int32_t cells_y() const { return cells_y_; }
  double cell_size() const { return cell_size_; }

  /// Vertices inside one cell.
  const std::vector<VertexId>& CellVertices(int32_t cell) const {
    return buckets_[cell];
  }

  /// Cell ids intersecting the circle (bounding-square approximation).
  std::vector<int32_t> CellsInRadius(const Point& center,
                                     double radius_m) const;

  size_t MemoryBytes() const;

 private:
  const RoadNetwork& network_;
  double cell_size_;
  Point origin_;
  int32_t cells_x_;
  int32_t cells_y_;
  std::vector<std::vector<VertexId>> buckets_;
};

/// Dynamic point index for moving objects (taxis). Objects are identified by
/// dense non-negative ids and can be relocated/removed in O(1) amortized.
/// Backing structure for the grid-based taxi indexes of the No-Sharing,
/// T-Share, and pGreedyDP baselines.
class DynamicGridIndex {
 public:
  DynamicGridIndex(const BoundingBox& bounds, double cell_size_m);

  /// Inserts or moves object `id` to `pos`.
  void Update(int32_t id, const Point& pos);
  void Remove(int32_t id);
  bool Contains(int32_t id) const;

  /// Ids of objects within radius_m of center (exact post-filter).
  std::vector<int32_t> ObjectsInRadius(const Point& center,
                                       double radius_m) const;

  /// Ids of up to `limit` objects ordered by increasing distance from
  /// center, found by expanding ring search (unbounded radius).
  std::vector<int32_t> NearestObjects(const Point& center, int32_t limit) const;

  int32_t size() const { return static_cast<int32_t>(positions_.size()); }

  size_t MemoryBytes() const;

 private:
  int32_t CellOf(const Point& p) const;

  double cell_size_;
  Point origin_;
  int32_t cells_x_;
  int32_t cells_y_;
  std::vector<std::vector<int32_t>> buckets_;
  std::unordered_map<int32_t, std::pair<int32_t, Point>> positions_;
};

}  // namespace mtshare

#endif  // MTSHARE_SPATIAL_GRID_INDEX_H_
