#ifndef MTSHARE_SPATIAL_KDTREE_H_
#define MTSHARE_SPATIAL_KDTREE_H_

#include <vector>

#include "common/types.h"
#include "geo/latlng.h"

namespace mtshare {

/// Static 2-d tree over a point set. Alternative snapping structure to
/// GridIndex with better worst-case behaviour on non-uniform vertex
/// densities (e.g., the ring-city topology where the center is dense).
class KdTree {
 public:
  /// Builds over a copy of the points (ids are the point indices).
  explicit KdTree(std::vector<Point> points);

  /// Index of the nearest point; -1 for an empty tree.
  int32_t Nearest(const Point& query) const;

  /// Indices of all points within radius_m of query.
  std::vector<int32_t> RadiusSearch(const Point& query, double radius_m) const;

  int32_t size() const { return static_cast<int32_t>(points_.size()); }

 private:
  struct Node {
    int32_t point_index = -1;
    int32_t left = -1;
    int32_t right = -1;
    uint8_t axis = 0;
  };

  int32_t BuildRecursive(int32_t lo, int32_t hi, int depth);
  void NearestRecursive(int32_t node, const Point& query, double& best_d2,
                        int32_t& best_index) const;
  void RadiusRecursive(int32_t node, const Point& query, double r2,
                       std::vector<int32_t>* out) const;

  std::vector<Point> points_;
  std::vector<int32_t> order_;  // permutation sorted during build
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace mtshare

#endif  // MTSHARE_SPATIAL_KDTREE_H_
