#ifndef MTSHARE_SIM_ENGINE_H_
#define MTSHARE_SIM_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "matching/dispatcher.h"
#include "payment/payment_model.h"
#include "sim/metrics.h"
#include "spatial/grid_index.h"

namespace mtshare {

struct EngineOptions {
  /// Enables offline-request encounters for schemes that support them.
  bool serve_offline = true;
  /// A passing driver notices a street-hailing passenger within this
  /// distance of the taxi's current vertex (vertex-exact would require the
  /// taxi to drive over the exact corner the passenger stands on).
  double encounter_radius_m = 200.0;
  /// Extra simulated time after the last request so in-flight deliveries
  /// can finish.
  Seconds drain_margin = 3600.0;
  PaymentConfig payment;
};

/// Event-driven simulation of a taxi fleet under one matching scheme.
/// Requests arrive in release order; taxis move along their committed
/// routes at vertex granularity; pickups/dropoffs fire at their planned
/// times; offline requests are discovered when a taxi reaches their origin
/// vertex while they wait. Single-threaded by design (response-time
/// measurements stay clean).
class SimulationEngine {
 public:
  /// `fleet` is owned by the caller (the dispatcher reads it); the engine
  /// mutates it while running.
  SimulationEngine(const RoadNetwork& network, Dispatcher* dispatcher,
                   std::vector<TaxiState>* fleet,
                   const EngineOptions& options);

  /// Runs the request stream (must be sorted by release time, ids dense
  /// from 0) to completion and returns the collected metrics.
  Metrics Run(const std::vector<RideRequest>& requests);

 private:
  void AdvanceAll(Seconds now);
  void AdvanceTaxi(TaxiState& taxi, Seconds now);
  /// Executes due schedule events while the taxi sits at its location.
  void ExecuteDueEvents(TaxiState& taxi);
  void HandlePickup(TaxiState& taxi, const ScheduleEvent& event,
                    Seconds when);
  void HandleDropoff(TaxiState& taxi, const ScheduleEvent& event,
                     Seconds when);
  void SettleEpisodeFor(TaxiState& taxi);
  void CheckOfflineEncounters(TaxiState& taxi, Seconds now);

  const RoadNetwork& network_;
  Dispatcher* dispatcher_;
  std::vector<TaxiState>* fleet_;
  EngineOptions options_;
  Metrics metrics_;

  /// Request stream by id for lookups (offline encounters, completion).
  std::vector<RideRequest> requests_;
  /// Waiting offline requests indexed by every vertex within the encounter
  /// radius of their origin.
  std::unordered_map<VertexId, std::vector<RequestId>> waiting_offline_;
  /// Offline request lifecycle: 0 = waiting, 1 = served or expired.
  std::vector<uint8_t> offline_done_;
  /// Vertex snapping index for encounter-radius registration.
  std::unique_ptr<GridIndex> snap_;
};

}  // namespace mtshare

#endif  // MTSHARE_SIM_ENGINE_H_
