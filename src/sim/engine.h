#ifndef MTSHARE_SIM_ENGINE_H_
#define MTSHARE_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "matching/dispatcher.h"
#include "payment/payment_model.h"
#include "sim/metrics.h"
#include "spatial/grid_index.h"

namespace mtshare {

class RequestSource;

struct EngineOptions {
  /// Enables offline-request encounters for schemes that support them.
  bool serve_offline = true;
  /// A passing driver notices a street-hailing passenger within this
  /// distance of the taxi's current vertex (vertex-exact would require the
  /// taxi to drive over the exact corner the passenger stands on).
  double encounter_radius_m = 200.0;
  /// Advance the fleet through a min-heap of per-taxi next-arc times (only
  /// taxis with movement due are touched) instead of sweeping every taxi at
  /// every request boundary. Decision-identical to the sweep; kept
  /// switchable so the equivalence is testable.
  bool event_driven = true;
  /// Batch-window ingest discipline Δt, simulated milliseconds (DESIGN.md
  /// §12): arrivals are collected from the first pending release for Δt and
  /// dispatched together when the window closes. <= 0 dispatches each
  /// request at its own release boundary — byte-identical to the
  /// pre-window engine loop.
  double batch_window_ms = 0.0;
  /// Admission cap on the pending dispatch queue (0 = unbounded; only
  /// meaningful with a batch window). Online requests arriving while the
  /// queue is full are shed: registered in the metrics and reported to the
  /// decision observer, but never dispatched.
  int64_t max_queue = 0;
  /// Decision observer: invoked with the final record of every online
  /// dispatch decision, every served offline encounter, and every shed
  /// request — the hook mtshare_serve streams response lines from. Null
  /// disables it.
  std::function<void(const RideRequest&, const RequestRecord&)> on_decision;
  PaymentConfig payment;
};

/// Event-driven simulation of a taxi fleet under one matching scheme.
/// Requests arrive in release order; taxis move along their committed
/// routes at vertex granularity; pickups/dropoffs fire at their planned
/// times; offline requests are discovered when a taxi reaches their origin
/// vertex while they wait. Single-threaded by design (response-time
/// measurements stay clean).
///
/// Two advancement cores share all event/encounter/settlement logic:
///  - the legacy *sweep* walks the whole fleet at every request boundary;
///  - the *event-driven* core (default) keeps a min-heap of each taxi's
///    next route-arc arrival and pops only the taxis with movement due,
///    batching their index updates per advancement span. The engine also
///    implements the dispatcher's FleetSync hook so matching code can
///    materialize a taxi's state on demand before reading it.
class SimulationEngine : public FleetSync {
 public:
  /// `fleet` is owned by the caller (the dispatcher reads it); the engine
  /// mutates it while running and registers itself as the dispatcher's
  /// FleetSync for the duration of its lifetime.
  SimulationEngine(const RoadNetwork& network, Dispatcher* dispatcher,
                   std::vector<TaxiState>* fleet,
                   const EngineOptions& options);
  ~SimulationEngine() override;

  /// Runs a pulled request stream (sorted by release time, ids dense from
  /// 0 — sources self-validate; the engine CHECKs) to completion and
  /// returns the collected metrics. The source is consumed. With a
  /// positive batch window the engine collects arrivals per window and
  /// dispatches each batch at window close; otherwise every request
  /// dispatches at its own release boundary.
  Metrics Run(RequestSource& source);

  /// Vector convenience wrapper: replays `requests` through a
  /// VectorRequestSource — byte-identical to the historical eager loop.
  Metrics Run(const std::vector<RideRequest>& requests);

  /// FleetSync: brings one taxi up to date with simulated time `now`.
  /// No-op for taxis with no movement due and for the taxi currently being
  /// advanced (re-entrant calls from encounter dispatch).
  void SyncTaxi(TaxiId taxi, Seconds now) override;

 private:
  /// One heap entry: the absolute arrival time of `taxi`'s next route arc.
  /// Entries are invalidated lazily — `gen` must match taxi_gen_[taxi] or
  /// the entry is stale (the taxi was re-armed after a new plan).
  struct PendingArc {
    Seconds time = 0.0;
    TaxiId taxi = kInvalidTaxi;
    uint64_t gen = 0;
  };
  struct PendingArcLater {
    bool operator()(const PendingArc& a, const PendingArc& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.taxi > b.taxi;
    }
  };

  /// Advances the fleet to `now` with the configured core.
  void Advance(Seconds now);
  /// Legacy sweep: every taxi stepped, idle taxis offered cruises.
  void AdvanceAll(Seconds now);
  /// Event core: pops due heap entries, advances those taxis (id order,
  /// each fully), then offers cruises to the idle routeless set.
  void AdvanceTo(Seconds now);
  void AdvanceTaxi(TaxiState& taxi, Seconds now);
  /// Like AdvanceTaxi but batches dispatcher index updates per advancement
  /// span, splitting batches at schedule events and encounter probes so
  /// order-sensitive indexes observe the exact per-arc sequence.
  void AdvanceTaxiEvent(TaxiState& taxi, Seconds now);
  /// Moves the taxi across its next route arc (odometer + position).
  void StepArc(TaxiState& taxi);
  /// Refreshes the heap entry for a taxi whose route/position changed.
  void RearmTaxi(const TaxiState& taxi);
  /// Keeps the cruise-offer candidate set (idle, no route) current.
  void UpdateIdleSet(const TaxiState& taxi);
  /// Extends the drain horizon to cover a freshly committed plan's route.
  void NoteCommit(const TaxiState& taxi);
  /// Whether this request's release boundary can skip fleet advancement
  /// entirely (no observable effect until the next real boundary).
  bool CanDeferBoundary(const RideRequest& request) const;
  /// Appends one pulled request to the run state (record + lookup tables).
  void Ingest(const RideRequest& request);
  /// Per-request boundary processing (Δt = 0): advance, then register the
  /// hailer or dispatch — the historical engine loop body.
  void ProcessBoundary(const RideRequest& request);
  /// Advances to the window close and dispatches the collected batch
  /// (hailers registered first, then the online queue through the
  /// dispatcher's batch entry point).
  void FlushBatch(std::vector<RequestId>* queue,
                  std::vector<RequestId>* hails, Seconds when);
  /// Registers an offline request as a waiting street hailer.
  void RegisterHailer(const RideRequest& request);
  /// Dispatches one online request at `now` and applies the outcome.
  void DispatchOne(const RideRequest& request, Seconds now);
  /// Executes due schedule events while the taxi sits at its location.
  void ExecuteDueEvents(TaxiState& taxi);
  void HandlePickup(TaxiState& taxi, const ScheduleEvent& event,
                    Seconds when);
  void HandleDropoff(TaxiState& taxi, const ScheduleEvent& event,
                     Seconds when);
  void SettleEpisodeFor(TaxiState& taxi);
  void CheckOfflineEncounters(TaxiState& taxi, Seconds now);

  const RoadNetwork& network_;
  Dispatcher* dispatcher_;
  std::vector<TaxiState>* fleet_;
  EngineOptions options_;
  Metrics metrics_;

  /// Request stream by id for lookups (offline encounters, completion).
  std::vector<RideRequest> requests_;
  /// Waiting offline requests indexed by every vertex within the encounter
  /// radius of their origin.
  std::unordered_map<VertexId, std::vector<RequestId>> waiting_offline_;
  /// Offline request lifecycle: 0 = waiting, 1 = served or expired.
  std::vector<uint8_t> offline_done_;
  /// Vertex snapping index for encounter-radius registration.
  std::unique_ptr<GridIndex> snap_;

  // --- event-driven core state ---
  std::priority_queue<PendingArc, std::vector<PendingArc>, PendingArcLater>
      heap_;
  /// Per-taxi generation counters for lazy heap invalidation.
  std::vector<uint64_t> taxi_gen_;
  /// Idle taxis without a route — the cruise-offer candidates — ordered by
  /// id so offers replay the sweep's iteration order exactly.
  std::set<TaxiId> idle_routeless_;
  /// Scratch buffers (due taxis of one advancement, offer snapshot).
  std::vector<TaxiId> due_;
  std::vector<TaxiId> offer_buf_;
  /// Latest route tail among committed plans that carry events; the drain
  /// target must reach it so every passenger is delivered.
  Seconds commit_horizon_ = 0.0;
  /// Deferred-boundary bookkeeping: the fleet may lag behind the newest
  /// registered release when boundaries were skipped.
  bool deferred_pending_ = false;
  Seconds last_deferred_ = 0.0;
  /// Latest ingested release time (the drain must reach it).
  Seconds last_release_ = 0.0;
  /// Scratch: batch pointers handed to Dispatcher::DispatchBatch.
  std::vector<const RideRequest*> batch_buf_;
  /// Taxi currently inside AdvanceTaxi/AdvanceTaxiEvent (re-entrancy guard
  /// for SyncTaxi calls made from encounter dispatch).
  TaxiId advancing_ = kInvalidTaxi;
};

}  // namespace mtshare

#endif  // MTSHARE_SIM_ENGINE_H_
