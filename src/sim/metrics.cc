#include "sim/metrics.h"

#include "common/logging.h"

namespace mtshare {

void Metrics::Register(const RideRequest& request) {
  MTSHARE_CHECK(request.id == static_cast<RequestId>(records_.size()));
  RequestRecord rec;
  rec.id = request.id;
  rec.offline = request.offline;
  rec.release_time = request.release_time;
  rec.direct_cost = request.direct_cost;
  records_.push_back(rec);
}

int32_t Metrics::ServedRequests() const {
  int32_t n = 0;
  for (const auto& r : records_) n += r.completed ? 1 : 0;
  return n;
}

int32_t Metrics::ServedOnline() const {
  int32_t n = 0;
  for (const auto& r : records_) n += (r.completed && !r.offline) ? 1 : 0;
  return n;
}

int32_t Metrics::ServedOffline() const {
  int32_t n = 0;
  for (const auto& r : records_) n += (r.completed && r.offline) ? 1 : 0;
  return n;
}

double Metrics::MeanResponseMs() const {
  SummaryStats s;
  for (const auto& r : records_) {
    if (!r.offline) s.Add(r.response_ms);
  }
  return s.Mean();
}

double Metrics::MeanDetourMinutes() const {
  SummaryStats s;
  for (const auto& r : records_) {
    if (r.completed) {
      double detour = (r.dropoff_time - r.pickup_time) - r.direct_cost;
      s.Add(std::max(0.0, detour) / 60.0);
    }
  }
  return s.Mean();
}

double Metrics::MeanWaitingMinutes() const {
  SummaryStats s;
  for (const auto& r : records_) {
    if (r.completed) s.Add((r.pickup_time - r.release_time) / 60.0);
  }
  return s.Mean();
}

double Metrics::MeanCandidates() const {
  SummaryStats s;
  for (const auto& r : records_) {
    if (!r.offline) s.Add(r.candidates);
  }
  return s.Mean();
}

double Metrics::TotalRegularFares() const {
  double total = 0.0;
  for (const auto& r : records_) {
    if (r.completed) total += r.regular_fare;
  }
  return total;
}

double Metrics::TotalSharedFares() const {
  double total = 0.0;
  for (const auto& r : records_) {
    if (r.completed) total += r.shared_fare;
  }
  return total;
}

void Metrics::FinalizeDistributions() {
  response_hist_.Clear();
  waiting_hist_.Clear();
  detour_hist_.Clear();
  candidates_hist_.Clear();
  for (const auto& r : records_) {
    // Response time exists for every online request and for offline
    // requests that were actually served at an encounter (mirrors
    // MeanResponseMs, which reports the online population).
    if (!r.offline) {
      response_hist_.Record(r.response_ms);
      candidates_hist_.Record(r.candidates);
    } else if (r.assigned) {
      response_hist_.Record(r.response_ms);
    }
    if (r.completed) {
      waiting_hist_.Record((r.pickup_time - r.release_time) / 60.0);
      double detour = (r.dropoff_time - r.pickup_time) - r.direct_cost;
      detour_hist_.Record(std::max(0.0, detour) / 60.0);
    }
  }
}

double Metrics::TotalDispatchMs() const {
  double total = offline_probe_ms;
  for (const auto& r : records_) {
    if (!r.offline || r.assigned) total += r.response_ms;
  }
  return total;
}

double Metrics::MeanFareSaving() const {
  SummaryStats s;
  for (const auto& r : records_) {
    if (r.completed && r.regular_fare > 0.0) {
      s.Add(1.0 - r.shared_fare / r.regular_fare);
    }
  }
  return s.Mean();
}

}  // namespace mtshare
