#ifndef MTSHARE_SIM_METRICS_H_
#define MTSHARE_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "common/types.h"
#include "demand/request.h"
#include "matching/phase_timers.h"
#include "routing/one_to_many.h"

namespace mtshare {

/// Per-request lifecycle record kept by the simulation engine.
struct RequestRecord {
  RequestId id = kInvalidRequest;
  bool offline = false;
  bool assigned = false;
  bool completed = false;
  Seconds release_time = 0.0;
  Seconds direct_cost = 0.0;
  Seconds pickup_time = -1.0;
  Seconds dropoff_time = -1.0;
  TaxiId taxi = kInvalidTaxi;
  /// Dropped by the admission cap before reaching the dispatcher (the
  /// request was registered but never evaluated; see ServeStats::shed).
  bool shed = false;
  /// Wall-clock milliseconds the dispatcher spent on this request.
  double response_ms = 0.0;
  /// Candidate taxis examined at dispatch (paper Table III).
  int32_t candidates = 0;
  /// Settled fares (valid once completed and the episode settled).
  double regular_fare = 0.0;
  double shared_fare = 0.0;
};

/// Counters describing how the simulation core advanced the fleet. All
/// fields are zero on the legacy sweep path except `boundaries` and
/// `drain_rounds`, which both engines share.
struct EngineStats {
  /// Whether the event-driven core ran (EngineOptions::event_driven).
  bool event_driven = false;
  /// Heap entries popped while advancing to request boundaries (stale
  /// generation entries included — they are popped and discarded).
  int64_t heap_pops = 0;
  /// Taxis materialized on demand via the FleetSync hook, outside the
  /// engine's own advancement loop.
  int64_t lazy_syncs = 0;
  /// Route arcs stepped across the fleet (both engines would step the same
  /// arcs; the event core just skips the taxis with none due).
  int64_t arcs_stepped = 0;
  /// Request release boundaries processed / skipped by the deferral gate
  /// (a deferred boundary registers its request without touching the
  /// fleet; the next non-deferrable boundary catches the fleet up).
  int64_t boundaries = 0;
  int64_t boundaries_deferred = 0;
  /// Fixed-point iterations of the end-of-run drain (each round extends
  /// the target to the latest committed route tail).
  int64_t drain_rounds = 0;
};

/// Ingest/admission counters of the streaming dispatch path — the run
/// report's schema-5 "serve" block. Every run populates them: the classic
/// vector replay is a batch window of 0 ms with one request per dispatch
/// and nothing shed.
struct ServeStats {
  /// Configured batch window Δt, simulated milliseconds (0 = per-request
  /// dispatch at each release boundary).
  double batch_window_ms = 0.0;
  /// Batch-window flushes (0 in per-request mode).
  int64_t batches = 0;
  /// Online requests handed to the dispatcher.
  int64_t admitted = 0;
  /// Online requests dropped by the admission cap (EngineOptions::max_queue)
  /// without ever reaching the dispatcher.
  int64_t shed = 0;
  /// Peak depth of the pending dispatch queue (1 in per-request mode, the
  /// largest batch otherwise; 0 when no online request arrived).
  int64_t queue_depth = 0;
};

/// Aggregated results of one simulation run — the quantities the paper's
/// evaluation section reports.
class Metrics {
 public:
  void Register(const RideRequest& request);
  RequestRecord& record(RequestId id) { return records_[id]; }
  const std::vector<RequestRecord>& records() const { return records_; }

  // --- paper metrics (Sec. V-A3) ---
  /// Requests delivered before their deadlines.
  int32_t ServedRequests() const;
  int32_t ServedOnline() const;
  int32_t ServedOffline() const;
  int32_t TotalRequests() const {
    return static_cast<int32_t>(records_.size());
  }
  /// Mean dispatcher processing time per *online* request, ms.
  double MeanResponseMs() const;
  /// Mean extra in-vehicle time vs. the direct trip, minutes (served only).
  double MeanDetourMinutes() const;
  /// Mean pickup wait, minutes (served only; offline requests wait from
  /// release to encounter).
  double MeanWaitingMinutes() const;
  /// Mean candidate-set size over online requests (Table III).
  double MeanCandidates() const;

  // --- payment metrics (Fig. 19) ---
  double TotalRegularFares() const;
  double TotalSharedFares() const;
  /// Mean relative fare saving over served requests.
  double MeanFareSaving() const;

  // --- observability (run report) ---
  /// Rebuilds the latency/quality histograms below from the per-request
  /// records. The engine calls this at run end; callers that mutate
  /// records afterwards can call it again.
  void FinalizeDistributions();
  /// Dispatcher wall-clock over every measured decision: online dispatches
  /// plus offline encounter attempts (served and rejected). This is the
  /// total the per-phase breakdown is reconciled against.
  double TotalDispatchMs() const;
  /// Per-request dispatcher latency, ms (online + served offline).
  const LatencyHistogram& response_hist() const { return response_hist_; }
  /// Pickup wait, minutes, served requests.
  const LatencyHistogram& waiting_hist() const { return waiting_hist_; }
  /// Extra in-vehicle time vs. direct, minutes, served requests.
  const LatencyHistogram& detour_hist() const { return detour_hist_; }
  /// Candidate-set sizes over online requests (Table III tails).
  const LatencyHistogram& candidates_hist() const { return candidates_hist_; }

  /// Index memory reported by the dispatcher at run end (Table IV).
  size_t index_memory_bytes = 0;
  /// Distance-oracle traffic during the run (deltas of the shared oracle's
  /// counters; meaningful when runs do not overlap). Misses paid a
  /// one-to-all Dijkstra; hits were served from the row table/cache.
  int64_t oracle_queries = 0;
  int64_t oracle_row_hits = 0;
  int64_t oracle_row_misses = 0;
  /// Resolved backend of the oracle that served the run ("exact", "lru",
  /// "ch"); empty when the run bypassed RunScenario.
  std::string oracle_backend;
  /// Total driver income accumulated across the fleet.
  double total_driver_income = 0.0;
  /// Wall-clock seconds of the whole run (paper Fig. 21a).
  double execution_seconds = 0.0;
  /// Per-phase dispatch-time breakdown harvested from the dispatcher at
  /// run end (candidate search / filter / insertion / routing).
  PhaseTimers phases;
  /// Batched-routing counters harvested from the dispatcher at run end:
  /// one-to-many batch passes, vertices settled by truncated sweeps,
  /// lower-bound-pruned candidates, and per-pair fallback queries.
  BatchRoutingStats routing;
  /// Dispatcher time spent probing offline encounters that were *not*
  /// served — measured by the engine but attached to no request record.
  double offline_probe_ms = 0.0;
  /// Simulation-core counters (heap pops, lazy syncs, arcs stepped, ...).
  EngineStats engine;
  /// Streaming-ingest counters (batch windows, admission, backpressure).
  ServeStats serve;

 private:
  std::vector<RequestRecord> records_;
  LatencyHistogram response_hist_ = LatencyHistogram::ForLatencyMs();
  LatencyHistogram waiting_hist_ = LatencyHistogram::ForMinutes();
  LatencyHistogram detour_hist_ = LatencyHistogram::ForMinutes();
  LatencyHistogram candidates_hist_ = LatencyHistogram::ForCounts();
};

}  // namespace mtshare

#endif  // MTSHARE_SIM_METRICS_H_
