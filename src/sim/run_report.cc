#include "sim/run_report.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>

#include "matching/phase_timers.h"

namespace mtshare {
namespace {

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Minimal structured JSON emitter: tracks nesting depth and whether the
/// current container needs a separating comma. indent == 0 emits one line.
class JsonWriter {
 public:
  explicit JsonWriter(int indent) : indent_(indent) {}

  void BeginObject() {
    Separate();
    out_ += '{';
    first_ = true;
    ++depth_;
  }
  void EndObject() {
    --depth_;
    if (!first_) Newline();
    out_ += '}';
    first_ = false;
  }
  void Key(const std::string& name) {
    Separate();
    Newline();
    out_ += '"' + EscapeJson(name) + "\":";
    if (indent_ > 0) out_ += ' ';
    pending_value_ = true;
  }
  void String(const std::string& v) { Raw('"' + EscapeJson(v) + '"'); }
  void Double(double v) { Raw(Num(v)); }
  void Int(int64_t v) { Raw(std::to_string(v)); }
  void UInt(uint64_t v) { Raw(std::to_string(v)); }

  const std::string& str() const { return out_; }

 private:
  void Raw(const std::string& text) {
    out_ += text;
    pending_value_ = false;
    first_ = false;
  }
  void Separate() {
    if (pending_value_) {
      pending_value_ = false;  // a key was just written; no comma
      return;
    }
    if (!first_) out_ += ',';
  }
  void Newline() {
    if (indent_ == 0) return;
    out_ += '\n';
    out_.append(static_cast<size_t>(depth_ * indent_), ' ');
  }

  int indent_;
  int depth_ = 0;
  bool first_ = true;
  bool pending_value_ = false;
  std::string out_;
};

void EmitDistribution(JsonWriter& w, const std::string& name,
                      const LatencyHistogram& h) {
  w.Key(name);
  w.BeginObject();
  w.Key("count");
  w.Int(h.count());
  w.Key("mean");
  w.Double(h.Mean());
  w.Key("min");
  w.Double(h.Min());
  w.Key("p50");
  w.Double(h.Percentile(0.50));
  w.Key("p90");
  w.Double(h.Percentile(0.90));
  w.Key("p95");
  w.Double(h.Percentile(0.95));
  w.Key("p99");
  w.Double(h.Percentile(0.99));
  w.Key("max");
  w.Double(h.Max());
  w.EndObject();
}

}  // namespace

std::string RunReportJson(const RunReportContext& context, const Metrics& m,
                          int indent) {
  JsonWriter w(indent);
  w.BeginObject();
  w.Key("schema_version");
  w.Int(6);
  w.Key("experiment");
  w.String(context.experiment);
  w.Key("scheme");
  w.String(context.scheme);
  w.Key("window");
  w.String(context.window);
  w.Key("num_taxis");
  w.Int(context.num_taxis);
  w.Key("num_requests");
  w.Int(context.num_requests);
  w.Key("seed");
  w.UInt(context.seed);

  w.Key("requests");
  w.BeginObject();
  w.Key("total");
  w.Int(m.TotalRequests());
  w.Key("served");
  w.Int(m.ServedRequests());
  w.Key("served_online");
  w.Int(m.ServedOnline());
  w.Key("served_offline");
  w.Int(m.ServedOffline());
  w.EndObject();

  EmitDistribution(w, "response_ms", m.response_hist());
  EmitDistribution(w, "waiting_min", m.waiting_hist());
  EmitDistribution(w, "detour_min", m.detour_hist());
  EmitDistribution(w, "candidates", m.candidates_hist());

  // Per-phase dispatch breakdown, reconciled against the engine's total
  // dispatcher wall-clock: attributed_ms + unattributed_ms ==
  // dispatch_total_ms (the residual is glue and index bookkeeping between
  // the instrumented sections — or timing disabled, in which case every
  // phase reads zero).
  const double attributed_ms = m.phases.total_seconds() * 1e3;
  const double total_ms = m.TotalDispatchMs();
  w.Key("phases");
  w.BeginObject();
  w.Key("enabled");
  w.Int(m.phases.enabled ? 1 : 0);
  for (size_t i = 0; i < kNumDispatchPhases; ++i) {
    w.Key(DispatchPhaseName(static_cast<DispatchPhase>(i)));
    w.BeginObject();
    w.Key("ms");
    w.Double(m.phases.seconds[i] * 1e3);
    w.Key("calls");
    w.Int(m.phases.calls[i]);
    w.EndObject();
  }
  w.Key("attributed_ms");
  w.Double(attributed_ms);
  w.Key("dispatch_total_ms");
  w.Double(total_ms);
  w.Key("unattributed_ms");
  w.Double(total_ms - attributed_ms);
  w.Key("offline_probe_ms");
  w.Double(m.offline_probe_ms);
  w.EndObject();

  // schema_version 3 adds oracle.backend and the routing ch_* block.
  w.Key("oracle");
  w.BeginObject();
  w.Key("backend");
  w.String(m.oracle_backend);
  w.Key("queries");
  w.Int(m.oracle_queries);
  w.Key("row_hits");
  w.Int(m.oracle_row_hits);
  w.Key("row_misses");
  w.Int(m.oracle_row_misses);
  w.EndObject();

  // Batched insertion routing: how many one-to-many passes replaced
  // per-pair queries, the truncated-sweep work they paid, lower-bound-
  // pruned candidates, and table misses that fell back to the oracle
  // (expected 0 — a nonzero value means the priming fan missed a leg
  // shape). The ch_* counters describe the contraction-hierarchy backend
  // (all zero when routing ran on the table/LRU backends);
  // ch_upward_settled is directly comparable to settled_vertices.
  w.Key("routing");
  w.BeginObject();
  w.Key("batched");
  w.Int(m.routing.batched ? 1 : 0);
  w.Key("batch_queries");
  w.Int(m.routing.batch_queries);
  w.Key("settled_vertices");
  w.Int(m.routing.settled_vertices);
  w.Key("lb_pruned");
  w.Int(m.routing.lb_pruned);
  w.Key("fallback_queries");
  w.Int(m.routing.fallback_queries);
  w.Key("ch_active");
  w.Int(m.routing.ch_active ? 1 : 0);
  w.Key("ch_shortcuts");
  w.Int(m.routing.ch_shortcuts);
  w.Key("ch_preprocessing_ms");
  w.Double(m.routing.ch_preprocessing_ms);
  w.Key("ch_point_queries");
  w.Int(m.routing.ch_point_queries);
  w.Key("ch_bucket_queries");
  w.Int(m.routing.ch_bucket_queries);
  w.Key("ch_upward_settled");
  w.Int(m.routing.ch_upward_settled);
  w.Key("ch_bucket_entries");
  w.Int(m.routing.ch_bucket_entries);
  // schema_version 6 adds the candidate-search path (DESIGN.md §14):
  // which path discovered pickup-reachable taxis, how many taxis the
  // last-stop bucket sweeps returned, the bucket upkeep cost, and the
  // detour-ellipse screen's slot traffic. All zero / "index" on the
  // native path.
  w.Key("candidate_search");
  w.String(m.routing.bucket_search ? "ch_buckets" : "index");
  w.Key("bucket_candidates");
  w.Int(m.routing.bucket_candidates);
  w.Key("bucket_maintenance_ms");
  w.Double(m.routing.bucket_maintenance_ms);
  w.Key("slots_screened");
  w.Int(m.routing.slots_screened);
  w.Key("ellipse_pruned");
  w.Int(m.routing.ellipse_pruned);
  w.EndObject();

  // schema_version 4 adds the engine block: which advancement core ran and
  // its work counters (heap pops and lazily synced taxis stay zero on the
  // sweep core; boundaries/drain_rounds are shared).
  w.Key("engine");
  w.BeginObject();
  w.Key("event_driven");
  w.Int(m.engine.event_driven ? 1 : 0);
  w.Key("heap_pops");
  w.Int(m.engine.heap_pops);
  w.Key("lazy_syncs");
  w.Int(m.engine.lazy_syncs);
  w.Key("arcs_stepped");
  w.Int(m.engine.arcs_stepped);
  w.Key("boundaries");
  w.Int(m.engine.boundaries);
  w.Key("boundaries_deferred");
  w.Int(m.engine.boundaries_deferred);
  w.Key("drain_rounds");
  w.Int(m.engine.drain_rounds);
  w.EndObject();

  // schema_version 5 adds the serve block: the streaming-ingest discipline
  // (batch window) and its admission/backpressure counters. Classic runs
  // report batch_window_ms 0, one request per dispatch, nothing shed.
  w.Key("serve");
  w.BeginObject();
  w.Key("batch_window_ms");
  w.Double(m.serve.batch_window_ms);
  w.Key("batches");
  w.Int(m.serve.batches);
  w.Key("admitted");
  w.Int(m.serve.admitted);
  w.Key("shed");
  w.Int(m.serve.shed);
  w.Key("queue_depth");
  w.Int(m.serve.queue_depth);
  w.EndObject();

  w.Key("index_memory_bytes");
  w.UInt(m.index_memory_bytes);
  w.Key("total_driver_income");
  w.Double(m.total_driver_income);
  w.Key("execution_seconds");
  w.Double(m.execution_seconds);
  w.EndObject();
  return w.str();
}

Status WriteRunReport(const std::string& path,
                      const RunReportContext& context, const Metrics& m) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write run report: " + path);
  out << RunReportJson(context, m, /*indent=*/2) << "\n";
  out.flush();
  if (!out) return Status::IoError("short write to run report: " + path);
  return Status::OK();
}

Status AppendRunReportLine(const std::string& path,
                           const RunReportContext& context, const Metrics& m) {
  std::ofstream out(path, std::ios::app);
  if (!out) return Status::IoError("cannot append run report: " + path);
  out << RunReportJson(context, m, /*indent=*/0) << "\n";
  out.flush();
  if (!out) return Status::IoError("short write to run report: " + path);
  return Status::OK();
}

}  // namespace mtshare
