#ifndef MTSHARE_SIM_REQUEST_SOURCE_H_
#define MTSHARE_SIM_REQUEST_SOURCE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "demand/demand_model.h"
#include "demand/request.h"
#include "demand/request_generator.h"
#include "routing/distance_oracle.h"

namespace mtshare {

/// Pull-based request ingest (DESIGN.md §12). The engine consumes one
/// request at a time, so the full stream never has to exist in memory —
/// the seam that lets the same dispatch loop replay a pre-materialized
/// vector bit-identically, parse a live request log, or sample a
/// million-request scenario lazily.
///
/// Contract:
///  - single-pass: a source is consumed by exactly one run;
///  - requests come out sorted by release time with ids dense from 0
///    (sources self-validate and stop with a failed status() instead of
///    handing a malformed request to the engine);
///  - non-owning users (ScenarioSpec::source) must keep the source alive
///    for the duration of the run.
class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// Pops the next request. Returns false at end of stream or on error —
  /// check status() to tell the two apart.
  bool Next(RideRequest* out);

  /// Reads the next request without consuming it (the engine peeks the
  /// first release time to place the fleet). Same return convention.
  bool Peek(RideRequest* out);

  /// OK while the stream is healthy; the first parse/ordering error
  /// otherwise. A failed source stops producing (Next returns false).
  virtual Status status() const { return Status::OK(); }

 protected:
  /// Produces the next request, or returns false when exhausted/failed.
  virtual bool Produce(RideRequest* out) = 0;

 private:
  bool has_buffered_ = false;
  RideRequest buffered_;
};

/// Replays a pre-materialized request vector — the classic ingest path.
/// Non-owning: the vector must outlive the source. Byte-identical to the
/// pre-RequestSource engine loop by construction.
class VectorRequestSource : public RequestSource {
 public:
  explicit VectorRequestSource(const std::vector<RideRequest>* requests);

 protected:
  bool Produce(RideRequest* out) override;

 private:
  const std::vector<RideRequest>* requests_;
  size_t pos_ = 0;
};

struct StreamSourceOptions {
  /// Called on every parsed request before validation — the seam that
  /// fills fields the log omits (mtshare_serve derives `direct_cost` from
  /// the oracle and `deadline` from rho without coupling sim to routing).
  std::function<void(RideRequest*)> finalize;
  /// When > 0, origin/destination vertices outside [0, num_vertices) fail
  /// the stream with a line-tagged error instead of crashing downstream.
  int64_t num_vertices = 0;
};

/// Parses newline-delimited requests from an istream as they arrive. Each
/// non-comment line is one request in either the CSV or the JSON layout of
/// FormatRequestCsv/FormatRequestJson (auto-detected per line; see
/// demand/trip_io.h). Requests without an id get the next dense id, so raw
/// service traffic does not need to carry ids. Malformed lines, unsorted
/// release times, and non-dense explicit ids fail status() and end the
/// stream.
class StreamRequestSource : public RequestSource {
 public:
  /// `in` is non-owning and must outlive the source.
  explicit StreamRequestSource(std::istream* in,
                               StreamSourceOptions options = {});

  Status status() const override { return status_; }
  /// Requests produced so far (the serve tool's ingest counter).
  int64_t produced() const { return next_id_; }

 protected:
  bool Produce(RideRequest* out) override;

 private:
  Status Malformed(const std::string& why) const;

  std::istream* in_;
  StreamSourceOptions options_;
  Status status_ = Status::OK();
  RequestId next_id_ = 0;
  Seconds last_release_ = 0.0;
  int64_t line_no_ = 0;
};

/// Streams a synthetic scenario without materializing it: only the release
/// times are pre-sampled (8 bytes per request, rejection-sampled against
/// the demand model's diurnal profile exactly like MakeScenario); the
/// trips, oracle costs, and deadlines of each request materialize lazily
/// per Next(). Deterministic for a fixed (demand, options.seed) pair —
/// two instances produce identical streams.
class GeneratorRequestSource : public RequestSource {
 public:
  /// `demand` and `oracle` are non-owning and must outlive the source.
  /// Historical-trip generation is the caller's business (this source
  /// covers only the evaluation window); options.num_historical_trips is
  /// ignored.
  GeneratorRequestSource(const DemandModel& demand, DistanceOracle& oracle,
                         const ScenarioOptions& options);

 protected:
  bool Produce(RideRequest* out) override;

 private:
  const DemandModel* demand_;
  DistanceOracle* oracle_;
  ScenarioOptions options_;
  Rng rng_;
  std::vector<Seconds> release_times_;
  size_t next_time_ = 0;
  RequestId next_id_ = 0;
};

}  // namespace mtshare

#endif  // MTSHARE_SIM_REQUEST_SOURCE_H_
