#include "sim/request_source.h"

#include <algorithm>
#include <istream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "demand/trip_io.h"

namespace mtshare {

bool RequestSource::Next(RideRequest* out) {
  if (has_buffered_) {
    *out = buffered_;
    has_buffered_ = false;
    return true;
  }
  return Produce(out);
}

bool RequestSource::Peek(RideRequest* out) {
  if (!has_buffered_) {
    if (!Produce(&buffered_)) return false;
    has_buffered_ = true;
  }
  *out = buffered_;
  return true;
}

VectorRequestSource::VectorRequestSource(
    const std::vector<RideRequest>* requests)
    : requests_(requests) {
  MTSHARE_CHECK(requests != nullptr);
}

bool VectorRequestSource::Produce(RideRequest* out) {
  if (pos_ >= requests_->size()) return false;
  *out = (*requests_)[pos_++];
  return true;
}

StreamRequestSource::StreamRequestSource(std::istream* in,
                                         StreamSourceOptions options)
    : in_(in), options_(std::move(options)) {
  MTSHARE_CHECK(in != nullptr);
}

Status StreamRequestSource::Malformed(const std::string& why) const {
  std::ostringstream os;
  os << "request stream line " << line_no_ << ": " << why;
  return Status::InvalidArgument(os.str());
}

bool StreamRequestSource::Produce(RideRequest* out) {
  if (!status_.ok()) return false;
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    std::string_view text = Trim(line);
    if (text.empty() || text[0] == '#') continue;
    Result<RideRequest> parsed = ParseRequestLine(text);
    if (!parsed.ok()) {
      status_ = Malformed(parsed.status().message());
      return false;
    }
    RideRequest r = std::move(parsed).value();
    if (r.id == kInvalidRequest) r.id = next_id_;
    if (options_.finalize) options_.finalize(&r);
    // Validate here, where the error can carry a line number, instead of
    // letting the engine CHECK-fail on a malformed stream.
    if (r.id != next_id_) {
      status_ = Malformed("ids must be dense from 0 (expected " +
                          std::to_string(next_id_) + ", got " +
                          std::to_string(r.id) + ")");
      return false;
    }
    if (r.release_time < last_release_) {
      status_ = Malformed("requests must be sorted by release time");
      return false;
    }
    if (r.origin < 0 || r.destination < 0 ||
        (options_.num_vertices > 0 &&
         (r.origin >= options_.num_vertices ||
          r.destination >= options_.num_vertices))) {
      status_ = Malformed("origin/destination vertex out of range");
      return false;
    }
    if (r.passengers < 1) {
      status_ = Malformed("passengers must be >= 1");
      return false;
    }
    if (r.direct_cost <= 0.0) {
      status_ = Malformed(
          "request has no direct_cost (carry one in the log or install a "
          "finalize hook that derives it)");
      return false;
    }
    if (r.deadline <= r.release_time) {
      status_ = Malformed(
          "request has no feasible deadline (carry one in the log or "
          "install a finalize hook that derives it)");
      return false;
    }
    ++next_id_;
    last_release_ = r.release_time;
    *out = r;
    return true;
  }
  return false;
}

GeneratorRequestSource::GeneratorRequestSource(const DemandModel& demand,
                                               DistanceOracle& oracle,
                                               const ScenarioOptions& options)
    : demand_(&demand),
      oracle_(&oracle),
      options_(options),
      rng_(options.seed) {
  MTSHARE_CHECK(options.rho > 1.0);
  MTSHARE_CHECK(options.offline_fraction >= 0.0 &&
                options.offline_fraction <= 1.0);
  MTSHARE_CHECK(options.t_end > options.t_begin);
  MTSHARE_CHECK(options.num_requests >= 0);
  // Pre-sample only the release times — the same rejection sampling
  // against the diurnal profile DemandModel::GenerateTrips runs, without
  // materializing the trips behind them.
  double max_weight = 0.0;
  for (int32_t h = 0; h < 24; ++h) {
    max_weight =
        std::max(max_weight, DemandModel::DiurnalWeight(demand.day(), h));
  }
  release_times_.reserve(options.num_requests);
  while (static_cast<int32_t>(release_times_.size()) < options.num_requests) {
    Seconds t = rng_.NextUniform(options.t_begin, options.t_end);
    double accept =
        DemandModel::DiurnalWeight(demand.day(), HourOf(t)) / max_weight;
    if (rng_.NextDouble() > accept) continue;
    release_times_.push_back(t);
  }
  std::sort(release_times_.begin(), release_times_.end());
}

bool GeneratorRequestSource::Produce(RideRequest* out) {
  while (next_time_ < release_times_.size()) {
    const Seconds t = release_times_[next_time_++];
    Trip trip = demand_->SampleTrip(t, rng_);
    Seconds direct = oracle_->Cost(trip.origin, trip.destination);
    for (int attempt = 0; attempt < 8 && (direct == kInfiniteCost ||
                                          trip.origin == trip.destination);
         ++attempt) {
      trip = demand_->SampleTrip(t, rng_);
      direct = oracle_->Cost(trip.origin, trip.destination);
    }
    if (direct == kInfiniteCost || trip.origin == trip.destination) {
      continue;  // pathological sample; drop, like MakeScenario
    }
    RideRequest r;
    r.id = next_id_++;
    r.release_time = t;
    r.origin = trip.origin;
    r.destination = trip.destination;
    r.direct_cost = direct;
    r.deadline = t + options_.rho * direct;
    r.passengers = 1;
    if (rng_.NextDouble() < options_.multi_rider_fraction &&
        options_.max_party > 1) {
      r.passengers = static_cast<int32_t>(rng_.NextInt(2, options_.max_party));
    }
    r.offline = rng_.NextDouble() < options_.offline_fraction;
    *out = r;
    return true;
  }
  return false;
}

}  // namespace mtshare
