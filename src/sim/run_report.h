#ifndef MTSHARE_SIM_RUN_REPORT_H_
#define MTSHARE_SIM_RUN_REPORT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sim/metrics.h"

namespace mtshare {

/// Identifies one run inside a report: which harness produced it and with
/// what headline parameters. Free-form fields stay empty when unknown.
struct RunReportContext {
  /// Producing harness, e.g. "mtshare_sim" or a bench banner slug.
  std::string experiment;
  std::string scheme;
  /// "peak" / "nonpeak" / "" when not applicable.
  std::string window;
  int32_t num_taxis = 0;
  int32_t num_requests = 0;
  uint64_t seed = 0;
};

/// Serializes context + metrics as a structured JSON run report
/// (schema_version 1; layout documented in EXPERIMENTS.md). `indent` > 0
/// pretty-prints with that many spaces per level; `indent` == 0 emits one
/// line (the BENCH_*.json trajectory format).
std::string RunReportJson(const RunReportContext& context, const Metrics& m,
                          int indent = 2);

/// Writes a pretty-printed report to `path`, replacing any existing file.
Status WriteRunReport(const std::string& path, const RunReportContext& context,
                      const Metrics& m);

/// Appends one single-line JSON entry to `path` (creating it if needed) —
/// the bench trajectory format: one run per line, greppable and
/// concatenation-safe across bench invocations.
Status AppendRunReportLine(const std::string& path,
                           const RunReportContext& context, const Metrics& m);

}  // namespace mtshare

#endif  // MTSHARE_SIM_RUN_REPORT_H_
