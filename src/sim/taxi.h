#ifndef MTSHARE_SIM_TAXI_H_
#define MTSHARE_SIM_TAXI_H_

#include <vector>

#include "matching/taxi_state.h"

namespace mtshare {

/// Computes per-vertex arrival times for a path departing at `start_time`,
/// using the cheapest arc between consecutive vertices. Dies if the path
/// uses a nonexistent arc (routes must come from the planners).
std::vector<Seconds> ComputeRouteTimes(const RoadNetwork& network,
                                       const std::vector<VertexId>& path,
                                       Seconds start_time);

/// Applies a dispatch plan to a taxi: replaces schedule, route, and event
/// arrival times; the taxi departs its current location at `now`.
void ApplyPlan(TaxiState* taxi, const RoadNetwork& network, Schedule schedule,
               const std::vector<VertexId>& path,
               std::vector<Seconds> event_arrivals, Seconds now,
               bool probabilistic_route);

}  // namespace mtshare

#endif  // MTSHARE_SIM_TAXI_H_
