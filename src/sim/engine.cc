#include "sim/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "sim/request_source.h"
#include "sim/taxi.h"

namespace mtshare {

SimulationEngine::SimulationEngine(const RoadNetwork& network,
                                   Dispatcher* dispatcher,
                                   std::vector<TaxiState>* fleet,
                                   const EngineOptions& options)
    : network_(network),
      dispatcher_(dispatcher),
      fleet_(fleet),
      options_(options) {
  MTSHARE_CHECK(dispatcher != nullptr);
  MTSHARE_CHECK(fleet != nullptr);
  if (options.serve_offline) {
    snap_ = std::make_unique<GridIndex>(
        network, std::max(50.0, options.encounter_radius_m));
  }
  taxi_gen_.assign(fleet->size(), 0);
  dispatcher_->set_fleet_sync(this);
}

SimulationEngine::~SimulationEngine() {
  if (dispatcher_->fleet_sync() == this) dispatcher_->set_fleet_sync(nullptr);
}

Metrics SimulationEngine::Run(const std::vector<RideRequest>& requests) {
  VectorRequestSource source(&requests);
  return Run(source);
}

Metrics SimulationEngine::Run(RequestSource& source) {
  WallTimer run_timer;
  metrics_ = Metrics();
  metrics_.engine.event_driven = options_.event_driven;
  metrics_.serve.batch_window_ms = std::max(0.0, options_.batch_window_ms);
  requests_.clear();
  waiting_offline_.clear();
  offline_done_.clear();
  commit_horizon_ = 0.0;
  deferred_pending_ = false;
  last_deferred_ = 0.0;
  last_release_ = 0.0;
  if (options_.event_driven) {
    heap_ = {};
    taxi_gen_.assign(fleet_->size(), 0);
    idle_routeless_.clear();
    for (TaxiState& taxi : *fleet_) {
      RearmTaxi(taxi);
      UpdateIdleSet(taxi);
    }
  }

  const Seconds window = metrics_.serve.batch_window_ms / 1000.0;
  RideRequest next;
  if (window <= 0.0) {
    // Per-request replay: each pull is one release boundary — the
    // historical engine loop, fed lazily.
    while (source.Next(&next)) {
      Ingest(next);
      ProcessBoundary(requests_.back());
    }
  } else {
    // Batch-window ingest (Luo et al., arXiv 2004.02570): the window
    // anchors at the first pending arrival; everything released before
    // anchor + Δt joins the batch, which dispatches at window close.
    std::vector<RequestId> queue;  // pending online requests, release order
    std::vector<RequestId> hails;  // pending offline releases
    Seconds window_close = 0.0;
    bool open = false;
    while (source.Next(&next)) {
      if (open && next.release_time >= window_close) {
        FlushBatch(&queue, &hails, window_close);
        open = false;
      }
      Ingest(next);
      const RideRequest& r = requests_.back();
      if (!open) {
        window_close = r.release_time + window;
        open = true;
      }
      if (r.offline) {
        hails.push_back(r.id);
        continue;
      }
      if (options_.max_queue > 0 &&
          static_cast<int64_t>(queue.size()) >= options_.max_queue) {
        ++metrics_.serve.shed;
        RequestRecord& rec = metrics_.record(r.id);
        rec.shed = true;
        if (options_.on_decision) options_.on_decision(r, rec);
        continue;
      }
      queue.push_back(r.id);
      metrics_.serve.queue_depth = std::max(
          metrics_.serve.queue_depth, static_cast<int64_t>(queue.size()));
    }
    if (open) FlushBatch(&queue, &hails, window_close);
  }

  // Drain: instead of a fixed margin past the last deadline, iterate to a
  // fixed point — every committed plan must play its route out (committed
  // tails can arrive after their planned event times on probabilistic
  // routes), and waiting hailers stay eligible until their pickup
  // deadlines pass.
  Seconds target = std::max(last_release_, commit_horizon_);
  if (deferred_pending_) target = std::max(target, last_deferred_);
  if (options_.serve_offline && dispatcher_->ServesOfflineRequests()) {
    for (const RideRequest& r : requests_) {
      if (r.offline && !offline_done_[r.id]) {
        target = std::max(target, r.PickupDeadline());
      }
    }
  }
  for (;;) {
    ++metrics_.engine.drain_rounds;
    Advance(target);
    if (commit_horizon_ > target) {
      target = commit_horizon_;  // a drain-time encounter committed a plan
      continue;
    }
    break;
  }
  for (const TaxiState& taxi : *fleet_) {
    // Every onboard passenger must have been delivered by the drain.
    MTSHARE_CHECK(taxi.onboard == 0);
    MTSHARE_CHECK(taxi.schedule.empty());
  }

  metrics_.index_memory_bytes = dispatcher_->IndexMemoryBytes();
  double income = 0.0;
  for (const TaxiState& t : *fleet_) income += t.income;
  metrics_.total_driver_income = income;
  metrics_.execution_seconds = run_timer.ElapsedSeconds();
  metrics_.phases = dispatcher_->phase_timers();
  metrics_.routing = dispatcher_->routing_stats();
  metrics_.FinalizeDistributions();
  return std::move(metrics_);
}

void SimulationEngine::Ingest(const RideRequest& r) {
  // Metrics::Register CHECKs dense ids; monotone release times are the
  // streaming contract (sources self-validate and report violations as a
  // failed status before handing the request over — this is the backstop).
  MTSHARE_CHECK(r.release_time >= last_release_);
  metrics_.Register(r);
  requests_.push_back(r);
  offline_done_.push_back(0);
  last_release_ = r.release_time;
}

void SimulationEngine::ProcessBoundary(const RideRequest& r) {
  if (CanDeferBoundary(r)) {
    // The request is invisible to the dispatcher and nothing at this
    // boundary can observe fleet positions — skip the advancement and
    // let the next real boundary (or the drain) catch the fleet up.
    ++metrics_.engine.boundaries_deferred;
    deferred_pending_ = true;
    last_deferred_ = std::max(last_deferred_, r.release_time);
    return;
  }
  ++metrics_.engine.boundaries;
  Advance(r.release_time);
  deferred_pending_ = false;
  if (r.offline) {
    RegisterHailer(r);
    return;  // invisible to the dispatcher until encountered
  }
  metrics_.serve.queue_depth = std::max<int64_t>(metrics_.serve.queue_depth, 1);
  DispatchOne(r, r.release_time);
}

void SimulationEngine::FlushBatch(std::vector<RequestId>* queue,
                                  std::vector<RequestId>* hails,
                                  Seconds when) {
  ++metrics_.serve.batches;
  ++metrics_.engine.boundaries;
  Advance(when);
  deferred_pending_ = false;
  // Hailers start waiting before the online batch dispatches: they were on
  // the street the whole window, and a window-close assignment may route a
  // taxi right past them.
  for (RequestId id : *hails) RegisterHailer(requests_[id]);
  hails->clear();
  if (!queue->empty()) {
    batch_buf_.clear();
    for (RequestId id : *queue) batch_buf_.push_back(&requests_[id]);
    dispatcher_->DispatchBatch(
        batch_buf_, when,
        [this, when](const RideRequest& r) { DispatchOne(r, when); });
  }
  queue->clear();
}

void SimulationEngine::RegisterHailer(const RideRequest& r) {
  if (!options_.serve_offline || !dispatcher_->ServesOfflineRequests()) {
    return;
  }
  // Register the hailer at every vertex a passing driver could spot them
  // from.
  for (VertexId v : snap_->VerticesInRadius(network_.coord(r.origin),
                                            options_.encounter_radius_m)) {
    waiting_offline_[v].push_back(r.id);
  }
}

void SimulationEngine::DispatchOne(const RideRequest& r, Seconds now) {
  ++metrics_.serve.admitted;
  WallTimer response_timer;
  DispatchOutcome outcome = dispatcher_->Dispatch(r, now);
  double ms = response_timer.ElapsedMillis();
  RequestRecord& rec = metrics_.record(r.id);
  rec.response_ms = ms;
  rec.candidates = outcome.candidates;
  if (outcome.assigned) {
    rec.assigned = true;
    rec.taxi = outcome.taxi;
    TaxiState& taxi = (*fleet_)[outcome.taxi];
    ApplyPlan(&taxi, network_, std::move(outcome.schedule),
              outcome.route.path.vertices,
              std::move(outcome.route.event_arrivals), now,
              outcome.probabilistic_route);
    ExecuteDueEvents(taxi);  // pickup may be immediate (same vertex)
    dispatcher_->OnScheduleCommitted(outcome.taxi);
    dispatcher_->OnScheduleChanged(outcome.taxi);
    NoteCommit(taxi);
    if (options_.event_driven) {
      RearmTaxi(taxi);
      UpdateIdleSet(taxi);
    }
  }
  if (options_.on_decision) options_.on_decision(r, metrics_.record(r.id));
}

bool SimulationEngine::CanDeferBoundary(const RideRequest& r) const {
  if (!options_.event_driven || !r.offline) return false;
  // Deferring is only sound when the boundary has no observable effect:
  // the request is never registered as a hailer, no hailer is waiting to
  // be encountered, no cruise offers would be made, and the scheme's
  // index tolerates per-span batching of movement updates.
  if (options_.serve_offline && dispatcher_->ServesOfflineRequests()) {
    return false;
  }
  if (!waiting_offline_.empty()) return false;
  if (dispatcher_->IndexUpdatesOrderSensitive()) return false;
  if (options_.serve_offline && dispatcher_->IdleCruisingEnabled()) {
    return false;
  }
  return true;
}

void SimulationEngine::Advance(Seconds now) {
  if (options_.event_driven) {
    AdvanceTo(now);
  } else {
    AdvanceAll(now);
  }
}

void SimulationEngine::SyncTaxi(TaxiId id, Seconds now) {
  if (id == advancing_) return;  // re-entrant: already mid-advance
  TaxiState& taxi = (*fleet_)[id];
  if (!taxi.HasRoute() || taxi.route.time(taxi.route_pos + 1) > now) {
    return;  // nothing due: the stored state is already current
  }
  ++metrics_.engine.lazy_syncs;
  advancing_ = id;
  if (options_.event_driven) {
    AdvanceTaxiEvent(taxi, now);
  } else {
    AdvanceTaxi(taxi, now);
  }
  advancing_ = kInvalidTaxi;
  if (options_.event_driven) {
    RearmTaxi(taxi);
    UpdateIdleSet(taxi);
  }
}

void SimulationEngine::AdvanceAll(Seconds now) {
  for (TaxiState& taxi : *fleet_) {
    advancing_ = taxi.id;
    AdvanceTaxi(taxi, now);
    advancing_ = kInvalidTaxi;
    if (options_.serve_offline && taxi.Idle() && !taxi.HasRoute()) {
      // Offer the idle taxi a cruise (mT-Share-pro steers empty taxis
      // toward offline demand; other schemes park them).
      RoutePlanner::PlannedRoute cruise =
          dispatcher_->PlanIdleCruise(taxi.id, now);
      if (cruise.valid && cruise.path.vertices.size() > 1) {
        ApplyPlan(&taxi, network_, Schedule(), cruise.path.vertices, {}, now,
                  /*probabilistic_route=*/true);
      }
    }
  }
}

void SimulationEngine::AdvanceTo(Seconds now) {
  due_.clear();
  while (!heap_.empty() && heap_.top().time <= now) {
    PendingArc top = heap_.top();
    heap_.pop();
    ++metrics_.engine.heap_pops;
    if (top.gen != taxi_gen_[top.taxi]) continue;  // stale entry
    due_.push_back(top.taxi);
  }
  // Advance in taxi-id order, each taxi fully, replaying the sweep's
  // deterministic iteration (offline encounters resolve by lowest id).
  std::sort(due_.begin(), due_.end());
  for (TaxiId id : due_) {
    TaxiState& taxi = (*fleet_)[id];
    advancing_ = id;
    AdvanceTaxiEvent(taxi, now);
    advancing_ = kInvalidTaxi;
    RearmTaxi(taxi);
    UpdateIdleSet(taxi);
  }
  if (options_.serve_offline && dispatcher_->IdleCruisingEnabled()) {
    // Cruise offers go to every idle routeless taxi in id order — the same
    // set and order the sweep visits, so the sampler's rng stream and the
    // per-taxi rate limiter behave identically. Offers mutate the set
    // (ApplyPlan), so iterate a snapshot.
    offer_buf_.assign(idle_routeless_.begin(), idle_routeless_.end());
    for (TaxiId id : offer_buf_) {
      TaxiState& taxi = (*fleet_)[id];
      if (!taxi.Idle() || taxi.HasRoute()) continue;
      RoutePlanner::PlannedRoute cruise =
          dispatcher_->PlanIdleCruise(id, now);
      if (cruise.valid && cruise.path.vertices.size() > 1) {
        ApplyPlan(&taxi, network_, Schedule(), cruise.path.vertices, {}, now,
                  /*probabilistic_route=*/true);
        RearmTaxi(taxi);
        UpdateIdleSet(taxi);
      }
    }
  }
}

void SimulationEngine::StepArc(TaxiState& taxi) {
  // Arc lengths were cached on the route node when the plan was applied.
  double meters = taxi.route.arc_length_m(taxi.route_pos);
  taxi.driven_meters += meters;
  if (taxi.onboard > 0) {
    taxi.occupied_meters += meters;
    taxi.episode_meters += meters;
  }
  ++taxi.route_pos;
  taxi.location = taxi.route.vertex(taxi.route_pos);
  taxi.location_time = taxi.route.time(taxi.route_pos);
  ++metrics_.engine.arcs_stepped;
}

void SimulationEngine::AdvanceTaxi(TaxiState& taxi, Seconds now) {
  while (taxi.route_pos + 1 < taxi.route.size() &&
         taxi.route.time(taxi.route_pos + 1) <= now) {
    StepArc(taxi);
    bool had_events = !taxi.schedule.empty();
    ExecuteDueEvents(taxi);
    dispatcher_->OnTaxiMoved(taxi.id);
    dispatcher_->OnScheduleChanged(taxi.id);
    if (had_events && taxi.schedule.empty()) {
      // Route drained to idle; let the scheme refresh its indexes.
      dispatcher_->OnScheduleCommitted(taxi.id);
    }
    CheckOfflineEncounters(taxi, taxi.location_time);
  }
}

void SimulationEngine::AdvanceTaxiEvent(TaxiState& taxi, Seconds now) {
  // Identical arc walk to AdvanceTaxi, but movement notifications are
  // batched into spans: one OnTaxiAdvanced per uninterrupted stretch of
  // arcs. Spans split exactly where the per-arc sweep interleaves other
  // work — at schedule events (the index must observe the pre-event
  // schedule for earlier arcs and the post-event schedule at the event
  // arc) and at encounter probes (the probe must observe up-to-date
  // indexes).
  size_t batch_start = taxi.route_pos;
  while (taxi.route_pos + 1 < taxi.route.size() &&
         taxi.route.time(taxi.route_pos + 1) <= now) {
    StepArc(taxi);
    bool event_due = false;
    if (!taxi.schedule.empty()) {
      const ScheduleEvent& event = taxi.schedule.events().front();
      event_due = event.vertex == taxi.location &&
                  taxi.event_arrivals[taxi.event_pos] <=
                      taxi.location_time + 1e-6;
    }
    bool probe_due = options_.serve_offline &&
                     dispatcher_->ServesOfflineRequests() &&
                     waiting_offline_.count(taxi.location) > 0;
    if (event_due) {
      if (taxi.route_pos - 1 > batch_start) {
        // Arcs strictly before the event arc, under the pre-event schedule.
        dispatcher_->OnTaxiAdvanced(taxi.id, batch_start, taxi.route_pos - 1);
      }
      ExecuteDueEvents(taxi);
      // The event arc itself, under the post-event schedule — this is the
      // OnTaxiMoved the sweep issues right after executing the events.
      dispatcher_->OnTaxiAdvanced(taxi.id, taxi.route_pos - 1, taxi.route_pos);
      if (taxi.schedule.empty()) {
        dispatcher_->OnScheduleCommitted(taxi.id);
      }
      batch_start = taxi.route_pos;
    } else if (probe_due) {
      if (taxi.route_pos > batch_start) {
        dispatcher_->OnTaxiAdvanced(taxi.id, batch_start, taxi.route_pos);
      }
      batch_start = taxi.route_pos;
    }
    if (probe_due) {
      CheckOfflineEncounters(taxi, taxi.location_time);
      // A served encounter replanned the route (route_pos reset to 0).
      batch_start = taxi.route_pos;
    }
  }
  if (taxi.route_pos > batch_start) {
    dispatcher_->OnTaxiAdvanced(taxi.id, batch_start, taxi.route_pos);
  }
  // Unconditional: a served encounter replans the route and resets
  // route_pos to 0, which can coincidentally equal the starting position,
  // so a moved-position check would be unsound. Dirty-marking is O(1) and
  // idempotent; the flush skips taxis whose anchor did not move.
  dispatcher_->OnScheduleChanged(taxi.id);
}

void SimulationEngine::RearmTaxi(const TaxiState& taxi) {
  ++taxi_gen_[taxi.id];
  if (taxi.HasRoute()) {
    heap_.push(PendingArc{taxi.route.time(taxi.route_pos + 1), taxi.id,
                          taxi_gen_[taxi.id]});
  }
}

void SimulationEngine::UpdateIdleSet(const TaxiState& taxi) {
  if (taxi.Idle() && !taxi.HasRoute()) {
    idle_routeless_.insert(taxi.id);
  } else {
    idle_routeless_.erase(taxi.id);
  }
}

void SimulationEngine::NoteCommit(const TaxiState& taxi) {
  if (!taxi.route.empty()) {
    commit_horizon_ = std::max(commit_horizon_, taxi.route.back_time());
  }
}

void SimulationEngine::ExecuteDueEvents(TaxiState& taxi) {
  while (!taxi.schedule.empty()) {
    const ScheduleEvent event = taxi.schedule.events().front();
    Seconds planned = taxi.event_arrivals[taxi.event_pos];
    if (event.vertex != taxi.location ||
        planned > taxi.location_time + 1e-6) {
      break;
    }
    taxi.schedule.PopFront();
    ++taxi.event_pos;
    if (event.is_pickup) {
      HandlePickup(taxi, event, planned);
    } else {
      HandleDropoff(taxi, event, planned);
    }
  }
}

void SimulationEngine::HandlePickup(TaxiState& taxi,
                                    const ScheduleEvent& event, Seconds when) {
  taxi.onboard += event.passengers;
  MTSHARE_CHECK(taxi.onboard <= taxi.capacity);
  taxi.episode_requests.push_back(event.request);
  RequestRecord& rec = metrics_.record(event.request);
  rec.pickup_time = when;
}

void SimulationEngine::HandleDropoff(TaxiState& taxi,
                                     const ScheduleEvent& event,
                                     Seconds when) {
  taxi.onboard -= event.passengers;
  MTSHARE_CHECK(taxi.onboard >= 0);
  RequestRecord& rec = metrics_.record(event.request);
  rec.dropoff_time = when;
  rec.completed = true;
  dispatcher_->OnRequestCompleted(requests_[event.request], taxi.id);
  if (taxi.onboard == 0) SettleEpisodeFor(taxi);
}

void SimulationEngine::SettleEpisodeFor(TaxiState& taxi) {
  if (taxi.episode_requests.empty()) return;
  std::vector<EpisodePassenger> riders;
  riders.reserve(taxi.episode_requests.size());
  for (RequestId id : taxi.episode_requests) {
    const RequestRecord& rec = metrics_.record(id);
    MTSHARE_CHECK(rec.completed);
    EpisodePassenger p;
    p.request = id;
    p.direct_m = rec.direct_cost * network_.speed_mps();
    p.traveled_m = (rec.dropoff_time - rec.pickup_time) * network_.speed_mps();
    riders.push_back(p);
  }
  EpisodeSettlement settlement =
      SettleEpisode(riders, taxi.episode_meters, options_.payment);
  for (const PassengerSettlement& p : settlement.passengers) {
    RequestRecord& rec = metrics_.record(p.request);
    rec.regular_fare = p.regular_fare;
    rec.shared_fare = p.shared_fare;
  }
  taxi.income += settlement.driver_income;
  taxi.episode_requests.clear();
  taxi.episode_meters = 0.0;
}

void SimulationEngine::CheckOfflineEncounters(TaxiState& taxi, Seconds now) {
  if (!options_.serve_offline || !dispatcher_->ServesOfflineRequests()) return;
  auto it = waiting_offline_.find(taxi.location);
  if (it == waiting_offline_.end()) return;
  auto& waiting = it->second;
  for (size_t i = 0; i < waiting.size();) {
    const RideRequest& r = requests_[waiting[i]];
    if (offline_done_[r.id] || now > r.PickupDeadline()) {
      // Served elsewhere, or expired: the passenger is gone.
      offline_done_[r.id] = offline_done_[r.id] ? offline_done_[r.id] : 1;
      waiting[i] = waiting.back();
      waiting.pop_back();
      continue;
    }
    if (now < r.release_time) {
      ++i;  // not hailing yet
      continue;
    }
    WallTimer response_timer;
    DispatchOutcome outcome =
        dispatcher_->TryServeEncountered(r, taxi.id, now);
    if (!outcome.assigned) {
      // Rejected probes still burned dispatcher (phase) time; book it so
      // the phase breakdown reconciles against total dispatch time.
      metrics_.offline_probe_ms += response_timer.ElapsedMillis();
      ++i;
      continue;
    }
    RequestRecord& rec = metrics_.record(r.id);
    rec.assigned = true;
    rec.taxi = taxi.id;
    rec.response_ms = response_timer.ElapsedMillis();
    rec.candidates = outcome.candidates;
    ApplyPlan(&taxi, network_, std::move(outcome.schedule),
              outcome.route.path.vertices,
              std::move(outcome.route.event_arrivals), now,
              outcome.probabilistic_route);
    ExecuteDueEvents(taxi);  // the pickup may be immediate
    dispatcher_->OnScheduleCommitted(taxi.id);
    dispatcher_->OnScheduleChanged(taxi.id);
    NoteCommit(taxi);
    offline_done_[r.id] = 1;
    if (options_.on_decision) options_.on_decision(r, rec);
    waiting[i] = waiting.back();
    waiting.pop_back();
  }
  if (waiting.empty()) waiting_offline_.erase(it);
}

}  // namespace mtshare
