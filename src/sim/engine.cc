#include "sim/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "sim/taxi.h"

namespace mtshare {

SimulationEngine::SimulationEngine(const RoadNetwork& network,
                                   Dispatcher* dispatcher,
                                   std::vector<TaxiState>* fleet,
                                   const EngineOptions& options)
    : network_(network),
      dispatcher_(dispatcher),
      fleet_(fleet),
      options_(options) {
  MTSHARE_CHECK(dispatcher != nullptr);
  MTSHARE_CHECK(fleet != nullptr);
  if (options.serve_offline) {
    snap_ = std::make_unique<GridIndex>(
        network, std::max(50.0, options.encounter_radius_m));
  }
}

Metrics SimulationEngine::Run(const std::vector<RideRequest>& requests) {
  WallTimer run_timer;
  metrics_ = Metrics();
  requests_ = requests;
  waiting_offline_.clear();
  offline_done_.assign(requests.size(), 0);

  Seconds last_deadline = 0.0;
  for (const RideRequest& r : requests_) {
    MTSHARE_CHECK(r.id == static_cast<RequestId>(&r - requests_.data()));
    last_deadline = std::max(last_deadline, r.deadline);
  }

  for (const RideRequest& r : requests_) {
    AdvanceAll(r.release_time);
    metrics_.Register(r);
    if (r.offline) {
      if (options_.serve_offline && dispatcher_->ServesOfflineRequests()) {
        // Register the hailer at every vertex a passing driver could spot
        // them from.
        for (VertexId v : snap_->VerticesInRadius(
                 network_.coord(r.origin), options_.encounter_radius_m)) {
          waiting_offline_[v].push_back(r.id);
        }
      }
      continue;  // invisible to the dispatcher until encountered
    }
    WallTimer response_timer;
    DispatchOutcome outcome = dispatcher_->Dispatch(r, r.release_time);
    double ms = response_timer.ElapsedMillis();
    RequestRecord& rec = metrics_.record(r.id);
    rec.response_ms = ms;
    rec.candidates = outcome.candidates;
    if (outcome.assigned) {
      rec.assigned = true;
      rec.taxi = outcome.taxi;
      TaxiState& taxi = (*fleet_)[outcome.taxi];
      ApplyPlan(&taxi, network_, std::move(outcome.schedule),
                outcome.route.path.vertices,
                std::move(outcome.route.event_arrivals), r.release_time,
                outcome.probabilistic_route);
      ExecuteDueEvents(taxi);  // pickup may be immediate (same vertex)
      dispatcher_->OnScheduleCommitted(outcome.taxi);
    }
  }

  AdvanceAll(last_deadline + options_.drain_margin);

  metrics_.index_memory_bytes = dispatcher_->IndexMemoryBytes();
  double income = 0.0;
  for (const TaxiState& t : *fleet_) income += t.income;
  metrics_.total_driver_income = income;
  metrics_.execution_seconds = run_timer.ElapsedSeconds();
  metrics_.phases = dispatcher_->phase_timers();
  metrics_.routing = dispatcher_->routing_stats();
  metrics_.FinalizeDistributions();
  return std::move(metrics_);
}

void SimulationEngine::AdvanceAll(Seconds now) {
  for (TaxiState& taxi : *fleet_) {
    AdvanceTaxi(taxi, now);
    if (options_.serve_offline && taxi.Idle() && !taxi.HasRoute()) {
      // Offer the idle taxi a cruise (mT-Share-pro steers empty taxis
      // toward offline demand; other schemes park them).
      RoutePlanner::PlannedRoute cruise =
          dispatcher_->PlanIdleCruise(taxi.id, now);
      if (cruise.valid && cruise.path.vertices.size() > 1) {
        ApplyPlan(&taxi, network_, Schedule(), cruise.path.vertices, {}, now,
                  /*probabilistic_route=*/true);
      }
    }
  }
}

void SimulationEngine::AdvanceTaxi(TaxiState& taxi, Seconds now) {
  while (taxi.route_pos + 1 < taxi.route.size() &&
         taxi.route_times[taxi.route_pos + 1] <= now) {
    VertexId from = taxi.route[taxi.route_pos];
    VertexId to = taxi.route[taxi.route_pos + 1];
    double meters = ArcLengthMeters(network_, from, to);
    taxi.driven_meters += meters;
    if (taxi.onboard > 0) {
      taxi.occupied_meters += meters;
      taxi.episode_meters += meters;
    }
    ++taxi.route_pos;
    taxi.location = to;
    taxi.location_time = taxi.route_times[taxi.route_pos];

    bool had_events = !taxi.schedule.empty();
    ExecuteDueEvents(taxi);
    dispatcher_->OnTaxiMoved(taxi.id);
    if (had_events && taxi.schedule.empty()) {
      // Route drained to idle; let the scheme refresh its indexes.
      dispatcher_->OnScheduleCommitted(taxi.id);
    }
    CheckOfflineEncounters(taxi, taxi.location_time);
  }
}

void SimulationEngine::ExecuteDueEvents(TaxiState& taxi) {
  while (!taxi.schedule.empty()) {
    const ScheduleEvent event = taxi.schedule.events().front();
    Seconds planned = taxi.event_arrivals.front();
    if (event.vertex != taxi.location ||
        planned > taxi.location_time + 1e-6) {
      break;
    }
    taxi.schedule.PopFront();
    taxi.event_arrivals.erase(taxi.event_arrivals.begin());
    if (event.is_pickup) {
      HandlePickup(taxi, event, planned);
    } else {
      HandleDropoff(taxi, event, planned);
    }
  }
}

void SimulationEngine::HandlePickup(TaxiState& taxi,
                                    const ScheduleEvent& event, Seconds when) {
  taxi.onboard += event.passengers;
  MTSHARE_CHECK(taxi.onboard <= taxi.capacity);
  taxi.episode_requests.push_back(event.request);
  RequestRecord& rec = metrics_.record(event.request);
  rec.pickup_time = when;
}

void SimulationEngine::HandleDropoff(TaxiState& taxi,
                                     const ScheduleEvent& event,
                                     Seconds when) {
  taxi.onboard -= event.passengers;
  MTSHARE_CHECK(taxi.onboard >= 0);
  RequestRecord& rec = metrics_.record(event.request);
  rec.dropoff_time = when;
  rec.completed = true;
  dispatcher_->OnRequestCompleted(requests_[event.request], taxi.id);
  if (taxi.onboard == 0) SettleEpisodeFor(taxi);
}

void SimulationEngine::SettleEpisodeFor(TaxiState& taxi) {
  if (taxi.episode_requests.empty()) return;
  std::vector<EpisodePassenger> riders;
  riders.reserve(taxi.episode_requests.size());
  for (RequestId id : taxi.episode_requests) {
    const RequestRecord& rec = metrics_.record(id);
    MTSHARE_CHECK(rec.completed);
    EpisodePassenger p;
    p.request = id;
    p.direct_m = rec.direct_cost * network_.speed_mps();
    p.traveled_m = (rec.dropoff_time - rec.pickup_time) * network_.speed_mps();
    riders.push_back(p);
  }
  EpisodeSettlement settlement =
      SettleEpisode(riders, taxi.episode_meters, options_.payment);
  for (const PassengerSettlement& p : settlement.passengers) {
    RequestRecord& rec = metrics_.record(p.request);
    rec.regular_fare = p.regular_fare;
    rec.shared_fare = p.shared_fare;
  }
  taxi.income += settlement.driver_income;
  taxi.episode_requests.clear();
  taxi.episode_meters = 0.0;
}

void SimulationEngine::CheckOfflineEncounters(TaxiState& taxi, Seconds now) {
  if (!options_.serve_offline || !dispatcher_->ServesOfflineRequests()) return;
  auto it = waiting_offline_.find(taxi.location);
  if (it == waiting_offline_.end()) return;
  auto& waiting = it->second;
  for (size_t i = 0; i < waiting.size();) {
    const RideRequest& r = requests_[waiting[i]];
    if (offline_done_[r.id] || now > r.PickupDeadline()) {
      // Served elsewhere, or expired: the passenger is gone.
      offline_done_[r.id] = offline_done_[r.id] ? offline_done_[r.id] : 1;
      waiting[i] = waiting.back();
      waiting.pop_back();
      continue;
    }
    if (now < r.release_time) {
      ++i;  // not hailing yet
      continue;
    }
    WallTimer response_timer;
    DispatchOutcome outcome =
        dispatcher_->TryServeEncountered(r, taxi.id, now);
    if (!outcome.assigned) {
      // Rejected probes still burned dispatcher (phase) time; book it so
      // the phase breakdown reconciles against total dispatch time.
      metrics_.offline_probe_ms += response_timer.ElapsedMillis();
      ++i;
      continue;
    }
    RequestRecord& rec = metrics_.record(r.id);
    rec.assigned = true;
    rec.taxi = taxi.id;
    rec.response_ms = response_timer.ElapsedMillis();
    rec.candidates = outcome.candidates;
    ApplyPlan(&taxi, network_, std::move(outcome.schedule),
              outcome.route.path.vertices,
              std::move(outcome.route.event_arrivals), now,
              outcome.probabilistic_route);
    ExecuteDueEvents(taxi);  // the pickup may be immediate
    dispatcher_->OnScheduleCommitted(taxi.id);
    offline_done_[r.id] = 1;
    waiting[i] = waiting.back();
    waiting.pop_back();
  }
  if (waiting.empty()) waiting_offline_.erase(it);
}

}  // namespace mtshare
