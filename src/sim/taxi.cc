#include "sim/taxi.h"

#include <limits>

#include "common/logging.h"

namespace mtshare {
namespace {

const Arc* FindCheapestArc(const RoadNetwork& network, VertexId u,
                           VertexId v) {
  const Arc* best = nullptr;
  for (const Arc& arc : network.OutArcs(u)) {
    if (arc.head == v && (best == nullptr || arc.cost < best->cost)) {
      best = &arc;
    }
  }
  return best;
}

}  // namespace

std::vector<Seconds> ComputeRouteTimes(const RoadNetwork& network,
                                       const std::vector<VertexId>& path,
                                       Seconds start_time) {
  std::vector<Seconds> times;
  times.reserve(path.size());
  Seconds t = start_time;
  times.push_back(t);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Arc* arc = FindCheapestArc(network, path[i], path[i + 1]);
    MTSHARE_CHECK(arc != nullptr);
    t += arc->cost;
    times.push_back(t);
  }
  return times;
}

void ApplyPlan(TaxiState* taxi, const RoadNetwork& network, Schedule schedule,
               const std::vector<VertexId>& path,
               std::vector<Seconds> event_arrivals, Seconds now,
               bool probabilistic_route) {
  MTSHARE_CHECK(!path.empty());
  MTSHARE_CHECK(path.front() == taxi->location);
  MTSHARE_CHECK(schedule.size() == event_arrivals.size());
  taxi->schedule = std::move(schedule);
  taxi->event_arrivals = std::move(event_arrivals);
  taxi->event_pos = 0;
  // Fill the route nodes directly in one adjacency pass; TaxiRoute::Reset
  // retains the previous plan's capacity, so steady-state replanning is
  // allocation-free.
  taxi->route.Reset(path.front(), now);
  Seconds t = now;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Arc* arc = FindCheapestArc(network, path[i], path[i + 1]);
    MTSHARE_CHECK(arc != nullptr);
    t += arc->cost;
    taxi->route.Append(arc->length_m, path[i + 1], t);
  }
  taxi->route_pos = 0;
  taxi->location_time = now;
  taxi->probabilistic_route = probabilistic_route;
}

}  // namespace mtshare
