#include "sim/taxi.h"

#include <limits>

#include "common/logging.h"

namespace mtshare {
namespace {

const Arc* FindCheapestArc(const RoadNetwork& network, VertexId u,
                           VertexId v) {
  const Arc* best = nullptr;
  for (const Arc& arc : network.OutArcs(u)) {
    if (arc.head == v && (best == nullptr || arc.cost < best->cost)) {
      best = &arc;
    }
  }
  return best;
}

}  // namespace

std::vector<Seconds> ComputeRouteTimes(const RoadNetwork& network,
                                       const std::vector<VertexId>& path,
                                       Seconds start_time) {
  return ComputeRouteProfile(network, path, start_time).times;
}

RouteProfile ComputeRouteProfile(const RoadNetwork& network,
                                 const std::vector<VertexId>& path,
                                 Seconds start_time) {
  RouteProfile profile;
  profile.times.reserve(path.size());
  if (!path.empty()) profile.lengths.reserve(path.size() - 1);
  Seconds t = start_time;
  profile.times.push_back(t);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Arc* arc = FindCheapestArc(network, path[i], path[i + 1]);
    MTSHARE_CHECK(arc != nullptr);
    t += arc->cost;
    profile.times.push_back(t);
    profile.lengths.push_back(arc->length_m);
  }
  return profile;
}

double ArcLengthMeters(const RoadNetwork& network, VertexId u, VertexId v) {
  const Arc* arc = FindCheapestArc(network, u, v);
  MTSHARE_CHECK(arc != nullptr);
  return arc->length_m;
}

void ApplyPlan(TaxiState* taxi, const RoadNetwork& network, Schedule schedule,
               const std::vector<VertexId>& path,
               std::vector<Seconds> event_arrivals, Seconds now,
               bool probabilistic_route) {
  MTSHARE_CHECK(!path.empty());
  MTSHARE_CHECK(path.front() == taxi->location);
  MTSHARE_CHECK(schedule.size() == event_arrivals.size());
  taxi->schedule = std::move(schedule);
  taxi->event_arrivals = std::move(event_arrivals);
  taxi->event_pos = 0;
  taxi->route = path;
  RouteProfile profile = ComputeRouteProfile(network, path, now);
  taxi->route_times = std::move(profile.times);
  taxi->route_lengths = std::move(profile.lengths);
  taxi->route_pos = 0;
  taxi->location_time = now;
  taxi->probabilistic_route = probabilistic_route;
}

}  // namespace mtshare
