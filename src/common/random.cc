#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace mtshare {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  MTSHARE_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextExponential(double rate) {
  MTSHARE_CHECK(rate > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

std::size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  MTSHARE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    return static_cast<std::size_t>(
        NextInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double target = NextDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace mtshare
