#ifndef MTSHARE_COMMON_TYPES_H_
#define MTSHARE_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <utility>

namespace mtshare {

/// Identifier of a vertex in a road network. Vertices are dense 0..N-1.
using VertexId = int32_t;
/// Identifier of an edge in a road network. Edges are dense 0..M-1.
using EdgeId = int32_t;
/// Identifier of a taxi registered with the system.
using TaxiId = int32_t;
/// Identifier of a ride request.
using RequestId = int64_t;
/// Identifier of a map partition produced by a MapPartitioner.
using PartitionId = int32_t;
/// Identifier of a mobility cluster.
using ClusterId = int32_t;

/// Simulation time and travel costs, in seconds since scenario start.
/// The paper (Sec. III-A) treats travel time and distance interchangeably
/// under a constant speed; we standardize on seconds.
using Seconds = double;

/// An origin-destination vertex pair of a historical taxi trip; the only
/// signal the transition statistics consume.
using OdPair = std::pair<VertexId, VertexId>;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr TaxiId kInvalidTaxi = -1;
inline constexpr RequestId kInvalidRequest = -1;
inline constexpr PartitionId kInvalidPartition = -1;
inline constexpr ClusterId kInvalidCluster = -1;
inline constexpr Seconds kInfiniteCost = std::numeric_limits<double>::infinity();

}  // namespace mtshare

#endif  // MTSHARE_COMMON_TYPES_H_
