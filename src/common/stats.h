#ifndef MTSHARE_COMMON_STATS_H_
#define MTSHARE_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mtshare {

/// Accumulates scalar samples and reports summary statistics. Used by the
/// simulation metrics and the benchmark harnesses (mean response time,
/// percentile detour, ...). Keeps all samples; percentile queries sort a
/// scratch copy lazily.
class SummaryStats {
 public:
  void Add(double value);
  void Merge(const SummaryStats& other);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  /// Mean of samples; 0 for an empty accumulator.
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Sample standard deviation; 0 with fewer than two samples.
  double StdDev() const;
  /// p in [0,1]; linear interpolation between closest ranks.
  double Percentile(double p) const;
  double Median() const { return Percentile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

  /// "n=.. mean=.. p50=.. p95=.. max=.." one-liner for logs and tables.
  std::string ToString() const;

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  mutable std::vector<double> sorted_;   // lazily rebuilt cache
  mutable bool sorted_valid_ = false;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus overflow /
/// underflow counters; used for travel-time distributions (paper Fig. 5b).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double value);
  size_t TotalCount() const { return total_; }
  /// Count in bucket i (0 <= i < bins()).
  size_t BucketCount(size_t i) const { return counts_[i]; }
  size_t bins() const { return counts_.size(); }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }

  /// Empirical CDF evaluated at bucket upper edges (includes underflow mass).
  std::vector<double> Cdf() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t total_ = 0;
};

}  // namespace mtshare

#endif  // MTSHARE_COMMON_STATS_H_
