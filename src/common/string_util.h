#ifndef MTSHARE_COMMON_STRING_UTIL_H_
#define MTSHARE_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mtshare {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Parses a double; returns false on malformed/trailing input.
bool ParseDouble(std::string_view text, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses an unsigned 64-bit integer; returns false on malformed input.
/// Unlike strtoull, a leading '-' is rejected instead of wrapping, so
/// "-1" never silently becomes 2^64-1 (RNG seeds must round-trip exactly,
/// including UINT64_MAX, which a double-based parse cannot represent).
bool ParseUint64(std::string_view text, uint64_t* out);

/// Fixed-precision formatting helper for benchmark tables.
std::string FormatDouble(double value, int precision);

}  // namespace mtshare

#endif  // MTSHARE_COMMON_STRING_UTIL_H_
