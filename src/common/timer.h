#ifndef MTSHARE_COMMON_TIMER_H_
#define MTSHARE_COMMON_TIMER_H_

#include <chrono>

namespace mtshare {

/// Monotonic wall-clock stopwatch. The paper reports per-request response
/// times (Figs. 7/11/21b) measured on the serving machine; WallTimer is the
/// instrument our harnesses use for the same metric.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mtshare

#endif  // MTSHARE_COMMON_TIMER_H_
