#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace mtshare {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseDouble(std::string_view text, double* out) {
  std::string buf(Trim(text));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  std::string buf(Trim(text));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  std::string buf(Trim(text));
  if (buf.empty()) return false;
  // strtoull accepts "-1" and wraps it to UINT64_MAX; reject any sign
  // explicitly ("+1" included, to keep the accepted grammar plain digits).
  if (!std::isdigit(static_cast<unsigned char>(buf[0]))) return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace mtshare
