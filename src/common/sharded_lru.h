#ifndef MTSHARE_COMMON_SHARDED_LRU_H_
#define MTSHARE_COMMON_SHARDED_LRU_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace mtshare {

/// A mutex-striped LRU cache safe for concurrent readers and writers.
/// Keys hash to one of `num_shards` independent shards, each with its own
/// lock, recency list, and capacity slice, so queries from the parallel
/// matching path only contend when they land on the same shard.
///
/// Values are handed out as shared_ptr<const V>: a reader keeps its row
/// alive even if another thread evicts it from the shard a microsecond
/// later. Misses compute under the shard lock — concurrent misses for
/// *different* shards proceed in parallel, same-shard misses serialize,
/// and a value is never computed twice for the same key while cached.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split across shards: every
  /// shard gets capacity / shards slots and the first capacity % shards
  /// shards one extra, so the per-shard budgets always sum to `capacity`
  /// (a plain integer split would silently drop the remainder — capacity
  /// 20 over 16 shards must hold 20 rows, not 16).
  /// The shard count is clamped to the capacity so tiny caches do not get
  /// silently inflated by the one-entry-per-shard floor (a capacity-2 cache
  /// must hold 2 rows, not num_shards rows).
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 16)
      : shards_(ClampShards(capacity, num_shards)) {
    if (capacity == 0) capacity = 1;
    const size_t per = capacity / shards_.size();
    const size_t extra = capacity % shards_.size();
    for (size_t i = 0; i < shards_.size(); ++i) {
      shards_[i].capacity = per + (i < extra ? 1 : 0);
    }
  }

  /// Returns the value for `key`, invoking `compute` on a miss. The result
  /// stays valid for as long as the caller holds the returned pointer.
  std::shared_ptr<const Value> GetOrCompute(
      const Key& key, const std::function<Value(const Key&)>& compute) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second.order_it);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.value;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    // Construct the value before touching the recency list or evicting:
    // a throwing compute must leave the shard exactly as it found it
    // (linking the key first would orphan a recency entry, and a later
    // insert of the same key would duplicate it and overflow capacity).
    auto value = std::make_shared<const Value>(compute(key));
    if (shard.entries.size() >= shard.capacity) {
      shard.entries.erase(shard.order.back());
      shard.order.pop_back();
    }
    shard.order.push_front(key);
    shard.entries.emplace(key, Entry{value, shard.order.begin()});
    return value;
  }

  /// Cached entries across all shards (racy snapshot under concurrency).
  size_t size() const {
    size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      total += s.entries.size();
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }
  /// Total entry slots across shards == the configured capacity budget.
  size_t capacity() const {
    size_t total = 0;
    for (const Shard& s : shards_) total += s.capacity;
    return total;
  }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Sums `size_of(value)` over the cached entries plus bookkeeping
  /// overhead (Table IV memory accounting).
  size_t MemoryBytes(
      const std::function<size_t(const Value&)>& size_of) const {
    size_t bytes = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      for (const auto& [key, entry] : s.entries) {
        (void)key;
        bytes += size_of(*entry.value) + sizeof(Entry) + sizeof(Key);
      }
    }
    return bytes;
  }

 private:
  struct Entry {
    std::shared_ptr<const Value> value;
    typename std::list<Key>::iterator order_it;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Key> order;  // front = most recently used
    std::unordered_map<Key, Entry, Hash> entries;
    size_t capacity = 1;
  };

  static size_t ClampShards(size_t capacity, size_t num_shards) {
    if (num_shards == 0) num_shards = 1;
    if (capacity == 0) capacity = 1;
    return num_shards < capacity ? num_shards : capacity;
  }

  Shard& ShardFor(const Key& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace mtshare

#endif  // MTSHARE_COMMON_SHARDED_LRU_H_
