#ifndef MTSHARE_COMMON_SHARDED_LRU_H_
#define MTSHARE_COMMON_SHARDED_LRU_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace mtshare {

/// A mutex-striped LRU cache safe for concurrent readers and writers.
/// Keys hash to one of `num_shards` independent shards, each with its own
/// lock, recency list, and capacity slice, so queries from the parallel
/// matching path only contend when they land on the same shard.
///
/// Values are handed out as shared_ptr<const V>: a reader keeps its row
/// alive even if another thread evicts it from the shard a microsecond
/// later. Misses compute under the shard lock — concurrent misses for
/// *different* shards proceed in parallel, same-shard misses serialize,
/// and a value is never computed twice for the same key while cached.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards.
  /// The shard count is clamped to the capacity so tiny caches do not get
  /// silently inflated by the one-entry-per-shard floor (a capacity-2 cache
  /// must hold 2 rows, not num_shards rows).
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 16)
      : shards_(ClampShards(capacity, num_shards)) {
    const size_t per = capacity / shards_.size();
    for (Shard& s : shards_) s.capacity = per == 0 ? 1 : per;
  }

  /// Returns the value for `key`, invoking `compute` on a miss. The result
  /// stays valid for as long as the caller holds the returned pointer.
  std::shared_ptr<const Value> GetOrCompute(
      const Key& key, const std::function<Value(const Key&)>& compute) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second.order_it);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.value;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (shard.entries.size() >= shard.capacity) {
      shard.entries.erase(shard.order.back());
      shard.order.pop_back();
    }
    shard.order.push_front(key);
    Entry entry{std::make_shared<const Value>(compute(key)),
                shard.order.begin()};
    auto value = entry.value;
    shard.entries.emplace(key, std::move(entry));
    return value;
  }

  /// Cached entries across all shards (racy snapshot under concurrency).
  size_t size() const {
    size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      total += s.entries.size();
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Sums `size_of(value)` over the cached entries plus bookkeeping
  /// overhead (Table IV memory accounting).
  size_t MemoryBytes(
      const std::function<size_t(const Value&)>& size_of) const {
    size_t bytes = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      for (const auto& [key, entry] : s.entries) {
        (void)key;
        bytes += size_of(*entry.value) + sizeof(Entry) + sizeof(Key);
      }
    }
    return bytes;
  }

 private:
  struct Entry {
    std::shared_ptr<const Value> value;
    typename std::list<Key>::iterator order_it;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Key> order;  // front = most recently used
    std::unordered_map<Key, Entry, Hash> entries;
    size_t capacity = 1;
  };

  static size_t ClampShards(size_t capacity, size_t num_shards) {
    if (num_shards == 0) num_shards = 1;
    if (capacity == 0) capacity = 1;
    return num_shards < capacity ? num_shards : capacity;
  }

  Shard& ShardFor(const Key& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace mtshare

#endif  // MTSHARE_COMMON_SHARDED_LRU_H_
