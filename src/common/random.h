#ifndef MTSHARE_COMMON_RANDOM_H_
#define MTSHARE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mtshare {

/// Deterministic, fast PRNG (xoshiro256**). All stochastic components of the
/// library (generators, k-means seeding, scenario sampling) draw from this
/// type so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double NextExponential(double rate);

  /// Samples an index with probability proportional to weights[i].
  /// Zero-total weights fall back to uniform. Requires !weights.empty().
  std::size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace mtshare

#endif  // MTSHARE_COMMON_RANDOM_H_
