#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace mtshare {

void SummaryStats::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

void SummaryStats::Merge(const SummaryStats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

void SummaryStats::Clear() {
  samples_.clear();
  sum_ = 0.0;
  sorted_.clear();
  sorted_valid_ = false;
}

double SummaryStats::Mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double SummaryStats::Min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SummaryStats::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SummaryStats::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SummaryStats::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  MTSHARE_CHECK(p >= 0.0 && p <= 1.0);
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  if (sorted_.size() == 1) return sorted_[0];
  double rank = p * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string SummaryStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << Mean() << " p50=" << Median()
     << " p95=" << Percentile(0.95) << " max=" << Max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  MTSHARE_CHECK(hi > lo);
  MTSHARE_CHECK(bins > 0);
}

void Histogram::Add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
  } else if (value >= hi_) {
    ++overflow_;
  } else {
    size_t idx = static_cast<size_t>((value - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge case
    ++counts_[idx];
  }
}

double Histogram::BucketLow(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::BucketHigh(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::vector<double> Histogram::Cdf() const {
  std::vector<double> cdf(counts_.size(), 0.0);
  if (total_ == 0) return cdf;
  size_t acc = underflow_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    cdf[i] = static_cast<double>(acc) / static_cast<double>(total_);
  }
  return cdf;
}

}  // namespace mtshare
