#ifndef MTSHARE_COMMON_HISTOGRAM_H_
#define MTSHARE_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mtshare {

/// A mergeable latency histogram with geometric fixed-width buckets.
///
/// The bucket layout is fixed at construction: bucket 0 holds [0, lo),
/// buckets 1..bins hold geometrically growing slices of [lo, hi), and the
/// last bucket holds [hi, +inf). Two histograms with the same (lo, hi,
/// bins) triple can be merged bucket-wise, which is what lets per-thread
/// or per-run recorders combine into one distribution without keeping raw
/// samples (SummaryStats keeps every sample; this keeps O(bins) counters
/// regardless of run length).
///
/// Percentile queries interpolate linearly inside the winning bucket and
/// clamp to the exact observed [min, max], so the relative error of a
/// quantile is bounded by one bucket ratio (~9% at the default 48
/// buckets/3 decades) while the extremes stay exact.
class LatencyHistogram {
 public:
  /// Geometric layout over [lo, hi) with `bins` buckets, plus the [0, lo)
  /// and [hi, inf) boundary buckets. Requires 0 < lo < hi and bins >= 1.
  LatencyHistogram(double lo, double hi, size_t bins);

  /// Dispatch-latency layout in milliseconds: 1 us .. 60 s.
  static LatencyHistogram ForLatencyMs() {
    return LatencyHistogram(1e-3, 6e4, 128);
  }
  /// Waiting/detour layout in minutes: 0.01 .. 600 min.
  static LatencyHistogram ForMinutes() {
    return LatencyHistogram(1e-2, 6e2, 96);
  }
  /// Small-count layout (candidate-set sizes): 1 .. 100k.
  static LatencyHistogram ForCounts() {
    return LatencyHistogram(1.0, 1e5, 96);
  }

  /// Records one sample. Negative values count as 0 (clock jitter guard).
  void Record(double value);

  /// Adds `other`'s counts into this histogram. The layouts must match
  /// (same lo/hi/bins) — CHECK-fails otherwise.
  void Merge(const LatencyHistogram& other);

  void Clear();

  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  /// Exact observed extremes (0 when empty).
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }

  /// Quantile for p in [0, 1]; 0 when empty. Monotone in p.
  double Percentile(double p) const;

  bool SameLayout(const LatencyHistogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size();
  }

  // --- bucket introspection (report emission, tests) ---
  size_t num_buckets() const { return counts_.size(); }
  int64_t bucket_count(size_t i) const { return counts_[i]; }
  /// Lower/upper value edge of bucket i ([0, lo), geometric, [hi, inf)).
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  size_t BucketIndex(double value) const;

  double lo_;
  double hi_;
  double log_lo_;
  double log_ratio_;  // log of the per-bucket growth factor
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mtshare

#endif  // MTSHARE_COMMON_HISTOGRAM_H_
