#include "common/thread_pool.h"

#include <algorithm>

namespace mtshare {

ThreadPool::ThreadPool(int32_t num_threads) {
  int32_t n = std::max<int32_t>(1, num_threads);
  workers_.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min<size_t>(n, workers_.size());
  if (chunks <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Contiguous chunks; the first runs on the calling thread while workers
  // chew the rest, so all `chunks` run concurrently even when the caller
  // is not itself a pool worker.
  const size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> pending;
  pending.reserve(chunks - 1);
  for (size_t c = 1; c < chunks; ++c) {
    const size_t begin = c * per;
    const size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    pending.push_back(Submit([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (size_t i = 0; i < std::min(per, n); ++i) fn(i);
  for (std::future<void>& f : pending) f.get();
}

int32_t ThreadPool::DefaultThreads(int32_t requested) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int32_t>(hw);
}

}  // namespace mtshare
