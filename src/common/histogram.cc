#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mtshare {

LatencyHistogram::LatencyHistogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi) {
  MTSHARE_CHECK(lo > 0.0 && hi > lo && bins >= 1);
  log_lo_ = std::log(lo_);
  log_ratio_ = (std::log(hi_) - log_lo_) / static_cast<double>(bins);
  counts_.assign(bins + 2, 0);  // [0,lo) + bins geometric + [hi,inf)
}

size_t LatencyHistogram::BucketIndex(double value) const {
  if (value < lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  size_t i = 1 + static_cast<size_t>((std::log(value) - log_lo_) / log_ratio_);
  // log() round-off can land a boundary value one bucket off; clamp into
  // the geometric range and nudge so BucketLow <= value < BucketHigh.
  i = std::min(i, counts_.size() - 2);
  if (value < BucketLow(i) && i > 1) --i;
  if (value >= BucketHigh(i) && i < counts_.size() - 2) ++i;
  return i;
}

void LatencyHistogram::Record(double value) {
  if (value < 0.0) value = 0.0;
  ++counts_[BucketIndex(value)];
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  MTSHARE_CHECK(SameLayout(other));
  if (other.count_ == 0) return;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  sum_ += other.sum_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

void LatencyHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

double LatencyHistogram::BucketLow(size_t i) const {
  if (i == 0) return 0.0;
  if (i == counts_.size() - 1) return hi_;
  return std::exp(log_lo_ + log_ratio_ * static_cast<double>(i - 1));
}

double LatencyHistogram::BucketHigh(size_t i) const {
  if (i == 0) return lo_;
  if (i == counts_.size() - 1) return hi_;  // open-ended; Max() caps it
  return std::exp(log_lo_ + log_ratio_ * static_cast<double>(i));
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank in [1, count]; walk the cumulative counts to the owning bucket.
  const double rank = p * static_cast<double>(count_ - 1) + 1.0;
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (static_cast<double>(seen + counts_[i]) >= rank) {
      // Linear interpolation across the bucket's value span by the rank's
      // position within the bucket's count mass.
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts_[i]);
      double low = BucketLow(i);
      double high = i == counts_.size() - 1 ? max_ : BucketHigh(i);
      double v = low + (high - low) * within;
      return std::clamp(v, min_, max_);
    }
    seen += counts_[i];
  }
  return max_;
}

}  // namespace mtshare
