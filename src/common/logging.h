#ifndef MTSHARE_COMMON_LOGGING_H_
#define MTSHARE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mtshare {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace mtshare

#define MTSHARE_LOG(level)                                            \
  ::mtshare::internal_logging::LogMessage(::mtshare::LogLevel::level, \
                                          __FILE__, __LINE__)

/// Invariant check that stays on in release builds; aborts with a message.
#define MTSHARE_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      MTSHARE_LOG(kError) << "CHECK failed: " #cond;                      \
      ::abort();                                                          \
    }                                                                     \
  } while (0)

#endif  // MTSHARE_COMMON_LOGGING_H_
