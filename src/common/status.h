#ifndef MTSHARE_COMMON_STATUS_H_
#define MTSHARE_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mtshare {

/// Coarse error taxonomy used across the library. Modeled after the
/// Status idiom common in database engines (Arrow, RocksDB): recoverable
/// errors travel by value instead of by exception.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// Returns a short stable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value or an error. Minimal StatusOr: enough for loader/config APIs.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so callers can `return value;`
  /// or `return Status::...;` symmetrically (matches absl::StatusOr).
  Result(T value) : value_(std::move(value)) {}           // NOLINT
  Result(Status status) : status_(std::move(status)) {}   // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Dies via the optional's UB otherwise — callers
  /// must check ok() first; tests enforce the discipline.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mtshare

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define MTSHARE_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::mtshare::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // MTSHARE_COMMON_STATUS_H_
