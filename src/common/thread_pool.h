#ifndef MTSHARE_COMMON_THREAD_POOL_H_
#define MTSHARE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mtshare {

/// A fixed-size worker pool for the matching hot path and for fanning bench
/// sweeps out across scenarios. Design goals, in order: deterministic results
/// (the pool never reorders *outputs* — ParallelFor writes each index's
/// result into its own slot and callers reduce in index order), low overhead
/// on small work lists (one task per worker, contiguous chunks, no per-item
/// queue traffic), and simplicity (no work stealing; the candidate lists and
/// sweep grids this serves are in the tens to hundreds).
///
/// Tasks must not throw: the codebase communicates failure by Status/CHECK,
/// and an exception escaping a worker would terminate anyway.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int32_t size() const { return static_cast<int32_t>(workers_.size()); }

  /// Enqueues one task; the future resolves when it finishes.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [0, n), split into at most size() contiguous
  /// chunks, and blocks until all complete. The calling thread executes the
  /// first chunk itself, so a 1-thread pool degenerates to a plain loop with
  /// no synchronization beyond one empty wait.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Picks a worker count: `requested` if >= 1, else the hardware
  /// concurrency (at least 1).
  static int32_t DefaultThreads(int32_t requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mtshare

#endif  // MTSHARE_COMMON_THREAD_POOL_H_
