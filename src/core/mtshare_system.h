#ifndef MTSHARE_CORE_MTSHARE_SYSTEM_H_
#define MTSHARE_CORE_MTSHARE_SYSTEM_H_

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/system_config.h"
#include "demand/request_generator.h"
#include "matching/mt_share.h"
#include "matching/no_sharing.h"
#include "matching/pgreedy_dp.h"
#include "matching/t_share.h"
#include "sim/engine.h"

namespace mtshare {

/// Which matching scheme a run uses (the paper's compared schemes,
/// Sec. V-A2).
enum class SchemeKind {
  kNoSharing,
  kTShare,
  kPGreedyDp,
  kMtShare,
  kMtSharePro,
};

const char* SchemeName(SchemeKind kind);

/// Inverse of SchemeName: parses a scheme from its display name or the CLI
/// spelling ("mt-share", "pgreedy-dp", ...). Case-insensitive. Returns
/// nullopt for unknown names. ParseScheme(SchemeName(k)) == k for every k.
std::optional<SchemeKind> ParseScheme(std::string_view name);

/// Everything that describes one simulation run. The primary entry point
/// RunScenario(const ScenarioSpec&) consumes this; invalid combinations
/// come back as Status instead of dying.
struct ScenarioSpec {
  SchemeKind scheme = SchemeKind::kMtShare;
  /// The pre-materialized request stream, sorted by release time with ids
  /// dense from 0. Non-owning: the caller's vector must outlive the run
  /// (scenarios are reused across many runs; copying thousands of requests
  /// per sweep cell would dominate small runs). Internally wrapped in a
  /// VectorRequestSource; exactly one of `requests` / `source` must be
  /// set.
  const std::vector<RideRequest>* requests = nullptr;
  /// Streaming ingest (DESIGN.md §12): requests are pulled from this
  /// source instead of a vector. Non-owning and single-pass — the source
  /// must outlive the run and is consumed by it; build a fresh source per
  /// run. Sources self-validate (ordering, dense ids) and their failure
  /// status is returned after the run.
  RequestSource* source = nullptr;
  /// Batch-window ingest Δt in simulated milliseconds: collect arrivals
  /// for Δt after the first pending release, dispatch the batch at window
  /// close. 0 replays the classic per-request boundary loop exactly.
  double batch_window_ms = 0.0;
  /// Admission cap on the pending dispatch queue (0 = unbounded). With a
  /// batch window, online arrivals past the cap are shed unserved
  /// (Metrics::serve.shed).
  int64_t max_queue = 0;
  /// Decision observer: called with the final record of every dispatch
  /// decision, served encounter, and shed request (mtshare_serve streams
  /// its response lines from here). Null = disabled.
  std::function<void(const RideRequest&, const RequestRecord&)> on_decision;
  int32_t num_taxis = 0;
  /// Controls initial taxi placement.
  uint64_t fleet_seed = 1;
  /// Enables offline-request encounters (street hails, Sec. IV-C2).
  bool serve_offline = true;
  /// Advance the fleet with the event-driven core (min-heap of per-taxi
  /// next-arc times) instead of the legacy per-boundary sweep. Decision
  /// metrics are identical either way; false selects the sweep for
  /// equivalence testing and perf comparison.
  bool event_driven = true;
  /// Worker threads for candidate-schedule evaluation. 1 = sequential;
  /// results are bit-identical for every value (deterministic reduction).
  /// 0 = hardware concurrency.
  int32_t num_threads = 1;
  /// Collects the per-phase dispatch-time breakdown (Metrics::phases,
  /// surfaced in run reports). A handful of steady_clock reads per
  /// dispatch; set false to shave even that from latency-critical runs.
  bool collect_phase_timing = true;

  /// Distance-oracle backend for this run. kAuto uses the system's default
  /// oracle (built from SystemConfig::oracle); any other value selects a
  /// per-backend oracle the system builds lazily on first use and then
  /// shares across runs (backend comparison sweeps pay CH preprocessing
  /// once, not per run).
  OracleBackend oracle_backend = OracleBackend::kAuto;

  /// OK, or the first violated constraint.
  Status Validate() const;
};

/// Top-level facade: builds the whole mT-Share stack (map partitioning,
/// landmark graph, transition statistics, distance oracle) from a road
/// network and historical trips, then runs request streams under any of
/// the compared schemes. One instance can run many scenarios; each run
/// starts from a fresh fleet.
///
/// This is the entry point examples and benches use:
///
///   auto system = MTShareSystem::Create(network, historical_od_pairs,
///                                       config);
///   if (!system.ok()) { /* handle system.status() */ }
///   ScenarioSpec spec;
///   spec.scheme = SchemeKind::kMtShare;
///   spec.requests = &requests;
///   spec.num_taxis = 300;
///   Result<Metrics> m = system.value()->RunScenario(spec);
class MTShareSystem {
 public:
  /// Validating factory: returns InvalidArgument instead of dying on a bad
  /// config (the constructor CHECK-fails, kept for legacy call sites).
  static Result<std::unique_ptr<MTShareSystem>> Create(
      const RoadNetwork& network, const std::vector<OdPair>& historical_trips,
      const SystemConfig& config);

  /// Builds the indexes. Dies on invalid config — prefer Create(), which
  /// validates and reports instead.
  MTShareSystem(const RoadNetwork& network,
                const std::vector<OdPair>& historical_trips,
                const SystemConfig& config);

  /// Runs one scenario with a fresh fleet. The only entry point (the old
  /// positional overload is gone): validates the spec (including request
  /// ordering) and fans candidate evaluation out across spec.num_threads
  /// workers with bit-identical results. Vector and streaming ingest share
  /// one engine path, so a StreamRequestSource fed the serialized log of
  /// spec.requests produces byte-identical decision metrics.
  Result<Metrics> RunScenario(const ScenarioSpec& spec);

  /// Creates a dispatcher bound to `fleet` (advanced use: custom engines).
  /// `oracle` = nullptr uses the system's default oracle.
  std::unique_ptr<Dispatcher> MakeDispatcher(SchemeKind scheme,
                                             std::vector<TaxiState>* fleet,
                                             DistanceOracle* oracle = nullptr);

  /// The oracle serving `backend` (kAuto = the system default). Non-default
  /// backends are built lazily on first use and cached; safe to call from
  /// concurrent RunScenario invocations.
  DistanceOracle* OracleFor(OracleBackend backend);

  /// The contraction hierarchy backing the ch_buckets candidate path for
  /// runs on `oracle`: the oracle's own CH when it is CH-backed, otherwise
  /// a system-owned hierarchy built lazily on first use and shared across
  /// runs (same lifetime as the lazy per-backend oracles). Safe to call
  /// from concurrent RunScenario invocations.
  const ContractionHierarchy* BucketSearchCh(DistanceOracle* oracle);

  const RoadNetwork& network() const { return network_; }
  const MapPartitioning& partitioning() const { return partitioning_; }
  const LandmarkGraph& landmarks() const { return *landmarks_; }
  const TransitionModel& transitions() const { return transitions_; }
  DistanceOracle& oracle() { return *oracle_; }
  const SystemConfig& config() const { return config_; }

  /// Overrides the matching parameters for subsequent runs without
  /// rebuilding partitions (gamma/lambda/probabilistic sweeps).
  void set_matching(const MatchingConfig& matching) {
    config_.matching = matching;
  }
  /// Overrides the fleet capacity for subsequent runs.
  void set_taxi_capacity(int32_t capacity) { config_.taxi_capacity = capacity; }

  /// Resident bytes of the shared mobility structures (partitioning +
  /// landmark graph + transition statistics) — part of the Table IV
  /// accounting.
  size_t SharedIndexMemoryBytes() const;

 private:
  const RoadNetwork& network_;
  SystemConfig config_;
  MapPartitioning partitioning_;
  std::unique_ptr<LandmarkGraph> landmarks_;
  TransitionModel transitions_;
  std::unique_ptr<DistanceOracle> oracle_;

  /// Lazily built per-backend oracles for ScenarioSpec::oracle_backend
  /// overrides, indexed by OracleBackend value; creation serializes behind
  /// the mutex so concurrent runs race safely.
  std::mutex extra_oracle_mutex_;
  std::array<std::unique_ptr<DistanceOracle>, 4> extra_oracles_;
  /// Lazily built CH for ch_buckets candidate search when the run's oracle
  /// is not CH-backed (exact/LRU backends); guarded by extra_oracle_mutex_.
  std::unique_ptr<ContractionHierarchy> bucket_ch_;
};

}  // namespace mtshare

#endif  // MTSHARE_CORE_MTSHARE_SYSTEM_H_
