#ifndef MTSHARE_CORE_MTSHARE_SYSTEM_H_
#define MTSHARE_CORE_MTSHARE_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/system_config.h"
#include "demand/request_generator.h"
#include "matching/mt_share.h"
#include "matching/no_sharing.h"
#include "matching/pgreedy_dp.h"
#include "matching/t_share.h"
#include "sim/engine.h"

namespace mtshare {

/// Which matching scheme a run uses (the paper's compared schemes,
/// Sec. V-A2).
enum class SchemeKind {
  kNoSharing,
  kTShare,
  kPGreedyDp,
  kMtShare,
  kMtSharePro,
};

const char* SchemeName(SchemeKind kind);

/// Top-level facade: builds the whole mT-Share stack (map partitioning,
/// landmark graph, transition statistics, distance oracle) from a road
/// network and historical trips, then runs request streams under any of
/// the compared schemes. One instance can run many scenarios; each run
/// starts from a fresh fleet.
///
/// This is the entry point examples and benches use:
///
///   MTShareSystem system(network, historical_od_pairs, config);
///   Metrics m = system.RunScenario(SchemeKind::kMtShare, requests,
///                                  /*num_taxis=*/300);
class MTShareSystem {
 public:
  /// Builds the indexes. Dies on invalid config (call config.Validate()
  /// first for recoverable handling).
  MTShareSystem(const RoadNetwork& network,
                const std::vector<OdPair>& historical_trips,
                const SystemConfig& config);

  /// Runs one scenario under a scheme with a fresh fleet of `num_taxis`.
  /// `fleet_seed` controls initial taxi placement; requests must be sorted
  /// with dense ids.
  Metrics RunScenario(SchemeKind scheme,
                      const std::vector<RideRequest>& requests,
                      int32_t num_taxis, uint64_t fleet_seed = 1,
                      bool serve_offline = true);

  /// Creates a dispatcher bound to `fleet` (advanced use: custom engines).
  std::unique_ptr<Dispatcher> MakeDispatcher(SchemeKind scheme,
                                             std::vector<TaxiState>* fleet);

  const RoadNetwork& network() const { return network_; }
  const MapPartitioning& partitioning() const { return partitioning_; }
  const LandmarkGraph& landmarks() const { return *landmarks_; }
  const TransitionModel& transitions() const { return transitions_; }
  DistanceOracle& oracle() { return *oracle_; }
  const SystemConfig& config() const { return config_; }

  /// Overrides the matching parameters for subsequent runs without
  /// rebuilding partitions (gamma/lambda/probabilistic sweeps).
  void set_matching(const MatchingConfig& matching) {
    config_.matching = matching;
  }
  /// Overrides the fleet capacity for subsequent runs.
  void set_taxi_capacity(int32_t capacity) { config_.taxi_capacity = capacity; }

  /// Resident bytes of the shared mobility structures (partitioning +
  /// landmark graph + transition statistics) — part of the Table IV
  /// accounting.
  size_t SharedIndexMemoryBytes() const;

 private:
  const RoadNetwork& network_;
  SystemConfig config_;
  MapPartitioning partitioning_;
  std::unique_ptr<LandmarkGraph> landmarks_;
  TransitionModel transitions_;
  std::unique_ptr<DistanceOracle> oracle_;
};

}  // namespace mtshare

#endif  // MTSHARE_CORE_MTSHARE_SYSTEM_H_
