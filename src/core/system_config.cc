#include "core/system_config.h"

namespace mtshare {

Status SystemConfig::Validate() const {
  if (kappa <= 0) return Status::InvalidArgument("kappa must be positive");
  if (kt <= 0) return Status::InvalidArgument("kt must be positive");
  if (kt > kappa) {
    return Status::InvalidArgument("kt must not exceed kappa (Sec. IV-B1)");
  }
  if (taxi_capacity <= 0) {
    return Status::InvalidArgument("taxi capacity must be positive");
  }
  if (rho <= 1.0) {
    return Status::InvalidArgument(
        "rho must exceed 1.0 (deadline above direct travel time)");
  }
  if (matching.lambda < -1.0 || matching.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be a cosine in [-1, 1]");
  }
  if (matching.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  if (matching.gamma_max_m <= 0.0) {
    return Status::InvalidArgument("gamma must be positive");
  }
  if (matching.speed_mps <= 0.0) {
    return Status::InvalidArgument("speed must be positive");
  }
  if (matching.tmp <= 0.0) {
    return Status::InvalidArgument("T_mp must be positive");
  }
  // Oracle sizing: each of these used to be consumed unchecked (a zero or
  // negative shard count, say, reached ShardedLruCache as UB); reject them
  // here so MTShareSystem::Create reports instead of misbehaving.
  if (oracle.max_exact_vertices <= 0) {
    return Status::InvalidArgument("oracle.max_exact_vertices must be positive");
  }
  if (oracle.lru_rows <= 0) {
    return Status::InvalidArgument("oracle.lru_rows must be positive");
  }
  if (oracle.lru_shards <= 0) {
    return Status::InvalidArgument("oracle.lru_shards must be positive");
  }
  if (oracle.lru_max_bytes < 0) {
    return Status::InvalidArgument(
        "oracle.lru_max_bytes must be non-negative (0 = uncapped)");
  }
  if (oracle.ch.witness_settle_limit <= 0) {
    return Status::InvalidArgument(
        "oracle.ch.witness_settle_limit must be positive");
  }
  if (oracle.ch.threads < 0) {
    return Status::InvalidArgument("oracle.ch.threads must be non-negative");
  }
  if (payment.beta < 0.0 || payment.beta > 1.0) {
    return Status::InvalidArgument("beta must lie in [0, 1]");
  }
  if (payment.eta < 0.0) {
    return Status::InvalidArgument("eta must be non-negative");
  }
  return Status::OK();
}

}  // namespace mtshare
