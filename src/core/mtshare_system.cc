#include "core/mtshare_system.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <optional>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "sim/request_source.h"

namespace mtshare {

const char* SchemeName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNoSharing:
      return "No-Sharing";
    case SchemeKind::kTShare:
      return "T-Share";
    case SchemeKind::kPGreedyDp:
      return "pGreedyDP";
    case SchemeKind::kMtShare:
      return "mT-Share";
    case SchemeKind::kMtSharePro:
      return "mT-Share-pro";
  }
  return "?";
}

std::optional<SchemeKind> ParseScheme(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "no-sharing") return SchemeKind::kNoSharing;
  if (lower == "t-share") return SchemeKind::kTShare;
  // Both the display name "pGreedyDP" and the CLI spelling "pgreedy-dp".
  if (lower == "pgreedydp" || lower == "pgreedy-dp") {
    return SchemeKind::kPGreedyDp;
  }
  if (lower == "mt-share") return SchemeKind::kMtShare;
  if (lower == "mt-share-pro") return SchemeKind::kMtSharePro;
  return std::nullopt;
}

Status ScenarioSpec::Validate() const {
  if (requests == nullptr && source == nullptr) {
    return Status::InvalidArgument(
        "ScenarioSpec.requests must be set (or a streaming "
        "ScenarioSpec.source)");
  }
  if (requests != nullptr && source != nullptr) {
    return Status::InvalidArgument(
        "ScenarioSpec.requests and ScenarioSpec.source are exclusive — "
        "set exactly one");
  }
  if (num_taxis < 1) {
    return Status::InvalidArgument("ScenarioSpec.num_taxis must be >= 1");
  }
  if (num_threads < 0 || num_threads > 1024) {
    return Status::InvalidArgument(
        "ScenarioSpec.num_threads must be in [0, 1024]");
  }
  if (!(batch_window_ms >= 0.0) || !std::isfinite(batch_window_ms)) {
    return Status::InvalidArgument(
        "ScenarioSpec.batch_window_ms must be finite and >= 0");
  }
  if (max_queue < 0) {
    return Status::InvalidArgument("ScenarioSpec.max_queue must be >= 0");
  }
  // The engine replays the stream in order and indexes records by id; the
  // old API documented "sorted with dense ids" and crashed downstream on
  // violations — the spec path reports them instead. Streaming sources
  // carry the equivalent validation themselves (their status fails on the
  // offending line).
  if (requests != nullptr) {
    for (size_t i = 0; i < requests->size(); ++i) {
      const RideRequest& r = (*requests)[i];
      if (r.id != static_cast<RequestId>(i)) {
        return Status::InvalidArgument(
            "requests must carry dense ids 0..n-1 in order");
      }
      if (i > 0 && r.release_time < (*requests)[i - 1].release_time) {
        return Status::InvalidArgument(
            "requests must be sorted by release time");
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<MTShareSystem>> MTShareSystem::Create(
    const RoadNetwork& network, const std::vector<OdPair>& historical_trips,
    const SystemConfig& config) {
  MTSHARE_RETURN_NOT_OK(config.Validate());
  if (network.num_vertices() <= 0) {
    return Status::InvalidArgument("network has no vertices");
  }
  if (config.bipartite_partitioning && historical_trips.empty()) {
    return Status::InvalidArgument(
        "bipartite partitioning needs historical trips (or set "
        "bipartite_partitioning = false)");
  }
  return std::make_unique<MTShareSystem>(network, historical_trips, config);
}

MTShareSystem::MTShareSystem(const RoadNetwork& network,
                             const std::vector<OdPair>& historical_trips,
                             const SystemConfig& config)
    : network_(network), config_(config) {
  Status st = config.Validate();
  if (!st.ok()) {
    MTSHARE_LOG(kError) << "invalid SystemConfig: " << st;
  }
  MTSHARE_CHECK(st.ok());

  if (config.bipartite_partitioning) {
    BipartiteOptions opts;
    opts.kappa = config.kappa;
    opts.kt = config.kt;
    opts.seed = config.seed;
    partitioning_ = BipartitePartition(network, historical_trips, opts);
  } else {
    partitioning_ = GridPartition(network, config.kappa);
  }
  landmarks_ = std::make_unique<LandmarkGraph>(network, partitioning_);
  transitions_ = TransitionModel::Build(
      network.num_vertices(), partitioning_.num_partitions(),
      partitioning_.vertex_partition, historical_trips);
  oracle_ = std::make_unique<DistanceOracle>(network, config.oracle);
}

DistanceOracle* MTShareSystem::OracleFor(OracleBackend backend) {
  if (backend == OracleBackend::kAuto || backend == oracle_->backend()) {
    return oracle_.get();
  }
  std::lock_guard<std::mutex> lock(extra_oracle_mutex_);
  std::unique_ptr<DistanceOracle>& slot =
      extra_oracles_[static_cast<size_t>(backend)];
  if (slot == nullptr) {
    OracleOptions opts = config_.oracle;
    opts.backend = backend;
    slot = std::make_unique<DistanceOracle>(network_, opts);
  }
  return slot.get();
}

const ContractionHierarchy* MTShareSystem::BucketSearchCh(
    DistanceOracle* oracle) {
  if (oracle != nullptr && oracle->ch() != nullptr) return oracle->ch();
  std::lock_guard<std::mutex> lock(extra_oracle_mutex_);
  if (bucket_ch_ == nullptr) {
    bucket_ch_ = std::make_unique<ContractionHierarchy>(
        ContractionHierarchy::Build(network_, config_.oracle.ch));
  }
  return bucket_ch_.get();
}

std::unique_ptr<Dispatcher> MTShareSystem::MakeDispatcher(
    SchemeKind scheme, std::vector<TaxiState>* fleet, DistanceOracle* oracle) {
  if (oracle == nullptr) oracle = oracle_.get();
  MatchingConfig mc = config_.matching;
  std::unique_ptr<Dispatcher> d;
  switch (scheme) {
    case SchemeKind::kNoSharing:
      d = std::make_unique<NoSharingDispatcher>(network_, oracle, fleet, mc);
      break;
    case SchemeKind::kTShare: {
      auto t = std::make_unique<TShareDispatcher>(network_, oracle, fleet, mc);
      t->EnableLowerBoundPruning(landmarks_.get());
      d = std::move(t);
      break;
    }
    case SchemeKind::kPGreedyDp: {
      auto p = std::make_unique<PGreedyDpDispatcher>(network_, oracle, fleet,
                                                     mc);
      p->EnableLowerBoundPruning(landmarks_.get());
      d = std::move(p);
      break;
    }
    case SchemeKind::kMtShare:
      mc.probabilistic = false;
      d = std::make_unique<MtShareDispatcher>(network_, oracle, fleet, mc,
                                              partitioning_, *landmarks_,
                                              &transitions_);
      break;
    case SchemeKind::kMtSharePro:
      mc.probabilistic = true;
      d = std::make_unique<MtShareDispatcher>(network_, oracle, fleet, mc,
                                              partitioning_, *landmarks_,
                                              &transitions_);
      break;
  }
  MTSHARE_CHECK(d != nullptr);
  if (mc.candidate_search == CandidateSearch::kChBuckets) {
    d->EnableChBucketSearch(BucketSearchCh(oracle));
  }
  return d;
}

Result<Metrics> MTShareSystem::RunScenario(const ScenarioSpec& spec) {
  MTSHARE_RETURN_NOT_OK(spec.Validate());
  // Vector and streaming ingest share one engine path: a pre-materialized
  // vector is just a VectorRequestSource, which makes the classic replay
  // trivially byte-identical to a streamed copy of the same log.
  std::optional<VectorRequestSource> vector_source;
  RequestSource* source = spec.source;
  if (source == nullptr) {
    vector_source.emplace(spec.requests);
    source = &*vector_source;
  }
  // The fleet starts when the first request releases; peeking does not
  // consume it. A source that fails on its very first record surfaces the
  // error through source->status() after the (empty) run.
  RideRequest first;
  Seconds start_time = source->Peek(&first) ? first.release_time : 0.0;
  std::vector<TaxiState> fleet =
      MakeFleet(network_, spec.num_taxis, config_.taxi_capacity,
                spec.fleet_seed, start_time);
  DistanceOracle* oracle = OracleFor(spec.oracle_backend);
  std::unique_ptr<Dispatcher> dispatcher =
      MakeDispatcher(spec.scheme, &fleet, oracle);
  dispatcher->EnablePhaseTiming(spec.collect_phase_timing);

  // One pool per run: startup is microseconds against multi-second runs,
  // and per-run pools keep concurrent RunScenario calls (the bench sweep
  // runner) from sharing workers.
  std::unique_ptr<ThreadPool> pool;
  const int32_t threads = ThreadPool::DefaultThreads(spec.num_threads);
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    dispatcher->set_thread_pool(pool.get());
  }

  EngineOptions eopts;
  eopts.serve_offline = spec.serve_offline;
  eopts.event_driven = spec.event_driven;
  eopts.batch_window_ms = spec.batch_window_ms;
  eopts.max_queue = spec.max_queue;
  eopts.on_decision = spec.on_decision;
  eopts.payment = config_.payment;
  SimulationEngine engine(network_, dispatcher.get(), &fleet, eopts);

  const int64_t q0 = oracle->queries();
  const int64_t h0 = oracle->row_hits();
  const int64_t m0 = oracle->row_misses();
  const ChQueryStats ch0 = oracle->ch_query_stats();
  Metrics metrics = engine.Run(*source);
  // A mid-stream parse/order error ended the pull early; the partial run's
  // metrics are meaningless, so report the source failure instead.
  MTSHARE_RETURN_NOT_OK(source->status());
  metrics.oracle_queries = oracle->queries() - q0;
  metrics.oracle_row_hits = oracle->row_hits() - h0;
  metrics.oracle_row_misses = oracle->row_misses() - m0;
  metrics.oracle_backend = OracleBackendName(oracle->backend());
  // CH counters, as deltas of the shared oracle (its engines are all
  // checked back into the pool between dispatches, so the totals are
  // quiescent here). Preprocessing cost is per oracle, not per run.
  const ChQueryStats ch1 = oracle->ch_query_stats();
  metrics.routing.ch_active = oracle->backend() == OracleBackend::kCh;
  metrics.routing.ch_shortcuts = oracle->ch_build_stats().shortcuts_added;
  metrics.routing.ch_preprocessing_ms =
      oracle->ch_build_stats().preprocessing_ms;
  metrics.routing.ch_point_queries = ch1.point_queries - ch0.point_queries;
  metrics.routing.ch_bucket_queries = ch1.bucket_queries - ch0.bucket_queries;
  metrics.routing.ch_upward_settled = ch1.upward_settled - ch0.upward_settled;
  metrics.routing.ch_bucket_entries = ch1.bucket_entries - ch0.bucket_entries;
  return metrics;
}

size_t MTShareSystem::SharedIndexMemoryBytes() const {
  return partitioning_.MemoryBytes() + landmarks_->MemoryBytes() +
         transitions_.MemoryBytes();
}

}  // namespace mtshare
