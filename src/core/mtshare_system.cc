#include "core/mtshare_system.h"

#include "common/logging.h"

namespace mtshare {

const char* SchemeName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNoSharing:
      return "No-Sharing";
    case SchemeKind::kTShare:
      return "T-Share";
    case SchemeKind::kPGreedyDp:
      return "pGreedyDP";
    case SchemeKind::kMtShare:
      return "mT-Share";
    case SchemeKind::kMtSharePro:
      return "mT-Share-pro";
  }
  return "?";
}

MTShareSystem::MTShareSystem(const RoadNetwork& network,
                             const std::vector<OdPair>& historical_trips,
                             const SystemConfig& config)
    : network_(network), config_(config) {
  Status st = config.Validate();
  if (!st.ok()) {
    MTSHARE_LOG(kError) << "invalid SystemConfig: " << st;
  }
  MTSHARE_CHECK(st.ok());

  if (config.bipartite_partitioning) {
    BipartiteOptions opts;
    opts.kappa = config.kappa;
    opts.kt = config.kt;
    opts.seed = config.seed;
    partitioning_ = BipartitePartition(network, historical_trips, opts);
  } else {
    partitioning_ = GridPartition(network, config.kappa);
  }
  landmarks_ = std::make_unique<LandmarkGraph>(network, partitioning_);
  transitions_ = TransitionModel::Build(
      network.num_vertices(), partitioning_.num_partitions(),
      partitioning_.vertex_partition, historical_trips);
  oracle_ = std::make_unique<DistanceOracle>(network);
}

std::unique_ptr<Dispatcher> MTShareSystem::MakeDispatcher(
    SchemeKind scheme, std::vector<TaxiState>* fleet) {
  MatchingConfig mc = config_.matching;
  switch (scheme) {
    case SchemeKind::kNoSharing:
      return std::make_unique<NoSharingDispatcher>(network_, oracle_.get(),
                                                   fleet, mc);
    case SchemeKind::kTShare:
      return std::make_unique<TShareDispatcher>(network_, oracle_.get(),
                                                fleet, mc);
    case SchemeKind::kPGreedyDp:
      return std::make_unique<PGreedyDpDispatcher>(network_, oracle_.get(),
                                                   fleet, mc);
    case SchemeKind::kMtShare:
      mc.probabilistic = false;
      return std::make_unique<MtShareDispatcher>(network_, oracle_.get(),
                                                 fleet, mc, partitioning_,
                                                 *landmarks_, &transitions_);
    case SchemeKind::kMtSharePro:
      mc.probabilistic = true;
      return std::make_unique<MtShareDispatcher>(network_, oracle_.get(),
                                                 fleet, mc, partitioning_,
                                                 *landmarks_, &transitions_);
  }
  MTSHARE_CHECK(false);
  return nullptr;
}

Metrics MTShareSystem::RunScenario(SchemeKind scheme,
                                   const std::vector<RideRequest>& requests,
                                   int32_t num_taxis, uint64_t fleet_seed,
                                   bool serve_offline) {
  Seconds start_time =
      requests.empty() ? 0.0 : requests.front().release_time;
  std::vector<TaxiState> fleet = MakeFleet(
      network_, num_taxis, config_.taxi_capacity, fleet_seed, start_time);
  std::unique_ptr<Dispatcher> dispatcher = MakeDispatcher(scheme, &fleet);
  EngineOptions eopts;
  eopts.serve_offline = serve_offline;
  eopts.payment = config_.payment;
  SimulationEngine engine(network_, dispatcher.get(), &fleet, eopts);
  return engine.Run(requests);
}

size_t MTShareSystem::SharedIndexMemoryBytes() const {
  return partitioning_.MemoryBytes() + landmarks_->MemoryBytes() +
         transitions_.MemoryBytes();
}

}  // namespace mtshare
