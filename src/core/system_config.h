#ifndef MTSHARE_CORE_SYSTEM_CONFIG_H_
#define MTSHARE_CORE_SYSTEM_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "matching/dispatcher.h"
#include "partition/bipartite_partitioner.h"
#include "payment/payment_model.h"
#include "routing/distance_oracle.h"

namespace mtshare {

/// Full system configuration aggregating every paper parameter (Table II)
/// with its default. Validation catches nonsensical combinations before a
/// run starts.
struct SystemConfig {
  // --- matching / routing (Table II) ---
  MatchingConfig matching;

  /// Distance-oracle backend and sizing (exact table / LRU rows /
  /// contraction hierarchy; kAuto picks by graph size).
  OracleOptions oracle;

  // --- map partitioning ---
  /// Number of spatial partitions kappa (paper sweeps 50-250; our scaled
  /// default matches the network sizes the benches use).
  int32_t kappa = 120;
  /// Transition clusters k_t (paper default 20).
  int32_t kt = 20;
  /// Use bipartite (mobility-aware) partitioning; false = uniform grid
  /// (the Table V ablation).
  bool bipartite_partitioning = true;

  // --- fleet / requests ---
  int32_t taxi_capacity = 3;
  /// Deadline flexibility rho (eq. (9), default 1.3).
  double rho = 1.3;

  // --- payment (Sec. IV-D) ---
  PaymentConfig payment;

  uint64_t seed = 42;

  /// Returns OK or the first violated constraint.
  Status Validate() const;
};

}  // namespace mtshare

#endif  // MTSHARE_CORE_SYSTEM_CONFIG_H_
