#include "routing/bidirectional.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace mtshare {

BidirectionalSearch::BidirectionalSearch(const RoadNetwork& network)
    : network_(network) {
  for (int d = 0; d < 2; ++d) {
    dist_[d].assign(network.num_vertices(), 0.0);
    parent_[d].assign(network.num_vertices(), kInvalidVertex);
    epoch_[d].assign(network.num_vertices(), 0);
  }
}

bool BidirectionalSearch::Run(VertexId source, VertexId target) {
  MTSHARE_CHECK(source >= 0 && source < network_.num_vertices());
  MTSHARE_CHECK(target >= 0 && target < network_.num_vertices());
  ++current_epoch_;
  if (current_epoch_ == 0) {
    for (int d = 0; d < 2; ++d) {
      std::fill(epoch_[d].begin(), epoch_[d].end(), 0);
    }
    current_epoch_ = 1;
  }
  last_settled_ = 0;
  meeting_vertex_ = kInvalidVertex;
  best_cost_ = kInfiniteCost;

  struct Entry {
    Seconds g;
    VertexId vertex;
    bool operator>(const Entry& other) const { return g > other.g; }
  };
  using Queue =
      std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>;
  Queue queue[2];

  auto seed = [&](int dir, VertexId v) {
    dist_[dir][v] = 0.0;
    parent_[dir][v] = kInvalidVertex;
    epoch_[dir][v] = current_epoch_;
    queue[dir].push(Entry{0.0, v});
  };
  seed(0, source);
  seed(1, target);

  auto try_meet = [&](VertexId v) {
    if (epoch_[0][v] == current_epoch_ && epoch_[1][v] == current_epoch_) {
      Seconds total = dist_[0][v] + dist_[1][v];
      if (total < best_cost_) {
        best_cost_ = total;
        meeting_vertex_ = v;
      }
    }
  };

  // Alternate expansions; stop when the sum of frontier radii reaches the
  // best meeting cost (standard bidirectional termination criterion).
  Seconds radius[2] = {0.0, 0.0};
  while (!queue[0].empty() || !queue[1].empty()) {
    if (best_cost_ <= radius[0] + radius[1]) break;
    int dir;
    if (queue[0].empty()) {
      dir = 1;
    } else if (queue[1].empty()) {
      dir = 0;
    } else {
      dir = queue[0].top().g <= queue[1].top().g ? 0 : 1;
    }
    Entry top = queue[dir].top();
    queue[dir].pop();
    if (epoch_[dir][top.vertex] != current_epoch_ ||
        top.g > dist_[dir][top.vertex]) {
      continue;  // stale
    }
    ++last_settled_;
    radius[dir] = top.g;
    auto arcs = dir == 0 ? network_.OutArcs(top.vertex)
                         : network_.InArcs(top.vertex);
    for (const Arc& arc : arcs) {
      VertexId next = arc.head;
      Seconds g = top.g + arc.cost;
      if (epoch_[dir][next] != current_epoch_ || g < dist_[dir][next]) {
        epoch_[dir][next] = current_epoch_;
        dist_[dir][next] = g;
        parent_[dir][next] = top.vertex;
        queue[dir].push(Entry{g, next});
        try_meet(next);
      }
    }
  }
  return meeting_vertex_ != kInvalidVertex;
}

Seconds BidirectionalSearch::Cost(VertexId source, VertexId target) {
  if (source == target) return 0.0;
  if (!Run(source, target)) return kInfiniteCost;
  return best_cost_;
}

Path BidirectionalSearch::FindPath(VertexId source, VertexId target) {
  if (source == target) return Path::Trivial(source);
  if (!Run(source, target)) return Path::Invalid();
  Path path;
  path.cost = best_cost_;
  path.valid = true;
  // Forward half: meeting vertex back to source (reversed below).
  for (VertexId v = meeting_vertex_; v != kInvalidVertex; v = parent_[0][v]) {
    path.vertices.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.vertices.begin(), path.vertices.end());
  // Backward half: parents in the reverse search lead toward the target.
  for (VertexId v = parent_[1][meeting_vertex_]; v != kInvalidVertex;
       v = parent_[1][v]) {
    path.vertices.push_back(v);
    if (v == target) break;
  }
  return path;
}

}  // namespace mtshare
