#include "routing/path.h"

#include "common/logging.h"

namespace mtshare {

Path ConcatPaths(const Path& a, const Path& b) {
  if (!a.valid || !b.valid) return Path::Invalid();
  MTSHARE_CHECK(!a.empty() && !b.empty());
  MTSHARE_CHECK(a.back() == b.front());
  Path out;
  out.vertices.reserve(a.vertices.size() + b.vertices.size() - 1);
  out.vertices = a.vertices;
  out.vertices.insert(out.vertices.end(), b.vertices.begin() + 1,
                      b.vertices.end());
  out.cost = a.cost + b.cost;
  out.valid = true;
  return out;
}

}  // namespace mtshare
