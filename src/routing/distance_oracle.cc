#include "routing/distance_oracle.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {
namespace {

OracleBackend ResolveBackend(const RoadNetwork& network,
                             const OracleOptions& options) {
  if (options.backend != OracleBackend::kAuto) return options.backend;
  return network.num_vertices() <= options.max_exact_vertices
             ? OracleBackend::kExact
             : OracleBackend::kCh;
}

}  // namespace

const char* OracleBackendName(OracleBackend backend) {
  switch (backend) {
    case OracleBackend::kAuto:
      return "auto";
    case OracleBackend::kExact:
      return "exact";
    case OracleBackend::kLru:
      return "lru";
    case OracleBackend::kCh:
      return "ch";
  }
  return "unknown";
}

bool ParseOracleBackend(std::string_view name, OracleBackend* out) {
  if (name == "auto") {
    *out = OracleBackend::kAuto;
  } else if (name == "exact") {
    *out = OracleBackend::kExact;
  } else if (name == "lru") {
    *out = OracleBackend::kLru;
  } else if (name == "ch") {
    *out = OracleBackend::kCh;
  } else {
    return false;
  }
  return true;
}

DistanceOracle::DistanceOracle(const RoadNetwork& network,
                               const OracleOptions& options)
    : network_(network),
      options_(options),
      backend_(ResolveBackend(network, options)) {
  switch (backend_) {
    case OracleBackend::kExact:
      exact_rows_.resize(network.num_vertices());
      exact_filled_ =
          std::make_unique<std::atomic<uint8_t>[]>(network.num_vertices());
      for (VertexId v = 0; v < network.num_vertices(); ++v) {
        exact_filled_[v].store(0, std::memory_order_relaxed);
      }
      fill_mutex_ = std::make_unique<std::mutex[]>(kFillStripes);
      break;
    case OracleBackend::kLru: {
      const int32_t shards = std::max<int32_t>(1, options.lru_shards);
      int64_t rows = options.lru_rows;
      if (options.lru_max_bytes > 0) {
        const int64_t row_bytes =
            static_cast<int64_t>(network.num_vertices()) * sizeof(Seconds);
        rows = std::min<int64_t>(
            rows, std::max<int64_t>(shards,
                                    options.lru_max_bytes /
                                        std::max<int64_t>(1, row_bytes)));
      }
      cache_ =
          std::make_unique<ShardedLruCache<VertexId, std::vector<Seconds>>>(
              static_cast<int32_t>(rows), shards);
      break;
    }
    case OracleBackend::kCh:
      ch_ = std::make_unique<ContractionHierarchy>(
          ContractionHierarchy::Build(network, options.ch));
      ch_build_stats_ = ch_->stats();
      break;
    case OracleBackend::kAuto:
      MTSHARE_CHECK(false);  // ResolveBackend never returns kAuto
  }
}

std::unique_ptr<ChQuery> DistanceOracle::BorrowChEngine() {
  {
    std::lock_guard<std::mutex> lock(ch_pool_mutex_);
    if (!ch_pool_.empty()) {
      std::unique_ptr<ChQuery> engine = std::move(ch_pool_.back());
      ch_pool_.pop_back();
      return engine;
    }
    ++ch_engines_created_;
  }
  return std::make_unique<ChQuery>(*ch_);
}

void DistanceOracle::ReturnChEngine(std::unique_ptr<ChQuery> engine) {
  const ChQueryStats& s = engine->stats();
  std::lock_guard<std::mutex> lock(ch_pool_mutex_);
  ch_stats_total_.point_queries += s.point_queries;
  ch_stats_total_.bucket_queries += s.bucket_queries;
  ch_stats_total_.upward_settled += s.upward_settled;
  ch_stats_total_.bucket_entries += s.bucket_entries;
  ch_engine_bytes_max_ = std::max(ch_engine_bytes_max_, engine->MemoryBytes());
  engine->ResetStats();
  ch_pool_.push_back(std::move(engine));
}

ChQueryStats DistanceOracle::ch_query_stats() const {
  std::lock_guard<std::mutex> lock(ch_pool_mutex_);
  return ch_stats_total_;
}

std::vector<Seconds> DistanceOracle::ComputeRow(VertexId source) const {
  // A fresh engine per fill keeps the search state thread-local; fills are
  // rare (once per row in exact mode, once per eviction cycle in LRU mode),
  // so the O(V) buffer setup is noise next to the O(E log V) search.
  DijkstraSearch dijkstra(network_);
  return dijkstra.CostsFrom(source);
}

const std::vector<Seconds>& DistanceOracle::ExactRow(VertexId source) {
  if (exact_filled_[source].load(std::memory_order_acquire)) {
    exact_hits_.fetch_add(1, std::memory_order_relaxed);
    return exact_rows_[source];
  }
  std::lock_guard<std::mutex> lock(fill_mutex_[source % kFillStripes]);
  if (!exact_filled_[source].load(std::memory_order_relaxed)) {
    exact_misses_.fetch_add(1, std::memory_order_relaxed);
    exact_rows_[source] = ComputeRow(source);
    exact_filled_[source].store(1, std::memory_order_release);
  } else {
    exact_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return exact_rows_[source];
}

Seconds DistanceOracle::Cost(VertexId source, VertexId target) {
  MTSHARE_CHECK(source >= 0 && source < network_.num_vertices());
  MTSHARE_CHECK(target >= 0 && target < network_.num_vertices());
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (source == target) return 0.0;
  switch (backend_) {
    case OracleBackend::kExact:
      return ExactRow(source)[target];
    case OracleBackend::kCh: {
      std::unique_ptr<ChQuery> engine = BorrowChEngine();
      Seconds cost = engine->Cost(source, target);
      ReturnChEngine(std::move(engine));
      return cost;
    }
    default: {
      auto row = cache_->GetOrCompute(
          source, [this](VertexId v) { return ComputeRow(v); });
      return (*row)[target];
    }
  }
}

void DistanceOracle::CostMany(VertexId source,
                              std::span<const VertexId> targets,
                              std::vector<Seconds>* out) {
  MTSHARE_CHECK(source >= 0 && source < network_.num_vertices());
  for (VertexId t : targets) {
    MTSHARE_CHECK(t >= 0 && t < network_.num_vertices());
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  batch_queries_.fetch_add(1, std::memory_order_relaxed);
  // One backend pass (and one hit/miss tick) regardless of target count;
  // a row's own source entry is 0.0 and a CH bucket sweep meets a
  // same-vertex target at distance 0, so no special case is needed to
  // stay bit-identical to Cost().
  switch (backend_) {
    case OracleBackend::kExact: {
      const std::vector<Seconds>& row = ExactRow(source);
      out->clear();
      out->reserve(targets.size());
      for (VertexId t : targets) out->push_back(row[t]);
      return;
    }
    case OracleBackend::kCh: {
      std::unique_ptr<ChQuery> engine = BorrowChEngine();
      engine->CostMany(source, targets, out);
      ReturnChEngine(std::move(engine));
      return;
    }
    default: {
      auto row = cache_->GetOrCompute(
          source, [this](VertexId v) { return ComputeRow(v); });
      out->clear();
      out->reserve(targets.size());
      for (VertexId t : targets) out->push_back((*row)[t]);
      return;
    }
  }
}

void DistanceOracle::CostManyToMany(std::span<const VertexId> sources,
                                    std::span<const VertexId> targets,
                                    std::vector<Seconds>* out) {
  for (VertexId s : sources) {
    MTSHARE_CHECK(s >= 0 && s < network_.num_vertices());
  }
  for (VertexId t : targets) {
    MTSHARE_CHECK(t >= 0 && t < network_.num_vertices());
  }
  queries_.fetch_add(static_cast<int64_t>(sources.size()),
                     std::memory_order_relaxed);
  batch_queries_.fetch_add(1, std::memory_order_relaxed);
  if (backend_ == OracleBackend::kCh) {
    std::unique_ptr<ChQuery> engine = BorrowChEngine();
    engine->CostManyToMany(sources, targets, out);
    ReturnChEngine(std::move(engine));
    return;
  }
  // Table / LRU: one row pass per source.
  out->clear();
  out->reserve(sources.size() * targets.size());
  for (VertexId s : sources) {
    if (backend_ == OracleBackend::kExact) {
      const std::vector<Seconds>& row = ExactRow(s);
      for (VertexId t : targets) out->push_back(row[t]);
    } else {
      auto row = cache_->GetOrCompute(
          s, [this](VertexId v) { return ComputeRow(v); });
      for (VertexId t : targets) out->push_back((*row)[t]);
    }
  }
}

const std::vector<Seconds>& DistanceOracle::Row(VertexId source) {
  MTSHARE_CHECK(exact_mode());  // LRU rows can be evicted; use RowPtr()
  queries_.fetch_add(1, std::memory_order_relaxed);
  return ExactRow(source);
}

std::shared_ptr<const std::vector<Seconds>> DistanceOracle::RowPtr(
    VertexId source) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  switch (backend_) {
    case OracleBackend::kExact: {
      // Alias the table-owned row; the table lives as long as the oracle.
      const std::vector<Seconds>& row = ExactRow(source);
      return std::shared_ptr<const std::vector<Seconds>>(
          std::shared_ptr<const void>(), &row);
    }
    case OracleBackend::kCh:
      // No row store exists in CH mode; pay one Dijkstra. Callers on the
      // hot path use CostMany/CostManyToMany instead.
      return std::make_shared<const std::vector<Seconds>>(ComputeRow(source));
    default:
      return cache_->GetOrCompute(
          source, [this](VertexId v) { return ComputeRow(v); });
  }
}

int64_t DistanceOracle::row_hits() const {
  switch (backend_) {
    case OracleBackend::kExact:
      return exact_hits_.load(std::memory_order_relaxed);
    case OracleBackend::kLru:
      return cache_->hits();
    default:
      return 0;
  }
}

int64_t DistanceOracle::row_misses() const {
  switch (backend_) {
    case OracleBackend::kExact:
      return exact_misses_.load(std::memory_order_relaxed);
    case OracleBackend::kLru:
      return cache_->misses();
    default:
      return 0;
  }
}

size_t DistanceOracle::MemoryBytes() const {
  switch (backend_) {
    case OracleBackend::kExact: {
      size_t bytes = 0;
      for (VertexId v = 0; v < network_.num_vertices(); ++v) {
        if (exact_filled_[v].load(std::memory_order_acquire)) {
          bytes += exact_rows_[v].size() * sizeof(Seconds);
        }
      }
      return bytes;
    }
    case OracleBackend::kCh: {
      std::lock_guard<std::mutex> lock(ch_pool_mutex_);
      size_t bytes = ch_->MemoryBytes();
      size_t engine_bytes = ch_engine_bytes_max_;
      for (const std::unique_ptr<ChQuery>& engine : ch_pool_) {
        engine_bytes = std::max(engine_bytes, engine->MemoryBytes());
      }
      // Every pooled engine is buffer-wise the same size; count the largest
      // observed footprint once per engine ever created.
      return bytes + ch_engines_created_ * engine_bytes;
    }
    default:
      return cache_->MemoryBytes([](const std::vector<Seconds>& row) {
        return row.size() * sizeof(Seconds);
      });
  }
}

}  // namespace mtshare
