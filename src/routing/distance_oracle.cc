#include "routing/distance_oracle.h"

#include "common/logging.h"

namespace mtshare {

DistanceOracle::DistanceOracle(const RoadNetwork& network,
                               const OracleOptions& options)
    : network_(network),
      options_(options),
      exact_mode_(network.num_vertices() <= options.max_exact_vertices),
      dijkstra_(network) {
  if (exact_mode_) {
    exact_rows_.resize(network.num_vertices());
  }
}

const std::vector<Seconds>& DistanceOracle::FetchRow(VertexId source) {
  if (exact_mode_) {
    auto& row = exact_rows_[source];
    if (row.empty()) {
      ++row_misses_;
      row = dijkstra_.CostsFrom(source);
    }
    return row;
  }
  auto it = cache_.find(source);
  if (it != cache_.end()) {
    lru_order_.splice(lru_order_.begin(), lru_order_, it->second.order_it);
    return it->second.row;
  }
  ++row_misses_;
  if (static_cast<int32_t>(cache_.size()) >= options_.lru_rows) {
    VertexId victim = lru_order_.back();
    lru_order_.pop_back();
    cache_.erase(victim);
  }
  lru_order_.push_front(source);
  CacheEntry entry{dijkstra_.CostsFrom(source), lru_order_.begin()};
  auto [ins_it, inserted] = cache_.emplace(source, std::move(entry));
  MTSHARE_CHECK(inserted);
  return ins_it->second.row;
}

Seconds DistanceOracle::Cost(VertexId source, VertexId target) {
  MTSHARE_CHECK(source >= 0 && source < network_.num_vertices());
  MTSHARE_CHECK(target >= 0 && target < network_.num_vertices());
  ++queries_;
  if (source == target) return 0.0;
  return FetchRow(source)[target];
}

const std::vector<Seconds>& DistanceOracle::Row(VertexId source) {
  ++queries_;
  return FetchRow(source);
}

size_t DistanceOracle::MemoryBytes() const {
  size_t bytes = 0;
  if (exact_mode_) {
    for (const auto& row : exact_rows_) bytes += row.size() * sizeof(Seconds);
  } else {
    for (const auto& [src, entry] : cache_) {
      (void)src;
      bytes += entry.row.size() * sizeof(Seconds) + sizeof(CacheEntry);
    }
  }
  return bytes;
}

}  // namespace mtshare
