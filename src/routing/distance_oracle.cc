#include "routing/distance_oracle.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {

DistanceOracle::DistanceOracle(const RoadNetwork& network,
                               const OracleOptions& options)
    : network_(network),
      options_(options),
      exact_mode_(network.num_vertices() <= options.max_exact_vertices) {
  if (exact_mode_) {
    exact_rows_.resize(network.num_vertices());
    exact_filled_ =
        std::make_unique<std::atomic<uint8_t>[]>(network.num_vertices());
    for (VertexId v = 0; v < network.num_vertices(); ++v) {
      exact_filled_[v].store(0, std::memory_order_relaxed);
    }
    fill_mutex_ = std::make_unique<std::mutex[]>(kFillStripes);
  } else {
    cache_ = std::make_unique<ShardedLruCache<VertexId, std::vector<Seconds>>>(
        options.lru_rows, std::max<int32_t>(1, options.lru_shards));
  }
}

std::vector<Seconds> DistanceOracle::ComputeRow(VertexId source) const {
  // A fresh engine per fill keeps the search state thread-local; fills are
  // rare (once per row in exact mode, once per eviction cycle in LRU mode),
  // so the O(V) buffer setup is noise next to the O(E log V) search.
  DijkstraSearch dijkstra(network_);
  return dijkstra.CostsFrom(source);
}

const std::vector<Seconds>& DistanceOracle::ExactRow(VertexId source) {
  if (exact_filled_[source].load(std::memory_order_acquire)) {
    exact_hits_.fetch_add(1, std::memory_order_relaxed);
    return exact_rows_[source];
  }
  std::lock_guard<std::mutex> lock(fill_mutex_[source % kFillStripes]);
  if (!exact_filled_[source].load(std::memory_order_relaxed)) {
    exact_misses_.fetch_add(1, std::memory_order_relaxed);
    exact_rows_[source] = ComputeRow(source);
    exact_filled_[source].store(1, std::memory_order_release);
  } else {
    exact_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return exact_rows_[source];
}

Seconds DistanceOracle::Cost(VertexId source, VertexId target) {
  MTSHARE_CHECK(source >= 0 && source < network_.num_vertices());
  MTSHARE_CHECK(target >= 0 && target < network_.num_vertices());
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (source == target) return 0.0;
  if (exact_mode_) return ExactRow(source)[target];
  auto row = cache_->GetOrCompute(
      source, [this](VertexId v) { return ComputeRow(v); });
  return (*row)[target];
}

void DistanceOracle::CostMany(VertexId source,
                              std::span<const VertexId> targets,
                              std::vector<Seconds>* out) {
  MTSHARE_CHECK(source >= 0 && source < network_.num_vertices());
  queries_.fetch_add(1, std::memory_order_relaxed);
  batch_queries_.fetch_add(1, std::memory_order_relaxed);
  out->clear();
  out->reserve(targets.size());
  // One row pass (and one hit/miss tick) regardless of target count; the
  // row's own source entry is 0.0, so no same-vertex special case is
  // needed to stay bit-identical to Cost().
  if (exact_mode_) {
    const std::vector<Seconds>& row = ExactRow(source);
    for (VertexId t : targets) {
      MTSHARE_CHECK(t >= 0 && t < network_.num_vertices());
      out->push_back(row[t]);
    }
    return;
  }
  auto row = cache_->GetOrCompute(
      source, [this](VertexId v) { return ComputeRow(v); });
  for (VertexId t : targets) {
    MTSHARE_CHECK(t >= 0 && t < network_.num_vertices());
    out->push_back((*row)[t]);
  }
}

const std::vector<Seconds>& DistanceOracle::Row(VertexId source) {
  MTSHARE_CHECK(exact_mode_);  // LRU rows can be evicted; use RowPtr()
  queries_.fetch_add(1, std::memory_order_relaxed);
  return ExactRow(source);
}

std::shared_ptr<const std::vector<Seconds>> DistanceOracle::RowPtr(
    VertexId source) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (exact_mode_) {
    // Alias the table-owned row; the table lives as long as the oracle.
    const std::vector<Seconds>& row = ExactRow(source);
    return std::shared_ptr<const std::vector<Seconds>>(
        std::shared_ptr<const void>(), &row);
  }
  return cache_->GetOrCompute(source,
                              [this](VertexId v) { return ComputeRow(v); });
}

int64_t DistanceOracle::row_hits() const {
  return exact_mode_ ? exact_hits_.load(std::memory_order_relaxed)
                     : cache_->hits();
}

int64_t DistanceOracle::row_misses() const {
  return exact_mode_ ? exact_misses_.load(std::memory_order_relaxed)
                     : cache_->misses();
}

size_t DistanceOracle::MemoryBytes() const {
  if (exact_mode_) {
    size_t bytes = 0;
    for (VertexId v = 0; v < network_.num_vertices(); ++v) {
      if (exact_filled_[v].load(std::memory_order_acquire)) {
        bytes += exact_rows_[v].size() * sizeof(Seconds);
      }
    }
    return bytes;
  }
  return cache_->MemoryBytes(
      [](const std::vector<Seconds>& row) { return row.size() * sizeof(Seconds); });
}

}  // namespace mtshare
