#ifndef MTSHARE_ROUTING_DISTANCE_ORACLE_H_
#define MTSHARE_ROUTING_DISTANCE_ORACLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/sharded_lru.h"
#include "graph/road_network.h"
#include "routing/dijkstra.h"

namespace mtshare {

struct OracleOptions {
  /// Networks up to this many vertices get a dense all-pairs table
  /// (the paper precomputes and caches all-pairs shortest paths,
  /// Sec. V-A4); larger networks fall back to an LRU row cache.
  int32_t max_exact_vertices = 4200;

  /// Number of one-to-all rows retained in LRU mode.
  int32_t lru_rows = 4096;

  /// Mutex stripes of the LRU row cache (concurrent queries only contend
  /// when their source vertices hash to the same shard).
  int32_t lru_shards = 16;
};

/// Shortest-path *cost* oracle with O(1) amortized queries, mirroring the
/// paper's assumption that "the shortest path query will take O(1) time"
/// (Sec. IV-C). Exact dense table for small graphs; LRU-cached Dijkstra
/// rows for large ones. Costs only — use DijkstraSearch/AStarSearch when
/// the vertex sequence is needed.
///
/// Thread-safe: the parallel matching engine issues Cost() queries from
/// every pool worker concurrently. Exact mode fills each row exactly once
/// behind striped mutexes and publishes it with an atomic flag; LRU mode
/// delegates to a sharded, mutex-striped LRU cache (ShardedLruCache).
/// Hit/miss counters are atomics and surface through Metrics.
class DistanceOracle {
 public:
  DistanceOracle(const RoadNetwork& network, const OracleOptions& options = {});

  /// Travel seconds from source to target (kInfiniteCost if unreachable).
  /// Safe to call from any thread.
  Seconds Cost(VertexId source, VertexId target);

  /// Batch query: costs from `source` to every target (aligned with
  /// `targets`; duplicates allowed), serviced with ONE pass through the
  /// exact/LRU row backend. Counts as a single oracle query plus one
  /// batch_queries tick, however many targets it serves. Each value is
  /// bit-identical to Cost(source, target) for the same pair. Safe to call
  /// from any thread.
  void CostMany(VertexId source, std::span<const VertexId> targets,
                std::vector<Seconds>* out);

  /// One-to-all row for `source`, exact mode only (rows are never evicted,
  /// so the reference stays valid for the oracle's lifetime). LRU mode
  /// callers must use RowPtr(), whose shared_ptr survives eviction.
  const std::vector<Seconds>& Row(VertexId source);

  /// One-to-all row for `source`; works in both modes and is safe against
  /// concurrent eviction.
  std::shared_ptr<const std::vector<Seconds>> RowPtr(VertexId source);

  bool exact_mode() const { return exact_mode_; }
  int64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  /// CostMany calls serviced (each also counts as one query).
  int64_t batch_queries() const {
    return batch_queries_.load(std::memory_order_relaxed);
  }
  /// Row-cache traffic: a hit served a query from a resident row, a miss
  /// paid a one-to-all Dijkstra. (Same-vertex queries short-circuit and
  /// count toward neither.)
  int64_t row_hits() const;
  int64_t row_misses() const;

  /// Resident bytes of the table / cache (Tab. IV memory accounting).
  size_t MemoryBytes() const;

 private:
  std::vector<Seconds> ComputeRow(VertexId source) const;
  const std::vector<Seconds>& ExactRow(VertexId source);

  const RoadNetwork& network_;
  OracleOptions options_;
  bool exact_mode_;

  /// Exact mode: dense row-major table, filled lazily one row at a time
  /// (a fully eager fill would still be fine but wastes startup time when
  /// only part of the city is touched). `exact_filled_[v]` publishes row v
  /// with release/acquire ordering; fills serialize per mutex stripe.
  std::vector<std::vector<Seconds>> exact_rows_;
  std::unique_ptr<std::atomic<uint8_t>[]> exact_filled_;
  static constexpr int32_t kFillStripes = 64;
  std::unique_ptr<std::mutex[]> fill_mutex_;
  std::atomic<int64_t> exact_hits_{0};
  std::atomic<int64_t> exact_misses_{0};

  /// LRU mode.
  std::unique_ptr<ShardedLruCache<VertexId, std::vector<Seconds>>> cache_;

  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> batch_queries_{0};
};

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_DISTANCE_ORACLE_H_
