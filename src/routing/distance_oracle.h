#ifndef MTSHARE_ROUTING_DISTANCE_ORACLE_H_
#define MTSHARE_ROUTING_DISTANCE_ORACLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "common/sharded_lru.h"
#include "graph/road_network.h"
#include "routing/ch_query.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"

namespace mtshare {

/// Which cost backend the oracle runs on. kAuto resolves by graph size:
/// dense exact table when it fits (<= max_exact_vertices), contraction
/// hierarchy otherwise. kLru keeps the pre-CH row-cache behavior for
/// comparison runs and memory-constrained setups.
enum class OracleBackend {
  kAuto = 0,
  kExact,
  kLru,
  kCh,
};

/// Lower-case stable name ("auto", "exact", "lru", "ch").
const char* OracleBackendName(OracleBackend backend);

/// Parses a backend name (as accepted by mtshare_sim --oracle=). Returns
/// false on unknown names, leaving *out untouched.
bool ParseOracleBackend(std::string_view name, OracleBackend* out);

struct OracleOptions {
  /// Backend selection; see OracleBackend.
  OracleBackend backend = OracleBackend::kAuto;

  /// Networks up to this many vertices get a dense all-pairs table
  /// (the paper precomputes and caches all-pairs shortest paths,
  /// Sec. V-A4); larger networks use the contraction hierarchy (kAuto).
  int32_t max_exact_vertices = 4200;

  /// Number of one-to-all rows retained in LRU mode.
  int32_t lru_rows = 4096;

  /// Byte budget for the LRU row store (0 = uncapped). A row costs
  /// num_vertices * sizeof(Seconds): on the 4900-vertex CI grids the
  /// default 4096 rows fit comfortably, but on metropolitan graphs
  /// (100k+ vertices, ~800 KB/row) the same row count would silently pin
  /// multiple GB. The constructor clamps the retained row count to this
  /// budget (never below one row per shard), so the row knob stays tuned
  /// for small maps without making large maps pay for it.
  int64_t lru_max_bytes = 256ll << 20;

  /// Mutex stripes of the LRU row cache (concurrent queries only contend
  /// when their source vertices hash to the same shard).
  int32_t lru_shards = 16;

  /// Preprocessing knobs for the CH backend.
  ChOptions ch;
};

/// Shortest-path *cost* oracle with O(1) amortized queries, mirroring the
/// paper's assumption that "the shortest path query will take O(1) time"
/// (Sec. IV-C). Three backends — exact dense table, LRU-cached Dijkstra
/// rows, contraction hierarchy — all bit-identical in the costs they
/// return (arc costs are dyadic, see QuantizeTravelCost). Costs only —
/// use DijkstraSearch/AStarSearch when the vertex sequence is needed.
///
/// Thread-safe: the parallel matching engine issues Cost() queries from
/// every pool worker concurrently. Exact mode fills each row exactly once
/// behind striped mutexes and publishes it with an atomic flag; LRU mode
/// delegates to a sharded, mutex-striped LRU cache (ShardedLruCache); CH
/// mode checks stateful ChQuery engines in and out of a mutex-guarded
/// pool (one engine per concurrently querying thread). Counters are
/// atomics / pool-mutex-guarded sums and surface through Metrics.
class DistanceOracle {
 public:
  DistanceOracle(const RoadNetwork& network, const OracleOptions& options = {});

  /// Travel seconds from source to target (kInfiniteCost if unreachable).
  /// Safe to call from any thread.
  Seconds Cost(VertexId source, VertexId target);

  /// Batch query: costs from `source` to every target (aligned with
  /// `targets`; duplicates allowed), serviced with ONE pass through the
  /// backend (one row pass, or one CH bucket build + upward sweep). Counts
  /// as a single oracle query plus one batch_queries tick, however many
  /// targets it serves. Each value is bit-identical to Cost(source,
  /// target) for the same pair. Safe to call from any thread.
  void CostMany(VertexId source, std::span<const VertexId> targets,
                std::vector<Seconds>* out);

  /// Many-to-many batch: row-major |sources| x |targets| cost matrix. In
  /// CH mode the targets' buckets are built once and every source pays a
  /// single upward sweep (the dispatch-batch workload); table/LRU modes
  /// pay one row pass per source. Counts |sources| queries and one
  /// batch_queries tick. Safe to call from any thread.
  void CostManyToMany(std::span<const VertexId> sources,
                      std::span<const VertexId> targets,
                      std::vector<Seconds>* out);

  /// One-to-all row for `source`, exact mode only (rows are never evicted,
  /// so the reference stays valid for the oracle's lifetime). Other modes
  /// must use RowPtr(), whose shared_ptr owns the row.
  const std::vector<Seconds>& Row(VertexId source);

  /// One-to-all row for `source`; works in every mode and is safe against
  /// concurrent eviction. In CH mode each call computes a fresh Dijkstra
  /// row (no row store exists), so batch callers should prefer
  /// CostMany/CostManyToMany.
  std::shared_ptr<const std::vector<Seconds>> RowPtr(VertexId source);

  /// Resolved backend (never kAuto).
  OracleBackend backend() const { return backend_; }
  bool exact_mode() const { return backend_ == OracleBackend::kExact; }

  int64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  /// CostMany/CostManyToMany calls serviced.
  int64_t batch_queries() const {
    return batch_queries_.load(std::memory_order_relaxed);
  }
  /// Row-cache traffic: a hit served a query from a resident row, a miss
  /// paid a one-to-all Dijkstra. (Same-vertex queries short-circuit and
  /// count toward neither; always zero in CH mode.)
  int64_t row_hits() const;
  int64_t row_misses() const;

  /// CH work counters, aggregated over the engine pool (all zero outside
  /// CH mode). Engines checked out mid-flight are not included, so read
  /// these from quiescent moments (dispatch-batch boundaries).
  ChQueryStats ch_query_stats() const;
  /// CH preprocessing counters (zeros outside CH mode).
  const ChBuildStats& ch_build_stats() const { return ch_build_stats_; }

  /// The contraction hierarchy backing this oracle, or nullptr outside CH
  /// mode. Consumers (e.g. LastStopBuckets) may share it read-only; the
  /// hierarchy is immutable after construction and outlives the oracle's
  /// queries.
  const ContractionHierarchy* ch() const { return ch_.get(); }

  /// Resident bytes of the table / cache / CH index incl. pooled query
  /// engines (Tab. IV memory accounting).
  size_t MemoryBytes() const;

 private:
  std::vector<Seconds> ComputeRow(VertexId source) const;
  const std::vector<Seconds>& ExactRow(VertexId source);
  std::unique_ptr<ChQuery> BorrowChEngine();
  void ReturnChEngine(std::unique_ptr<ChQuery> engine);

  const RoadNetwork& network_;
  OracleOptions options_;
  OracleBackend backend_;

  /// Exact mode: dense row-major table, filled lazily one row at a time
  /// (a fully eager fill would still be fine but wastes startup time when
  /// only part of the city is touched). `exact_filled_[v]` publishes row v
  /// with release/acquire ordering; fills serialize per mutex stripe.
  std::vector<std::vector<Seconds>> exact_rows_;
  std::unique_ptr<std::atomic<uint8_t>[]> exact_filled_;
  static constexpr int32_t kFillStripes = 64;
  std::unique_ptr<std::mutex[]> fill_mutex_;
  std::atomic<int64_t> exact_hits_{0};
  std::atomic<int64_t> exact_misses_{0};

  /// LRU mode.
  std::unique_ptr<ShardedLruCache<VertexId, std::vector<Seconds>>> cache_;

  /// CH mode: immutable hierarchy + pool of per-thread query engines.
  /// Returned engines fold their counters into ch_stats_total_ (guarded by
  /// ch_pool_mutex_) and reset, so aggregation is O(1) per return.
  std::unique_ptr<ContractionHierarchy> ch_;
  ChBuildStats ch_build_stats_;
  mutable std::mutex ch_pool_mutex_;
  std::vector<std::unique_ptr<ChQuery>> ch_pool_;
  ChQueryStats ch_stats_total_;
  size_t ch_engines_created_ = 0;
  size_t ch_engine_bytes_max_ = 0;

  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> batch_queries_{0};
};

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_DISTANCE_ORACLE_H_
