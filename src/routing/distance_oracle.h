#ifndef MTSHARE_ROUTING_DISTANCE_ORACLE_H_
#define MTSHARE_ROUTING_DISTANCE_ORACLE_H_

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/road_network.h"
#include "routing/dijkstra.h"

namespace mtshare {

struct OracleOptions {
  /// Networks up to this many vertices get a dense all-pairs table
  /// (the paper precomputes and caches all-pairs shortest paths,
  /// Sec. V-A4); larger networks fall back to an LRU row cache.
  int32_t max_exact_vertices = 4200;

  /// Number of one-to-all rows retained in LRU mode.
  int32_t lru_rows = 4096;
};

/// Shortest-path *cost* oracle with O(1) amortized queries, mirroring the
/// paper's assumption that "the shortest path query will take O(1) time"
/// (Sec. IV-C). Exact dense table for small graphs; LRU-cached Dijkstra
/// rows for large ones. Costs only — use DijkstraSearch/AStarSearch when
/// the vertex sequence is needed.
///
/// Not thread-safe; the simulation engine is single-threaded by design.
class DistanceOracle {
 public:
  DistanceOracle(const RoadNetwork& network, const OracleOptions& options = {});

  /// Travel seconds from source to target (kInfiniteCost if unreachable).
  Seconds Cost(VertexId source, VertexId target);

  /// One-to-all row for `source`. Valid until the row is evicted; copy if
  /// retention is needed.
  const std::vector<Seconds>& Row(VertexId source);

  bool exact_mode() const { return exact_mode_; }
  int64_t queries() const { return queries_; }
  int64_t row_misses() const { return row_misses_; }

  /// Resident bytes of the table / cache (Tab. IV memory accounting).
  size_t MemoryBytes() const;

 private:
  const std::vector<Seconds>& FetchRow(VertexId source);

  const RoadNetwork& network_;
  OracleOptions options_;
  bool exact_mode_;
  DijkstraSearch dijkstra_;

  /// Exact mode: dense row-major table, filled lazily one row at a time
  /// (a fully eager fill would still be fine but wastes startup time when
  /// only part of the city is touched).
  std::vector<std::vector<Seconds>> exact_rows_;

  /// LRU mode.
  std::list<VertexId> lru_order_;  // front = most recent
  struct CacheEntry {
    std::vector<Seconds> row;
    std::list<VertexId>::iterator order_it;
  };
  std::unordered_map<VertexId, CacheEntry> cache_;

  int64_t queries_ = 0;
  int64_t row_misses_ = 0;
};

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_DISTANCE_ORACLE_H_
