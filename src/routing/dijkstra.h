#ifndef MTSHARE_ROUTING_DIJKSTRA_H_
#define MTSHARE_ROUTING_DIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"
#include "routing/path.h"

namespace mtshare {

/// Constraints applied to a single shortest-path query.
struct SearchOptions {
  /// When set (size == num_vertices), only vertices with a nonzero entry
  /// may be expanded. This realizes the paper's "build subgraph from the
  /// retained partitions" (Algorithms 3/4) without materializing a graph.
  const std::vector<uint8_t>* allowed_vertices = nullptr;

  /// When set, the optimization objective becomes the sum of these
  /// per-vertex weights over visited vertices (plus epsilon-scaled travel
  /// time as a tie-break), while true travel seconds are still accumulated
  /// for feasibility. Used by probabilistic routing step 3 (weight 1/psi_c).
  const std::vector<double>* vertex_weights = nullptr;

  /// Give up when the optimization objective exceeds this bound.
  double max_objective = kInfiniteCost;

  /// Prune relaxations whose accumulated *travel seconds* exceed this bound
  /// (used with vertex_weights to approximate budget-constrained
  /// max-probability routing; a heuristic, not an exact bi-criteria search).
  Seconds max_travel = kInfiniteCost;
};

/// Reusable Dijkstra engine. Buffers are epoch-stamped, so repeated queries
/// do not pay O(V) reinitialization; the matching pipeline issues tens of
/// queries per request (candidate x schedule instance x leg).
///
/// Not thread-safe; create one per thread.
class DijkstraSearch {
 public:
  explicit DijkstraSearch(const RoadNetwork& network);

  /// Travel time of the shortest s->t path (kInfiniteCost if unreachable).
  Seconds Cost(VertexId source, VertexId target,
               const SearchOptions& options = {});

  /// Full shortest path with vertices.
  Path FindPath(VertexId source, VertexId target,
                const SearchOptions& options = {});

  /// One-to-all travel times (no mask/weights). O(E log V).
  std::vector<Seconds> CostsFrom(VertexId source);

  /// One-to-many: stops once all targets are settled. Returns costs aligned
  /// with `targets` (kInfiniteCost for unreachable).
  std::vector<Seconds> CostsToTargets(VertexId source,
                                      const std::vector<VertexId>& targets);

  /// Number of vertices settled by the most recent query (test/bench hook
  /// showing how much partition filtering prunes the search space).
  int64_t last_settled_count() const { return last_settled_; }

 private:
  struct QueueEntry {
    double objective;
    Seconds travel;
    VertexId vertex;
    bool operator>(const QueueEntry& other) const {
      return objective > other.objective;
    }
  };

  void Prepare();
  /// Runs the search until `target` is settled (or queue exhaustion when
  /// target == kInvalidVertex). Returns true if target was settled.
  bool Run(VertexId source, VertexId target, const SearchOptions& options);

  const RoadNetwork& network_;
  std::vector<double> objective_;
  std::vector<Seconds> travel_;
  std::vector<VertexId> parent_;
  std::vector<uint32_t> epoch_;
  uint32_t current_epoch_ = 0;
  int64_t last_settled_ = 0;
};

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_DIJKSTRA_H_
