#include "routing/last_stop_buckets.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"

namespace mtshare {

LastStopBuckets::LastStopBuckets(const ContractionHierarchy& ch,
                                 int32_t num_taxis)
    : ch_(ch) {
  MTSHARE_CHECK(num_taxis >= 0);
  const int32_t n = ch_.num_vertices();
  buckets_.resize(n);
  handles_.resize(num_taxis);
  anchor_.assign(num_taxis, kInvalidVertex);
  dirty_.assign(num_taxis, 1);  // everything deposits on the first flush
  dist_f_.assign(n, 0.0);
  epoch_f_.assign(n, 0);
  swept_dist_.assign(num_taxis, 0.0);
  swept_epoch_.assign(num_taxis, 0);
}

void LastStopBuckets::BumpEpoch() {
  ++epoch_id_;
  if (epoch_id_ == 0) {  // wrapped: hard reset so stale stamps cannot match
    std::fill(epoch_f_.begin(), epoch_f_.end(), 0);
    epoch_id_ = 1;
  }
}

void LastStopBuckets::RemoveDeposits(TaxiId id) {
  for (const Handle& h : handles_[id]) {
    std::vector<BucketEntry>& bucket = buckets_[h.vertex];
    const uint32_t pos = h.pos;
    BucketEntry moved = bucket.back();
    bucket[pos] = moved;
    bucket.pop_back();
    if (pos < bucket.size()) {
      // A different taxi's entry was swapped into `pos` (one entry per
      // taxi per vertex, so it cannot be another handle of `id`); fix its
      // owner's back-reference.
      handles_[moved.taxi][moved.slot].pos = pos;
    }
  }
  live_entries_ -= static_cast<int64_t>(handles_[id].size());
  handles_[id].clear();
}

void LastStopBuckets::Deposit(TaxiId id, VertexId anchor) {
  // Forward upward search from the anchor, run to exhaustion — the same
  // search ChQuery::Cost runs from its source, so every settled vertex v
  // carries the exact minimal upward-path cost anchor -> v.
  BumpEpoch();
  while (!queue_.empty()) queue_.pop();
  dist_f_[anchor] = 0.0;
  epoch_f_[anchor] = epoch_id_;
  queue_.push({0.0, anchor});
  std::vector<Handle>& handles = handles_[id];
  while (!queue_.empty()) {
    auto [cost, v] = queue_.top();
    queue_.pop();
    if (cost > dist_f_[v]) continue;
    ++stats_.deposit_settled;
    buckets_[v].push_back(
        {id, cost, static_cast<uint32_t>(handles.size())});
    handles.push_back({v, static_cast<uint32_t>(buckets_[v].size() - 1)});
    for (const ContractionHierarchy::SearchArc& arc : ch_.UpArcs(v)) {
      Seconds cand = cost + arc.cost;
      if (epoch_f_[arc.head] != epoch_id_ || cand < dist_f_[arc.head]) {
        epoch_f_[arc.head] = epoch_id_;
        dist_f_[arc.head] = cand;
        queue_.push({cand, arc.head});
      }
    }
  }
  live_entries_ += static_cast<int64_t>(handles.size());
  anchor_[id] = anchor;
}

void LastStopBuckets::FlushDirty(
    const std::function<VertexId(TaxiId)>& anchor_of) {
  WallTimer timer;
  bool any = false;
  for (TaxiId id = 0; id < num_taxis(); ++id) {
    if (!dirty_[id]) continue;
    any = true;
    dirty_[id] = 0;
    VertexId anchor = anchor_of(id);
    if (anchor == anchor_[id]) continue;  // moved and returned: still valid
    RemoveDeposits(id);
    Deposit(id, anchor);
    ++stats_.updates;
  }
  if (any) stats_.maintenance_ms += timer.ElapsedMillis();
}

void LastStopBuckets::Sweep(VertexId origin, Seconds budget) {
  ++stats_.sweeps;
  ++sweep_epoch_id_;
  if (sweep_epoch_id_ == 0) {
    std::fill(swept_epoch_.begin(), swept_epoch_.end(), 0);
    sweep_epoch_id_ = 1;
  }
  found_.clear();
  const Seconds cutoff = budget + kBudgetSlack;
  if (!(cutoff >= 0.0)) return;  // negative budget: nothing is reachable

  // Backward upward search from the origin over DownArcs: a settled vertex
  // v reaches the origin along a down-path of exact cost dist_f_[v], so
  // deposit.dist + dist_f_[v] is an exact up-down path anchor -> origin.
  // Dijkstra settles in nondecreasing order, so breaking at the cutoff
  // still settles every vertex with final distance <= cutoff — including
  // the meeting vertex realizing the true distance of every taxi within
  // budget.
  BumpEpoch();
  while (!queue_.empty()) queue_.pop();
  dist_f_[origin] = 0.0;
  epoch_f_[origin] = epoch_id_;
  queue_.push({0.0, origin});
  while (!queue_.empty()) {
    auto [cost, v] = queue_.top();
    queue_.pop();
    if (cost > cutoff) break;
    if (cost > dist_f_[v]) continue;
    ++stats_.sweep_settled;
    for (const BucketEntry& entry : buckets_[v]) {
      Seconds cand = entry.dist + cost;
      if (cand > cutoff) continue;
      if (swept_epoch_[entry.taxi] != sweep_epoch_id_) {
        swept_epoch_[entry.taxi] = sweep_epoch_id_;
        swept_dist_[entry.taxi] = cand;
        found_.push_back(entry.taxi);
      } else if (cand < swept_dist_[entry.taxi]) {
        swept_dist_[entry.taxi] = cand;
      }
    }
    for (const ContractionHierarchy::SearchArc& arc : ch_.DownArcs(v)) {
      Seconds cand = cost + arc.cost;
      if (cand > cutoff) continue;
      if (epoch_f_[arc.head] != epoch_id_ || cand < dist_f_[arc.head]) {
        epoch_f_[arc.head] = epoch_id_;
        dist_f_[arc.head] = cand;
        queue_.push({cand, arc.head});
      }
    }
  }
  stats_.found += static_cast<int64_t>(found_.size());
}

size_t LastStopBuckets::MemoryBytes() const {
  size_t bytes = buckets_.size() * sizeof(std::vector<BucketEntry>) +
                 handles_.size() * sizeof(std::vector<Handle>);
  for (const auto& bucket : buckets_) {
    bytes += bucket.capacity() * sizeof(BucketEntry);
  }
  for (const auto& handles : handles_) {
    bytes += handles.capacity() * sizeof(Handle);
  }
  bytes += (anchor_.size() + found_.capacity()) * sizeof(VertexId);
  bytes += dirty_.size() * sizeof(uint8_t);
  bytes += (dist_f_.size() + swept_dist_.size()) * sizeof(Seconds);
  bytes += (epoch_f_.size() + swept_epoch_.size()) * sizeof(uint32_t);
  return bytes;
}

}  // namespace mtshare
