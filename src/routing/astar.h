#ifndef MTSHARE_ROUTING_ASTAR_H_
#define MTSHARE_ROUTING_ASTAR_H_

#include <vector>

#include "graph/road_network.h"
#include "routing/path.h"

namespace mtshare {

/// Point-to-point A* with the Euclidean travel-time lower bound as the
/// heuristic (admissible by RoadNetwork::EuclideanLowerBound). Roughly
/// 2-6x fewer settled vertices than plain Dijkstra on city grids; used by
/// latency-sensitive callers that need full paths on the unrestricted graph.
///
/// Not thread-safe; create one per thread.
class AStarSearch {
 public:
  explicit AStarSearch(const RoadNetwork& network);

  /// Travel seconds of the shortest path, kInfiniteCost if unreachable.
  Seconds Cost(VertexId source, VertexId target);

  Path FindPath(VertexId source, VertexId target);

  int64_t last_settled_count() const { return last_settled_; }

 private:
  bool Run(VertexId source, VertexId target);

  const RoadNetwork& network_;
  std::vector<Seconds> dist_;
  std::vector<VertexId> parent_;
  std::vector<uint32_t> epoch_;
  uint32_t current_epoch_ = 0;
  int64_t last_settled_ = 0;
};

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_ASTAR_H_
