#include "routing/contraction_hierarchy.h"

#include <algorithm>
#include <future>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace mtshare {
namespace {

/// One directed arc of the dynamic core graph (the not-yet-contracted
/// subgraph plus the shortcuts added so far). Parallel arcs are collapsed
/// to their minimum cost — Dijkstra relaxes both and keeps the minimum, so
/// distances are unchanged.
struct CoreArc {
  VertexId head;
  Seconds cost;
};

/// Limited forward Dijkstra over the core graph, used to find witness
/// paths that make a candidate shortcut redundant. Epoch-stamped buffers:
/// one instance serves many searches without O(V) resets.
class WitnessSearch {
 public:
  explicit WitnessSearch(int32_t n)
      : dist_(n, 0.0), epoch_(n, 0), settled_(n, 0) {}

  /// Runs from `source`, skipping `excluded`, until the queue minimum
  /// exceeds `bound` or `settle_limit` vertices were settled. Afterwards
  /// Reached(w) / DistanceTo(w) describe every settled vertex.
  void Run(const std::vector<std::vector<CoreArc>>& out, VertexId source,
           VertexId excluded, Seconds bound, int32_t settle_limit) {
    ++epoch_id_;
    if (epoch_id_ == 0) {  // wrapped: hard reset
      std::fill(epoch_.begin(), epoch_.end(), 0);
      std::fill(settled_.begin(), settled_.end(), 0);
      epoch_id_ = 1;
    }
    while (!queue_.empty()) queue_.pop();
    dist_[source] = 0.0;
    epoch_[source] = epoch_id_;
    queue_.push({0.0, source});
    int32_t settled_count = 0;
    while (!queue_.empty() && settled_count < settle_limit) {
      auto [cost, v] = queue_.top();
      if (cost > bound) break;
      queue_.pop();
      if (settled_[v] == epoch_id_ || cost > dist_[v]) continue;
      settled_[v] = epoch_id_;
      ++settled_count;
      for (const CoreArc& arc : out[v]) {
        if (arc.head == excluded) continue;
        Seconds cand = cost + arc.cost;
        if (cand > bound) continue;
        if (epoch_[arc.head] != epoch_id_ || cand < dist_[arc.head]) {
          epoch_[arc.head] = epoch_id_;
          dist_[arc.head] = cand;
          queue_.push({cand, arc.head});
        }
      }
    }
  }

  bool Reached(VertexId v) const { return settled_[v] == epoch_id_; }
  Seconds DistanceTo(VertexId v) const { return dist_[v]; }

 private:
  struct Entry {
    Seconds cost;
    VertexId vertex;
    bool operator>(const Entry& other) const { return cost > other.cost; }
  };

  std::vector<Seconds> dist_;
  std::vector<uint32_t> epoch_;
  std::vector<uint32_t> settled_;
  uint32_t epoch_id_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
};

struct Shortcut {
  VertexId tail;
  VertexId head;
  Seconds cost;
};

/// Inserts (or relaxes) arc head/cost in an adjacency list.
void UpsertArc(std::vector<CoreArc>& arcs, VertexId head, Seconds cost) {
  for (CoreArc& arc : arcs) {
    if (arc.head == head) {
      arc.cost = std::min(arc.cost, cost);
      return;
    }
  }
  arcs.push_back({head, cost});
}

void EraseArc(std::vector<CoreArc>& arcs, VertexId head) {
  for (size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i].head == head) {
      arcs[i] = arcs.back();
      arcs.pop_back();
      return;
    }
  }
}

/// The sequential contraction state; Build() drives it.
class Contractor {
 public:
  Contractor(const RoadNetwork& network, const ChOptions& options)
      : options_(options),
        n_(network.num_vertices()),
        out_(n_),
        in_(n_),
        level_(n_, 0),
        deleted_neighbors_(n_, 0) {
    for (VertexId v = 0; v < n_; ++v) {
      for (const Arc& arc : network.OutArcs(v)) {
        if (arc.head == v) continue;  // self loops never shorten paths
        UpsertArc(out_[v], arc.head, arc.cost);
        UpsertArc(in_[arc.head], v, arc.cost);
      }
    }
  }

  /// Shortcuts required to contract v right now. Returns the count and, if
  /// `collect` is set, the shortcut list (count only for priority probes —
  /// the probe is identical code, so simulated == applied).
  int32_t SimulateContraction(VertexId v, WitnessSearch& witness,
                              std::vector<Shortcut>* collect) const {
    int32_t shortcuts = 0;
    for (const CoreArc& in_arc : in_[v]) {
      VertexId u = in_arc.head;
      Seconds bound = 0.0;
      bool any_target = false;
      for (const CoreArc& out_arc : out_[v]) {
        if (out_arc.head == u) continue;
        bound = std::max(bound, in_arc.cost + out_arc.cost);
        any_target = true;
      }
      if (!any_target) continue;
      witness.Run(out_, u, v, bound, options_.witness_settle_limit);
      for (const CoreArc& out_arc : out_[v]) {
        VertexId w = out_arc.head;
        if (w == u) continue;
        Seconds via_v = in_arc.cost + out_arc.cost;
        // Conservative: only a found witness path suppresses the shortcut
        // (a truncated search can add redundant shortcuts, never lose a
        // distance).
        if (witness.Reached(w) && witness.DistanceTo(w) <= via_v) continue;
        ++shortcuts;
        if (collect != nullptr) collect->push_back({u, w, via_v});
      }
    }
    return shortcuts;
  }

  /// Edge difference + contracted-neighbor + level heuristic. Lower
  /// contracts earlier; ties broken by vertex id in the queue.
  int64_t Priority(VertexId v, WitnessSearch& witness) const {
    int32_t shortcuts = SimulateContraction(v, witness, nullptr);
    int32_t removed =
        static_cast<int32_t>(in_[v].size() + out_[v].size());
    return 2 * static_cast<int64_t>(shortcuts - removed) +
           deleted_neighbors_[v] + level_[v];
  }

  /// Contracts every vertex; fills rank/up/down lists.
  void Run(std::vector<int32_t>& rank,
           std::vector<std::vector<CoreArc>>& up,
           std::vector<std::vector<CoreArc>>& down, int64_t& shortcut_count) {
    // Initial priorities in parallel: each probe only reads the immutable
    // initial core graph, so the pass is embarrassingly parallel and the
    // values (hence the whole hierarchy) are thread-count independent.
    std::vector<int64_t> priority(n_);
    const int32_t threads = ThreadPool::DefaultThreads(options_.threads);
    if (threads > 1 && n_ > 256) {
      ThreadPool pool(threads);
      const int32_t chunks = threads;
      std::vector<std::future<void>> futures;
      futures.reserve(chunks);
      for (int32_t c = 0; c < chunks; ++c) {
        VertexId begin = static_cast<VertexId>(int64_t(n_) * c / chunks);
        VertexId end = static_cast<VertexId>(int64_t(n_) * (c + 1) / chunks);
        futures.push_back(pool.Submit([this, begin, end, &priority] {
          WitnessSearch witness(n_);
          for (VertexId v = begin; v < end; ++v) {
            priority[v] = Priority(v, witness);
          }
        }));
      }
      for (auto& f : futures) f.get();
    } else {
      WitnessSearch witness(n_);
      for (VertexId v = 0; v < n_; ++v) priority[v] = Priority(v, witness);
    }

    using QueueEntry = std::pair<int64_t, VertexId>;  // (priority, vertex)
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue;
    for (VertexId v = 0; v < n_; ++v) queue.push({priority[v], v});

    WitnessSearch witness(n_);
    std::vector<Shortcut> shortcuts;
    std::vector<uint8_t> contracted(n_, 0);
    int32_t next_rank = 0;
    while (!queue.empty()) {
      auto [prio, v] = queue.top();
      queue.pop();
      if (contracted[v]) continue;
      // Lazy update: the popped key may be stale (a neighbor contracted
      // since it was pushed). Recompute; if the vertex no longer wins
      // against the next key, push it back and try again.
      shortcuts.clear();
      int32_t needed = SimulateContraction(v, witness, &shortcuts);
      int32_t removed = static_cast<int32_t>(in_[v].size() + out_[v].size());
      int64_t fresh = 2 * static_cast<int64_t>(needed - removed) +
                      deleted_neighbors_[v] + level_[v];
      if (!queue.empty() &&
          std::make_pair(fresh, v) > std::make_pair(queue.top().first,
                                                    queue.top().second)) {
        queue.push({fresh, v});
        continue;
      }

      // Contract v: its remaining core neighbors all outrank it, so its
      // current adjacency *is* its upward/downward search arc set.
      rank[v] = next_rank++;
      contracted[v] = 1;
      up[v] = out_[v];
      down[v] = in_[v];
      for (const CoreArc& arc : in_[v]) {
        EraseArc(out_[arc.head], v);
        deleted_neighbors_[arc.head] += 1;
        level_[arc.head] = std::max(level_[arc.head], level_[v] + 1);
      }
      for (const CoreArc& arc : out_[v]) {
        EraseArc(in_[arc.head], v);
        deleted_neighbors_[arc.head] += 1;
        level_[arc.head] = std::max(level_[arc.head], level_[v] + 1);
      }
      for (const Shortcut& s : shortcuts) {
        UpsertArc(out_[s.tail], s.head, s.cost);
        UpsertArc(in_[s.head], s.tail, s.cost);
      }
      shortcut_count += shortcuts.size();
    }
  }

 private:
  const ChOptions options_;
  const int32_t n_;
  std::vector<std::vector<CoreArc>> out_;
  std::vector<std::vector<CoreArc>> in_;
  std::vector<int32_t> level_;
  std::vector<int32_t> deleted_neighbors_;
};

}  // namespace

ContractionHierarchy ContractionHierarchy::Build(const RoadNetwork& network,
                                                 const ChOptions& options) {
  MTSHARE_CHECK(options.witness_settle_limit > 0);
  WallTimer timer;
  const int32_t n = network.num_vertices();
  ContractionHierarchy ch;
  ch.rank_.assign(n, 0);

  std::vector<std::vector<CoreArc>> up(n);
  std::vector<std::vector<CoreArc>> down(n);
  {
    Contractor contractor(network, options);
    contractor.Run(ch.rank_, up, down, ch.stats_.shortcuts_added);
  }

  auto fill_csr = [n](const std::vector<std::vector<CoreArc>>& lists,
                      std::vector<int32_t>& offsets,
                      std::vector<SearchArc>& arcs) {
    offsets.assign(n + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      offsets[v + 1] = offsets[v] + static_cast<int32_t>(lists[v].size());
    }
    arcs.resize(offsets[n]);
    for (VertexId v = 0; v < n; ++v) {
      int32_t at = offsets[v];
      for (const CoreArc& arc : lists[v]) {
        arcs[at++] = SearchArc{arc.head, arc.cost};
      }
    }
  };
  fill_csr(up, ch.up_offsets_, ch.up_arcs_);
  fill_csr(down, ch.down_offsets_, ch.down_arcs_);
  ch.stats_.preprocessing_ms = timer.ElapsedMillis();
  return ch;
}

size_t ContractionHierarchy::MemoryBytes() const {
  return rank_.size() * sizeof(int32_t) +
         (up_offsets_.size() + down_offsets_.size()) * sizeof(int32_t) +
         (up_arcs_.size() + down_arcs_.size()) * sizeof(SearchArc);
}

}  // namespace mtshare
