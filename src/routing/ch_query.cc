#include "routing/ch_query.h"

#include <algorithm>

#include "common/logging.h"

namespace mtshare {

ChQuery::ChQuery(const ContractionHierarchy& ch) : ch_(ch) {
  const int32_t n = ch_.num_vertices();
  dist_f_.assign(n, 0.0);
  epoch_f_.assign(n, 0);
  dist_b_.assign(n, 0.0);
  epoch_b_.assign(n, 0);
  buckets_.resize(n);
  bucket_epoch_.assign(n, 0);
  target_slot_.assign(n, 0);
  target_slot_epoch_.assign(n, 0);
}

void ChQuery::BumpEpoch() {
  ++epoch_id_;
  if (epoch_id_ == 0) {  // wrapped: hard reset so stale stamps cannot match
    std::fill(epoch_f_.begin(), epoch_f_.end(), 0);
    std::fill(epoch_b_.begin(), epoch_b_.end(), 0);
    epoch_id_ = 1;
  }
}

Seconds ChQuery::Cost(VertexId source, VertexId target) {
  ++stats_.point_queries;
  if (source == target) return 0.0;

  // Forward upward search from the source, run to exhaustion. Upward search
  // spaces are tiny (hundreds of vertices on road-like graphs), and final
  // distances let the backward pass prune against an exact best-so-far.
  BumpEpoch();
  while (!queue_f_.empty()) queue_f_.pop();
  dist_f_[source] = 0.0;
  epoch_f_[source] = epoch_id_;
  queue_f_.push({0.0, source});
  while (!queue_f_.empty()) {
    auto [cost, v] = queue_f_.top();
    queue_f_.pop();
    if (cost > dist_f_[v]) continue;
    ++stats_.upward_settled;
    for (const ContractionHierarchy::SearchArc& arc : ch_.UpArcs(v)) {
      Seconds cand = cost + arc.cost;
      if (epoch_f_[arc.head] != epoch_id_ || cand < dist_f_[arc.head]) {
        epoch_f_[arc.head] = epoch_id_;
        dist_f_[arc.head] = cand;
        queue_f_.push({cand, arc.head});
      }
    }
  }

  // Backward upward search from the target over the down-graph, pruned once
  // it can no longer beat the best meeting point.
  Seconds best = kInfiniteCost;
  while (!queue_b_.empty()) queue_b_.pop();
  dist_b_[target] = 0.0;
  epoch_b_[target] = epoch_id_;
  queue_b_.push({0.0, target});
  while (!queue_b_.empty()) {
    auto [cost, v] = queue_b_.top();
    queue_b_.pop();
    if (cost >= best) break;
    if (cost > dist_b_[v]) continue;
    ++stats_.upward_settled;
    if (epoch_f_[v] == epoch_id_) {
      best = std::min(best, dist_f_[v] + cost);
    }
    for (const ContractionHierarchy::SearchArc& arc : ch_.DownArcs(v)) {
      Seconds cand = cost + arc.cost;
      if (epoch_b_[arc.head] != epoch_id_ || cand < dist_b_[arc.head]) {
        epoch_b_[arc.head] = epoch_id_;
        dist_b_[arc.head] = cand;
        queue_b_.push({cand, arc.head});
      }
    }
  }
  return best;
}

void ChQuery::BuildBuckets(std::span<const VertexId> targets) {
  ++bucket_epoch_id_;
  if (bucket_epoch_id_ == 0) {
    std::fill(bucket_epoch_.begin(), bucket_epoch_.end(), 0);
    std::fill(target_slot_epoch_.begin(), target_slot_epoch_.end(), 0);
    bucket_epoch_id_ = 1;
  }
  bucket_targets_.assign(targets.begin(), targets.end());
  duplicate_targets_.clear();

  for (int32_t i = 0; i < static_cast<int32_t>(bucket_targets_.size()); ++i) {
    VertexId t = bucket_targets_[i];
    if (target_slot_epoch_[t] == bucket_epoch_id_) {
      // Repeated target: reuse the first occurrence's backward search and
      // copy its answer per source sweep.
      duplicate_targets_.push_back({target_slot_[t], i});
      continue;
    }
    target_slot_epoch_[t] = bucket_epoch_id_;
    target_slot_[t] = i;

    // Backward upward search from t: every settled vertex v can reach t
    // along a down-path of cost dist_b_[v]; deposit that into v's bucket.
    BumpEpoch();
    while (!queue_b_.empty()) queue_b_.pop();
    dist_b_[t] = 0.0;
    epoch_b_[t] = epoch_id_;
    queue_b_.push({0.0, t});
    while (!queue_b_.empty()) {
      auto [cost, v] = queue_b_.top();
      queue_b_.pop();
      if (cost > dist_b_[v]) continue;
      ++stats_.upward_settled;
      if (bucket_epoch_[v] != bucket_epoch_id_) {
        bucket_epoch_[v] = bucket_epoch_id_;
        buckets_[v].clear();
      }
      buckets_[v].push_back({i, cost});
      ++stats_.bucket_entries;
      for (const ContractionHierarchy::SearchArc& arc : ch_.DownArcs(v)) {
        Seconds cand = cost + arc.cost;
        if (epoch_b_[arc.head] != epoch_id_ || cand < dist_b_[arc.head]) {
          epoch_b_[arc.head] = epoch_id_;
          dist_b_[arc.head] = cand;
          queue_b_.push({cand, arc.head});
        }
      }
    }
  }
}

void ChQuery::SourceToBuckets(VertexId source, std::vector<Seconds>* out) {
  out->assign(bucket_targets_.size(), kInfiniteCost);

  BumpEpoch();
  while (!queue_f_.empty()) queue_f_.pop();
  dist_f_[source] = 0.0;
  epoch_f_[source] = epoch_id_;
  queue_f_.push({0.0, source});
  while (!queue_f_.empty()) {
    auto [cost, v] = queue_f_.top();
    queue_f_.pop();
    if (cost > dist_f_[v]) continue;
    ++stats_.upward_settled;
    if (bucket_epoch_[v] == bucket_epoch_id_) {
      for (const BucketEntry& entry : buckets_[v]) {
        // Exact dyadic costs make this sum exact, so the minimum over
        // meeting vertices is the true shortest distance bit-for-bit.
        Seconds cand = cost + entry.cost;
        if (cand < (*out)[entry.target_index]) {
          (*out)[entry.target_index] = cand;
        }
      }
    }
    for (const ContractionHierarchy::SearchArc& arc : ch_.UpArcs(v)) {
      Seconds cand = cost + arc.cost;
      if (epoch_f_[arc.head] != epoch_id_ || cand < dist_f_[arc.head]) {
        epoch_f_[arc.head] = epoch_id_;
        dist_f_[arc.head] = cand;
        queue_f_.push({cand, arc.head});
      }
    }
  }

  for (const auto& [from, to] : duplicate_targets_) {
    (*out)[to] = (*out)[from];
  }
}

void ChQuery::CostMany(VertexId source, std::span<const VertexId> targets,
                       std::vector<Seconds>* out) {
  ++stats_.bucket_queries;
  BuildBuckets(targets);
  SourceToBuckets(source, out);
}

void ChQuery::CostManyToMany(std::span<const VertexId> sources,
                             std::span<const VertexId> targets,
                             std::vector<Seconds>* out) {
  ++stats_.bucket_queries;
  BuildBuckets(targets);
  out->assign(sources.size() * targets.size(), kInfiniteCost);
  for (size_t s = 0; s < sources.size(); ++s) {
    SourceToBuckets(sources[s], &row_buf_);
    std::copy(row_buf_.begin(), row_buf_.end(),
              out->begin() + s * targets.size());
  }
}

size_t ChQuery::MemoryBytes() const {
  size_t bucket_bytes = 0;
  for (const std::vector<BucketEntry>& bucket : buckets_) {
    bucket_bytes += bucket.capacity() * sizeof(BucketEntry);
  }
  return bucket_bytes + buckets_.size() * sizeof(std::vector<BucketEntry>) +
         (dist_f_.size() + dist_b_.size() + row_buf_.capacity()) *
             sizeof(Seconds) +
         (epoch_f_.size() + epoch_b_.size() + bucket_epoch_.size() +
          target_slot_.size() + target_slot_epoch_.size()) *
             sizeof(uint32_t) +
         bucket_targets_.capacity() * sizeof(VertexId) +
         duplicate_targets_.capacity() * sizeof(std::pair<int32_t, int32_t>);
}

}  // namespace mtshare
