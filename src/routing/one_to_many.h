#ifndef MTSHARE_ROUTING_ONE_TO_MANY_H_
#define MTSHARE_ROUTING_ONE_TO_MANY_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/road_network.h"
#include "routing/distance_oracle.h"

namespace mtshare {

/// Counters of the batched insertion-routing layer, harvested into Metrics
/// and the run report ("routing" section).
struct BatchRoutingStats {
  /// Whether the dispatcher ran with batched routing armed.
  bool batched = false;
  /// CostMany row passes issued while priming insertion batches.
  int64_t batch_queries = 0;
  /// Vertices settled by truncated one-to-many sweeps (LRU-mode oracles
  /// only; exact-mode priming gathers from resident rows instead).
  int64_t settled_vertices = 0;
  /// Candidate taxis skipped because the landmark lower bound proved the
  /// pickup unreachable before its deadline.
  int64_t lb_pruned = 0;
  /// Leg costs requested during insertion that were not primed (served by
  /// a per-pair oracle query; expected 0 — nonzero means the priming
  /// coverage analysis in InsertionCostBatch is stale).
  int64_t fallback_queries = 0;

  // --- contraction-hierarchy backend (all zero when it is not active) ---
  /// Whether the oracle ran on the CH backend.
  bool ch_active = false;
  /// Shortcuts the preprocessing added on top of the road network.
  int64_t ch_shortcuts = 0;
  /// Wall-clock milliseconds of CH preprocessing (paid once at system
  /// construction, not per run).
  double ch_preprocessing_ms = 0.0;
  /// Bidirectional point queries answered by CH engines.
  int64_t ch_point_queries = 0;
  /// Bucket-based one-to-many / many-to-many passes.
  int64_t ch_bucket_queries = 0;
  /// Vertices settled by CH upward searches — compare against
  /// settled_vertices of the truncated-Dijkstra path.
  int64_t ch_upward_settled = 0;
  /// Entries deposited into CH buckets while priming batches.
  int64_t ch_bucket_entries = 0;

  // --- candidate-search path (DESIGN.md §14; zero on the index path) ---
  /// Whether the dispatcher ran with the ch_buckets candidate path.
  bool bucket_search = false;
  /// Taxis returned by last-stop bucket sweeps (pre exact-deadline
  /// re-check).
  int64_t bucket_candidates = 0;
  /// Wall-clock milliseconds spent keeping last-stop buckets in sync with
  /// schedule commits/advances (FlushDirty rebuild time).
  double bucket_maintenance_ms = 0.0;
  /// Insertion slots examined by the detour-ellipse screen.
  int64_t slots_screened = 0;
  /// Insertion slots the screen proved infeasible before exact routing.
  int64_t ellipse_pruned = 0;
};

/// Truncated Dijkstra: one forward search from `source` that stops as soon
/// as every target is settled. Values are bit-identical to the
/// corresponding entries of DijkstraSearch::CostsFrom(source) — identical
/// relaxation arithmetic, and a settled vertex's distance is final
/// regardless of settle order (strictly positive arc costs), so stopping
/// early cannot change any reported value.
///
/// Not thread-safe; create one per thread.
class OneToManySearch {
 public:
  explicit OneToManySearch(const RoadNetwork& network);

  /// Costs from `source` to each target, aligned with `targets`
  /// (kInfiniteCost for unreachable; duplicates allowed).
  void CostsTo(VertexId source, std::span<const VertexId> targets,
               std::vector<Seconds>* out);

  /// Vertices settled by the most recent CostsTo.
  int64_t last_settled_count() const { return last_settled_; }

 private:
  struct QueueEntry {
    Seconds cost;
    VertexId vertex;
    bool operator>(const QueueEntry& other) const {
      return cost > other.cost;
    }
  };

  const RoadNetwork& network_;
  std::vector<Seconds> dist_;
  std::vector<uint32_t> epoch_;     // dist_[v] valid iff epoch_[v] == current
  std::vector<uint32_t> settled_;   // settled iff settled_[v] == current
  std::vector<uint32_t> target_;    // unsettled target iff == current
  uint32_t current_epoch_ = 0;
  int64_t last_settled_ = 0;
};

/// Primes every leg cost FindBestInsertionDp (and its FindBestInsertion
/// fallback) can request for a request's insertion into candidate
/// schedules, then serves them from a lock-free table. The legs of any
/// insertion walk are pairs over {taxi location, schedule stops, request
/// origin, request destination} where base-schedule adjacency is preserved
/// (insertion never removes events), so the closure is: origin/destination
/// -> every stop, every stop -> origin/destination, every base-adjacent
/// stop pair, and origin -> destination.
///
/// All costs are gathered via forward row passes (DistanceOracle::CostMany)
/// or forward truncated sweeps (OneToManySearch) — the same direction the
/// oracle computes rows in — so every table entry is bit-identical to
/// DistanceOracle::Cost for the same pair, and batched insertion evaluation
/// produces bit-identical Metrics to the per-pair path.
///
/// Usage: Begin(origin, dest) once per dispatch; AddCandidate + Prime for
/// each candidate (or all candidates, then one Prime); Cost() from any
/// thread afterwards. Unprimed pairs fall back to the (thread-safe) oracle
/// and are counted in stats().fallback_queries.
///
/// The table is a dense matrix over per-dispatch compact vertex ids
/// (epoch-stamped, so Begin() is O(used cells), not O(|V|)): the exact-mode
/// oracle answers a leg in one array read, and an unordered_map table made
/// batched evaluation measurably SLOWER there. Dispatches touching more
/// than kDenseCap distinct vertices spill the excess pairs into a hash map
/// instead of growing the matrix quadratically.
class InsertionCostBatch {
 public:
  InsertionCostBatch(const RoadNetwork& network, DistanceOracle* oracle);

  /// Starts a new batch for one ride request; clears the table.
  void Begin(VertexId origin, VertexId destination);

  /// Registers a candidate's insertion stop walk: its current location
  /// followed by its schedule stops, in schedule order.
  void AddCandidate(std::span<const VertexId> stops);

  /// Primes all pairs registered since the last Prime(). LRU-mode oracles
  /// service the origin/destination fans with truncated sweeps (a full row
  /// compute for one-shot request endpoints would thrash the cache);
  /// exact-mode oracles gather from resident rows via CostMany. Per-stop
  /// fans always go through CostMany — stop rows are reused across
  /// requests, so cache residency pays off.
  void Prime();

  /// Primed leg cost; falls back to the oracle for unknown pairs.
  /// Thread-safe (the table is read-only between Prime() calls).
  Seconds Cost(VertexId a, VertexId b) const;

  /// Counters since the last ResetStats (fallbacks are cumulative across
  /// Begin() calls; `batched`/`lb_pruned` are owned by the dispatcher).
  BatchRoutingStats stats() const;
  void ResetStats();

 private:
  /// Matrix rows/cols beyond this many distinct vertices per dispatch go to
  /// the overflow hash map (the matrix would grow quadratically).
  static constexpr int32_t kDenseCap = 1024;
  /// Matrix cell value meaning "pair not primed" (costs are >= 0).
  static constexpr Seconds kUnprimed = -1.0;

  static uint64_t Key(VertexId a, VertexId b) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }
  /// Compact id for `v` this dispatch, assigning (and growing the matrix)
  /// on first sight.
  int32_t CidFor(VertexId v);
  void Grow(int32_t needed);
  void Store(VertexId a, VertexId b, Seconds cost);
  void GatherRow(VertexId source, std::span<const VertexId> targets);
  /// Request endpoints are one-shot sources: truncated sweep in LRU mode,
  /// resident-row gather in exact mode.
  void FanFromEndpoint(VertexId endpoint, std::span<const VertexId> targets);
  /// CH-mode priming: the endpoint fan and the per-stop fans each become
  /// one bucket-based many-to-many pass (targets' buckets built once, one
  /// upward sweep per source).
  void PrimeCh();
  /// Fetches the full sources x targets matrix in one oracle pass and
  /// stores every pair (a superset of the required legs; extra entries are
  /// just as valid and keep fallback_queries at 0).
  void GatherManyToMany(std::span<const VertexId> sources,
                        std::span<const VertexId> targets);

  const RoadNetwork& network_;
  DistanceOracle* oracle_;
  OneToManySearch sweep_;

  VertexId origin_ = kInvalidVertex;
  VertexId destination_ = kInvalidVertex;

  // Compact-id state: cid_[v] is valid iff cid_epoch_[v] == epoch_.
  std::vector<uint32_t> cid_epoch_;
  std::vector<int32_t> cid_;
  uint32_t epoch_ = 0;
  std::vector<VertexId> cid_vertex_;  // vertex of each compact id
  std::vector<uint8_t> is_stop_;      // per cid: registered as a stop?
  int32_t stride_ = 0;                // matrix is stride_ x stride_
  std::vector<Seconds> matrix_;       // kUnprimed = absent
  std::unordered_map<uint64_t, Seconds> overflow_;  // cids >= kDenseCap

  // Pending work registered by AddCandidate since the last Prime().
  std::vector<VertexId> pending_stops_;  // stops first seen since last Prime
  std::vector<int32_t> pending_sources_;  // cids with pending successors
  std::vector<std::vector<VertexId>> pending_succ_;  // per cid

  std::vector<Seconds> row_buf_;
  std::vector<VertexId> target_buf_;
  std::vector<VertexId> source_buf_;
  std::vector<Seconds> matrix_buf_;

  mutable std::atomic<int64_t> fallback_queries_{0};
  int64_t batch_queries_ = 0;
  int64_t settled_vertices_ = 0;
};

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_ONE_TO_MANY_H_
