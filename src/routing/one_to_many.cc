#include "routing/one_to_many.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace mtshare {

OneToManySearch::OneToManySearch(const RoadNetwork& network)
    : network_(network),
      dist_(network.num_vertices(), 0.0),
      epoch_(network.num_vertices(), 0),
      settled_(network.num_vertices(), 0),
      target_(network.num_vertices(), 0) {}

void OneToManySearch::CostsTo(VertexId source,
                              std::span<const VertexId> targets,
                              std::vector<Seconds>* out) {
  MTSHARE_CHECK(source >= 0 && source < network_.num_vertices());
  ++current_epoch_;
  if (current_epoch_ == 0) {  // wrapped: hard reset
    std::fill(epoch_.begin(), epoch_.end(), 0);
    std::fill(settled_.begin(), settled_.end(), 0);
    std::fill(target_.begin(), target_.end(), 0);
    current_epoch_ = 1;
  }
  last_settled_ = 0;

  int32_t remaining = 0;
  for (VertexId t : targets) {
    MTSHARE_CHECK(t >= 0 && t < network_.num_vertices());
    if (target_[t] != current_epoch_) {
      target_[t] = current_epoch_;
      ++remaining;
    }
  }

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist_[source] = 0.0;
  epoch_[source] = current_epoch_;
  queue.push(QueueEntry{0.0, source});

  while (!queue.empty() && remaining > 0) {
    QueueEntry top = queue.top();
    queue.pop();
    if (epoch_[top.vertex] != current_epoch_ || top.cost > dist_[top.vertex] ||
        settled_[top.vertex] == current_epoch_) {
      continue;  // stale entry
    }
    settled_[top.vertex] = current_epoch_;
    ++last_settled_;
    if (target_[top.vertex] == current_epoch_) {
      target_[top.vertex] = 0;  // epoch 0 is never current (wrap resets)
      --remaining;
    }
    // Relaxation identical to DijkstraSearch::Run without weights/masks:
    // the candidate distance is the same floating-point sum, so every
    // settled value matches the full one-to-all row bit for bit.
    for (const Arc& arc : network_.OutArcs(top.vertex)) {
      VertexId next = arc.head;
      Seconds cand = top.cost + arc.cost;
      if (epoch_[next] != current_epoch_ || cand < dist_[next]) {
        epoch_[next] = current_epoch_;
        dist_[next] = cand;
        queue.push(QueueEntry{cand, next});
      }
    }
  }

  out->clear();
  out->reserve(targets.size());
  for (VertexId t : targets) {
    out->push_back(settled_[t] == current_epoch_ ? dist_[t] : kInfiniteCost);
  }
}

InsertionCostBatch::InsertionCostBatch(const RoadNetwork& network,
                                       DistanceOracle* oracle)
    : network_(network),
      oracle_(oracle),
      sweep_(network),
      cid_epoch_(network.num_vertices(), 0),
      cid_(network.num_vertices(), 0) {
  MTSHARE_CHECK(oracle != nullptr);
  Grow(64);
}

void InsertionCostBatch::Grow(int32_t needed) {
  int32_t next = stride_ == 0 ? 64 : stride_;
  while (next <= needed) next *= 2;
  next = std::min(next, kDenseCap);
  if (next <= stride_) return;
  std::vector<Seconds> grown(size_t(next) * next, kUnprimed);
  // Re-lay existing rows at the new stride (T-Share grows the batch
  // incrementally between Prime() calls, so earlier values must survive).
  int32_t used = std::min<int32_t>(int32_t(cid_vertex_.size()), stride_);
  for (int32_t r = 0; r < used; ++r) {
    std::copy_n(matrix_.begin() + size_t(r) * stride_, used,
                grown.begin() + size_t(r) * next);
  }
  matrix_ = std::move(grown);
  stride_ = next;
}

int32_t InsertionCostBatch::CidFor(VertexId v) {
  if (cid_epoch_[v] == epoch_) return cid_[v];
  cid_epoch_[v] = epoch_;
  int32_t id = int32_t(cid_vertex_.size());
  cid_[v] = id;
  cid_vertex_.push_back(v);
  is_stop_.push_back(0);
  if (pending_succ_.size() <= size_t(id)) pending_succ_.emplace_back();
  if (id >= stride_ && id < kDenseCap) Grow(id);
  return id;
}

void InsertionCostBatch::Store(VertexId a, VertexId b, Seconds cost) {
  int32_t ia = cid_[a];
  int32_t ib = cid_[b];
  if (ia < kDenseCap && ib < kDenseCap) {
    matrix_[size_t(ia) * stride_ + ib] = cost;
  } else {
    overflow_[Key(a, b)] = cost;
  }
}

void InsertionCostBatch::Begin(VertexId origin, VertexId destination) {
  origin_ = origin;
  destination_ = destination;
  // Wipe only the matrix region the previous dispatch could have written.
  int32_t used = std::min<int32_t>(int32_t(cid_vertex_.size()), stride_);
  if (used > 0) {
    std::fill_n(matrix_.begin(), size_t(used) * stride_, kUnprimed);
  }
  if (!overflow_.empty()) overflow_.clear();
  cid_vertex_.clear();
  is_stop_.clear();
  for (int32_t c : pending_sources_) pending_succ_[c].clear();
  pending_sources_.clear();
  pending_stops_.clear();
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: hard reset
    std::fill(cid_epoch_.begin(), cid_epoch_.end(), 0);
    epoch_ = 1;
  }
  CidFor(origin);
  CidFor(destination);
}

void InsertionCostBatch::AddCandidate(std::span<const VertexId> stops) {
  int32_t prev_cid = -1;
  VertexId prev = kInvalidVertex;
  for (VertexId v : stops) {
    int32_t c = CidFor(v);
    if (!is_stop_[c]) {
      is_stop_[c] = 1;
      pending_stops_.push_back(v);
    }
    if (prev_cid >= 0 && prev != v) {
      bool primed = prev_cid < kDenseCap && c < kDenseCap
                        ? matrix_[size_t(prev_cid) * stride_ + c] != kUnprimed
                        : overflow_.find(Key(prev, v)) != overflow_.end();
      if (!primed) {
        std::vector<VertexId>& succ = pending_succ_[prev_cid];
        if (std::find(succ.begin(), succ.end(), v) == succ.end()) {
          if (succ.empty()) pending_sources_.push_back(prev_cid);
          succ.push_back(v);
        }
      }
    }
    prev = v;
    prev_cid = c;
  }
}

void InsertionCostBatch::GatherRow(VertexId source,
                                   std::span<const VertexId> targets) {
  oracle_->CostMany(source, targets, &row_buf_);
  ++batch_queries_;
  for (size_t i = 0; i < targets.size(); ++i) {
    Store(source, targets[i], row_buf_[i]);
  }
}

void InsertionCostBatch::FanFromEndpoint(VertexId endpoint,
                                         std::span<const VertexId> targets) {
  if (oracle_->exact_mode()) {
    GatherRow(endpoint, targets);
    return;
  }
  sweep_.CostsTo(endpoint, targets, &row_buf_);
  settled_vertices_ += sweep_.last_settled_count();
  for (size_t i = 0; i < targets.size(); ++i) {
    Store(endpoint, targets[i], row_buf_[i]);
  }
}

void InsertionCostBatch::GatherManyToMany(std::span<const VertexId> sources,
                                          std::span<const VertexId> targets) {
  if (sources.empty() || targets.empty()) return;
  oracle_->CostManyToMany(sources, targets, &matrix_buf_);
  ++batch_queries_;
  size_t at = 0;
  for (VertexId s : sources) {
    for (VertexId t : targets) Store(s, t, matrix_buf_[at++]);
  }
}

void InsertionCostBatch::PrimeCh() {
  if (!pending_stops_.empty()) {
    // Endpoint fan: both request endpoints against every fresh stop plus
    // the endpoints themselves (covers origin->dest in the same pass).
    target_buf_.assign(pending_stops_.begin(), pending_stops_.end());
    target_buf_.push_back(origin_);
    if (destination_ != origin_) target_buf_.push_back(destination_);
    source_buf_.assign(1, origin_);
    if (destination_ != origin_) source_buf_.push_back(destination_);
    GatherManyToMany(source_buf_, target_buf_);
    // Every stop also needs its costs *to* both request endpoints.
    for (VertexId s : pending_stops_) {
      int32_t c = cid_[s];
      std::vector<VertexId>& succ = pending_succ_[c];
      if (succ.empty()) pending_sources_.push_back(c);
      succ.push_back(origin_);
      succ.push_back(destination_);
    }
  }
  if (!pending_sources_.empty()) {
    // Per-stop fans, merged: the union of the successor lists becomes one
    // bucket build, and each pending source pays a single upward sweep.
    source_buf_.clear();
    target_buf_.clear();
    for (int32_t c : pending_sources_) {
      source_buf_.push_back(cid_vertex_[c]);
      std::vector<VertexId>& succ = pending_succ_[c];
      target_buf_.insert(target_buf_.end(), succ.begin(), succ.end());
      succ.clear();
    }
    std::sort(target_buf_.begin(), target_buf_.end());
    target_buf_.erase(std::unique(target_buf_.begin(), target_buf_.end()),
                      target_buf_.end());
    GatherManyToMany(source_buf_, target_buf_);
  }
  pending_sources_.clear();
  pending_stops_.clear();
}

void InsertionCostBatch::Prime() {
  if (pending_stops_.empty() && pending_sources_.empty()) return;
  if (oracle_->backend() == OracleBackend::kCh) {
    PrimeCh();
    return;
  }
  if (!pending_stops_.empty()) {
    // Origin/destination fans over the freshly seen stops. These sources
    // are one-shot per request, so in LRU mode a truncated sweep beats
    // computing (and caching) their full rows.
    target_buf_.assign(pending_stops_.begin(), pending_stops_.end());
    target_buf_.push_back(destination_);
    FanFromEndpoint(origin_, target_buf_);
    FanFromEndpoint(destination_, pending_stops_);
    // Every stop also needs its costs *to* both request endpoints.
    for (VertexId s : pending_stops_) {
      int32_t c = cid_[s];
      std::vector<VertexId>& succ = pending_succ_[c];
      if (succ.empty()) pending_sources_.push_back(c);
      succ.push_back(origin_);
      succ.push_back(destination_);
    }
  }
  // Per-stop fans: one oracle row pass covers the stop's base-schedule
  // successors plus both request endpoints. Stop rows recur across
  // requests, so the row cache is the right backend here.
  for (int32_t c : pending_sources_) {
    std::vector<VertexId>& targets = pending_succ_[c];
    if (!targets.empty()) GatherRow(cid_vertex_[c], targets);
    targets.clear();
  }
  pending_sources_.clear();
  pending_stops_.clear();
}

Seconds InsertionCostBatch::Cost(VertexId a, VertexId b) const {
  if (a == b) return 0.0;
  if (cid_epoch_[a] == epoch_ && cid_epoch_[b] == epoch_) {
    int32_t ia = cid_[a];
    int32_t ib = cid_[b];
    if (ia < kDenseCap && ib < kDenseCap) {
      Seconds c = matrix_[size_t(ia) * stride_ + ib];
      if (c != kUnprimed) return c;
    } else {
      auto it = overflow_.find(Key(a, b));
      if (it != overflow_.end()) return it->second;
    }
  }
  fallback_queries_.fetch_add(1, std::memory_order_relaxed);
  return oracle_->Cost(a, b);
}

BatchRoutingStats InsertionCostBatch::stats() const {
  BatchRoutingStats s;
  s.batch_queries = batch_queries_;
  s.settled_vertices = settled_vertices_;
  s.fallback_queries = fallback_queries_.load(std::memory_order_relaxed);
  return s;
}

void InsertionCostBatch::ResetStats() {
  batch_queries_ = 0;
  settled_vertices_ = 0;
  fallback_queries_.store(0, std::memory_order_relaxed);
}

}  // namespace mtshare
