#include "routing/dijkstra.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace mtshare {
namespace {

// When optimizing vertex weights, travel time still participates scaled by
// this factor so that among equal-weight paths the faster one wins, without
// distorting the weight objective.
constexpr double kTravelTieBreak = 1e-9;

}  // namespace

DijkstraSearch::DijkstraSearch(const RoadNetwork& network)
    : network_(network),
      objective_(network.num_vertices(), 0.0),
      travel_(network.num_vertices(), 0.0),
      parent_(network.num_vertices(), kInvalidVertex),
      epoch_(network.num_vertices(), 0) {}

void DijkstraSearch::Prepare() {
  ++current_epoch_;
  if (current_epoch_ == 0) {  // wrapped: hard reset
    std::fill(epoch_.begin(), epoch_.end(), 0);
    current_epoch_ = 1;
  }
  last_settled_ = 0;
}

bool DijkstraSearch::Run(VertexId source, VertexId target,
                         const SearchOptions& options) {
  MTSHARE_CHECK(source >= 0 && source < network_.num_vertices());
  Prepare();
  const std::vector<uint8_t>* allowed = options.allowed_vertices;
  const std::vector<double>* weights = options.vertex_weights;
  MTSHARE_CHECK(allowed == nullptr ||
                static_cast<int32_t>(allowed->size()) ==
                    network_.num_vertices());
  MTSHARE_CHECK(weights == nullptr ||
                static_cast<int32_t>(weights->size()) ==
                    network_.num_vertices());

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  double start_objective =
      weights != nullptr ? (*weights)[source] : 0.0;
  objective_[source] = start_objective;
  travel_[source] = 0.0;
  parent_[source] = kInvalidVertex;
  epoch_[source] = current_epoch_;
  queue.push(QueueEntry{start_objective, 0.0, source});

  // Settled marker: parent epoch alone cannot distinguish
  // discovered-vs-settled, so track via a lazy-deletion check on pop.
  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    if (top.objective > objective_[top.vertex] ||
        epoch_[top.vertex] != current_epoch_) {
      continue;  // stale entry
    }
    // Mark settled by bumping objective comparison: first pop wins.
    ++last_settled_;
    if (top.vertex == target) return true;
    if (top.objective > options.max_objective) return false;

    for (const Arc& arc : network_.OutArcs(top.vertex)) {
      VertexId next = arc.head;
      if (allowed != nullptr && !(*allowed)[next] && next != target) continue;
      if (top.travel + arc.cost > options.max_travel) continue;
      double step = weights != nullptr
                        ? (*weights)[next] + arc.cost * kTravelTieBreak
                        : arc.cost;
      double cand = top.objective + step;
      if (epoch_[next] != current_epoch_ || cand < objective_[next]) {
        epoch_[next] = current_epoch_;
        objective_[next] = cand;
        travel_[next] = top.travel + arc.cost;
        parent_[next] = top.vertex;
        queue.push(QueueEntry{cand, top.travel + arc.cost, next});
      }
    }
  }
  return target == kInvalidVertex;
}

Seconds DijkstraSearch::Cost(VertexId source, VertexId target,
                             const SearchOptions& options) {
  MTSHARE_CHECK(target >= 0 && target < network_.num_vertices());
  if (source == target) return 0.0;
  if (!Run(source, target, options)) return kInfiniteCost;
  return travel_[target];
}

Path DijkstraSearch::FindPath(VertexId source, VertexId target,
                              const SearchOptions& options) {
  MTSHARE_CHECK(target >= 0 && target < network_.num_vertices());
  if (source == target) return Path::Trivial(source);
  if (!Run(source, target, options)) return Path::Invalid();
  Path path;
  path.cost = travel_[target];
  path.valid = true;
  for (VertexId v = target; v != kInvalidVertex; v = parent_[v]) {
    path.vertices.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.vertices.begin(), path.vertices.end());
  return path;
}

std::vector<Seconds> DijkstraSearch::CostsFrom(VertexId source) {
  Run(source, kInvalidVertex, SearchOptions{});
  std::vector<Seconds> out(network_.num_vertices(), kInfiniteCost);
  for (VertexId v = 0; v < network_.num_vertices(); ++v) {
    if (epoch_[v] == current_epoch_) out[v] = travel_[v];
  }
  return out;
}

std::vector<Seconds> DijkstraSearch::CostsToTargets(
    VertexId source, const std::vector<VertexId>& targets) {
  // Simple implementation: full one-to-all then gather. The settle-early
  // optimization is unnecessary at the network sizes the library targets,
  // and CostsFrom results are row-cached by DistanceOracle anyway.
  std::vector<Seconds> all = CostsFrom(source);
  std::vector<Seconds> out;
  out.reserve(targets.size());
  for (VertexId t : targets) out.push_back(all[t]);
  return out;
}

}  // namespace mtshare
