#ifndef MTSHARE_ROUTING_CONTRACTION_HIERARCHY_H_
#define MTSHARE_ROUTING_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/road_network.h"

namespace mtshare {

/// Preprocessing knobs. The defaults are tuned for road-like graphs
/// (degree 2-4, near-planar); denser graphs still contract correctly, just
/// with more shortcuts.
struct ChOptions {
  /// Witness searches give up after settling this many vertices. A missed
  /// witness only adds a redundant shortcut (correct but larger index),
  /// never a wrong distance.
  int32_t witness_settle_limit = 500;

  /// Worker threads for the initial node-priority pass (0 = hardware
  /// concurrency). The contraction loop itself is sequential — node order
  /// and therefore the index are identical for every thread count.
  int32_t threads = 0;
};

/// Counters describing one preprocessing run (surfaced through
/// Metrics::routing into the run report).
struct ChBuildStats {
  int64_t shortcuts_added = 0;
  double preprocessing_ms = 0.0;
};

/// A contraction hierarchy over a RoadNetwork (Geisberger et al.;
/// the bucket-query substrate of Laupichler & Sanders, arXiv:2311.01581).
///
/// Offline, nodes are contracted in importance order (edge difference +
/// contracted-neighbor + level heuristic with a lazy-update priority
/// queue); contracting v inserts a shortcut (u, w) for every in/out
/// neighbor pair whose shortest u->w path runs through v, guarded by a
/// limited witness search. The result is stored as two CSR search graphs:
///
///   UpArcs(v)   — arcs (v -> h) with rank[h] > rank[v]   (forward search)
///   DownArcs(v) — arcs (t -> v) with rank[t] > rank[v],
///                 stored head = t                         (backward search)
///
/// Every s-t shortest distance is realized by some up-down path, so a
/// bidirectional search that only ever goes upward in rank answers point
/// queries after settling a few hundred vertices. Because arc costs live
/// on the exact dyadic grid (see QuantizeTravelCost), shortcut sums are
/// exact and CH distances are bit-identical to Dijkstra's.
///
/// Immutable after Build(); safe to share across query threads.
class ContractionHierarchy {
 public:
  struct SearchArc {
    VertexId head = kInvalidVertex;
    Seconds cost = 0.0;
  };

  /// Contracts the whole network. Deterministic for any thread count.
  static ContractionHierarchy Build(const RoadNetwork& network,
                                    const ChOptions& options = {});

  int32_t num_vertices() const {
    return static_cast<int32_t>(rank_.size());
  }
  /// Contraction rank of v (0 = contracted first / least important).
  int32_t rank(VertexId v) const { return rank_[v]; }

  std::span<const SearchArc> UpArcs(VertexId v) const {
    return {up_arcs_.data() + up_offsets_[v],
            up_arcs_.data() + up_offsets_[v + 1]};
  }
  std::span<const SearchArc> DownArcs(VertexId v) const {
    return {down_arcs_.data() + down_offsets_[v],
            down_arcs_.data() + down_offsets_[v + 1]};
  }

  const ChBuildStats& stats() const { return stats_; }

  /// Resident bytes of the search graphs (Tab. IV memory accounting).
  size_t MemoryBytes() const;

 private:
  std::vector<int32_t> rank_;
  std::vector<int32_t> up_offsets_;
  std::vector<SearchArc> up_arcs_;
  std::vector<int32_t> down_offsets_;
  std::vector<SearchArc> down_arcs_;
  ChBuildStats stats_;
};

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_CONTRACTION_HIERARCHY_H_
