#ifndef MTSHARE_ROUTING_PATH_H_
#define MTSHARE_ROUTING_PATH_H_

#include <vector>

#include "common/types.h"

namespace mtshare {

/// A travel path: vertex sequence plus its total travel time. An invalid
/// path (no route found) has valid == false and infinite cost.
struct Path {
  std::vector<VertexId> vertices;
  Seconds cost = kInfiniteCost;
  bool valid = false;

  static Path Invalid() { return Path{}; }

  /// A zero-cost path standing still at `v`.
  static Path Trivial(VertexId v) { return Path{{v}, 0.0, true}; }

  bool empty() const { return vertices.empty(); }
  VertexId front() const { return vertices.front(); }
  VertexId back() const { return vertices.back(); }
};

/// Concatenates b onto a. Requires a.back() == b.front(); the shared vertex
/// appears once in the output. Invalid inputs produce an invalid result.
/// This is the ⋈ operator of paper Algorithms 3 and 4.
Path ConcatPaths(const Path& a, const Path& b);

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_PATH_H_
