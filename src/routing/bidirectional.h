#ifndef MTSHARE_ROUTING_BIDIRECTIONAL_H_
#define MTSHARE_ROUTING_BIDIRECTIONAL_H_

#include <vector>

#include "graph/road_network.h"
#include "routing/path.h"

namespace mtshare {

/// Bidirectional Dijkstra: simultaneous forward search from the source and
/// backward search (over reverse arcs) from the target, terminating when
/// the frontiers' radii cover the best meeting point. Settles roughly half
/// the vertices of a unidirectional search on city graphs and needs no
/// geometric heuristic, so it also works when coordinates are unreliable.
///
/// Not thread-safe; create one per thread.
class BidirectionalSearch {
 public:
  explicit BidirectionalSearch(const RoadNetwork& network);

  /// Travel seconds of the shortest path, kInfiniteCost if unreachable.
  Seconds Cost(VertexId source, VertexId target);

  /// Full shortest path with vertices.
  Path FindPath(VertexId source, VertexId target);

  int64_t last_settled_count() const { return last_settled_; }

 private:
  bool Run(VertexId source, VertexId target);

  const RoadNetwork& network_;
  // Forward (0) and backward (1) search states, epoch-stamped.
  std::vector<Seconds> dist_[2];
  std::vector<VertexId> parent_[2];
  std::vector<uint32_t> epoch_[2];
  uint32_t current_epoch_ = 0;
  int64_t last_settled_ = 0;
  VertexId meeting_vertex_ = kInvalidVertex;
  Seconds best_cost_ = kInfiniteCost;
};

}  // namespace mtshare

#endif  // MTSHARE_ROUTING_BIDIRECTIONAL_H_
